#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {
namespace cache {

namespace {

struct Harness
{
    EventQueue eq;
    mapping::DramGeometry geom;
    mapping::SystemMapPtr map;
    std::unique_ptr<dram::MemorySystem> mem;
    std::unique_ptr<Cache> cache;

    explicit Harness(CacheConfig cfg = CacheConfig{})
    {
        geom.channels = 2;
        geom.ranksPerChannel = 1;
        geom.bankGroups = 4;
        geom.banksPerGroup = 4;
        geom.rows = 1024;
        geom.columns = 128;
        map = mapping::makeHetMap(geom, geom);
        mem = std::make_unique<dram::MemorySystem>(
            eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
        cache = std::make_unique<Cache>(eq, cfg, *mem);
    }
};

} // namespace

TEST(CacheTest, MissThenHit)
{
    Harness h;
    bool missDone = false, hitDone = false;
    Tick missAt = 0, hitAt = 0;
    ASSERT_TRUE(h.cache->access(0x1000, false, [&] {
        missDone = true;
        missAt = h.eq.now();
    }));
    h.eq.run();
    ASSERT_TRUE(missDone);
    ASSERT_TRUE(h.cache->access(0x1000, false, [&] {
        hitDone = true;
        hitAt = h.eq.now() - missAt;
    }));
    h.eq.run();
    ASSERT_TRUE(hitDone);
    EXPECT_EQ(h.cache->hits(), 1u);
    EXPECT_EQ(h.cache->misses(), 1u);
    EXPECT_LT(hitAt, missAt) << "hit should be faster than miss";
}

TEST(CacheTest, SameLineDifferentOffsetIsAHit)
{
    Harness h;
    bool done = false;
    ASSERT_TRUE(h.cache->access(0x2000, false, [&] { done = true; }));
    h.eq.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(h.cache->access(0x2030, true, [] {}));
    h.eq.run();
    EXPECT_EQ(h.cache->hits(), 1u);
}

TEST(CacheTest, MshrMergesConcurrentMissesToOneLine)
{
    Harness h;
    unsigned done = 0;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(h.cache->access(0x3000, false, [&] { ++done; }));
    h.eq.run();
    EXPECT_EQ(done, 4u);
    EXPECT_EQ(h.cache->misses(), 1u);
    EXPECT_EQ(h.cache->stats().counterValue("mshr_merges"), 3u);
}

TEST(CacheTest, MshrExhaustionRejects)
{
    CacheConfig cfg;
    cfg.mshrs = 2;
    Harness h(cfg);
    EXPECT_TRUE(h.cache->access(0x0000, false, [] {}));
    EXPECT_TRUE(h.cache->access(0x4000, false, [] {}));
    EXPECT_FALSE(h.cache->access(0x8000, false, [] {}));
    EXPECT_EQ(h.cache->stats().counterValue("mshr_full_rejects"), 1u);
    h.eq.run();
    EXPECT_TRUE(h.cache->access(0x8000, false, [] {}));
    h.eq.run();
}

TEST(CacheTest, EvictionWritesBackDirtyLines)
{
    // Tiny cache: 2 sets x 2 ways of 64 B lines.
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.ways = 2;
    Harness h(cfg);

    // Fill set 0 (addresses with the same set index) with dirty lines.
    auto touch = [&](Addr a, bool write) {
        bool done = false;
        EXPECT_TRUE(h.cache->access(a, write, [&] { done = true; }));
        h.eq.run();
        EXPECT_TRUE(done);
    };
    touch(0 * 128, true);
    touch(1 * 128, true);
    touch(2 * 128, true); // evicts the LRU dirty line
    EXPECT_GE(h.cache->stats().counterValue("writebacks"), 1u);
}

TEST(CacheTest, LruKeepsRecentlyUsedLine)
{
    CacheConfig cfg;
    cfg.sizeBytes = 256; // 2 sets x 2 ways
    cfg.ways = 2;
    Harness h(cfg);
    auto touch = [&](Addr a) {
        bool done = false;
        EXPECT_TRUE(h.cache->access(a, false, [&] { done = true; }));
        h.eq.run();
    };
    touch(0 * 128); // A
    touch(1 * 128); // B
    touch(0 * 128); // A again (A is MRU)
    touch(2 * 128); // C evicts B
    const auto missesBefore = h.cache->misses();
    touch(0 * 128); // A must still be resident
    EXPECT_EQ(h.cache->misses(), missesBefore);
    touch(1 * 128); // B was evicted
    EXPECT_EQ(h.cache->misses(), missesBefore + 1);
}

TEST(CacheTest, HitRateReflectsAccesses)
{
    Harness h;
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr a = 0; a < 64 * 64; a += 64) {
            h.cache->access(a, false, [] {});
            h.eq.run();
        }
    }
    EXPECT_GT(h.cache->hitRate(), 0.7);
}

} // namespace cache
} // namespace pimmmu

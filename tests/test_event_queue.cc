#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "common/event_queue.hh"

namespace pimmmu {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.scheduleAfter(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), SimError);
}

TEST(EventQueue, RunWithLimitStops)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SameTickAcrossWheelAndHeapRunsFifo)
{
    // An event scheduled far ahead lands in the heap; by the time the
    // clock gets close, a second event at the very same tick lands in
    // the wheel. Execution must still follow schedule order.
    EventQueue eq;
    std::vector<int> order;
    const Tick meet = 300 * 1024; // beyond the wheel span from t=0
    eq.schedule(meet, [&] { order.push_back(1); }); // heap
    eq.schedule(meet - 100, [&] {
        eq.schedule(meet, [&] { order.push_back(2); }); // wheel
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LargeCaptureFallsBackToHeapAllocation)
{
    // Captures larger than the inline buffer must still work (they take
    // the InlineFunction heap path).
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.schedule(10, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 3u * 120 + 16); // 3 * sum(0..15) + 16

}

TEST(EventQueue, StormIsDeterministic)
{
    // A pseudo-random mix of near (wheel) and far (heap) events, with
    // handlers that reschedule, must execute in an identical (when, id)
    // sequence on every run.
    auto storm = [] {
        EventQueue eq;
        std::vector<std::pair<Tick, int>> trace;
        std::uint64_t lcg = 12345;
        auto rnd = [&lcg](std::uint64_t mod) {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            return (lcg >> 33) % mod;
        };
        int nextId = 0;
        std::function<void(int, int)> spawn = [&](int id, int depth) {
            trace.emplace_back(eq.now(), id);
            if (depth <= 0)
                return;
            const unsigned kids = 1 + rnd(3);
            for (unsigned k = 0; k < kids; ++k) {
                // Mix short delays (wheel) with multi-bucket-span
                // delays (heap).
                const Tick delay =
                    rnd(2) ? 1 + rnd(2000) : 250000 + rnd(500000);
                const int childId = ++nextId;
                eq.scheduleAfter(delay, [&spawn, childId, depth] {
                    spawn(childId, depth - 1);
                });
            }
        };
        for (int i = 0; i < 8; ++i) {
            const int id = ++nextId;
            eq.schedule(rnd(4096), [&spawn, id] { spawn(id, 4); });
        }
        eq.run();
        return trace;
    };
    const auto a = storm();
    const auto b = storm();
    ASSERT_GT(a.size(), 100u);
    EXPECT_EQ(a, b);
}

TEST(EventQueue, ResetReusesQueue)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5000, [&] { ++fired; });
    eq.schedule(9000, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(eq.executed(), 2u);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_TRUE(eq.empty());
    // Times earlier than the pre-reset clock are legal again.
    eq.schedule(10, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, CountsNearAndFarScheduling)
{
    EventQueue eq;
    eq.schedule(100, [] {});          // wheel
    eq.schedule(1000000, [] {});      // heap (far beyond the wheel span)
    EXPECT_EQ(eq.scheduled(), 2u);
    EXPECT_EQ(eq.scheduledNear(), 1u);
    eq.run();
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(Ticker, AlignsToClockEdges)
{
    EventQueue eq;
    std::vector<Tick> fireTimes;
    int remaining = 3;
    Ticker ticker(eq, 833, [&] {
        fireTimes.push_back(eq.now());
        return --remaining > 0;
    });
    eq.schedule(100, [&] { ticker.arm(); });
    eq.run();
    ASSERT_EQ(fireTimes.size(), 3u);
    for (Tick t : fireTimes)
        EXPECT_EQ(t % 833, 0u) << "tick not clock-aligned";
    EXPECT_EQ(fireTimes[1] - fireTimes[0], 833u);
}

TEST(Ticker, RearmWhileArmedIsIdempotent)
{
    EventQueue eq;
    int fires = 0;
    Ticker ticker(eq, 100, [&] {
        ++fires;
        return false;
    });
    ticker.arm();
    ticker.arm();
    ticker.arm();
    eq.run();
    EXPECT_EQ(fires, 1);
}

} // namespace pimmmu

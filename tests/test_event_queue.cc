#include <gtest/gtest.h>

#include "common/event_queue.hh"

namespace pimmmu {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.scheduleAfter(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), SimError);
}

TEST(EventQueue, RunWithLimitStops)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(Ticker, AlignsToClockEdges)
{
    EventQueue eq;
    std::vector<Tick> fireTimes;
    int remaining = 3;
    Ticker ticker(eq, 833, [&] {
        fireTimes.push_back(eq.now());
        return --remaining > 0;
    });
    eq.schedule(100, [&] { ticker.arm(); });
    eq.run();
    ASSERT_EQ(fireTimes.size(), 3u);
    for (Tick t : fireTimes)
        EXPECT_EQ(t % 833, 0u) << "tick not clock-aligned";
    EXPECT_EQ(fireTimes[1] - fireTimes[0], 833u);
}

TEST(Ticker, RearmWhileArmedIsIdempotent)
{
    EventQueue eq;
    int fires = 0;
    Ticker ticker(eq, 100, [&] {
        ++fires;
        return false;
    });
    ticker.arm();
    ticker.arm();
    ticker.arm();
    eq.run();
    EXPECT_EQ(fires, 1);
}

} // namespace pimmmu

/**
 * @file
 * Tests for the telemetry layer: StatsRegistry registration and JSON
 * export, stats::Group JSON round-trips, histogram percentile math,
 * and Chrome-trace-event output from the Timeline.
 *
 * JSON outputs are validated with a mini recursive-descent parser so
 * the tests catch malformed output (trailing commas, bad escapes),
 * not just missing substrings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/system.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace telemetry {

namespace {

/** A parsed JSON value (enough of JSON for our emitted subset). */
struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    const Json &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing content");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        ++pos_;
    }

    Json
    value()
    {
        const char c = peek();
        if (c == '{')
            return objectValue();
        if (c == '[')
            return arrayValue();
        if (c == '"')
            return stringValue();
        if (c == 't' || c == 'f')
            return boolValue();
        if (c == 'n')
            return nullValue();
        return numberValue();
    }

    Json
    objectValue()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            Json key = stringValue();
            expect(':');
            v.object.emplace(key.string, value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json
    arrayValue()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Json
    stringValue()
    {
        expect('"');
        Json v;
        v.kind = Json::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                throw std::runtime_error("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    v.string.push_back(e);
                    break;
                  case 'n':
                    v.string.push_back('\n');
                    break;
                  case 'r':
                    v.string.push_back('\r');
                    break;
                  case 't':
                    v.string.push_back('\t');
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("bad \\u escape");
                    const unsigned code = static_cast<unsigned>(
                        std::stoul(text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    // Emitted escapes only cover control chars.
                    v.string.push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    throw std::runtime_error("bad escape");
                }
                continue;
            }
            v.string.push_back(c);
        }
    }

    Json
    boolValue()
    {
        Json v;
        v.kind = Json::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    Json
    nullValue()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos_ += 4;
        return Json{};
    }

    Json
    numberValue()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            throw std::runtime_error("bad number");
        Json v;
        v.kind = Json::Kind::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Json
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace

TEST(StatsRegistryTest, AddRemoveRetire)
{
    StatsRegistry reg;
    stats::Group g("unit.group");
    g.counter("hits") += 7;

    EXPECT_TRUE(reg.add(g));
    EXPECT_FALSE(reg.add(g)) << "double-add must be rejected";
    EXPECT_TRUE(reg.isRegistered(g));
    EXPECT_EQ(reg.liveGroups(), 1u);

    reg.remove(g);
    EXPECT_FALSE(reg.isRegistered(g));
    EXPECT_EQ(reg.liveGroups(), 0u);
    EXPECT_EQ(reg.retiredGroups(), 1u) << "removal retains a snapshot";

    // Removing an unknown group is a no-op.
    stats::Group other("unit.other");
    reg.remove(other);
    EXPECT_EQ(reg.retiredGroups(), 1u);
}

TEST(StatsRegistryTest, RefreshHookRunsBeforeDumpAndRetire)
{
    StatsRegistry reg;
    stats::Group g("unit.refresh");
    int calls = 0;
    reg.add(g, [&] {
        ++calls;
        g.gauge("derived") = 42.0;
    });

    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(calls, 1);
    const Json doc = parseJson(os.str());
    EXPECT_DOUBLE_EQ(
        doc.at("groups").array.at(0).at("gauges").at("derived").number,
        42.0);

    reg.remove(g);
    EXPECT_EQ(calls, 2) << "refresh must run before the snapshot";
}

TEST(StatsRegistryTest, JsonRoundTripLiveAndRetired)
{
    StatsRegistry reg;
    stats::Group live("unit.live");
    live.counter("ops") += 3;
    live.average("lat_us").sample(1.0);
    live.average("lat_us").sample(3.0);
    live.gauge("util_pct") = 51.5;
    auto &h = live.histogram("size", 0.0, 100.0, 10);
    h.sample(5.0);
    h.sample(95.0);

    stats::Group dying("unit.retired");
    dying.counter("ops") += 11;
    reg.add(live);
    reg.add(dying);
    reg.remove(dying);

    std::ostringstream os;
    reg.dumpJson(os);
    const Json doc = parseJson(os.str());

    EXPECT_EQ(doc.at("schema").string, "pim-mmu-stats-v1");
    EXPECT_DOUBLE_EQ(doc.at("retired_dropped").number, 0.0);
    const auto &groups = doc.at("groups").array;
    ASSERT_EQ(groups.size(), 2u);

    // Live groups dump first, retired snapshots after.
    const Json &jLive = groups[0];
    EXPECT_EQ(jLive.at("name").string, "unit.live");
    EXPECT_DOUBLE_EQ(jLive.at("counters").at("ops").number, 3.0);
    EXPECT_DOUBLE_EQ(jLive.at("gauges").at("util_pct").number, 51.5);
    const Json &lat = jLive.at("averages").at("lat_us");
    EXPECT_DOUBLE_EQ(lat.at("mean").number, 2.0);
    EXPECT_DOUBLE_EQ(lat.at("min").number, 1.0);
    EXPECT_DOUBLE_EQ(lat.at("max").number, 3.0);
    EXPECT_DOUBLE_EQ(lat.at("count").number, 2.0);
    const Json &size = jLive.at("histograms").at("size");
    EXPECT_DOUBLE_EQ(size.at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(size.at("hi").number, 100.0);
    EXPECT_DOUBLE_EQ(size.at("total").number, 2.0);
    EXPECT_DOUBLE_EQ(size.at("mean").number, 50.0);
    EXPECT_EQ(size.at("buckets").array.size(), 10u);

    EXPECT_EQ(groups[1].at("name").string, "unit.retired");
    EXPECT_DOUBLE_EQ(groups[1].at("counters").at("ops").number, 11.0);
}

TEST(StatsRegistryTest, JsonEscapesAwkwardNames)
{
    StatsRegistry reg;
    stats::Group g("we\"ird\\na\tme");
    g.counter("c\"ount") += 1;
    reg.add(g);

    std::ostringstream os;
    reg.dumpJson(os);
    const Json doc = parseJson(os.str());
    const Json &jg = doc.at("groups").array.at(0);
    EXPECT_EQ(jg.at("name").string, "we\"ird\\na\tme");
    EXPECT_DOUBLE_EQ(jg.at("counters").at("c\"ount").number, 1.0);
}

TEST(StatsTest, AverageResetMatchesFreshInstance)
{
    stats::Average a;
    a.sample(-3.0);
    a.sample(9.0);
    a.reset();

    const stats::Average fresh;
    EXPECT_EQ(a.count(), fresh.count());
    EXPECT_DOUBLE_EQ(a.mean(), fresh.mean());
    EXPECT_DOUBLE_EQ(a.min(), fresh.min());
    EXPECT_DOUBLE_EQ(a.max(), fresh.max());

    // Post-reset extrema must track new samples only.
    a.sample(5.0);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(StatsTest, HistogramPercentilesOnKnownDistribution)
{
    // 100 samples, one at each of 0.5, 1.5, ..., 99.5: percentile p
    // should land close to p.
    stats::Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);

    EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
    EXPECT_NEAR(h.percentile(99.0), 99.0, 1.0);
    EXPECT_NEAR(h.percentile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.percentile(100.0), 100.0, 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
}

TEST(StatsTest, HistogramOutOfRangeSamplesClampToBounds)
{
    stats::Histogram h(10.0, 20.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(-100.0); // underflow counts at lo
    for (int i = 0; i < 10; ++i)
        h.sample(500.0); // overflow counts at hi
    EXPECT_EQ(h.underflow(), 10u);
    EXPECT_EQ(h.overflow(), 10u);
    EXPECT_DOUBLE_EQ(h.percentile(25.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 20.0);

    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(TimelineTest, TraceEventJsonIsWellFormed)
{
    Timeline tl;
    tl.setEnabled(true);
    const unsigned a = tl.track("unit.track.a");
    const unsigned b = tl.track("unit.track.b");
    EXPECT_NE(a, b);
    EXPECT_EQ(tl.track("unit.track.a"), a) << "track ids are stable";

    tl.span(a, "work", 1000000, 3000000);
    tl.instant(b, "marker", 2000000);
    tl.counter(b, "depth", 2500000, 3.0);

    std::ostringstream os;
    tl.dumpJson(os);
    const Json doc = parseJson(os.str());

    EXPECT_EQ(doc.at("displayTimeUnit").string, "ns");
    const auto &events = doc.at("traceEvents").array;
    // process_name + 2 * (thread_name + sort_index) + 3 events.
    ASSERT_EQ(events.size(), 8u);

    std::size_t spans = 0, instants = 0, counters = 0, meta = 0;
    for (const Json &e : events) {
        const std::string &ph = e.at("ph").string;
        if (ph == "M") {
            ++meta;
            continue;
        }
        EXPECT_EQ(e.at("cat").string, "sim");
        if (ph == "X") {
            ++spans;
            EXPECT_EQ(e.at("name").string, "work");
            EXPECT_DOUBLE_EQ(e.at("ts").number, 1.0);
            EXPECT_DOUBLE_EQ(e.at("dur").number, 2.0);
        } else if (ph == "i") {
            ++instants;
            EXPECT_EQ(e.at("s").string, "t");
        } else if (ph == "C") {
            ++counters;
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 3.0);
        } else {
            FAIL() << "unexpected phase " << ph;
        }
    }
    EXPECT_EQ(meta, 5u);
    EXPECT_EQ(spans, 1u);
    EXPECT_EQ(instants, 1u);
    EXPECT_EQ(counters, 1u);
}

TEST(TimelineTest, DisabledTimelineRecordsNothing)
{
    Timeline tl;
    const unsigned t = tl.track("unit.track");
    tl.span(t, "work", 0, 10);
    tl.instant(t, "marker", 5);
    EXPECT_EQ(tl.events(), 0u);
}

TEST(TimelineTest, SubPicosecondTimestampsKeepFullResolution)
{
    Timeline tl;
    tl.setEnabled(true);
    const unsigned t = tl.track("unit.track");
    tl.span(t, "tiny", 1234567, 1234567 + 1); // 1.234567 us + 1 ps
    std::ostringstream os;
    tl.dumpJson(os);
    EXPECT_NE(os.str().find("\"ts\":1.234567"), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("\"dur\":0.000001"), std::string::npos)
        << os.str();
}

TEST(TelemetryIntegrationTest, SystemRunPopulatesRegistryAndTimeline)
{
    Timeline &tl = Timeline::global();
    tl.clear();
    tl.setEnabled(true);

    {
        sim::SystemConfig cfg =
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
        cfg.dramGeom.rows = 1024;
        cfg.pimGeom.banks.rows = 1024;
        sim::System sys(cfg);

        const auto names =
            StatsRegistry::global().liveGroupNames();
        auto hasName = [&](const std::string &n) {
            return std::find(names.begin(), names.end(), n) !=
                   names.end();
        };
        EXPECT_TRUE(hasName("dce"));
        EXPECT_TRUE(hasName("cpu"));
        EXPECT_TRUE(hasName("pim"));
        EXPECT_TRUE(hasName("pim_mmu"));
        EXPECT_TRUE(hasName("upmem"));
        EXPECT_TRUE(hasName("dram.ch0"));
        EXPECT_TRUE(hasName("pim.ch0"));

        const auto stats = sys.runTransfer(
            core::XferDirection::DramToPim, 64, 4 * kKiB);
        EXPECT_GT(stats.durationPs(), 0u);

        std::ostringstream os;
        StatsRegistry::global().dumpJson(os);
        const Json doc = parseJson(os.str());
        bool sawDcePhases = false;
        bool sawChannelUtil = false;
        for (const Json &g : doc.at("groups").array) {
            if (g.at("name").string == "dce") {
                sawDcePhases =
                    g.at("averages").has("phase_queue_us") &&
                    g.at("histograms").has("transfer_us");
            }
            if (g.at("name").string == "pim.ch0") {
                sawChannelUtil = g.at("gauges").has("bus_util_pct") &&
                                 g.at("gauges").at("bus_util_pct")
                                         .number > 0.0;
            }
        }
        EXPECT_TRUE(sawDcePhases);
        EXPECT_TRUE(sawChannelUtil);
    }

    EXPECT_GT(tl.events(), 0u) << "transfer must leave trace events";
    std::ostringstream os;
    tl.dumpJson(os);
    const Json doc = parseJson(os.str());
    bool sawDceTrack = false, sawChannelTrack = false;
    for (const Json &e : doc.at("traceEvents").array) {
        if (e.at("ph").string == "M" &&
            e.at("name").string == "thread_name") {
            const std::string &track = e.at("args").at("name").string;
            sawDceTrack = sawDceTrack || track == "dce";
            sawChannelTrack = sawChannelTrack || track == "pim.ch0";
        }
    }
    EXPECT_TRUE(sawDceTrack);
    EXPECT_TRUE(sawChannelTrack);

    tl.setEnabled(false);
    tl.clear();
}

} // namespace telemetry
} // namespace pimmmu

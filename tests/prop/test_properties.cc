/**
 * @file
 * Property-harness tests: a pinned corpus passes end-to-end, results
 * are bit-reproducible, and each of the three properties demonstrably
 * fails when the matching deliberate bug is armed via fault injection —
 * proving none of the checks is vacuous.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "testing/fault_injection.hh"
#include "testing/properties.hh"
#include "testing/runner.hh"

namespace pimmmu {
namespace testing {

namespace {

/** One-op plan small enough for fast negative tests. */
TransferPlan
tinyPlan(sim::DesignPoint design,
         core::XferDirection dir = core::XferDirection::DramToPim)
{
    TransferPlan plan;
    plan.seed = 0;
    plan.caseIdx = 0;
    plan.design = design;
    plan.scatterFrames = false;
    plan.fcfs = false;
    plan.queueDepth = 1;
    TransferOp op;
    op.dir = dir;
    op.banks = {0, 1};
    op.bytesPerDpu = 128;
    op.heapOffset = 0;
    op.fillWidth = 8;
    op.strideFactor = 1;
    plan.ops.push_back(op);
    return plan;
}

} // namespace

TEST(Properties, PinnedCasesPassOnEveryProperty)
{
    for (unsigned c = 0; c < 6; ++c) {
        const TransferPlan plan = generatePlan(3, c);
        const PropertyResult result = runPlan(plan);
        EXPECT_TRUE(result.pass())
            << plan.str() << result.str();
    }
}

TEST(Properties, TinyPlansPassAtAllDesignPoints)
{
    for (sim::DesignPoint design :
         {sim::DesignPoint::Base, sim::DesignPoint::BaseD,
          sim::DesignPoint::BaseDH, sim::DesignPoint::BaseDHP}) {
        for (core::XferDirection dir :
             {core::XferDirection::DramToPim,
              core::XferDirection::PimToDram}) {
            const TransferPlan plan = tinyPlan(design, dir);
            const PropertyResult result = runPlan(plan);
            EXPECT_TRUE(result.pass())
                << sim::designPointName(design) << ": " << plan.str()
                << result.str();
        }
    }
}

TEST(Properties, ContendedWriteBurstIsNotStarved)
{
    // Regression for a livelock the contender coverage exposed: a
    // continuous cacheable read stream kept the controller's read
    // queue populated forever, and with the write queue below the
    // high watermark the write-drain mode never engaged -- a small
    // software-path write burst (8 lines) starved past the 100 ms
    // liveness budget. Write aging now forces a drain. Every design
    // point and both directions must stay live under contention.
    for (sim::DesignPoint design :
         {sim::DesignPoint::Base, sim::DesignPoint::BaseDHP}) {
        for (core::XferDirection dir :
             {core::XferDirection::DramToPim,
              core::XferDirection::PimToDram}) {
            TransferPlan plan = tinyPlan(design, dir);
            plan.useLlc = true;
            plan.memContenders = 2;
            const PropertyResult result = runPlan(plan);
            EXPECT_TRUE(result.pass())
                << sim::designPointName(design) << ": " << plan.str()
                << result.str();
        }
    }
}

TEST(Properties, ResultsAreBitReproducible)
{
    // Same (seed, case) twice: identical pass/fail and identical
    // violation text — the property the replay workflow rests on.
    for (unsigned c = 0; c < 4; ++c) {
        const PropertyResult a = runPlan(generatePlan(11, c));
        const PropertyResult b = runPlan(generatePlan(11, c));
        EXPECT_EQ(a.pass(), b.pass());
        EXPECT_EQ(a.str(), b.str());
    }
}

TEST(Properties, CorruptedDataFailsTheDataProperty)
{
    fault::Armed armed("xfer.corrupt_data");
    const PropertyResult result =
        runPlan(tinyPlan(sim::DesignPoint::BaseDHP));
    ASSERT_FALSE(result.pass());
    EXPECT_EQ(result.firstProperty(), "data") << result.str();
    EXPECT_GT(fault::count("xfer.corrupt_data"), 0u);
}

TEST(Properties, CorruptedDataIsCaughtOnTheSoftwarePathToo)
{
    fault::Armed armed("xfer.corrupt_data");
    const PropertyResult result =
        runPlan(tinyPlan(sim::DesignPoint::Base,
                         core::XferDirection::PimToDram));
    ASSERT_FALSE(result.pass());
    EXPECT_EQ(result.firstProperty(), "data") << result.str();
}

TEST(Properties, DroppedActReportFailsTheProtocolProperty)
{
    fault::Armed armed("dram.drop_act_report");
    const PropertyResult result =
        runPlan(tinyPlan(sim::DesignPoint::BaseDHP));
    ASSERT_FALSE(result.pass());
    EXPECT_EQ(result.firstProperty(), "protocol") << result.str();
    EXPECT_GT(fault::count("dram.drop_act_report"), 0u);
}

TEST(Properties, LeakedCounterFailsTheConservationProperty)
{
    fault::Armed armed("dce.leak_read_counter");
    const PropertyResult result =
        runPlan(tinyPlan(sim::DesignPoint::BaseDHP));
    ASSERT_FALSE(result.pass());
    EXPECT_EQ(result.firstProperty(), "conservation") << result.str();
    EXPECT_GT(fault::count("dce.leak_read_counter"), 0u);
}

TEST(Properties, FaultsAreInertWhenDisarmed)
{
    ASSERT_TRUE(fault::armedSites().empty());
    const PropertyResult result =
        runPlan(tinyPlan(sim::DesignPoint::BaseDHP));
    EXPECT_TRUE(result.pass()) << result.str();
    EXPECT_EQ(fault::count("xfer.corrupt_data"), 0u);
}

TEST(Runner, RunCaseMatchesRunPlanAndShrinksOnFailure)
{
    bool passed = false;
    runCase(3, 0, passed);
    EXPECT_TRUE(passed);

    fault::Armed armed("xfer.corrupt_data");
    bool failedPassed = true;
    const CaseFailure failure = runCase(3, 0, failedPassed);
    EXPECT_FALSE(failedPassed);
    EXPECT_EQ(failure.original.firstProperty(), "data");
    EXPECT_FALSE(failure.shrunk.result.pass());
    EXPECT_GE(failure.shrunk.evaluations, 1u);
}

TEST(Runner, FailingCorpusEmitsReplayLineAndArtifact)
{
    const std::filesystem::path outDir =
        std::filesystem::temp_directory_path() / "pimmmu_prop_test";
    std::filesystem::remove_all(outDir);

    fault::Armed armed("xfer.corrupt_data");
    RunnerOptions options;
    options.seeds = {5};
    options.cases = 1;
    options.outDir = outDir.string();
    std::ostringstream log;
    const CorpusResult corpus = runCorpus(options, log);

    ASSERT_FALSE(corpus.pass());
    EXPECT_NE(log.str().find("replay: prop_runner --replay 5:0"),
              std::string::npos)
        << log.str();

    const std::filesystem::path artifact =
        outDir / "fail_seed5_case0.txt";
    ASSERT_TRUE(std::filesystem::exists(artifact));
    std::ifstream in(artifact);
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_NE(contents.str().find("--replay 5:0"), std::string::npos);
    EXPECT_NE(contents.str().find("[data]"), std::string::npos);
    std::filesystem::remove_all(outDir);
}

} // namespace testing
} // namespace pimmmu

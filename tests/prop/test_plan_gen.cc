/**
 * @file
 * Generator-level properties: determinism (same (seed, case) -> bit
 * identical plan), validity of every generated plan, and diversity
 * (the corpus actually covers the design points, directions, and
 * queue depths the harness claims to exercise).
 */

#include <gtest/gtest.h>

#include <set>

#include "testing/plan_gen.hh"

namespace pimmmu {
namespace testing {

TEST(PlanGen, DeterministicPerSeedAndCase)
{
    for (unsigned c = 0; c < 16; ++c) {
        const TransferPlan a = generatePlan(42, c);
        const TransferPlan b = generatePlan(42, c);
        EXPECT_EQ(a.str(), b.str()) << "case " << c;
    }
}

TEST(PlanGen, DifferentSeedsAndCasesDiffer)
{
    std::set<std::string> unique;
    for (unsigned c = 0; c < 32; ++c) {
        unique.insert(generatePlan(1, c).str());
        unique.insert(generatePlan(2, c).str());
    }
    // Collisions would mean cases share random streams.
    EXPECT_GE(unique.size(), 60u);
}

TEST(PlanGen, EveryGeneratedPlanIsValid)
{
    for (std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
        for (unsigned c = 0; c < 64; ++c) {
            const TransferPlan plan = generatePlan(seed, c);
            EXPECT_EQ(validatePlan(plan), "")
                << "seed " << seed << " case " << c << "\n"
                << plan.str();
        }
    }
}

TEST(PlanGen, CorpusCoversTheClaimedSpace)
{
    std::set<sim::DesignPoint> designs;
    bool sawToPim = false, sawFromPim = false, sawDeepQueue = false;
    bool sawScatterOn = false, sawScatterOff = false, sawFcfs = false;
    bool sawMultiOp = false, sawOddHeap = false, sawStride = false;
    bool sawLaunch = false, sawTransfer = false;
    for (unsigned c = 0; c < 64; ++c) {
        const TransferPlan plan = generatePlan(1, c);
        designs.insert(plan.design);
        sawDeepQueue |= plan.queueDepth > 1;
        sawScatterOn |= plan.scatterFrames;
        sawScatterOff |= !plan.scatterFrames;
        sawFcfs |= plan.fcfs;
        sawMultiOp |= plan.ops.size() > 1;
        for (const TransferOp &op : plan.ops) {
            sawLaunch |= op.launch;
            sawTransfer |= !op.launch;
            if (op.launch)
                continue;
            sawToPim |= op.dir == core::XferDirection::DramToPim;
            sawFromPim |= op.dir == core::XferDirection::PimToDram;
            sawOddHeap |= op.heapOffset % 64 != 0;
            sawStride |= op.strideFactor > 1;
        }
    }
    EXPECT_EQ(designs.size(), 4u) << "all Fig. 15 design points";
    EXPECT_TRUE(sawToPim);
    EXPECT_TRUE(sawFromPim);
    EXPECT_TRUE(sawDeepQueue);
    EXPECT_TRUE(sawScatterOn);
    EXPECT_TRUE(sawScatterOff);
    EXPECT_TRUE(sawFcfs);
    EXPECT_TRUE(sawMultiOp);
    EXPECT_TRUE(sawOddHeap);
    EXPECT_TRUE(sawStride);
    EXPECT_TRUE(sawLaunch) << "kernel-launch steps in the corpus";
    EXPECT_TRUE(sawTransfer);
}

TEST(PlanGen, ValidatorRejectsMalformedPlans)
{
    TransferPlan plan = generatePlan(1, 0);
    ASSERT_EQ(validatePlan(plan), "");

    TransferPlan noOps = plan;
    noOps.ops.clear();
    EXPECT_NE(validatePlan(noOps), "");

    TransferPlan badBank = plan;
    badBank.ops[0].banks = {999};
    EXPECT_NE(validatePlan(badBank), "");

    TransferPlan badBytes = plan;
    badBytes.ops[0].bytesPerDpu = 96;
    EXPECT_NE(validatePlan(badBytes), "");

    TransferPlan badHeap = plan;
    badHeap.ops[0].heapOffset = 4;
    EXPECT_NE(validatePlan(badHeap), "");

    TransferPlan tooBig = plan;
    tooBig.ops[0].bytesPerDpu =
        propPimGeometry().mramBytesPerDpu() + 64;
    EXPECT_NE(validatePlan(tooBig), "");
}

} // namespace testing
} // namespace pimmmu

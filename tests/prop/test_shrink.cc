/**
 * @file
 * Shrinker tests: a failing plan reduces to the global minimum when
 * the bug is unconditional, the shrunk plan still fails, and shrinking
 * is deterministic (same input -> identical reproducer, twice).
 */

#include <gtest/gtest.h>

#include "testing/fault_injection.hh"
#include "testing/shrink.hh"

namespace pimmmu {
namespace testing {

namespace {

TransferPlan
bulkyFailingPlan()
{
    TransferPlan plan;
    plan.design = sim::DesignPoint::BaseDHP;
    plan.scatterFrames = true;
    plan.fcfs = true;
    plan.queueDepth = 3;
    for (unsigned i = 0; i < 3; ++i) {
        TransferOp op;
        op.dir = core::XferDirection::DramToPim;
        op.banks = {0, 2, 4, 5};
        op.bytesPerDpu = 512;
        op.heapOffset = 128;
        op.fillWidth = 4;
        op.strideFactor = 2;
        plan.ops.push_back(op);
    }
    return plan;
}

} // namespace

TEST(Shrink, UnconditionalBugShrinksToTheGlobalMinimum)
{
    fault::Armed armed("xfer.corrupt_data");
    const ShrinkResult shrunk = shrinkPlan(bulkyFailingPlan());

    ASSERT_FALSE(shrunk.result.pass());
    ASSERT_EQ(shrunk.plan.ops.size(), 1u);
    const TransferOp &op = shrunk.plan.ops[0];
    EXPECT_EQ(op.banks.size(), 1u);
    EXPECT_EQ(op.bytesPerDpu, 64u);
    EXPECT_EQ(op.heapOffset, 0u);
    EXPECT_EQ(op.strideFactor, 1u);
    EXPECT_EQ(shrunk.plan.queueDepth, 1u);
    EXPECT_FALSE(shrunk.plan.scatterFrames);
    EXPECT_FALSE(shrunk.plan.fcfs);
    EXPECT_EQ(validatePlan(shrunk.plan), "");
}

TEST(Shrink, ShrinkingIsDeterministic)
{
    fault::Armed armed("xfer.corrupt_data");
    const ShrinkResult a = shrinkPlan(bulkyFailingPlan());
    const ShrinkResult b = shrinkPlan(bulkyFailingPlan());
    EXPECT_EQ(a.plan.str(), b.plan.str());
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.result.str(), b.result.str());
}

TEST(Shrink, PassingPlanIsReturnedUntouched)
{
    const TransferPlan plan = generatePlan(3, 1);
    const ShrinkResult shrunk = shrinkPlan(plan);
    EXPECT_TRUE(shrunk.result.pass());
    EXPECT_EQ(shrunk.plan.str(), plan.str());
    EXPECT_EQ(shrunk.evaluations, 1u);
}

TEST(Shrink, EvaluationBudgetIsRespected)
{
    fault::Armed armed("xfer.corrupt_data");
    const ShrinkResult shrunk = shrinkPlan(bulkyFailingPlan(), 5);
    EXPECT_LE(shrunk.evaluations, 5u);
    EXPECT_FALSE(shrunk.result.pass());
}

} // namespace testing
} // namespace pimmmu

/**
 * @file
 * Property-testing CLI. Runs seed-deterministic random transfer plans
 * through the full system and checks data fidelity, DDR4 protocol
 * cleanliness, and counter conservation against independent oracles.
 *
 *   prop_runner --seed 1 --cases 64          # pinned CI corpus
 *   prop_runner --time-budget-s 60 --seed 7  # bounded fuzzing
 *   prop_runner --replay 1:17                # reproduce a CI failure
 */

#include "testing/runner.hh"

int
main(int argc, char **argv)
{
    return pimmmu::testing::runnerMain(argc, argv);
}

/**
 * @file
 * Plane-switch property suite: a run that hops between the timing and
 * fast-forward planes at random quiesced points must be functionally
 * indistinguishable from a pure-timing run — byte-identical final
 * memory image (DRAM store + DPU MRAM, via System::memoryFingerprint)
 * — and every fast-forwarded operation must be conserved exactly in
 * the ff.* counters snapshotted by the PlaneCheckpoints.
 *
 * The op mix (DRAM->PIM, PIM->DRAM, DRAM->DRAM memcpy) and the switch
 * schedule are both seed-deterministic, so the checkpoint trail itself
 * is also checked for replay determinism: two identical mixed runs
 * must record identical checkpoints, digests included.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "sim/system.hh"
#include "testing/plan_gen.hh"

namespace pimmmu {
namespace testing {
namespace {

/** Harness-scale BaseDHP system (64 DPUs, DCE path). */
sim::SystemConfig
planeConfig()
{
    TransferPlan plan;
    plan.design = sim::DesignPoint::BaseDHP;
    plan.scatterFrames = false;
    return planConfig(plan);
}

/** One step of the generated op sequence. */
struct PlanOp
{
    enum class Kind
    {
        ToPim,
        FromPim,
        Memcpy
    };
    Kind kind = Kind::ToPim;
    unsigned dpus = 8;
    std::uint64_t bytesPerDpu = 64; //!< Memcpy: total bytes instead
    bool switchBefore = false;      //!< toggle the plane first

    std::uint64_t
    bytes() const
    {
        return kind == Kind::Memcpy ? bytesPerDpu
                                    : dpus * bytesPerDpu;
    }
};

std::vector<PlanOp>
generateOps(std::uint64_t seed, bool withSwitches)
{
    Rng rng(seed);
    std::vector<PlanOp> ops(4 + rng.below(4));
    for (PlanOp &op : ops) {
        const std::uint64_t k = rng.below(4);
        op.kind = k == 0   ? PlanOp::Kind::Memcpy
                  : k == 1 ? PlanOp::Kind::FromPim
                           : PlanOp::Kind::ToPim;
        if (op.kind == PlanOp::Kind::Memcpy) {
            op.bytesPerDpu = 4 * kKiB * (1 + rng.below(4));
        } else {
            op.dpus = 8 * (1 + static_cast<unsigned>(rng.below(4)));
            op.bytesPerDpu = 64 * (1 + rng.below(8));
        }
        // Drawn unconditionally so the op mix is independent of
        // whether this run actually honors the switch schedule.
        op.switchBefore = rng.below(2) == 0 && withSwitches;
    }
    return ops;
}

struct RunResult
{
    std::uint64_t memoryFnv = 0;
    std::vector<sim::PlaneCheckpoint> checkpoints;
};

/**
 * Seed memory with nonzero payloads and run the op sequence, honoring
 * each op's switchBefore toggle, then finish on the timing plane (one
 * final switch if needed) so the last checkpoint snapshots the
 * cumulative ff.* counters.
 */
RunResult
runPlan(const std::vector<PlanOp> &ops)
{
    sim::System sys(planeConfig());

    // Deterministic nonzero payloads in the DRAM region the transfers
    // will allocate from, and in every DPU's MRAM heap window.
    std::vector<std::uint8_t> pattern(64 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 131 + 17);
    sys.mem().store().write(0, pattern.data(), pattern.size());
    for (unsigned d = 0; d < sys.pim().numDpus(); ++d) {
        for (std::size_t i = 0; i < 4 * kKiB; ++i)
            pattern[i] = static_cast<std::uint8_t>(i * 29 + 3 * d);
        sys.pim().dpu(d).mramWrite(0, pattern.data(), 4 * kKiB);
    }

    for (const PlanOp &op : ops) {
        if (op.switchBefore) {
            sys.setPlane(sys.plane() == sim::Plane::Timing
                             ? sim::Plane::FastForward
                             : sim::Plane::Timing);
        }
        switch (op.kind) {
          case PlanOp::Kind::ToPim:
            sys.runTransfer(core::XferDirection::DramToPim, op.dpus,
                            op.bytesPerDpu);
            break;
          case PlanOp::Kind::FromPim:
            sys.runTransfer(core::XferDirection::PimToDram, op.dpus,
                            op.bytesPerDpu);
            break;
          case PlanOp::Kind::Memcpy:
            sys.runMemcpy(op.bytesPerDpu);
            break;
        }
    }
    if (sys.plane() != sim::Plane::Timing)
        sys.setPlane(sim::Plane::Timing);

    RunResult r;
    r.memoryFnv = sys.memoryFingerprint();
    r.checkpoints = sys.planeCheckpoints();
    return r;
}

} // namespace

TEST(PlaneSwitch, RandomSwitchPointsPreserveTheMemoryImage)
{
    for (std::uint64_t iter = 0; iter < 8; ++iter) {
        const std::uint64_t seed = 0x9e37 + iter;
        const RunResult timing = runPlan(generateOps(seed, false));
        const RunResult mixed = runPlan(generateOps(seed, true));
        EXPECT_EQ(timing.memoryFnv, mixed.memoryFnv)
            << "iter " << iter
            << ": fast-forwarded ops changed payload bytes";
        EXPECT_TRUE(timing.checkpoints.empty());
    }
}

TEST(PlaneSwitch, CheckpointsConserveFunctionalCounters)
{
    for (std::uint64_t iter = 0; iter < 8; ++iter) {
        const std::vector<PlanOp> ops =
            generateOps(0xfeed + iter, true);
        const RunResult r = runPlan(ops);

        // Independent replay of the schedule: which ops ran on the
        // fast-forward plane, and how many bytes they moved.
        std::uint64_t ffTransfers = 0, ffMemcpys = 0, ffBytes = 0;
        bool ff = false; //!< plane after replay; true = FastForward
        bool any = false;
        for (const PlanOp &op : ops) {
            if (op.switchBefore) {
                ff = !ff;
                any = true;
            }
            if (!ff)
                continue;
            if (op.kind == PlanOp::Kind::Memcpy)
                ++ffMemcpys;
            else
                ++ffTransfers;
            ffBytes += op.bytes();
        }
        if (!any) {
            EXPECT_TRUE(r.checkpoints.empty());
            continue;
        }

        // The last checkpoint always carries the cumulative ff.*
        // counters: either it is the forced end-of-run return to
        // Timing, or the run already ended on Timing and no ff op can
        // have run after its last switch. Its memory digest is the
        // final image only in the forced case.
        ASSERT_FALSE(r.checkpoints.empty());
        const sim::PlaneCheckpoint &last = r.checkpoints.back();
        EXPECT_EQ(last.to, sim::Plane::Timing);
        EXPECT_EQ(last.ffTransfers, ffTransfers) << "iter " << iter;
        EXPECT_EQ(last.ffMemcpys, ffMemcpys) << "iter " << iter;
        EXPECT_EQ(last.ffBytes, ffBytes) << "iter " << iter;
        if (ff)
            EXPECT_EQ(last.memoryFnv, r.memoryFnv) << "iter " << iter;

        // The trail alternates planes and never travels back in time.
        for (std::size_t i = 0; i < r.checkpoints.size(); ++i) {
            const sim::PlaneCheckpoint &cp = r.checkpoints[i];
            EXPECT_NE(cp.from, cp.to);
            if (i == 0) {
                EXPECT_EQ(cp.from, sim::Plane::Timing);
            } else {
                EXPECT_EQ(cp.from, r.checkpoints[i - 1].to);
                EXPECT_GE(cp.atPs, r.checkpoints[i - 1].atPs);
            }
        }
    }
}

TEST(PlaneSwitch, MixedRunsReplayDeterministically)
{
    const std::vector<PlanOp> ops = generateOps(0xd0d0, true);
    const RunResult a = runPlan(ops);
    const RunResult b = runPlan(ops);
    EXPECT_EQ(a.memoryFnv, b.memoryFnv);
    ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
    for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
        EXPECT_EQ(a.checkpoints[i].atPs, b.checkpoints[i].atPs);
        EXPECT_EQ(a.checkpoints[i].from, b.checkpoints[i].from);
        EXPECT_EQ(a.checkpoints[i].to, b.checkpoints[i].to);
        EXPECT_EQ(a.checkpoints[i].ffTransfers,
                  b.checkpoints[i].ffTransfers);
        EXPECT_EQ(a.checkpoints[i].ffBytes, b.checkpoints[i].ffBytes);
        EXPECT_EQ(a.checkpoints[i].ffMemcpys,
                  b.checkpoints[i].ffMemcpys);
        EXPECT_EQ(a.checkpoints[i].memoryFnv,
                  b.checkpoints[i].memoryFnv);
    }
}

// ---------------------------------------------------------------------
// memoryFingerprint edge cases: the digest is the identity gate for
// checkpoint/restore and plane switches, so its canonical form must be
// insensitive to how storage happened to grow.
// ---------------------------------------------------------------------

TEST(PlaneSwitch, AllZeroImagesFingerprintIdentically)
{
    sim::System a(planeConfig());
    sim::System b(planeConfig());
    const std::uint64_t fresh = a.memoryFingerprint();
    EXPECT_EQ(fresh, b.memoryFingerprint());

    // Writing zeros materializes backing pages and grows MRAM storage
    // but must not change the canonical image.
    std::vector<std::uint8_t> zeros(8 * kKiB, 0);
    b.mem().store().write(64 * kKiB, zeros.data(), zeros.size());
    b.pim().dpu(0).mramWrite(0, zeros.data(), zeros.size());
    EXPECT_EQ(b.memoryFingerprint(), fresh);
}

TEST(PlaneSwitch, TrimmedMramTailIgnoresTrailingZeros)
{
    sim::System a(planeConfig());
    sim::System b(planeConfig());
    std::vector<std::uint8_t> pattern(256);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i + 1);

    a.pim().dpu(3).mramWrite(0, pattern.data(), pattern.size());

    // Same payload, but b's DPU storage grew 16x further with zeros:
    // the trailing-zero trim makes the images indistinguishable.
    b.pim().dpu(3).mramWrite(0, pattern.data(), pattern.size());
    std::vector<std::uint8_t> zeros(4 * kKiB, 0);
    b.pim().dpu(3).mramWrite(pattern.size(), zeros.data(),
                             zeros.size());
    EXPECT_GT(b.pim().dpu(3).mramTouchedBytes(),
              a.pim().dpu(3).mramTouchedBytes());
    EXPECT_EQ(a.memoryFingerprint(), b.memoryFingerprint());

    // A non-zero byte past the trimmed tail must be visible again.
    const std::uint8_t one = 1;
    b.pim().dpu(3).mramWrite(2 * kKiB, &one, 1);
    EXPECT_NE(a.memoryFingerprint(), b.memoryFingerprint());
}

} // namespace testing
} // namespace pimmmu

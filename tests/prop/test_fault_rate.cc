/**
 * @file
 * Replay-parity properties of rate-based fault arming. The campaign
 * harness leans on armRate() being a pure function of (seed, call
 * sequence): a failing fault-rate sweep must reproduce bit-for-bit
 * from its seed, across re-arms and across sweep workers. These
 * properties pin that contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "resilience/manager.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace testing {

namespace {

std::vector<bool>
firePattern(const char *site, double prob, std::uint64_t seed,
            unsigned calls)
{
    fault::armRate(site, prob, seed);
    std::vector<bool> fires(calls);
    for (unsigned i = 0; i < calls; ++i)
        fires[i] = fault::fire(site);
    fault::disarmAll();
    return fires;
}

} // namespace

TEST(FaultRateProp, ReplayParityAcrossRearms)
{
    // Sweep a grid of (prob, seed): every cell must replay exactly.
    for (double prob : {0.01, 0.1, 0.5, 0.9}) {
        for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
            const auto a =
                firePattern("prop.rate", prob, seed, 1024);
            const auto b =
                firePattern("prop.rate", prob, seed, 1024);
            EXPECT_EQ(a, b) << "prob=" << prob << " seed=" << seed;
        }
    }
}

TEST(FaultRateProp, FireRateTracksProbability)
{
    for (double prob : {0.05, 0.25, 0.75}) {
        const auto fires = firePattern("prop.rate", prob, 7, 8192);
        const double observed =
            static_cast<double>(
                std::count(fires.begin(), fires.end(), true)) /
            static_cast<double>(fires.size());
        EXPECT_NEAR(observed, prob, 0.05) << "prob=" << prob;
    }
}

TEST(FaultRateProp, RearmReplacesRateSeedAndCount)
{
    fault::armRate("prop.rearm", 1.0, 1);
    EXPECT_TRUE(fault::fire("prop.rearm"));
    EXPECT_EQ(fault::count("prop.rearm"), 1u);

    // Re-arming resets the stream: probability 0 never fires and the
    // stale trigger count is gone.
    fault::armRate("prop.rearm", 0.0, 2);
    EXPECT_FALSE(fault::fire("prop.rearm"));
    EXPECT_EQ(fault::count("prop.rearm"), 0u);
    fault::disarmAll();
}

TEST(FaultRateProp, WorkerThreadsReplayIndependently)
{
    // Two workers arm the SAME site name with the same seed: each must
    // observe the full deterministic pattern, unperturbed by the other
    // thread's draws — the isolation the parallel sweep runner needs.
    const auto expected = firePattern("prop.iso", 0.5, 99, 2048);

    std::vector<std::vector<bool>> got(2);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < 2; ++w) {
        workers.emplace_back([&, w] {
            got[w] = firePattern("prop.iso", 0.5, 99, 2048);
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_EQ(got[0], expected);
    EXPECT_EQ(got[1], expected);

    // And a site armed only on this thread stays invisible to others.
    fault::armRate("prop.main_only", 1.0, 5);
    bool seenElsewhere = true;
    std::thread probe(
        [&] { seenElsewhere = fault::fire("prop.main_only"); });
    probe.join();
    EXPECT_FALSE(seenElsewhere);
    fault::disarmAll();
}

TEST(FaultRateProp, SweepWorkersReplayHealthStateDeterministically)
{
    // A fault campaign job builds a System, drives checked transfers
    // under armed kill sites, scrubs, and summarizes the resulting
    // health state. Because armed sites are thread-local and their
    // streams pure functions of the seed, the summary must not depend
    // on which sweep worker ran the job or how many workers exist.
    auto runJob = [](std::size_t job) {
        fault::disarmAll();
        fault::armRate("dpu.kill", 0.15, 1000 + job);
        fault::armRate("domain.kill_rank", 0.03, 2000 + job);

        sim::SystemConfig cfg = sim::SystemConfig::paperTable1(
            sim::DesignPoint::BaseDHP);
        cfg.resilience = resilience::Policy::withRepair();
        sim::System sys(cfg);

        constexpr unsigned kDpus = 16;
        constexpr std::uint64_t kBytes = 512;
        const Addr base = sys.allocDram(kDpus * kBytes);
        core::PimMmuOp op;
        op.type = core::XferDirection::DramToPim;
        op.sizePerPim = kBytes;
        op.pimBaseHeapPtr = 0;
        for (unsigned d = 0; d < kDpus; ++d) {
            op.pimIdArr.push_back(d);
            op.dramAddrArr.push_back(base + Addr{d} * kBytes);
        }

        std::ostringstream summary;
        for (unsigned round = 0; round < 3; ++round) {
            bool done = false;
            resilience::Status final;
            const resilience::Status sync =
                sys.pimMmu().transferChecked(
                    op, [&](const resilience::Status &s) {
                        final = s;
                        done = true;
                    });
            if (sync.ok())
                sys.runUntil([&] { return done; });
            else
                final = sync;
            summary << "r" << round << "="
                    << resilience::errorCodeName(final.code) << ";";
            const sim::ScrubReport rep = sys.runScrub();
            summary << "scrub=" << rep.probed << "/" << rep.readmitted
                    << "/" << rep.failed << ";";
        }
        fault::disarmAll();

        resilience::Manager *mgr = sys.resilienceManager();
        summary << "banks=";
        for (unsigned b = 0; b < cfg.pimGeom.numBanks(); ++b) {
            if (mgr->bankMasked(b))
                summary << b << ","
                        << resilience::bankStateName(
                               mgr->bankState(b))
                        << ";";
        }
        for (const char *c :
             {"dpus_masked", "ranks_masked", "readmissions",
              "probe_failures", "probe_transfers"})
            summary << c << "=" << mgr->stats().counterValue(c) << ";";
        return summary.str();
    };

    constexpr std::size_t kJobs = 4;
    std::vector<std::string> serial(kJobs), parallel(kJobs);
    sim::SweepRunner(1).run(kJobs, [&](std::size_t j) {
        serial[j] = runJob(j);
    });
    sim::SweepRunner(2).run(kJobs, [&](std::size_t j) {
        parallel[j] = runJob(j);
    });
    for (std::size_t j = 0; j < kJobs; ++j) {
        EXPECT_EQ(serial[j], parallel[j]) << "job " << j;
        EXPECT_FALSE(serial[j].empty());
    }
    // The campaign actually exercised the health machinery somewhere.
    bool sawMask = false;
    for (const std::string &s : serial)
        sawMask |= s.find("dpus_masked=0;") == std::string::npos;
    EXPECT_TRUE(sawMask);
}

} // namespace testing
} // namespace pimmmu

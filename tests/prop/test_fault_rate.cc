/**
 * @file
 * Replay-parity properties of rate-based fault arming. The campaign
 * harness leans on armRate() being a pure function of (seed, call
 * sequence): a failing fault-rate sweep must reproduce bit-for-bit
 * from its seed, across re-arms and across sweep workers. These
 * properties pin that contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "testing/fault_injection.hh"

namespace pimmmu {
namespace testing {

namespace {

std::vector<bool>
firePattern(const char *site, double prob, std::uint64_t seed,
            unsigned calls)
{
    fault::armRate(site, prob, seed);
    std::vector<bool> fires(calls);
    for (unsigned i = 0; i < calls; ++i)
        fires[i] = fault::fire(site);
    fault::disarmAll();
    return fires;
}

} // namespace

TEST(FaultRateProp, ReplayParityAcrossRearms)
{
    // Sweep a grid of (prob, seed): every cell must replay exactly.
    for (double prob : {0.01, 0.1, 0.5, 0.9}) {
        for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
            const auto a =
                firePattern("prop.rate", prob, seed, 1024);
            const auto b =
                firePattern("prop.rate", prob, seed, 1024);
            EXPECT_EQ(a, b) << "prob=" << prob << " seed=" << seed;
        }
    }
}

TEST(FaultRateProp, FireRateTracksProbability)
{
    for (double prob : {0.05, 0.25, 0.75}) {
        const auto fires = firePattern("prop.rate", prob, 7, 8192);
        const double observed =
            static_cast<double>(
                std::count(fires.begin(), fires.end(), true)) /
            static_cast<double>(fires.size());
        EXPECT_NEAR(observed, prob, 0.05) << "prob=" << prob;
    }
}

TEST(FaultRateProp, RearmReplacesRateSeedAndCount)
{
    fault::armRate("prop.rearm", 1.0, 1);
    EXPECT_TRUE(fault::fire("prop.rearm"));
    EXPECT_EQ(fault::count("prop.rearm"), 1u);

    // Re-arming resets the stream: probability 0 never fires and the
    // stale trigger count is gone.
    fault::armRate("prop.rearm", 0.0, 2);
    EXPECT_FALSE(fault::fire("prop.rearm"));
    EXPECT_EQ(fault::count("prop.rearm"), 0u);
    fault::disarmAll();
}

TEST(FaultRateProp, WorkerThreadsReplayIndependently)
{
    // Two workers arm the SAME site name with the same seed: each must
    // observe the full deterministic pattern, unperturbed by the other
    // thread's draws — the isolation the parallel sweep runner needs.
    const auto expected = firePattern("prop.iso", 0.5, 99, 2048);

    std::vector<std::vector<bool>> got(2);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < 2; ++w) {
        workers.emplace_back([&, w] {
            got[w] = firePattern("prop.iso", 0.5, 99, 2048);
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_EQ(got[0], expected);
    EXPECT_EQ(got[1], expected);

    // And a site armed only on this thread stays invisible to others.
    fault::armRate("prop.main_only", 1.0, 5);
    bool seenElsewhere = true;
    std::thread probe(
        [&] { seenElsewhere = fault::fire("prop.main_only"); });
    probe.join();
    EXPECT_FALSE(seenElsewhere);
    fault::disarmAll();
}

} // namespace testing
} // namespace pimmmu

/**
 * @file
 * Translation property suite: randomized virtual-address plans against
 * a golden model, the identity-mapping bit+cycle-identity property at
 * harness scale, and SweepRunner determinism of VA runs across worker
 * counts.
 *
 * The golden model is deliberately trivial: the payload the test wrote
 * at the PHYSICAL addresses it chose. If any layer of translation
 * (page table, TLB refill, range resolution, HetMap dispatch) resolves
 * a VA to the wrong frame, the delivered bytes diverge from it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.hh"
#include "mmu/mmu.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "testing/plan_gen.hh"

namespace pimmmu {
namespace testing {

namespace {

std::uint64_t
roundUpTo(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

/** Harness-scale system (64 DPUs, 16 MiB DRAM) on the DCE path. */
sim::SystemConfig
vaConfig()
{
    TransferPlan plan;
    plan.design = sim::DesignPoint::BaseDHP;
    plan.scatterFrames = false;
    return planConfig(plan);
}

core::PimMmuOp
vaOp(mmu::TenantId tenant, core::XferDirection dir, Addr vaBase,
     unsigned dpus, std::uint64_t bytesPerDpu, Addr heapVa)
{
    core::PimMmuOp op;
    op.type = dir;
    op.sizePerPim = bytesPerDpu;
    op.pimBaseHeapPtr = heapVa;
    op.tenant = tenant;
    for (unsigned i = 0; i < dpus; ++i) {
        op.pimIdArr.push_back(i);
        op.dramAddrArr.push_back(vaBase +
                                 std::uint64_t{i} * bytesPerDpu);
    }
    return op;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

TEST(Translation, RandomVaPlansMatchGoldenBytes)
{
    // 12 seeded iterations, each a fresh system with 1-2 tenants,
    // random page size (4 KiB or 2 MiB), random direction, and a
    // random high VA base. Delivered bytes must equal the golden
    // payload exactly, both directions.
    for (std::uint64_t iter = 0; iter < 12; ++iter) {
        Rng rng(0xf00d + iter);
        sim::System sys(vaConfig());
        mmu::Mmu &m = sys.mmu();

        const unsigned dpus =
            8 * (1 + static_cast<unsigned>(rng.below(4)));
        const std::uint64_t bytesPerDpu = 64 * (1 + rng.below(8));
        const std::uint64_t total = dpus * bytesPerDpu;
        const std::uint64_t pageBytes =
            rng.below(2) == 0 ? mmu::kPageBytes : mmu::kHugePageBytes;
        const unsigned tenants =
            1 + static_cast<unsigned>(rng.below(2));

        for (unsigned t = 0; t < tenants; ++t) {
            const mmu::TenantId id = m.createTenant();
            const Addr vaBase =
                (Addr{1} << 40) +
                (Addr{1 + rng.below(8)} << 30); // tenant-private space
            const std::uint64_t mapBytes = roundUpTo(total, pageBytes);
            const Addr pa = sys.allocDram(mapBytes, pageBytes);
            ASSERT_TRUE(m.map(id, vaBase, pa, mapBytes, pageBytes,
                              mmu::PagePerms::rw(),
                              mapping::MemSpace::Dram)
                            .ok());
            const Addr heapVa = Addr{1} << 39;
            const Addr heapPa = t * mmu::kPageBytes; // disjoint MRAM
            ASSERT_TRUE(m.map(id, heapVa, heapPa, mmu::kPageBytes,
                              mmu::kPageBytes, mmu::PagePerms::rw(),
                              mapping::MemSpace::Pim)
                            .ok());

            const bool toPim = rng.below(3) != 0;
            std::vector<std::uint8_t> golden(total);
            for (std::uint64_t i = 0; i < total; ++i)
                golden[i] = static_cast<std::uint8_t>(
                    i * 193 + 31 * t + iter);

            if (toPim) {
                sys.mem().store().write(pa, golden.data(), total);
            } else {
                for (unsigned d = 0; d < dpus; ++d)
                    sys.pim().dpu(d).mramWrite(
                        heapPa, golden.data() + d * bytesPerDpu,
                        bytesPerDpu);
            }

            const auto st = sys.runTransfer(
                vaOp(id,
                     toPim ? core::XferDirection::DramToPim
                           : core::XferDirection::PimToDram,
                     vaBase, dpus, bytesPerDpu, heapVa));
            ASSERT_TRUE(st.ok())
                << "iter " << iter << " tenant " << t << ": "
                << st.status.str();

            if (toPim) {
                std::vector<std::uint8_t> got(bytesPerDpu);
                for (unsigned d = 0; d < dpus; ++d) {
                    sys.pim().dpu(d).mramRead(heapPa, got.data(),
                                              bytesPerDpu);
                    ASSERT_EQ(std::memcmp(got.data(),
                                          golden.data() +
                                              d * bytesPerDpu,
                                          bytesPerDpu),
                              0)
                        << "iter " << iter << " tenant " << t
                        << " dpu " << d << " page " << pageBytes;
                }
            } else {
                std::vector<std::uint8_t> got(total);
                sys.mem().store().read(pa, got.data(), total);
                ASSERT_EQ(std::memcmp(got.data(), golden.data(),
                                      total),
                          0)
                    << "iter " << iter << " tenant " << t << " page "
                    << pageBytes;
            }
        }
        // Every translated page is accounted in the TLB counters.
        EXPECT_EQ(m.tlb().hits() + m.tlb().misses(),
                  m.stats().counterValue("pages_translated"));
    }
}

TEST(Translation, IdentityMappingReplayIsBitAndCycleIdentical)
{
    // The same transfer driven physically and through an
    // identity-mapped tenant with zero-cost translation: event count,
    // final simulated time, and payload bytes must all match.
    struct Run
    {
        std::uint64_t events = 0;
        Tick simPs = 0;
        std::uint64_t hash = 0;
    };
    const unsigned dpus = 16;
    const std::uint64_t bytesPerDpu = 512;
    const std::uint64_t total = dpus * bytesPerDpu;

    auto runOnce = [&](bool viaVa) {
        sim::SystemConfig cfg = vaConfig();
        if (viaVa)
            cfg.mmu.tlb = mmu::TlbConfig::zeroCost();
        sim::System sys(cfg);
        // Guard alloc keeps the host buffer clear of the MRAM heap's
        // identity window at VA/PA 0 (both runs allocate identically).
        (void)sys.allocDram(64 * kKiB, mmu::kPageBytes);
        const Addr pa = sys.allocDram(roundUpTo(total, mmu::kPageBytes),
                                      mmu::kPageBytes);
        mmu::TenantId tenant = mmu::kNoTenant;
        if (viaVa) {
            mmu::Mmu &m = sys.mmu();
            tenant = m.createTenant();
            EXPECT_TRUE(m.mapIdentity(tenant, pa,
                                      roundUpTo(total,
                                                mmu::kPageBytes),
                                      mmu::kPageBytes,
                                      mmu::PagePerms::rw(),
                                      mapping::MemSpace::Dram)
                            .ok());
            EXPECT_TRUE(m.mapIdentity(tenant, 0, mmu::kPageBytes,
                                      mmu::kPageBytes,
                                      mmu::PagePerms::rw(),
                                      mapping::MemSpace::Pim)
                            .ok());
        }
        std::vector<std::uint8_t> payload(total);
        for (std::uint64_t i = 0; i < total; ++i)
            payload[i] = static_cast<std::uint8_t>(i * 41 + 7);
        sys.mem().store().write(pa, payload.data(), total);

        const auto st = sys.runTransfer(
            vaOp(tenant, core::XferDirection::DramToPim, pa, dpus,
                 bytesPerDpu, 0));
        EXPECT_TRUE(st.ok()) << st.status.str();

        Run r;
        r.events = sys.eq().executed();
        r.simPs = sys.eq().now();
        std::vector<std::uint8_t> buf(bytesPerDpu);
        r.hash = 0xcbf29ce484222325ull;
        for (unsigned d = 0; d < dpus; ++d) {
            sys.pim().dpu(d).mramRead(0, buf.data(), bytesPerDpu);
            r.hash = fnv1a(r.hash, buf.data(), bytesPerDpu);
        }
        return r;
    };

    const Run phys = runOnce(false);
    const Run va = runOnce(true);
    EXPECT_EQ(phys.events, va.events);
    EXPECT_EQ(phys.simPs, va.simPs);
    EXPECT_EQ(phys.hash, va.hash);
}

TEST(Translation, SweepRunnerVaJobsAreDeterministicAcrossThreads)
{
    // The same VA jobs under 1 and 2 workers must produce identical
    // per-job (events, sim_ps, payload hash) — translation state is
    // per-System, so worker interleaving must not leak through.
    struct Slot
    {
        std::uint64_t events = 0;
        Tick simPs = 0;
        std::uint64_t hash = 0;

        bool
        operator==(const Slot &o) const
        {
            return events == o.events && simPs == o.simPs &&
                   hash == o.hash;
        }
    };
    const std::size_t jobs = 4;

    auto sweep = [&](unsigned threads) {
        std::vector<Slot> slots(jobs);
        sim::SweepRunner runner(threads);
        runner.run(jobs, [&slots](std::size_t job) {
            sim::System sys(vaConfig());
            mmu::Mmu &m = sys.mmu();
            const mmu::TenantId t = m.createTenant();
            const unsigned dpus = 8 * (1 + job % 3);
            const std::uint64_t bytesPerDpu = 128 * (1 + job);
            const std::uint64_t total = dpus * bytesPerDpu;
            const Addr vaBase = (Addr{1} << 40) + (job << 30);
            const Addr pa = sys.allocDram(
                (total + mmu::kPageBytes - 1) / mmu::kPageBytes *
                    mmu::kPageBytes,
                mmu::kPageBytes);
            ASSERT_TRUE(m.map(t, vaBase, pa,
                              (total + mmu::kPageBytes - 1) /
                                  mmu::kPageBytes * mmu::kPageBytes,
                              mmu::kPageBytes, mmu::PagePerms::rw(),
                              mapping::MemSpace::Dram)
                            .ok());
            const Addr heapVa = Addr{1} << 39;
            ASSERT_TRUE(m.map(t, heapVa, 0, mmu::kPageBytes,
                              mmu::kPageBytes, mmu::PagePerms::rw(),
                              mapping::MemSpace::Pim)
                            .ok());
            std::vector<std::uint8_t> payload(total);
            for (std::uint64_t i = 0; i < total; ++i)
                payload[i] =
                    static_cast<std::uint8_t>(i * 61 + 13 * job);
            sys.mem().store().write(pa, payload.data(), total);
            const auto st = sys.runTransfer(
                vaOp(t, core::XferDirection::DramToPim, vaBase, dpus,
                     bytesPerDpu, heapVa));
            ASSERT_TRUE(st.ok()) << st.status.str();

            Slot &slot = slots[job];
            slot.events = sys.eq().executed();
            slot.simPs = sys.eq().now();
            slot.hash = 0xcbf29ce484222325ull;
            std::vector<std::uint8_t> buf(bytesPerDpu);
            for (unsigned d = 0; d < dpus; ++d) {
                sys.pim().dpu(d).mramRead(0, buf.data(), bytesPerDpu);
                slot.hash = fnv1a(slot.hash, buf.data(), bytesPerDpu);
            }
        });
        return slots;
    };

    const std::vector<Slot> one = sweep(1);
    const std::vector<Slot> two = sweep(2);
    ASSERT_EQ(one.size(), two.size());
    for (std::size_t j = 0; j < jobs; ++j) {
        EXPECT_TRUE(one[j] == two[j]) << "job " << j << " diverged";
    }
}

} // namespace testing
} // namespace pimmmu

#include <gtest/gtest.h>

#include "mapping/hetmap.hh"
#include "sim/stream_driver.hh"
#include "workloads/patterns.hh"

namespace pimmmu {
namespace sim {

namespace {

struct Harness
{
    EventQueue eq;
    mapping::DramGeometry geom;
    mapping::SystemMapPtr map;
    std::unique_ptr<dram::MemorySystem> mem;

    Harness()
    {
        geom.channels = 2;
        geom.ranksPerChannel = 1;
        geom.bankGroups = 4;
        geom.banksPerGroup = 4;
        geom.rows = 1024;
        geom.columns = 128;
        map = mapping::makeHetMap(geom, geom);
        mem = std::make_unique<dram::MemorySystem>(
            eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
    }
};

} // namespace

TEST(StreamDriver, CompletesAllRequestsAndReportsBandwidth)
{
    Harness h;
    StreamDriver driver(h.eq, *h.mem);
    const auto addrs = workloads::sequentialPattern(0, 2048);
    const StreamResult r = driver.run(addrs, false);
    EXPECT_EQ(r.bytes, 2048u * 64);
    EXPECT_GT(r.gbps(), 1.0);
    EXPECT_LE(r.gbps(), 2 * 19.3); // never beyond aggregate peak
    EXPECT_EQ(h.mem->dramBytesMoved(), 2048u * 64);
}

TEST(StreamDriver, SequentialReusableAcrossRuns)
{
    Harness h;
    StreamDriver driver(h.eq, *h.mem);
    const auto addrs = workloads::sequentialPattern(0, 512);
    const StreamResult first = driver.run(addrs, false);
    const StreamResult second = driver.run(addrs, true);
    EXPECT_GT(first.gbps(), 0.0);
    EXPECT_GT(second.gbps(), 0.0);
    EXPECT_EQ(h.mem->dramBytesMoved(), 2u * 512 * 64);
}

TEST(StreamDriver, WritesAndReadsBothDrainQueues)
{
    Harness h;
    StreamDriver driver(h.eq, *h.mem);
    const auto addrs = workloads::randomPattern(0, 1024, 16 * kMiB, 3);
    driver.run(addrs, true);
    EXPECT_EQ(h.mem->pending(), 0u);
    std::uint64_t writes = 0;
    for (unsigned ch = 0; ch < 2; ++ch)
        writes += h.mem->dramController(ch).bytesWritten();
    EXPECT_EQ(writes, 1024u * 64);
}

TEST(StreamDriver, RandomSlowerThanSequential)
{
    // Sanity on the DRAM model through the driver: random traffic pays
    // row conflicts that a sequential stream does not.
    Harness seqH, rndH;
    StreamDriver seqD(seqH.eq, *seqH.mem), rndD(rndH.eq, *rndH.mem);
    const double seq =
        seqD.run(workloads::sequentialPattern(0, 8192), false).gbps();
    const double rnd =
        rndD.run(workloads::randomPattern(0, 8192, 256 * kMiB, 5),
                 false)
            .gbps();
    EXPECT_GT(seq, rnd);
}

} // namespace sim
} // namespace pimmmu

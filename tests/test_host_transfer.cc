#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "pim/host_transfer.hh"

namespace pimmmu {
namespace device {

namespace {

PimGeometry
smallGeometry()
{
    PimGeometry g = PimGeometry::paperTable1();
    g.banks.rows = 256;
    return g;
}

/** ids/addrs covering banks [0, banks), host arrays contiguous. */
void
fullBanks(const PimGeometry &g, unsigned banks, std::uint64_t bytes,
          std::vector<unsigned> &ids, std::vector<Addr> &addrs)
{
    for (unsigned d = 0; d < banks * g.chipsPerRank; ++d) {
        ids.push_back(d);
        addrs.push_back(Addr{d} * bytes);
    }
}

} // namespace

TEST(GroupByBank, AcceptsFullBanksAndOrdersChips)
{
    const PimGeometry g = smallGeometry();
    std::vector<unsigned> ids;
    std::vector<Addr> addrs;
    fullBanks(g, 2, 4096, ids, addrs);

    const BankGrouping grouping = groupByBank(g, ids, addrs, 4096, 0);
    ASSERT_EQ(grouping.banks.size(), 2u);
    for (unsigned b = 0; b < 2; ++b) {
        EXPECT_EQ(grouping.banks[b].bankIdx, b);
        for (unsigned c = 0; c < 8; ++c) {
            EXPECT_EQ(grouping.banks[b].dpuId[c], g.dpuId(b, c));
            EXPECT_EQ(grouping.banks[b].hostBase[c],
                      Addr{g.dpuId(b, c)} * 4096);
        }
    }
}

TEST(GroupByBank, RejectsPartialBanks)
{
    const PimGeometry g = smallGeometry();
    std::vector<unsigned> ids = {0, 1, 2};
    std::vector<Addr> addrs = {0, 4096, 8192};
    EXPECT_THROW(groupByBank(g, ids, addrs, 4096, 0), SimError);
}

TEST(GroupByBank, RejectsDuplicatesAndBadArgs)
{
    const PimGeometry g = smallGeometry();
    std::vector<unsigned> ids;
    std::vector<Addr> addrs;
    fullBanks(g, 1, 4096, ids, addrs);

    {
        auto dup = ids;
        dup[1] = dup[0];
        EXPECT_THROW(groupByBank(g, dup, addrs, 4096, 0), SimError);
    }
    EXPECT_THROW(groupByBank(g, ids, addrs, 100, 0), SimError); // !64x
    EXPECT_THROW(groupByBank(g, ids, addrs, 0, 0), SimError);
    EXPECT_THROW(groupByBank(g, ids, addrs, 4096, 3), SimError);
    {
        auto bad = addrs;
        bad[0] += 8; // unaligned host array
        EXPECT_THROW(groupByBank(g, ids, bad, 4096, 0), SimError);
    }
    EXPECT_THROW(
        groupByBank(g, ids, addrs, g.mramBytesPerDpu() + 64, 0),
        SimError);
    {
        auto shortAddrs = addrs;
        shortAddrs.pop_back();
        EXPECT_THROW(groupByBank(g, ids, shortAddrs, 4096, 0),
                     SimError);
    }
}

TEST(FunctionalTransfer, ToPimDeliversEachDpuItsArray)
{
    const PimGeometry g = smallGeometry();
    PimDevice pim(g);
    dram::BackingStore store;

    const std::uint64_t bytes = 1024;
    std::vector<unsigned> ids;
    std::vector<Addr> addrs;
    fullBanks(g, 2, bytes, ids, addrs);

    Rng rng(31);
    std::vector<std::uint8_t> host(ids.size() * bytes);
    for (auto &b : host)
        b = static_cast<std::uint8_t>(rng());
    store.write(0, host.data(), host.size());

    const auto grouping = groupByBank(g, ids, addrs, bytes, 512);
    functionalTransfer(store, pim, true, grouping, bytes, 512);

    for (std::size_t i = 0; i < ids.size(); ++i) {
        std::vector<std::uint8_t> mram(bytes);
        pim.dpu(ids[i]).mramRead(512, mram.data(), bytes);
        EXPECT_EQ(0, std::memcmp(mram.data(), host.data() + i * bytes,
                                 bytes))
            << "DPU " << ids[i];
    }
}

TEST(FunctionalTransfer, RoundTripToPimAndBack)
{
    const PimGeometry g = smallGeometry();
    PimDevice pim(g);
    dram::BackingStore store;

    const std::uint64_t bytes = 512;
    std::vector<unsigned> ids;
    std::vector<Addr> addrs;
    fullBanks(g, 1, bytes, ids, addrs);

    Rng rng(77);
    std::vector<std::uint8_t> host(ids.size() * bytes);
    for (auto &b : host)
        b = static_cast<std::uint8_t>(rng());
    store.write(0, host.data(), host.size());

    const auto grouping = groupByBank(g, ids, addrs, bytes, 0);
    functionalTransfer(store, pim, true, grouping, bytes, 0);

    // Clobber the host image, bring the data back, verify.
    std::vector<std::uint8_t> zero(host.size(), 0);
    store.write(0, zero.data(), zero.size());
    functionalTransfer(store, pim, false, grouping, bytes, 0);

    std::vector<std::uint8_t> out(host.size());
    store.read(0, out.data(), out.size());
    EXPECT_EQ(host, out);
}

} // namespace device
} // namespace pimmmu

/**
 * @file
 * Tests for the crash-consistent checkpoint/restore subsystem:
 * the sectioned on-disk format (CRC rejection of corrupt and torn
 * snapshots, version gating), whole-System restore fidelity, and the
 * crash-injection identity gates — a run that is killed and restored
 * from its latest snapshot must be bit- and cycle-identical to the
 * uninterrupted run, in both the timing and fast-forward planes.
 *
 * Suites are named Checkpoint* / Soak* so the CI TSan job can run
 * exactly these (--gtest_filter=Checkpoint*:Soak*).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "checkpoint/format.hh"
#include "mmu/tenant_context.hh"
#include "serving/serving.hh"
#include "sim/system.hh"
#include "telemetry/stats_registry.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace {

using resilience::ErrorCode;

std::string
tmpPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** A small system so checkpoint tests run in milliseconds. */
sim::SystemConfig
smallConfig(sim::DesignPoint design = sim::DesignPoint::BaseDHP)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(design);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    return cfg;
}

/** Seed a deterministic non-zero pattern into low DRAM so transfers
 *  move real payload and the MEMB/PIMD sections are non-trivial. */
void
seedMemory(sim::System &sys)
{
    std::vector<std::uint8_t> pattern(256 * kKiB);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 131u + 17u);
    sys.mem().store().write(0, pattern.data(), pattern.size());
}

// ---------------------------------------------------------------------
// Format layer
// ---------------------------------------------------------------------

TEST(CheckpointFormat, SectionsRoundTrip)
{
    const std::string path = tmpPath("fmt_roundtrip.ckpt");
    std::vector<checkpoint::Section> in;
    serialize::ByteSink a;
    a.u64(0xdeadbeefcafef00dull);
    a.str("hello");
    in.push_back(checkpoint::makeSection("AAAA", a));
    serialize::ByteSink b; // deliberately empty payload
    in.push_back(checkpoint::makeSection("BBBB", b, 7));
    ASSERT_TRUE(checkpoint::writeFile(path, in).ok());

    std::vector<checkpoint::Section> out;
    ASSERT_TRUE(checkpoint::readFile(path, out).ok());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].tag, "AAAA");
    EXPECT_EQ(out[1].tag, "BBBB");
    EXPECT_EQ(out[1].version, 7u);
    EXPECT_TRUE(out[1].payload.empty());
    const checkpoint::Section *s = findSection(out, "AAAA");
    ASSERT_NE(s, nullptr);
    serialize::ByteSource src(s->payload.data(), s->payload.size());
    EXPECT_EQ(src.u64(), 0xdeadbeefcafef00dull);
    EXPECT_EQ(src.str(), "hello");
    EXPECT_TRUE(src.ok() && src.atEnd());
    EXPECT_EQ(findSection(out, "ZZZZ"), nullptr);
}

TEST(CheckpointFormat, WriterRejectsBadTag)
{
    serialize::ByteSink s;
    s.u64(1);
    std::vector<checkpoint::Section> in;
    in.push_back(checkpoint::makeSection("TOOLONG", s));
    const auto st =
        checkpoint::writeFile(tmpPath("fmt_badtag.ckpt"), in);
    EXPECT_EQ(st.code, ErrorCode::MalformedDescriptor);
}

TEST(CheckpointFormat, CorruptSectionRejected)
{
    namespace fault = testing::fault;
    const std::string path = tmpPath("fmt_corrupt.ckpt");
    serialize::ByteSink s;
    for (int i = 0; i < 64; ++i)
        s.u64(static_cast<std::uint64_t>(i));
    std::vector<checkpoint::Section> in;
    in.push_back(checkpoint::makeSection("DATA", s));

    {
        fault::Armed guard("ckpt.corrupt_section");
        ASSERT_TRUE(checkpoint::writeFile(path, in).ok());
        // Non-vacuity: the fault site actually fired inside the
        // writer (counts reset when the guard disarms).
        EXPECT_GT(fault::count("ckpt.corrupt_section"), 0u);
    }

    std::vector<checkpoint::Section> out;
    const auto st = checkpoint::readFile(path, out);
    EXPECT_EQ(st.code, ErrorCode::SnapshotCorrupt);
    EXPECT_NE(st.message.find(path), std::string::npos)
        << "diagnostic should name the file: " << st.message;
    EXPECT_NE(st.message.find("CRC"), std::string::npos) << st.message;
}

TEST(CheckpointFormat, TruncatedFileRejected)
{
    namespace fault = testing::fault;
    const std::string path = tmpPath("fmt_torn.ckpt");
    serialize::ByteSink s;
    for (int i = 0; i < 64; ++i)
        s.u64(static_cast<std::uint64_t>(i));
    std::vector<checkpoint::Section> in;
    in.push_back(checkpoint::makeSection("DATA", s));

    {
        fault::Armed guard("ckpt.truncate_file");
        ASSERT_TRUE(checkpoint::writeFile(path, in).ok());
        EXPECT_GT(fault::count("ckpt.truncate_file"), 0u);
    }

    std::vector<checkpoint::Section> out;
    const auto st = checkpoint::readFile(path, out);
    EXPECT_EQ(st.code, ErrorCode::SnapshotCorrupt);
    EXPECT_NE(st.message.find("truncated"), std::string::npos)
        << st.message;
}

TEST(CheckpointFormat, BadMagicRejected)
{
    const std::string path = tmpPath("fmt_magic.ckpt");
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    const char junk[] = "NOTACKPTxxxxxxxxxxxxxxxx";
    std::fwrite(junk, 1, sizeof(junk), fp);
    std::fclose(fp);

    std::vector<checkpoint::Section> out;
    const auto st = checkpoint::readFile(path, out);
    EXPECT_EQ(st.code, ErrorCode::SnapshotVersionMismatch);
    EXPECT_NE(st.message.find("magic"), std::string::npos) << st.message;
}

TEST(CheckpointFormat, FutureFormatVersionRejected)
{
    const std::string path = tmpPath("fmt_future.ckpt");
    serialize::ByteSink s;
    s.u64(42);
    std::vector<checkpoint::Section> in;
    in.push_back(checkpoint::makeSection("DATA", s));
    ASSERT_TRUE(checkpoint::writeFile(path, in).ok());

    // Bump the little-endian format version at offset 8.
    std::FILE *fp = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 8, SEEK_SET);
    const std::uint8_t v = checkpoint::kFormatVersion + 1;
    std::fwrite(&v, 1, 1, fp);
    std::fclose(fp);

    std::vector<checkpoint::Section> out;
    const auto st = checkpoint::readFile(path, out);
    EXPECT_EQ(st.code, ErrorCode::SnapshotVersionMismatch);
    EXPECT_NE(st.message.find("version"), std::string::npos)
        << st.message;
}

TEST(CheckpointFormat, TrailingBytesRejected)
{
    const std::string path = tmpPath("fmt_trailing.ckpt");
    serialize::ByteSink s;
    s.u64(42);
    std::vector<checkpoint::Section> in;
    in.push_back(checkpoint::makeSection("DATA", s));
    ASSERT_TRUE(checkpoint::writeFile(path, in).ok());

    std::FILE *fp = std::fopen(path.c_str(), "ab");
    ASSERT_NE(fp, nullptr);
    std::fwrite("junk", 1, 4, fp);
    std::fclose(fp);

    std::vector<checkpoint::Section> out;
    const auto st = checkpoint::readFile(path, out);
    EXPECT_EQ(st.code, ErrorCode::SnapshotCorrupt);
    EXPECT_NE(st.message.find("trailing"), std::string::npos)
        << st.message;
}

TEST(CheckpointFormat, MissingFileIsStructuredError)
{
    std::vector<checkpoint::Section> out;
    const auto st =
        checkpoint::readFile(tmpPath("does_not_exist.ckpt"), out);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code, ErrorCode::SnapshotCorrupt);
    EXPECT_NE(st.message.find("cannot open"), std::string::npos)
        << st.message;
}

// ---------------------------------------------------------------------
// Whole-system save/restore
// ---------------------------------------------------------------------

TEST(CheckpointRestore, GeometryMismatchRejected)
{
    telemetry::StatsRegistry::global().clear();
    const std::string path = tmpPath("restore_geom.ckpt");
    {
        sim::System sys(smallConfig(sim::DesignPoint::BaseDHP));
        seedMemory(sys);
        sys.runTransfer(core::XferDirection::DramToPim, 16, 2 * kKiB);
        ASSERT_TRUE(sys.eq().run());
        ASSERT_TRUE(checkpoint::save(sys, nullptr, {}, path).ok());
    }
    telemetry::StatsRegistry::global().clear();
    sim::System other(smallConfig(sim::DesignPoint::Base));
    const auto st = checkpoint::restore(other, nullptr, nullptr, path);
    EXPECT_EQ(st.code, ErrorCode::SnapshotVersionMismatch);
    EXPECT_NE(st.message.find("design point"), std::string::npos)
        << st.message;
}

TEST(CheckpointRestore, ServerPresenceMismatchRejected)
{
    telemetry::StatsRegistry::global().clear();
    const std::string path = tmpPath("restore_serv.ckpt");
    {
        sim::System sys(smallConfig());
        ASSERT_TRUE(checkpoint::save(sys, nullptr, {}, path).ok());
    }
    telemetry::StatsRegistry::global().clear();
    sim::System sys(smallConfig());
    serving::Server server(sys, serving::ServerConfig{});
    const auto st = checkpoint::restore(sys, &server, nullptr, path);
    EXPECT_EQ(st.code, ErrorCode::SnapshotVersionMismatch);
    EXPECT_NE(st.message.find("serving layer"), std::string::npos)
        << st.message;
}

TEST(CheckpointRestore, UserBlobRoundTrips)
{
    telemetry::StatsRegistry::global().clear();
    const std::string path = tmpPath("restore_user.ckpt");
    std::vector<std::uint8_t> blobIn;
    for (int i = 0; i < 300; ++i)
        blobIn.push_back(static_cast<std::uint8_t>(i * 11));
    {
        sim::System sys(smallConfig());
        ASSERT_TRUE(checkpoint::save(sys, nullptr, blobIn, path).ok());
    }
    telemetry::StatsRegistry::global().clear();
    sim::System sys(smallConfig());
    std::vector<std::uint8_t> blobOut;
    ASSERT_TRUE(
        checkpoint::restore(sys, nullptr, &blobOut, path).ok());
    EXPECT_EQ(blobIn, blobOut);
}

TEST(CheckpointRestore, MemoryAndClockSurviveRestore)
{
    telemetry::StatsRegistry::global().clear();
    const std::string path = tmpPath("restore_mem.ckpt");
    Tick refNow = 0;
    std::uint64_t refExec = 0, refMem = 0;
    {
        sim::System sys(smallConfig());
        seedMemory(sys);
        sys.runTransfer(core::XferDirection::DramToPim, 32, 4 * kKiB);
        sys.runTransfer(core::XferDirection::PimToDram, 16, 2 * kKiB);
        sys.runMemcpy(64 * kKiB);
        ASSERT_TRUE(sys.eq().run());
        refNow = sys.eq().now();
        refExec = sys.eq().executed();
        refMem = sys.memoryFingerprint();
        ASSERT_TRUE(checkpoint::save(sys, nullptr, {}, path).ok());
        // Saving is read-only: the live system is unperturbed.
        EXPECT_EQ(sys.eq().now(), refNow);
        EXPECT_EQ(sys.memoryFingerprint(), refMem);
    }
    telemetry::StatsRegistry::global().clear();
    sim::System sys(smallConfig());
    ASSERT_TRUE(checkpoint::restore(sys, nullptr, nullptr, path).ok());
    EXPECT_EQ(sys.eq().now(), refNow);
    EXPECT_EQ(sys.eq().executed(), refExec);
    EXPECT_EQ(sys.memoryFingerprint(), refMem);
}

// ---------------------------------------------------------------------
// Crash-injection identity gates
// ---------------------------------------------------------------------

struct Fingerprint
{
    Tick now = 0;
    std::uint64_t executed = 0;
    std::uint64_t memFnv = 0;
    std::uint64_t statsFnv = 0;

    bool operator==(const Fingerprint &o) const
    {
        return now == o.now && executed == o.executed &&
               memFnv == o.memFnv && statsFnv == o.statsFnv;
    }
};

/** One deterministic workload step; the op mix cycles so every crash
 *  point lands in a different phase of the workload. */
void
doOp(sim::System &sys, unsigned i)
{
    switch (i % 3) {
      case 0:
        sys.runTransfer(core::XferDirection::DramToPim, 16 + (i % 2) * 8,
                        2 * kKiB);
        break;
      case 1:
        sys.runTransfer(core::XferDirection::PimToDram, 8, 1 * kKiB);
        break;
      default:
        sys.runMemcpy(32 * kKiB);
        break;
    }
}

/**
 * Run @p totalOps workload steps with a checkpoint after every op; if
 * @p crashAfter is in range, tear the whole process-visible state down
 * at that boundary (System destroyed, stats registry cleared — the
 * in-memory analogue of SIGKILL) and resume from the snapshot, using
 * the op cursor stored in the USER section.
 */
void
runCampaign(sim::Plane plane, unsigned totalOps, unsigned crashAfter,
            const std::string &path, Fingerprint *out)
{
    telemetry::StatsRegistry::global().clear();
    auto sys = std::make_unique<sim::System>(smallConfig());
    seedMemory(*sys);
    if (plane == sim::Plane::FastForward)
        sys->setPlane(sim::Plane::FastForward);

    unsigned i = 0;
    while (i < totalOps) {
        doOp(*sys, i);
        ++i;
        // Checkpoints happen only at quiesced boundaries: drain the
        // trailing controller/bookkeeping events left after the op.
        ASSERT_TRUE(sys->eq().run());
        serialize::ByteSink cursor;
        cursor.u64(i);
        ASSERT_TRUE(
            checkpoint::save(*sys, nullptr, cursor.data(), path).ok());
        if (i == crashAfter) {
            sys.reset();
            telemetry::StatsRegistry::global().clear();
            sys = std::make_unique<sim::System>(smallConfig());
            std::vector<std::uint8_t> blob;
            ASSERT_TRUE(
                checkpoint::restore(*sys, nullptr, &blob, path).ok());
            serialize::ByteSource src(blob.data(), blob.size());
            i = static_cast<unsigned>(src.u64());
            ASSERT_TRUE(src.ok() && src.atEnd());
            ASSERT_EQ(i, crashAfter);
        }
    }
    out->now = sys->eq().now();
    out->executed = sys->eq().executed();
    out->memFnv = sys->memoryFingerprint();
    out->statsFnv = checkpoint::statsFingerprint();
}

void
identityGate(sim::Plane plane)
{
    const unsigned kOps = 9;
    Fingerprint ref;
    runCampaign(plane, kOps, /*crashAfter=*/kOps + 1,
                tmpPath("identity_ref.ckpt"), &ref);
    if (::testing::Test::HasFatalFailure())
        return;
    // The fast-forward plane completes ops without scheduling events,
    // so only the timing plane is expected to execute any.
    if (plane == sim::Plane::Timing)
        ASSERT_GT(ref.executed, 0u);
    ASSERT_NE(ref.memFnv, 0u);

    // Crash at several distinct boundaries; each restored run must be
    // bit- and cycle-identical to the uninterrupted reference.
    for (unsigned crashAfter : {1u, 4u, 8u}) {
        Fingerprint got;
        runCampaign(plane, kOps, crashAfter,
                    tmpPath("identity_crash.ckpt"), &got);
        if (::testing::Test::HasFatalFailure())
            return;
        EXPECT_EQ(got.now, ref.now) << "crash@" << crashAfter;
        EXPECT_EQ(got.executed, ref.executed) << "crash@" << crashAfter;
        EXPECT_EQ(got.memFnv, ref.memFnv) << "crash@" << crashAfter;
        EXPECT_EQ(got.statsFnv, ref.statsFnv)
            << "crash@" << crashAfter;
    }
}

TEST(CheckpointIdentity, TimingPlaneCrashRestoreIsBitIdentical)
{
    identityGate(sim::Plane::Timing);
}

TEST(CheckpointIdentity, FastForwardCrashRestoreIsBitIdentical)
{
    identityGate(sim::Plane::FastForward);
}

// ---------------------------------------------------------------------
// Serving-layer crash/restore (mini soak)
// ---------------------------------------------------------------------

constexpr unsigned kDpusPerReq = 8;
constexpr std::uint64_t kBytesPerDpu = 4 * kKiB;
constexpr std::uint64_t kReqBytes = kDpusPerReq * kBytesPerDpu;

/** System + Server harness that can be torn down and rebuilt around a
 *  snapshot: rebuild() constructs fresh objects with the same configs
 *  but registers no tenants — restore() recreates them. */
struct SoakHarness
{
    serving::ServerConfig scfg;
    std::unique_ptr<sim::System> sys;
    std::unique_ptr<serving::Server> server;

    struct Window
    {
        Addr srcPa = 0, dstPa = 0;
        Addr srcVa = 0, dstVa = 0, heapVa = 0;
    };
    std::vector<Window> win;

    explicit SoakHarness(const serving::ServerConfig &sc) : scfg(sc)
    {
        rebuild();
    }

    sim::SystemConfig
    sysConfig() const
    {
        sim::SystemConfig cfg =
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
        cfg.dramGeom.rows = 1024;
        cfg.pimGeom.banks.rows = 1024;
        cfg.resilience = resilience::Policy::withRetryAndMask();
        return cfg;
    }

    void
    rebuild()
    {
        server.reset();
        sys.reset();
        telemetry::StatsRegistry::global().clear();
        sys = std::make_unique<sim::System>(sysConfig());
        server = std::make_unique<serving::Server>(*sys, scfg);
    }

    serving::TenantHandle
    addTenant(const serving::TenantConfig &tc)
    {
        const serving::TenantHandle h = server->addTenant(tc);
        const std::uint64_t winBytes =
            ((kReqBytes + mmu::kPageBytes - 1) / mmu::kPageBytes) *
            mmu::kPageBytes;
        Window w;
        w.srcPa = sys->allocDram(winBytes, mmu::kPageBytes);
        w.dstPa = sys->allocDram(winBytes, mmu::kPageBytes);
        mmu::TenantContext &ctx = server->tenantContext(h);
        EXPECT_TRUE(ctx.mapWindow(mapping::MemSpace::Dram, w.srcPa,
                                  winBytes, w.srcVa)
                        .ok());
        EXPECT_TRUE(ctx.mapWindow(mapping::MemSpace::Dram, w.dstPa,
                                  winBytes, w.dstVa)
                        .ok());
        EXPECT_TRUE(ctx.mapWindow(mapping::MemSpace::Pim,
                                  std::uint64_t{h} * mmu::kPageBytes,
                                  mmu::kPageBytes, w.heapVa)
                        .ok());
        win.push_back(w);

        std::vector<std::uint8_t> pattern(kReqBytes);
        for (std::size_t i = 0; i < pattern.size(); ++i)
            pattern[i] =
                static_cast<std::uint8_t>((i * 37u + 11u * h) & 0xff);
        sys->mem().store().write(w.srcPa, pattern.data(),
                                 pattern.size());
        return h;
    }

    serving::Request
    makeReq(serving::TenantHandle t, std::uint64_t tag)
    {
        serving::Request req;
        req.dir = core::XferDirection::DramToPim;
        req.sizePerPim = kBytesPerDpu;
        req.pimHeapVa = win[t].heapVa;
        req.deadlinePs = kTickMax;
        req.tag = tag;
        req.dpus.resize(kDpusPerReq);
        req.dramVa.resize(kDpusPerReq);
        for (unsigned i = 0; i < kDpusPerReq; ++i) {
            req.dpus[i] = static_cast<unsigned>(t) * kDpusPerReq + i;
            req.dramVa[i] =
                win[t].srcVa + std::uint64_t{i} * kBytesPerDpu;
        }
        return req;
    }
};

/**
 * W windows of requests across two tenants with a checkpoint after
 * each drained window; crashes (if any) strike at window boundaries
 * and resume from the snapshot. Returns the final fingerprint and
 * ledger totals.
 */
void
runServingCampaign(unsigned windows,
                   const std::vector<unsigned> &crashAt,
                   const std::string &path, Fingerprint *out,
                   serving::Server::Totals *totalsOut)
{
    serving::ServerConfig scfg;
    SoakHarness h(scfg);
    const auto t0 = h.addTenant(serving::TenantConfig{});
    const auto t1 = h.addTenant(serving::TenantConfig{});
    ASSERT_FALSE(::testing::Test::HasFailure());

    std::uint64_t delivered = 0;
    auto done = [&delivered](const serving::Result &r) {
        if (r.outcome == serving::Outcome::Delivered)
            ++delivered;
    };

    std::uint64_t deliveredFloor = 0;
    unsigned w = 0;
    while (w < windows) {
        for (unsigned k = 0; k < 3; ++k) {
            ASSERT_TRUE(
                h.server
                    ->submit(t0, h.makeReq(t0, w * 100 + k), done)
                    .ok());
            ASSERT_TRUE(
                h.server
                    ->submit(t1, h.makeReq(t1, w * 100 + 50 + k), done)
                    .ok());
        }
        ASSERT_TRUE(h.server->drain());
        ASSERT_TRUE(h.sys->eq().run());
        ++w;
        serialize::ByteSink cursor;
        cursor.u64(w);
        ASSERT_TRUE(checkpoint::save(*h.sys, h.server.get(),
                                     cursor.data(), path)
                        .ok());
        if (std::find(crashAt.begin(), crashAt.end(), w) !=
            crashAt.end()) {
            // Counter monotonicity across the crash: totals may never
            // move backwards once restored.
            deliveredFloor = h.server->totals().delivered;
            h.rebuild();
            std::vector<std::uint8_t> blob;
            ASSERT_TRUE(checkpoint::restore(*h.sys, h.server.get(),
                                            &blob, path)
                            .ok());
            serialize::ByteSource src(blob.data(), blob.size());
            w = static_cast<unsigned>(src.u64());
            ASSERT_TRUE(src.ok() && src.atEnd());
            EXPECT_GE(h.server->totals().delivered, deliveredFloor);
        }
    }

    std::string why;
    EXPECT_TRUE(h.server->checkConservation(&why)) << why;
    *totalsOut = h.server->totals();
    out->now = h.sys->eq().now();
    out->executed = h.sys->eq().executed();
    out->memFnv = h.sys->memoryFingerprint();
    out->statsFnv = checkpoint::statsFingerprint();
}

TEST(SoakServing, CrashRestoreKeepsLedgerAndTimeIdentical)
{
    const unsigned kWindows = 6;
    Fingerprint ref, got;
    serving::Server::Totals refTotals, gotTotals;
    runServingCampaign(kWindows, {}, tmpPath("soak_ref.ckpt"), &ref,
                       &refTotals);
    if (::testing::Test::HasFatalFailure())
        return;
    EXPECT_EQ(refTotals.submitted, kWindows * 6u);
    EXPECT_EQ(refTotals.delivered, refTotals.submitted);

    runServingCampaign(kWindows, {2u, 4u}, tmpPath("soak_crash.ckpt"),
                       &got, &gotTotals);
    if (::testing::Test::HasFatalFailure())
        return;
    EXPECT_EQ(got.now, ref.now);
    EXPECT_EQ(got.executed, ref.executed);
    EXPECT_EQ(got.memFnv, ref.memFnv);
    EXPECT_EQ(got.statsFnv, ref.statsFnv);
    EXPECT_EQ(gotTotals.submitted, refTotals.submitted);
    EXPECT_EQ(gotTotals.delivered, refTotals.delivered);
    EXPECT_EQ(gotTotals.bytesDelivered, refTotals.bytesDelivered);
}

} // namespace
} // namespace pimmmu

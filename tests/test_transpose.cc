#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "pim/transpose.hh"

namespace pimmmu {
namespace device {

TEST(Transpose, IsAnInvolution)
{
    Rng rng(42);
    std::uint8_t in[kBlockBytes], once[kBlockBytes], twice[kBlockBytes];
    for (auto &b : in)
        b = static_cast<std::uint8_t>(rng());
    transpose8x8(in, once);
    transpose8x8(once, twice);
    EXPECT_EQ(0, std::memcmp(in, twice, kBlockBytes));
}

TEST(Transpose, MatrixSemantics)
{
    std::uint8_t in[kBlockBytes];
    for (unsigned w = 0; w < 8; ++w)
        for (unsigned c = 0; c < 8; ++c)
            in[w * 8 + c] = static_cast<std::uint8_t>(w * 16 + c);
    std::uint8_t out[kBlockBytes];
    transpose8x8(in, out);
    for (unsigned w = 0; w < 8; ++w)
        for (unsigned c = 0; c < 8; ++c)
            EXPECT_EQ(out[c * 8 + w], in[w * 8 + c]);
}

TEST(Transpose, PackThenUnpackRecoversEachChipsWord)
{
    // The property that makes PIM transfers work (paper Fig. 3):
    // pack 8 words, byte-interleave across chips, and every chip ends
    // up holding its own complete word.
    Rng rng(7);
    std::uint8_t words[8][kWordBytes];
    const std::uint8_t *rows[8];
    for (unsigned c = 0; c < 8; ++c) {
        for (unsigned b = 0; b < kWordBytes; ++b)
            words[c][b] = static_cast<std::uint8_t>(rng());
        rows[c] = words[c];
    }

    std::uint8_t wire[kBlockBytes];
    packWireBlock(rows, wire);

    // Chip interleaving: chip j receives byte j of every wire word.
    std::uint8_t chipBytes[8][kWordBytes];
    for (unsigned w = 0; w < 8; ++w)
        for (unsigned j = 0; j < 8; ++j)
            chipBytes[j][w] = wire[w * 8 + j];

    for (unsigned c = 0; c < 8; ++c) {
        EXPECT_EQ(0, std::memcmp(chipBytes[c], words[c], kWordBytes))
            << "chip " << c << " did not receive its word";
    }
}

TEST(Transpose, UnpackMatchesInterleaveModel)
{
    Rng rng(13);
    std::uint8_t wire[kBlockBytes];
    for (auto &b : wire)
        b = static_cast<std::uint8_t>(rng());
    for (unsigned chip = 0; chip < 8; ++chip) {
        std::uint8_t word[kWordBytes];
        unpackWireWord(wire, chip, word);
        for (unsigned b = 0; b < kWordBytes; ++b)
            EXPECT_EQ(word[b], wire[b * 8 + chip]);
    }
}

TEST(Transpose, PackUnpackRoundTripAllChips)
{
    Rng rng(99);
    for (int iter = 0; iter < 50; ++iter) {
        std::uint8_t words[8][kWordBytes];
        const std::uint8_t *rows[8];
        for (unsigned c = 0; c < 8; ++c) {
            for (unsigned b = 0; b < kWordBytes; ++b)
                words[c][b] = static_cast<std::uint8_t>(rng());
            rows[c] = words[c];
        }
        std::uint8_t wire[kBlockBytes];
        packWireBlock(rows, wire);
        for (unsigned c = 0; c < 8; ++c) {
            std::uint8_t word[kWordBytes];
            unpackWireWord(wire, c, word);
            EXPECT_EQ(0, std::memcmp(word, words[c], kWordBytes));
        }
    }
}

} // namespace device
} // namespace pimmmu

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/sweep_runner.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace {

TEST(SweepRunner, RunsEveryJobExactlyOnce)
{
    sim::SweepRunner runner(3);
    std::vector<std::atomic<int>> hits(17);
    runner.run(hits.size(), [&](std::size_t j) { ++hits[j]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, SerialPathPreservesJobOrder)
{
    sim::SweepRunner runner(1);
    EXPECT_EQ(runner.threads(), 1u);
    std::vector<std::size_t> order;
    runner.run(5, [&](std::size_t j) { order.push_back(j); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepRunner, ParallelMatchesSerialResults)
{
    // The same deterministic per-job computation must land in the same
    // result slots regardless of worker count.
    auto compute = [](std::size_t j) {
        std::uint64_t v = j + 1;
        for (int i = 0; i < 1000; ++i)
            v = v * 6364136223846793005ull + 1442695040888963407ull;
        return v;
    };
    std::vector<std::uint64_t> serial(32), parallel(32);
    sim::SweepRunner{1}.run(serial.size(), [&](std::size_t j) {
        serial[j] = compute(j);
    });
    sim::SweepRunner{4}.run(parallel.size(), [&](std::size_t j) {
        parallel[j] = compute(j);
    });
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, WorkerStatsAggregateIntoLauncherRegistry)
{
    telemetry::StatsRegistry &reg = telemetry::StatsRegistry::global();
    const std::size_t retiredBefore = reg.retiredGroups();
    const std::size_t liveBefore = reg.liveGroups();

    sim::SweepRunner runner(2);
    runner.run(6, [&](std::size_t j) {
        // Each job registers a group in its worker's thread-local
        // registry and retires it, like a System teardown does.
        stats::Group g("sweep_job" + std::to_string(j));
        g.counter("value") += j;
        telemetry::StatsRegistry::global().add(g);
        telemetry::StatsRegistry::global().remove(g);
    });

    // All six retired snapshots were moved into the launching thread's
    // registry; nothing stayed live.
    EXPECT_EQ(reg.retiredGroups(), retiredBefore + 6);
    EXPECT_EQ(reg.liveGroups(), liveBefore);
}

TEST(SweepRunner, ParallelTimelinesMergeWithJobPrefix)
{
    telemetry::Timeline &tl = telemetry::Timeline::global();
    tl.clear();
    tl.setEnabled(true);

    sim::SweepRunner runner(2);
    runner.run(2, [&](std::size_t j) {
        telemetry::Timeline &wtl = telemetry::Timeline::global();
        // Workers inherit the launcher's enabled flag.
        EXPECT_TRUE(wtl.enabled());
        const unsigned t = wtl.track("engine");
        wtl.span(t, "work", 100 * (j + 1), 200 * (j + 1));
    });

    std::ostringstream os;
    tl.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("job0/engine"), std::string::npos);
    EXPECT_NE(json.find("job1/engine"), std::string::npos);
    tl.clear();
    tl.setEnabled(false);
}

TEST(SweepRunner, SerialTimelineKeepsTrackNames)
{
    telemetry::Timeline &tl = telemetry::Timeline::global();
    tl.clear();
    tl.setEnabled(true);

    sim::SweepRunner runner(1);
    runner.run(2, [&](std::size_t j) {
        telemetry::Timeline &wtl = telemetry::Timeline::global();
        wtl.span(wtl.track("engine"), "work", 100 * (j + 1),
                 200 * (j + 1));
    });

    std::ostringstream os;
    tl.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"engine\""), std::string::npos);
    EXPECT_EQ(json.find("job0/"), std::string::npos);
    tl.clear();
    tl.setEnabled(false);
}

TEST(SweepRunner, ShardOwnershipPartitionsJobs)
{
    // Round-robin ownership: every job owned by exactly one of the
    // shards, and the default spec owns everything.
    const sim::ShardSpec s0{3, 0}, s1{3, 1}, s2{3, 2};
    EXPECT_TRUE(s0.sharded());
    EXPECT_FALSE(sim::ShardSpec{}.sharded());
    for (std::size_t j = 0; j < 20; ++j) {
        EXPECT_EQ(s0.ownsJob(j) + s1.ownsJob(j) + s2.ownsJob(j), 1)
            << "job " << j;
        EXPECT_TRUE(sim::ShardSpec{}.ownsJob(j));
    }
    EXPECT_TRUE(s1.ownsJob(1));
    EXPECT_TRUE(s1.ownsJob(4));
    EXPECT_FALSE(s1.ownsJob(3));
}

TEST(SweepRunner, ShardedSerialRunVisitsOwnedJobsInOrder)
{
    sim::SweepRunner runner(1);
    runner.setShard({2, 1});
    EXPECT_EQ(runner.shard().count, 2u);
    EXPECT_EQ(runner.shard().index, 1u);
    std::vector<std::size_t> order;
    runner.run(7, [&](std::size_t j) { order.push_back(j); });
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(SweepRunner, ShardsReassembleTheUnshardedSweep)
{
    // Three parallel shards, each touching only its owned slots, must
    // jointly reproduce the serial unsharded result vector exactly.
    auto compute = [](std::size_t j) {
        std::uint64_t v = j + 1;
        for (int i = 0; i < 1000; ++i)
            v = v * 6364136223846793005ull + 1442695040888963407ull;
        return v;
    };
    const std::size_t jobs = 24;
    std::vector<std::uint64_t> full(jobs, 0);
    sim::SweepRunner{1}.run(jobs, [&](std::size_t j) {
        full[j] = compute(j);
    });
    std::vector<std::uint64_t> merged(jobs, 0);
    for (unsigned idx = 0; idx < 3; ++idx) {
        sim::SweepRunner runner(2);
        runner.setShard({3, idx});
        runner.run(jobs, [&](std::size_t j) {
            EXPECT_EQ(j % 3, idx) << "job leaked across shards";
            EXPECT_EQ(merged[j], 0u) << "job " << j << " ran twice";
            merged[j] = compute(j);
        });
    }
    EXPECT_EQ(merged, full);
}

TEST(SweepRunner, ShardedParallelTimelinesKeepGlobalJobIds)
{
    // Telemetry prefixes carry the GLOBAL job index, so traces from
    // different shards stay distinguishable after a merge.
    telemetry::Timeline &tl = telemetry::Timeline::global();
    tl.clear();
    tl.setEnabled(true);

    sim::SweepRunner runner(2);
    runner.setShard({2, 1});
    runner.run(4, [&](std::size_t) {
        telemetry::Timeline &wtl = telemetry::Timeline::global();
        wtl.span(wtl.track("engine"), "work", 100, 200);
    });

    std::ostringstream os;
    tl.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("job1/engine"), std::string::npos);
    EXPECT_NE(json.find("job3/engine"), std::string::npos);
    EXPECT_EQ(json.find("job0/"), std::string::npos);
    EXPECT_EQ(json.find("job2/"), std::string::npos);
    tl.clear();
    tl.setEnabled(false);
}

TEST(SweepRunner, FirstJobExceptionPropagates)
{
    sim::SweepRunner runner(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        runner.run(4,
                   [&](std::size_t j) {
                       ++ran;
                       if (j == 1)
                           throw std::runtime_error("job 1 failed");
                   }),
        std::runtime_error);
    // Other jobs still completed; only the exception is re-raised.
    EXPECT_EQ(ran.load(), 4);
}

} // namespace
} // namespace pimmmu

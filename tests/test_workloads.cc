#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "workloads/patterns.hh"
#include "workloads/prim.hh"

namespace pimmmu {
namespace workloads {

TEST(Patterns, SequentialIsDense)
{
    const auto addrs = sequentialPattern(4096, 16);
    ASSERT_EQ(addrs.size(), 16u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(addrs[i], 4096u + i * 64);
}

TEST(Patterns, StridedWrapsWithinRegion)
{
    const std::uint64_t stride = 4096, region = 64 * kKiB;
    const auto addrs = stridedPattern(0, 100, stride, region);
    ASSERT_EQ(addrs.size(), 100u);
    for (Addr a : addrs)
        EXPECT_LT(a, region);
    // First pass is strided exactly.
    EXPECT_EQ(addrs[1] - addrs[0], stride);
}

TEST(Patterns, StridedPhaseShiftAvoidsRetouchingLines)
{
    const auto addrs = stridedPattern(0, 64, 1024, 16 * 1024);
    std::set<Addr> unique(addrs.begin(), addrs.end());
    EXPECT_EQ(unique.size(), addrs.size());
}

TEST(Patterns, RandomIsDeterministicAndBounded)
{
    const auto a = randomPattern(0, 1000, kMiB, 9);
    const auto b = randomPattern(0, 1000, kMiB, 9);
    const auto c = randomPattern(0, 1000, kMiB, 10);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    for (Addr addr : a) {
        EXPECT_LT(addr, kMiB);
        EXPECT_EQ(addr % 64, 0u);
    }
}

TEST(Prim, SuiteHasSixteenUniqueWorkloads)
{
    const auto &suite = primSuite();
    EXPECT_EQ(suite.size(), 16u);
    std::set<std::string> names;
    for (const auto &w : suite) {
        names.insert(w.name);
        EXPECT_GT(w.inputBytesPerDpu, 0u);
        EXPECT_GT(w.outputBytesPerDpu, 0u);
        EXPECT_EQ(w.inputBytesPerDpu % 64, 0u)
            << w.name << ": transfer sizes must be line-aligned";
        EXPECT_EQ(w.outputBytesPerDpu % 64, 0u);
        EXPECT_GT(w.kernel.cyclesPerByte, 0.0);
    }
    EXPECT_EQ(names.size(), 16u);
}

TEST(Prim, LookupByName)
{
    EXPECT_STREQ(primWorkload("BS").name, "BS");
    EXPECT_STREQ(primWorkload("SCAN-SSA").name, "SCAN-SSA");
    EXPECT_THROW(primWorkload("NOPE"), SimError);
}

TEST(Prim, KernelIntensityOrderingMatchesCharacterization)
{
    // BS is transfer-dominated (tiny kernel); TS is kernel-dominated.
    EXPECT_LT(primWorkload("BS").kernel.cyclesPerByte, 0.5);
    EXPECT_GT(primWorkload("TS").kernel.cyclesPerByte, 100.0);
    EXPECT_LT(primWorkload("SEL").kernel.cyclesPerByte,
              primWorkload("BFS").kernel.cyclesPerByte);
}

} // namespace workloads
} // namespace pimmmu

/**
 * @file
 * Latency-attribution subsystem tests: the stage state machine's
 * conservation property (stage buckets partition end-to-end latency
 * exactly), occupancy series, sweep-style take/merge, Perfetto flow
 * events, and full-System runs with attribution enabled — including
 * the bit-identity requirement (enabling attribution must not change
 * simulation outcomes) and the scrub timing-plane carve.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mmu/mmu.hh"
#include "sim/system.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {

using telemetry::Timeline;
using telemetry::attribution::Kind;
using telemetry::attribution::Record;
using telemetry::attribution::Recorder;
using telemetry::attribution::Stage;

namespace {

Tick
stage(const Record &r, Stage s)
{
    return r.stagePs[static_cast<std::size_t>(s)];
}

/** Scoped enable of the global (thread-local) recorder. */
struct ScopedRecorder
{
    ScopedRecorder()
    {
        Recorder::global().clear();
        Recorder::global().setEnabled(true);
    }

    ~ScopedRecorder()
    {
        Recorder::global().setEnabled(false);
        Recorder::global().setLabel("");
        Recorder::global().clear();
    }

    Recorder &operator*() { return Recorder::global(); }
    Recorder *operator->() { return &Recorder::global(); }
};

} // namespace

// ---------------------------------------------------------------------
// Stage state machine.
// ---------------------------------------------------------------------

TEST(Attribution, DisabledRecorderIsInert)
{
    Recorder r;
    EXPECT_FALSE(r.enabled());
    EXPECT_EQ(r.open(Kind::Transfer, 100, Stage::QueueWait, 0, 64), 0u);
    // All hooks must tolerate id 0 silently.
    r.enterStage(0, Stage::Translate, 200);
    r.bookStall(0, Stage::Watchdog, 100, 200);
    r.carve(0, Stage::DramService, Stage::StallRefresh, 10);
    r.addModeled(0, Stage::Execute, 10);
    r.noteChannel(0, false, 0, false, 100);
    r.noteRetry(0);
    r.close(0, 300, false);
    EXPECT_TRUE(r.records().empty());
    EXPECT_EQ(r.openRecords(), 0u);
}

TEST(Attribution, StageSegmentsPartitionLatency)
{
    Recorder r;
    r.setEnabled(true);
    const std::uint64_t id =
        r.open(Kind::Transfer, 100, Stage::QueueWait, 3, 4096);
    ASSERT_NE(id, 0u);
    EXPECT_TRUE(r.isOpen(id));

    r.enterStage(id, Stage::Translate, 250);
    r.enterStage(id, Stage::DramService, 400);
    // Watchdog stall [500, 600]: DramService keeps [400, 500].
    r.bookStall(id, Stage::Watchdog, 500, 600);
    r.noteWatchdogResync(id);
    r.enterStage(id, Stage::Interrupt, 900);
    r.close(id, 1000, false);

    ASSERT_EQ(r.records().size(), 1u);
    const Record &rec = r.records().front();
    EXPECT_EQ(rec.startPs, 100u);
    EXPECT_EQ(rec.endPs, 1000u);
    EXPECT_EQ(stage(rec, Stage::QueueWait), 150u);
    EXPECT_EQ(stage(rec, Stage::Translate), 150u);
    EXPECT_EQ(stage(rec, Stage::DramService), 400u);
    EXPECT_EQ(stage(rec, Stage::Watchdog), 100u);
    EXPECT_EQ(stage(rec, Stage::Interrupt), 100u);
    EXPECT_EQ(rec.watchdogResyncs, 1u);
    EXPECT_EQ(rec.dominantStage(), Stage::DramService);
    // The conservation property.
    EXPECT_EQ(rec.stageSum(), rec.durationPs());
    EXPECT_FALSE(r.isOpen(id));
}

TEST(Attribution, CarveMovesBookedTimeClamped)
{
    Recorder r;
    r.setEnabled(true);
    const std::uint64_t id =
        r.open(Kind::Transfer, 0, Stage::DramService, 0, 64);
    r.enterStage(id, Stage::Interrupt, 1000); // DramService holds 1000
    r.carve(id, Stage::DramService, Stage::StallRefresh, 300);
    // Carving more than the stage holds moves only what's there.
    r.carve(id, Stage::DramService, Stage::StallRefresh, 5000);
    r.close(id, 1200, false);

    ASSERT_EQ(r.records().size(), 1u);
    const Record &rec = r.records().front();
    EXPECT_EQ(stage(rec, Stage::DramService), 0u);
    EXPECT_EQ(stage(rec, Stage::StallRefresh), 1000u);
    EXPECT_EQ(stage(rec, Stage::Interrupt), 200u);
    EXPECT_EQ(rec.stageSum(), rec.durationPs());
}

TEST(Attribution, ModeledTimeStillConserves)
{
    // Kernel launches book modeled (analytic) time that never advances
    // the event clock; close() at an unadvanced clock must still
    // produce duration == stage sum.
    Recorder r;
    r.setEnabled(true);
    const std::uint64_t id =
        r.open(Kind::Kernel, 5000, Stage::Execute, 2, 1024);
    r.addModeled(id, Stage::Execute, 700);
    r.addModeled(id, Stage::Execute, 300);
    r.noteRetry(id);
    r.close(id, 5000, false);

    ASSERT_EQ(r.records().size(), 1u);
    const Record &rec = r.records().front();
    EXPECT_EQ(rec.kind, Kind::Kernel);
    EXPECT_EQ(rec.startPs, 5000u);
    EXPECT_EQ(rec.endPs, 6000u);
    EXPECT_EQ(stage(rec, Stage::Execute), 1000u);
    EXPECT_EQ(rec.retries, 1u);
    EXPECT_EQ(rec.stageSum(), rec.durationPs());
}

TEST(Attribution, ChannelAccountingTracksFirstAndLast)
{
    Recorder r;
    r.setEnabled(true);
    const std::uint64_t id =
        r.open(Kind::Transfer, 0, Stage::DramService, 0, 128);
    r.noteChannel(id, false, 1, false, 100);
    r.noteChannel(id, false, 1, false, 300);
    r.noteChannel(id, true, 2, true, 250);
    const Record *peeked = r.peek(id);
    ASSERT_NE(peeked, nullptr);
    EXPECT_EQ(peeked->channels[0][1].reads, 2u);
    EXPECT_EQ(peeked->channels[0][1].firstPs, 100u);
    EXPECT_EQ(peeked->channels[0][1].lastPs, 300u);
    EXPECT_EQ(peeked->channels[1][2].writes, 1u);
    r.close(id, 400, false);
}

// ---------------------------------------------------------------------
// Occupancy profiler.
// ---------------------------------------------------------------------

TEST(Attribution, OccupancySeriesTimeWeighting)
{
    Recorder r;
    r.setEnabled(true);
    const unsigned s = r.series("test.depth", 0.0, 8.0, 8);
    // Value 2 held for 1000 ps, then 6 held for 3000 ps.
    r.sampleOccupancy(s, 0, 2.0);
    r.sampleOccupancy(s, 1000, 6.0);
    r.sampleOccupancy(s, 4000, 0.0);

    const auto &series = r.seriesData();
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].totalPs, 4000u);
    EXPECT_DOUBLE_EQ(series[0].timeAverage(),
                     (2.0 * 1000 + 6.0 * 3000) / 4000.0);
    // The series sat at 6 for 75% of sim time, so the p50 bucket is
    // already the 6-bucket but p20 is still the 2-bucket.
    EXPECT_GE(series[0].percentile(50), 6.0);
    EXPECT_LE(series[0].percentile(20), 3.0);
    EXPECT_DOUBLE_EQ(series[0].minSeen, 0.0);
    EXPECT_DOUBLE_EQ(series[0].maxSeen, 6.0);
}

TEST(Attribution, SeriesIdsAreStableAndNamed)
{
    Recorder r;
    const unsigned a = r.series("a", 0, 4, 4);
    const unsigned b = r.series("b", 0, 4, 4);
    EXPECT_NE(a, b);
    EXPECT_EQ(r.series("a", 0, 99, 17), a); // lookup, not re-creation
    // Registration while disabled works; sampling is gated.
    r.sampleOccupancy(a, 100, 1.0);
    r.sampleOccupancy(a, 200, 2.0);
    EXPECT_EQ(r.seriesData()[a].totalPs, 0u);
}

// ---------------------------------------------------------------------
// Sweep-style harvesting and merging.
// ---------------------------------------------------------------------

TEST(Attribution, TakeAndMergePrefixesLabelsAndRenumbers)
{
    Recorder job0, job1, main;
    main.setEnabled(true);
    for (Recorder *job : {&job0, &job1}) {
        job->setEnabled(true);
        job->setLabel("xfer");
        const std::uint64_t id =
            job->open(Kind::Transfer, 0, Stage::QueueWait, 0, 64);
        const unsigned s = job->series("ring", 0.0, 4.0, 4);
        job->sampleOccupancy(s, 0, 1.0);
        job->sampleOccupancy(s, 500, 2.0);
        job->close(id, 250, false);
    }
    main.mergeFrom(job0.take(), "job0/");
    main.mergeFrom(job1.take(), "job1/");

    ASSERT_EQ(main.records().size(), 2u);
    EXPECT_EQ(main.records()[0].label, "job0/xfer");
    EXPECT_EQ(main.records()[1].label, "job1/xfer");
    EXPECT_NE(main.records()[0].id, main.records()[1].id);
    // Occupancy series folded by name: 500 ps of weight per job.
    ASSERT_EQ(main.seriesData().size(), 1u);
    EXPECT_EQ(main.seriesData()[0].totalPs, 1000u);
}

// ---------------------------------------------------------------------
// Perfetto flow events.
// ---------------------------------------------------------------------

TEST(Attribution, TimelineFlowEventsCarryIds)
{
    Timeline tl;
    tl.setEnabled(true);
    const unsigned dce = tl.track("dce");
    const unsigned ch = tl.track("pim.ch0.xfer");
    tl.span(dce, "xfer#1", 100, 500);
    tl.span(ch, "xfer#1", 200, 400);
    tl.flowStart(dce, "xfer#1", 150, 7);
    tl.flowStep(ch, "xfer#1", 250, 7);
    tl.flowEnd(dce, "xfer#1", 450, 7);
    tl.flowStart(dce, "ignored", 100, 0); // flow id 0 is "no flow"

    std::ostringstream os;
    tl.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    // Flow-end binds to the enclosing slice ("bp":"e") per the
    // trace-event spec, and all three share the flow id.
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":7"), std::string::npos);
    EXPECT_EQ(json.find("ignored"), std::string::npos);
}

TEST(Attribution, TimelineMergeOffsetsFlowIds)
{
    Timeline a, b;
    a.setEnabled(true);
    b.setEnabled(true);
    const unsigned ta = a.track("dce");
    const unsigned tb = b.track("dce");
    a.flowStart(ta, "x", 100, 3);
    b.flowStart(tb, "x", 100, 3); // same id in another "job"
    a.mergeFrom(std::move(b), "job1/");

    std::ostringstream os;
    a.dumpJson(os);
    const std::string json = os.str();
    // The merged flow must not share id 3 with the local one.
    EXPECT_NE(json.find("\"id\":3"), std::string::npos);
    EXPECT_NE(json.find("\"id\":6"), std::string::npos);
}

// ---------------------------------------------------------------------
// Full-System runs.
// ---------------------------------------------------------------------

TEST(Attribution, ConservationOnPimMmuTransferRun)
{
    ScopedRecorder rec;
    rec->setLabel("fig06.mmu");

    sim::System sys(
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP));
    const sim::TransferStats ts =
        sys.runTransfer(core::XferDirection::DramToPim, 64, 2 * kKiB);
    ASSERT_TRUE(ts.ok());

    const Recorder &r = Recorder::global();
    EXPECT_EQ(r.openRecords(), 0u) << "records left open after run";
    ASSERT_FALSE(r.records().empty());
    bool sawDramService = false, sawPimChannel = false;
    for (const Record &record : r.records()) {
        // The acceptance property: summed stage buckets equal the
        // record's end-to-end latency, exactly, for every descriptor.
        EXPECT_EQ(record.stageSum(), record.durationPs())
            << "record " << record.id << " (" << record.label << ")";
        EXPECT_EQ(record.label, "fig06.mmu");
        EXPECT_FALSE(record.failed);
        sawDramService |= stage(record, Stage::DramService) > 0;
        for (const auto &cs : record.channels[1])
            sawPimChannel |= cs.touched();
    }
    EXPECT_TRUE(sawDramService);
    EXPECT_TRUE(sawPimChannel);

    // The DCE fed its occupancy series during the run.
    bool sawRing = false;
    for (const auto &s : r.seriesData())
        if (s.name == "dce.ring_depth" && s.totalPs > 0)
            sawRing = true;
    EXPECT_TRUE(sawRing);

    // And the critical-path report round-trips the records.
    std::ostringstream os;
    r.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("pim-mmu-attrib-v1"), std::string::npos);
    EXPECT_NE(json.find("\"stage_totals_ps\""), std::string::npos);
    EXPECT_NE(json.find("\"slowest\""), std::string::npos);
    EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
    EXPECT_NE(json.find("fig06.mmu"), std::string::npos);
}

TEST(Attribution, ConservationOnSoftwareTransferRun)
{
    ScopedRecorder rec;
    sim::System sys(
        sim::SystemConfig::paperTable1(sim::DesignPoint::Base));
    const sim::TransferStats ts =
        sys.runTransfer(core::XferDirection::DramToPim, 32, kKiB);
    ASSERT_TRUE(ts.ok());

    const Recorder &r = Recorder::global();
    EXPECT_EQ(r.openRecords(), 0u);
    ASSERT_FALSE(r.records().empty());
    for (const Record &record : r.records())
        EXPECT_EQ(record.stageSum(), record.durationPs());
}

TEST(Attribution, EnablingAttributionIsBitIdentical)
{
    // Same scenario twice: recorder off, then on. Simulated time and
    // event counts must not move — attribution observes, never acts.
    Tick simOff = 0, simOn = 0;
    std::uint64_t evOff = 0, evOn = 0;
    {
        sim::System sys(
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP));
        sys.runTransfer(core::XferDirection::DramToPim, 64, 2 * kKiB);
        simOff = sys.eq().now();
        evOff = sys.eq().executed();
    }
    {
        ScopedRecorder rec;
        sim::System sys(
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP));
        sys.runTransfer(core::XferDirection::DramToPim, 64, 2 * kKiB);
        simOn = sys.eq().now();
        evOn = sys.eq().executed();
    }
    EXPECT_EQ(simOff, simOn);
    EXPECT_EQ(evOff, evOn);
}

TEST(Attribution, FlowEventsEmittedOnSystemRun)
{
    ScopedRecorder rec;
    Timeline &tl = Timeline::global();
    tl.clear();
    tl.setEnabled(true);

    {
        sim::System sys(
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP));
        sys.runTransfer(core::XferDirection::DramToPim, 16, kKiB);
    }

    std::ostringstream os;
    tl.dumpJson(os);
    const std::string json = os.str();
    tl.setEnabled(false);
    tl.clear();
    // The descriptor chain reaches all three flow phases: start on the
    // runtime call span, steps on DCE/channel service spans, end back
    // on the call span.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Attribution, ScrubProbesConsumeTimingAndSurfaceStats)
{
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.resilience = resilience::Policy::withRepair();
    sim::System sys(cfg);
    ASSERT_NE(sys.resilienceManager(), nullptr);

    // No out-of-service banks: a scrub pass is free and timeless (the
    // chaos campaign's rate-0 identity depends on this).
    const Tick before = sys.eq().now();
    EXPECT_TRUE(sys.runScrub().idle());
    EXPECT_EQ(sys.eq().now(), before);

    sys.resilienceManager()->markDpuFailed(0, sys.eq().now());
    unsigned readmitted = 0;
    for (int pass = 0; pass < 8; ++pass) {
        const sim::ScrubReport rep = sys.runScrub();
        readmitted += rep.readmitted;
        if (rep.idle())
            break;
    }
    EXPECT_EQ(readmitted, 1u);
    // Probe traffic went through the timing plane...
    EXPECT_GT(sys.eq().now(), before);
    // ...and is accounted as stolen bandwidth in the scrub group.
    std::ostringstream os;
    telemetry::StatsRegistry::global().dumpJson(os);
    const std::string json = os.str();
    const auto groupPos = json.find("\"scrub\"");
    ASSERT_NE(groupPos, std::string::npos);
    EXPECT_NE(json.find("bandwidth_stolen"), std::string::npos);
    EXPECT_NE(json.find("probe_service_ps"), std::string::npos);
    EXPECT_EQ(json.find("\"bandwidth_stolen\":0,", groupPos),
              std::string::npos);
}

TEST(Attribution, HealthySeriesTracksMaskingAndReadmission)
{
    ScopedRecorder rec;
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.resilience = resilience::Policy::withRepair();
    sim::System sys(cfg);
    sys.resilienceManager()->markDpuFailed(0, 1000);
    while (!sys.runScrub().idle()) {
    }
    const Recorder &r = Recorder::global();
    bool found = false;
    for (const auto &s : r.seriesData()) {
        if (s.name != "resilience.healthy_dpus")
            continue;
        found = true;
        // The population dipped by one bank's worth and recovered.
        EXPECT_LT(s.minSeen, s.maxSeen);
    }
    EXPECT_TRUE(found);
}

TEST(Attribution, TlbWalkStageConservesOnVirtualTransfer)
{
    // A VA-submitted transfer with real (non-zero) TLB timing books
    // translation into the tlb_walk stage by carving it out of
    // Preprocess — so the partition property must still hold exactly,
    // with tlb_walk strictly positive on the descriptor records.
    ScopedRecorder rec;
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    sim::System sys(cfg);

    mmu::Mmu &m = sys.mmu();
    const mmu::TenantId tenant = m.createTenant();
    const unsigned dpus = 16;
    const std::uint64_t bytesPerDpu = 2 * kKiB;
    const std::uint64_t total = dpus * bytesPerDpu;
    const Addr pa = sys.allocDram(total, mmu::kPageBytes);
    const Addr vaBase = Addr{1} << 40;
    const Addr heapVa = Addr{1} << 41;
    ASSERT_TRUE(m.map(tenant, vaBase, pa, total, mmu::kPageBytes,
                      mmu::PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());
    ASSERT_TRUE(m.map(tenant, heapVa, 0, mmu::kPageBytes,
                      mmu::kPageBytes, mmu::PagePerms::rw(),
                      mapping::MemSpace::Pim)
                    .ok());

    core::PimMmuOp op;
    op.type = core::XferDirection::DramToPim;
    op.sizePerPim = bytesPerDpu;
    op.pimBaseHeapPtr = heapVa;
    op.tenant = tenant;
    for (unsigned i = 0; i < dpus; ++i) {
        op.pimIdArr.push_back(i);
        op.dramAddrArr.push_back(vaBase +
                                 std::uint64_t{i} * bytesPerDpu);
    }
    const sim::TransferStats ts = sys.runTransfer(std::move(op));
    ASSERT_TRUE(ts.ok()) << ts.status.str();

    const Recorder &r = Recorder::global();
    EXPECT_EQ(r.openRecords(), 0u);
    ASSERT_FALSE(r.records().empty());
    bool sawTlbWalk = false;
    for (const Record &record : r.records()) {
        EXPECT_EQ(record.stageSum(), record.durationPs())
            << "record " << record.id;
        sawTlbWalk |= stage(record, Stage::TlbWalk) > 0;
    }
    EXPECT_TRUE(sawTlbWalk)
        << "no record charged the tlb_walk stage on a timed VA run";
    // The JSON names the new stage.
    std::ostringstream os;
    r.dumpJson(os);
    EXPECT_NE(os.str().find("tlb_walk"), std::string::npos);
}

} // namespace pimmmu

#include <gtest/gtest.h>

#include <cstring>

#include "pim/pim_device.hh"

namespace pimmmu {
namespace device {

TEST(PimGeometry, PaperTable1Shape)
{
    const PimGeometry g = PimGeometry::paperTable1();
    EXPECT_EQ(g.banks.channels, 4u);
    EXPECT_EQ(g.banks.ranksPerChannel, 2u);
    EXPECT_EQ(g.banks.banksPerRank(), 8u); // 8 banks per UPMEM chip
    EXPECT_EQ(g.numBanks(), 64u);
    EXPECT_EQ(g.numDpus(), 512u);
}

TEST(PimGeometry, DpuIdDecomposition)
{
    const PimGeometry g = PimGeometry::paperTable1();
    for (unsigned dpu : {0u, 7u, 8u, 100u, 511u}) {
        EXPECT_EQ(g.dpuId(g.dpuBank(dpu), g.dpuChip(dpu)), dpu);
        EXPECT_LT(g.dpuChip(dpu), g.chipsPerRank);
        EXPECT_LT(g.dpuBank(dpu), g.numBanks());
    }
}

TEST(PimGeometry, BankCoordIsInverseOfGlobalBankIndex)
{
    const PimGeometry g = PimGeometry::paperTable1();
    for (unsigned b = 0; b < g.numBanks(); ++b) {
        const mapping::DramCoord c = g.bankCoord(b);
        EXPECT_EQ(c.globalBankIndex(g.banks), b);
    }
    EXPECT_THROW(g.bankCoord(g.numBanks()), SimError);
}

TEST(PimGeometry, BankRegionsTileThePimSpace)
{
    const PimGeometry g = PimGeometry::paperTable1();
    EXPECT_EQ(g.bankRegionOffset(0), 0u);
    EXPECT_EQ(g.bankRegionOffset(1), g.banks.bankBytes());
    EXPECT_EQ(g.bankRegionOffset(g.numBanks() - 1) + g.banks.bankBytes(),
              g.banks.capacityBytes());
}

TEST(PimGeometry, MramCapacityIsBankSliceAcrossChips)
{
    const PimGeometry g = PimGeometry::paperTable1();
    EXPECT_EQ(g.mramBytesPerDpu() * g.chipsPerRank, g.banks.bankBytes());
}

TEST(Dpu, MramReadWriteRoundTrip)
{
    Dpu dpu(3, 1 * kMiB);
    const char msg[] = "hello mram";
    dpu.mramWrite(4096, msg, sizeof(msg));
    char out[sizeof(msg)];
    dpu.mramRead(4096, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(Dpu, UntouchedMramReadsZero)
{
    Dpu dpu(0, kMiB);
    std::uint64_t v = 0xdead;
    dpu.mramRead(512 * kKiB, &v, sizeof(v));
    EXPECT_EQ(v, 0u);
}

TEST(Dpu, TypedLoadStore)
{
    Dpu dpu(0, kMiB);
    dpu.store<std::int32_t>(64, -12345);
    EXPECT_EQ(dpu.load<std::int32_t>(64), -12345);
    dpu.store<double>(128, 2.5);
    EXPECT_DOUBLE_EQ(dpu.load<double>(128), 2.5);
}

TEST(Dpu, CapacityIsEnforced)
{
    Dpu dpu(0, 4096);
    std::uint8_t buf[64] = {};
    EXPECT_THROW(dpu.mramWrite(4096 - 32, buf, 64), SimError);
    EXPECT_THROW(dpu.mramRead(4096, buf, 1), SimError);
}

TEST(PimDevice, LaunchRunsKernelOnSelectedDpus)
{
    PimGeometry g = PimGeometry::paperTable1();
    g.banks.rows = 256; // keep it small
    PimDevice dev(g);

    std::vector<unsigned> ids = {0, 5, 17, 100};
    KernelModel model;
    model.cyclesPerByte = 1.0;
    const Tick t = dev.launch(
        ids,
        [](Dpu &dpu, unsigned idx) {
            dpu.store<std::uint32_t>(0, 1000 + idx);
        },
        model, 4096);
    EXPECT_GT(t, 0u);
    for (unsigned i = 0; i < ids.size(); ++i)
        EXPECT_EQ(dev.dpu(ids[i]).load<std::uint32_t>(0), 1000 + i);
    // Untouched DPU unaffected.
    EXPECT_EQ(dev.dpu(1).load<std::uint32_t>(0), 0u);
}

TEST(KernelModelTest, ScalesWithBytesAndOverhead)
{
    KernelModel m;
    m.dpuMhz = 350;
    m.cyclesPerByte = 2.0;
    m.launchOverheadUs = 10.0;
    const Tick small = m.execTimePs(0);
    EXPECT_EQ(small, Tick{10} * kPsPerUs);
    const Tick big = m.execTimePs(350000);
    // 700k cycles at 350 MHz = 2 ms, plus overhead.
    EXPECT_NEAR(static_cast<double>(big),
                static_cast<double>(Tick{10} * kPsPerUs) + 2e9, 1e6);
}

} // namespace device
} // namespace pimmmu

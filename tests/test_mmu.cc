/**
 * @file
 * Unit tests for the virtual-memory layer: radix page-table walks
 * (depth 4 for 4 KiB pages, depth 3 for 2 MiB pages), mixed-page-size
 * mappings, TLB eviction/refill and shootdown, the physical-ownership
 * registry, and every structured translation-fault path end to end
 * through the descriptor submission path. The fault-injection sites
 * (mmu.drop_pte, mmu.corrupt_translation) prove the checks are
 * non-vacuous: breaking translation on purpose must trip them.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mmu/mmu.hh"
#include "mmu/page_table.hh"
#include "mmu/tlb.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace mmu {

namespace {

constexpr Addr kVa = Addr{1} << 32;

sim::SystemConfig
smallConfig()
{
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    return cfg;
}

/** A VA-addressed descriptor over the first @p dpus DPUs. */
core::PimMmuOp
vaOp(TenantId tenant, Addr vaBase, unsigned dpus,
     std::uint64_t bytesPerDpu, Addr heapVa)
{
    core::PimMmuOp op;
    op.type = core::XferDirection::DramToPim;
    op.sizePerPim = bytesPerDpu;
    op.pimBaseHeapPtr = heapVa;
    op.tenant = tenant;
    for (unsigned i = 0; i < dpus; ++i) {
        op.pimIdArr.push_back(i);
        op.dramAddrArr.push_back(vaBase +
                                 std::uint64_t{i} * bytesPerDpu);
    }
    return op;
}

} // namespace

// ----------------------------------------------------------------------
// Page table.
// ----------------------------------------------------------------------

TEST(PageTable, WalkDepthMatchesPageSize)
{
    PageTable pt;
    ASSERT_EQ(pt.map(kVa, 0, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    ASSERT_EQ(pt.map(kVa + kHugePageBytes, kHugePageBytes,
                     kHugePageBytes, kHugePageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");

    const WalkResult small = pt.walk(kVa);
    EXPECT_TRUE(small.mapped);
    EXPECT_EQ(small.levels, kWalkLevels);
    EXPECT_EQ(small.pageBytes, kPageBytes);

    const WalkResult huge = pt.walk(kVa + kHugePageBytes + 12345);
    EXPECT_TRUE(huge.mapped);
    EXPECT_EQ(huge.levels, kHugeWalkLevels);
    EXPECT_EQ(huge.pageBytes, kHugePageBytes);
    EXPECT_EQ(huge.pageBase, kHugePageBytes);
}

TEST(PageTable, UnmappedWalkStillCountsTablesTouched)
{
    PageTable pt;
    const WalkResult empty = pt.walk(kVa);
    EXPECT_FALSE(empty.mapped);
    EXPECT_EQ(empty.levels, 1u) << "root is always touched";

    // A neighbor mapping shares upper-level tables: a walk next to it
    // descends further before finding the hole.
    ASSERT_EQ(pt.map(kVa, 0, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    const WalkResult hole = pt.walk(kVa + kPageBytes);
    EXPECT_FALSE(hole.mapped);
    EXPECT_EQ(hole.levels, kWalkLevels);
}

TEST(PageTable, MixedPageSizesTranslateExactly)
{
    PageTable pt;
    // [kVa, +2M) huge onto pa 16M, then a 4K page right after it.
    ASSERT_EQ(pt.map(kVa, 16 * kMiB, kHugePageBytes, kHugePageBytes,
                     PagePerms::rw(), mapping::MemSpace::Dram),
              "");
    ASSERT_EQ(pt.map(kVa + kHugePageBytes, 64 * kMiB, kPageBytes,
                     kPageBytes, PagePerms::ro(),
                     mapping::MemSpace::Pim),
              "");
    EXPECT_EQ(pt.mappedPages(), 2u);

    const WalkResult a = pt.walk(kVa + 4 * kKiB + 8);
    EXPECT_EQ(a.pageBase + ((kVa + 4 * kKiB + 8) & (a.pageBytes - 1)),
              16 * kMiB + 4 * kKiB + 8);
    EXPECT_EQ(a.space, mapping::MemSpace::Dram);

    const WalkResult b = pt.walk(kVa + kHugePageBytes + 100);
    EXPECT_EQ(b.pageBase, 64 * kMiB);
    EXPECT_FALSE(b.perms.write);
    EXPECT_EQ(b.space, mapping::MemSpace::Pim);
}

TEST(PageTable, RejectsMisalignedAndOverlappingMaps)
{
    PageTable pt;
    EXPECT_NE(pt.map(kVa + 8, 0, kPageBytes, kPageBytes,
                     PagePerms::rw(), mapping::MemSpace::Dram),
              "");
    EXPECT_NE(pt.map(kVa, 8, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    EXPECT_NE(pt.map(kVa, 0, kPageBytes, 3 * kKiB, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    ASSERT_EQ(pt.map(kVa, 0, 4 * kPageBytes, kPageBytes,
                     PagePerms::rw(), mapping::MemSpace::Dram),
              "");
    // Any overlap with the live mapping is rejected and leaves the
    // table untouched.
    EXPECT_NE(pt.map(kVa + kPageBytes, 64 * kMiB, kPageBytes,
                     kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    EXPECT_EQ(pt.mappedPages(), 4u);
}

TEST(PageTable, UnmapPrunesEmptyTables)
{
    PageTable pt;
    const std::uint64_t baseline = pt.tableCount();
    ASSERT_EQ(pt.map(kVa, 0, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    EXPECT_GT(pt.tableCount(), baseline);
    // Partial unmap of a huge page is refused.
    ASSERT_EQ(pt.map(kVa + kHugePageBytes, kHugePageBytes,
                     kHugePageBytes, kHugePageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    EXPECT_NE(pt.unmap(kVa + kHugePageBytes, kPageBytes), "");

    EXPECT_EQ(pt.unmap(kVa, kPageBytes), "");
    EXPECT_EQ(pt.unmap(kVa + kHugePageBytes, kHugePageBytes), "");
    EXPECT_EQ(pt.mappedPages(), 0u);
    EXPECT_EQ(pt.tableCount(), baseline)
        << "empty radix tables must be pruned";
    EXPECT_FALSE(pt.walk(kVa).mapped);
}

// ----------------------------------------------------------------------
// TLB.
// ----------------------------------------------------------------------

TEST(Tlb, MissWalksThenHits)
{
    PageTable pt;
    ASSERT_EQ(pt.map(kVa, 0, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    TlbConfig cfg;
    Tlb tlb(cfg);

    const TlbResult miss = tlb.lookup(1, kVa, pt);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.leaf.mapped);
    EXPECT_EQ(miss.modeledPs,
              cfg.hitPs + Tick{kWalkLevels} * cfg.walkLevelPs);

    const TlbResult hit = tlb.lookup(1, kVa + 64, pt);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.modeledPs, cfg.hitPs);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.walkLevels(), kWalkLevels);
}

TEST(Tlb, EvictsLruWayAndRefills)
{
    PageTable pt;
    TlbConfig cfg;
    cfg.entries = 4; // one set of 4 ways: 5 pages force an eviction
    cfg.ways = 4;
    Tlb tlb(cfg);
    ASSERT_EQ(pt.map(kVa, 0, 8 * kPageBytes, kPageBytes,
                     PagePerms::rw(), mapping::MemSpace::Dram),
              "");

    for (unsigned p = 0; p < 5; ++p)
        EXPECT_FALSE(tlb.lookup(1, kVa + p * kPageBytes, pt).hit);
    EXPECT_EQ(tlb.evictions(), 1u);
    // Page 0 was the LRU victim: touching it again misses, the
    // recently used page 4 still hits.
    EXPECT_TRUE(tlb.lookup(1, kVa + 4 * kPageBytes, pt).hit);
    EXPECT_FALSE(tlb.lookup(1, kVa, pt).hit);
}

TEST(Tlb, TenantsNeverHitOnEachOther)
{
    PageTable pt;
    ASSERT_EQ(pt.map(kVa, 0, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    Tlb tlb(TlbConfig{});
    EXPECT_FALSE(tlb.lookup(1, kVa, pt).hit);
    EXPECT_FALSE(tlb.lookup(2, kVa, pt).hit)
        << "tenant 2 must not hit tenant 1's entry";
    EXPECT_TRUE(tlb.lookup(1, kVa, pt).hit);

    tlb.flushTenant(1);
    EXPECT_FALSE(tlb.lookup(1, kVa, pt).hit);
    EXPECT_TRUE(tlb.lookup(2, kVa, pt).hit)
        << "shootdown of tenant 1 must keep tenant 2's entry";
}

TEST(Tlb, UnmappedWalksAreNotCached)
{
    PageTable pt;
    Tlb tlb(TlbConfig{});
    EXPECT_FALSE(tlb.lookup(1, kVa, pt).leaf.mapped);
    ASSERT_EQ(pt.map(kVa, 0, kPageBytes, kPageBytes, PagePerms::rw(),
                     mapping::MemSpace::Dram),
              "");
    // No negative caching: the new mapping is visible immediately.
    const TlbResult r = tlb.lookup(1, kVa, pt);
    EXPECT_TRUE(r.leaf.mapped);
}

// ----------------------------------------------------------------------
// Mmu: tenants, ownership, structured faults.
// ----------------------------------------------------------------------

TEST(MmuTest, PhysicalOwnershipIsolatesTenants)
{
    Mmu mmu((MmuConfig()));
    const TenantId a = mmu.createTenant();
    const TenantId b = mmu.createTenant();
    ASSERT_TRUE(mmu.map(a, kVa, 0, 4 * kPageBytes, kPageBytes,
                        PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());

    // Tenant b claiming any overlapping physical page is isolation.
    const auto st = mmu.map(b, kVa, 2 * kPageBytes, 4 * kPageBytes,
                            kPageBytes, PagePerms::rw(),
                            mapping::MemSpace::Dram);
    EXPECT_EQ(st.code, resilience::ErrorCode::TenantIsolation);

    // The same physical range in the OTHER region is a different
    // namespace: MRAM offset 0 is not DRAM address 0.
    EXPECT_TRUE(mmu.map(b, kVa, 0, 4 * kPageBytes, kPageBytes,
                        PagePerms::rw(), mapping::MemSpace::Pim)
                    .ok());

    // After unmap, the claim is released.
    ASSERT_TRUE(mmu.unmap(a, kVa, 4 * kPageBytes).ok());
    EXPECT_TRUE(mmu.map(b, kVa + kMiB, 0, 4 * kPageBytes, kPageBytes,
                        PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());
}

TEST(MmuTest, UnmapShootsDownTlbAndAllowsRemap)
{
    Mmu mmu((MmuConfig()));
    const TenantId t = mmu.createTenant();
    ASSERT_TRUE(mmu.map(t, kVa, 0, kPageBytes, kPageBytes,
                        PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());
    Translation xl;
    ASSERT_TRUE(mmu.translateRange(t, kVa, 64, Access::Read,
                                   mapping::MemSpace::Dram, xl)
                    .ok());
    EXPECT_EQ(xl.paddr, 0u);
    ASSERT_TRUE(mmu.translateRange(t, kVa, 64, Access::Read,
                                   mapping::MemSpace::Dram, xl)
                    .ok());
    EXPECT_EQ(mmu.tlb().hits(), 1u);

    ASSERT_TRUE(mmu.unmap(t, kVa, kPageBytes).ok());
    // Remap the same VA to a different physical page: a stale TLB
    // entry would translate to the old frame.
    ASSERT_TRUE(mmu.map(t, kVa, 8 * kPageBytes, kPageBytes, kPageBytes,
                        PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());
    ASSERT_TRUE(mmu.translateRange(t, kVa, 64, Access::Read,
                                   mapping::MemSpace::Dram, xl)
                    .ok());
    EXPECT_EQ(xl.paddr, 8 * kPageBytes);
}

TEST(MmuTest, TranslateRangeFaultsAreStructured)
{
    Mmu mmu((MmuConfig()));
    const TenantId t = mmu.createTenant();
    ASSERT_TRUE(mmu.map(t, kVa, 0, 2 * kPageBytes, kPageBytes,
                        PagePerms::ro(), mapping::MemSpace::Dram)
                    .ok());
    // Two more mapped pages that are NOT physically contiguous with
    // the first two.
    ASSERT_TRUE(mmu.map(t, kVa + 2 * kPageBytes, 16 * kPageBytes,
                        2 * kPageBytes, kPageBytes, PagePerms::rw(),
                        mapping::MemSpace::Dram)
                    .ok());
    Translation xl;

    auto code = [&](TenantId tenant, Addr va, std::uint64_t bytes,
                    Access access, mapping::MemSpace space) {
        return mmu.translateRange(tenant, va, bytes, access, space, xl)
            .code;
    };
    using resilience::ErrorCode;
    EXPECT_EQ(code(t + 100, kVa, 64, Access::Read,
                   mapping::MemSpace::Dram),
              ErrorCode::TenantIsolation);
    EXPECT_EQ(code(t, kVa - kPageBytes, 64, Access::Read,
                   mapping::MemSpace::Dram),
              ErrorCode::UnmappedPage);
    EXPECT_EQ(code(t, kVa, 64, Access::Write, mapping::MemSpace::Dram),
              ErrorCode::PermissionDenied);
    EXPECT_EQ(code(t, kVa, 64, Access::Read, mapping::MemSpace::Pim),
              ErrorCode::RegionMismatch);
    EXPECT_EQ(code(t, kVa + kPageBytes, 2 * kPageBytes, Access::Read,
                   mapping::MemSpace::Dram),
              ErrorCode::MalformedDescriptor)
        << "physically non-contiguous range must be rejected";
    EXPECT_EQ(code(t, kVa, 0, Access::Read, mapping::MemSpace::Dram),
              ErrorCode::MalformedDescriptor);
}

TEST(MmuTest, DropPteFaultSiteMakesUnmappedChecksNonVacuous)
{
    Mmu mmu((MmuConfig()));
    const TenantId t = mmu.createTenant();
    ASSERT_TRUE(mmu.map(t, kVa, 0, kPageBytes, kPageBytes,
                        PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());
    Translation xl;
    {
        testing::fault::Armed armed("mmu.drop_pte");
        const auto st = mmu.translateRange(t, kVa, 64, Access::Read,
                                           mapping::MemSpace::Dram, xl);
        EXPECT_EQ(st.code, resilience::ErrorCode::UnmappedPage)
            << "dropping the PTE must surface as an unmapped fault";
        EXPECT_GE(testing::fault::count("mmu.drop_pte"), 1u);
    }
    EXPECT_TRUE(mmu.translateRange(t, kVa, 64, Access::Read,
                                   mapping::MemSpace::Dram, xl)
                    .ok())
        << "disarming restores translation (nothing was cached)";
}

TEST(MmuTest, StatsCountFaultsByCode)
{
    Mmu mmu((MmuConfig()));
    const TenantId t = mmu.createTenant();
    Translation xl;
    (void)mmu.translateRange(t, kVa, 64, Access::Read,
                             mapping::MemSpace::Dram, xl);
    (void)mmu.translateRange(t + 9, kVa, 64, Access::Read,
                             mapping::MemSpace::Dram, xl);
    EXPECT_EQ(mmu.stats().counterValue("fault_unmapped"), 1u);
    EXPECT_EQ(mmu.stats().counterValue("fault_tenant"), 1u);
    EXPECT_EQ(mmu.stats().counterValue("faults"), 2u);
}

// ----------------------------------------------------------------------
// End to end: structured faults through descriptor submission.
// ----------------------------------------------------------------------

TEST(MmuEndToEnd, VirtualTransferDeliversAndLegacyPathUnaffected)
{
    sim::System sys(smallConfig());
    mmu::Mmu &m = sys.mmu();
    const TenantId t = m.createTenant();
    const unsigned dpus = 16;
    const std::uint64_t bytesPerDpu = 2 * kKiB;
    const std::uint64_t total = dpus * bytesPerDpu;
    const Addr pa = sys.allocDram(total, kPageBytes);
    ASSERT_TRUE(m.map(t, kVa, pa, total, kPageBytes, PagePerms::rw(),
                      mapping::MemSpace::Dram)
                    .ok());
    const Addr heapVa = Addr{1} << 40;
    ASSERT_TRUE(m.map(t, heapVa, 0, kPageBytes, kPageBytes,
                      PagePerms::rw(), mapping::MemSpace::Pim)
                    .ok());

    std::vector<std::uint8_t> payload(total);
    for (std::uint64_t i = 0; i < total; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
    sys.mem().store().write(pa, payload.data(), payload.size());

    const auto st =
        sys.runTransfer(vaOp(t, kVa, dpus, bytesPerDpu, heapVa));
    ASSERT_TRUE(st.ok()) << st.status.str();
    EXPECT_EQ(st.bytes, total);

    std::vector<std::uint8_t> got(bytesPerDpu);
    for (unsigned i = 0; i < dpus; ++i) {
        sys.pim().dpu(i).mramRead(0, got.data(), got.size());
        ASSERT_EQ(std::memcmp(got.data(),
                              payload.data() + i * bytesPerDpu,
                              bytesPerDpu),
                  0)
            << "dpu " << i;
    }
    EXPECT_EQ(sys.pimMmu().stats().counterValue("va_transfers"), 1u);

    // The legacy physical path still runs on the same system.
    EXPECT_TRUE(
        sys.runTransfer(core::XferDirection::DramToPim, dpus, 2 * kKiB)
            .ok());
}

TEST(MmuEndToEnd, SubmissionFaultsRejectSynchronously)
{
    sim::System sys(smallConfig());
    mmu::Mmu &m = sys.mmu();
    const TenantId t = m.createTenant();
    const unsigned dpus = 8;
    const std::uint64_t bytesPerDpu = 2 * kKiB;
    const Addr pa = sys.allocDram(dpus * bytesPerDpu, kPageBytes);
    ASSERT_TRUE(m.map(t, kVa, pa, dpus * bytesPerDpu, kPageBytes,
                      PagePerms::ro(), mapping::MemSpace::Dram)
                    .ok());
    const Addr heapVa = Addr{1} << 40;
    ASSERT_TRUE(m.map(t, heapVa, 0, kPageBytes, kPageBytes,
                      PagePerms::rw(), mapping::MemSpace::Pim)
                    .ok());

    using resilience::ErrorCode;

    // Unknown tenant.
    auto op = vaOp(t + 7, kVa, dpus, bytesPerDpu, heapVa);
    EXPECT_EQ(sys.runTransfer(std::move(op)).status.code,
              ErrorCode::TenantIsolation);
    // Unmapped host VA.
    op = vaOp(t, kVa + kMiB, dpus, bytesPerDpu, heapVa);
    EXPECT_EQ(sys.runTransfer(std::move(op)).status.code,
              ErrorCode::UnmappedPage);
    // DramToPim reads host memory — fine read-only — but writes MRAM;
    // swap direction so the op WRITES the read-only host window.
    op = vaOp(t, kVa, dpus, bytesPerDpu, heapVa);
    op.type = core::XferDirection::PimToDram;
    EXPECT_EQ(sys.runTransfer(std::move(op)).status.code,
              ErrorCode::PermissionDenied);
    // Host addresses pointing into a PIM-region VMA.
    op = vaOp(t, heapVa, 1, kPageBytes, heapVa);
    EXPECT_EQ(sys.runTransfer(std::move(op)).status.code,
              ErrorCode::RegionMismatch);

    std::uint64_t pimBytes = 0;
    for (unsigned ch = 0; ch < sys.mem().pimChannels(); ++ch)
        pimBytes += sys.mem().pimController(ch).bytesMoved();
    EXPECT_EQ(pimBytes, 0u)
        << "rejected descriptors must not move any PIM-side bytes";
    EXPECT_EQ(sys.pimMmu().stats().counterValue("va_rejected"), 4u);
}

TEST(MmuEndToEnd, CorruptTranslationFaultSiteBreaksDelivery)
{
    // The corruption site XORs the translated physical base; the
    // delivered bytes must then differ from the source — proving the
    // end-to-end byte checks in the tests above are non-vacuous.
    sim::System sys(smallConfig());
    mmu::Mmu &m = sys.mmu();
    const TenantId t = m.createTenant();
    const unsigned dpus = 8;
    const std::uint64_t bytesPerDpu = 2 * kKiB;
    const std::uint64_t total = dpus * bytesPerDpu;
    // Twice the window: the corrupted (XORed) address lands in the
    // adjacent mapped-and-allocated page instead of outside DRAM.
    const Addr pa = sys.allocDram(2 * total + kPageBytes, kPageBytes);
    ASSERT_TRUE(m.map(t, kVa, pa, 2 * total + kPageBytes, kPageBytes,
                      PagePerms::rw(), mapping::MemSpace::Dram)
                    .ok());
    const Addr heapVa = Addr{1} << 40;
    ASSERT_TRUE(m.map(t, heapVa, 0, kPageBytes, kPageBytes,
                      PagePerms::rw(), mapping::MemSpace::Pim)
                    .ok());

    std::vector<std::uint8_t> payload(total);
    for (std::uint64_t i = 0; i < total; ++i)
        payload[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    sys.mem().store().write(pa, payload.data(), payload.size());

    testing::fault::Armed armed("mmu.corrupt_translation");
    const auto st =
        sys.runTransfer(vaOp(t, kVa, dpus, bytesPerDpu, heapVa));
    ASSERT_TRUE(st.ok()) << st.status.str();
    EXPECT_GE(testing::fault::count("mmu.corrupt_translation"), 1u);

    std::vector<std::uint8_t> got(bytesPerDpu);
    bool anyDiff = false;
    for (unsigned i = 0; i < dpus && !anyDiff; ++i) {
        sys.pim().dpu(i).mramRead(0, got.data(), got.size());
        anyDiff = std::memcmp(got.data(),
                              payload.data() + i * bytesPerDpu,
                              bytesPerDpu) != 0;
    }
    EXPECT_TRUE(anyDiff)
        << "corrupted translation silently delivered correct bytes";
}

} // namespace mmu
} // namespace pimmmu

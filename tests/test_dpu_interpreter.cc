#include <gtest/gtest.h>

#include "pim/dpu_interpreter.hh"
#include "pim/pim_device.hh"

namespace pimmmu {
namespace device {

namespace {

DpuCoreConfig
oneTasklet()
{
    DpuCoreConfig cfg;
    cfg.tasklets = 1;
    return cfg;
}

} // namespace

TEST(DpuAssembler, AssemblesBasicProgram)
{
    const DpuProgram p = DpuAssembler::assemble(R"(
        ; compute 6 * 7 and halt
        ldi r1, 6
        ldi r2, 7
        mul r3, r1, r2
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.code[0].op, Op::Ldi);
    EXPECT_EQ(p.code[0].imm, 6);
    EXPECT_EQ(p.code[2].op, Op::Mul);
    EXPECT_EQ(p.code[3].op, Op::Halt);
}

TEST(DpuAssembler, ResolvesLabelsBothDirections)
{
    const DpuProgram p = DpuAssembler::assemble(R"(
        ldi  r1, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        jmp  end
        ldi  r2, 99   ; skipped
end:    halt
    )");
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.code[2].imm, 1); // loop label
    EXPECT_EQ(p.code[3].imm, 5); // end label
}

TEST(DpuAssembler, RejectsSyntaxErrors)
{
    EXPECT_THROW(DpuAssembler::assemble("frobnicate r1"), SimError);
    EXPECT_THROW(DpuAssembler::assemble("ldi r99, 1\nhalt"), SimError);
    EXPECT_THROW(DpuAssembler::assemble("add r1, r2\nhalt"), SimError);
    EXPECT_THROW(DpuAssembler::assemble("x: halt\nx: halt"), SimError);
    EXPECT_THROW(DpuAssembler::assemble("ldi r1, zork\nhalt"),
                 SimError);
}

TEST(DpuInterpreter, ArithmeticAndWramRoundTrip)
{
    Dpu dpu(0, kMiB);
    const DpuProgram p = DpuAssembler::assemble(R"(
        ldi r1, 40
        ldi r2, 2
        add r3, r1, r2
        sw  r0, 0, r3     ; wram[0] = 42
        lw  r4, r0, 0
        shl r5, r4, 1     ; 84
        sd  r0, 8, r5
        ld  r6, r0, 8
        halt
    )");
    DpuInterpreter interp(oneTasklet());
    const DpuRunResult r = interp.run(dpu, p);
    EXPECT_EQ(r.instructions, 9u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(DpuInterpreter, DmaMovesDataBetweenWramAndMram)
{
    Dpu dpu(0, kMiB);
    std::int64_t values[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    dpu.mramWrite(256, values, sizeof(values));

    // Read 64 B from MRAM@256, double each i64, write to MRAM@512.
    const DpuProgram p = DpuAssembler::assemble(R"(
        ldi r1, 0       ; wram addr
        ldi r2, 256     ; mram src
        ldi r3, 64      ; bytes
        mrd r1, r2, r3
        ldi r4, 0       ; index
        ldi r5, 8       ; count
loop:   shl r6, r4, 3
        ld  r7, r6, 0
        add r7, r7, r7
        sd  r6, 0, r7
        addi r4, r4, 1
        blt r4, r5, loop
        ldi r2, 512
        mwr r1, r2, r3
        halt
    )");
    DpuInterpreter interp(oneTasklet());
    const DpuRunResult r = interp.run(dpu, p);
    EXPECT_EQ(r.dmaBytes, 128u);

    std::int64_t out[8];
    dpu.mramRead(512, out, sizeof(out));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], values[i] * 2);
}

TEST(DpuInterpreter, TaskletsPartitionWorkByTid)
{
    // Each tasklet writes its id into wram, then tasklet 0's result
    // is summed into MRAM... simpler: each tasklet increments its own
    // MRAM slot via WRAM staging.
    Dpu dpu(0, kMiB);
    DpuCoreConfig cfg;
    cfg.tasklets = 8;
    const DpuProgram p = DpuAssembler::assemble(R"(
        tid  r1
        shl  r2, r1, 3     ; wram offset = tid*8
        addi r3, r1, 100
        sd   r2, 0, r3     ; wram[tid*8] = 100+tid
        ldi  r4, 8
        mul  r5, r1, r4    ; mram offset = tid*8
        mwr  r2, r5, r4    ; 8 bytes to mram
        halt
    )");
    DpuInterpreter interp(cfg);
    interp.run(dpu, p);
    for (int t = 0; t < 8; ++t)
        EXPECT_EQ(dpu.load<std::int64_t>(t * 8), 100 + t);
}

TEST(DpuInterpreter, MoreTaskletsHidePipelineLatency)
{
    // The revolver pipeline issues one instruction per cycle only when
    // enough tasklets are runnable — the classic UPMEM behavior.
    auto cyclesWith = [](unsigned tasklets) {
        Dpu dpu(0, kMiB);
        DpuCoreConfig cfg;
        cfg.tasklets = tasklets;
        const DpuProgram p = DpuAssembler::assemble(R"(
            ldi r1, 200
loop:       addi r1, r1, -1
            bne r1, r0, loop
            halt
        )");
        DpuInterpreter interp(cfg);
        return interp.run(dpu, p).cycles;
    };
    const Cycle one = cyclesWith(1);
    const Cycle eleven = cyclesWith(11);
    // 11 tasklets do 11x the work in roughly the same time.
    EXPECT_LT(eleven, one * 2);
}

TEST(DpuInterpreter, RunawayProgramsAreCaught)
{
    Dpu dpu(0, kMiB);
    DpuCoreConfig cfg = oneTasklet();
    cfg.maxCycles = 10000;
    const DpuProgram p = DpuAssembler::assemble("spin: jmp spin");
    DpuInterpreter interp(cfg);
    EXPECT_THROW(interp.run(dpu, p), SimError);
}

TEST(DpuInterpreter, WramBoundsAreEnforced)
{
    Dpu dpu(0, kMiB);
    const DpuProgram p = DpuAssembler::assemble(R"(
        ldi r1, 999999999
        lw  r2, r1, 0
        halt
    )");
    DpuInterpreter interp(oneTasklet());
    EXPECT_THROW(interp.run(dpu, p), SimError);
}

TEST(PimDeviceProgram, LaunchProgramRunsSpmdAcrossDpus)
{
    PimGeometry g = PimGeometry::paperTable1();
    g.banks.rows = 256;
    PimDevice dev(g);

    // y = x + bias for 16 i64 elements at MRAM 0, bias in r1.
    const DpuProgram p = DpuAssembler::assemble(R"(
        ldi r2, 0        ; wram
        ldi r3, 0        ; mram
        ldi r4, 128      ; bytes
        mrd r2, r3, r4
        ldi r5, 0
        ldi r6, 16
loop:   shl r7, r5, 3
        ld  r8, r7, 0
        add r8, r8, r1
        sd  r7, 0, r8
        addi r5, r5, 1
        blt r5, r6, loop
        ldi r3, 256
        mwr r2, r3, r4
        halt
    )");

    std::vector<unsigned> ids = {0, 8, 16};
    std::vector<std::vector<std::int64_t>> args;
    for (std::int64_t i = 0; i < 3; ++i)
        args.push_back({1000 * (i + 1)});
    for (unsigned i = 0; i < ids.size(); ++i) {
        for (std::int64_t e = 0; e < 16; ++e)
            dev.dpu(ids[i]).store<std::int64_t>(e * 8, e);
    }
    DpuCoreConfig cfg;
    cfg.tasklets = 1; // single tasklet: deterministic layout
    const Tick t = dev.launchProgram(ids, p, args, cfg);
    EXPECT_GT(t, 0u);
    for (unsigned i = 0; i < ids.size(); ++i) {
        for (std::int64_t e = 0; e < 16; ++e) {
            EXPECT_EQ(dev.dpu(ids[i]).load<std::int64_t>(256 + e * 8),
                      e + 1000 * (i + 1));
        }
    }
}

} // namespace device
} // namespace pimmmu

#include <gtest/gtest.h>

#include "dram/controller.hh"
#include "dram/memory_system.hh"
#include "mapping/hetmap.hh"
#include "workloads/patterns.hh"

namespace pimmmu {
namespace dram {

namespace {

mapping::DramGeometry
testGeometry()
{
    mapping::DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 1024;
    g.columns = 128;
    return g;
}

struct Harness
{
    EventQueue eq;
    TimingParams timing = timingPreset(SpeedGrade::DDR4_2400);
    mapping::DramGeometry geom = testGeometry();
    MemoryController mc{eq, timing, geom, 0};

    /** Enqueue a request at coordinate, return completion tick holder. */
    std::shared_ptr<Tick>
    issue(unsigned ra, unsigned bg, unsigned bk, unsigned ro,
          unsigned co, bool write)
    {
        auto done = std::make_shared<Tick>(kTickMax);
        MemRequest req;
        req.paddr = 0;
        req.write = write;
        req.coord = mapping::DramCoord{0, ra, bg, bk, ro, co};
        req.onComplete = [done, this](const MemRequest &) {
            *done = eq.now();
        };
        EXPECT_TRUE(mc.enqueue(std::move(req)));
        return done;
    }
};

} // namespace

TEST(MemoryController, SingleReadLatencyIsActPlusCasPlusBurst)
{
    Harness h;
    auto done = h.issue(0, 0, 0, 5, 3, false);
    h.eq.run();
    ASSERT_NE(*done, kTickMax);
    // Cold read: one cycle to issue ACT (the controller ticks on the
    // next edge), tRCD, one cycle scheduling the column, CL + burst.
    const Cycle cycles = *done / h.timing.tCKps;
    const Cycle expectedMin =
        h.timing.tRCD + h.timing.CL + h.timing.tBL;
    EXPECT_GE(cycles, expectedMin);
    EXPECT_LE(cycles, expectedMin + 4) << "excess scheduling bubbles";
}

TEST(MemoryController, RowHitsStreamAtCcd)
{
    Harness h;
    std::vector<std::shared_ptr<Tick>> dones;
    const unsigned n = 16;
    for (unsigned i = 0; i < n; ++i)
        dones.push_back(h.issue(0, 0, 0, 7, i, false));
    h.eq.run();
    // After the first access the remaining 15 row hits to one bank
    // stream at tCCD_L.
    const Tick last = *dones.back();
    const Tick first = *dones.front();
    const Cycle perLine = (last - first) / h.timing.tCKps / (n - 1);
    EXPECT_EQ(perLine, h.timing.tCCD_L);
}

TEST(MemoryController, BankGroupInterleavingBeatsSameGroup)
{
    // Column commands alternating bank groups are tCCD_S-limited;
    // within one group they are tCCD_L-limited.
    auto runPattern = [](bool alternate) {
        Harness h;
        std::vector<std::shared_ptr<Tick>> dones;
        const unsigned n = 32;
        for (unsigned i = 0; i < n; ++i) {
            const unsigned bg = alternate ? (i % 4) : 0;
            dones.push_back(h.issue(0, bg, 0, 3, i / 4, false));
        }
        h.eq.run();
        return *dones.back();
    };
    const Tick sameGroup = runPattern(false);
    const Tick interleaved = runPattern(true);
    EXPECT_LT(interleaved, sameGroup);
}

TEST(MemoryController, RowConflictsCostPrechargeActivate)
{
    // Under strict FCFS, alternating rows in one bank ping-pong the row
    // buffer: each access pays a full row cycle.
    EventQueue eq;
    const TimingParams &t = timingPreset(SpeedGrade::DDR4_2400);
    ControllerConfig cfg;
    cfg.policy = SchedPolicy::Fcfs;
    MemoryController mc(eq, t, testGeometry(), 0, cfg);

    std::vector<std::shared_ptr<Tick>> dones;
    const unsigned n = 8;
    for (unsigned i = 0; i < n; ++i) {
        auto done = std::make_shared<Tick>(kTickMax);
        MemRequest req;
        req.coord =
            mapping::DramCoord{0, 0, 0, 0, i % 2 ? 100u : 200u, i};
        req.onComplete = [done, &eq](const MemRequest &) {
            *done = eq.now();
        };
        ASSERT_TRUE(mc.enqueue(std::move(req)));
        dones.push_back(done);
    }
    eq.run();
    const Cycle perLine =
        (*dones.back() - *dones.front()) / t.tCKps / (n - 1);
    // Each conflict pays at least a row-cycle-dominated delay.
    EXPECT_GE(perLine, t.tRAS);
    EXPECT_GT(mc.stats().counterValue("row_conflicts"), 0u);
}

TEST(MemoryController, FrFcfsBatchesRowHitsAcrossConflictingStreams)
{
    // Same pattern under FR-FCFS: the scheduler batches all same-row
    // requests before switching rows, paying far fewer conflicts.
    Harness h;
    std::vector<std::shared_ptr<Tick>> dones;
    const unsigned n = 8;
    for (unsigned i = 0; i < n; ++i)
        dones.push_back(h.issue(0, 0, 0, i % 2 ? 100 : 200, i, false));
    h.eq.run();
    const Cycle perLine =
        (*dones.back() - *dones.front()) / h.timing.tCKps / (n - 1);
    EXPECT_LT(perLine, h.timing.tRAS);
    EXPECT_LE(h.mc.stats().counterValue("row_conflicts"), 2u);
}

TEST(MemoryController, StallBreakdownAccountsIdleCycles)
{
    // Busy single-bank read stream: the controller is idle on most
    // cycles (waiting out tRCD / CAS / burst timing), and every such
    // cycle must be attributed to exactly one stall class.
    Harness h;
    std::vector<std::shared_ptr<Tick>> dones;
    for (unsigned i = 0; i < 16; ++i)
        dones.push_back(h.issue(0, 0, 0, 7, i, false));
    h.eq.run();
    const stats::Group &s = h.mc.stats();
    const std::uint64_t idle = s.counterValue("idle_cycles");
    const std::uint64_t classified =
        s.counterValue("stall_refresh_cycles") +
        s.counterValue("stall_bank_group_cycles") +
        s.counterValue("stall_bus_cycles") +
        s.counterValue("stall_other_cycles");
    EXPECT_GT(idle, 0u);
    EXPECT_EQ(classified, idle);
    // Same-bank-group CAS gaps dominate this access pattern.
    EXPECT_GT(s.counterValue("stall_bank_group_cycles"), 0u);
}

TEST(MemoryController, WritesDrainAndComplete)
{
    Harness h;
    std::vector<std::shared_ptr<Tick>> dones;
    for (unsigned i = 0; i < 32; ++i)
        dones.push_back(h.issue(0, i % 4, i % 4, 1, i / 4, true));
    h.eq.run();
    for (auto &d : dones)
        EXPECT_NE(*d, kTickMax);
    EXPECT_EQ(h.mc.bytesWritten(), 32u * 64);
    EXPECT_EQ(h.mc.pending(), 0u);
}

TEST(MemoryController, QueueBackpressure)
{
    Harness h;
    unsigned accepted = 0;
    // Fill beyond the read queue depth without running the clock.
    for (unsigned i = 0; i < 100; ++i) {
        MemRequest req;
        req.coord = mapping::DramCoord{0, 0, 0, 0, 0, i % 64};
        if (h.mc.enqueue(std::move(req)))
            ++accepted;
    }
    EXPECT_EQ(accepted, 64u); // default read queue depth
    EXPECT_FALSE(h.mc.canAccept(false));
    EXPECT_TRUE(h.mc.canAccept(true));
    h.eq.run();
    EXPECT_TRUE(h.mc.canAccept(false));
}

TEST(MemoryController, DrainListenersFire)
{
    Harness h;
    unsigned drains = 0;
    h.mc.onDrain([&] { ++drains; });
    h.issue(0, 0, 0, 0, 0, false);
    h.eq.run();
    EXPECT_GE(drains, 1u);
}

TEST(MemoryController, RefreshHappensUnderLoad)
{
    Harness h;
    // Keep the controller busy past several tREFI windows.
    std::uint64_t completed = 0;
    std::function<void()> refill = [&] {
        while (h.mc.canAccept(false)) {
            static unsigned i = 0;
            MemRequest req;
            req.coord = mapping::DramCoord{
                0, 0, (i / 128) % 4, 0, (i / 512) % 1024, i % 128};
            ++i;
            req.onComplete = [&](const MemRequest &) { ++completed; };
            ASSERT_TRUE(h.mc.enqueue(std::move(req)));
        }
    };
    refill();
    h.mc.onDrain(refill);
    // Run for 3 refresh intervals.
    h.eq.run(Tick{3} * h.timing.tREFI * h.timing.tCKps);
    EXPECT_GE(h.mc.stats().counterValue("refreshes"), 2u);
    EXPECT_GT(completed, 0u);
}

TEST(MemoryController, FcfsIsNoFasterThanFrFcfs)
{
    auto run = [](SchedPolicy policy) {
        EventQueue eq;
        const TimingParams &t = timingPreset(SpeedGrade::DDR4_2400);
        ControllerConfig cfg;
        cfg.policy = policy;
        MemoryController mc(eq, t, testGeometry(), 0, cfg);
        // Interleave two row streams in one bank: FR-FCFS can batch
        // hits, FCFS ping-pongs between rows.
        unsigned done = 0;
        for (unsigned i = 0; i < 64; ++i) {
            MemRequest req;
            req.coord =
                mapping::DramCoord{0, 0, 0, 0, i % 2 ? 10u : 20u,
                                   i / 2};
            req.onComplete = [&](const MemRequest &) { ++done; };
            EXPECT_TRUE(mc.enqueue(std::move(req)));
        }
        eq.run();
        EXPECT_EQ(done, 64u);
        return eq.now();
    };
    EXPECT_LE(run(SchedPolicy::FrFcfs), run(SchedPolicy::Fcfs));
}

TEST(MemorySystemTest, RoutesByRegionAndChannel)
{
    EventQueue eq;
    mapping::DramGeometry g = testGeometry();
    g.channels = 2;
    auto map = mapping::makeHetMap(g, g);
    MemorySystem mem(eq, *map, timingPreset(SpeedGrade::DDR4_3200),
                     timingPreset(SpeedGrade::DDR4_2400));

    unsigned done = 0;
    for (unsigned i = 0; i < 16; ++i) {
        MemRequest req;
        req.paddr = Addr{i} * 64; // DRAM region
        req.onComplete = [&](const MemRequest &) { ++done; };
        ASSERT_TRUE(mem.enqueue(std::move(req)));
    }
    for (unsigned i = 0; i < 16; ++i) {
        MemRequest req;
        req.paddr = map->pimBase() + Addr{i} * 64; // PIM region
        req.write = true;
        req.onComplete = [&](const MemRequest &) { ++done; };
        ASSERT_TRUE(mem.enqueue(std::move(req)));
    }
    eq.run();
    EXPECT_EQ(done, 32u);
    EXPECT_EQ(mem.dramBytesMoved(), 16u * 64);
    EXPECT_EQ(mem.pimBytesMoved(), 16u * 64);
    // MLP mapping spreads DRAM lines across both channels.
    EXPECT_GT(mem.dramController(0).bytesMoved(), 0u);
    EXPECT_GT(mem.dramController(1).bytesMoved(), 0u);
    // Locality mapping keeps the PIM stream in one channel.
    EXPECT_EQ(mem.pimController(1).bytesMoved(), 0u);
}

TEST(MemorySystemTest, PeakBandwidthMatchesTimingPreset)
{
    EventQueue eq;
    mapping::DramGeometry g = testGeometry();
    g.channels = 4;
    auto map = mapping::makeHetMap(g, g);
    MemorySystem mem(eq, *map, timingPreset(SpeedGrade::DDR4_2400),
                     timingPreset(SpeedGrade::DDR4_2400));
    // DDR4-2400: 19.2 GB/s per channel.
    EXPECT_NEAR(mem.dramPeakBandwidth() / 1e9, 4 * 19.2, 0.2);
}

} // namespace dram
} // namespace pimmmu

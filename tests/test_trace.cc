#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"
#include "sim/system.hh"

namespace pimmmu {
namespace trace {

namespace {

/** RAII: capture trace output and restore global state afterwards. */
struct TraceCapture
{
    std::ostringstream os;

    TraceCapture()
    {
        disableAll();
        setOutput(&os);
    }

    ~TraceCapture()
    {
        disableAll();
        setOutput(nullptr);
    }
};

} // namespace

TEST(Trace, CategoriesParseAndRoundTrip)
{
    for (unsigned i = 0; i < kNumCategories; ++i) {
        const auto cat = static_cast<Category>(i);
        Category parsed;
        ASSERT_TRUE(parseCategory(categoryName(cat), parsed));
        EXPECT_EQ(parsed, cat);
    }
    Category dummy;
    EXPECT_FALSE(parseCategory("bogus", dummy));
}

TEST(Trace, DisabledCategoriesEmitNothing)
{
    TraceCapture capture;
    PIMMMU_TRACE_LOG(Category::Dram, 123, "should not appear");
    EXPECT_TRUE(capture.os.str().empty());
}

TEST(Trace, EnabledCategoriesEmitPrefixedLines)
{
    TraceCapture capture;
    enable(Category::Dce);
    PIMMMU_TRACE_LOG(Category::Dce, 4567, "hello " << 42);
    PIMMMU_TRACE_LOG(Category::Dram, 9999, "suppressed");
    const std::string out = capture.os.str();
    EXPECT_NE(out.find("4567ps [dce] hello 42"), std::string::npos);
    EXPECT_EQ(out.find("suppressed"), std::string::npos);
}

TEST(Trace, TransferEmitsXferAndDceEvents)
{
    TraceCapture capture;
    enable(Category::Xfer);
    enable(Category::Dce);

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    sim::System sys(cfg);
    sys.runTransfer(core::XferDirection::DramToPim, 16, 512);

    const std::string out = capture.os.str();
    EXPECT_NE(out.find("[xfer] pim_mmu_transfer: 16 PIM cores"),
              std::string::npos);
    EXPECT_NE(out.find("[dce] start transfer"), std::string::npos);
    EXPECT_NE(out.find("[dce] transfer complete"), std::string::npos);
}

TEST(Trace, BaselineTransferEmitsPushXfer)
{
    TraceCapture capture;
    enable(Category::Xfer);

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::Base);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    sim::System sys(cfg);
    sys.runTransfer(core::XferDirection::DramToPim, 16, 512);

    EXPECT_NE(capture.os.str().find("[xfer] dpu_push_xfer: 2 banks"),
              std::string::npos);
}

} // namespace trace
} // namespace pimmmu

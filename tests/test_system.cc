#include <gtest/gtest.h>

#include "sim/system.hh"

namespace pimmmu {
namespace sim {

namespace {

/** A small system so integration tests run in milliseconds. */
SystemConfig
smallConfig(DesignPoint design)
{
    SystemConfig cfg = SystemConfig::paperTable1(design);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    return cfg;
}

} // namespace

TEST(SystemTest, Table1ConfigIsPaperShaped)
{
    const SystemConfig cfg = SystemConfig::paperTable1();
    EXPECT_EQ(cfg.cpu.cores, 8u);
    EXPECT_EQ(cfg.dramGeom.channels, 4u);
    EXPECT_EQ(cfg.dramGeom.ranksPerChannel, 2u);
    EXPECT_EQ(cfg.pimGeom.numDpus(), 512u);
    EXPECT_EQ(cfg.dce.dataBufferBytes, 16 * kKiB);
    EXPECT_EQ(cfg.dce.addressBufferBytes, 64 * kKiB);
    EXPECT_TRUE(cfg.hetMap());
    EXPECT_TRUE(cfg.usePimMs());
}

TEST(SystemTest, BaselineTransferCompletes)
{
    System sys(smallConfig(DesignPoint::Base));
    const auto stats = sys.runTransfer(core::XferDirection::DramToPim,
                                       64, 4 * kKiB);
    EXPECT_EQ(stats.bytes, 64u * 4 * kKiB);
    EXPECT_GT(stats.durationPs(), 0u);
    EXPECT_GT(stats.gbps(), 0.1);
    // The software path keeps CPU cores busy.
    EXPECT_GT(stats.avgActiveCores, 0.5);
}

TEST(SystemTest, PimMmuTransferCompletes)
{
    System sys(smallConfig(DesignPoint::BaseDHP));
    const auto stats = sys.runTransfer(core::XferDirection::DramToPim,
                                       64, 4 * kKiB);
    EXPECT_EQ(stats.bytes, 64u * 4 * kKiB);
    EXPECT_GT(stats.gbps(), 0.1);
    // The offloaded path barely touches the CPU.
    EXPECT_LT(stats.avgActiveCores, 1.0);
}

TEST(SystemTest, PimMmuBeatsBaselineThroughput)
{
    System base(smallConfig(DesignPoint::Base));
    System mmu(smallConfig(DesignPoint::BaseDHP));
    const auto b = base.runTransfer(core::XferDirection::DramToPim,
                                    128, 8 * kKiB);
    const auto m = mmu.runTransfer(core::XferDirection::DramToPim,
                                   128, 8 * kKiB);
    EXPECT_GT(m.gbps(), 1.5 * b.gbps())
        << "PIM-MMU " << m.gbps() << " GB/s vs base " << b.gbps();
}

TEST(SystemTest, PimToDramAlsoWorks)
{
    for (DesignPoint dp : {DesignPoint::Base, DesignPoint::BaseDHP}) {
        System sys(smallConfig(dp));
        const auto stats = sys.runTransfer(
            core::XferDirection::PimToDram, 64, 4 * kKiB);
        EXPECT_EQ(stats.bytes, 64u * 4 * kKiB);
        EXPECT_GT(stats.gbps(), 0.1) << designPointName(dp);
    }
}

TEST(SystemTest, TransferMovesRealData)
{
    System sys(smallConfig(DesignPoint::BaseDHP));
    const unsigned numDpus = 16;
    const std::uint64_t bytes = 512;

    // Hand-roll the transfer so we control the host buffer contents.
    const Addr base = sys.allocDram(numDpus * bytes);
    std::vector<std::uint8_t> data(numDpus * bytes);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7 + 3);
    sys.mem().store().write(base, data.data(), data.size());

    core::PimMmuOp op;
    op.type = core::XferDirection::DramToPim;
    op.sizePerPim = bytes;
    for (unsigned i = 0; i < numDpus; ++i) {
        op.dramAddrArr.push_back(base + Addr{i} * bytes);
        op.pimIdArr.push_back(i);
    }
    bool done = false;
    sys.pimMmu().transfer(op, [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));

    for (unsigned i = 0; i < numDpus; ++i) {
        std::vector<std::uint8_t> mram(bytes);
        sys.pim().dpu(i).mramRead(0, mram.data(), bytes);
        EXPECT_EQ(0, std::memcmp(mram.data(), data.data() + i * bytes,
                                 bytes))
            << "DPU " << i;
    }

    // And back: clobber the host copy, transfer PIM->DRAM, re-check.
    std::vector<std::uint8_t> zero(data.size(), 0);
    sys.mem().store().write(base, zero.data(), zero.size());
    op.type = core::XferDirection::PimToDram;
    done = false;
    sys.pimMmu().transfer(op, [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));
    std::vector<std::uint8_t> out(data.size());
    sys.mem().store().read(base, out.data(), out.size());
    EXPECT_EQ(data, out);
}

TEST(SystemTest, MemcpyCompletesOnBothPaths)
{
    System base(smallConfig(DesignPoint::Base));
    System mmu(smallConfig(DesignPoint::BaseDHP));
    const auto sw = base.runMemcpy(2 * kMiB, 8);
    const auto hw = mmu.runMemcpy(2 * kMiB);
    EXPECT_EQ(sw.bytes, 2 * kMiB);
    EXPECT_EQ(hw.bytes, 2 * kMiB);
    EXPECT_GT(sw.gbps(), 0.1);
    // HetMap's MLP-centric DRAM mapping gives the DCE path a big edge.
    EXPECT_GT(hw.gbps(), sw.gbps());
}

TEST(SystemTest, ContendersSlowBaselineMoreThanPimMmu)
{
    auto run = [](DesignPoint dp, unsigned contenders) {
        SystemConfig cfg = smallConfig(dp);
        // A short quantum keeps the test fast while still spanning
        // many scheduling periods.
        cfg.cpu.quantumPs = 100 * kPsPerUs;
        System sys(cfg);
        sys.addComputeContenders(contenders);
        const auto stats = sys.runTransfer(
            core::XferDirection::DramToPim, 128, 8 * kKiB);
        sys.cpu().shutdown();
        return stats.durationPs();
    };
    const double baseSlowdown =
        static_cast<double>(run(DesignPoint::Base, 24)) /
        static_cast<double>(run(DesignPoint::Base, 0));
    const double mmuSlowdown =
        static_cast<double>(run(DesignPoint::BaseDHP, 24)) /
        static_cast<double>(run(DesignPoint::BaseDHP, 0));
    EXPECT_GT(baseSlowdown, 1.1);
    EXPECT_LT(mmuSlowdown, baseSlowdown);
    EXPECT_LT(mmuSlowdown, 1.5);
}

TEST(SystemTest, EnergyAccountingIsPositiveAndCpuDominated)
{
    System sys(smallConfig(DesignPoint::Base));
    const auto stats = sys.runTransfer(core::XferDirection::DramToPim,
                                       64, 4 * kKiB);
    EXPECT_GT(stats.energy.cpuJ, 0.0);
    EXPECT_GT(stats.energy.dramJ, 0.0);
    EXPECT_GT(stats.energy.cpuJ, stats.energy.dramJ);
    EXPECT_GT(stats.gbPerJoule(), 0.0);
}

TEST(SystemTest, AllocDramRespectsCapacity)
{
    SystemConfig cfg = smallConfig(DesignPoint::Base);
    System sys(cfg);
    const Addr a = sys.allocDram(1 * kMiB);
    const Addr b = sys.allocDram(1 * kMiB, 4096);
    EXPECT_GE(b, a + 1 * kMiB);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_THROW(sys.allocDram(1ull << 40), SimError);
}

} // namespace sim
} // namespace pimmmu

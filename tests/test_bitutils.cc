#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace pimmmu {

TEST(BitUtils, BitsExtractsRanges)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 4, 4), 0xeu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(0xff, 0, 0), 0u);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(BitUtils, InsertBitsRoundTripsWithBits)
{
    std::uint64_t v = 0;
    v = insertBits(v, 3, 5, 0x1b);
    EXPECT_EQ(bits(v, 3, 5), 0x1bu);
    v = insertBits(v, 3, 5, 0x00);
    EXPECT_EQ(v, 0u);
}

TEST(BitUtils, InsertBitsMasksField)
{
    // Value wider than the field must be truncated.
    const std::uint64_t v = insertBits(0, 0, 4, 0xff);
    EXPECT_EQ(v, 0xfu);
}

TEST(BitUtils, PowerOfTwoPredicates)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(4096), 12u);
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(8), 3u);
}

TEST(BitUtils, XorFoldIsParity)
{
    EXPECT_EQ(xorFold(0), 0u);
    EXPECT_EQ(xorFold(1), 1u);
    EXPECT_EQ(xorFold(0b1011), 1u);
    EXPECT_EQ(xorFold(0b1111), 0u);
}

TEST(BitUtils, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
}

} // namespace pimmmu

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "sim/system.hh"

namespace pimmmu {

namespace {

sim::SystemConfig
smallConfig(sim::DesignPoint dp)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(dp);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    return cfg;
}

} // namespace

TEST(UpmemRuntime, DpuSetApiMirrorsFig10a)
{
    sim::System sys(smallConfig(sim::DesignPoint::Base));
    const unsigned numDpus = 16;
    const std::uint64_t bytes = 1024;

    upmem::DpuSet set(sys.upmem(), numDpus);
    EXPECT_EQ(set.size(), numDpus);

    const Addr base = sys.allocDram(numDpus * bytes);
    Rng rng(3);
    std::vector<std::uint8_t> data(numDpus * bytes);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng());
    sys.mem().store().write(base, data.data(), data.size());

    for (unsigned i = 0; i < numDpus; ++i)
        set.prepareXfer(i, base + Addr{i} * bytes);

    bool done = false;
    set.pushXfer(upmem::XferKind::ToDpu, 0, bytes,
                 [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));

    for (unsigned i = 0; i < numDpus; ++i) {
        std::vector<std::uint8_t> mram(bytes);
        sys.pim().dpu(i).mramRead(0, mram.data(), bytes);
        EXPECT_EQ(0, std::memcmp(mram.data(), data.data() + i * bytes,
                                 bytes));
    }
}

TEST(UpmemRuntime, DpuSetLaunchRunsKernelOnWholeSet)
{
    sim::System sys(smallConfig(sim::DesignPoint::Base));
    upmem::DpuSet set(sys.upmem(), 8);
    device::KernelModel model;
    const Tick t = set.launch(
        [](device::Dpu &dpu, unsigned idx) {
            dpu.store<std::uint32_t>(0, 7000 + idx);
        },
        model, 1024);
    EXPECT_GT(t, 0u);
    for (unsigned d = 0; d < 8; ++d)
        EXPECT_EQ(sys.pim().dpu(d).load<std::uint32_t>(0), 7000 + d);
}

TEST(UpmemRuntime, PushXferBeforePrepareIsRejected)
{
    sim::System sys(smallConfig(sim::DesignPoint::Base));
    upmem::DpuSet set(sys.upmem(), 8);
    set.prepareXfer(0, 0); // others unprepared
    EXPECT_THROW(
        set.pushXfer(upmem::XferKind::ToDpu, 0, 64, nullptr),
        SimError);
}

TEST(UpmemRuntime, SoftwareXferDrivesCpuTraffic)
{
    sim::System sys(smallConfig(sim::DesignPoint::Base));
    const auto before = sys.cpu().totalAvxBusyPs();
    sys.runTransfer(core::XferDirection::DramToPim, 16, 1024);
    EXPECT_GT(sys.cpu().totalAvxBusyPs(), before);
}

TEST(PimMmuRuntimeTest, DescriptorDerivesPimAddressFromCoreId)
{
    sim::System sys(smallConfig(sim::DesignPoint::BaseDHP));
    core::PimMmuOp op;
    op.type = core::XferDirection::DramToPim;
    op.sizePerPim = 512;
    op.pimBaseHeapPtr = 256;
    for (unsigned i = 0; i < 16; ++i) {
        op.dramAddrArr.push_back(Addr{i} * 512);
        op.pimIdArr.push_back(i);
    }
    const core::DceTransfer t = sys.pimMmu().buildDescriptor(op);
    ASSERT_EQ(t.streams.size(), 2u); // 16 DPUs = 2 banks
    const auto &geom = sys.pim().geometry();
    for (unsigned b = 0; b < 2; ++b) {
        // Paper Fig. 10 line 21-22: PIM address = f(core id, heap ptr).
        const Addr expected = sys.map().pimBase() +
                              geom.bankRegionOffset(b) +
                              (256 / 8) * 64;
        EXPECT_EQ(t.streams[b].wireBase, expected);
        EXPECT_EQ(t.streams[b].totalLines, 512u / 8);
    }
}

TEST(PimMmuRuntimeTest, TransferExceedingMramIsRejected)
{
    sim::System sys(smallConfig(sim::DesignPoint::BaseDHP));
    core::PimMmuOp op;
    op.type = core::XferDirection::DramToPim;
    op.sizePerPim =
        sys.pim().geometry().mramBytesPerDpu() + 64;
    for (unsigned i = 0; i < 8; ++i) {
        op.dramAddrArr.push_back(Addr{i} * kMiB);
        op.pimIdArr.push_back(i);
    }
    EXPECT_THROW(sys.pimMmu().buildDescriptor(op), SimError);
}

TEST(PimMmuRuntimeTest, SingleThreadOffloadUsesAlmostNoCpu)
{
    sim::System sys(smallConfig(sim::DesignPoint::BaseDHP));
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 128, 8 * kKiB);
    // The requesting thread marshals and sleeps; CPU-seconds consumed
    // should be well under 5% of one core for the duration.
    EXPECT_LT(stats.avgActiveCores, 0.25);
    // And no AVX activity at all.
    EXPECT_EQ(sys.cpu().totalAvxBusyPs(), 0u);
}

TEST(PimMmuRuntimeTest, DriverLatenciesAreModeled)
{
    // With a tiny payload, end-to-end latency is dominated by the
    // doorbell + interrupt path.
    sim::SystemConfig cfg = smallConfig(sim::DesignPoint::BaseDHP);
    cfg.dce.mmioDoorbellPs = 5 * kPsPerUs;
    cfg.dce.interruptPs = 7 * kPsPerUs;
    sim::System sys(cfg);
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 8, 64);
    EXPECT_GE(stats.durationPs(), 12 * kPsPerUs);
}

} // namespace pimmmu

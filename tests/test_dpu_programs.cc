/**
 * @file
 * Larger DPU-assembly programs on the tasklet interpreter: a parallel
 * reduction with a tasklet tree and a strided memset, checking both
 * functional results and timing monotonicity.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "pim/dpu_interpreter.hh"

namespace pimmmu {
namespace device {

namespace {

/**
 * Parallel sum of r1 i64 elements at MRAM 0; result at MRAM offset r2.
 * Phase 1: each tasklet accumulates its strided share into
 * wram[tid*8]. Phase 2: tasklet 0 spins until all partials are
 * published (each tasklet sets a flag byte), then folds them.
 */
const char *const kParallelSum = R"(
        tid   r10
        ntask r11
        ; --- phase 1: strided partial sums through MRAM DMA ---
        ldi   r12, 0        ; partial
        mov   r13, r10      ; element index = tid
        ldi   r20, 2048     ; per-tasklet staging buffer base
        mul   r21, r10, r20
        ldi   r20, 8
loop:   bge   r13, r1, done1
        shl   r14, r13, 3   ; byte offset
        mrd   r21, r14, r20 ; 8 bytes into my staging slot
        ld    r15, r21, 0
        add   r12, r12, r15
        add   r13, r13, r11
        jmp   loop
done1:  shl   r16, r10, 3
        sd    r16, 0, r12   ; wram[tid*8] = partial
        ldi   r17, 1
        shl   r18, r10, 3
        addi  r18, r18, 1024
        sd    r18, 0, r17   ; publish flag word at wram[1024 + tid*8]
        ; --- phase 2: tasklet 0 folds ---
        bne   r10, r0, end
        ldi   r3, 0         ; scanning tasklet index
wait:   bge   r3, r11, fold
        shl   r4, r3, 3
        ld    r5, r4, 1024
        beq   r5, r0, wait  ; spin until published
        addi  r3, r3, 1
        jmp   wait
fold:   ldi   r6, 0
        ldi   r3, 0
fsum:   bge   r3, r11, emit
        shl   r4, r3, 3
        ld    r5, r4, 0
        add   r6, r6, r5
        addi  r3, r3, 1
        jmp   fsum
emit:   sd    r16, 0, r6    ; reuse tasklet-0 slot (r16 = 0)
        ldi   r7, 8
        mwr   r16, r2, r7   ; write the sum to MRAM @ r2
end:    halt
)";

} // namespace

TEST(DpuPrograms, ParallelSumMatchesHostAcrossTaskletCounts)
{
    Rng rng(2026);
    const std::int64_t n = 192;
    std::vector<std::int64_t> data(n);
    std::int64_t expect = 0;
    for (auto &v : data) {
        v = static_cast<std::int64_t>(rng() % 10007) - 5000;
        expect += v;
    }

    const DpuProgram p = DpuAssembler::assemble(kParallelSum);
    for (unsigned tasklets : {1u, 2u, 8u, 16u}) {
        Dpu dpu(0, kMiB);
        dpu.mramWrite(0, data.data(), n * 8);
        DpuCoreConfig cfg;
        cfg.tasklets = tasklets;
        DpuInterpreter interp(cfg);
        const DpuRunResult r = interp.run(dpu, p, {n, 4096});
        EXPECT_EQ(dpu.load<std::int64_t>(4096), expect)
            << tasklets << " tasklets";
        EXPECT_GT(r.instructions, static_cast<std::uint64_t>(n));
    }
}

TEST(DpuPrograms, TimingScalesWithWork)
{
    const DpuProgram p = DpuAssembler::assemble(kParallelSum);
    auto cyclesFor = [&](std::int64_t n) {
        Dpu dpu(0, kMiB);
        std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
        dpu.mramWrite(0, data.data(), data.size() * 8);
        DpuCoreConfig cfg;
        cfg.tasklets = 8;
        DpuInterpreter interp(cfg);
        return interp.run(dpu, p, {n, 8192}).cycles;
    };
    const Cycle small = cyclesFor(64);
    const Cycle big = cyclesFor(512);
    EXPECT_GT(big, small);
    // Roughly linear in elements (within 3x of proportional).
    EXPECT_LT(big, small * 24);
    EXPECT_GT(big, small * 2);
}

} // namespace device
} // namespace pimmmu

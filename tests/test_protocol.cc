/**
 * @file
 * DDR4 protocol-compliance property tests: the controller's command
 * stream is validated by an independent checker under randomized and
 * adversarial workloads across a sweep of geometries and speed grades.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "dram/controller.hh"
#include "dram/protocol_checker.hh"

namespace pimmmu {
namespace dram {

namespace {

struct ProtocolCase
{
    const char *name;
    SpeedGrade grade;
    unsigned ranks, bankGroups, banks, rows;
    SchedPolicy policy;
    unsigned rowRange; //!< how many distinct rows traffic touches
    double writeRatio;
};

class ProtocolSweep : public ::testing::TestWithParam<ProtocolCase>
{
};

} // namespace

TEST_P(ProtocolSweep, CommandStreamIsJedecCompliant)
{
    const ProtocolCase &tc = GetParam();

    EventQueue eq;
    mapping::DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = tc.ranks;
    g.bankGroups = tc.bankGroups;
    g.banksPerGroup = tc.banks;
    g.rows = tc.rows;
    g.columns = 128;
    ASSERT_TRUE(g.valid());

    const TimingParams &timing = timingPreset(tc.grade);
    ControllerConfig cfg;
    cfg.policy = tc.policy;
    MemoryController mc(eq, timing, g, 0, cfg);
    ProtocolChecker checker(timing, g);
    mc.onCommand([&](const CommandRecord &r) { checker.observe(r); });

    Rng rng(std::uint64_t{0xfeed} + tc.ranks * 131 + tc.rows);
    std::uint64_t issued = 0, completed = 0;
    const std::uint64_t target = 6000;
    std::function<void()> refill = [&] {
        while (issued < target) {
            const bool write = rng.uniform() < tc.writeRatio;
            if (!mc.canAccept(write))
                return;
            MemRequest req;
            req.write = write;
            req.coord = mapping::DramCoord{
                0,
                static_cast<unsigned>(rng.below(g.ranksPerChannel)),
                static_cast<unsigned>(rng.below(g.bankGroups)),
                static_cast<unsigned>(rng.below(g.banksPerGroup)),
                static_cast<unsigned>(rng.below(tc.rowRange)),
                static_cast<unsigned>(rng.below(g.columns))};
            req.onComplete = [&](const MemRequest &) { ++completed; };
            ASSERT_TRUE(mc.enqueue(std::move(req)));
            ++issued;
        }
    };
    mc.onDrain(refill);
    refill();
    eq.run();

    EXPECT_EQ(completed, target);
    EXPECT_GT(checker.commandsChecked(), target);
    ASSERT_TRUE(checker.clean())
        << tc.name << ": " << checker.violations().size()
        << " violations, first: " << checker.violations().front();
}

INSTANTIATE_TEST_SUITE_P(
    Traffic, ProtocolSweep,
    ::testing::Values(
        ProtocolCase{"seq2400", SpeedGrade::DDR4_2400, 2, 4, 4, 4096,
                     SchedPolicy::FrFcfs, 1, 0.0},
        ProtocolCase{"thrash2400", SpeedGrade::DDR4_2400, 2, 4, 4,
                     4096, SchedPolicy::FrFcfs, 4096, 0.5},
        ProtocolCase{"writes2400", SpeedGrade::DDR4_2400, 2, 4, 4,
                     4096, SchedPolicy::FrFcfs, 64, 0.9},
        ProtocolCase{"mixed3200", SpeedGrade::DDR4_3200, 2, 4, 4, 4096,
                     SchedPolicy::FrFcfs, 256, 0.5},
        ProtocolCase{"fcfs2400", SpeedGrade::DDR4_2400, 2, 4, 4, 4096,
                     SchedPolicy::Fcfs, 128, 0.3},
        ProtocolCase{"onerank", SpeedGrade::DDR4_2400, 1, 4, 2, 1024,
                     SchedPolicy::FrFcfs, 1024, 0.5},
        ProtocolCase{"upmem", SpeedGrade::DDR4_2400, 2, 4, 2, 16384,
                     SchedPolicy::FrFcfs, 512, 0.7}),
    [](const ::testing::TestParamInfo<ProtocolCase> &info) {
        return std::string(info.param.name);
    });

TEST(ProtocolChecker, DetectsViolationsItself)
{
    // Sanity: the checker is not vacuously clean.
    mapping::DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 1024;
    g.columns = 128;
    const TimingParams &t = timingPreset(SpeedGrade::DDR4_2400);

    {
        ProtocolChecker checker(t, g);
        // RD to a closed bank.
        checker.observe({100, DramCommand::Rd,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        EXPECT_FALSE(checker.clean());
    }
    {
        ProtocolChecker checker(t, g);
        // ACT then RD before tRCD.
        checker.observe({100, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRCD - 1, DramCommand::Rd,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        EXPECT_FALSE(checker.clean());
    }
    {
        ProtocolChecker checker(t, g);
        // Five ACTs inside tFAW.
        for (unsigned i = 0; i < 5; ++i) {
            checker.observe({100 + i * t.tRRD_L, DramCommand::Act,
                             mapping::DramCoord{0, 0, i % 4, i / 4, 1,
                                                0}});
        }
        EXPECT_FALSE(checker.clean());
    }
    {
        ProtocolChecker checker(t, g);
        // PRE before tRAS.
        checker.observe({100, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRAS - 1, DramCommand::Pre,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        EXPECT_FALSE(checker.clean());
    }
    const auto flagged = [](const ProtocolChecker &checker,
                            const std::string &needle) {
        for (const std::string &v : checker.violations())
            if (v.find(needle) != std::string::npos)
                return true;
        return false;
    };
    {
        ProtocolChecker checker(t, g);
        // PRE (legal) then re-ACT of the same bank before tRP.
        checker.observe({100, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRAS, DramCommand::Pre,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRAS + t.tRP - 1, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 6, 0}});
        ASSERT_FALSE(checker.clean());
        EXPECT_TRUE(flagged(checker, "tRP"));
    }
    {
        ProtocolChecker checker(t, g);
        // ACT into a rank still busy refreshing.
        checker.observe({100, DramCommand::Ref,
                         mapping::DramCoord{0, 0, 0, 0, 0, 0}});
        checker.observe({100 + t.tRFC - 1, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        ASSERT_FALSE(checker.clean());
        EXPECT_TRUE(flagged(checker, "tRFC"));
    }
    {
        ProtocolChecker checker(t, g);
        // Back-to-back reads in one bank group inside tCCD_L.
        checker.observe({100, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRCD, DramCommand::Rd,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRCD + t.tCCD_L - 1, DramCommand::Rd,
                         mapping::DramCoord{0, 0, 0, 0, 5, 1}});
        ASSERT_FALSE(checker.clean());
        EXPECT_TRUE(flagged(checker, "tCCD_L"));
    }
    {
        ProtocolChecker checker(t, g);
        // A legal little sequence stays clean.
        checker.observe({100, DramCommand::Act,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRCD, DramCommand::Rd,
                         mapping::DramCoord{0, 0, 0, 0, 5, 0}});
        checker.observe({100 + t.tRCD + t.tCCD_L, DramCommand::Rd,
                         mapping::DramCoord{0, 0, 0, 0, 5, 1}});
        EXPECT_TRUE(checker.clean())
            << checker.violations().front();
    }
}

} // namespace dram
} // namespace pimmmu

/**
 * @file
 * Resilience subsystem tests: the ECC/CRC codecs are real (known
 * answers, exhaustive single-bit correction, double-bit detection),
 * every structured rejection reason is reachable, rate-based fault
 * arming replays deterministically and stays thread-local, and each
 * `resilience.*` recovery counter demonstrably moves when its fault
 * site is armed — none of the accounting is vacuous.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <thread>

#include "core/dce.hh"
#include "mapping/hetmap.hh"
#include "resilience/crc.hh"
#include "resilience/ecc.hh"
#include "resilience/manager.hh"
#include "resilience/retry_budget.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace resilience {

namespace {

/** Round-trip one transfer through a System built with @p policy. */
struct CampaignHarness
{
    sim::System sys;
    std::vector<unsigned> dpuIds;
    std::vector<Addr> hostAddrs;
    static constexpr unsigned kDpus = 16; // two whole banks
    static constexpr std::uint64_t kBytesPerDpu = 512;

    explicit CampaignHarness(const Policy &policy)
        : sys([&policy] {
              sim::SystemConfig cfg = sim::SystemConfig::paperTable1(
                  sim::DesignPoint::BaseDHP);
              cfg.resilience = policy;
              return cfg;
          }())
    {
        const Addr base =
            sys.allocDram(std::uint64_t{kDpus} * kBytesPerDpu);
        for (unsigned d = 0; d < kDpus; ++d) {
            dpuIds.push_back(d);
            hostAddrs.push_back(base +
                                std::uint64_t{d} * kBytesPerDpu);
        }
    }

    core::PimMmuOp
    op(core::XferDirection dir = core::XferDirection::DramToPim) const
    {
        core::PimMmuOp o;
        o.type = dir;
        o.sizePerPim = kBytesPerDpu;
        o.pimIdArr = dpuIds;
        o.dramAddrArr = hostAddrs;
        o.pimBaseHeapPtr = 0;
        return o;
    }

    /** Run one checked transfer to completion; returns final status. */
    Status
    run(Status *syncOut = nullptr)
    {
        bool done = false;
        Status final;
        const Status sync = sys.pimMmu().transferChecked(
            op(), [&](const Status &s) {
                final = s;
                done = true;
            });
        if (syncOut != nullptr)
            *syncOut = sync;
        if (!sync.ok())
            return sync;
        EXPECT_TRUE(sys.runUntil([&] { return done; }));
        return final;
    }

    std::uint64_t
    counter(const char *name)
    {
        Manager *mgr = sys.resilienceManager();
        EXPECT_NE(mgr, nullptr);
        return mgr ? mgr->stats().counterValue(name) : 0;
    }
};

} // namespace

// ---------------------------------------------------------------------
// CRC-32C codec.
// ---------------------------------------------------------------------

TEST(Crc32c, KnownAnswer)
{
    // The canonical CRC-32C check value (RFC 3720 appendix).
    EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot)
{
    const char *msg = "the quick brown fox jumps over the lazy dog";
    const std::size_t n = std::strlen(msg);
    std::uint32_t state = kCrc32cInit;
    for (std::size_t i = 0; i < n; ++i)
        state = crc32cUpdate(state, msg + i, 1);
    EXPECT_EQ(crc32cFinish(state), crc32c(msg, n));
}

TEST(Crc32c, DetectsSingleBitChange)
{
    std::uint8_t buf[64] = {};
    const std::uint32_t clean = crc32c(buf, sizeof(buf));
    buf[17] ^= 0x10;
    EXPECT_NE(crc32c(buf, sizeof(buf)), clean);
}

// ---------------------------------------------------------------------
// SEC-DED ECC codec.
// ---------------------------------------------------------------------

TEST(Ecc, CleanWordDecodesClean)
{
    std::uint8_t word[8] = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4};
    std::uint8_t check = eccEncode(word);
    EXPECT_EQ(eccDecode(word, check), EccOutcome::Clean);
    EXPECT_EQ(word[0], 0xde);
}

TEST(Ecc, EverySingleDataBitFlipIsCorrected)
{
    const std::uint8_t golden[8] = {0x5a, 0xc3, 0x00, 0xff,
                                    0x12, 0x34, 0x56, 0x78};
    for (unsigned bit = 0; bit < kEccDataBits; ++bit) {
        std::uint8_t word[8];
        std::memcpy(word, golden, 8);
        std::uint8_t check = eccEncode(word);
        word[bit / 8] ^= std::uint8_t{1} << (bit % 8);
        EXPECT_EQ(eccDecode(word, check), EccOutcome::CorrectedData)
            << "data bit " << bit;
        EXPECT_EQ(std::memcmp(word, golden, 8), 0) << "data bit " << bit;
    }
}

TEST(Ecc, EverySingleCheckBitFlipIsCorrected)
{
    const std::uint8_t golden[8] = {9, 8, 7, 6, 5, 4, 3, 2};
    for (unsigned bit = 0; bit < kEccCheckBits; ++bit) {
        std::uint8_t word[8];
        std::memcpy(word, golden, 8);
        std::uint8_t check = eccEncode(word);
        check ^= std::uint8_t{1} << bit;
        EXPECT_EQ(eccDecode(word, check), EccOutcome::CorrectedCheck)
            << "check bit " << bit;
        EXPECT_EQ(std::memcmp(word, golden, 8), 0) << "check bit " << bit;
    }
}

TEST(Ecc, EveryDoubleDataBitFlipIsDetected)
{
    const std::uint8_t golden[8] = {0xaa, 0x55, 0xaa, 0x55,
                                    0xde, 0xad, 0xbe, 0xef};
    for (unsigned a = 0; a < kEccDataBits; ++a) {
        for (unsigned b = a + 1; b < kEccDataBits; ++b) {
            std::uint8_t word[8];
            std::memcpy(word, golden, 8);
            std::uint8_t check = eccEncode(word);
            word[a / 8] ^= std::uint8_t{1} << (a % 8);
            word[b / 8] ^= std::uint8_t{1} << (b % 8);
            ASSERT_EQ(eccDecode(word, check), EccOutcome::Uncorrectable)
                << "bits " << a << "," << b;
        }
    }
}

// ---------------------------------------------------------------------
// Status plumbing.
// ---------------------------------------------------------------------

TEST(Status, DefaultIsOkAndFailureCarriesDetail)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code, ErrorCode::Ok);

    const Status bad =
        Status::failure(ErrorCode::DataCorrupt, "42 bad words");
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.str().find("data_corrupt"), std::string::npos);
    EXPECT_NE(bad.str().find("42 bad words"), std::string::npos);
}

TEST(Status, EveryErrorCodeNamesRoundTrip)
{
    // Exhaustive over kNumErrorCodes: every code must have a distinct,
    // human-readable name, and errorCodeFromName must invert it. A new
    // enumerator without a name lands in the default/"unknown" path and
    // fails here.
    std::set<std::string> seen;
    for (unsigned i = 0; i < kNumErrorCodes; ++i) {
        const ErrorCode c = static_cast<ErrorCode>(i);
        const char *name = errorCodeName(c);
        ASSERT_NE(name, nullptr) << "code " << i;
        EXPECT_GT(std::strlen(name), 0u) << "code " << i;
        EXPECT_STRNE(name, "unknown") << "code " << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "codes alias to one name: " << name;
        ErrorCode back = ErrorCode::Ok;
        ASSERT_TRUE(errorCodeFromName(name, back)) << name;
        EXPECT_EQ(back, c) << name;
    }
    EXPECT_EQ(seen.size(), kNumErrorCodes);

    ErrorCode out = ErrorCode::Ok;
    EXPECT_FALSE(errorCodeFromName("no_such_code", out));
    EXPECT_FALSE(errorCodeFromName("", out));
}

// ---------------------------------------------------------------------
// Structured rejection: one test per reason.
// ---------------------------------------------------------------------

namespace {

struct DceHarness
{
    device::PimGeometry pimGeom = device::PimGeometry::paperTable1();
    EventQueue eq;
    mapping::SystemMapPtr map;
    std::unique_ptr<dram::MemorySystem> mem;
    std::unique_ptr<core::Dce> dce;

    DceHarness()
    {
        mapping::DramGeometry dramGeom = pimGeom.banks;
        dramGeom.bankGroups = 4;
        dramGeom.banksPerGroup = 4;
        map = mapping::makeHetMap(dramGeom, pimGeom.banks);
        mem = std::make_unique<dram::MemorySystem>(
            eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
        dce = std::make_unique<core::Dce>(eq, core::DceConfig{}, *mem,
                                          pimGeom);
    }
};

} // namespace

TEST(Rejection, DceEmptyDescriptor)
{
    DceHarness h;
    const Status st = h.dce->enqueueChecked(
        core::DceTransfer{}, [](const Status &) { FAIL(); });
    EXPECT_EQ(st.code, ErrorCode::EmptyDescriptor);
    EXPECT_FALSE(h.dce->busy());
    EXPECT_EQ(h.dce->stats().counterValue("transfers_rejected"), 1u);
}

TEST(Rejection, DceEmptyStream)
{
    DceHarness h;
    core::DceTransfer t;
    core::BankStream s;
    s.totalLines = 0; // would hang the engine forever
    t.streams.push_back(s);
    const Status st =
        h.dce->enqueueChecked(std::move(t), [](const Status &) {});
    EXPECT_EQ(st.code, ErrorCode::EmptyStream);
    EXPECT_FALSE(h.dce->busy());
}

TEST(Rejection, DceDescriptorTooLarge)
{
    DceHarness h;
    core::DceTransfer t;
    const std::uint64_t entries =
        h.dce->config().addressBufferEntries();
    for (std::uint64_t i = 0; i <= entries / 8; ++i) {
        core::BankStream s;
        s.bankIdx = 0;
        s.totalLines = 1;
        t.streams.push_back(s);
    }
    const Status st =
        h.dce->enqueueChecked(std::move(t), [](const Status &) {});
    EXPECT_EQ(st.code, ErrorCode::DescriptorTooLarge);
}

TEST(Rejection, GroupByBankEmptyAndMalformed)
{
    const device::PimGeometry geom = device::PimGeometry::paperTable1();
    device::BankGrouping out;

    EXPECT_EQ(device::groupByBankChecked(geom, {}, {}, 64, 0, out).code,
              ErrorCode::EmptyDescriptor);

    // Length mismatch.
    EXPECT_EQ(
        device::groupByBankChecked(geom, {0, 1}, {0}, 64, 0, out).code,
        ErrorCode::MalformedDescriptor);

    // Whole banks: covering 8 chips is required, 1 is malformed.
    std::vector<unsigned> oneChip{0};
    std::vector<Addr> oneAddr{0};
    EXPECT_EQ(device::groupByBankChecked(geom, oneChip, oneAddr, 64, 0,
                                         out)
                  .code,
              ErrorCode::MalformedDescriptor);

    // Unaligned size / heap offset.
    std::vector<unsigned> bank0(8);
    std::vector<Addr> addrs(8);
    for (unsigned c = 0; c < 8; ++c) {
        bank0[c] = geom.dpuId(0, c);
        addrs[c] = Addr{c} * 4096;
    }
    EXPECT_EQ(device::groupByBankChecked(geom, bank0, addrs, 60, 0, out)
                  .code,
              ErrorCode::MalformedDescriptor);
    EXPECT_EQ(device::groupByBankChecked(geom, bank0, addrs, 64, 3, out)
                  .code,
              ErrorCode::MalformedDescriptor);

    // Exceeding MRAM capacity is a size problem, not a shape problem.
    EXPECT_EQ(device::groupByBankChecked(geom, bank0, addrs,
                                         geom.mramBytesPerDpu() + 64, 0,
                                         out)
                  .code,
              ErrorCode::DescriptorTooLarge);

    // And the well-formed version passes.
    EXPECT_TRUE(device::groupByBankChecked(geom, bank0, addrs, 64, 0,
                                           out)
                    .ok());
    EXPECT_EQ(out.banks.size(), 1u);
}

TEST(Rejection, RuntimeRejectsSynchronouslyWithoutEnqueuing)
{
    CampaignHarness h(Policy::off());
    core::PimMmuOp bad = h.op();
    bad.sizePerPim = 60; // not a multiple of 64
    bool fired = false;
    const Status st = h.sys.pimMmu().transferChecked(
        bad, [&](const Status &) { fired = true; });
    EXPECT_EQ(st.code, ErrorCode::MalformedDescriptor);
    EXPECT_FALSE(fired);
    EXPECT_FALSE(h.sys.dce().busy());
}

// ---------------------------------------------------------------------
// Rate-based fault arming.
// ---------------------------------------------------------------------

TEST(FaultRate, SameSeedReplaysIdentically)
{
    using namespace pimmmu::testing;

    auto record = [](double prob, std::uint64_t seed) {
        fault::armRate("test.rate_site", prob, seed);
        std::vector<bool> fires;
        for (unsigned i = 0; i < 512; ++i)
            fires.push_back(fault::fire("test.rate_site"));
        const std::uint64_t fired = fault::count("test.rate_site");
        fault::disarmAll();
        EXPECT_EQ(fired, static_cast<std::uint64_t>(std::count(
                             fires.begin(), fires.end(), true)));
        return fires;
    };

    const auto a = record(0.25, 1234);
    const auto b = record(0.25, 1234);
    EXPECT_EQ(a, b);

    const auto c = record(0.25, 99);
    EXPECT_NE(a, c);

    // Probability actually shapes the rate.
    const auto none = record(0.0, 1234);
    EXPECT_EQ(std::count(none.begin(), none.end(), true), 0);
    const auto all = record(1.0, 1234);
    EXPECT_EQ(std::count(all.begin(), all.end(), true), 512);
}

TEST(FaultRate, ArmedSitesAreThreadLocal)
{
    using namespace pimmmu::testing;
    fault::armRate("test.isolated", 1.0, 7);
    EXPECT_TRUE(fault::fire("test.isolated"));

    bool firedOnOtherThread = true;
    std::thread other([&] {
        firedOnOtherThread = fault::fire("test.isolated");
    });
    other.join();
    EXPECT_FALSE(firedOnOtherThread);

    // The other thread's silence didn't disturb this thread's site.
    EXPECT_TRUE(fault::fire("test.isolated"));
    EXPECT_EQ(fault::count("test.isolated"), 2u);
    fault::disarmAll();
}

// ---------------------------------------------------------------------
// Non-vacuity: each resilience counter moves when its fault is armed.
// ---------------------------------------------------------------------

TEST(Counters, EccCorrectedCountsEverySingleBitFlip)
{
    testing::fault::arm("ecc.flip_single_bit");
    CampaignHarness h(Policy::withRetry());
    const Status st = h.run();
    testing::fault::disarmAll();
    EXPECT_TRUE(st.ok()) << st.str();
    // Every delivered word was flipped once on the wire and repaired:
    // 16 DPUs x 512 B / 8 B per word.
    EXPECT_EQ(h.counter("ecc_corrected"),
              CampaignHarness::kDpus * CampaignHarness::kBytesPerDpu /
                  8);
    EXPECT_EQ(h.counter("ecc_uncorrectable"), 0u);
}

TEST(Counters, UncorrectableFlipsBurnWordRetriesThenHeal)
{
    // Double flips at 5%: dozens of words need a link-level
    // retransmission, and at this rate the per-word retry budget heals
    // every one of them without escalating to a descriptor retry
    // (failing 5 consecutive draws is a ~3e-7 event per word).
    testing::fault::armRate("ecc.flip_double_bit", 0.05, 42);
    CampaignHarness h(Policy::withRetry());
    const Status st = h.run();
    testing::fault::disarmAll();
    EXPECT_TRUE(st.ok()) << st.str();
    EXPECT_GT(h.counter("ecc_uncorrectable"), 0u);
    EXPECT_GT(h.counter("burst_retries"), 0u);
    EXPECT_EQ(h.counter("crc_retries") + h.counter("ecc_retries"), 0u);
}

TEST(Counters, CrcRetriesExhaustIntoDataCorrupt)
{
    // Past-ECC corruption on every word: ECC can't see it, the
    // end-to-end CRC trips on every attempt, the retry budget runs dry.
    testing::fault::arm("xfer.corrupt_data");
    CampaignHarness h(Policy::withRetry());
    const Status st = h.run();
    testing::fault::disarmAll();
    EXPECT_EQ(st.code, ErrorCode::DataCorrupt);
    EXPECT_EQ(h.counter("crc_retries"),
              Policy::withRetry().maxRetries);
    EXPECT_EQ(h.counter("transfers_failed"), 1u);
}

TEST(Counters, WatchdogRecoversDroppedWriteCompletions)
{
    // Drop one in three write completions: without the watchdog the
    // engine wedges, with it every lost write is re-driven.
    testing::fault::armRate("dce.drop_write_completion", 0.33, 7);
    CampaignHarness h(Policy::withRetry());
    const Status st = h.run();
    testing::fault::disarmAll();
    EXPECT_TRUE(st.ok()) << st.str();
    EXPECT_GT(h.counter("watchdog_fires"), 0u);
    EXPECT_GT(h.counter("watchdog_recovered_writes"), 0u);
    EXPECT_EQ(h.sys.dce().stats().counterValue("watchdog_resyncs"),
              h.counter("watchdog_fires"));
}

TEST(Counters, DeadDpusAreMaskedAndNoHealthyTargetsIsReported)
{
    // Every health probe fires: all listed cores die at first use, so
    // the whole plan masks out and the call reports it synchronously.
    testing::fault::arm("dpu.kill");
    CampaignHarness h(Policy::withRetryAndMask());
    Status sync;
    const Status st = h.run(&sync);
    testing::fault::disarmAll();
    EXPECT_EQ(st.code, ErrorCode::NoHealthyTargets);
    EXPECT_EQ(sync.code, ErrorCode::NoHealthyTargets);
    EXPECT_EQ(h.counter("dpus_masked"),
              std::uint64_t{CampaignHarness::kDpus});
    EXPECT_EQ(h.counter("banks_masked"), 2u);
    Manager *mgr = h.sys.resilienceManager();
    ASSERT_NE(mgr, nullptr);
    EXPECT_FALSE(mgr->dpuHealthy(0));
    EXPECT_EQ(mgr->healthyDpus(),
              h.sys.config().pimGeom.numDpus() -
                  CampaignHarness::kDpus);
}

TEST(Counters, PartialMaskDegradesInsteadOfFailing)
{
    CampaignHarness h(Policy::withRetryAndMask());
    Manager *mgr = h.sys.resilienceManager();
    ASSERT_NE(mgr, nullptr);
    // Kill one core by hand: its whole bank (8 chips) must mask, the
    // other bank keeps flowing and the transfer degrades gracefully.
    mgr->markDpuFailed(3, h.sys.eq().now());
    const Status st = h.run();
    EXPECT_TRUE(st.ok()) << st.str();
    EXPECT_EQ(h.counter("dpus_masked"), 8u);
    EXPECT_EQ(h.counter("transfers_degraded"), 1u);
    EXPECT_FALSE(mgr->dpuHealthy(0));
    EXPECT_TRUE(mgr->dpuHealthy(8));
}

// ---------------------------------------------------------------------
// Correlated failure domains.
// ---------------------------------------------------------------------

TEST(Domains, FoldBankToRankAndChannel)
{
    // The paper Table I shape: 4 channels x 2 ranks x 8 banks.
    DomainMap m;
    m.numBanks = 64;
    m.banksPerRank = 8;
    m.ranksPerChannel = 2;
    EXPECT_EQ(m.numRanks(), 8u);
    EXPECT_EQ(m.numChannels(), 4u);
    EXPECT_EQ(m.rankOfBank(0), 0u);
    EXPECT_EQ(m.rankOfBank(15), 1u);
    EXPECT_EQ(m.channelOfBank(15), 0u);
    EXPECT_EQ(m.channelOfBank(16), 1u);
    EXPECT_EQ(m.rankOfBank(63), 7u);
    EXPECT_EQ(m.channelOfBank(63), 3u);

    // The legacy flat shape has a single all-enclosing domain.
    const DomainMap flat = DomainMap::flat(128, 8);
    EXPECT_EQ(flat.numBanks, 16u);
    EXPECT_EQ(flat.numRanks(), 1u);
    EXPECT_EQ(flat.numChannels(), 1u);
    EXPECT_EQ(flat.channelOfBank(15), 0u);
}

TEST(Domains, CorrelatedKillsMaskWholeDomainsAtomically)
{
    DomainMap m;
    m.numBanks = 64;
    m.banksPerRank = 8;
    m.ranksPerChannel = 2;
    Manager mgr(Policy::withRetryAndMask(), m);

    mgr.markRankFailed(1, 0);
    for (unsigned b = 0; b < 64; ++b)
        EXPECT_EQ(mgr.bankMasked(b), b >= 8 && b < 16) << "bank " << b;
    EXPECT_EQ(mgr.stats().counterValue("ranks_masked"), 1u);
    EXPECT_EQ(mgr.stats().counterValue("banks_masked"), 8u);
    EXPECT_EQ(mgr.stats().counterValue("dpus_masked"), 64u);
    EXPECT_EQ(mgr.maskedBanks(), 8u);
    EXPECT_EQ(mgr.healthyDpus(), (64u - 8u) * 8u);

    // A channel kill covers both its ranks; the overlap with the
    // already-dead rank is not double-counted.
    mgr.markChannelFailed(0, 0);
    for (unsigned b = 0; b < 16; ++b)
        EXPECT_TRUE(mgr.bankMasked(b)) << "bank " << b;
    EXPECT_TRUE(mgr.dpuHealthy(16 * 8));
    EXPECT_EQ(mgr.stats().counterValue("channels_masked"), 1u);
    EXPECT_EQ(mgr.stats().counterValue("banks_masked"), 16u);
    EXPECT_EQ(mgr.maskedBanks(), 16u);
}

TEST(Domains, ChannelKillRejectsTransferWithNoHealthyTargets)
{
    // The harness targets banks 0-1, both on channel 0: one fire of
    // the correlated channel-kill site takes out every target, and the
    // call must reject with a structured status — not trip an assert.
    testing::fault::armRate("domain.kill_channel", 1.0, 9);
    CampaignHarness h(Policy::withRetryAndMask());
    Status sync;
    const Status st = h.run(&sync);
    testing::fault::disarmAll();
    EXPECT_EQ(st.code, ErrorCode::NoHealthyTargets);
    EXPECT_EQ(sync.code, ErrorCode::NoHealthyTargets);
    Manager *mgr = h.sys.resilienceManager();
    ASSERT_NE(mgr, nullptr);
    EXPECT_GE(h.counter("channels_masked"), 1u);
    // All 16 banks of channel 0 are out; channel 1 is untouched.
    EXPECT_EQ(mgr->maskedBanks(),
              mgr->domains().banksPerChannel());
    EXPECT_FALSE(mgr->dpuHealthy(0));
    EXPECT_TRUE(mgr->dpuHealthy(mgr->domains().banksPerChannel() * 8));
}

// ---------------------------------------------------------------------
// Repair & re-admission.
// ---------------------------------------------------------------------

TEST(Repair, ProbeEvidenceWalksTheHealthStateMachine)
{
    Manager mgr(Policy::withRepair(), DomainMap::flat(64, 8));
    EXPECT_EQ(mgr.bankState(3), BankState::Healthy);

    // First failure: suspected (repair gets a chance), out of service.
    mgr.markDpuFailed(3 * 8 + 2, 100);
    EXPECT_EQ(mgr.bankState(3), BankState::Suspected);
    EXPECT_TRUE(mgr.bankMasked(3));
    EXPECT_EQ(mgr.banksNeedingProbe(), std::vector<unsigned>{3});
    EXPECT_EQ(mgr.healthyDpus(), 64u - 8u);

    // One clean probe: probation, still out of service.
    mgr.noteProbeResult(3, true, 200);
    EXPECT_EQ(mgr.bankState(3), BankState::Probation);
    EXPECT_TRUE(mgr.bankMasked(3));

    // A failed probe confirms the fault and resets the clean streak.
    mgr.noteProbeResult(3, false, 300);
    EXPECT_EQ(mgr.bankState(3), BankState::Masked);
    EXPECT_EQ(mgr.stats().counterValue("probe_failures"), 1u);

    // probesToReadmit consecutive clean probes re-admit the bank.
    mgr.noteProbeResult(3, true, 400);
    EXPECT_EQ(mgr.bankState(3), BankState::Probation);
    mgr.noteProbeResult(3, true, 500);
    EXPECT_EQ(mgr.bankState(3), BankState::Healthy);
    EXPECT_EQ(mgr.stats().counterValue("readmissions"), 1u);
    EXPECT_EQ(mgr.stats().counterValue("probe_transfers"), 4u);
    EXPECT_EQ(mgr.healthyDpus(), 64u);
    EXPECT_TRUE(mgr.banksNeedingProbe().empty());

    // Without repair the first failure masks permanently.
    Manager hard(Policy::withRetryAndMask(), DomainMap::flat(64, 8));
    hard.markDpuFailed(0, 0);
    EXPECT_EQ(hard.bankState(0), BankState::Masked);

    // Every state has a printable name.
    for (BankState s : {BankState::Healthy, BankState::Suspected,
                        BankState::Masked, BankState::Probation})
        EXPECT_GT(std::strlen(bankStateName(s)), 0u);
}

TEST(Repair, ScrubReadmitsKilledBanksAndServiceResumes)
{
    // Kill everything once, then let the scrub pass earn it all back.
    testing::fault::arm("dpu.kill");
    CampaignHarness h(Policy::withRepair());
    const Status st = h.run();
    testing::fault::disarmAll();
    EXPECT_EQ(st.code, ErrorCode::NoHealthyTargets);
    Manager *mgr = h.sys.resilienceManager();
    ASSERT_NE(mgr, nullptr);
    EXPECT_EQ(mgr->maskedBanks(), 2u);

    // Pass 1 promotes both banks to probation; pass 2 re-admits them.
    sim::ScrubReport rep = h.sys.runScrub();
    EXPECT_EQ(rep.probed, 2u);
    EXPECT_EQ(rep.readmitted, 0u);
    EXPECT_EQ(rep.failed, 0u);
    rep = h.sys.runScrub();
    EXPECT_EQ(rep.probed, 2u);
    EXPECT_EQ(rep.readmitted, 2u);
    EXPECT_TRUE(h.sys.runScrub().idle());

    EXPECT_EQ(mgr->maskedBanks(), 0u);
    EXPECT_EQ(mgr->healthyDpus(), h.sys.config().pimGeom.numDpus());
    EXPECT_EQ(h.counter("readmissions"), 2u);
    EXPECT_EQ(h.counter("probe_transfers"), 4u);
    EXPECT_EQ(h.counter("probe_failures"), 0u);

    // And the next transfer runs whole again — no degradation.
    const std::uint64_t degradedBefore =
        h.counter("transfers_degraded");
    const Status again = h.run();
    EXPECT_TRUE(again.ok()) << again.str();
    EXPECT_EQ(h.counter("transfers_degraded"), degradedBefore);
}

TEST(Repair, FaultyProbeKeepsTheBankOutOfService)
{
    CampaignHarness h(Policy::withRepair());
    Manager *mgr = h.sys.resilienceManager();
    ASSERT_NE(mgr, nullptr);
    mgr->markDpuFailed(0, h.sys.eq().now());
    EXPECT_EQ(mgr->maskedBanks(), 1u);

    // The bank is still corrupting data: every probe transfer trips
    // the CRC, so scrubbing never re-admits it.
    testing::fault::arm("xfer.corrupt_data");
    for (int pass = 0; pass < 4; ++pass) {
        const sim::ScrubReport rep = h.sys.runScrub();
        EXPECT_EQ(rep.probed, 1u);
        EXPECT_EQ(rep.readmitted, 0u);
        EXPECT_EQ(rep.failed, 1u);
    }
    testing::fault::disarmAll();
    EXPECT_EQ(mgr->bankState(0), BankState::Masked);
    EXPECT_EQ(h.counter("probe_failures"), 4u);
    EXPECT_EQ(h.counter("readmissions"), 0u);
}

TEST(Repair, ScrubIsANoOpWithoutRepairOrFailures)
{
    // No repair in the policy: scrub refuses to probe at all.
    CampaignHarness masked(Policy::withRetryAndMask());
    masked.sys.resilienceManager()->markDpuFailed(0, 0);
    EXPECT_TRUE(masked.sys.runScrub().idle());

    // Repair on but nothing failed: nothing to probe.
    CampaignHarness repair(Policy::withRepair());
    EXPECT_TRUE(repair.sys.runScrub().idle());
    EXPECT_EQ(repair.counter("probe_transfers"), 0u);
}

// ---------------------------------------------------------------------
// Checked kernel launches.
// ---------------------------------------------------------------------

namespace {

/** A kernel that stamps a recognizable per-DPU pattern into MRAM. */
std::function<void(device::Dpu &, unsigned)>
stampKernel(std::uint64_t bytes)
{
    return [bytes](device::Dpu &dpu, unsigned idx) {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>((idx * 37u + i) & 0xff);
        dpu.mramWrite(0, buf.data(), buf.size());
    };
}

} // namespace

TEST(Launch, CheckedLaunchVerifiesResultsCleanly)
{
    CampaignHarness h(Policy::withRetryAndMask());
    const upmem::LaunchOutcome out = h.sys.upmem().launchChecked(
        h.dpuIds, stampKernel(CampaignHarness::kBytesPerDpu),
        device::KernelModel{}, CampaignHarness::kBytesPerDpu,
        upmem::LaunchCheck{0, CampaignHarness::kBytesPerDpu});
    EXPECT_TRUE(out.ok()) << out.status.str();
    EXPECT_GT(out.execPs, 0u);
    EXPECT_EQ(out.relaunches, 0u);
    EXPECT_EQ(out.ranOn.size(), h.dpuIds.size());
    EXPECT_EQ(h.counter("launch_crc_failures"), 0u);
}

TEST(Launch, MaskedBankDegradesTheLaunchToSurvivors)
{
    CampaignHarness h(Policy::withRetryAndMask());
    Manager *mgr = h.sys.resilienceManager();
    ASSERT_NE(mgr, nullptr);
    mgr->markDpuFailed(0, 0); // bank 0 out: 8 of the 16 cores
    const upmem::LaunchOutcome out = h.sys.upmem().launchChecked(
        h.dpuIds, stampKernel(64), device::KernelModel{}, 64,
        upmem::LaunchCheck{0, 64});
    EXPECT_TRUE(out.ok()) << out.status.str();
    EXPECT_EQ(out.ranOn.size(), 8u);
    EXPECT_GE(h.counter("launches_degraded"), 1u);
}

TEST(Launch, AllCoresDyingMidKernelIsAStructuredFailure)
{
    // Every post-run health probe fires: the whole fleet dies during
    // the kernel and there is nobody left to relaunch on.
    CampaignHarness h(Policy::withRetryAndMask());
    testing::fault::arm("dpu.kill");
    const upmem::LaunchOutcome out = h.sys.upmem().launchChecked(
        h.dpuIds, stampKernel(64), device::KernelModel{}, 64,
        upmem::LaunchCheck{0, 64});
    testing::fault::disarmAll();
    EXPECT_EQ(out.status.code, ErrorCode::NoHealthyTargets);
    EXPECT_EQ(h.counter("dpus_masked"),
              std::uint64_t{CampaignHarness::kDpus});
}

TEST(Launch, CorruptResultReadbackMasksTheCoreAndFails)
{
    // Past-ECC corruption on every readback word: verification fails
    // for every core on the first attempt, each gets masked, and the
    // launch reports the structured failure.
    CampaignHarness h(Policy::withRetryAndMask());
    testing::fault::arm("xfer.corrupt_data");
    const upmem::LaunchOutcome out = h.sys.upmem().launchChecked(
        h.dpuIds, stampKernel(64), device::KernelModel{}, 64,
        upmem::LaunchCheck{0, 64});
    testing::fault::disarmAll();
    EXPECT_FALSE(out.ok());
    // One failure per bank: the first corrupt readback masks the whole
    // bank, so its siblings are skipped rather than re-verified.
    EXPECT_EQ(h.counter("launch_crc_failures"), 2u);
    EXPECT_EQ(h.counter("dpus_masked"),
              std::uint64_t{CampaignHarness::kDpus});
}

// ---------------------------------------------------------------------
// Guarded DRAM->DRAM memcpy.
// ---------------------------------------------------------------------

TEST(Memcpy, GuardedCopyHealsLinkFlips)
{
    // Every copied word flips one bit on the wire; SEC heals them all
    // and the copy succeeds without a single retry.
    testing::fault::arm("ecc.flip_single_bit");
    CampaignHarness h(Policy::withRetry());
    const sim::TransferStats stats = h.sys.runMemcpy(64 * kKiB);
    testing::fault::disarmAll();
    EXPECT_TRUE(stats.ok()) << stats.status.str();
    EXPECT_EQ(h.counter("ecc_corrected"), 64 * kKiB / 8);
    EXPECT_EQ(h.counter("crc_retries"), 0u);
}

TEST(Memcpy, GuardedCopyExhaustsRetriesIntoDataCorrupt)
{
    // Past-ECC corruption on every attempt: the retry budget burns
    // down and the memcpy reports DataCorrupt instead of silently
    // delivering garbage.
    testing::fault::arm("xfer.corrupt_data");
    CampaignHarness h(Policy::withRetry());
    const sim::TransferStats stats = h.sys.runMemcpy(16 * kKiB);
    testing::fault::disarmAll();
    EXPECT_EQ(stats.status.code, ErrorCode::DataCorrupt);
    EXPECT_EQ(h.counter("crc_retries"), Policy::withRetry().maxRetries);
    EXPECT_GE(h.counter("transfers_failed"), 1u);
}

TEST(Memcpy, PolicyOffKeepsTheLegacyUnguardedPath)
{
    testing::fault::arm("ecc.flip_single_bit");
    CampaignHarness h(Policy::off());
    const sim::TransferStats stats = h.sys.runMemcpy(16 * kKiB);
    EXPECT_TRUE(stats.ok()) << stats.status.str();
    // The guard never ran, so the armed site was never even probed.
    EXPECT_EQ(testing::fault::count("ecc.flip_single_bit"), 0u);
    testing::fault::disarmAll();
}

TEST(Counters, NoManagerMeansNoProbesAndNoOverhead)
{
    // With the policy fully off, the ecc sites are never even probed:
    // the legacy functional path runs guard-free.
    testing::fault::arm("ecc.flip_single_bit");
    CampaignHarness h(Policy::off());
    EXPECT_EQ(h.sys.resilienceManager(), nullptr);
    const Status st = h.run();
    EXPECT_TRUE(st.ok()) << st.str();
    EXPECT_EQ(testing::fault::count("ecc.flip_single_bit"), 0u);
    testing::fault::disarmAll();
}

// ---------------------------------------------------------------------
// RetryBudget: saturation and overflow guards. Soak campaigns run
// minutes of simulated time (~1e14 ps), which is where naive token
// arithmetic overflows or a single bad charge poisons the bucket.
// ---------------------------------------------------------------------

TEST(RetryBudget, NonFiniteChargeIsRejectedAndDoesNotPoison)
{
    RetryBudget b(10.0, 1.0);
    EXPECT_FALSE(b.tryAcquire(0, std::nan("")));
    EXPECT_FALSE(b.tryAcquire(0, std::numeric_limits<double>::infinity()));
    EXPECT_FALSE(b.tryAcquire(0, -1.0));
    // The bucket still works normally after the bad charges.
    EXPECT_DOUBLE_EQ(b.tokens(), 10.0);
    EXPECT_TRUE(b.tryAcquire(0, 10.0));
    EXPECT_FALSE(b.tryAcquire(0, 1.0));
}

TEST(RetryBudget, PathologicalRefillRateSaturatesAtBurst)
{
    RetryBudget b(5.0, std::numeric_limits<double>::max());
    ASSERT_TRUE(b.tryAcquire(0, 5.0));
    // delta * perSecond overflows a double into +inf; the bucket must
    // clamp to a full burst instead of going non-finite.
    EXPECT_TRUE(b.tryAcquire(1'000'000, 5.0));
    EXPECT_TRUE(std::isfinite(b.tokens()));
    EXPECT_LE(b.tokens(), 5.0);
}

TEST(RetryBudget, SoakScaleTickDeltaDoesNotOverflow)
{
    RetryBudget b(100.0, 2.0);
    ASSERT_TRUE(b.tryAcquire(0, 100.0));
    // Minutes of simulated time in one refill step: 5 min = 3e14 ps.
    const Tick fiveMinutes = 300ull * 1'000'000'000'000ull;
    EXPECT_DOUBLE_EQ(b.available(fiveMinutes), 100.0);
    EXPECT_TRUE(b.tryAcquire(fiveMinutes, 100.0));
}

TEST(RetryBudget, TimeBackwardsAfterRestoreIsANoOp)
{
    RetryBudget b(10.0, 1.0);
    ASSERT_TRUE(b.tryAcquire(5'000'000'000'000ull, 8.0)); // t = 5 s
    const double level = b.tokens();
    // A restored bucket can carry a refill stamp ahead of the clock it
    // re-attaches to; earlier ticks must not grant a wrapped refill.
    EXPECT_DOUBLE_EQ(b.available(1'000'000), level);
    EXPECT_DOUBLE_EQ(b.available(0), level);
}

TEST(RetryBudget, RestoreSaturatesCorruptValuesIntoRange)
{
    RetryBudget b(10.0, 1.0);
    b.restore(std::nan(""), 0);
    EXPECT_DOUBLE_EQ(b.tokens(), 10.0);
    b.restore(-5.0, 0);
    EXPECT_DOUBLE_EQ(b.tokens(), 0.0);
    b.restore(1e30, 0);
    EXPECT_DOUBLE_EQ(b.tokens(), 10.0);
    b.restore(3.5, 123);
    EXPECT_DOUBLE_EQ(b.tokens(), 3.5);
    EXPECT_EQ(b.lastRefillPs(), 123u);
}

TEST(RetryBudget, UnlimitedBucketIgnoresEverything)
{
    RetryBudget b; // burst == 0 disables the limiter
    EXPECT_TRUE(b.unlimited());
    EXPECT_TRUE(b.tryAcquire(0, 1e18));
    // Even a non-finite charge is moot when the limiter is off.
    EXPECT_TRUE(b.tryAcquire(0, std::numeric_limits<double>::infinity()));
}

} // namespace resilience
} // namespace pimmmu

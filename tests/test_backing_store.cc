#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "dram/backing_store.hh"

namespace pimmmu {
namespace dram {

TEST(BackingStore, UntouchedMemoryReadsZero)
{
    BackingStore store;
    std::uint8_t buf[128];
    std::memset(buf, 0xaa, sizeof(buf));
    store.read(0x123456, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(store.allocatedPages(), 0u);
}

TEST(BackingStore, WriteThenReadRoundTrips)
{
    BackingStore store;
    const char msg[] = "pim-mmu backing store";
    store.write(0x1000, msg, sizeof(msg));
    char out[sizeof(msg)];
    store.read(0x1000, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(BackingStore, CrossesPageBoundaries)
{
    BackingStore store;
    std::vector<std::uint8_t> data(3 * BackingStore::kPageBytes);
    Rng rng(5);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng());
    const Addr base = BackingStore::kPageBytes - 100;
    store.write(base, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    store.read(base, out.data(), out.size());
    EXPECT_EQ(data, out);
    EXPECT_EQ(store.allocatedPages(), 4u);
}

TEST(BackingStore, SparseAllocationOnlyTouchedPages)
{
    BackingStore store;
    store.writeByte(0, 1);
    store.writeByte(100 * kMiB, 2);
    EXPECT_EQ(store.allocatedPages(), 2u);
    EXPECT_EQ(store.readByte(0), 1);
    EXPECT_EQ(store.readByte(100 * kMiB), 2);
    EXPECT_EQ(store.readByte(50 * kMiB), 0);
}

TEST(BackingStore, OverwritePartial)
{
    BackingStore store;
    std::uint8_t ones[16];
    std::memset(ones, 1, sizeof(ones));
    store.write(64, ones, 16);
    std::uint8_t twos[4];
    std::memset(twos, 2, sizeof(twos));
    store.write(70, twos, 4);
    std::uint8_t out[16];
    store.read(64, out, 16);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], (i >= 6 && i < 10) ? 2 : 1) << i;
}

} // namespace dram
} // namespace pimmmu

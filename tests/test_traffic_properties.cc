/**
 * @file
 * Traffic-level property tests: every transfer touches exactly the
 * lines it should (no duplicates, no omissions), across burst-size
 * corner cases, verified from the DRAM command stream itself.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "cpu/copy_thread.hh"
#include "cpu/cpu.hh"
#include "dram/protocol_checker.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {

namespace {

struct Harness
{
    EventQueue eq;
    mapping::DramGeometry geom;
    mapping::SystemMapPtr map;
    std::unique_ptr<dram::MemorySystem> mem;
    std::unique_ptr<cpu::Cpu> cpu;
    std::vector<dram::CommandRecord> dramReads;
    std::vector<dram::CommandRecord> pimWrites;

    Harness()
    {
        geom.channels = 4;
        geom.ranksPerChannel = 2;
        geom.bankGroups = 4;
        geom.banksPerGroup = 2;
        geom.rows = 512;
        geom.columns = 128;
        map = mapping::makeHetMap(geom, geom);
        mem = std::make_unique<dram::MemorySystem>(
            eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
        cpu = std::make_unique<cpu::Cpu>(eq, cpu::CpuConfig{}, *mem);
        for (unsigned ch = 0; ch < 4; ++ch) {
            mem->dramController(ch).onCommand(
                [this](const dram::CommandRecord &r) {
                    if (r.cmd == dram::DramCommand::Rd)
                        dramReads.push_back(r);
                });
            mem->pimController(ch).onCommand(
                [this](const dram::CommandRecord &r) {
                    if (r.cmd == dram::DramCommand::Wr)
                        pimWrites.push_back(r);
                });
        }
    }
};

std::uint64_t
coordKey(const mapping::DramCoord &c)
{
    return ((((std::uint64_t{c.ch} * 8 + c.ra) * 8 + c.bg) * 8 + c.bk) *
                65536 +
            c.ro) *
               1024 +
           c.co;
}

} // namespace

class CopyCoverage : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CopyCoverage, EveryLineReadOnceAndWrittenOnce)
{
    const std::uint64_t linesPerDpu = GetParam();
    Harness h;

    cpu::CopyWork work;
    work.kind = cpu::CopyWork::Kind::DramToPim;
    for (unsigned c = 0; c < 8; ++c)
        work.dpuHostBase[c] = Addr{c} * 1 * kMiB;
    work.wireBase = h.map->pimBase();
    work.linesPerDpu = linesPerDpu;

    bool done = false;
    h.cpu->runJob({std::make_shared<cpu::CopyThread>(work)},
                  [&] { done = true; });
    while (!done && h.eq.step()) {
    }
    ASSERT_TRUE(done);

    // Exactly 8 * linesPerDpu distinct DRAM lines read, and the same
    // number of distinct PIM lines written.
    const std::uint64_t total = 8 * linesPerDpu;
    EXPECT_EQ(h.dramReads.size(), total);
    std::set<std::uint64_t> uniqueReads;
    for (const auto &r : h.dramReads)
        uniqueReads.insert(coordKey(r.coord));
    EXPECT_EQ(uniqueReads.size(), total)
        << "duplicate or aliased read addresses";

    EXPECT_EQ(h.pimWrites.size(), total);
    std::set<std::uint64_t> uniqueWrites;
    for (const auto &r : h.pimWrites)
        uniqueWrites.insert(coordKey(r.coord));
    EXPECT_EQ(uniqueWrites.size(), total);
    h.cpu->shutdown();
}

// Includes non-multiples of 8 (burst fallback) and the 1-line corner.
INSTANTIATE_TEST_SUITE_P(BurstCorners, CopyCoverage,
                         ::testing::Values(1, 2, 4, 7, 8, 12, 64));

TEST(CacheWriteback, VictimAddressMapsBackToTheSameSet)
{
    // 2 sets x 2 ways of 64 B lines: three dirty lines in set 0 force
    // a writeback whose address must be one of the evicted lines.
    EventQueue eq;
    mapping::DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 512;
    g.columns = 128;
    auto map = mapping::makeHetMap(g, g);
    auto mem = std::make_unique<dram::MemorySystem>(
        eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
        dram::timingPreset(dram::SpeedGrade::DDR4_2400));

    std::vector<Addr> writebackAddrs;
    for (unsigned ch = 0; ch < 2; ++ch) {
        mem->dramController(ch).onCommand(
            [&, ch](const dram::CommandRecord &r) {
                if (r.cmd == dram::DramCommand::Wr) {
                    writebackAddrs.push_back(
                        map->dramMapper().unmap(r.coord));
                }
            });
    }

    cache::CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.ways = 2;
    cache::Cache cache(eq, cfg, *mem);

    for (Addr a : {Addr{0}, Addr{128}, Addr{256}}) {
        bool done = false;
        ASSERT_TRUE(cache.access(a, true, [&] { done = true; }));
        eq.run();
        ASSERT_TRUE(done);
    }
    eq.run();
    ASSERT_EQ(writebackAddrs.size(), 1u);
    // The victim must be one of the first two lines (both set 0).
    EXPECT_TRUE(writebackAddrs[0] == 0 || writebackAddrs[0] == 128)
        << "writeback went to 0x" << std::hex << writebackAddrs[0];
}

TEST(PimSideProtocol, PimControllersAreAlsoJedecCompliant)
{
    // Run a full PIM-MS style transfer and validate the PIM channel's
    // command stream with the protocol checker.
    Harness h;
    dram::ProtocolChecker checker(
        dram::timingPreset(dram::SpeedGrade::DDR4_2400), h.geom);
    h.mem->pimController(0).onCommand(
        [&](const dram::CommandRecord &r) { checker.observe(r); });

    // Software copy threads to all banks of channel 0.
    std::vector<std::shared_ptr<cpu::SoftThread>> threads;
    for (unsigned bank = 0; bank < 16; ++bank) {
        cpu::CopyWork work;
        work.kind = cpu::CopyWork::Kind::DramToPim;
        for (unsigned c = 0; c < 8; ++c) {
            work.dpuHostBase[c] =
                Addr{bank * 8 + c} * 256 * kKiB;
        }
        work.wireBase =
            h.map->pimBase() + Addr{bank} * h.geom.bankBytes();
        work.linesPerDpu = 16;
        threads.push_back(std::make_shared<cpu::CopyThread>(work));
    }
    bool done = false;
    h.cpu->runJob(std::move(threads), [&] { done = true; });
    while (!done && h.eq.step()) {
    }
    ASSERT_TRUE(done);
    EXPECT_GT(checker.commandsChecked(), 100u);
    EXPECT_TRUE(checker.clean())
        << checker.violations().size() << " violations, first: "
        << checker.violations().front();
    h.cpu->shutdown();
}

} // namespace pimmmu

/**
 * @file
 * Integration tests asserting the paper's qualitative result shapes —
 * the properties that make the reproduction a reproduction. Each test
 * uses a reduced-size system so the whole file runs in seconds.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "sim/stream_driver.hh"
#include "sim/system.hh"
#include "workloads/patterns.hh"

namespace pimmmu {
namespace sim {

namespace {

SystemConfig
shrunk(DesignPoint dp)
{
    SystemConfig cfg = SystemConfig::paperTable1(dp);
    cfg.dramGeom.rows = 2048;
    cfg.pimGeom.banks.rows = 2048;
    return cfg;
}

} // namespace

TEST(Shapes, Challenge1_BaselineBurnsCoresPimMmuDoesNot)
{
    System base(shrunk(DesignPoint::Base));
    System mmu(shrunk(DesignPoint::BaseDHP));
    const auto b =
        base.runTransfer(core::XferDirection::DramToPim, 512, 2 * kKiB);
    const auto m =
        mmu.runTransfer(core::XferDirection::DramToPim, 512, 2 * kKiB);
    // Paper Fig. 4: baseline pins ~all cores; PIM-MMU nearly none.
    EXPECT_GT(b.avgActiveCores, 6.0);
    EXPECT_LT(m.avgActiveCores, 0.5);
    // Power: baseline near 70 W; PIM-MMU clearly below it.
    const double bWatts = b.energy.totalJ() / b.seconds();
    const double mWatts = m.energy.totalJ() / m.seconds();
    EXPECT_GT(bWatts, 62.0);
    EXPECT_LT(bWatts, 85.0);
    EXPECT_LT(mWatts, bWatts - 5.0);
}

TEST(Shapes, Challenge2_BaselinePimWritesUnderutilizeBandwidth)
{
    System base(shrunk(DesignPoint::Base));
    const auto b =
        base.runTransfer(core::XferDirection::DramToPim, 512, 4 * kKiB);
    // Paper: ~15.5% of PIM peak during DRAM->PIM.
    const double util = b.gbps() * 1e9 / base.mem().pimPeakBandwidth();
    EXPECT_LT(util, 0.35);
    EXPECT_GT(util, 0.02);
}

TEST(Shapes, Challenge3_LocalityMappingThrottlesDram)
{
    mapping::DramGeometry g;
    g.channels = 4;
    g.ranksPerChannel = 2;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 2048;
    g.columns = 128;

    auto measure = [&](bool mlp) {
        EventQueue eq;
        mapping::DramGeometry pimG = g;
        pimG.rows = 64;
        mapping::SystemMap map(
            mlp ? mapping::makeMlpCentricMapper(g)
                : mapping::makeLocalityCentricMapper(g),
            mapping::makeLocalityCentricMapper(pimG));
        dram::MemorySystem mem(
            eq, map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
        StreamDriver driver(eq, mem);
        return driver.run(workloads::sequentialPattern(0, 16384), false)
            .gbps();
    };
    const double loc = measure(false);
    const double mlp = measure(true);
    // Paper Fig. 8: locality-centric reaches ~30% of MLP-centric.
    EXPECT_LT(loc / mlp, 0.5);
    EXPECT_GT(mlp / loc, 2.0);
}

TEST(Shapes, Fig15_AblationOrderingHolds)
{
    // Base+D (vanilla DMA) must not beat the full PIM-MMU, and the
    // full stack must clearly beat the baseline.
    auto gbps = [&](DesignPoint dp) {
        System sys(shrunk(dp));
        return sys
            .runTransfer(core::XferDirection::DramToPim, 512, 4 * kKiB)
            .gbps();
    };
    const double base = gbps(DesignPoint::Base);
    const double baseD = gbps(DesignPoint::BaseD);
    const double baseDH = gbps(DesignPoint::BaseDH);
    const double full = gbps(DesignPoint::BaseDHP);
    EXPECT_GT(full, 2.0 * base);
    EXPECT_GT(full, baseD);
    EXPECT_GT(full, baseDH);
    // Vanilla DMA should not dramatically beat the baseline (the
    // paper finds it often loses).
    EXPECT_LT(baseD, 2.0 * base);
}

TEST(Shapes, Fig15_EnergyEfficiencyFollowsThroughput)
{
    auto eff = [&](DesignPoint dp) {
        System sys(shrunk(dp));
        return sys
            .runTransfer(core::XferDirection::DramToPim, 512, 4 * kKiB)
            .gbPerJoule();
    };
    EXPECT_GT(eff(DesignPoint::BaseDHP), 2.0 * eff(DesignPoint::Base));
}

TEST(Shapes, Fig14_MemcpyScalesWithChannelsNotRanks)
{
    auto gbps = [&](unsigned channels, unsigned ranks) {
        SystemConfig cfg = shrunk(DesignPoint::BaseDHP);
        cfg.dramGeom.channels = channels;
        cfg.dramGeom.ranksPerChannel = ranks;
        System sys(cfg);
        return sys.runMemcpy(2 * kMiB).gbps();
    };
    const double c1 = gbps(1, 1);
    const double c4 = gbps(4, 1);
    const double c4r2 = gbps(4, 2);
    EXPECT_GT(c4, 2.5 * c1);          // channels scale bandwidth
    EXPECT_LT(std::abs(c4r2 - c4) / c4, 0.25); // ranks do not
}

TEST(Shapes, Fig16_TransferBoundWorkloadsGainKernelBoundDoNot)
{
    // BS-like (no kernel) vs TS-like (kernel-dominated) end-to-end.
    auto endToEnd = [&](DesignPoint dp, double kernelMs) {
        System sys(shrunk(dp));
        const auto d2p = sys.runTransfer(core::XferDirection::DramToPim,
                                         512, 4 * kKiB);
        const auto p2d = sys.runTransfer(core::XferDirection::PimToDram,
                                         512, 256);
        return d2p.seconds() * 1e3 + kernelMs + p2d.seconds() * 1e3;
    };
    const double bsBase = endToEnd(DesignPoint::Base, 0.01);
    const double bsMmu = endToEnd(DesignPoint::BaseDHP, 0.01);
    const double tsBase = endToEnd(DesignPoint::Base, 50.0);
    const double tsMmu = endToEnd(DesignPoint::BaseDHP, 50.0);
    EXPECT_GT(bsBase / bsMmu, 2.0);  // transfer-bound: big win
    EXPECT_LT(tsBase / tsMmu, 1.1);  // kernel-bound: marginal
}

TEST(Shapes, PimMsBalancesPimChannelsBaselineDoesNot)
{
    System base(shrunk(DesignPoint::Base));
    System mmu(shrunk(DesignPoint::BaseDHP));
    const auto b =
        base.runTransfer(core::XferDirection::DramToPim, 512, 2 * kKiB);
    const auto m =
        mmu.runTransfer(core::XferDirection::DramToPim, 512, 2 * kKiB);
    // Paper Figs. 6/12: software scheduling congests channels from
    // instant to instant; PIM-MS spreads traffic evenly. Windowed
    // imbalance: 1.0 = balanced, 4.0 = one channel at a time.
    EXPECT_LT(m.pimWindowImbalance, 1.3);
    EXPECT_GT(b.pimWindowImbalance, 1.4);
}

} // namespace sim
} // namespace pimmmu

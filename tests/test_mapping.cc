#include <gtest/gtest.h>

#include "common/random.hh"
#include "mapping/bios_config.hh"
#include "mapping/hetmap.hh"
#include "mapping/layout_mapper.hh"

namespace pimmmu {
namespace mapping {

namespace {

DramGeometry
smallGeometry()
{
    DramGeometry g;
    g.channels = 4;
    g.ranksPerChannel = 2;
    g.bankGroups = 4;
    g.banksPerGroup = 2;
    g.rows = 256;
    g.columns = 32;
    g.lineBytes = 64;
    return g;
}

} // namespace

TEST(LayoutSpec, ParsesAndRoundTrips)
{
    auto fields = parseLayoutSpec("ChRaBgBkRoCo");
    ASSERT_EQ(fields.size(), 6u);
    // LSB-first storage: Co is first.
    EXPECT_EQ(fields.front(), Field::Column);
    EXPECT_EQ(fields.back(), Field::Channel);
    EXPECT_EQ(layoutSpecString(fields), "ChRaBgBkRoCo");
}

TEST(LayoutSpec, RejectsBadSpecs)
{
    EXPECT_THROW(parseLayoutSpec("ChRaBgBkRo"), SimError);   // missing Co
    EXPECT_THROW(parseLayoutSpec("XxRaBgBkRoCo"), SimError); // bad token
    EXPECT_THROW(parseLayoutSpec("ChChBgBkRoCo"), SimError); // repeat
}

TEST(LocalityMapper, IsContiguousPerBank)
{
    const DramGeometry g = smallGeometry();
    auto mapper = makeLocalityCentricMapper(g);

    // Consecutive lines within one bank region share the bank.
    const DramCoord first = mapper->map(0);
    const std::uint64_t bankSpan = g.bankBytes();
    for (Addr a = 0; a < bankSpan; a += bankSpan / 16) {
        const DramCoord c = mapper->map(a);
        EXPECT_EQ(c.ch, first.ch);
        EXPECT_EQ(c.ra, first.ra);
        EXPECT_EQ(c.bg, first.bg);
        EXPECT_EQ(c.bk, first.bk);
    }
    // The next bank region lands in a different bank.
    const DramCoord next = mapper->map(bankSpan);
    EXPECT_NE(next.bankIndex(g), first.bankIndex(g));
}

TEST(LocalityMapper, ChannelsOwnContiguousSlabs)
{
    const DramGeometry g = smallGeometry();
    auto mapper = makeLocalityCentricMapper(g);
    const std::uint64_t slab = g.channelBytes();
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        EXPECT_EQ(mapper->map(Addr{ch} * slab).ch, ch);
        EXPECT_EQ(mapper->map(Addr{ch} * slab + slab - 64).ch, ch);
    }
}

TEST(MlpMapper, SequentialLinesSpreadAcrossChannels)
{
    const DramGeometry g = smallGeometry();
    auto mapper = makeMlpCentricMapper(g);
    std::vector<unsigned> hits(g.channels, 0);
    for (Addr a = 0; a < 64 * g.channels * 4; a += 64)
        ++hits[mapper->map(a).ch];
    for (unsigned ch = 0; ch < g.channels; ++ch)
        EXPECT_EQ(hits[ch], 4u) << "channel " << ch;
}

TEST(MlpMapper, XorHashSpreadsPowerOfTwoStrides)
{
    const DramGeometry g = smallGeometry();
    auto hashed = makeMlpCentricMapper(g, true);
    auto plain = makeMlpCentricMapper(g, false);

    // Stride of exactly channels*64 bytes pins the raw channel bits;
    // XOR hashing must still spread accesses over rows.
    const std::uint64_t stride = std::uint64_t{g.channels} * 64;
    const unsigned rows = 64;
    std::vector<unsigned> hashedHits(g.channels, 0);
    std::vector<unsigned> plainHits(g.channels, 0);
    const unsigned roShift = 6 + g.chBits() + g.bgBits() + g.bkBits() +
                             g.coBits() + g.raBits();
    for (unsigned r = 0; r < rows; ++r) {
        const Addr a = (Addr{r} << roShift);
        ++hashedHits[hashed->map(a).ch];
        ++plainHits[plain->map(a).ch];
        (void)stride;
    }
    // Without hashing everything lands in channel 0.
    EXPECT_EQ(plainHits[0], rows);
    // With hashing the traffic spreads evenly.
    for (unsigned ch = 0; ch < g.channels; ++ch)
        EXPECT_EQ(hashedHits[ch], rows / g.channels);
}

struct MapperCase
{
    const char *name;
    unsigned channels, ranks, bankGroups, banks, rows, columns;
    bool mlp;
    bool xorHash;
};

class MapperRoundTrip : public ::testing::TestWithParam<MapperCase>
{
};

TEST_P(MapperRoundTrip, BijectiveOverSampledAddresses)
{
    const MapperCase &tc = GetParam();
    DramGeometry g;
    g.channels = tc.channels;
    g.ranksPerChannel = tc.ranks;
    g.bankGroups = tc.bankGroups;
    g.banksPerGroup = tc.banks;
    g.rows = tc.rows;
    g.columns = tc.columns;
    ASSERT_TRUE(g.valid());

    MapperPtr mapper = tc.mlp ? makeMlpCentricMapper(g, tc.xorHash)
                              : makeLocalityCentricMapper(g);

    Rng rng(0xabcdef);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(g.totalLines()) * 64;
        const DramCoord coord = mapper->map(addr);
        EXPECT_LT(coord.ch, g.channels);
        EXPECT_LT(coord.ra, g.ranksPerChannel);
        EXPECT_LT(coord.bg, g.bankGroups);
        EXPECT_LT(coord.bk, g.banksPerGroup);
        EXPECT_LT(coord.ro, g.rows);
        EXPECT_LT(coord.co, g.columns);
        EXPECT_EQ(mapper->unmap(coord), addr)
            << tc.name << " addr 0x" << std::hex << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MapperRoundTrip,
    ::testing::Values(
        MapperCase{"loc-small", 2, 1, 2, 2, 64, 16, false, false},
        MapperCase{"loc-table1", 4, 2, 4, 4, 16384, 128, false, false},
        MapperCase{"loc-1ch", 1, 1, 4, 4, 512, 64, false, false},
        MapperCase{"mlp-small", 2, 1, 2, 2, 64, 16, true, true},
        MapperCase{"mlp-table1", 4, 2, 4, 4, 16384, 128, true, true},
        MapperCase{"mlp-noxor", 4, 2, 4, 4, 16384, 128, true, false},
        MapperCase{"mlp-8ch", 8, 2, 4, 4, 1024, 128, true, true},
        MapperCase{"mlp-1ch", 1, 1, 2, 2, 256, 32, true, true}),
    [](const ::testing::TestParamInfo<MapperCase> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(MapperRoundTripExhaustive, TinyGeometryFullSweep)
{
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.bankGroups = 2;
    g.banksPerGroup = 2;
    g.rows = 16;
    g.columns = 8;

    for (bool mlp : {false, true}) {
        MapperPtr mapper = mlp ? makeMlpCentricMapper(g)
                               : makeLocalityCentricMapper(g);
        std::vector<bool> seen(g.totalLines(), false);
        for (Addr a = 0; a < g.capacityBytes(); a += 64) {
            const DramCoord c = mapper->map(a);
            EXPECT_EQ(mapper->unmap(c), a);
            // Injectivity: no two addresses share a coordinate.
            const std::uint64_t flat =
                ((((std::uint64_t{c.ch} * g.ranksPerChannel + c.ra) *
                       g.bankGroups +
                   c.bg) * g.banksPerGroup +
                  c.bk) * g.rows +
                 c.ro) * g.columns +
                c.co;
            EXPECT_FALSE(seen[flat]) << "collision at 0x" << std::hex
                                     << a;
            seen[flat] = true;
        }
    }
}

TEST(BiosConfig, OneWayEverywhereMatchesLocalityMapping)
{
    const DramGeometry g = smallGeometry();
    auto bios = makeBiosMapper(g, BiosConfig::pimSeparated());
    auto locality = makeLocalityCentricMapper(g);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(g.totalLines()) * 64;
        EXPECT_EQ(bios->map(a).ch, locality->map(a).ch);
        EXPECT_EQ(bios->map(a).bankIndex(g),
                  locality->map(a).bankIndex(g));
    }
}

TEST(BiosConfig, NWayChannelPutsChannelBitsAtLsb)
{
    const DramGeometry g = smallGeometry();
    BiosConfig cfg = BiosConfig::conventional();
    cfg.xorHashing = false;
    auto mapper = makeBiosMapper(g, cfg);
    // Consecutive lines must round-robin channels (Fig. 1(d)).
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(mapper->map(Addr{i} * 64).ch, i % g.channels);
}

TEST(BiosConfig, XorWithoutNWayChannelIsRejected)
{
    const DramGeometry g = smallGeometry();
    BiosConfig cfg;
    cfg.channel = Interleave::OneWay;
    cfg.xorHashing = true;
    EXPECT_THROW(makeBiosMapper(g, cfg), SimError);
}

TEST(BiosConfig, RoundTripsForAllKnobCombinations)
{
    const DramGeometry g = smallGeometry();
    Rng rng(99);
    for (int mask = 0; mask < 16; ++mask) {
        BiosConfig cfg;
        cfg.channel = (mask & 1) ? Interleave::NWay : Interleave::OneWay;
        cfg.rank = (mask & 2) ? Interleave::NWay : Interleave::OneWay;
        cfg.bankGroup =
            (mask & 4) ? Interleave::NWay : Interleave::OneWay;
        cfg.bank = (mask & 8) ? Interleave::NWay : Interleave::OneWay;
        cfg.xorHashing = false;
        auto mapper = makeBiosMapper(g, cfg);
        for (int i = 0; i < 500; ++i) {
            const Addr a = rng.below(g.totalLines()) * 64;
            EXPECT_EQ(mapper->unmap(mapper->map(a)), a)
                << "knob mask " << mask;
        }
    }
}

TEST(HetMap, DispatchesByRegion)
{
    const DramGeometry dramGeom = smallGeometry();
    DramGeometry pimGeom = smallGeometry();
    pimGeom.rows = 128;
    auto het = makeHetMap(dramGeom, pimGeom);

    EXPECT_FALSE(het->isPim(0));
    EXPECT_TRUE(het->isPim(het->pimBase()));
    EXPECT_EQ(het->map(0).space, MemSpace::Dram);
    EXPECT_EQ(het->map(het->pimBase()).space, MemSpace::Pim);
    EXPECT_THROW(het->map(het->totalCapacity()), SimError);
}

TEST(HetMap, DramSideUsesMlpPimSideUsesLocality)
{
    const DramGeometry g = smallGeometry();
    auto het = makeHetMap(g, g);

    // DRAM side: consecutive lines spread across channels.
    EXPECT_NE(het->map(0).coord.ch, het->map(64).coord.ch);
    // PIM side: a whole bank region stays in one (ch, bank).
    const auto first = het->map(het->pimBase()).coord;
    const auto later =
        het->map(het->pimBase() + g.bankBytes() - 64).coord;
    EXPECT_EQ(first.ch, later.ch);
    EXPECT_EQ(first.bankIndex(g), later.bankIndex(g));
}

TEST(HetMap, BaselineMapIsLocalityOnBothSides)
{
    const DramGeometry g = smallGeometry();
    auto base = makeBaselineMap(g, g);
    EXPECT_EQ(base->map(0).coord.ch, base->map(64).coord.ch);
    const auto a = base->map(base->pimBase()).coord;
    const auto b = base->map(base->pimBase() + 64).coord;
    EXPECT_EQ(a.bankIndex(g), b.bankIndex(g));
}

TEST(HetMap, CoordinateSideRoundTripIsExhaustive)
{
    // Encode -> decode identity from the coordinate side: every
    // (space, ch, ra, bg, bk, ro, co) tuple at a tiny geometry, for
    // both HetMap mapping functions. The address-side sweeps above
    // cannot see a mapper that drops one coordinate and aliases
    // another; this direction can.
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.bankGroups = 2;
    g.banksPerGroup = 2;
    g.rows = 16;
    g.columns = 8;
    ASSERT_TRUE(g.valid());

    for (bool baseline : {false, true}) {
        auto sysMap =
            baseline ? makeBaselineMap(g, g) : makeHetMap(g, g);
        for (MemSpace space : {MemSpace::Dram, MemSpace::Pim}) {
            for (unsigned ch = 0; ch < g.channels; ++ch)
              for (unsigned ra = 0; ra < g.ranksPerChannel; ++ra)
                for (unsigned bg = 0; bg < g.bankGroups; ++bg)
                  for (unsigned bk = 0; bk < g.banksPerGroup; ++bk)
                    for (unsigned ro = 0; ro < g.rows; ++ro)
                      for (unsigned co = 0; co < g.columns; ++co) {
                          const MappedTarget t{
                              space,
                              DramCoord{ch, ra, bg, bk, ro, co}};
                          const Addr a = sysMap->unmap(t);
                          EXPECT_EQ(sysMap->isPim(a),
                                    space == MemSpace::Pim);
                          const MappedTarget back = sysMap->map(a);
                          EXPECT_EQ(back.space, space);
                          EXPECT_EQ(back.coord.ch, ch);
                          EXPECT_EQ(back.coord.ra, ra);
                          EXPECT_EQ(back.coord.bg, bg);
                          EXPECT_EQ(back.coord.bk, bk);
                          EXPECT_EQ(back.coord.ro, ro);
                          EXPECT_EQ(back.coord.co, co);
                      }
        }
    }
}

TEST(MlpMapper, XorHashKeepsPerRowChannelDistributionUniform)
{
    // Fig. 8 setup: row-stride traffic (the pathological case for
    // plain bit-sliced channel selection). The XOR hash must assign
    // each channel and each bank group an equal share of rows — a
    // distribution property, stronger than mere bijectivity.
    const DramGeometry g = smallGeometry();
    auto mapper = makeMlpCentricMapper(g, true);
    std::vector<unsigned> chHits(g.channels, 0);
    std::vector<unsigned> bgHits(g.bankGroups, 0);
    const unsigned roShift = 6 + g.chBits() + g.bgBits() + g.bkBits() +
                             g.coBits() + g.raBits();
    for (unsigned r = 0; r < g.rows; ++r) {
        const DramCoord c = mapper->map(Addr{r} << roShift);
        EXPECT_EQ(c.ro, r);
        ++chHits[c.ch];
        ++bgHits[c.bg];
    }
    for (unsigned ch = 0; ch < g.channels; ++ch)
        EXPECT_EQ(chHits[ch], g.rows / g.channels) << "channel " << ch;
    for (unsigned bg = 0; bg < g.bankGroups; ++bg)
        EXPECT_EQ(bgHits[bg], g.rows / g.bankGroups) << "bg " << bg;
}

TEST(HetMap, RoundTripsAcrossBothRegions)
{
    const DramGeometry g = smallGeometry();
    auto het = makeHetMap(g, g);
    Rng rng(1234);
    for (int i = 0; i < 4000; ++i) {
        const Addr a = rng.below(het->totalCapacity() / 64) * 64;
        const MappedTarget t = het->map(a);
        EXPECT_EQ(het->unmap(t), a);
    }
}

} // namespace mapping
} // namespace pimmmu

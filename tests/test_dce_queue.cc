#include <gtest/gtest.h>

#include "core/dce.hh"
#include "core/pim_mmu_runtime.hh"
#include "mapping/hetmap.hh"
#include "sim/system.hh"

namespace pimmmu {
namespace core {

TEST(DceQueue, BackToBackTransfersRunInOrder)
{
    device::PimGeometry pimGeom = device::PimGeometry::paperTable1();
    pimGeom.banks.rows = 512;
    EventQueue eq;
    auto map = mapping::makeHetMap(pimGeom.banks, pimGeom.banks);
    dram::MemorySystem mem(
        eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
        dram::timingPreset(dram::SpeedGrade::DDR4_2400));
    Dce dce(eq, DceConfig{}, mem, pimGeom);

    auto makeTransfer = [&](unsigned bank) {
        DceTransfer t;
        BankStream s;
        s.bankIdx = bank;
        for (unsigned c = 0; c < 8; ++c)
            s.hostBase[c] = Addr{bank * 8 + c} * 4096;
        s.wireBase = map->pimBase() + pimGeom.bankRegionOffset(bank);
        s.totalLines = 32;
        t.streams.push_back(s);
        return t;
    };

    std::vector<int> order;
    EXPECT_EQ(dce.enqueue(makeTransfer(0), [&] { order.push_back(0); }),
              1u); // started immediately
    EXPECT_GT(dce.enqueue(makeTransfer(1), [&] { order.push_back(1); }),
              1u); // queued
    dce.enqueue(makeTransfer(2), [&] { order.push_back(2); });
    EXPECT_EQ(dce.queuedTransfers(), 2u);

    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(dce.queuedTransfers(), 0u);
    EXPECT_FALSE(dce.busy());
    EXPECT_EQ(dce.stats().counterValue("transfers"), 3u);
    EXPECT_EQ(dce.stats().counterValue("transfers_queued"), 2u);
}

TEST(DceQueue, ConcurrentPimMmuTransfersComplete)
{
    // Two user processes calling pim_mmu_transfer concurrently: the
    // driver serializes them on the engine; both finish and both move
    // the right data.
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    sim::System sys(cfg);

    const std::uint64_t bytes = 1024;
    auto makeOp = [&](unsigned firstDpu) {
        PimMmuOp op;
        op.type = XferDirection::DramToPim;
        op.sizePerPim = bytes;
        const Addr base = sys.allocDram(8 * bytes);
        for (unsigned i = 0; i < 8; ++i) {
            op.dramAddrArr.push_back(base + Addr{i} * bytes);
            op.pimIdArr.push_back(firstDpu + i);
        }
        return op;
    };

    // Distinct payloads per transfer.
    PimMmuOp a = makeOp(0), b = makeOp(8);
    std::vector<std::uint8_t> pa(8 * bytes, 0xaa), pb(8 * bytes, 0xbb);
    sys.mem().store().write(a.dramAddrArr[0], pa.data(), pa.size());
    sys.mem().store().write(b.dramAddrArr[0], pb.data(), pb.size());

    bool doneA = false, doneB = false;
    sys.pimMmu().transfer(a, [&] { doneA = true; });
    sys.pimMmu().transfer(b, [&] { doneB = true; });
    ASSERT_TRUE(sys.runUntil([&] { return doneA && doneB; }));

    EXPECT_EQ(sys.pim().dpu(0).load<std::uint8_t>(0), 0xaa);
    EXPECT_EQ(sys.pim().dpu(8).load<std::uint8_t>(0), 0xbb);
}

} // namespace core
} // namespace pimmmu

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "common/table.hh"

namespace pimmmu {

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(10.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Stats, HistogramEmptyPercentileQueries)
{
    stats::Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    // Out-of-range p is clamped, not UB, even on an empty histogram.
    EXPECT_DOUBLE_EQ(h.percentile(-5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(500), 0.0);
}

TEST(Stats, HistogramSingleSample)
{
    stats::Histogram h(0.0, 100.0, 10);
    h.sample(42.0);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
    // p=0 reports the range floor by convention...
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    // ...every positive percentile lands in the sample's bucket [40, 50].
    for (const double p : {1.0, 50.0, 99.0, 100.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, 40.0) << "p=" << p;
        EXPECT_LE(v, 50.0) << "p=" << p;
    }
}

TEST(Stats, HistogramOverflowBucketSaturation)
{
    stats::Histogram h(0.0, 10.0, 4);
    // Everything beyond hi, including weighted bulk samples, piles
    // into the overflow bucket without disturbing the in-range ones.
    h.sample(10.0);
    h.sample(1e9, 1000);
    h.sample(50.0, 500);
    EXPECT_EQ(h.overflow(), 1501u);
    EXPECT_EQ(h.total(), 1501u);
    for (std::size_t i = 0; i < h.buckets(); ++i)
        EXPECT_EQ(h.bucket(i), 0u);
    // With all mass in overflow, every nonzero percentile reports hi.
    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
    // The mean keeps the true sample values, not the clamp point.
    EXPECT_NEAR(h.mean(), (10.0 + 1e9 * 1000 + 50.0 * 500) / 1501.0,
                1e-3);
}

TEST(Stats, HistogramWeightedSamples)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(2.5, 3);
    h.sample(7.5, 0); // zero weight is a no-op
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.bucket(2), 3u);
    EXPECT_EQ(h.bucket(7), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Stats, HistogramMergeSameShape)
{
    stats::Histogram a(0.0, 10.0, 10);
    stats::Histogram b(0.0, 10.0, 10);
    a.sample(1.5);
    a.sample(-1.0);
    b.sample(1.5, 2);
    b.sample(25.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.bucket(1), 3u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_NEAR(a.mean(), (1.5 - 1.0 + 2 * 1.5 + 25.0) / 5.0, 1e-12);
}

TEST(Stats, HistogramPercentileMonotonicUnderMerge)
{
    // Different shapes force the midpoint-replay merge path.
    stats::Histogram a(0.0, 100.0, 20);
    stats::Histogram b(0.0, 50.0, 7);
    for (int i = 0; i < 100; ++i)
        a.sample(static_cast<double>(i));
    b.sample(-3.0, 5);
    b.sample(12.0, 40);
    b.sample(49.0, 10);
    b.sample(200.0, 8);
    const double meanA = a.mean();
    const double meanB = b.mean();
    const std::uint64_t totalA = a.total(), totalB = b.total();
    a.merge(b);
    EXPECT_EQ(a.total(), totalA + totalB);
    // The mean is exact even on the approximate merge path.
    EXPECT_NEAR(a.mean(),
                (meanA * static_cast<double>(totalA) +
                 meanB * static_cast<double>(totalB)) /
                    static_cast<double>(totalA + totalB),
                1e-9);
    // Percentiles stay monotone in p after merging.
    double prev = a.percentile(0);
    for (double p = 1.0; p <= 100.0; p += 1.0) {
        const double v = a.percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
    EXPECT_GE(a.percentile(100), a.percentile(0));
}

TEST(Stats, HistogramMergeEmptyIsNoOp)
{
    stats::Histogram a(0.0, 10.0, 10);
    stats::Histogram empty(0.0, 99.0, 3);
    a.sample(5.0);
    a.merge(empty);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Stats, GroupLookupAndDump)
{
    stats::Group g("test");
    g.counter("reads") += 5;
    g.average("lat").sample(3.0);
    EXPECT_EQ(g.counterValue("reads"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("reads"), std::string::npos);
    EXPECT_NE(os.str().find("lat"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.counterValue("reads"), 0u);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row().cell("alpha").num(1.5);
    t.row().cell("b").num(std::uint64_t{42});
    const std::string s = t.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    // Every line has the same width.
    std::istringstream is(s);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

// ---------------------------------------------------------------------
// Edge-case hardening: the soak campaigns push histograms through
// checkpoint/restore cycles and weight counts past 2^32, so the
// percentile/merge/restore paths must hold at the extremes.
// ---------------------------------------------------------------------

TEST(Stats, HistogramZeroBucketsIsSafe)
{
    // A degenerate zero-bucket histogram still tracks totals and the
    // under/overflow split without indexing an empty counts vector.
    stats::Histogram h(0.0, 100.0, 0);
    h.sample(-5.0);
    h.sample(50.0);
    h.sample(500.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), (-5.0 + 50.0 + 500.0) / 3.0);
    // Percentiles degrade to the range endpoints.
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST(Stats, HistogramCountsBeyond32Bits)
{
    // Weighted samples routinely push bucket counts past 2^32 in a
    // minutes-long soak; the arithmetic must stay in u64/double.
    stats::Histogram h(0.0, 100.0, 10);
    const std::uint64_t big = (1ull << 33) + 7;
    h.sample(15.0, big);
    h.sample(85.0, big);
    EXPECT_EQ(h.total(), 2 * big);
    EXPECT_EQ(h.bucket(1), big);
    EXPECT_EQ(h.bucket(8), big);
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
    const double p50 = h.percentile(50);
    EXPECT_GE(p50, 10.0);
    EXPECT_LE(p50, 90.0);

    stats::Histogram other(0.0, 100.0, 10);
    other.sample(15.0, big);
    h.merge(other);
    EXPECT_EQ(h.total(), 3 * big);
    EXPECT_EQ(h.bucket(1), 2 * big);
}

TEST(Stats, HistogramMergeShapeMismatchPreservesTotalsAndMean)
{
    stats::Histogram wide(0.0, 1000.0, 4);
    wide.sample(100.0, 3);
    stats::Histogram narrow(0.0, 10.0, 100);
    narrow.sample(2.5, 5);
    narrow.sample(-1.0); // underflow
    narrow.sample(99.0); // overflow
    const double expectSum = wide.sum() + narrow.sum();
    wide.merge(narrow);
    EXPECT_EQ(wide.total(), 3u + 5u + 1u + 1u);
    EXPECT_DOUBLE_EQ(wide.sum(), expectSum);
    EXPECT_DOUBLE_EQ(wide.mean(),
                     expectSum / static_cast<double>(wide.total()));
}

TEST(Stats, HistogramRestoreIsBitExact)
{
    stats::Histogram h(0.0, 100.0, 8);
    h.sample(-3.0, 2);
    h.sample(12.5, (1ull << 34));
    h.sample(77.0, 41);
    h.sample(1e9, 5);

    std::vector<std::uint64_t> counts;
    for (std::size_t i = 0; i < h.buckets(); ++i)
        counts.push_back(h.bucket(i));
    stats::Histogram r(0.0, 100.0, 8);
    r.restore(h.underflow(), h.overflow(), h.total(), h.sum(), counts);

    EXPECT_EQ(r.total(), h.total());
    EXPECT_EQ(r.underflow(), h.underflow());
    EXPECT_EQ(r.overflow(), h.overflow());
    EXPECT_DOUBLE_EQ(r.sum(), h.sum());
    for (double p : {0.0, 25.0, 50.0, 95.0, 99.9, 100.0})
        EXPECT_DOUBLE_EQ(r.percentile(p), h.percentile(p)) << p;

    // A shape-mismatched counts vector (corrupt snapshot) resets the
    // buckets instead of writing out of bounds.
    stats::Histogram bad(0.0, 100.0, 4);
    bad.restore(0, 0, h.total(), h.sum(), counts);
    EXPECT_EQ(bad.total(), h.total());
    for (std::size_t i = 0; i < bad.buckets(); ++i)
        EXPECT_EQ(bad.bucket(i), 0u);
}

TEST(Stats, AverageRestoreMatchesOriginalIncludingEmpty)
{
    stats::Average a;
    a.sample(3.0);
    a.sample(-7.5);
    stats::Average r;
    r.restore(a.count(), a.sum(), a.min(), a.max());
    EXPECT_EQ(r.count(), a.count());
    EXPECT_DOUBLE_EQ(r.mean(), a.mean());
    EXPECT_DOUBLE_EQ(r.min(), a.min());
    EXPECT_DOUBLE_EQ(r.max(), a.max());

    // Restoring a zero count reproduces the freshly constructed state:
    // accessors report zeros, and the next sample() wins the min/max
    // race against the infinity sentinels.
    stats::Average empty;
    empty.restore(0, 123.0, 5.0, 9.0);
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_DOUBLE_EQ(empty.min(), 0.0);
    EXPECT_DOUBLE_EQ(empty.max(), 0.0);
    empty.sample(-2.0);
    EXPECT_DOUBLE_EQ(empty.min(), -2.0);
    EXPECT_DOUBLE_EQ(empty.max(), -2.0);
}

} // namespace pimmmu

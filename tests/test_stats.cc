#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "common/table.hh"

namespace pimmmu {

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(10.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Stats, GroupLookupAndDump)
{
    stats::Group g("test");
    g.counter("reads") += 5;
    g.average("lat").sample(3.0);
    EXPECT_EQ(g.counterValue("reads"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("reads"), std::string::npos);
    EXPECT_NE(os.str().find("lat"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.counterValue("reads"), 0u);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row().cell("alpha").num(1.5);
    t.row().cell("b").num(std::uint64_t{42});
    const std::string s = t.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    // Every line has the same width.
    std::istringstream is(s);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

} // namespace pimmmu

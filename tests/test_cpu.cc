#include <gtest/gtest.h>

#include "cpu/contender.hh"
#include "cpu/copy_thread.hh"
#include "cpu/cpu.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {
namespace cpu {

namespace {

struct Harness
{
    EventQueue eq;
    mapping::DramGeometry geom;
    mapping::SystemMapPtr map;
    std::unique_ptr<dram::MemorySystem> mem;
    std::unique_ptr<Cpu> cpu;

    explicit Harness(CpuConfig cfg = CpuConfig{})
    {
        geom.channels = 2;
        geom.ranksPerChannel = 1;
        geom.bankGroups = 4;
        geom.banksPerGroup = 4;
        geom.rows = 512;
        geom.columns = 128;
        map = mapping::makeHetMap(geom, geom);
        mem = std::make_unique<dram::MemorySystem>(
            eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
        cpu = std::make_unique<Cpu>(eq, cfg, *mem);
    }

    std::shared_ptr<CopyThread>
    memcpyThread(Addr src, Addr dst, std::uint64_t lines)
    {
        CopyWork work;
        work.kind = CopyWork::Kind::DramToDram;
        work.src = src;
        work.dst = dst;
        work.lines = lines;
        return std::make_shared<CopyThread>(work);
    }
};

/** A thread that burns a fixed number of steps then finishes. */
class FiniteThread : public SoftThread
{
  public:
    explicit FiniteThread(unsigned steps) : remaining_(steps) {}

    bool finished() const override { return remaining_ == 0; }

    unsigned
    step(Core &) override
    {
        --remaining_;
        return 100;
    }

    const char *label() const override { return "finite"; }

  private:
    unsigned remaining_;
};

} // namespace

TEST(CpuTest, JobCompletionFiresWhenAllThreadsFinish)
{
    Harness h;
    bool done = false;
    std::vector<std::shared_ptr<SoftThread>> threads;
    for (int i = 0; i < 4; ++i)
        threads.push_back(std::make_shared<FiniteThread>(10));
    h.cpu->runJob(threads, [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(h.cpu->totalBusyPs(), 0u);
}

TEST(CpuTest, CopyThreadMovesAllLines)
{
    Harness h;
    bool done = false;
    auto t = h.memcpyThread(0, 8 * kMiB, 256);
    h.cpu->runJob({t}, [&] { done = true; });
    h.eq.run();
    ASSERT_TRUE(done);
    EXPECT_TRUE(t->finished());
    EXPECT_EQ(t->bytesMoved(), 256u * 64);
    EXPECT_EQ(h.mem->dramBytesMoved(), 2u * 256 * 64);
}

TEST(CpuTest, MoreThreadsThanCoresStillFinish)
{
    CpuConfig cfg;
    cfg.cores = 2;
    cfg.quantumPs = 50 * kPsPerUs;
    Harness h(cfg);
    bool done = false;
    std::vector<std::shared_ptr<SoftThread>> threads;
    for (Addr i = 0; i < 12; ++i)
        threads.push_back(
            h.memcpyThread(i * kMiB, 32 * kMiB + i * kMiB, 64));
    h.cpu->runJob(threads, [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(h.cpu->stats().counterValue("context_switches"), 12u);
}

TEST(CpuTest, AvxBusyTimeTrackedForCopyThreads)
{
    Harness h;
    bool done = false;
    h.cpu->runJob({h.memcpyThread(0, 8 * kMiB, 128)},
                  [&] { done = true; });
    h.eq.run();
    ASSERT_TRUE(done);
    EXPECT_GT(h.cpu->totalAvxBusyPs(), 0u);
    EXPECT_LE(h.cpu->totalAvxBusyPs(), h.cpu->totalBusyPs());
}

TEST(CpuTest, ComputeContenderNeverFinishesButSharesCores)
{
    CpuConfig cfg;
    cfg.cores = 1;
    cfg.quantumPs = 20 * kPsPerUs;
    Harness h(cfg);
    h.cpu->addThread(std::make_shared<ComputeContender>());
    bool done = false;
    h.cpu->runJob({h.memcpyThread(0, 8 * kMiB, 64)},
                  [&] { done = true; });
    // The contender never finishes, so the queue never drains; run
    // until the copy job is done.
    while (!done && h.eq.step()) {
    }
    EXPECT_TRUE(done);
    h.cpu->shutdown();
}

TEST(CpuTest, WakeupPreemptionLetsNewThreadsRunQuickly)
{
    CpuConfig cfg;
    cfg.cores = 2;
    cfg.quantumPs = Tick{10} * kPsPerMs; // huge quantum
    Harness h(cfg);
    // Saturate both cores with contenders.
    h.cpu->addThread(std::make_shared<ComputeContender>());
    h.cpu->addThread(std::make_shared<ComputeContender>());
    bool done = false;
    h.cpu->runJob({std::make_shared<FiniteThread>(5)},
                  [&] { done = true; });
    // Without wakeup preemption the finite thread would wait 10 ms.
    while (!done && h.eq.step()) {
        if (h.eq.now() > kPsPerMs)
            break;
    }
    EXPECT_TRUE(done) << "new thread waited a full quantum";
    h.cpu->shutdown();
}

TEST(CpuTest, MemoryContenderIssuesTraffic)
{
    Harness h;
    auto contender = std::make_shared<MemoryContender>(
        MemIntensity::High, 0, 4 * kMiB, 42);
    h.cpu->addThread(contender);
    h.eq.run(Tick{200} * kPsPerUs);
    EXPECT_GT(contender->accesses(), 100u);
    EXPECT_GT(h.mem->dramBytesMoved(), 0u);
    h.cpu->shutdown();
}

TEST(CpuTest, IntensityControlsTrafficRate)
{
    auto accessesAt = [](MemIntensity intensity) {
        Harness h;
        auto contender = std::make_shared<MemoryContender>(
            intensity, 0, 4 * kMiB, 42);
        h.cpu->addThread(contender);
        h.eq.run(Tick{200} * kPsPerUs);
        h.cpu->shutdown();
        return contender->accesses();
    };
    EXPECT_GT(accessesAt(MemIntensity::VeryHigh),
              2 * accessesAt(MemIntensity::Low));
}

TEST(CpuTest, ShutdownStopsScheduling)
{
    Harness h;
    h.cpu->addThread(std::make_shared<ComputeContender>());
    h.eq.run(Tick{10} * kPsPerUs);
    h.cpu->shutdown();
    // After shutdown the event queue eventually drains.
    EXPECT_TRUE(h.eq.run(Tick{100} * kPsPerMs));
}

TEST(CpuConfigTest, PeriodMatchesClock)
{
    CpuConfig cfg;
    cfg.clockMhz = 3200;
    EXPECT_EQ(cfg.periodPs(), 313u); // 312.5 ps rounded
    EXPECT_EQ(cfg.quantumPs, Tick{1500} * kPsPerUs);
}

} // namespace cpu
} // namespace pimmmu

/**
 * @file
 * Unit tests for the multi-tenant serving layer (serving::Server):
 * admission control (quota / overload / deadline-at-door), per-request
 * deadlines including expiry of an in-flight descriptor, retry
 * budgets, capacity-aware load shedding under masked ranks, the
 * request-ledger conservation invariant, and the TenantContext VA
 * bump allocator the server maps tenant windows with.
 *
 * Every suite here is named Serving* so the CI TSan job can run
 * exactly these (--gtest_filter=Serving*) against the threaded
 * SweepRunner loop.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mmu/tenant_context.hh"
#include "resilience/manager.hh"
#include "serving/load_gen.hh"
#include "serving/serving.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace {

using resilience::ErrorCode;

constexpr unsigned kDpusPerReq = 8; // one whole bank at Table I
constexpr std::uint64_t kBytesPerDpu = 4 * kKiB;
constexpr std::uint64_t kReqBytes = kDpusPerReq * kBytesPerDpu;

/** A System + Server + per-tenant VA windows, one bank per tenant. */
struct ServingHarness
{
    std::unique_ptr<sim::System> sys;
    std::unique_ptr<serving::Server> server;

    struct Window
    {
        Addr srcPa = 0, dstPa = 0;
        Addr srcVa = 0, dstVa = 0, heapVa = 0;
    };
    std::vector<Window> win;

    explicit ServingHarness(
        const serving::ServerConfig &scfg,
        resilience::Policy pol = resilience::Policy::withRetryAndMask())
    {
        sim::SystemConfig cfg =
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
        cfg.resilience = pol;
        sys = std::make_unique<sim::System>(cfg);
        server = std::make_unique<serving::Server>(*sys, scfg);
    }

    /** Register a tenant and stand up src/dst/heap VA windows over
     *  its own physical pages (tenant t drives bank t's DPUs). */
    serving::TenantHandle
    addTenant(const serving::TenantConfig &tc)
    {
        const serving::TenantHandle h = server->addTenant(tc);
        const std::uint64_t winBytes =
            ((kReqBytes + mmu::kPageBytes - 1) / mmu::kPageBytes) *
            mmu::kPageBytes;
        Window w;
        w.srcPa = sys->allocDram(winBytes, mmu::kPageBytes);
        w.dstPa = sys->allocDram(winBytes, mmu::kPageBytes);
        mmu::TenantContext &ctx = server->tenantContext(h);
        EXPECT_TRUE(ctx.mapWindow(mapping::MemSpace::Dram, w.srcPa,
                                  winBytes, w.srcVa)
                        .ok());
        EXPECT_TRUE(ctx.mapWindow(mapping::MemSpace::Dram, w.dstPa,
                                  winBytes, w.dstVa)
                        .ok());
        EXPECT_TRUE(ctx.mapWindow(mapping::MemSpace::Pim,
                                  std::uint64_t{h} * mmu::kPageBytes,
                                  mmu::kPageBytes, w.heapVa)
                        .ok());
        win.push_back(w);
        return h;
    }

    /** A request moving tenant @p t's whole bank slice. */
    serving::Request
    makeReq(serving::TenantHandle t, core::XferDirection dir,
            Tick deadlinePs = kTickMax, std::uint64_t tag = 0)
    {
        serving::Request req;
        req.dir = dir;
        req.sizePerPim = kBytesPerDpu;
        req.pimHeapVa = win[t].heapVa;
        req.deadlinePs = deadlinePs;
        req.tag = tag;
        const Addr host = (dir == core::XferDirection::DramToPim)
                              ? win[t].srcVa
                              : win[t].dstVa;
        req.dpus.resize(kDpusPerReq);
        req.dramVa.resize(kDpusPerReq);
        for (unsigned i = 0; i < kDpusPerReq; ++i) {
            req.dpus[i] =
                static_cast<unsigned>(t) * kDpusPerReq + i;
            req.dramVa[i] = host + std::uint64_t{i} * kBytesPerDpu;
        }
        return req;
    }

    std::uint64_t
    counter(const char *key)
    {
        return server->stats().counterValue(key);
    }

    bool
    conserved()
    {
        std::string why;
        const bool ok = server->checkConservation(&why);
        EXPECT_TRUE(ok) << why;
        return ok;
    }
};

TEST(ServingAdmission, DeliversAndVerifiesPayload)
{
    ServingHarness h{serving::ServerConfig{}};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    std::vector<std::uint8_t> pattern(kReqBytes);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>((i * 37u + 5u) & 0xff);
    h.sys->mem().store().write(h.win[t].srcPa, pattern.data(),
                               pattern.size());

    std::vector<serving::Result> results;
    auto done = [&](const serving::Result &r) {
        results.push_back(r);
    };
    EXPECT_TRUE(h.server
                    ->submit(t,
                             h.makeReq(t,
                                       core::XferDirection::DramToPim,
                                       kTickMax, 1),
                             done)
                    .ok());
    EXPECT_TRUE(h.server
                    ->submit(t,
                             h.makeReq(t,
                                       core::XferDirection::PimToDram,
                                       kTickMax, 2),
                             done)
                    .ok());
    ASSERT_TRUE(h.server->drain());

    ASSERT_EQ(results.size(), 2u);
    for (const serving::Result &r : results) {
        EXPECT_EQ(r.outcome, serving::Outcome::Delivered);
        EXPECT_TRUE(r.status.ok());
        EXPECT_EQ(r.bytes, kReqBytes);
        EXPECT_EQ(r.retries, 0u);
    }
    // DramToPim then PimToDram round-trips the pattern into dst.
    std::vector<std::uint8_t> back(kReqBytes);
    h.sys->mem().store().read(h.win[t].dstPa, back.data(),
                              back.size());
    EXPECT_EQ(std::memcmp(back.data(), pattern.data(), kReqBytes), 0);

    const serving::Server::Totals &tot = h.server->totals();
    EXPECT_EQ(tot.submitted, 2u);
    EXPECT_EQ(tot.delivered, 2u);
    EXPECT_EQ(tot.bytesDelivered, 2 * kReqBytes);
    EXPECT_EQ(h.counter("issued"), 2u);
    EXPECT_EQ(h.server->outstanding(), 0u);
    h.conserved();
}

TEST(ServingAdmission, QuotaRejectsAndRefillsOverTime)
{
    serving::TenantConfig tc;
    tc.quotaBurstBytes = static_cast<double>(kReqBytes);
    tc.quotaBytesPerSec = static_cast<double>(kReqBytes) * 1e6;
    ServingHarness h{serving::ServerConfig{}};
    const serving::TenantHandle t = h.addTenant(tc);

    serving::Result last;
    auto done = [&](const serving::Result &r) { last = r; };

    EXPECT_TRUE(
        h.server
            ->submit(t, h.makeReq(t, core::XferDirection::DramToPim),
                     done)
            .ok());
    // Bucket is drained: the next request bounces at the door.
    const resilience::Status st = h.server->submit(
        t, h.makeReq(t, core::XferDirection::DramToPim), done);
    EXPECT_EQ(st.code, ErrorCode::QuotaExceeded);
    EXPECT_EQ(last.outcome, serving::Outcome::Rejected);
    EXPECT_EQ(h.counter("rejected_quota"), 1u);
    ASSERT_TRUE(h.server->drain());

    // ~2 us of simulated time refills a full request of budget.
    const Tick target = h.sys->eq().now() + 2 * kPsPerUs;
    h.sys->eq().schedule(target, [] {});
    h.sys->runUntil([&] { return h.sys->eq().now() >= target; });
    EXPECT_TRUE(
        h.server
            ->submit(t, h.makeReq(t, core::XferDirection::DramToPim),
                     done)
            .ok());
    ASSERT_TRUE(h.server->drain());
    EXPECT_EQ(h.server->totals().delivered, 2u);
    h.conserved();
}

TEST(ServingAdmission, OverloadRejectsAtQueueCapacity)
{
    serving::ServerConfig scfg;
    scfg.maxQueued = 2;
    scfg.maxInflight = 1;
    ServingHarness h{scfg};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    unsigned rejected = 0;
    auto done = [&](const serving::Result &r) {
        if (r.outcome == serving::Outcome::Rejected)
            ++rejected;
    };
    // #1 issues straight into the ring, #2/#3 occupy the queue, #4
    // must bounce with the structured Overloaded reason.
    resilience::Status st;
    for (int i = 0; i < 4; ++i)
        st = h.server->submit(
            t, h.makeReq(t, core::XferDirection::DramToPim), done);
    EXPECT_EQ(st.code, ErrorCode::Overloaded);
    EXPECT_EQ(rejected, 1u);
    EXPECT_EQ(h.counter("rejected_overload"), 1u);

    ASSERT_TRUE(h.server->drain());
    EXPECT_EQ(h.server->totals().delivered, 3u);
    h.conserved();
}

TEST(ServingAdmission, PastDeadlineExpiresAtDoor)
{
    ServingHarness h{serving::ServerConfig{}};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    serving::Result last;
    const resilience::Status st = h.server->submit(
        t,
        h.makeReq(t, core::XferDirection::DramToPim,
                  h.sys->eq().now() /* already due */),
        [&](const serving::Result &r) { last = r; });
    EXPECT_EQ(st.code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(last.outcome, serving::Outcome::Expired);
    EXPECT_EQ(h.server->totals().expired, 1u);
    EXPECT_EQ(h.counter("rejected_deadline_at_door"), 1u);
    EXPECT_EQ(h.server->outstanding(), 0u);
    h.conserved();
}

TEST(ServingDeadline, QueuedRequestExpiresBehindSlowWork)
{
    serving::ServerConfig scfg;
    scfg.maxInflight = 1;
    ServingHarness h{scfg};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    std::map<std::uint64_t, serving::Result> byTag;
    auto done = [&](const serving::Result &r) { byTag[r.tag] = r; };

    // A occupies the engine; B's deadline lands while it is still
    // queued behind A.
    EXPECT_TRUE(h.server
                    ->submit(t,
                             h.makeReq(t,
                                       core::XferDirection::DramToPim,
                                       kTickMax, 1),
                             done)
                    .ok());
    EXPECT_TRUE(h.server
                    ->submit(t,
                             h.makeReq(t,
                                       core::XferDirection::DramToPim,
                                       h.sys->eq().now() +
                                           100 * kPsPerNs,
                                       2),
                             done)
                    .ok());
    ASSERT_TRUE(h.server->drain());

    EXPECT_EQ(byTag[1].outcome, serving::Outcome::Delivered);
    EXPECT_EQ(byTag[2].outcome, serving::Outcome::Expired);
    EXPECT_EQ(byTag[2].status.code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(h.counter("expired_queued"), 1u);
    h.conserved();
}

// The satellite regression: a request whose deadline fires while its
// descriptor is in the engine must be accounted Expired without
// touching the descriptor — the DCE watchdog must see an engine that
// is making normal progress (no stagnation resync), the dce.*
// transfer accounting must balance, and the ring slot must come back.
TEST(ServingDeadline, MidDescriptorExpiryLeavesEngineClean)
{
    serving::ServerConfig scfg;
    scfg.maxInflight = 1;
    ServingHarness h{scfg};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    const stats::Group &dce = h.sys->dce().stats();
    const std::uint64_t dceTransfersBefore =
        dce.counterValue("transfers");

    serving::Result last;
    auto done = [&](const serving::Result &r) { last = r; };
    EXPECT_TRUE(h.server
                    ->submit(t,
                             h.makeReq(t,
                                       core::XferDirection::DramToPim,
                                       h.sys->eq().now() +
                                           100 * kPsPerNs,
                                       7),
                             done)
                    .ok());
    // Issued synchronously; the deadline fires mid-descriptor.
    ASSERT_TRUE(h.server->drain());

    EXPECT_EQ(last.outcome, serving::Outcome::Expired);
    EXPECT_EQ(last.status.code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(h.counter("expired_inflight"), 1u);
    // The engine's late answer released the slot and was discarded.
    EXPECT_EQ(h.counter("late_completions"), 1u);
    EXPECT_EQ(h.server->totals().delivered, 0u);

    // dce.* conservation: the descriptor ran to normal completion —
    // one more completed transfer, no failure, no watchdog resync.
    EXPECT_EQ(dce.counterValue("transfers"), dceTransfersBefore + 1);
    EXPECT_EQ(dce.counterValue("transfers_failed"), 0u);
    EXPECT_EQ(dce.counterValue("watchdog_resyncs"), 0u);
    h.conserved();
    EXPECT_EQ(h.server->outstanding(), 0u);
    EXPECT_TRUE(h.server->idle());

    // The engine is not wedged: fresh work still delivers.
    EXPECT_TRUE(
        h.server
            ->submit(t, h.makeReq(t, core::XferDirection::DramToPim),
                     done)
            .ok());
    ASSERT_TRUE(h.server->drain());
    EXPECT_EQ(last.outcome, serving::Outcome::Delivered);
    EXPECT_EQ(dce.counterValue("watchdog_resyncs"), 0u);
    h.conserved();
}

TEST(ServingRetry, ExhaustsRetriesAgainstDeadRank)
{
    testing::fault::disarmAll();
    serving::ServerConfig scfg;
    scfg.retriesPerRequest = 2;
    scfg.retryBackoffPs = 0; // resolve synchronously
    ServingHarness h{scfg};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    // Every admission probe kills the target rank: the issue is
    // rejected synchronously, retried, and finally rejected for good.
    testing::fault::armRate("domain.kill_rank", 1.0, 0x5e5);
    serving::Result last;
    EXPECT_TRUE(
        h.server
            ->submit(t, h.makeReq(t, core::XferDirection::DramToPim),
                     [&](const serving::Result &r) { last = r; })
            .ok());
    testing::fault::disarmAll();

    EXPECT_EQ(last.outcome, serving::Outcome::Rejected);
    EXPECT_FALSE(last.status.ok());
    EXPECT_EQ(last.retries, 2u);
    EXPECT_EQ(h.counter("retries"), 2u);
    EXPECT_EQ(h.counter("rejected_retries_exhausted"), 1u);
    EXPECT_EQ(h.server->totals().delivered, 0u);
    h.conserved();
}

TEST(ServingRetry, GlobalBudgetBoundsRetryStorm)
{
    testing::fault::disarmAll();
    serving::ServerConfig scfg;
    scfg.retriesPerRequest = 5;
    scfg.retryBurst = 1.0; // one retry, then the budget is dry
    scfg.retryPerSecond = 0.0;
    scfg.retryBackoffPs = 0;
    ServingHarness h{scfg};
    const serving::TenantHandle t =
        h.addTenant(serving::TenantConfig{});

    testing::fault::armRate("domain.kill_rank", 1.0, 0x5e6);
    serving::Result last;
    EXPECT_TRUE(
        h.server
            ->submit(t, h.makeReq(t, core::XferDirection::DramToPim),
                     [&](const serving::Result &r) { last = r; })
            .ok());
    testing::fault::disarmAll();

    EXPECT_EQ(last.outcome, serving::Outcome::Rejected);
    EXPECT_EQ(last.retries, 1u);
    EXPECT_EQ(h.counter("retries"), 1u);
    EXPECT_EQ(h.counter("rejected_retry_budget"), 1u);
    h.conserved();
}

TEST(ServingShedding, CapacityLossShedsLowestPriorityFirst)
{
    serving::ServerConfig scfg;
    scfg.maxQueued = 4;
    scfg.maxInflight = 1;
    ServingHarness h{scfg};

    serving::TenantConfig loCfg;
    loCfg.name = "batch";
    loCfg.priority = 0; // sheds first
    serving::TenantConfig hiCfg;
    hiCfg.name = "latency";
    hiCfg.priority = 1;
    const serving::TenantHandle lo = h.addTenant(loCfg);
    const serving::TenantHandle hi = h.addTenant(hiCfg);

    EXPECT_EQ(h.server->effectiveQueueCap(), 4u);

    std::map<std::uint64_t, serving::Result> byTag;
    auto done = [&](const serving::Result &r) { byTag[r.tag] = r; };
    // hi #1 goes in flight; then two per tenant wait in the queue.
    EXPECT_TRUE(h.server
                    ->submit(hi,
                             h.makeReq(hi,
                                       core::XferDirection::DramToPim,
                                       kTickMax, 10),
                             done)
                    .ok());
    for (std::uint64_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(
            h.server
                ->submit(lo,
                         h.makeReq(lo,
                                   core::XferDirection::DramToPim,
                                   kTickMax, 20 + i),
                         done)
                .ok());
        EXPECT_TRUE(
            h.server
                ->submit(hi,
                         h.makeReq(hi,
                                   core::XferDirection::DramToPim,
                                   kTickMax, 30 + i),
                         done)
                .ok());
    }

    // Mask half the banks (none of them serving these two tenants):
    // admission capacity halves, and the next scheduler pass must
    // shed the backlog above it, lowest-priority victims first.
    resilience::Manager *mgr = h.sys->resilienceManager();
    ASSERT_NE(mgr, nullptr);
    const unsigned numBanks = mgr->domains().numBanks;
    const unsigned chips = mgr->domains().chipsPerRank;
    for (unsigned bank = numBanks / 2; bank < numBanks; ++bank)
        mgr->markDpuFailed(bank * chips, h.sys->eq().now());
    EXPECT_EQ(h.server->effectiveQueueCap(), 2u);

    ASSERT_TRUE(h.server->drain());

    // Both batch-tenant requests were shed with a structured reason;
    // every latency-tenant request was delivered.
    for (std::uint64_t tag : {20ull, 21ull}) {
        ASSERT_TRUE(byTag.count(tag));
        EXPECT_EQ(byTag[tag].outcome, serving::Outcome::Rejected);
        EXPECT_EQ(byTag[tag].status.code, ErrorCode::Overloaded);
        EXPECT_NE(byTag[tag].status.message.find("shed"),
                  std::string::npos);
    }
    for (std::uint64_t tag : {10ull, 30ull, 31ull}) {
        ASSERT_TRUE(byTag.count(tag));
        EXPECT_EQ(byTag[tag].outcome, serving::Outcome::Delivered);
    }
    EXPECT_EQ(h.counter("rejected_shed"), 2u);
    h.conserved();
}

TEST(ServingTenantContext, WindowsNeverOverlapAcrossSpaces)
{
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    sim::System sys(cfg);
    mmu::TenantContext ctx(sys.mmu());
    ASSERT_TRUE(ctx.valid());

    const Addr pa = sys.allocDram(2 * mmu::kPageBytes,
                                  mmu::kPageBytes);
    Addr dramVa = 0, pimVa = 0, dramVa2 = 0;
    ASSERT_TRUE(ctx.mapWindow(mapping::MemSpace::Dram, pa,
                              2 * mmu::kPageBytes, dramVa)
                    .ok());
    // The tenant's page table is one VA space shared by both HetMap
    // regions: the PIM window must land beyond the DRAM window plus
    // its guard page, not restart at the bottom.
    ASSERT_TRUE(ctx.mapWindow(mapping::MemSpace::Pim, 0,
                              mmu::kPageBytes, pimVa)
                    .ok());
    EXPECT_GE(pimVa, dramVa + 3 * mmu::kPageBytes);
    const Addr pa2 =
        sys.allocDram(mmu::kPageBytes, mmu::kPageBytes);
    ASSERT_TRUE(ctx.mapWindow(mapping::MemSpace::Dram, pa2,
                              mmu::kPageBytes, dramVa2)
                    .ok());
    EXPECT_GE(dramVa2, pimVa + 2 * mmu::kPageBytes);

    EXPECT_EQ(ctx.mappedBytes(mapping::MemSpace::Dram),
              3 * mmu::kPageBytes);
    EXPECT_EQ(ctx.mappedBytes(mapping::MemSpace::Pim),
              mmu::kPageBytes);

    // Translation respects the declared region.
    mmu::Translation tr;
    EXPECT_TRUE(ctx.translate(dramVa, 64, mmu::Access::Read,
                              mapping::MemSpace::Dram, tr)
                    .ok());
    EXPECT_EQ(tr.paddr, pa);
    EXPECT_EQ(ctx.translate(dramVa, 64, mmu::Access::Read,
                            mapping::MemSpace::Pim, tr)
                  .code,
              ErrorCode::RegionMismatch);
    // The guard page between windows faults instead of sliding into
    // the neighbour.
    EXPECT_EQ(ctx.translate(dramVa + 2 * mmu::kPageBytes, 64,
                            mmu::Access::Read,
                            mapping::MemSpace::Dram, tr)
                  .code,
              ErrorCode::UnmappedPage);
}

TEST(ServingTenantContext, DetachedContextFailsStructurally)
{
    mmu::TenantContext ctx;
    EXPECT_FALSE(ctx.valid());
    Addr va = 0;
    EXPECT_EQ(ctx.mapWindow(mapping::MemSpace::Dram, 0,
                            mmu::kPageBytes, va)
                  .code,
              ErrorCode::TenantIsolation);
    mmu::Translation tr;
    EXPECT_EQ(ctx.translate(0, 64, mmu::Access::Read,
                            mapping::MemSpace::Dram, tr)
                  .code,
              ErrorCode::TenantIsolation);
}

TEST(ServingQuota, RetryBudgetChargesAmounts)
{
    // The serving quota reuses RetryBudget with byte-denominated
    // amounts: partial charges accumulate, refill follows sim time.
    resilience::RetryBudget bucket(4.0, 1.0); // 4 tokens, 1/s refill
    EXPECT_TRUE(bucket.tryAcquire(0, 3.0));
    EXPECT_FALSE(bucket.tryAcquire(0, 2.0)); // only 1.0 left
    EXPECT_TRUE(bucket.tryAcquire(0, 1.0));
    EXPECT_FALSE(bucket.tryAcquire(0)); // 1-token overload, dry
    // One simulated second refills one token (capped at burst).
    const Tick second = 1000 * kPsPerMs;
    EXPECT_TRUE(bucket.tryAcquire(second, 1.0));
    EXPECT_FALSE(bucket.tryAcquire(second, 0.5));

    resilience::RetryBudget unlimited(0.0, 0.0);
    EXPECT_TRUE(unlimited.unlimited());
    EXPECT_TRUE(unlimited.tryAcquire(0, 1e18));
}

TEST(ServingLoadGen, PoissonPlanIsSeededAndMonotone)
{
    Rng a(42), b(42);
    const std::vector<double> weights{1.0, 3.0};
    const auto planA =
        serving::poissonPlan(a, 1.0e6, 100 * kPsPerUs, weights);
    const auto planB =
        serving::poissonPlan(b, 1.0e6, 100 * kPsPerUs, weights);
    ASSERT_FALSE(planA.empty());
    ASSERT_EQ(planA.size(), planB.size());
    Tick prev = 0;
    bool sawBoth[2] = {false, false};
    for (std::size_t i = 0; i < planA.size(); ++i) {
        EXPECT_EQ(planA[i].atPs, planB[i].atPs);
        EXPECT_EQ(planA[i].tenant, planB[i].tenant);
        EXPECT_GE(planA[i].atPs, prev);
        EXPECT_LT(planA[i].atPs, 100 * kPsPerUs);
        EXPECT_EQ(planA[i].seq, i);
        ASSERT_LT(planA[i].tenant, 2u);
        sawBoth[planA[i].tenant] = true;
        prev = planA[i].atPs;
    }
    EXPECT_TRUE(sawBoth[0]);
    EXPECT_TRUE(sawBoth[1]);
    // Cap honoured.
    Rng c(42);
    EXPECT_EQ(
        serving::poissonPlan(c, 1.0e6, 100 * kPsPerUs, weights, 5)
            .size(),
        5u);
}

// The TSan target: independent server loops on SweepRunner workers
// (thread-local event queues, stats registries, fault sites) must not
// race and must produce identical deterministic results.
TEST(ServingSweep, TwoWorkerServerLoopsStayIndependent)
{
    constexpr std::size_t kJobs = 4;
    std::vector<std::uint64_t> delivered(kJobs, 0);
    std::vector<std::uint64_t> fingerprints(kJobs, 0);
    sim::SweepRunner runner(2);
    runner.run(kJobs, [&](std::size_t j) {
        serving::ServerConfig scfg;
        scfg.maxInflight = 2;
        ServingHarness h{scfg};
        const serving::TenantHandle t =
            h.addTenant(serving::TenantConfig{});
        for (std::uint64_t i = 0; i < 3; ++i) {
            const auto dir = (i % 2 == 0)
                                 ? core::XferDirection::DramToPim
                                 : core::XferDirection::PimToDram;
            ASSERT_TRUE(h.server
                            ->submit(t, h.makeReq(t, dir, kTickMax, i),
                                     nullptr)
                            .ok());
        }
        ASSERT_TRUE(h.server->drain());
        ASSERT_TRUE(h.conserved());
        delivered[j] = h.server->totals().delivered;
        fingerprints[j] = h.sys->memoryFingerprint();
    });
    for (std::size_t j = 0; j < kJobs; ++j) {
        EXPECT_EQ(delivered[j], 3u) << "job " << j;
        EXPECT_EQ(fingerprints[j], fingerprints[0]) << "job " << j;
    }
}

} // namespace
} // namespace pimmmu

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim/system.hh"
#include "workloads/kernels.hh"

namespace pimmmu {
namespace workloads {

namespace {

sim::SystemConfig
smallConfig()
{
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    return cfg;
}

/** Write a vector of int32 into the host store. */
void
writeHost(sim::System &sys, Addr base,
          const std::vector<std::int32_t> &v)
{
    sys.mem().store().write(base, v.data(), v.size() * 4);
}

std::vector<std::int32_t>
readHost(sim::System &sys, Addr base, std::size_t n)
{
    std::vector<std::int32_t> v(n);
    sys.mem().store().read(base, v.data(), n * 4);
    return v;
}

/** Run a full offload: D2P transfer, kernel, P2D transfer. */
void
offload(sim::System &sys, const core::PimMmuOp &in,
        const DpuKernel &kernel, const core::PimMmuOp &out)
{
    bool done = false;
    sys.pimMmu().transfer(in, [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));
    device::KernelModel model;
    std::vector<unsigned> ids = in.pimIdArr;
    sys.pim().launch(ids, kernel, model, in.sizePerPim);
    done = false;
    sys.pimMmu().transfer(out, [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));
}

core::PimMmuOp
makeOp(core::XferDirection dir, Addr hostBase, unsigned numDpus,
       std::uint64_t bytesPerDpu, Addr heapOff)
{
    core::PimMmuOp op;
    op.type = dir;
    op.sizePerPim = bytesPerDpu;
    op.pimBaseHeapPtr = heapOff;
    for (unsigned i = 0; i < numDpus; ++i) {
        op.dramAddrArr.push_back(hostBase + Addr{i} * bytesPerDpu);
        op.pimIdArr.push_back(i);
    }
    return op;
}

} // namespace

TEST(Kernels, VectorAddEndToEnd)
{
    sim::System sys(smallConfig());
    const unsigned numDpus = 16;
    const std::uint64_t elems = 64; // per DPU, per operand
    const std::uint64_t bytes = elems * 4;

    Rng rng(8);
    std::vector<std::int32_t> a(numDpus * elems), b(a.size());
    for (auto &v : a)
        v = static_cast<std::int32_t>(rng() & 0xffff);
    for (auto &v : b)
        v = static_cast<std::int32_t>(rng() & 0xffff);

    const Addr aBase = sys.allocDram(numDpus * bytes);
    const Addr bBase = sys.allocDram(numDpus * bytes);
    const Addr outBase = sys.allocDram(numDpus * bytes);
    writeHost(sys, aBase, a);
    writeHost(sys, bBase, b);

    // Two input transfers (operand A at MRAM 0, B at MRAM bytes).
    bool done = false;
    sys.pimMmu().transfer(makeOp(core::XferDirection::DramToPim, aBase,
                                 numDpus, bytes, 0),
                          [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));

    offload(sys,
            makeOp(core::XferDirection::DramToPim, bBase, numDpus,
                   bytes, bytes),
            vecAddKernel(elems, 0, bytes, 2 * bytes),
            makeOp(core::XferDirection::PimToDram, outBase, numDpus,
                   bytes, 2 * bytes));

    const auto result = readHost(sys, outBase, numDpus * elems);
    EXPECT_EQ(result, hostVecAdd(a, b));
}

TEST(Kernels, ReduceMatchesHostReference)
{
    sim::System sys(smallConfig());
    const unsigned numDpus = 8;
    const std::uint64_t elems = 128;
    const std::uint64_t bytes = elems * 4;

    Rng rng(15);
    std::vector<std::int32_t> in(numDpus * elems);
    for (auto &v : in)
        v = static_cast<std::int32_t>(rng() % 1000) - 500;

    const Addr inBase = sys.allocDram(numDpus * bytes);
    const Addr outBase = sys.allocDram(numDpus * 64);
    writeHost(sys, inBase, in);

    offload(sys,
            makeOp(core::XferDirection::DramToPim, inBase, numDpus,
                   bytes, 0),
            reduceKernel(elems, 0, bytes),
            makeOp(core::XferDirection::PimToDram, outBase, numDpus, 64,
                   bytes));

    // Host-side final reduction over per-DPU partial sums.
    std::int64_t total = 0;
    for (unsigned d = 0; d < numDpus; ++d) {
        std::int64_t partial = 0;
        sys.mem().store().read(outBase + Addr{d} * 64, &partial, 8);
        total += partial;
    }
    EXPECT_EQ(total, hostReduce(in));
}

TEST(Kernels, HistogramMatchesHostReference)
{
    sim::System sys(smallConfig());
    const unsigned numDpus = 8;
    const std::uint64_t bytes = 2048;

    Rng rng(23);
    std::vector<std::uint8_t> in(numDpus * bytes);
    for (auto &v : in)
        v = static_cast<std::uint8_t>(rng());
    const Addr inBase = sys.allocDram(in.size());
    sys.mem().store().write(inBase, in.data(), in.size());
    const Addr outBase = sys.allocDram(numDpus * 1024);

    offload(sys,
            makeOp(core::XferDirection::DramToPim, inBase, numDpus,
                   bytes, 0),
            histogramKernel(bytes, 0, bytes),
            makeOp(core::XferDirection::PimToDram, outBase, numDpus,
                   1024, bytes));

    std::vector<std::uint32_t> merged(256, 0);
    for (unsigned d = 0; d < numDpus; ++d) {
        std::vector<std::uint32_t> bins(256);
        sys.mem().store().read(outBase + Addr{d} * 1024, bins.data(),
                               1024);
        for (unsigned b = 0; b < 256; ++b)
            merged[b] += bins[b];
    }
    EXPECT_EQ(merged, hostHistogram(in));
}

TEST(Kernels, GemvMatchesHostReference)
{
    sim::System sys(smallConfig());
    const unsigned numDpus = 8;
    const std::uint64_t rows = 8, cols = 16;
    const std::uint64_t mBytes = rows * cols * 4;
    const std::uint64_t xBytes = cols * 4;

    Rng rng(44);
    std::vector<std::int32_t> m(numDpus * rows * cols), x(cols);
    for (auto &v : m)
        v = static_cast<std::int32_t>(rng() % 64) - 32;
    for (auto &v : x)
        v = static_cast<std::int32_t>(rng() % 64) - 32;

    const Addr mBase = sys.allocDram(numDpus * mBytes);
    writeHost(sys, mBase, m);
    // Broadcast x: same vector to every DPU.
    const Addr xBase = sys.allocDram(numDpus * xBytes);
    for (unsigned d = 0; d < numDpus; ++d)
        sys.mem().store().write(xBase + Addr{d} * xBytes, x.data(),
                                xBytes);
    const Addr yBase = sys.allocDram(numDpus * 64);

    bool done = false;
    sys.pimMmu().transfer(makeOp(core::XferDirection::DramToPim, mBase,
                                 numDpus, mBytes, 0),
                          [&] { done = true; });
    ASSERT_TRUE(sys.runUntil([&] { return done; }));

    offload(sys,
            makeOp(core::XferDirection::DramToPim, xBase, numDpus,
                   xBytes, mBytes),
            gemvKernel(rows, cols, 0, mBytes, mBytes + xBytes),
            makeOp(core::XferDirection::PimToDram, yBase, numDpus, 64,
                   mBytes + xBytes));

    for (unsigned d = 0; d < numDpus; ++d) {
        std::vector<std::int32_t> slice(
            m.begin() + d * rows * cols,
            m.begin() + (d + 1) * rows * cols);
        const auto expect = hostGemv(slice, x, rows, cols);
        const auto y = readHost(sys, yBase + Addr{d} * 64, rows);
        EXPECT_EQ(y, expect) << "DPU " << d;
    }
}

TEST(Kernels, SelectCountsAndFilters)
{
    sim::System sys(smallConfig());
    const std::uint64_t elems = 64;
    std::vector<std::int32_t> in(elems);
    for (std::uint64_t i = 0; i < elems; ++i)
        in[i] = static_cast<std::int32_t>(i);

    device::Dpu &dpu = sys.pim().dpu(0);
    dpu.mramWrite(0, in.data(), elems * 4);
    selectKernel(elems, 0, elems * 4, 31)(dpu, 0);

    EXPECT_EQ(dpu.load<std::int64_t>(elems * 4), 32);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(dpu.load<std::int32_t>(elems * 4 + 8 + i * 4),
                  static_cast<std::int32_t>(32 + i));
}

} // namespace workloads
} // namespace pimmmu

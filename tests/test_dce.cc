#include <gtest/gtest.h>

#include <numeric>

#include "core/dce.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {
namespace core {

namespace {

struct Harness
{
    device::PimGeometry pimGeom;
    mapping::DramGeometry dramGeom;
    EventQueue eq;
    mapping::SystemMapPtr map;
    std::unique_ptr<dram::MemorySystem> mem;
    std::unique_ptr<Dce> dce;

    explicit Harness(DceConfig cfg = DceConfig{}, bool hetMap = true)
    {
        pimGeom = device::PimGeometry::paperTable1();
        pimGeom.banks.rows = 512;
        dramGeom = pimGeom.banks;
        dramGeom.bankGroups = 4;
        dramGeom.banksPerGroup = 4;
        map = hetMap ? mapping::makeHetMap(dramGeom, pimGeom.banks)
                     : mapping::makeBaselineMap(dramGeom,
                                                pimGeom.banks);
        mem = std::make_unique<dram::MemorySystem>(
            eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            dram::timingPreset(dram::SpeedGrade::DDR4_2400));
        dce = std::make_unique<Dce>(eq, cfg, *mem, pimGeom);
    }

    DceTransfer
    makeTransfer(XferDirection dir, unsigned banks,
                 std::uint64_t linesPerBank)
    {
        DceTransfer t;
        t.dir = dir;
        for (unsigned b = 0; b < banks; ++b) {
            BankStream s;
            s.bankIdx = b;
            for (unsigned c = 0; c < 8; ++c) {
                s.hostBase[c] = Addr{b * 8 + c} * linesPerBank * 8;
            }
            s.wireBase =
                map->pimBase() + pimGeom.bankRegionOffset(b);
            s.totalLines = linesPerBank;
            t.streams.push_back(s);
        }
        return t;
    }
};

} // namespace

TEST(DceTest, TransferCompletesAndMovesExpectedBytes)
{
    Harness h;
    const unsigned banks = 8;
    const std::uint64_t lines = 64;
    bool done = false;
    h.dce->start(h.makeTransfer(XferDirection::DramToPim, banks, lines),
                 [&] { done = true; });
    EXPECT_TRUE(h.dce->busy());
    h.eq.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(h.dce->busy());
    EXPECT_EQ(h.mem->dramBytesMoved(), banks * lines * 64); // reads
    EXPECT_EQ(h.mem->pimBytesMoved(), banks * lines * 64);  // writes
    EXPECT_GT(h.dce->busyPs(), 0u);
}

TEST(DceTest, PimToDramReversesTrafficDirection)
{
    Harness h;
    bool done = false;
    h.dce->start(h.makeTransfer(XferDirection::PimToDram, 4, 32),
                 [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
    std::uint64_t pimReads = 0, dramWrites = 0;
    for (unsigned ch = 0; ch < h.mem->pimChannels(); ++ch)
        pimReads += h.mem->pimController(ch).bytesRead();
    for (unsigned ch = 0; ch < h.mem->dramChannels(); ++ch)
        dramWrites += h.mem->dramController(ch).bytesWritten();
    EXPECT_EQ(pimReads, 4u * 32 * 64);
    EXPECT_EQ(dramWrites, 4u * 32 * 64);
}

TEST(DceTest, PimMsSpreadsWritesAcrossAllPimChannels)
{
    DceConfig cfg;
    cfg.usePimMs = true;
    Harness h(cfg);
    // All 64 banks participate: every PIM channel should see traffic
    // throughout, so per-channel bytes end up equal.
    bool done = false;
    h.dce->start(h.makeTransfer(XferDirection::DramToPim, 64, 64),
                 [&] { done = true; });
    h.eq.run();
    ASSERT_TRUE(done);
    const std::uint64_t perCh = 64ull * 64 * 64 / 4;
    for (unsigned ch = 0; ch < 4; ++ch) {
        EXPECT_EQ(h.mem->pimController(ch).bytesWritten(), perCh)
            << "channel " << ch;
    }
}

TEST(DceTest, VanillaDmaIsSlowerThanPimMs)
{
    auto run = [](bool pimMs) {
        DceConfig cfg;
        cfg.usePimMs = pimMs;
        Harness h(cfg);
        bool done = false;
        h.dce->start(
            h.makeTransfer(XferDirection::DramToPim, 32, 128),
            [&] { done = true; });
        h.eq.run();
        EXPECT_TRUE(done);
        return h.eq.now();
    };
    const Tick withMs = run(true);
    const Tick without = run(false);
    EXPECT_LT(withMs, without / 2)
        << "PIM-MS should be far faster than the vanilla DMA mode";
}

TEST(DceTest, RejectsOverlappingStartsAndEmptyTransfers)
{
    Harness h;
    bool done = false;
    h.dce->start(h.makeTransfer(XferDirection::DramToPim, 1, 8),
                 [&] { done = true; });
    EXPECT_THROW(
        h.dce->start(h.makeTransfer(XferDirection::DramToPim, 1, 8),
                     [] {}),
        SimError);
    EXPECT_THROW(h.dce->start(DceTransfer{}, [] {}), SimError);
    h.eq.run();
    EXPECT_TRUE(done);
    // After completion a new transfer is accepted.
    done = false;
    h.dce->start(h.makeTransfer(XferDirection::DramToPim, 1, 8),
                 [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
}

TEST(DceTest, AddressBufferCapacityIsEnforced)
{
    DceConfig cfg;
    cfg.addressBufferBytes = 16 * 16; // 16 entries -> 2 banks
    Harness h(cfg);
    EXPECT_THROW(
        h.dce->start(h.makeTransfer(XferDirection::DramToPim, 3, 8),
                     [] {}),
        SimError);
}

TEST(DceTest, DramToDramChunkedCopyCompletes)
{
    Harness h;
    DceTransfer t;
    t.dir = XferDirection::DramToDram;
    for (unsigned c = 0; c < 8; ++c) {
        BankStream s;
        s.hostBase[0] = Addr{c} * 64 * 64;      // src chunk
        s.wireBase = 16 * kMiB + Addr{c} * 64 * 64; // dst chunk
        s.totalLines = 64;
        t.streams.push_back(s);
    }
    bool done = false;
    h.dce->start(std::move(t), [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(h.mem->dramBytesMoved(), 2ull * 8 * 64 * 64);
    EXPECT_EQ(h.mem->pimBytesMoved(), 0u);
}

TEST(DceTest, DataBufferLimitsOutstandingReads)
{
    DceConfig cfg;
    cfg.dataBufferBytes = 4 * 64; // only 4 slots
    Harness h(cfg);
    bool done = false;
    h.dce->start(h.makeTransfer(XferDirection::DramToPim, 8, 64),
                 [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
    // With 4 slots the engine still finishes; correctness over speed.
    EXPECT_EQ(h.mem->pimBytesMoved(), 8ull * 64 * 64);
}

} // namespace core
} // namespace pimmmu

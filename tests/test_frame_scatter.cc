#include <gtest/gtest.h>

#include <set>

#include "dram/memory_system.hh"
#include "mapping/frame_scatter.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {
namespace mapping {

TEST(FrameScatter, PermutationIsBijective)
{
    FrameScatter scatter(64 * kMiB, 2 * kMiB); // 32 frames
    std::set<std::uint64_t> seen;
    for (std::uint64_t f = 0; f < scatter.frames(); ++f) {
        const std::uint64_t p = scatter.permute(f);
        EXPECT_LT(p, scatter.frames());
        EXPECT_TRUE(seen.insert(p).second) << "collision at frame " << f;
    }
}

TEST(FrameScatter, PreservesOffsetsWithinFrames)
{
    FrameScatter scatter(256 * kMiB);
    for (Addr base : {Addr{0}, Addr{2 * kMiB}, Addr{100 * kMiB}}) {
        const Addr t0 = scatter.translate(base);
        for (Addr off : {Addr{1}, Addr{64}, Addr{4096},
                         Addr{2 * kMiB - 1}}) {
            EXPECT_EQ(scatter.translate(base + off), t0 + off);
        }
    }
}

TEST(FrameScatter, ActuallyScatters)
{
    FrameScatter scatter(1 * kGiB);
    unsigned moved = 0;
    for (std::uint64_t f = 0; f < scatter.frames(); ++f)
        moved += (scatter.permute(f) != f);
    // A permutation that leaves most frames in place is not a scatter.
    EXPECT_GT(moved, scatter.frames() * 3 / 4);
}

TEST(FrameScatter, DeterministicAcrossInstances)
{
    FrameScatter a(1 * kGiB), b(1 * kGiB);
    for (std::uint64_t f = 0; f < a.frames(); f += 7)
        EXPECT_EQ(a.permute(f), b.permute(f));
    FrameScatter c(1 * kGiB, FrameScatter::kDefaultFrameBytes, 999);
    unsigned diff = 0;
    for (std::uint64_t f = 0; f < a.frames(); ++f)
        diff += (a.permute(f) != c.permute(f));
    EXPECT_GT(diff, a.frames() / 2) << "seed should change the layout";
}

TEST(FrameScatter, TinyRegionIsIdentity)
{
    FrameScatter scatter(1 * kMiB); // smaller than one frame
    EXPECT_EQ(scatter.translate(12345), 12345u);
}

TEST(FrameScatter, MemorySystemAppliesItToDramOnly)
{
    EventQueue eq;
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 2048;
    g.columns = 128;
    auto map = makeHetMap(g, g);
    const Addr pimBase = map->pimBase();
    dram::MemorySystem mem(
        eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
        dram::timingPreset(dram::SpeedGrade::DDR4_2400));

    // Without scatter: identity.
    EXPECT_EQ(mem.toPhysical(4 * kMiB), 4 * kMiB);
    mem.enableScatter();
    // DRAM addresses may move (to a frame boundary-preserving spot)...
    const Addr moved = mem.toPhysical(4 * kMiB);
    EXPECT_EQ(moved % (2 * kMiB), 0u);
    EXPECT_LT(moved, map->dramCapacity());
    // ...but PIM-region addresses never do.
    EXPECT_EQ(mem.toPhysical(pimBase + 4 * kMiB), pimBase + 4 * kMiB);
}

} // namespace mapping
} // namespace pimmmu

#include <gtest/gtest.h>

#include "common/random.hh"

namespace pimmmu {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    const unsigned buckets = 8;
    std::vector<unsigned> hits(buckets, 0);
    const unsigned n = 80000;
    for (unsigned i = 0; i < n; ++i)
        ++hits[rng.below(buckets)];
    for (unsigned b = 0; b < buckets; ++b) {
        EXPECT_NEAR(static_cast<double>(hits[b]), n / buckets,
                    0.05 * n / buckets);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(SplitMix, KnownSequenceIsStable)
{
    std::uint64_t s = 0;
    const std::uint64_t first = splitMix64(s);
    std::uint64_t s2 = 0;
    EXPECT_EQ(splitMix64(s2), first);
    EXPECT_NE(splitMix64(s2), first); // state advanced
}

} // namespace pimmmu

#include <gtest/gtest.h>

#include "sim/energy.hh"

namespace pimmmu {
namespace sim {

TEST(Energy, IdleSystemBurnsOnlyBackgroundPower)
{
    PowerModel model;
    EnergySnapshot a, b;
    a.now = 0;
    b.now = kPsPerSec; // one second
    const EnergyReport r = computeEnergy(model, a, b, 8);
    EXPECT_NEAR(r.cpuJ, model.packageIdleW, 1e-9);
    EXPECT_NEAR(r.dramJ, model.dramBackgroundWPerChannel * 8, 1e-9);
    EXPECT_DOUBLE_EQ(r.dceJ, 0.0);
}

TEST(Energy, ActiveCoresAndAvxAddPower)
{
    PowerModel model;
    EnergySnapshot a, b;
    b.now = kPsPerSec;
    b.cpuBusyPs = 8 * kPsPerSec; // 8 core-seconds
    b.avxBusyPs = 8 * kPsPerSec;
    const EnergyReport r = computeEnergy(model, a, b, 8);
    const double expected = model.packageIdleW +
                            8 * (model.coreActiveW + model.avxAdderW);
    EXPECT_NEAR(r.cpuJ, expected, 1e-9);
    // The paper's Fig. 4 operating point: ~70 W system power while all
    // 8 cores run the AVX copy loop.
    EXPECT_NEAR(expected, 70.0, 5.0);
}

TEST(Energy, DramEnergyScalesWithBytes)
{
    PowerModel model;
    model.dramBackgroundWPerChannel = 0.0;
    EnergySnapshot a, b;
    b.now = kPsPerSec;
    b.dramBytes = 1000000000ull; // 1 GB
    b.pimBytes = 1000000000ull;
    const EnergyReport r = computeEnergy(model, a, b, 8);
    EXPECT_NEAR(r.dramJ, model.dramPjPerByte * 2e9 * 1e-12, 1e-9);
}

TEST(Energy, GbPerJouleMetric)
{
    EnergyReport r;
    r.cpuJ = 1.0;
    r.dramJ = 0.5;
    r.dceJ = 0.5;
    EXPECT_DOUBLE_EQ(r.totalJ(), 2.0);
    EXPECT_DOUBLE_EQ(r.gbPerJoule(4000000000ull), 2.0);
}

TEST(Energy, SramAreaMatchesPaperOverhead)
{
    // Paper section VI-C: 16 KB + 64 KB of DCE SRAM = 0.85 mm^2.
    const double area = sramAreaMm2(80 * kKiB);
    EXPECT_NEAR(area, 0.85, 0.02);
}

TEST(Energy, SnapshotDeltasAreMonotonic)
{
    PowerModel model;
    EnergySnapshot a, b;
    a.now = 100;
    a.cpuBusyPs = 50;
    b.now = 200;
    b.cpuBusyPs = 80;
    const EnergyReport r = computeEnergy(model, a, b, 4);
    EXPECT_GT(r.cpuJ, 0.0);
}

} // namespace sim
} // namespace pimmmu

/**
 * @file
 * Regression tests pinning down bugs found during bring-up, so they
 * stay fixed:
 *  1. refresh livelock: a pending refresh could be starved forever by
 *     column traffic re-opening rows (and ACTs chasing forced PREs);
 *  2. read/write-mode deadlock: PRE blocked by row hits queued in the
 *     *other* (unservable) queue;
 *  3. runaway scheduler: finished threads parked on cores kept the
 *     quantum rotation alive forever;
 *  4. stream-aliasing collapse: line-granular round-robin over
 *     power-of-two-aligned streams degenerating to one bank.
 */

#include <gtest/gtest.h>

#include "core/dce.hh"
#include "cpu/copy_thread.hh"
#include "cpu/cpu.hh"
#include "mapping/hetmap.hh"
#include "mmu/mmu.hh"
#include "sim/system.hh"

namespace pimmmu {

TEST(Regression, RefreshCompletesUnderSustainedLoad)
{
    EventQueue eq;
    mapping::DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 4096;
    g.columns = 128;
    dram::MemoryController mc(
        eq, dram::timingPreset(dram::SpeedGrade::DDR4_2400), g, 0);

    // Row-thrashy mixed read/write traffic across all banks.
    std::uint64_t issued = 0, completed = 0;
    const std::uint64_t target = 20000;
    std::function<void()> refill = [&] {
        while (issued < target && mc.canAccept(issued % 2)) {
            dram::MemRequest req;
            req.write = (issued % 2);
            req.coord = mapping::DramCoord{
                0,
                0,
                static_cast<unsigned>(issued % 4),
                static_cast<unsigned>((issued / 4) % 4),
                static_cast<unsigned>((issued * 97) % 4096),
                static_cast<unsigned>(issued % 128)};
            req.onComplete = [&](const dram::MemRequest &) {
                ++completed;
            };
            if (!mc.enqueue(std::move(req)))
                break;
            ++issued;
        }
    };
    mc.onDrain(refill);
    refill();
    eq.run();
    EXPECT_EQ(completed, target);
    // Refresh must actually complete at roughly tREFI cadence.
    const double sec = static_cast<double>(eq.now()) / 1e12;
    const double expected = sec / 7.8e-6;
    EXPECT_GT(mc.stats().counterValue("refreshes"), expected * 0.5);
    // And forced precharges stay bounded (no chase storm).
    EXPECT_LT(mc.stats().counterValue("refresh_forced_pre"),
              mc.stats().counterValue("refreshes") * 20);
}

TEST(Regression, MixedReadWriteRowConflictTrafficNeverDeadlocks)
{
    // Reads and writes to the same banks but different rows, arriving
    // in an order that once deadlocked write-mode vs read-queue hits.
    EventQueue eq;
    mapping::DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 4096;
    g.columns = 128;
    dram::MemoryController mc(
        eq, dram::timingPreset(dram::SpeedGrade::DDR4_2400), g, 0);

    unsigned completed = 0;
    for (unsigned i = 0; i < 48; ++i) { // reads to row 0
        dram::MemRequest req;
        req.coord = mapping::DramCoord{0, 0, i % 4, (i / 4) % 4, 0,
                                       i % 128};
        req.onComplete = [&](const dram::MemRequest &) { ++completed; };
        ASSERT_TRUE(mc.enqueue(std::move(req)));
    }
    for (unsigned i = 0; i < 52; ++i) { // writes to row 16
        dram::MemRequest req;
        req.write = true;
        req.coord = mapping::DramCoord{0, 0, i % 4, (i / 4) % 4, 16,
                                       i % 128};
        req.onComplete = [&](const dram::MemRequest &) { ++completed; };
        ASSERT_TRUE(mc.enqueue(std::move(req)));
    }
    const bool drained = eq.run(Tick{10} * kPsPerMs);
    EXPECT_TRUE(drained) << "controller deadlocked";
    EXPECT_EQ(completed, 100u);
}

TEST(Regression, EventQueueDrainsAfterJobsFinish)
{
    // A finished copy thread parked on a core must not keep quantum
    // rotations alive forever.
    EventQueue eq;
    mapping::DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 512;
    g.columns = 128;
    auto map = mapping::makeHetMap(g, g);
    dram::MemorySystem mem(
        eq, *map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
        dram::timingPreset(dram::SpeedGrade::DDR4_2400));
    cpu::Cpu cpu(eq, cpu::CpuConfig{}, mem);

    cpu::CopyWork work;
    work.kind = cpu::CopyWork::Kind::DramToDram;
    work.src = 0;
    work.dst = 8 * kMiB;
    work.lines = 64;
    bool done = false;
    cpu.runJob({std::make_shared<cpu::CopyThread>(work)},
               [&] { done = true; });
    // The queue must fully drain shortly after the job completes.
    const bool drained = eq.run(Tick{100} * kPsPerMs);
    EXPECT_TRUE(done);
    EXPECT_TRUE(drained) << "rotation events leaked after completion";
    EXPECT_LT(eq.now(), Tick{20} * kPsPerMs);
}

TEST(Regression, DceMemcpyThroughputDoesNotCollapseAtOneChannel)
{
    // Line-granular round-robin over 2 MiB-aligned chunks once
    // degenerated to a single bank (0.16 GB/s); burst scheduling must
    // keep at least ~25% of the single channel's peak.
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.channels = 1;
    cfg.dramGeom.ranksPerChannel = 1;
    cfg.dramGeom.rows = 4096;
    cfg.pimGeom.banks.rows = 256;
    sim::System sys(cfg);
    const auto stats = sys.runMemcpy(2 * kMiB);
    EXPECT_GT(stats.gbps(), 0.25 * 19.2 / 2);
}

TEST(Regression, UnmappedVirtualDescriptorRejectsWithContext)
{
    // A tenant handing the driver an unmapped pointer must get a
    // structured UnmappedPage rejection naming tenant and VA — never
    // an assert — and the System must stay fully usable afterwards.
    // (Early MMU wiring turned translation faults into aborts inside
    // the request thread, taking the whole simulation down.)
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    sim::System sys(cfg);

    const mmu::TenantId tenant = sys.mmu().createTenant();
    core::PimMmuOp op;
    op.type = core::XferDirection::DramToPim;
    op.sizePerPim = 2 * kKiB;
    op.pimBaseHeapPtr = Addr{1} << 41;
    op.tenant = tenant;
    const Addr vaBase = Addr{1} << 40; // never mapped
    for (unsigned i = 0; i < 8; ++i) {
        op.pimIdArr.push_back(i);
        op.dramAddrArr.push_back(vaBase + i * op.sizePerPim);
    }

    // The stall-diagnostic context carries the virtual identity of the
    // submission (tenant + VAs), which the physical descriptor alone
    // cannot reconstruct.
    auto xfer = sys.startTransfer(op);
    EXPECT_NE(xfer->context.find("tenant 1"), std::string::npos)
        << xfer->context;
    EXPECT_NE(xfer->context.find("0x10000000000"), std::string::npos)
        << xfer->context;

    core::PimMmuOp retry = op;
    const auto st = sys.runTransfer(std::move(retry));
    EXPECT_EQ(st.status.code, resilience::ErrorCode::UnmappedPage);
    EXPECT_NE(st.status.message.find("tenant"), std::string::npos)
        << st.status.message;

    // Same system, same tenant: a mapped submission now succeeds.
    const Addr pa = sys.allocDram(8 * 2 * kKiB, mmu::kPageBytes);
    ASSERT_TRUE(sys.mmu()
                    .map(tenant, vaBase, pa, 8 * 2 * kKiB,
                         mmu::kPageBytes, mmu::PagePerms::rw(),
                         mapping::MemSpace::Dram)
                    .ok());
    ASSERT_TRUE(sys.mmu()
                    .map(tenant, Addr{1} << 41, 0, mmu::kPageBytes,
                         mmu::kPageBytes, mmu::PagePerms::rw(),
                         mapping::MemSpace::Pim)
                    .ok());
    EXPECT_TRUE(sys.runTransfer(std::move(op)).ok());
}

} // namespace pimmmu

/**
 * @file
 * End-to-end correctness of all 16 functional PrIM workloads through
 * BOTH transfer paths (baseline dpu_push_xfer and PIM-MMU), each
 * verified against its host reference.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/stats_registry.hh"
#include "workloads/prim.hh"
#include "workloads/prim_impl.hh"

namespace pimmmu {
namespace workloads {

namespace {

sim::SystemConfig
smallConfig(sim::DesignPoint dp)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(dp);
    cfg.dramGeom.rows = 1024;
    cfg.pimGeom.banks.rows = 1024;
    return cfg;
}

struct PrimCase
{
    const char *name;
    sim::DesignPoint design;
};

class PrimEndToEnd : public ::testing::TestWithParam<PrimCase>
{
};

} // namespace

TEST_P(PrimEndToEnd, ProducesCorrectResults)
{
    const PrimCase &tc = GetParam();
    sim::System sys(smallConfig(tc.design));
    PrimRunConfig cfg;
    cfg.numDpus = 16;
    cfg.elemsPerDpu = 128;
    auto bench = makePrimBenchmark(tc.name, cfg);
    const PrimRunResult result = runPrimBenchmark(sys, *bench);
    EXPECT_TRUE(result.correct) << tc.name << " verification failed";
    EXPECT_GT(result.inXferPs, 0u);
    EXPECT_GT(result.kernelPs, 0u);
    EXPECT_GT(result.outXferPs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PrimEndToEnd,
    ::testing::ValuesIn([] {
        std::vector<PrimCase> cases;
        for (const auto &name : primBenchmarkNames()) {
            cases.push_back({name.c_str(), sim::DesignPoint::Base});
            cases.push_back({name.c_str(), sim::DesignPoint::BaseDHP});
        }
        return cases;
    }()),
    [](const ::testing::TestParamInfo<PrimCase> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + (info.param.design == sim::DesignPoint::Base
                        ? "_base"
                        : "_pimmmu");
    });

TEST(PrimImpl, NamesMatchDescriptorSuite)
{
    // Every analytic descriptor (Fig. 16) has a functional twin.
    const auto &names = primBenchmarkNames();
    EXPECT_EQ(names.size(), 16u);
    for (const auto &name : names) {
        EXPECT_NO_THROW(primWorkload(name.c_str())) << name;
    }
}

TEST(PrimImpl, RejectsBadConfigs)
{
    PrimRunConfig cfg;
    cfg.numDpus = 7; // not a multiple of 8
    EXPECT_THROW(makePrimBenchmark("VA", cfg), SimError);
    cfg.numDpus = 8;
    cfg.elemsPerDpu = 100; // not a multiple of 64
    EXPECT_THROW(makePrimBenchmark("VA", cfg), SimError);
    cfg.elemsPerDpu = 64;
    EXPECT_THROW(makePrimBenchmark("NOPE", cfg), SimError);
}

TEST(PrimImpl, RegistersWorkloadStatsGroup)
{
    sim::System sys(smallConfig(sim::DesignPoint::BaseDHP));
    PrimRunConfig cfg;
    cfg.numDpus = 8;
    cfg.elemsPerDpu = 64;
    auto bench = makePrimBenchmark("VA", cfg);
    const PrimRunResult result = runPrimBenchmark(sys, *bench);
    ASSERT_TRUE(result.correct);

    // The group retires at the end of the run but must still appear in
    // a registry dump (--stats-json covers workloads, not just
    // components).
    std::ostringstream os;
    telemetry::StatsRegistry::global().dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"workload.VA\""), std::string::npos);
    EXPECT_NE(json.find("\"in_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"kernel_us\""), std::string::npos);
    EXPECT_NE(json.find("\"verified\""), std::string::npos);
}

TEST(PrimImpl, ScanVariantsAgree)
{
    // SSA and RSS must produce identical global scans.
    auto run = [](const char *name) {
        sim::System sys(smallConfig(sim::DesignPoint::BaseDHP));
        PrimRunConfig cfg;
        cfg.numDpus = 8;
        cfg.elemsPerDpu = 128;
        auto bench = makePrimBenchmark(name, cfg);
        return runPrimBenchmark(sys, *bench).correct;
    };
    EXPECT_TRUE(run("SCAN-SSA"));
    EXPECT_TRUE(run("SCAN-RSS"));
}

} // namespace workloads
} // namespace pimmmu

#include <gtest/gtest.h>

#include <numeric>

#include "core/pim_ms.hh"

namespace pimmmu {
namespace core {

namespace {

device::PimGeometry
geom()
{
    device::PimGeometry g = device::PimGeometry::paperTable1();
    g.banks.rows = 256;
    return g;
}

} // namespace

TEST(PimMsTest, PartitionsBanksByChannel)
{
    const auto g = geom();
    std::vector<unsigned> banks(g.numBanks());
    std::iota(banks.begin(), banks.end(), 0u);
    PimMs ms(g, banks);

    ASSERT_EQ(ms.numChannels(), g.banks.channels);
    std::size_t total = 0;
    for (unsigned ch = 0; ch < ms.numChannels(); ++ch) {
        for (unsigned slot : ms.channelSlots(ch))
            EXPECT_EQ(g.bankCoord(banks[slot]).ch, ch);
        total += ms.channelSlots(ch).size();
    }
    EXPECT_EQ(total, banks.size());
}

TEST(PimMsTest, AlgorithmOrderInterleavesBankGroupsFirst)
{
    // Paper Algorithm 1 lines 29-37: bk outer, then ra, then bg, so
    // successive issues target different bank groups (dodging tCCD_L).
    const auto g = geom();
    std::vector<unsigned> banks(g.numBanks());
    std::iota(banks.begin(), banks.end(), 0u);
    PimMs ms(g, banks);

    const auto &slots = ms.channelSlots(0);
    ASSERT_GE(slots.size(), 4u);
    // Within one (bk) group of the order, consecutive entries differ
    // in rank or bank group, never only in bank.
    for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
        const auto a = g.bankCoord(banks[slots[i]]);
        const auto b = g.bankCoord(banks[slots[i + 1]]);
        if (a.bk == b.bk) {
            EXPECT_TRUE(a.ra != b.ra || a.bg != b.bg)
                << "consecutive issues must change rank/bank-group";
        }
    }
    // The very first two issues hit different bank groups.
    const auto first = g.bankCoord(banks[slots[0]]);
    const auto second = g.bankCoord(banks[slots[1]]);
    EXPECT_NE(first.bg, second.bg);
}

TEST(PimMsTest, NextChannelRoundRobins)
{
    const auto g = geom();
    std::vector<unsigned> banks(g.numBanks());
    std::iota(banks.begin(), banks.end(), 0u);
    PimMs ms(g, banks);

    std::vector<unsigned> seq;
    for (unsigned i = 0; i < 2 * ms.numChannels(); ++i)
        seq.push_back(ms.nextChannel());
    for (unsigned i = 0; i < ms.numChannels(); ++i) {
        EXPECT_EQ(seq[i], i);
        EXPECT_EQ(seq[i + ms.numChannels()], i);
    }
}

TEST(PimMsTest, DropsEmptyChannels)
{
    const auto g = geom();
    // Only banks from channel 2.
    std::vector<unsigned> banks;
    for (unsigned b = 0; b < g.numBanks(); ++b) {
        if (g.bankCoord(b).ch == 2)
            banks.push_back(b);
    }
    PimMs ms(g, banks);
    EXPECT_EQ(ms.numChannels(), 1u);
    EXPECT_EQ(ms.channelSlots(0).size(), banks.size());
}

TEST(PimMsTest, EmptyBankSetIsRejected)
{
    const auto g = geom();
    EXPECT_THROW(PimMs(g, {}), SimError);
}

TEST(PimMsTest, CursorsAreIndependentPerChannelAndDirection)
{
    const auto g = geom();
    std::vector<unsigned> banks(g.numBanks());
    std::iota(banks.begin(), banks.end(), 0u);
    PimMs ms(g, banks);
    ms.cursor(0, false) = 3;
    ms.cursor(0, true) = 5;
    ms.cursor(1, false) = 7;
    EXPECT_EQ(ms.cursor(0, false), 3u);
    EXPECT_EQ(ms.cursor(0, true), 5u);
    EXPECT_EQ(ms.cursor(1, false), 7u);
}

} // namespace core
} // namespace pimmmu

# ctest script: the quick TLB campaign run as two shards and spliced
# back together by benchmerge must be byte-identical to the unsharded
# run. Mirrors the CI shard/merge job at smoke scale (see
# .github/workflows/ci.yml). Variables: FIG_TLB, BENCHMERGE, WORK_DIR.

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_checked)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
    endif()
endfunction()

run_checked(${FIG_TLB} --quick --out ${WORK_DIR}/full.json)
run_checked(${FIG_TLB} --quick --shards 2 --shard-index 0
            --out ${WORK_DIR}/shard0.json)
run_checked(${FIG_TLB} --quick --shards 2 --shard-index 1
            --out ${WORK_DIR}/shard1.json)
run_checked(${BENCHMERGE} -o ${WORK_DIR}/merged.json
            ${WORK_DIR}/shard0.json ${WORK_DIR}/shard1.json)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/merged.json ${WORK_DIR}/full.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "merged shards differ from the unsharded campaign output")
endif()

/**
 * @file
 * Chaos campaign: correlated failure domains x repair policy.
 *
 * Where fig_resilience sweeps independent per-core faults, this bench
 * injects *correlated* kills that take out whole failure domains at
 * once — a rank (8 banks, 64 DPUs) or a channel (16 banks, 128 DPUs)
 * of the paper Table I machine — and measures what the health state
 * machine's repair & re-admission path (scrub probes, probation,
 * re-admission after consecutive clean probes) buys back:
 *
 *   mode independent   dpu.kill            one bank per fire
 *   mode rank          domain.kill_rank    the probing DPU's rank
 *   mode channel       domain.kill_channel the probing DPU's channel
 *
 * crossed with two policies:
 *
 *   mask     retry + permanent health-masking (no repair)
 *   repair   mask + scrub/probe re-admission between rounds
 *
 * The scoreboard is delivered-and-verified bytes: after every
 * DRAM->PIM->DRAM round trip each unmasked DPU's delivered buffer is
 * CRC-checked against golden; masked DPUs deliver nothing. Light
 * transient noise (ECC flips, past-ECC corruption) runs in every mode
 * so "verified" is earned, not vacuous.
 *
 * Exit-code gates:
 *   - rate 0 must be bit- and cycle-identical to a resilience-disabled
 *     (Policy::off) baseline System for every mode x policy;
 *   - with repair, correlated-rank kills at rate 1e-4 must recover to
 *     >= 95% of the fault-free delivered bytes (and the scenario must
 *     actually fire at least one rank kill, so the gate can't pass
 *     vacuously);
 *   - no policy may ever deliver a corrupt buffer.
 *
 * The --out JSON (BENCH_chaos.json in CI) records per-scenario
 * delivery, the resilience.* counters (including readmissions and
 * probe failures), and raw fault-site fire counts.
 *
 * The sweep runs on a SweepRunner job list: --threads fans jobs out
 * across workers, and --shards N --shard-index i runs only the jobs
 * with index % N == i, writing a partial JSON whose rows carry global
 * "job<N>" names so tools/benchmerge can splice shards back into the
 * byte-identical unsharded file.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "resilience/crc.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

using namespace pimmmu;

namespace {

struct ChaosMode
{
    const char *name;
    const char *site;  //!< the mode's kill site
    double scale;      //!< site probability = min(1, rate * scale)
};

const ChaosMode kModes[] = {
    {"independent", "dpu.kill", 8.0},
    {"rank", "domain.kill_rank", 4.0},
    {"channel", "domain.kill_channel", 2.0},
};

struct PolicyCase
{
    const char *name;
    resilience::Policy policy;
};

struct ScenarioResult
{
    unsigned job = 0; //!< global sweep index ("job<N>" row tag)
    std::string mode;
    std::string policy;
    double rate = 0.0;
    unsigned rounds = 0;
    unsigned completedRounds = 0;
    unsigned failedCalls = 0;
    unsigned noHealthy = 0; //!< calls rejected with NoHealthyTargets
    unsigned stalls = 0;
    unsigned corruptDpus = 0;       //!< delivered CRC != golden
    unsigned skippedDpuRounds = 0;  //!< (dpu, round) pairs masked out
    unsigned scrubPasses = 0;
    std::uint64_t deliveredBytes = 0; //!< CRC-verified delivery
    std::uint64_t expectedBytes = 0;  //!< rounds * dpus * bytesPerDpu
    Tick firstRoundPs = 0;
    Tick totalPs = 0;

    // resilience.* counters (0 when no manager is attached).
    std::uint64_t dpusMasked = 0;
    std::uint64_t banksMasked = 0;
    std::uint64_t ranksMasked = 0;
    std::uint64_t channelsMasked = 0;
    std::uint64_t probeTransfers = 0;
    std::uint64_t probeFailures = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t crcRetries = 0;
    std::uint64_t eccCorrected = 0;
    std::uint64_t transfersFailed = 0;
    std::uint64_t transfersDegraded = 0;

    // Raw fire counts for reconciliation.
    std::uint64_t firedKills = 0; //!< the mode's kill site
    std::uint64_t firedFlips = 0;
    std::uint64_t firedCorrupt = 0;

    double deliveredFrac() const
    {
        return expectedBytes == 0
                   ? 0.0
                   : static_cast<double>(deliveredBytes) /
                         static_cast<double>(expectedBytes);
    }
};

/** Deterministic per-(mode, policy, rate) seed: replayable, no clock. */
std::uint64_t
scenarioSeed(unsigned modeIdx, unsigned policyIdx, double rate)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &rate, sizeof(bits));
    return (bits * 0x9e3779b97f4a7c15ull) ^
           (modeIdx * 16 + policyIdx + 1);
}

ScenarioResult
runScenario(const ChaosMode &mode, unsigned modeIdx,
            const PolicyCase &pc, unsigned policyIdx, double rate,
            unsigned rounds, unsigned numDpus,
            std::uint64_t bytesPerDpu)
{
    testing::fault::disarmAll();

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.resilience = pc.policy;
    sim::System sys(cfg);

    std::vector<unsigned> dpuIds(numDpus);
    for (unsigned i = 0; i < numDpus; ++i)
        dpuIds[i] = i;

    const Addr src = sys.allocDram(std::uint64_t{numDpus} * bytesPerDpu);
    const Addr dst = sys.allocDram(std::uint64_t{numDpus} * bytesPerDpu);

    // Per-DPU pattern + golden CRC. The pattern is round-invariant, so
    // a re-admitted bank's MRAM (last refreshed before it was masked)
    // still holds golden data.
    std::vector<std::uint32_t> golden(numDpus);
    std::vector<std::uint8_t> buf(bytesPerDpu);
    for (unsigned d = 0; d < numDpus; ++d) {
        for (std::uint64_t i = 0; i < bytesPerDpu; ++i) {
            buf[i] = static_cast<std::uint8_t>(
                (d * 193u + i * 41u + 11u) & 0xff);
        }
        sys.mem().store().write(src + std::uint64_t{d} * bytesPerDpu,
                                buf.data(), bytesPerDpu);
        golden[d] = resilience::crc32c(buf.data(), bytesPerDpu);
    }

    // The mode's kill site plus light transient noise in every mode,
    // so delivery is verified under realistic background corruption.
    const std::uint64_t seed = scenarioSeed(modeIdx, policyIdx, rate);
    if (rate > 0.0) {
        using testing::fault::armRate;
        armRate("ecc.flip_single_bit", rate, seed ^ 0xa1);
        armRate("xfer.corrupt_data", rate / 64, seed ^ 0xc3);
        armRate(mode.site, std::min(1.0, rate * mode.scale),
                seed ^ 0xe5);
    }

    ScenarioResult r;
    r.mode = mode.name;
    r.policy = pc.name;
    r.rate = rate;
    r.rounds = rounds;
    r.expectedBytes =
        std::uint64_t{rounds} * numDpus * bytesPerDpu;

    // 0 = delivered, 1 = call reported failure, 2 = stalled.
    auto doXfer = [&](core::XferDirection dir, Addr hostBase,
                      resilience::Status *stOut) {
        core::PimMmuOp op;
        op.type = dir;
        op.sizePerPim = bytesPerDpu;
        op.pimIdArr = dpuIds;
        op.pimBaseHeapPtr = 0;
        op.dramAddrArr.resize(numDpus);
        for (unsigned d = 0; d < numDpus; ++d)
            op.dramAddrArr[d] = hostBase + std::uint64_t{d} * bytesPerDpu;

        bool done = false;
        resilience::Status st;
        const auto sync = sys.pimMmu().transferChecked(
            op, [&](const resilience::Status &s) {
                st = s;
                done = true;
            });
        if (!sync.ok()) {
            st = sync;
            done = true;
        }
        if (!done)
            sys.runUntil([&] { return done; });
        *stOut = st;
        if (!done)
            return 2;
        return st.ok() ? 0 : 1;
    };

    resilience::Manager *mgr = sys.resilienceManager();
    const Tick start = sys.eq().now();
    for (unsigned round = 0; round < rounds; ++round) {
        const Tick t0 = sys.eq().now();
        resilience::Status stTo, stFrom;
        const int toPim =
            doXfer(core::XferDirection::DramToPim, src, &stTo);
        if (toPim == 2) {
            ++r.stalls;
            break;
        }
        const int fromPim =
            doXfer(core::XferDirection::PimToDram, dst, &stFrom);
        if (fromPim == 2) {
            ++r.stalls;
            break;
        }
        r.failedCalls += (toPim == 1) + (fromPim == 1);
        using resilience::ErrorCode;
        r.noHealthy +=
            (stTo.code == ErrorCode::NoHealthyTargets) +
            (stFrom.code == ErrorCode::NoHealthyTargets);
        if (round == 0)
            r.firstRoundPs = sys.eq().now() - t0;
        ++r.completedRounds;

        // Score the round: every unmasked DPU must have delivered a
        // golden buffer; masked DPUs deliver nothing.
        for (unsigned d = 0; d < numDpus; ++d) {
            if (mgr != nullptr && !mgr->dpuHealthy(d)) {
                ++r.skippedDpuRounds;
                continue;
            }
            sys.mem().store().read(
                dst + std::uint64_t{d} * bytesPerDpu, buf.data(),
                bytesPerDpu);
            if (resilience::crc32c(buf.data(), bytesPerDpu) ==
                golden[d])
                r.deliveredBytes += bytesPerDpu;
            else
                ++r.corruptDpus;
        }

        // Repair: scrub out-of-service banks to convergence so they
        // rejoin before the next round. Bounded — armed kill sites can
        // re-fail a probe, and probation takes several clean passes.
        if (pc.policy.repairEnabled) {
            for (unsigned pass = 0; pass < 8; ++pass) {
                const sim::ScrubReport rep = sys.runScrub();
                if (rep.idle())
                    break;
                ++r.scrubPasses;
            }
        }
    }
    r.totalPs = sys.eq().now() - start;

    using testing::fault::count;
    r.firedKills = count(mode.site);
    r.firedFlips = count("ecc.flip_single_bit");
    r.firedCorrupt = count("xfer.corrupt_data");
    testing::fault::disarmAll();

    if (mgr != nullptr) {
        stats::Group &g = mgr->stats();
        r.dpusMasked = g.counterValue("dpus_masked");
        r.banksMasked = g.counterValue("banks_masked");
        r.ranksMasked = g.counterValue("ranks_masked");
        r.channelsMasked = g.counterValue("channels_masked");
        r.probeTransfers = g.counterValue("probe_transfers");
        r.probeFailures = g.counterValue("probe_failures");
        r.readmissions = g.counterValue("readmissions");
        r.crcRetries = g.counterValue("crc_retries");
        r.eccCorrected = g.counterValue("ecc_corrected");
        r.transfersFailed = g.counterValue("transfers_failed");
        r.transfersDegraded = g.counterValue("transfers_degraded");
    }
    return r;
}

bool
writeJson(const std::string &path, bool quick, unsigned shards,
          unsigned shardIndex, const std::vector<ScenarioResult> &results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"schema\": \"pim-mmu-bench-chaos-v2\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    if (shards > 1) {
        os << "  \"shard\": {\"count\": " << shards
           << ", \"index\": " << shardIndex << "},\n";
    }
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"job%u\", \"mode\": \"%s\", "
            "\"policy\": \"%s\", "
            "\"rate\": %.1e, \"rounds\": %u, "
            "\"completed_rounds\": %u, \"failed_calls\": %u, "
            "\"no_healthy_targets\": %u, \"stalls\": %u, "
            "\"delivered_bytes\": %llu, \"expected_bytes\": %llu, "
            "\"delivered_frac\": %.4f, \"corrupt_dpus\": %u, "
            "\"skipped_dpu_rounds\": %u, \"scrub_passes\": %u, "
            "\"first_round_ps\": %llu, \"total_ps\": %llu, "
            "\"counters\": {\"dpus_masked\": %llu, "
            "\"banks_masked\": %llu, \"ranks_masked\": %llu, "
            "\"channels_masked\": %llu, \"probe_transfers\": %llu, "
            "\"probe_failures\": %llu, \"readmissions\": %llu, "
            "\"crc_retries\": %llu, \"ecc_corrected\": %llu, "
            "\"transfers_failed\": %llu, "
            "\"transfers_degraded\": %llu}, "
            "\"fired\": {\"kills\": %llu, \"flips\": %llu, "
            "\"corrupt\": %llu}}%s\n",
            r.job, r.mode.c_str(), r.policy.c_str(), r.rate, r.rounds,
            r.completedRounds, r.failedCalls, r.noHealthy, r.stalls,
            static_cast<unsigned long long>(r.deliveredBytes),
            static_cast<unsigned long long>(r.expectedBytes),
            r.deliveredFrac(), r.corruptDpus, r.skippedDpuRounds,
            r.scrubPasses,
            static_cast<unsigned long long>(r.firstRoundPs),
            static_cast<unsigned long long>(r.totalPs),
            static_cast<unsigned long long>(r.dpusMasked),
            static_cast<unsigned long long>(r.banksMasked),
            static_cast<unsigned long long>(r.ranksMasked),
            static_cast<unsigned long long>(r.channelsMasked),
            static_cast<unsigned long long>(r.probeTransfers),
            static_cast<unsigned long long>(r.probeFailures),
            static_cast<unsigned long long>(r.readmissions),
            static_cast<unsigned long long>(r.crcRetries),
            static_cast<unsigned long long>(r.eccCorrected),
            static_cast<unsigned long long>(r.transfersFailed),
            static_cast<unsigned long long>(r.transfersDegraded),
            static_cast<unsigned long long>(r.firedKills),
            static_cast<unsigned long long>(r.firedFlips),
            static_cast<unsigned long long>(r.firedCorrupt),
            i + 1 < results.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned threads = 1;
    unsigned shards = 1;
    unsigned shardIndex = 0;
    std::string outPath;
    std::string replay;
    auto numArg = [&](int &i) -> unsigned {
        return static_cast<unsigned>(
            std::strtoul(argv[++i], nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = numArg(i);
        } else if (std::strcmp(argv[i], "--shards") == 0 &&
                   i + 1 < argc) {
            shards = numArg(i);
        } else if (std::strcmp(argv[i], "--shard-index") == 0 &&
                   i + 1 < argc) {
            shardIndex = numArg(i);
        } else if (std::strcmp(argv[i], "--replay") == 0 &&
                   i + 1 < argc) {
            replay = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--quick] [--out <path>] [--threads <n>] "
                "[--shards <n> --shard-index <i>] "
                "[--replay <mode>:<policy>:<rate>]\n"
                "  modes: independent rank channel; policies: mask "
                "repair; e.g. --replay rank:repair:1e-4\n",
                argv[0]);
            return 2;
        }
    }
    if (shards == 0 || shardIndex >= shards) {
        std::fprintf(stderr,
                     "--shard-index %u out of range for --shards %u\n",
                     shardIndex, shards);
        return 2;
    }

    bench::banner("Chaos campaign",
                  "correlated failure domains (rank/channel kills) x "
                  "repair policy; delivered-and-verified bytes per "
                  "round trip");

    // 256 DPUs = banks 0..31 of the Table I machine = 4 ranks across
    // 2 channels, so a correlated kill takes out 25% (rank) or 50%
    // (channel) of the fleet but never all of it at once.
    const unsigned numDpus = 256;
    const std::uint64_t bytesPerDpu = quick ? 512 : 1 * kKiB;
    const unsigned rounds = quick ? 6 : 12;
    const std::vector<double> rates =
        quick ? std::vector<double>{0.0, 1e-4}
              : std::vector<double>{0.0, 1e-5, 1e-4, 1e-3};

    const PolicyCase policies[] = {
        {"mask", resilience::Policy::withRetryAndMask()},
        {"repair", resilience::Policy::withRepair()},
    };

    // Replay: run exactly one scenario, no gates — for debugging a
    // campaign failure without re-running the whole sweep.
    int replayMode = -1, replayPolicy = -1;
    double replayRate = 0.0;
    if (!replay.empty()) {
        const std::size_t c1 = replay.find(':');
        const std::size_t c2 =
            c1 == std::string::npos ? c1 : replay.find(':', c1 + 1);
        if (c2 == std::string::npos) {
            std::fprintf(stderr,
                         "bad --replay spec '%s' (want "
                         "<mode>:<policy>:<rate>)\n",
                         replay.c_str());
            return 2;
        }
        const std::string m = replay.substr(0, c1);
        const std::string p = replay.substr(c1 + 1, c2 - c1 - 1);
        replayRate = std::strtod(replay.c_str() + c2 + 1, nullptr);
        for (unsigned i = 0; i < 3; ++i)
            if (m == kModes[i].name)
                replayMode = static_cast<int>(i);
        for (unsigned i = 0; i < 2; ++i)
            if (p == policies[i].name)
                replayPolicy = static_cast<int>(i);
        if (replayMode < 0 || replayPolicy < 0) {
            std::fprintf(stderr, "unknown mode/policy in '%s'\n",
                         replay.c_str());
            return 2;
        }
    }

    // Resilience-disabled baseline for the rate-0 identity gate: no
    // manager, no guards, the pre-resilience data path.
    const ScenarioResult baseline = runScenario(
        kModes[0], 0, PolicyCase{"off", resilience::Policy::off()}, 0,
        0.0, rounds, numDpus, bytesPerDpu);

    std::vector<ScenarioResult> results;
    Table t({"mode", "policy", "rate", "rounds", "deliv %", "failed",
             "noheal", "corrupt", "masked", "ranks", "chans",
             "readmit", "scrubs", "rt us"});
    auto addRow = [&](const ScenarioResult &r) {
        char rateBuf[16];
        std::snprintf(rateBuf, sizeof(rateBuf), "%.0e", r.rate);
        t.row()
            .cell(r.mode)
            .cell(r.policy)
            .cell(rateBuf)
            .num(std::uint64_t{r.completedRounds})
            .num(100.0 * r.deliveredFrac())
            .num(std::uint64_t{r.failedCalls})
            .num(std::uint64_t{r.noHealthy})
            .num(std::uint64_t{r.corruptDpus})
            .num(r.dpusMasked)
            .num(r.ranksMasked)
            .num(r.channelsMasked)
            .num(r.readmissions)
            .num(std::uint64_t{r.scrubPasses})
            .num(static_cast<double>(r.firstRoundPs) / 1e6);
        results.push_back(r);
    };

    if (!replay.empty()) {
        addRow(runScenario(kModes[replayMode], replayMode,
                           policies[replayPolicy], replayPolicy,
                           replayRate, rounds, numDpus, bytesPerDpu));
        bench::printTable(t);
        if (!outPath.empty() &&
            !writeJson(outPath, quick, 1, 0, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         outPath.c_str());
            return 1;
        }
        return 0;
    }

    // Sweep as a SweepRunner job list: rate-major, then mode, then
    // policy — the same order as the old nested loops, so job indices
    // are stable row names across shards. Each job is an independent
    // System with thread-local fault/telemetry registries.
    const std::size_t jobCount = rates.size() * 6;
    std::vector<ScenarioResult> all(jobCount);
    std::vector<char> present(jobCount, 0);
    sim::SweepRunner runner(threads);
    runner.setShard({shards, shardIndex});
    runner.run(jobCount, [&](std::size_t j) {
        const unsigned rateIdx = static_cast<unsigned>(j / 6);
        const unsigned m = static_cast<unsigned>((j % 6) / 2);
        const unsigned p = static_cast<unsigned>(j % 2);
        ScenarioResult r =
            runScenario(kModes[m], m, policies[p], p, rates[rateIdx],
                        rounds, numDpus, bytesPerDpu);
        r.job = static_cast<unsigned>(j);
        all[j] = std::move(r);
        present[j] = 1;
    });
    for (std::size_t j = 0; j < jobCount; ++j) {
        if (present[j])
            addRow(all[j]);
    }
    bench::printTable(t);

    int rc = 0;

    // Gate 1: rate 0 must be bit- and cycle-identical to the
    // resilience-disabled baseline — detection, domain tracking and
    // the (idle) scrub machinery must all be free when nothing fires.
    if (baseline.deliveredBytes != baseline.expectedBytes ||
        baseline.corruptDpus > 0) {
        std::fprintf(stderr, "FAIL: baseline did not deliver golden "
                             "data\n");
        rc = 1;
    }
    for (const ScenarioResult &r : results) {
        if (r.rate != 0.0)
            continue;
        if (r.deliveredBytes != r.expectedBytes || r.corruptDpus > 0 ||
            r.failedCalls > 0 || r.stalls > 0) {
            std::fprintf(stderr,
                         "FAIL: rate-0 %s/%s lost or corrupted data\n",
                         r.mode.c_str(), r.policy.c_str());
            rc = 1;
        }
        if (r.firstRoundPs != baseline.firstRoundPs ||
            r.totalPs != baseline.totalPs) {
            std::fprintf(
                stderr,
                "FAIL: rate-0 %s/%s timing (%llu / %llu ps) != "
                "resilience-off baseline (%llu / %llu ps)\n",
                r.mode.c_str(), r.policy.c_str(),
                static_cast<unsigned long long>(r.firstRoundPs),
                static_cast<unsigned long long>(r.totalPs),
                static_cast<unsigned long long>(baseline.firstRoundPs),
                static_cast<unsigned long long>(baseline.totalPs));
            rc = 1;
        }
    }

    // Gate 2: repair recovers correlated-rank kills at 1e-4 to >= 95%
    // of the same policy's fault-free delivery — and the scenario must
    // actually lose a rank for the number to mean anything.
    const ScenarioResult *repairRank0 = nullptr;
    const ScenarioResult *repairRank4 = nullptr;
    for (const ScenarioResult &r : results) {
        if (r.mode == "rank" && r.policy == "repair") {
            if (r.rate == 0.0)
                repairRank0 = &r;
            if (r.rate == 1e-4)
                repairRank4 = &r;
        }
    }
    if (repairRank0 == nullptr || repairRank4 == nullptr) {
        if (shards > 1) {
            // Both cells land in the same shard under the round-robin
            // split only by accident; when one is absent the recovery
            // gate is re-checked on the merged (or unsharded) run.
            bench::note("\nrank/repair recovery gate skipped: the two "
                        "cells it compares are split across shards");
        } else {
            std::fprintf(stderr,
                         "FAIL: repair/rank scenarios missing\n");
            rc = 1;
        }
    } else {
        if (repairRank4->firedKills == 0) {
            std::fprintf(stderr,
                         "FAIL: rank/repair @ 1e-4 fired no kills — "
                         "the recovery gate would be vacuous\n");
            rc = 1;
        }
        const double frac =
            static_cast<double>(repairRank4->deliveredBytes) /
            static_cast<double>(repairRank0->deliveredBytes);
        if (frac < 0.95) {
            std::fprintf(stderr,
                         "FAIL: rank/repair @ 1e-4 delivered %.1f%% "
                         "of fault-free (< 95%%)\n",
                         100.0 * frac);
            rc = 1;
        } else {
            std::printf("\nrank/repair @ 1e-4 delivered %.1f%% of "
                        "fault-free (>= 95%% gate, %llu rank kills)\n",
                        100.0 * frac,
                        static_cast<unsigned long long>(
                            repairRank4->firedKills));
        }
    }

    // Gate 3: masking means what it says — nothing the system claims
    // it delivered may differ from golden, at any rate, ever.
    for (const ScenarioResult &r : results) {
        if (r.corruptDpus > 0) {
            std::fprintf(stderr,
                         "FAIL: %s/%s delivered %u corrupt buffers at "
                         "rate %.1e\n",
                         r.mode.c_str(), r.policy.c_str(),
                         r.corruptDpus, r.rate);
            rc = 1;
        }
    }

    bench::note("\ndeliv %% counts CRC-verified bytes out of "
                "rounds*dpus*bytesPerDpu; masked DPUs deliver 0. "
                "`mask` loses a whole rank/channel forever, `repair` "
                "scrubs, probations and re-admits it.");

    if (!outPath.empty()) {
        if (!writeJson(outPath, quick, shards, shardIndex, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", outPath.c_str());
    }
    return rc;
}

/**
 * @file
 * Paper Fig. 16: normalized end-to-end execution time of the 16
 * memory-intensive PrIM workloads, baseline vs PIM-MMU, broken into
 * DRAM->PIM transfer, PIM kernel, and PIM->DRAM transfer.
 *
 * Kernel time comes from the per-workload analytic model (the paper
 * measures it on real UPMEM hardware; PIM-MMU does not change it), and
 * transfer time from cycle-level simulation — the same hybrid
 * methodology as the paper's section V.
 *
 * Expected shape (paper): transfers are 63.7% of baseline end-to-end
 * time on average (up to 99.7% for BS); PIM-MMU cuts D->P latency 3.3x
 * and P->D 3.8x on average, for a 2.2x average end-to-end speedup
 * (max 4.0x), with TS barely improving.
 */

#include <cmath>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "workloads/prim.hh"

using namespace pimmmu;

namespace {

struct Breakdown
{
    double d2pMs;
    double kernelMs;
    double p2dMs;

    double total() const { return d2pMs + kernelMs + p2dMs; }
};

Breakdown
measure(sim::DesignPoint design, const workloads::PrimWorkload &w,
        unsigned numDpus)
{
    sim::System sys(sim::SystemConfig::paperTable1(design));
    Breakdown b{};
    b.d2pMs = sys.runTransfer(core::XferDirection::DramToPim, numDpus,
                              w.inputBytesPerDpu)
                  .seconds() *
              1e3;
    b.kernelMs =
        static_cast<double>(w.kernel.execTimePs(w.inputBytesPerDpu)) /
        1e9;
    b.p2dMs = sys.runTransfer(core::XferDirection::PimToDram, numDpus,
                              w.outputBytesPerDpu)
                  .seconds() *
              1e3;
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Figure 16",
                  "End-to-end PrIM execution time (normalized to "
                  "baseline), 512 PIM cores");

    const unsigned numDpus = 512;
    Table t({"workload", "base D2P ms", "base kern ms", "base P2D ms",
             "xfer frac%", "mmu D2P ms", "mmu P2D ms", "norm. time",
             "speedup"});

    // One job per (workload, design). A job stays a full measure()
    // call — both transfers run on the same System, so splitting them
    // would change the simulated machine state between them.
    const auto &suite = workloads::primSuite();
    std::vector<Breakdown> cells(suite.size() * 2);
    sim::SweepRunner runner(opts.threads);
    runner.run(cells.size(), [&](std::size_t j) {
        const auto &w = suite[j / 2];
        const sim::DesignPoint design = (j % 2) == 0
                                            ? sim::DesignPoint::Base
                                            : sim::DesignPoint::BaseDHP;
        cells[j] = measure(design, w, numDpus);
    });

    double speedupProd = 1.0, speedupMax = 0.0;
    double d2pGainSum = 0, p2dGainSum = 0, fracSum = 0, fracMax = 0;
    std::size_t cell = 0;
    for (const auto &w : suite) {
        const Breakdown base = cells[cell++];
        const Breakdown mmu = cells[cell++];
        const double frac =
            100.0 * (base.d2pMs + base.p2dMs) / base.total();
        const double speedup = base.total() / mmu.total();
        t.row()
            .cell(w.name)
            .num(base.d2pMs)
            .num(base.kernelMs)
            .num(base.p2dMs)
            .num(frac, 1)
            .num(mmu.d2pMs)
            .num(mmu.p2dMs)
            .num(mmu.total() / base.total())
            .num(speedup);
        speedupProd *= speedup;
        speedupMax = std::max(speedupMax, speedup);
        d2pGainSum += base.d2pMs / mmu.d2pMs;
        p2dGainSum += base.p2dMs / mmu.p2dMs;
        fracSum += frac;
        fracMax = std::max(fracMax, frac);
    }
    bench::printTable(t);

    const double n = static_cast<double>(suite.size());
    std::printf("\nbaseline transfer share of end-to-end time: avg "
                "%.1f%%, max %.1f%% (paper: 63.7%%, 99.7%%)\n",
                fracSum / n, fracMax);
    std::printf("D->P latency reduction: avg %.2fx (paper 3.3x); "
                "P->D: avg %.2fx (paper 3.8x)\n",
                d2pGainSum / n, p2dGainSum / n);
    std::printf("end-to-end speedup: geomean %.2fx, max %.2fx "
                "(paper: avg 2.2x, max 4.0x)\n",
                std::pow(speedupProd, 1.0 / n), speedupMax);
    return bench::finish(opts);
}

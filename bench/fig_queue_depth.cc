/**
 * @file
 * DCE descriptor-ring depth sweep. The paper's DCE accepts transfer
 * descriptors through a ring, so software can enqueue the next transfer
 * while the engine drains the current one; `phase_queue_us` measures
 * the time a descriptor waits behind its predecessors. This bench
 * issues back-to-back transfers at increasing queue depths and reports
 * the queue/issue/drain phase split — depth 1 should show ~zero queue
 * time, deeper rings should pipeline doorbell overhead away.
 *
 * The four depths run as a SweepRunner job list: --threads fans them
 * across workers (each job an independent System with thread-local
 * telemetry), and results print in depth order afterwards, so stdout
 * is byte-identical at any thread count.
 */

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

constexpr unsigned kTransfers = 8;
constexpr unsigned kBanksPerXfer = 8; // 64 DPUs per transfer
constexpr std::uint64_t kBytesPerDpu = 4 * kKiB;

struct DepthResult
{
    std::uint64_t transfers = 0;
    std::uint64_t queued = 0;
    double queueUs = 0.0;
    double issueUs = 0.0;
    double drainUs = 0.0;
    double transferUs = 0.0;
    double wallMs = 0.0;
};

DepthResult
runDepth(unsigned depth)
{
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    sim::System sys(cfg);

    // One op template spanning kBanksPerXfer whole banks.
    std::vector<unsigned> dpuIds;
    for (unsigned bank = 0; bank < kBanksPerXfer; ++bank)
        for (unsigned chip = 0; chip < cfg.pimGeom.chipsPerRank; ++chip)
            dpuIds.push_back(cfg.pimGeom.dpuId(bank, chip));
    std::vector<Addr> hostAddrs;
    const Addr base =
        sys.allocDram(dpuIds.size() * kBytesPerDpu, 64);
    for (std::size_t i = 0; i < dpuIds.size(); ++i)
        hostAddrs.push_back(base + i * kBytesPerDpu);

    unsigned issued = 0, done = 0;
    while (issued < kTransfers) {
        const unsigned wave =
            std::min(depth, kTransfers - issued);
        for (unsigned i = 0; i < wave; ++i) {
            core::PimMmuOp op;
            op.type = core::XferDirection::DramToPim;
            op.sizePerPim = kBytesPerDpu;
            op.dramAddrArr = hostAddrs;
            op.pimIdArr = dpuIds;
            op.pimBaseHeapPtr = 0;
            sys.pimMmu().transfer(op, [&done] { ++done; });
        }
        issued += wave;
        sys.runUntil([&] { return done == issued; }, kTickMax);
    }

    const stats::Group &dce = sys.dce().stats();
    DepthResult r;
    r.transfers = dce.counterValue("transfers");
    r.queued = dce.counterValue("transfers_queued");
    if (const stats::Average *a = dce.findAverage("phase_queue_us"))
        r.queueUs = a->mean();
    if (const stats::Average *a = dce.findAverage("phase_issue_us"))
        r.issueUs = a->mean();
    if (const stats::Average *a = dce.findAverage("phase_drain_us"))
        r.drainUs = a->mean();
    if (const stats::Histogram *h = dce.findHistogram("transfer_us"))
        r.transferUs = h->mean();
    r.wallMs = static_cast<double>(sys.eq().now()) / 1e9;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::banner("DCE queue-depth sweep",
                  "phase_queue_us vs descriptor-ring occupancy, "
                  "8 x 256 KiB DRAM->PIM transfers per depth");

    const unsigned depths[] = {1u, 2u, 4u, 8u};
    constexpr std::size_t kJobs = 4;
    std::vector<DepthResult> results(kJobs);
    sim::SweepRunner runner(opts.threads);
    runner.run(kJobs, [&](std::size_t j) {
        results[j] = runDepth(depths[j]);
    });

    Table t({"depth", "transfers", "queued", "queue us", "issue us",
             "drain us", "e2e us", "total ms"});
    for (std::size_t j = 0; j < kJobs; ++j) {
        const DepthResult &r = results[j];
        t.row()
            .num(std::uint64_t{depths[j]})
            .num(r.transfers)
            .num(r.queued)
            .num(r.queueUs)
            .num(r.issueUs)
            .num(r.drainUs)
            .num(r.transferUs)
            .num(r.wallMs);
    }
    bench::printTable(t);
    bench::note("\nqueued counts descriptors that waited behind an "
                "in-flight transfer; queue us is their average wait.");
    return bench::finish(opts);
}

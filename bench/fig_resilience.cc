/**
 * @file
 * Resilience campaign: fault-rate sweep x recovery policy.
 *
 * Arms the transfer path's rate-based fault sites (link bit flips,
 * past-ECC payload corruption, dropped DCE write completions, permanent
 * PIM-core failures) at rates from 0 to 1e-3 and drives round-trip
 * DRAM->PIM->DRAM transfers under the three campaign policies:
 *
 *   off         no detection, no recovery (the pre-resilience path)
 *   retry       ECC+CRC detection, word/descriptor retry, watchdog
 *   retry+mask  retry plus permanent health-masking of failed cores
 *
 * Every delivered buffer is checked against a golden CRC (health-masked
 * cores excluded), so the table shows exactly what each policy buys:
 * `off` silently corrupts or stalls, `retry` heals transient faults,
 * `retry+mask` additionally survives dead cores. Rate 0 must be
 * bit-identical and cycle-identical across policies (checked, exit 1).
 *
 * The --out JSON (BENCH_resilience.json in CI) records per-scenario
 * outcomes, the resilience.* counters, and the raw fault-site fire
 * counts so campaigns can reconcile detections against injections.
 */

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "resilience/crc.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

using namespace pimmmu;

namespace {

struct PolicyCase
{
    const char *name;
    resilience::Policy policy;
};

struct ScenarioResult
{
    unsigned job = 0; //!< global sweep index (rateIdx * 3 + policyIdx)
    std::string policy;
    double rate = 0.0;
    unsigned rounds = 0;          //!< round trips attempted
    unsigned completedRounds = 0; //!< round trips that ran to the end
    unsigned failedCalls = 0;     //!< calls that reported failure
    unsigned stalls = 0;          //!< event queue drained mid-transfer
    unsigned checkedDpus = 0;
    unsigned corruptDpus = 0; //!< delivered CRC != golden CRC
    unsigned skippedDpus = 0; //!< excluded by the health mask
    Tick firstRoundPs = 0;    //!< first round trip, for rate-0 parity

    // resilience.* counters (0 when no manager is attached).
    std::uint64_t eccCorrected = 0;
    std::uint64_t eccUncorrectable = 0;
    std::uint64_t burstRetries = 0;
    std::uint64_t crcRetries = 0;
    std::uint64_t eccRetries = 0;
    std::uint64_t watchdogFires = 0;
    std::uint64_t dpusMasked = 0;
    std::uint64_t transfersFailed = 0;
    std::uint64_t transfersDegraded = 0;

    // Raw fire counts of the armed sites, for reconciliation.
    std::uint64_t firedFlips = 0;
    std::uint64_t firedDoubleFlips = 0;
    std::uint64_t firedCorrupt = 0;
    std::uint64_t firedDrops = 0;
    std::uint64_t firedKills = 0;
};

/** Deterministic per-(policy, rate) seed: no wall clock, replayable. */
std::uint64_t
scenarioSeed(unsigned policyIdx, double rate)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &rate, sizeof(bits));
    return (bits * 0x9e3779b97f4a7c15ull) ^ (policyIdx + 1);
}

ScenarioResult
runScenario(unsigned policyIdx, const PolicyCase &pc, double rate,
            unsigned rounds, unsigned numDpus,
            std::uint64_t bytesPerDpu)
{
    testing::fault::disarmAll();

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.resilience = pc.policy;
    sim::System sys(cfg);

    std::vector<unsigned> dpuIds(numDpus);
    for (unsigned i = 0; i < numDpus; ++i)
        dpuIds[i] = i;

    const Addr src = sys.allocDram(std::uint64_t{numDpus} * bytesPerDpu);
    const Addr dst = sys.allocDram(std::uint64_t{numDpus} * bytesPerDpu);

    // Per-DPU pattern + golden CRC.
    std::vector<std::uint32_t> golden(numDpus);
    std::vector<std::uint8_t> buf(bytesPerDpu);
    for (unsigned d = 0; d < numDpus; ++d) {
        for (std::uint64_t i = 0; i < bytesPerDpu; ++i) {
            buf[i] = static_cast<std::uint8_t>(
                (d * 131u + i * 29u + 7u) & 0xff);
        }
        sys.mem().store().write(src + std::uint64_t{d} * bytesPerDpu,
                                buf.data(), bytesPerDpu);
        golden[d] = resilience::crc32c(buf.data(), bytesPerDpu);
    }

    // Arm the fault sites. The scale factors keep each failure mode in
    // a regime its recovery mechanism can realistically absorb: single
    // flips are free (SEC), double flips cost a word retransmission,
    // past-ECC corruption a descriptor retransfer, dropped completions
    // a watchdog resync, and kills are rare permanent losses.
    const std::uint64_t seed = scenarioSeed(policyIdx, rate);
    if (rate > 0.0) {
        using testing::fault::armRate;
        armRate("ecc.flip_single_bit", rate, seed ^ 0xa1);
        armRate("ecc.flip_double_bit", rate / 8, seed ^ 0xb2);
        armRate("xfer.corrupt_data", rate / 64, seed ^ 0xc3);
        armRate("dce.drop_write_completion", rate / 16, seed ^ 0xd4);
        armRate("dpu.kill", std::min(1.0, rate * 8), seed ^ 0xe5);
    }

    ScenarioResult r;
    r.policy = pc.name;
    r.rate = rate;
    r.rounds = rounds;

    // One round trip = host src -> MRAM, MRAM -> host dst.
    // 0 = delivered, 1 = call reported failure, 2 = stalled.
    auto doXfer = [&](core::XferDirection dir, Addr hostBase) {
        core::PimMmuOp op;
        op.type = dir;
        op.sizePerPim = bytesPerDpu;
        op.pimIdArr = dpuIds;
        op.pimBaseHeapPtr = 0;
        op.dramAddrArr.resize(numDpus);
        for (unsigned d = 0; d < numDpus; ++d)
            op.dramAddrArr[d] = hostBase + std::uint64_t{d} * bytesPerDpu;

        bool done = false;
        resilience::Status st;
        const auto sync = sys.pimMmu().transferChecked(
            op, [&](const resilience::Status &s) {
                st = s;
                done = true;
            });
        if (!sync.ok()) {
            st = sync;
            done = true;
        }
        if (!done)
            sys.runUntil([&] { return done; });
        if (!done)
            return 2;
        return st.ok() ? 0 : 1;
    };

    for (unsigned round = 0; round < rounds; ++round) {
        const Tick t0 = sys.eq().now();
        const int toPim = doXfer(core::XferDirection::DramToPim, src);
        if (toPim == 2) {
            ++r.stalls;
            break;
        }
        const int fromPim = doXfer(core::XferDirection::PimToDram, dst);
        if (fromPim == 2) {
            ++r.stalls;
            break;
        }
        r.failedCalls += (toPim == 1) + (fromPim == 1);
        if (round == 0)
            r.firstRoundPs = sys.eq().now() - t0;
        ++r.completedRounds;
    }

    // Reconciliation inputs: capture fire counts before disarm resets
    // them, and the resilience counters before the System dies.
    using testing::fault::count;
    r.firedFlips = count("ecc.flip_single_bit");
    r.firedDoubleFlips = count("ecc.flip_double_bit");
    r.firedCorrupt = count("xfer.corrupt_data");
    r.firedDrops = count("dce.drop_write_completion");
    r.firedKills = count("dpu.kill");
    testing::fault::disarmAll();

    resilience::Manager *mgr = sys.resilienceManager();
    if (mgr != nullptr) {
        stats::Group &g = mgr->stats();
        r.eccCorrected = g.counterValue("ecc_corrected");
        r.eccUncorrectable = g.counterValue("ecc_uncorrectable");
        r.burstRetries = g.counterValue("burst_retries");
        r.crcRetries = g.counterValue("crc_retries");
        r.eccRetries = g.counterValue("ecc_retries");
        r.watchdogFires = g.counterValue("watchdog_fires");
        r.dpusMasked = g.counterValue("dpus_masked");
        r.transfersFailed = g.counterValue("transfers_failed");
        r.transfersDegraded = g.counterValue("transfers_degraded");
    }

    // Golden check over everything the system claims it delivered.
    if (r.completedRounds > 0) {
        for (unsigned d = 0; d < numDpus; ++d) {
            if (mgr != nullptr && !mgr->dpuHealthy(d)) {
                ++r.skippedDpus;
                continue;
            }
            sys.mem().store().read(
                dst + std::uint64_t{d} * bytesPerDpu, buf.data(),
                bytesPerDpu);
            ++r.checkedDpus;
            if (resilience::crc32c(buf.data(), bytesPerDpu) !=
                golden[d])
                ++r.corruptDpus;
        }
    }
    return r;
}

/**
 * One scenario per line, each row tagged with its global job index.
 * Sharded invocations write the same row bytes for the jobs they own
 * plus a "shard" header, so tools/benchmerge can splice the partials
 * back into the exact unsharded file.
 */
bool
writeJson(const std::string &path, bool quick, unsigned shards,
          unsigned shardIndex,
          const std::vector<ScenarioResult> &results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"schema\": \"pim-mmu-bench-resilience-v2\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    if (shards > 1) {
        os << "  \"shard\": {\"count\": " << shards
           << ", \"index\": " << shardIndex << "},\n";
    }
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        char buf[896];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"job%u\", \"policy\": \"%s\", "
            "\"rate\": %.1e, "
            "\"rounds\": %u, \"completed_rounds\": %u, "
            "\"failed_calls\": %u, \"stalls\": %u, "
            "\"checked_dpus\": %u, \"corrupt_dpus\": %u, "
            "\"skipped_dpus\": %u, \"first_round_ps\": %llu, "
            "\"counters\": {\"ecc_corrected\": %llu, "
            "\"ecc_uncorrectable\": %llu, \"burst_retries\": %llu, "
            "\"crc_retries\": %llu, \"ecc_retries\": %llu, "
            "\"watchdog_fires\": %llu, \"dpus_masked\": %llu, "
            "\"transfers_failed\": %llu, "
            "\"transfers_degraded\": %llu}, "
            "\"fired\": {\"flips\": %llu, \"double_flips\": %llu, "
            "\"corrupt\": %llu, \"drops\": %llu, "
            "\"kills\": %llu}}%s\n",
            r.job, r.policy.c_str(), r.rate, r.rounds,
            r.completedRounds,
            r.failedCalls, r.stalls, r.checkedDpus, r.corruptDpus,
            r.skippedDpus,
            static_cast<unsigned long long>(r.firstRoundPs),
            static_cast<unsigned long long>(r.eccCorrected),
            static_cast<unsigned long long>(r.eccUncorrectable),
            static_cast<unsigned long long>(r.burstRetries),
            static_cast<unsigned long long>(r.crcRetries),
            static_cast<unsigned long long>(r.eccRetries),
            static_cast<unsigned long long>(r.watchdogFires),
            static_cast<unsigned long long>(r.dpusMasked),
            static_cast<unsigned long long>(r.transfersFailed),
            static_cast<unsigned long long>(r.transfersDegraded),
            static_cast<unsigned long long>(r.firedFlips),
            static_cast<unsigned long long>(r.firedDoubleFlips),
            static_cast<unsigned long long>(r.firedCorrupt),
            static_cast<unsigned long long>(r.firedDrops),
            static_cast<unsigned long long>(r.firedKills),
            i + 1 < results.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string outPath;
    unsigned threads = 1, shards = 1, shardIndex = 0;
    auto numArg = [&](int &i, const char *flag) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s needs a number\n", argv[0],
                         flag);
            std::exit(2);
        }
        return static_cast<unsigned>(std::strtoul(argv[++i], nullptr,
                                                  10));
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            threads = numArg(i, "--threads");
        } else if (std::strcmp(argv[i], "--shards") == 0) {
            shards = numArg(i, "--shards");
        } else if (std::strcmp(argv[i], "--shard-index") == 0) {
            shardIndex = numArg(i, "--shard-index");
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out <path>] "
                         "[--threads <n>] [--shards <n> "
                         "--shard-index <i>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (shards == 0 || shardIndex >= shards) {
        std::fprintf(stderr,
                     "%s: --shard-index must be in [0, --shards)\n",
                     argv[0]);
        return 2;
    }

    bench::banner("Resilience campaign",
                  "fault-rate sweep x recovery policy, round-trip "
                  "DRAM->PIM->DRAM transfers checked against golden "
                  "CRCs");

    const unsigned numDpus = quick ? 16 : 64; // whole banks (8 chips)
    const std::uint64_t bytesPerDpu = quick ? 2 * kKiB : 8 * kKiB;
    const unsigned rounds = quick ? 2 : 3;
    const std::vector<double> rates =
        quick ? std::vector<double>{0.0, 1e-4, 1e-3}
              : std::vector<double>{0.0, 1e-6, 1e-5, 1e-4, 1e-3};

    const PolicyCase policies[] = {
        {"off", resilience::Policy::off()},
        {"retry", resilience::Policy::withRetry()},
        {"retry+mask", resilience::Policy::withRetryAndMask()},
    };

    // Job j = rateIdx * 3 + policyIdx: same order the old serial
    // rates x policies loop ran in. Scenarios are fully independent
    // (each builds its own System and arms its own thread-local fault
    // registry from a per-job seed), so they parallelize across
    // --threads workers and shard across processes without changing a
    // single result byte.
    const std::size_t jobCount = rates.size() * 3;
    std::vector<ScenarioResult> results(jobCount);
    std::vector<char> present(jobCount, 0);
    sim::SweepRunner runner(threads);
    runner.setShard({shards, shardIndex});
    runner.run(jobCount, [&](std::size_t j) {
        const unsigned rateIdx = static_cast<unsigned>(j / 3);
        const unsigned p = static_cast<unsigned>(j % 3);
        results[j] = runScenario(p, policies[p], rates[rateIdx],
                                 rounds, numDpus, bytesPerDpu);
        results[j].job = static_cast<unsigned>(j);
        present[j] = 1;
    });
    // Drop the slots other shards own so every later loop (table,
    // gates, JSON) sees only this process's scenarios, in job order.
    {
        std::vector<ScenarioResult> mine;
        mine.reserve(jobCount);
        for (std::size_t j = 0; j < jobCount; ++j) {
            if (present[j])
                mine.push_back(std::move(results[j]));
        }
        results = std::move(mine);
    }

    Table t({"policy", "rate", "rounds", "stalls", "failed", "corrupt",
             "masked", "ecc corr", "ecc unc", "crc rtry", "wd fires",
             "rt us"});
    for (const ScenarioResult &r : results) {
        char rateBuf[16];
        std::snprintf(rateBuf, sizeof(rateBuf), "%.0e", r.rate);
        t.row()
            .cell(r.policy)
            .cell(rateBuf)
            .num(std::uint64_t{r.completedRounds})
            .num(std::uint64_t{r.stalls})
            .num(std::uint64_t{r.failedCalls})
            .num(std::uint64_t{r.corruptDpus})
            .num(r.dpusMasked)
            .num(r.eccCorrected)
            .num(r.eccUncorrectable)
            .num(r.crcRetries)
            .num(r.watchdogFires)
            .num(static_cast<double>(r.firstRoundPs) / 1e6);
    }
    bench::printTable(t);

    // Rate-0 invariants: all policies deliver golden data in identical
    // simulated time — detection must be free when nothing fires.
    // Under sharding each process checks the scenarios it owns; the CI
    // merge step then verifies the spliced file equals an unsharded
    // run byte for byte, which re-checks cross-shard consistency.
    int rc = 0;
    Tick rate0Ps = 0;
    for (const ScenarioResult &r : results) {
        if (r.rate != 0.0)
            continue;
        if (r.corruptDpus > 0 || r.stalls > 0 || r.failedCalls > 0) {
            std::fprintf(stderr,
                         "FAIL: rate-0 %s corrupted/stalled\n",
                         r.policy.c_str());
            rc = 1;
        }
        if (rate0Ps == 0)
            rate0Ps = r.firstRoundPs;
        else if (r.firstRoundPs != rate0Ps) {
            std::fprintf(stderr,
                         "FAIL: rate-0 %s round trip %llu ps != %llu "
                         "ps (detection must be timing-neutral)\n",
                         r.policy.c_str(),
                         static_cast<unsigned long long>(
                             r.firstRoundPs),
                         static_cast<unsigned long long>(rate0Ps));
            rc = 1;
        }
    }
    // With retry+mask every delivered (non-masked) buffer must be
    // golden at every swept rate.
    for (const ScenarioResult &r : results) {
        if (r.policy == "retry+mask" && r.corruptDpus > 0) {
            std::fprintf(stderr,
                         "FAIL: retry+mask delivered %u corrupt "
                         "buffers at rate %.1e\n",
                         r.corruptDpus, r.rate);
            rc = 1;
        }
    }

    bench::note("\ncorrupt counts delivered buffers whose CRC differs "
                "from golden (masked cores excluded); `off` corrupts "
                "or stalls, `retry` heals transients, `retry+mask` "
                "also survives dead cores.");

    if (!outPath.empty()) {
        if (!writeJson(outPath, quick, shards, shardIndex, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", outPath.c_str());
    }
    return rc;
}

/**
 * @file
 * Paper Fig. 15: the additive ablation study. Starting from the
 * baseline software transfer path (Base), add (D) the DCE as a vanilla
 * DMA, (H) HetMap, and (P) PIM-MS, measuring (a) DRAM<->PIM transfer
 * throughput and (b) energy efficiency, for both directions across
 * transfer sizes.
 *
 * Expected shape (paper): Base+D is often *slower* than Base (vanilla
 * DMA loses to multithreaded AVX); Base+D+H helps DRAM reads but stays
 * bottlenecked on PIM writes; the full Base+D+H+P unlocks the PIM
 * bandwidth (avg 4.1x, max 6.9x) and wins on energy.
 *
 * Ablation flag: pass --fcfs to rerun with a FCFS memory controller
 * (DESIGN.md scheduler ablation).
 */

#include <cstring>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

struct Point
{
    double gbps;
    double gbPerJoule;
};

Point
measure(sim::DesignPoint design, core::XferDirection dir,
        std::uint64_t bytesPerDpu, bool fcfs)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(design);
    if (fcfs)
        cfg.mc.policy = dram::SchedPolicy::Fcfs;
    sim::System sys(cfg);
    const auto stats = sys.runTransfer(dir, 512, bytesPerDpu);
    return {stats.gbps(), stats.gbPerJoule()};
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv, {"--fcfs"});
    bool fcfs = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fcfs") == 0)
            fcfs = true;
    }

    bench::banner("Figure 15",
                  fcfs ? "Ablation (FCFS controller variant)"
                       : "Ablation: Base / +D / +D+H / +D+H+P, "
                         "throughput (a) and energy efficiency (b)");

    const sim::DesignPoint designs[] = {
        sim::DesignPoint::Base, sim::DesignPoint::BaseD,
        sim::DesignPoint::BaseDH, sim::DesignPoint::BaseDHP};

    Table thr({"direction", "KB/PIM-core", "Base GB/s", "+D", "+D+H",
               "+D+H+P", "speedup"});
    Table eff({"direction", "KB/PIM-core", "Base GB/J", "+D", "+D+H",
               "+D+H+P", "eff. gain"});

    // Every (direction, size, design) cell is an independent System:
    // enumerate them as sweep jobs, run (serially unless --threads),
    // then assemble the tables in the original loop order.
    struct Job
    {
        core::XferDirection dir;
        std::uint64_t kb;
        sim::DesignPoint design;
    };
    std::vector<Job> jobs;
    for (core::XferDirection dir : {core::XferDirection::DramToPim,
                                    core::XferDirection::PimToDram}) {
        for (std::uint64_t kb : {4ull, 8ull, 16ull, 32ull, 64ull}) {
            for (int d = 0; d < 4; ++d)
                jobs.push_back({dir, kb, designs[d]});
        }
    }
    std::vector<Point> cells(jobs.size());
    sim::SweepRunner runner(opts.threads);
    runner.run(jobs.size(), [&](std::size_t j) {
        const Job &job = jobs[j];
        cells[j] = measure(job.design, job.dir, job.kb * kKiB, fcfs);
    });

    double speedupSum = 0, speedupMax = 0, effSum = 0, effMax = 0;
    int n = 0;
    std::size_t cell = 0;
    for (core::XferDirection dir : {core::XferDirection::DramToPim,
                                    core::XferDirection::PimToDram}) {
        const char *dirName =
            dir == core::XferDirection::DramToPim ? "DRAM->PIM"
                                                  : "PIM->DRAM";
        for (std::uint64_t kb : {4ull, 8ull, 16ull, 32ull, 64ull}) {
            Point points[4];
            for (int d = 0; d < 4; ++d)
                points[d] = cells[cell++];
            auto &t = thr.row().cell(dirName).num(kb);
            for (int d = 0; d < 4; ++d)
                t.num(points[d].gbps);
            const double speedup = points[3].gbps / points[0].gbps;
            t.num(speedup);
            auto &e = eff.row().cell(dirName).num(kb);
            for (int d = 0; d < 4; ++d)
                e.num(points[d].gbPerJoule);
            const double gain =
                points[3].gbPerJoule / points[0].gbPerJoule;
            e.num(gain);
            speedupSum += speedup;
            speedupMax = std::max(speedupMax, speedup);
            effSum += gain;
            effMax = std::max(effMax, gain);
            ++n;
        }
    }

    bench::note("\n(a) data transfer throughput");
    bench::printTable(thr);
    bench::note("\n(b) energy efficiency (GB moved per joule)");
    bench::printTable(eff);
    std::printf("\nthroughput gain: avg %.2fx max %.2fx "
                "(paper: avg 4.1x, max 6.9x)\n",
                speedupSum / n, speedupMax);
    std::printf("energy-efficiency gain: avg %.2fx max %.2fx "
                "(paper: avg 4.1x, max 6.9x)\n",
                effSum / n, effMax);
    return bench::finish(opts);
}

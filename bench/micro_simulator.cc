/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * address mapping, transpose, and the DRAM controller tick loop.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "dram/controller.hh"
#include "mapping/layout_mapper.hh"
#include "pim/transpose.hh"

using namespace pimmmu;

namespace {

mapping::DramGeometry
table1Geometry()
{
    mapping::DramGeometry g;
    g.channels = 4;
    g.ranksPerChannel = 2;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 16384;
    g.columns = 128;
    return g;
}

void
BM_MapLocality(benchmark::State &state)
{
    auto mapper =
        mapping::makeLocalityCentricMapper(table1Geometry());
    Rng rng(1);
    const std::uint64_t lines =
        mapper->geometry().totalLines();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper->map(rng.below(lines) * 64));
    }
}
BENCHMARK(BM_MapLocality);

void
BM_MapMlpXor(benchmark::State &state)
{
    auto mapper = mapping::makeMlpCentricMapper(table1Geometry());
    Rng rng(1);
    const std::uint64_t lines =
        mapper->geometry().totalLines();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper->map(rng.below(lines) * 64));
    }
}
BENCHMARK(BM_MapMlpXor);

void
BM_MapRoundTrip(benchmark::State &state)
{
    auto mapper = mapping::makeMlpCentricMapper(table1Geometry());
    Rng rng(1);
    const std::uint64_t lines =
        mapper->geometry().totalLines();
    for (auto _ : state) {
        const Addr a = rng.below(lines) * 64;
        benchmark::DoNotOptimize(mapper->unmap(mapper->map(a)));
    }
}
BENCHMARK(BM_MapRoundTrip);

void
BM_Transpose8x8(benchmark::State &state)
{
    std::uint8_t in[64], out[64];
    Rng rng(2);
    for (auto &b : in)
        b = static_cast<std::uint8_t>(rng());
    for (auto _ : state) {
        device::transpose8x8(in, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Transpose8x8);

void
BM_ControllerStream(benchmark::State &state)
{
    // Simulated bytes per wall-second for a saturated channel.
    for (auto _ : state) {
        EventQueue eq;
        dram::MemoryController mc(
            eq, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
            table1Geometry(), 0);
        unsigned outstanding = 0;
        std::uint64_t issued = 0;
        const std::uint64_t total = 4096;
        std::function<void()> pump = [&] {
            while (outstanding < 64 && issued < total) {
                dram::MemRequest req;
                req.coord = mapping::DramCoord{
                    0,
                    0,
                    static_cast<unsigned>(issued % 4),
                    static_cast<unsigned>((issued / 4) % 4),
                    static_cast<unsigned>(issued / 2048),
                    static_cast<unsigned>((issued / 16) % 128)};
                req.onComplete = [&](const dram::MemRequest &) {
                    --outstanding;
                    pump();
                };
                if (!mc.enqueue(std::move(req)))
                    break;
                ++outstanding;
                ++issued;
            }
        };
        pump();
        mc.onDrain([&] { pump(); });
        eq.run();
        benchmark::DoNotOptimize(mc.bytesRead());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096 * 64);
}
BENCHMARK(BM_ControllerStream);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 */

#ifndef PIMMMU_BENCH_BENCH_UTIL_HH
#define PIMMMU_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/table.hh"

namespace pimmmu {
namespace bench {

/** Print a figure banner so bench output is self-describing. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n%s\n", experiment, description);
    std::printf("==================================================="
                "===========\n");
}

inline void
printTable(const Table &table)
{
    std::fputs(table.str().c_str(), stdout);
    std::fflush(stdout);
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

} // namespace bench
} // namespace pimmmu

#endif // PIMMMU_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries:
 * banner/table printing plus the common telemetry CLI
 * (--stats-json <path>, --trace-json <path>, --trace-tracks <globs>,
 * --trace-coalesce-ps <gap>, --attrib-json <path>, --threads <n>,
 * --shards <n> --shard-index <i>).
 */

#ifndef PIMMMU_BENCH_BENCH_UTIL_HH
#define PIMMMU_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

#include "common/table.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace bench {

/** Telemetry output selections shared by every figure bench. */
struct BenchOptions
{
    std::string statsJson; //!< registry JSON path ("" = don't write)
    std::string traceJson; //!< timeline JSON path ("" = don't trace)
    std::string traceTracks; //!< comma-separated track globs ("" = all)
    Tick traceCoalescePs = 0; //!< merge same-name spans within this gap
    std::string attribJson; //!< attribution report path ("" = off)
    unsigned threads = 1; //!< sweep workers (0 = one per hardware thread)
    unsigned shards = 1;     //!< total campaign shards (multi-process)
    unsigned shardIndex = 0; //!< this process's shard id
};

inline void
printUsage(const char *prog,
           std::initializer_list<const char *> passthrough)
{
    std::fprintf(stderr,
                 "usage: %s [--stats-json <path>] "
                 "[--trace-json <path>] [--trace-tracks <globs>] "
                 "[--trace-coalesce-ps <gap>] [--attrib-json <path>] "
                 "[--threads <n>] [--shards <n> --shard-index <i>]",
                 prog);
    for (const char *flag : passthrough)
        std::fprintf(stderr, " [%s]", flag);
    std::fprintf(stderr, "\n");
}

/**
 * Parse the shared telemetry flags. Flags listed in @p passthrough are
 * left for the bench's own loop; anything else unrecognized prints
 * usage and exits 2. Enables the global Timeline when --trace-json is
 * requested (it is off, and free, otherwise).
 */
inline BenchOptions
parseOptions(int argc, char **argv,
             std::initializer_list<const char *> passthrough = {})
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--stats-json") == 0 ||
            std::strcmp(arg, "--trace-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a path\n", argv[0],
                             arg);
                std::exit(2);
            }
            (arg[2] == 's' ? opts.statsJson : opts.traceJson) =
                argv[++i];
            continue;
        }
        if (std::strcmp(arg, "--trace-tracks") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs glob list\n",
                             argv[0], arg);
                std::exit(2);
            }
            opts.traceTracks = argv[++i];
            continue;
        }
        if (std::strcmp(arg, "--attrib-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a path\n", argv[0],
                             arg);
                std::exit(2);
            }
            opts.attribJson = argv[++i];
            continue;
        }
        if (std::strcmp(arg, "--trace-coalesce-ps") == 0 ||
            std::strcmp(arg, "--threads") == 0 ||
            std::strcmp(arg, "--shards") == 0 ||
            std::strcmp(arg, "--shard-index") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a number\n",
                             argv[0], arg);
                std::exit(2);
            }
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0') {
                std::fprintf(stderr, "%s: bad number for %s: %s\n",
                             argv[0], arg, argv[i]);
                std::exit(2);
            }
            if (std::strcmp(arg, "--threads") == 0)
                opts.threads = static_cast<unsigned>(v);
            else if (std::strcmp(arg, "--shards") == 0)
                opts.shards = static_cast<unsigned>(v);
            else if (std::strcmp(arg, "--shard-index") == 0)
                opts.shardIndex = static_cast<unsigned>(v);
            else
                opts.traceCoalescePs = static_cast<Tick>(v);
            continue;
        }
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            printUsage(argv[0], passthrough);
            std::exit(0);
        }
        bool known = false;
        for (const char *flag : passthrough)
            known = known || std::strcmp(arg, flag) == 0;
        if (!known) {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg);
            printUsage(argv[0], passthrough);
            std::exit(2);
        }
    }
    if (opts.shards == 0 || opts.shardIndex >= opts.shards) {
        std::fprintf(stderr,
                     "%s: --shard-index must be in [0, --shards)\n",
                     argv[0]);
        std::exit(2);
    }
    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (!opts.traceJson.empty())
        tl.setEnabled(true);
    if (!opts.traceTracks.empty())
        tl.setTrackFilter(opts.traceTracks);
    if (opts.traceCoalescePs > 0)
        tl.setCoalesceGap(opts.traceCoalescePs);
    // Flow arrows in the timeline are keyed by attribution record id,
    // so tracing implies attribution (the report is still only written
    // when --attrib-json names a path).
    if (!opts.attribJson.empty() || !opts.traceJson.empty())
        telemetry::attribution::Recorder::global().setEnabled(true);
    return opts;
}

/**
 * Write the requested telemetry files; returns the bench's exit code
 * (non-zero if a requested file could not be written).
 */
inline int
finish(const BenchOptions &opts)
{
    int rc = 0;
    if (!opts.statsJson.empty()) {
        if (telemetry::StatsRegistry::global().dumpJsonFile(
                opts.statsJson)) {
            std::printf("\nstats JSON: %s\n", opts.statsJson.c_str());
        } else {
            std::fprintf(stderr, "failed to write %s\n",
                         opts.statsJson.c_str());
            rc = 1;
        }
    }
    if (!opts.traceJson.empty()) {
        if (telemetry::Timeline::global().dumpJsonFile(
                opts.traceJson)) {
            std::printf("trace JSON: %s (load in "
                        "https://ui.perfetto.dev)\n",
                        opts.traceJson.c_str());
        } else {
            std::fprintf(stderr, "failed to write %s\n",
                         opts.traceJson.c_str());
            rc = 1;
        }
    }
    if (!opts.attribJson.empty()) {
        if (telemetry::attribution::Recorder::global().dumpJsonFile(
                opts.attribJson)) {
            std::printf("attribution JSON: %s\n",
                        opts.attribJson.c_str());
        } else {
            std::fprintf(stderr, "failed to write %s\n",
                         opts.attribJson.c_str());
            rc = 1;
        }
    }
    return rc;
}

/** Print a figure banner so bench output is self-describing. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n%s\n", experiment, description);
    std::printf("==================================================="
                "===========\n");
}

inline void
printTable(const Table &table)
{
    std::fputs(table.str().c_str(), stdout);
    std::fflush(stdout);
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

} // namespace bench
} // namespace pimmmu

#endif // PIMMMU_BENCH_BENCH_UTIL_HH

# ctest script: a SweepRunner bench's stdout must be byte-identical
# at any worker count — results are merged in job order, never in
# completion order. Variables: BENCH (binary), BENCH_ARGS (optional,
# ;-list), WORK_DIR.

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_to_file outfile)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                    OUTPUT_FILE ${outfile})
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
    endif()
endfunction()

separate_arguments(args NATIVE_COMMAND "${BENCH_ARGS}")

run_to_file(${WORK_DIR}/t1.out ${BENCH} ${args} --threads 1)
run_to_file(${WORK_DIR}/t3.out ${BENCH} ${args} --threads 3)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/t1.out ${WORK_DIR}/t3.out
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "stdout differs between --threads 1 and --threads 3")
endif()

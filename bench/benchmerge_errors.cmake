# ctest script: benchmerge must reject malformed partials with a
# non-zero exit and a diagnostic naming the offending file and line.
# Generates real quick TLB shards, then corrupts copies two ways:
# truncated mid-file (interrupted campaign run) and a header mutated
# into a different campaign. Variables: FIG_TLB, BENCHMERGE, WORK_DIR.

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_checked)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
    endif()
endfunction()

# benchmerge over ${ARGN} must exit non-zero, and stderr must contain
# both ${needfile} and a "line " reference.
function(expect_reject label needfile)
    execute_process(
        COMMAND ${BENCHMERGE} -o ${WORK_DIR}/rejected.json ${ARGN}
        RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
    if(rc EQUAL 0)
        message(FATAL_ERROR
                "${label}: benchmerge accepted a corrupt shard")
    endif()
    string(FIND "${err}" "${needfile}" at_file)
    string(FIND "${err}" "line " at_line)
    if(at_file EQUAL -1 OR at_line EQUAL -1)
        message(FATAL_ERROR
                "${label}: diagnostic lacks file/line info: ${err}")
    endif()
endfunction()

run_checked(${FIG_TLB} --quick --shards 2 --shard-index 0
            --out ${WORK_DIR}/shard0.json)
run_checked(${FIG_TLB} --quick --shards 2 --shard-index 1
            --out ${WORK_DIR}/shard1.json)

# Sanity: the pristine shards must still splice.
run_checked(${BENCHMERGE} -o ${WORK_DIR}/merged.json
            ${WORK_DIR}/shard0.json ${WORK_DIR}/shard1.json)

file(READ ${WORK_DIR}/shard1.json shard1)

# Case 1: shard truncated mid-file.
string(LENGTH "${shard1}" len)
math(EXPR half "${len} / 2")
string(SUBSTRING "${shard1}" 0 ${half} truncated)
file(WRITE ${WORK_DIR}/truncated.json "${truncated}")
expect_reject(truncated-shard truncated.json
              ${WORK_DIR}/shard0.json ${WORK_DIR}/truncated.json)

# Case 2: header from a different campaign/configuration.
string(REPLACE "\"schema\"" "\"schema_v2\"" mutated "${shard1}")
if(mutated STREQUAL shard1)
    message(FATAL_ERROR "header mutation did not change the shard")
endif()
file(WRITE ${WORK_DIR}/badheader.json "${mutated}")
expect_reject(mismatched-header badheader.json
              ${WORK_DIR}/shard0.json ${WORK_DIR}/badheader.json)

/**
 * @file
 * Serving campaign: open-loop Poisson load x tenant mix x fault rate
 * against the serving::Server admission/scheduling loop.
 *
 * Four tenants each own one rank's worth of DPUs (64 of the 256-DPU
 * fleet) and submit DRAM<->PIM round-trip halves by virtual address
 * through their mmu tenant contexts. An open-loop generator (arrivals
 * fire on schedule whether or not the server is keeping up — the
 * regime where closed-loop harnesses hide overload collapse) drives
 * the server across:
 *
 *   load   low (well under capacity) / high (past saturation)
 *   mix    uniform (equal weights, no quotas) / skewed (one hog
 *          tenant with 60% of arrivals, a tight byte quota, lowest
 *          shed priority; the rest weighted 4:2:1)
 *   fault  rank-kill rate 0 / 1e-5 / 1e-4 (domain.kill_rank scaled
 *          16x per admission probe, plus ECC flip noise) under
 *          Policy::withRepair — scrub/probation re-admission runs
 *          between event bursts, so brownouts are transient
 *
 * Every PimToDram delivery is CRC-verified against golden in the
 * completion callback, so "delivered" is earned. Reported per
 * scenario: delivered/rejected (by reason) / expired counts and
 * bytes, p50/p95/p99 latency, goodput, serving.* counters, fired
 * fault sites, and the conservation verdict.
 *
 * Exit-code gates:
 *   - ledger conservation on every scenario: submitted == delivered +
 *     rejected + expired, nothing outstanding after drain;
 *   - the zero-fault low-load uniform scenario must deliver every
 *     request and leave memory byte-identical (memoryFingerprint) to
 *     a fresh System running the same ops through the direct physical
 *     System::runTransfer path;
 *   - under rank-kill chaos at 1e-4 (low/uniform) the server must
 *     shed rather than stall: >= 1 rank kill actually fired, zero
 *     corrupt deliveries, and >= 95% of admitted bytes delivered;
 *   - no scenario may ever deliver a corrupt buffer.
 *
 * Runs on a SweepRunner job list: --threads fans scenarios across
 * workers; --shards/--shard-index writes partial JSON with global
 * "job<N>" row names for tools/benchmerge.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/random.hh"
#include "resilience/crc.hh"
#include "serving/load_gen.hh"
#include "serving/serving.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "testing/fault_injection.hh"

using namespace pimmmu;

namespace {

constexpr unsigned kTenants = 4;
constexpr unsigned kDpusPerTenant = 64; //!< one Table I rank each
constexpr unsigned kNumDpus = kTenants * kDpusPerTenant;

struct LoadPoint
{
    const char *name;
    double ratePerSec;
};

const LoadPoint kLoads[] = {
    {"low", 8.0e4},
    {"high", 1.5e6},
};

struct MixPoint
{
    const char *name;
};

const MixPoint kMixes[] = {{"uniform"}, {"skewed"}};

struct ScenarioResult
{
    unsigned job = 0;
    std::string load;
    std::string mix;
    double faultRate = 0.0;
    double ratePerSec = 0.0;

    std::uint64_t submitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t rejQuota = 0;
    std::uint64_t rejOverload = 0;
    std::uint64_t rejShed = 0;
    std::uint64_t rejFailed = 0; //!< retries exhausted or budget dry
    std::uint64_t retries = 0;
    std::uint64_t bytesSubmitted = 0;
    std::uint64_t bytesAdmitted = 0;
    std::uint64_t bytesDelivered = 0;
    std::uint64_t verifiedBytes = 0; //!< CRC-checked PimToDram bytes
    unsigned corrupt = 0;
    unsigned scrubPasses = 0;
    bool conserved = false;
    std::string conservationWhy;
    bool identityChecked = false;
    bool identityOk = false;

    double p50Us = 0.0, p95Us = 0.0, p99Us = 0.0;
    Tick horizonPs = 0;
    Tick totalPs = 0;

    std::uint64_t ranksMasked = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t firedKills = 0;
    std::uint64_t firedFlips = 0;

    double goodputGBs() const
    {
        return totalPs == 0
                   ? 0.0
                   : static_cast<double>(bytesDelivered) /
                         (static_cast<double>(totalPs) / 1e12) / 1e9;
    }

    double deliveredFracOfAdmitted() const
    {
        return bytesAdmitted == 0
                   ? 1.0
                   : static_cast<double>(bytesDelivered) /
                         static_cast<double>(bytesAdmitted);
    }
};

std::uint64_t
scenarioSeed(unsigned loadIdx, unsigned mixIdx, double rate)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &rate, sizeof(bits));
    return (bits * 0x9e3779b97f4a7c15ull) ^
           (loadIdx * 32 + mixIdx * 4 + 3);
}

/** Shared per-scenario geometry so the serving run and its direct
 *  replay lay memory out identically. */
struct Layout
{
    std::uint64_t sizePerPim = 0;
    std::uint64_t sliceBytes = 0; //!< per-tenant src/dst slice
    Addr src = 0;
    Addr dst = 0;
    std::vector<std::uint32_t> golden; //!< per-DPU pattern CRC
};

Layout
setUpMemory(sim::System &sys, std::uint64_t sizePerPim)
{
    Layout lay;
    lay.sizePerPim = sizePerPim;
    lay.sliceBytes = std::uint64_t{kDpusPerTenant} * sizePerPim;
    lay.src = sys.allocDram(std::uint64_t{kNumDpus} * sizePerPim,
                            mmu::kPageBytes);
    lay.dst = sys.allocDram(std::uint64_t{kNumDpus} * sizePerPim,
                            mmu::kPageBytes);
    lay.golden.resize(kNumDpus);

    std::vector<std::uint8_t> buf(sizePerPim);
    for (unsigned d = 0; d < kNumDpus; ++d) {
        for (std::uint64_t i = 0; i < sizePerPim; ++i) {
            buf[i] = static_cast<std::uint8_t>(
                (d * 193u + i * 41u + 11u) & 0xff);
        }
        sys.mem().store().write(lay.src + std::uint64_t{d} * sizePerPim,
                                buf.data(), sizePerPim);
        lay.golden[d] = resilience::crc32c(buf.data(), sizePerPim);
    }

    // Prime every tenant's MRAM heap slice with golden so PimToDram
    // requests have data to return from the first arrival on, and a
    // re-admitted rank still holds golden. Direct physical ops; no
    // faults are armed yet.
    for (unsigned t = 0; t < kTenants; ++t) {
        core::PimMmuOp op;
        op.type = core::XferDirection::DramToPim;
        op.sizePerPim = sizePerPim;
        op.pimBaseHeapPtr = std::uint64_t{t} * mmu::kPageBytes;
        op.pimIdArr.resize(kDpusPerTenant);
        op.dramAddrArr.resize(kDpusPerTenant);
        for (unsigned i = 0; i < kDpusPerTenant; ++i) {
            const unsigned d = t * kDpusPerTenant + i;
            op.pimIdArr[i] = d;
            op.dramAddrArr[i] = lay.src + std::uint64_t{d} * sizePerPim;
        }
        sys.runTransfer(op);
    }
    return lay;
}

/** The physical op arrival @p seq of tenant @p t resolves to. */
core::PimMmuOp
physicalOp(const Layout &lay, unsigned t, std::uint64_t seq)
{
    core::PimMmuOp op;
    op.type = (seq % 2 == 0) ? core::XferDirection::DramToPim
                             : core::XferDirection::PimToDram;
    op.sizePerPim = lay.sizePerPim;
    op.pimBaseHeapPtr = std::uint64_t{t} * mmu::kPageBytes;
    const Addr host =
        (op.type == core::XferDirection::DramToPim) ? lay.src : lay.dst;
    op.pimIdArr.resize(kDpusPerTenant);
    op.dramAddrArr.resize(kDpusPerTenant);
    for (unsigned i = 0; i < kDpusPerTenant; ++i) {
        const unsigned d = t * kDpusPerTenant + i;
        op.pimIdArr[i] = d;
        op.dramAddrArr[i] = host + std::uint64_t{d} * lay.sizePerPim;
    }
    return op;
}

/** Replay the whole plan through the direct physical path on a fresh
 *  System and return its memory fingerprint (the identity oracle). */
std::uint64_t
replayDirect(const std::vector<serving::Arrival> &plan,
             std::uint64_t sizePerPim)
{
    testing::fault::disarmAll();
    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.resilience = resilience::Policy::withRepair();
    sim::System sys(cfg);
    const Layout lay = setUpMemory(sys, sizePerPim);
    for (const serving::Arrival &a : plan)
        sys.runTransfer(
            physicalOp(lay, static_cast<unsigned>(a.tenant), a.seq));
    return sys.memoryFingerprint();
}

ScenarioResult
runScenario(unsigned loadIdx, unsigned mixIdx, double faultRate,
            bool quick, bool checkIdentity)
{
    testing::fault::disarmAll();

    const std::uint64_t sizePerPim = quick ? 256 : 512;
    const Tick horizonPs =
        (quick ? Tick{500} : Tick{2000}) * kPsPerUs;
    const Tick deadlinePs = Tick{150} * kPsPerUs;
    const double rate = kLoads[loadIdx].ratePerSec;

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.resilience = resilience::Policy::withRepair();
    sim::System sys(cfg);
    const Layout lay = setUpMemory(sys, sizePerPim);

    serving::ServerConfig scfg;
    scfg.maxQueued = 32;
    scfg.maxInflight = 4;
    scfg.retriesPerRequest = 5;
    scfg.retryBackoffPs = 5 * kPsPerUs;
    scfg.retryBurst = 32.0;
    scfg.retryPerSecond = 2.0e5;
    scfg.quantumBytes = lay.sliceBytes;
    serving::Server server(sys, scfg);

    const std::uint64_t reqBytes = lay.sliceBytes;
    const bool skewed = (mixIdx == 1);
    std::vector<double> arrivalWeights;
    std::vector<Addr> srcVa(kTenants), dstVa(kTenants),
        heapVa(kTenants);
    for (unsigned t = 0; t < kTenants; ++t) {
        serving::TenantConfig tc;
        tc.name = "tenant" + std::to_string(t);
        if (skewed) {
            // Tenant 0 is the hog: 60% of arrivals, a byte quota at
            // ~35% of its low-load offered rate, shed first.
            static const unsigned weights[] = {1, 4, 2, 1};
            static const unsigned prios[] = {0, 2, 1, 1};
            tc.weight = weights[t];
            tc.priority = prios[t];
            if (t == 0) {
                const double offered = kLoads[0].ratePerSec * 0.6 *
                                       static_cast<double>(reqBytes);
                tc.quotaBytesPerSec = 0.35 * offered;
                tc.quotaBurstBytes =
                    8.0 * static_cast<double>(reqBytes);
            }
            arrivalWeights.push_back(t == 0 ? 6.0 : 4.0 / 3.0);
        } else {
            tc.weight = 1;
            tc.priority = 1;
            arrivalWeights.push_back(1.0);
        }
        const serving::TenantHandle h = server.addTenant(tc);
        mmu::TenantContext &ctx = server.tenantContext(h);
        const Addr srcPa = lay.src + std::uint64_t{t} * lay.sliceBytes;
        const Addr dstPa = lay.dst + std::uint64_t{t} * lay.sliceBytes;
        auto must = [&](const resilience::Status &st) {
            if (!st.ok()) {
                std::fprintf(stderr, "tenant map failed: %s\n",
                             st.str().c_str());
                std::exit(2);
            }
        };
        must(ctx.mapWindow(mapping::MemSpace::Dram, srcPa,
                           lay.sliceBytes, srcVa[t]));
        must(ctx.mapWindow(mapping::MemSpace::Dram, dstPa,
                           lay.sliceBytes, dstVa[t]));
        must(ctx.mapWindow(mapping::MemSpace::Pim,
                           std::uint64_t{t} * mmu::kPageBytes,
                           mmu::kPageBytes, heapVa[t]));
    }

    const std::uint64_t seed =
        scenarioSeed(loadIdx, mixIdx, faultRate);
    Rng rng(seed);
    const std::vector<serving::Arrival> plan = serving::poissonPlan(
        rng, rate, horizonPs, arrivalWeights);

    if (faultRate > 0.0) {
        using testing::fault::armRate;
        armRate("ecc.flip_single_bit", faultRate, seed ^ 0xa1);
        // 16x site scale: serving requests touch 64 DPUs each (vs
        // fig_chaos's 256), so the per-call kill odds need the boost
        // for the chaos gate to exercise real rank loss at 1e-4.
        armRate("domain.kill_rank",
                std::min(1.0, faultRate * 16.0), seed ^ 0xe5);
    }

    ScenarioResult r;
    r.job = 0;
    r.load = kLoads[loadIdx].name;
    r.mix = kMixes[mixIdx].name;
    r.faultRate = faultRate;
    r.ratePerSec = rate;
    r.horizonPs = horizonPs;

    std::vector<std::uint8_t> buf(sizePerPim);
    const Tick start = sys.eq().now();
    std::size_t arrivalsFired = 0;

    auto onDone = [&](const serving::Result &res) {
        if (res.outcome != serving::Outcome::Delivered)
            return;
        // Verify PimToDram deliveries against golden right at the
        // completion edge (even seq = DramToPim, odd = PimToDram).
        if (res.tag % 2 == 0)
            return;
        const auto t = static_cast<unsigned>(res.tenant);
        for (unsigned i = 0; i < kDpusPerTenant; ++i) {
            const unsigned d = t * kDpusPerTenant + i;
            sys.mem().store().read(
                lay.dst + std::uint64_t{d} * sizePerPim, buf.data(),
                sizePerPim);
            if (resilience::crc32c(buf.data(), sizePerPim) ==
                lay.golden[d])
                r.verifiedBytes += sizePerPim;
            else
                ++r.corrupt;
        }
    };

    for (const serving::Arrival &a : plan) {
        sys.eq().schedule(start + a.atPs, [&, a] {
            ++arrivalsFired;
            serving::Request req;
            const auto t = static_cast<unsigned>(a.tenant);
            req.dir = (a.seq % 2 == 0)
                          ? core::XferDirection::DramToPim
                          : core::XferDirection::PimToDram;
            req.sizePerPim = sizePerPim;
            req.pimHeapVa = heapVa[t];
            req.deadlinePs = sys.eq().now() + deadlinePs;
            req.tag = a.seq;
            const Addr hostVa =
                (req.dir == core::XferDirection::DramToPim)
                    ? srcVa[t]
                    : dstVa[t];
            req.dpus.resize(kDpusPerTenant);
            req.dramVa.resize(kDpusPerTenant);
            for (unsigned i = 0; i < kDpusPerTenant; ++i) {
                req.dpus[i] = t * kDpusPerTenant + i;
                req.dramVa[i] =
                    hostVa + std::uint64_t{i} * sizePerPim;
            }
            server.submit(a.tenant, std::move(req), onDone);
        });
    }

    // Event loop with scrub interleave: run until all arrivals have
    // fired and the server drained, stopping whenever the health
    // machine has banks out of service so a scrub pass can probe and
    // re-admit them (runScrub drives the event loop itself, so it
    // cannot run nested inside an event).
    resilience::Manager *mgr = sys.resilienceManager();
    const Tick limit = start + horizonPs + Tick{20} * kPsPerMs;
    const unsigned scrubCap = 4000;
    bool scrubEnabled = mgr != nullptr;
    auto allDone = [&] {
        return arrivalsFired == plan.size() && server.idle();
    };
    while (!allDone() && sys.eq().now() < limit) {
        sys.runUntil(
            [&] {
                return allDone() ||
                       (scrubEnabled && mgr->maskedBanks() > 0);
            },
            limit);
        if (allDone() || sys.eq().now() >= limit)
            break;
        if (scrubEnabled && mgr->maskedBanks() > 0) {
            const sim::ScrubReport rep = sys.runScrub();
            ++r.scrubPasses;
            // An idle report with banks still masked would spin
            // without advancing time; stop scrubbing rather than
            // livelock (the gate will show the lost capacity).
            if (rep.idle() || r.scrubPasses >= scrubCap)
                scrubEnabled = false;
        } else {
            break; // queue drained with work outstanding: stuck
        }
    }
    r.totalPs = sys.eq().now() - start;

    using testing::fault::count;
    r.firedKills = count("domain.kill_rank");
    r.firedFlips = count("ecc.flip_single_bit");
    testing::fault::disarmAll();

    const serving::Server::Totals &tot = server.totals();
    r.submitted = tot.submitted;
    r.delivered = tot.delivered;
    r.rejected = tot.rejected;
    r.expired = tot.expired;
    r.bytesSubmitted = tot.bytesSubmitted;
    r.bytesAdmitted = tot.bytesAdmitted;
    r.bytesDelivered = tot.bytesDelivered;
    r.conserved = server.checkConservation(&r.conservationWhy) &&
                  server.idle();
    if (!server.idle() && r.conservationWhy.empty())
        r.conservationWhy = "server not idle at scenario end";

    stats::Group &sg = server.stats();
    r.rejQuota = sg.counterValue("rejected_quota");
    r.rejOverload = sg.counterValue("rejected_overload");
    r.rejShed = sg.counterValue("rejected_shed");
    r.rejFailed = sg.counterValue("rejected_retries_exhausted") +
                  sg.counterValue("rejected_retry_budget");
    r.retries = sg.counterValue("retries");
    if (const stats::Histogram *h = sg.findHistogram("latency_us")) {
        r.p50Us = h->percentile(0.50);
        r.p95Us = h->percentile(0.95);
        r.p99Us = h->percentile(0.99);
    }
    if (mgr != nullptr) {
        r.ranksMasked = mgr->stats().counterValue("ranks_masked");
        r.readmissions = mgr->stats().counterValue("readmissions");
    }

    if (checkIdentity && faultRate == 0.0) {
        r.identityChecked = true;
        const std::uint64_t direct =
            replayDirect(plan, sizePerPim);
        r.identityOk = (r.delivered == r.submitted) &&
                       (sys.memoryFingerprint() == direct);
    }
    return r;
}

bool
writeJson(const std::string &path, bool quick, unsigned shards,
          unsigned shardIndex,
          const std::vector<ScenarioResult> &results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"schema\": \"pim-mmu-bench-serving-v1\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    if (shards > 1) {
        os << "  \"shard\": {\"count\": " << shards
           << ", \"index\": " << shardIndex << "},\n";
    }
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        char buf[1536];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"job%u\", \"load\": \"%s\", "
            "\"mix\": \"%s\", \"fault_rate\": %.1e, "
            "\"rate_per_sec\": %.1e, "
            "\"submitted\": %llu, \"delivered\": %llu, "
            "\"rejected\": %llu, \"expired\": %llu, "
            "\"rejected_quota\": %llu, \"rejected_overload\": %llu, "
            "\"rejected_shed\": %llu, \"rejected_failed\": %llu, "
            "\"retries\": %llu, "
            "\"bytes_submitted\": %llu, \"bytes_admitted\": %llu, "
            "\"bytes_delivered\": %llu, \"verified_bytes\": %llu, "
            "\"delivered_frac_admitted\": %.4f, \"corrupt\": %u, "
            "\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, "
            "\"goodput_gbs\": %.3f, \"scrub_passes\": %u, "
            "\"conserved\": %s, \"identity_checked\": %s, "
            "\"identity_ok\": %s, "
            "\"counters\": {\"ranks_masked\": %llu, "
            "\"readmissions\": %llu}, "
            "\"fired\": {\"rank_kills\": %llu, \"flips\": %llu}, "
            "\"total_ps\": %llu}%s\n",
            r.job, r.load.c_str(), r.mix.c_str(), r.faultRate,
            r.ratePerSec,
            static_cast<unsigned long long>(r.submitted),
            static_cast<unsigned long long>(r.delivered),
            static_cast<unsigned long long>(r.rejected),
            static_cast<unsigned long long>(r.expired),
            static_cast<unsigned long long>(r.rejQuota),
            static_cast<unsigned long long>(r.rejOverload),
            static_cast<unsigned long long>(r.rejShed),
            static_cast<unsigned long long>(r.rejFailed),
            static_cast<unsigned long long>(r.retries),
            static_cast<unsigned long long>(r.bytesSubmitted),
            static_cast<unsigned long long>(r.bytesAdmitted),
            static_cast<unsigned long long>(r.bytesDelivered),
            static_cast<unsigned long long>(r.verifiedBytes),
            r.deliveredFracOfAdmitted(), r.corrupt, r.p50Us, r.p95Us,
            r.p99Us, r.goodputGBs(), r.scrubPasses,
            r.conserved ? "true" : "false",
            r.identityChecked ? "true" : "false",
            r.identityOk ? "true" : "false",
            static_cast<unsigned long long>(r.ranksMasked),
            static_cast<unsigned long long>(r.readmissions),
            static_cast<unsigned long long>(r.firedKills),
            static_cast<unsigned long long>(r.firedFlips),
            static_cast<unsigned long long>(r.totalPs),
            i + 1 < results.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned threads = 1;
    unsigned shards = 1;
    unsigned shardIndex = 0;
    std::string outPath;
    auto numArg = [&](int &i) -> unsigned {
        return static_cast<unsigned>(
            std::strtoul(argv[++i], nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = numArg(i);
        } else if (std::strcmp(argv[i], "--shards") == 0 &&
                   i + 1 < argc) {
            shards = numArg(i);
        } else if (std::strcmp(argv[i], "--shard-index") == 0 &&
                   i + 1 < argc) {
            shardIndex = numArg(i);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--quick] [--out <path>] [--threads <n>] "
                "[--shards <n> --shard-index <i>]\n",
                argv[0]);
            return 2;
        }
    }
    if (shards == 0 || shardIndex >= shards) {
        std::fprintf(stderr,
                     "--shard-index %u out of range for --shards %u\n",
                     shardIndex, shards);
        return 2;
    }

    bench::banner("Serving campaign",
                  "open-loop Poisson load x tenant mix x rank-kill "
                  "rate against the multi-tenant serving loop: "
                  "admission control, deadlines, weighted-fair "
                  "batching, shed-don't-corrupt degradation");

    const std::vector<double> rates =
        quick ? std::vector<double>{0.0, 1e-4}
              : std::vector<double>{0.0, 1e-5, 1e-4};

    // Job order: fault-rate major, then load, then mix, so indices
    // are stable row names across shards.
    const std::size_t jobCount = rates.size() * 4;
    std::vector<ScenarioResult> all(jobCount);
    std::vector<char> present(jobCount, 0);
    sim::SweepRunner runner(threads);
    runner.setShard({shards, shardIndex});
    runner.run(jobCount, [&](std::size_t j) {
        const unsigned rateIdx = static_cast<unsigned>(j / 4);
        const unsigned loadIdx = static_cast<unsigned>((j % 4) / 2);
        const unsigned mixIdx = static_cast<unsigned>(j % 2);
        const bool identity =
            rates[rateIdx] == 0.0 && loadIdx == 0 && mixIdx == 0;
        ScenarioResult r = runScenario(loadIdx, mixIdx,
                                       rates[rateIdx], quick,
                                       identity);
        r.job = static_cast<unsigned>(j);
        all[j] = std::move(r);
        present[j] = 1;
    });

    std::vector<ScenarioResult> results;
    Table t({"load", "mix", "rate", "subm", "deliv", "rej", "exp",
             "shed", "p50us", "p99us", "GB/s", "kills", "readmit",
             "ok"});
    for (std::size_t j = 0; j < jobCount; ++j) {
        if (!present[j])
            continue;
        const ScenarioResult &r = all[j];
        char rateBuf[16];
        std::snprintf(rateBuf, sizeof(rateBuf), "%.0e", r.faultRate);
        t.row()
            .cell(r.load)
            .cell(r.mix)
            .cell(rateBuf)
            .num(r.submitted)
            .num(r.delivered)
            .num(r.rejected)
            .num(r.expired)
            .num(r.rejShed)
            .num(r.p50Us)
            .num(r.p99Us)
            .num(r.goodputGBs())
            .num(r.firedKills)
            .num(r.readmissions)
            .cell(r.conserved ? (r.corrupt == 0 ? "yes" : "CORRUPT")
                              : "LEAK");
        results.push_back(r);
    }
    bench::printTable(t);

    int rc = 0;

    // Gate 1: the ledger balances on every scenario — every request
    // terminated exactly once and nothing was left outstanding.
    for (const ScenarioResult &r : results) {
        if (!r.conserved ||
            r.delivered + r.rejected + r.expired != r.submitted) {
            std::fprintf(stderr,
                         "FAIL: %s/%s @ %.1e conservation: %s\n",
                         r.load.c_str(), r.mix.c_str(), r.faultRate,
                         r.conservationWhy.empty()
                             ? "counts do not add up"
                             : r.conservationWhy.c_str());
            rc = 1;
        }
    }

    // Gate 2: zero-fault low-load uniform serving is byte-identical
    // to the direct physical path (and drops nothing).
    bool sawIdentity = false;
    for (const ScenarioResult &r : results) {
        if (!r.identityChecked)
            continue;
        sawIdentity = true;
        if (!r.identityOk) {
            std::fprintf(
                stderr,
                "FAIL: zero-fault low-load serving is not identical "
                "to direct runTransfer (delivered %llu of %llu)\n",
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.submitted));
            rc = 1;
        }
    }
    if (!sawIdentity && shards == 1) {
        std::fprintf(stderr, "FAIL: identity scenario missing\n");
        rc = 1;
    }

    // Gate 3: rank-kill chaos at 1e-4 (low/uniform): the server sheds
    // rather than stalls — kills actually fired, nothing corrupt,
    // >= 95% of admitted bytes delivered.
    const ScenarioResult *chaosCell = nullptr;
    for (const ScenarioResult &r : results) {
        if (r.load == "low" && r.mix == "uniform" &&
            r.faultRate == 1e-4)
            chaosCell = &r;
    }
    if (chaosCell == nullptr) {
        if (shards > 1) {
            bench::note("\nchaos-degradation gate skipped: its cell "
                        "is in another shard");
        } else {
            std::fprintf(stderr,
                         "FAIL: chaos scenario missing\n");
            rc = 1;
        }
    } else {
        if (chaosCell->firedKills == 0) {
            std::fprintf(stderr,
                         "FAIL: chaos cell fired no rank kills — the "
                         "degradation gate would be vacuous\n");
            rc = 1;
        }
        if (chaosCell->deliveredFracOfAdmitted() < 0.95) {
            std::fprintf(
                stderr,
                "FAIL: chaos cell delivered %.1f%% of admitted bytes "
                "(< 95%%)\n",
                100.0 * chaosCell->deliveredFracOfAdmitted());
            rc = 1;
        } else {
            std::printf("\nchaos cell delivered %.1f%% of admitted "
                        "bytes under %llu rank kills (>= 95%% gate)\n",
                        100.0 * chaosCell->deliveredFracOfAdmitted(),
                        static_cast<unsigned long long>(
                            chaosCell->firedKills));
        }
    }

    // Gate 4: no scenario ever delivers a corrupt buffer.
    for (const ScenarioResult &r : results) {
        if (r.corrupt > 0) {
            std::fprintf(stderr,
                         "FAIL: %s/%s @ %.1e delivered %u corrupt "
                         "buffers\n",
                         r.load.c_str(), r.mix.c_str(), r.faultRate,
                         r.corrupt);
            rc = 1;
        }
    }

    bench::note("\n'deliv' is requests completed and (for PimToDram) "
                "CRC-verified; 'rej' splits into quota / overload / "
                "shed / failed in the JSON. Expiries never cancel a "
                "descriptor mid-engine — they are accounted and the "
                "late completion discarded.");

    if (!outPath.empty()) {
        if (!writeJson(outPath, quick, shards, shardIndex, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", outPath.c_str());
    }
    return rc;
}

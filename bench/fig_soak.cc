/**
 * @file
 * Soak campaign: minutes of simulated time and >= 10^6 Poisson
 * arrivals through serving::Server with periodic crash-consistent
 * checkpoints and injected crashes.
 *
 * Four tenants submit DRAM<->PIM round-trip halves by virtual address
 * in the fast-forward plane (functionally exact, so payloads and the
 * ledger are real even at soak scale). The horizon is cut into
 * windows; each window's arrivals run to a fully drained event queue,
 * then the whole system — BackingStore pages, per-DPU MRAM, MMU page
 * tables and TLB, resilience health machines, the serving ledger, and
 * every stats group — is checkpointed to disk with the window cursor
 * in the USER section.
 *
 * The campaign runs twice over the same arrival plan:
 *   reference   uninterrupted, checkpoints taken but never used;
 *   crashed     at seeded window boundaries the System and Server are
 *               destroyed outright (the in-process analogue of
 *               SIGKILL between atomic snapshot commits), the stats
 *               registry is wiped, and the run resumes from the
 *               latest snapshot. The first crash also verifies that a
 *               torn snapshot (fault site ckpt.truncate_file) is
 *               rejected with a structured error before the good one
 *               is loaded.
 *
 * Exit-code gates:
 *   - ledger conservation on both runs, zero requests outstanding;
 *   - every submitted request delivered (no faults are armed), with
 *     sampled CRC verification of PimToDram payloads against golden:
 *     zero corrupt deliveries;
 *   - counter monotonicity: totals never move backwards across a
 *     crash/restore edge;
 *   - zero drift: the crashed run's final sim clock, executed-event
 *     count, memory fingerprint, stats fingerprint, and ledger totals
 *     are bit- and cycle-identical to the reference run;
 *   - the torn snapshot is rejected as snapshot_corrupt;
 *   - full mode covers >= 10^6 arrivals and >= 2 simulated minutes.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "checkpoint/checkpoint.hh"
#include "checkpoint/format.hh"
#include "common/random.hh"
#include "mmu/tenant_context.hh"
#include "resilience/crc.hh"
#include "serving/load_gen.hh"
#include "serving/serving.hh"
#include "sim/system.hh"
#include "telemetry/stats_registry.hh"
#include "testing/fault_injection.hh"

using namespace pimmmu;

namespace {

constexpr unsigned kTenants = 4;
constexpr unsigned kDpusPerReq = 8;
constexpr std::uint64_t kBytesPerDpu = 4 * kKiB;
constexpr std::uint64_t kReqBytes = kDpusPerReq * kBytesPerDpu;

struct Scale
{
    double ratePerSec;
    Tick horizonPs;
    unsigned windows;
    unsigned crashes;
    unsigned verifyEvery; //!< CRC-check every Nth PimToDram delivery
};

Scale
scaleFor(bool quick)
{
    if (quick) {
        // ~20k arrivals over 2 simulated seconds, all verified.
        return Scale{1.0e4, Tick{2} * 1'000'000'000'000ull, 8, 3, 1};
    }
    // >= 10^6 arrivals over 2 simulated minutes.
    return Scale{1.0e4, Tick{120} * 1'000'000'000'000ull, 60, 5, 4};
}

struct RunResult
{
    Tick simPs = 0;
    std::uint64_t executed = 0;
    std::uint64_t memFnv = 0;
    std::uint64_t statsFnv = 0;
    serving::Server::Totals totals;

    std::uint64_t arrivals = 0;
    std::uint64_t verifiedDeliveries = 0;
    std::uint64_t verifiedBytes = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpointBytes = 0;
    unsigned crashesInjected = 0;
    unsigned monotonicityViolations = 0;
    bool tornRejected = true; //!< vacuously true when no crash happens
    bool conserved = false;
    std::string conservationWhy;
};

/** System + Server + tenant windows that can be torn down and rebuilt
 *  around a snapshot. rebuild() registers no tenants: restore()
 *  recreates them from the SERV/PMRT sections. */
struct Harness
{
    serving::ServerConfig scfg;
    std::unique_ptr<sim::System> sys;
    std::unique_ptr<serving::Server> server;

    struct Window
    {
        Addr srcPa = 0, dstPa = 0;
        Addr srcVa = 0, dstVa = 0, heapVa = 0;
    };
    std::vector<Window> win;
    std::vector<std::uint32_t> golden; //!< per-DPU pattern CRC

    explicit Harness(const serving::ServerConfig &sc) : scfg(sc)
    {
        rebuild();
    }

    sim::SystemConfig
    sysConfig() const
    {
        sim::SystemConfig cfg =
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
        cfg.resilience = resilience::Policy::withRetryAndMask();
        return cfg;
    }

    void
    rebuild()
    {
        server.reset();
        sys.reset();
        telemetry::StatsRegistry::global().clear();
        sys = std::make_unique<sim::System>(sysConfig());
        server = std::make_unique<serving::Server>(*sys, scfg);
    }

    /** Register tenants, map their windows, seed golden payloads, and
     *  prime MRAM — the pre-soak setup that runs exactly once (never
     *  after a crash: restore() rebuilds all of it from the file). */
    void
    setUp()
    {
        golden.resize(kTenants * kDpusPerReq);
        for (unsigned t = 0; t < kTenants; ++t) {
            serving::TenantConfig tc;
            tc.name = "tenant" + std::to_string(t);
            const serving::TenantHandle h = server->addTenant(tc);
            const std::uint64_t winBytes =
                ((kReqBytes + mmu::kPageBytes - 1) / mmu::kPageBytes) *
                mmu::kPageBytes;
            Window w;
            w.srcPa = sys->allocDram(winBytes, mmu::kPageBytes);
            w.dstPa = sys->allocDram(winBytes, mmu::kPageBytes);
            mmu::TenantContext &ctx = server->tenantContext(h);
            auto must = [](const resilience::Status &st) {
                if (!st.ok()) {
                    std::fprintf(stderr, "tenant map failed: %s\n",
                                 st.str().c_str());
                    std::exit(2);
                }
            };
            must(ctx.mapWindow(mapping::MemSpace::Dram, w.srcPa,
                               winBytes, w.srcVa));
            must(ctx.mapWindow(mapping::MemSpace::Dram, w.dstPa,
                               winBytes, w.dstVa));
            must(ctx.mapWindow(mapping::MemSpace::Pim,
                               std::uint64_t{h} * mmu::kPageBytes,
                               mmu::kPageBytes, w.heapVa));
            win.push_back(w);

            std::vector<std::uint8_t> buf(kBytesPerDpu);
            for (unsigned i = 0; i < kDpusPerReq; ++i) {
                const unsigned d = t * kDpusPerReq + i;
                for (std::uint64_t b = 0; b < kBytesPerDpu; ++b)
                    buf[b] = static_cast<std::uint8_t>(
                        (d * 193u + b * 41u + 11u) & 0xff);
                sys->mem().store().write(
                    w.srcPa + std::uint64_t{i} * kBytesPerDpu,
                    buf.data(), buf.size());
                golden[d] = resilience::crc32c(buf.data(), buf.size());
            }
        }

        // Prime every tenant's MRAM slice so PimToDram halves return
        // golden from the first arrival on. Direct physical ops.
        for (unsigned t = 0; t < kTenants; ++t) {
            core::PimMmuOp op;
            op.type = core::XferDirection::DramToPim;
            op.sizePerPim = kBytesPerDpu;
            op.pimBaseHeapPtr = std::uint64_t{t} * mmu::kPageBytes;
            op.pimIdArr.resize(kDpusPerReq);
            op.dramAddrArr.resize(kDpusPerReq);
            for (unsigned i = 0; i < kDpusPerReq; ++i) {
                op.pimIdArr[i] = t * kDpusPerReq + i;
                op.dramAddrArr[i] =
                    win[t].srcPa + std::uint64_t{i} * kBytesPerDpu;
            }
            sys->runTransfer(op);
        }
    }

    serving::Request
    makeReq(unsigned t, std::uint64_t seq)
    {
        serving::Request req;
        req.dir = (seq % 2 == 0) ? core::XferDirection::DramToPim
                                 : core::XferDirection::PimToDram;
        req.sizePerPim = kBytesPerDpu;
        req.pimHeapVa = win[t].heapVa;
        req.deadlinePs = kTickMax;
        req.tag = seq;
        const Addr host = (req.dir == core::XferDirection::DramToPim)
                              ? win[t].srcVa
                              : win[t].dstVa;
        req.dpus.resize(kDpusPerReq);
        req.dramVa.resize(kDpusPerReq);
        for (unsigned i = 0; i < kDpusPerReq; ++i) {
            req.dpus[i] = t * kDpusPerReq + i;
            req.dramVa[i] = host + std::uint64_t{i} * kBytesPerDpu;
        }
        return req;
    }
};

std::uint64_t
fileBytes(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        return 0;
    std::fseek(fp, 0, SEEK_END);
    const long n = std::ftell(fp);
    std::fclose(fp);
    return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

/**
 * One full campaign pass over @p plan. @p crashWindows lists window
 * indices after whose checkpoint the run is killed and restored;
 * empty = uninterrupted reference.
 */
RunResult
runCampaign(const std::vector<serving::Arrival> &plan,
            const Scale &scale,
            const std::vector<unsigned> &crashWindows,
            const std::string &ckptPath)
{
    RunResult r;
    r.arrivals = plan.size();

    serving::ServerConfig scfg;
    scfg.maxQueued = 1024;
    scfg.maxInflight = 8;
    Harness h(scfg);
    h.setUp();
    // Fast-forward from here on: functionally exact, soak-scalable.
    h.sys->setPlane(sim::Plane::FastForward);

    std::uint64_t delivered = 0;
    std::vector<std::uint8_t> buf(kBytesPerDpu);
    auto onDone = [&](const serving::Result &res) {
        if (res.outcome != serving::Outcome::Delivered)
            return;
        ++delivered;
        if (res.tag % 2 == 0) // DramToPim halves are not read back
            return;
        if (scale.verifyEvery > 1 &&
            (res.tag / 2) % scale.verifyEvery != 0)
            return;
        const auto t = static_cast<unsigned>(res.tenant);
        ++r.verifiedDeliveries;
        for (unsigned i = 0; i < kDpusPerReq; ++i) {
            const unsigned d = t * kDpusPerReq + i;
            h.sys->mem().store().read(
                h.win[t].dstPa + std::uint64_t{i} * kBytesPerDpu,
                buf.data(), buf.size());
            if (resilience::crc32c(buf.data(), buf.size()) ==
                h.golden[d])
                r.verifiedBytes += kBytesPerDpu;
            else
                ++r.corrupt;
        }
    };

    // Window w owns arrivals with atPs in [w, w+1) * horizon/windows.
    auto windowOf = [&](Tick atPs) -> unsigned {
        const Tick span = scale.horizonPs / scale.windows;
        const auto w = static_cast<unsigned>(atPs / span);
        return std::min(w, scale.windows - 1);
    };
    std::vector<std::size_t> windowStart(scale.windows + 1,
                                         plan.size());
    for (std::size_t i = plan.size(); i-- > 0;)
        windowStart[windowOf(plan[i].atPs)] = i;
    windowStart[scale.windows] = plan.size();
    for (std::size_t w = scale.windows; w-- > 0;) {
        if (windowStart[w] == plan.size())
            windowStart[w] = windowStart[w + 1];
    }

    std::uint64_t deliveredFloor = 0;
    unsigned w = 0;
    while (w < scale.windows) {
        for (std::size_t i = windowStart[w]; i < windowStart[w + 1];
             ++i) {
            const serving::Arrival &a = plan[i];
            h.sys->eq().schedule(a.atPs, [&h, &onDone, a] {
                h.server->submit(
                    a.tenant,
                    h.makeReq(static_cast<unsigned>(a.tenant), a.seq),
                    onDone);
            });
        }
        if (!h.sys->eq().run()) {
            r.conservationWhy = "event queue failed to drain";
            return r;
        }
        ++w;
        serialize::ByteSink cursor;
        cursor.u64(w);
        cursor.u64(delivered);
        const resilience::Status st = checkpoint::save(
            *h.sys, h.server.get(), cursor.data(), ckptPath);
        if (!st.ok()) {
            r.conservationWhy = "checkpoint failed: " + st.str();
            return r;
        }
        ++r.checkpoints;
        r.checkpointBytes += fileBytes(ckptPath);

        if (std::find(crashWindows.begin(), crashWindows.end(), w) !=
            crashWindows.end()) {
            deliveredFloor = h.server->totals().delivered;

            // First crash only: prove a torn snapshot is rejected
            // with a structured error before loading the good one.
            if (r.crashesInjected == 0) {
                const std::string torn = ckptPath + ".torn";
                {
                    testing::fault::Armed guard("ckpt.truncate_file");
                    checkpoint::save(*h.sys, h.server.get(),
                                     cursor.data(), torn);
                }
                h.rebuild();
                const resilience::Status bad = checkpoint::restore(
                    *h.sys, h.server.get(), nullptr, torn);
                r.tornRejected =
                    bad.code == resilience::ErrorCode::SnapshotCorrupt;
                std::remove(torn.c_str());
                // The failed restore may have partially overwritten
                // state; rebuild again before the real restore.
            }
            h.rebuild();
            ++r.crashesInjected;

            std::vector<std::uint8_t> blob;
            const resilience::Status rs = checkpoint::restore(
                *h.sys, h.server.get(), &blob, ckptPath);
            if (!rs.ok()) {
                r.conservationWhy = "restore failed: " + rs.str();
                return r;
            }
            serialize::ByteSource src(blob.data(), blob.size());
            w = static_cast<unsigned>(src.u64());
            delivered = src.u64();
            if (h.server->totals().delivered < deliveredFloor)
                ++r.monotonicityViolations;
        }
    }

    r.conserved =
        h.server->checkConservation(&r.conservationWhy) &&
        h.server->idle();
    if (!h.server->idle() && r.conservationWhy.empty())
        r.conservationWhy = "server not idle at campaign end";
    r.totals = h.server->totals();
    r.simPs = h.sys->eq().now();
    r.executed = h.sys->eq().executed();
    r.memFnv = h.sys->memoryFingerprint();
    r.statsFnv = checkpoint::statsFingerprint();
    return r;
}

bool
writeJson(const std::string &path, bool quick, const Scale &scale,
          const std::vector<unsigned> &crashWindows,
          const RunResult &ref, const RunResult &crashed,
          bool identityOk, bool pass)
{
    std::ofstream os(path);
    if (!os)
        return false;
    auto runJson = [&os](const char *name, const RunResult &r) {
        os << "    {\"name\": \"" << name << "\", "
           << "\"arrivals\": " << r.arrivals << ", "
           << "\"sim_ps\": " << r.simPs << ", "
           << "\"executed_events\": " << r.executed << ", "
           << "\"memory_fnv\": " << r.memFnv << ", "
           << "\"stats_fnv\": " << r.statsFnv << ", "
           << "\"submitted\": " << r.totals.submitted << ", "
           << "\"delivered\": " << r.totals.delivered << ", "
           << "\"rejected\": " << r.totals.rejected << ", "
           << "\"expired\": " << r.totals.expired << ", "
           << "\"bytes_delivered\": " << r.totals.bytesDelivered
           << ", "
           << "\"checkpoints\": " << r.checkpoints << ", "
           << "\"checkpoint_bytes\": " << r.checkpointBytes << ", "
           << "\"crashes\": " << r.crashesInjected << ", "
           << "\"verified_deliveries\": " << r.verifiedDeliveries
           << ", "
           << "\"verified_bytes\": " << r.verifiedBytes << ", "
           << "\"corrupt\": " << r.corrupt << ", "
           << "\"monotonicity_violations\": "
           << r.monotonicityViolations << ", "
           << "\"torn_rejected\": "
           << (r.tornRejected ? "true" : "false") << ", "
           << "\"conserved\": " << (r.conserved ? "true" : "false")
           << "}";
    };
    os << "{\n  \"schema\": \"pim-mmu-bench-soak-v1\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"rate_per_sec\": " << scale.ratePerSec << ",\n";
    os << "  \"horizon_ps\": " << scale.horizonPs << ",\n";
    os << "  \"windows\": " << scale.windows << ",\n";
    os << "  \"verify_every\": " << scale.verifyEvery << ",\n";
    os << "  \"crash_windows\": [";
    for (std::size_t i = 0; i < crashWindows.size(); ++i)
        os << (i ? ", " : "") << crashWindows[i];
    os << "],\n  \"runs\": [\n";
    runJson("reference", ref);
    os << ",\n";
    runJson("crashed", crashed);
    os << "\n  ],\n";
    os << "  \"identity_ok\": " << (identityOk ? "true" : "false")
       << ",\n";
    os << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string outPath;
    std::string ckptPath = "soak_checkpoint.ckpt";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--ckpt") == 0 &&
                   i + 1 < argc) {
            ckptPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out <path>] "
                         "[--ckpt <path>]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("Soak campaign",
                  "minutes of simulated Poisson serving load with "
                  "periodic crash-consistent checkpoints and injected "
                  "crashes; the restored run must be bit- and "
                  "cycle-identical to the uninterrupted one");

    const Scale scale = scaleFor(quick);
    Rng rng(0x50414b31ull); // fixed campaign seed
    const std::vector<double> weights(kTenants, 1.0);
    const std::vector<serving::Arrival> plan = serving::poissonPlan(
        rng, scale.ratePerSec, scale.horizonPs, weights);

    // Crash points: distinct window boundaries drawn from the same
    // seeded stream, never the last window (a crash after the final
    // checkpoint would have nothing left to replay).
    std::vector<unsigned> crashWindows;
    while (crashWindows.size() < scale.crashes) {
        const auto w = static_cast<unsigned>(
            1 + rng.below(scale.windows - 1));
        if (std::find(crashWindows.begin(), crashWindows.end(), w) ==
            crashWindows.end())
            crashWindows.push_back(w);
    }
    std::sort(crashWindows.begin(), crashWindows.end());

    std::printf("  arrivals planned: %zu over %.1f sim-seconds, "
                "%u windows, crashes at:",
                plan.size(),
                static_cast<double>(scale.horizonPs) / 1e12,
                scale.windows);
    for (unsigned w : crashWindows)
        std::printf(" %u", w);
    std::printf("\n\n");

    const RunResult ref =
        runCampaign(plan, scale, {}, ckptPath + ".ref");
    const RunResult crashed =
        runCampaign(plan, scale, crashWindows, ckptPath);
    std::remove((ckptPath + ".ref").c_str());
    std::remove(ckptPath.c_str());

    const bool identityOk =
        crashed.simPs == ref.simPs &&
        crashed.executed == ref.executed &&
        crashed.memFnv == ref.memFnv &&
        crashed.statsFnv == ref.statsFnv &&
        crashed.totals.submitted == ref.totals.submitted &&
        crashed.totals.delivered == ref.totals.delivered &&
        crashed.totals.bytesDelivered == ref.totals.bytesDelivered;

    Table t({"run", "arrivals", "deliv", "ckpts", "crashes",
             "verified", "corrupt", "mono", "conserved"});
    auto row = [&t](const char *name, const RunResult &r) {
        t.row()
            .cell(name)
            .num(r.arrivals)
            .num(r.totals.delivered)
            .num(r.checkpoints)
            .num(std::uint64_t{r.crashesInjected})
            .num(r.verifiedDeliveries)
            .num(r.corrupt)
            .num(std::uint64_t{r.monotonicityViolations})
            .cell(r.conserved ? "yes" : "LEAK");
    };
    row("reference", ref);
    row("crashed", crashed);
    bench::printTable(t);

    bool pass = true;
    auto gate = [&pass](bool ok, const char *what) {
        std::printf("  gate %-38s %s\n", what, ok ? "ok" : "FAIL");
        pass = pass && ok;
    };
    gate(ref.conserved, "reference ledger conservation");
    gate(crashed.conserved, "crashed ledger conservation");
    gate(ref.totals.delivered == ref.totals.submitted &&
             ref.totals.submitted == plan.size(),
         "every arrival delivered (reference)");
    gate(ref.corrupt == 0 && crashed.corrupt == 0,
         "zero corrupt deliveries");
    gate(crashed.monotonicityViolations == 0,
         "counter monotonicity across restores");
    gate(crashed.crashesInjected >= scale.crashes,
         "crash count reached");
    gate(crashed.tornRejected, "torn snapshot rejected");
    gate(identityOk, "zero drift vs uninterrupted run");
    if (!quick) {
        gate(plan.size() >= 1'000'000, ">= 1e6 arrivals");
        gate(scale.horizonPs >= Tick{120} * 1'000'000'000'000ull,
             ">= 2 simulated minutes");
    }
    if (!ref.conservationWhy.empty())
        std::printf("  reference: %s\n", ref.conservationWhy.c_str());
    if (!crashed.conservationWhy.empty())
        std::printf("  crashed:   %s\n",
                    crashed.conservationWhy.c_str());

    if (!outPath.empty() &&
        !writeJson(outPath, quick, scale, crashWindows, ref, crashed,
                   identityOk, pass)) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 2;
    }
    std::printf("\n  %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

# One binary per paper table/figure (see DESIGN.md experiment index).
# Included from the top-level CMakeLists so ${CMAKE_BINARY_DIR}/bench
# contains only the runnable binaries:  for b in build/bench/*; do $b; done
function(add_fig_bench name)
    add_executable(${name} bench/${name}.cc)
    target_link_libraries(${name} PRIVATE pimmmu_sim pimmmu_workloads)
    target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

add_fig_bench(table1_config)
add_fig_bench(fig04_cpu_util_power)
add_fig_bench(fig06_channel_breakdown)
add_fig_bench(fig08_mapping_throughput)
add_fig_bench(fig13_contention)
add_fig_bench(fig14_memcpy_scaling)
add_fig_bench(fig15_ablation)
add_fig_bench(fig16_prim_endtoend)
add_fig_bench(overhead_area)
add_fig_bench(fig_queue_depth)

# Smoke entry so the descriptor-ring depth > 1 path runs in every ctest
# invocation, not only in the unit tests.
add_test(NAME fig_queue_depth_smoke COMMAND fig_queue_depth)

# The depth sweep runs on a SweepRunner job list; its stdout must be
# byte-identical at any --threads count (results merge in job order).
add_test(NAME fig_queue_depth_threads_identity
    COMMAND ${CMAKE_COMMAND}
        -DBENCH=$<TARGET_FILE:fig_queue_depth>
        -DWORK_DIR=${CMAKE_BINARY_DIR}/queue_depth_threads
        -P ${CMAKE_SOURCE_DIR}/bench/threads_identity.cmake)

# Resilience campaign (fault-rate sweep x recovery policy). The smoke
# entry runs the scaled-down sweep and enforces the campaign's own
# invariants (rate 0 bit- and cycle-identical, retry+mask delivers
# golden data); the JSON lands in the build dir for the CI artifact.
add_fig_bench(fig_resilience)
add_test(NAME fig_resilience_smoke
         COMMAND fig_resilience --quick --out BENCH_resilience.json)

# Chaos campaign (correlated rank/channel kills x repair policy). The
# smoke entry enforces the campaign gates at the scaled-down sweep:
# rate 0 bit- and cycle-identical to a resilience-disabled baseline,
# repair recovers correlated-rank kills to >= 95% of fault-free
# delivery, and no delivered buffer is ever corrupt.
add_fig_bench(fig_chaos)
add_test(NAME fig_chaos_smoke
         COMMAND fig_chaos --quick --out BENCH_chaos.json)

# Serving campaign (open-loop Poisson load x tenant mix x rank-kill
# rate against the multi-tenant serving loop). The smoke entry runs
# the scaled-down sweep and enforces the serving gates: ledger
# conservation everywhere, zero-fault low-load byte-identity with the
# direct physical path, shed-don't-corrupt degradation under rank
# kills (>= 95% of admitted bytes delivered), zero corrupt deliveries.
add_fig_bench(fig_serving)
target_link_libraries(fig_serving PRIVATE pimmmu_serving)
add_test(NAME fig_serving_smoke
         COMMAND fig_serving --quick --out BENCH_serving.json)

# Soak campaign (crash-consistent checkpoint/restore under sustained
# Poisson serving load). The smoke entry runs the scaled-down campaign
# and enforces the soak gates: ledger conservation on both runs, zero
# corrupt deliveries, counter monotonicity across restores, torn
# snapshots rejected, and zero drift — the crashed-and-restored run
# bit- and cycle-identical to the uninterrupted reference.
add_fig_bench(fig_soak)
target_link_libraries(fig_soak PRIVATE pimmmu_serving pimmmu_checkpoint)
add_test(NAME fig_soak_smoke
         COMMAND fig_soak --quick --out BENCH_soak.json)

# Virtual-memory campaign (TLB entries x page size x tenant count).
# The smoke entry runs the scaled-down sweep and enforces the VM
# layer's non-negotiable gate: an identity-mapped single-tenant
# zero-cost-TLB run must be bit- and cycle-identical (events, sim_ps,
# component stats, payload bytes) to the direct-physical path.
add_fig_bench(fig_tlb)
add_test(NAME fig_tlb_smoke
         COMMAND fig_tlb --quick --out BENCH_tlb.json)

# Shard/merge round-trip at smoke scale: two-shard quick TLB campaign
# spliced by tools/benchmerge must equal the unsharded output byte for
# byte (the same check CI runs on the resilience campaign).
add_test(NAME shard_merge_roundtrip
    COMMAND ${CMAKE_COMMAND}
        -DFIG_TLB=$<TARGET_FILE:fig_tlb>
        -DBENCHMERGE=$<TARGET_FILE:benchmerge>
        -DWORK_DIR=${CMAKE_BINARY_DIR}/shard_merge_roundtrip
        -P ${CMAKE_SOURCE_DIR}/bench/shard_merge_roundtrip.cmake)

# Negative shard/merge paths: a truncated shard and a shard whose
# header names a different campaign must both be rejected with a
# non-zero exit and a file/line diagnostic.
add_test(NAME benchmerge_errors
    COMMAND ${CMAKE_COMMAND}
        -DFIG_TLB=$<TARGET_FILE:fig_tlb>
        -DBENCHMERGE=$<TARGET_FILE:benchmerge>
        -DWORK_DIR=${CMAKE_BINARY_DIR}/benchmerge_errors
        -P ${CMAKE_SOURCE_DIR}/bench/benchmerge_errors.cmake)

# Engine wall-clock throughput harness (not a paper figure). The smoke
# entry runs the scaled-down scenarios so a perf-harness regression
# (crash, bad flag parsing, broken JSON) is caught by every ctest run.
add_fig_bench(perf_engine)
add_test(NAME perf_engine_smoke
         COMMAND perf_engine --quick --out perf_engine_smoke.json)

add_executable(micro_simulator bench/micro_simulator.cc)
target_link_libraries(micro_simulator PRIVATE pimmmu_sim benchmark::benchmark)
target_include_directories(micro_simulator PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(micro_simulator PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

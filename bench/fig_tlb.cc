/**
 * @file
 * Virtual-memory characterization bench: sweeps the DCE-side TLB
 * (entries) x page size (4 KiB vs 2 MiB) x tenant count and reports
 * TLB hit/miss/eviction counts, page-table-walk levels, and modeled
 * translation time per configuration into BENCH_tlb.json.
 *
 * The bench also enforces the virtual-memory layer's non-negotiable
 * gate: an identity-mapped single-tenant configuration with zero-cost
 * translation timing must be bit- AND cycle-identical to the
 * direct-physical descriptor path — same event count, same final
 * simulated time, same component stats, same payload bytes. Any
 * mismatch exits non-zero, so the gate runs on every ctest invocation
 * via fig_tlb_smoke.
 *
 * Usage: fig_tlb [--quick] [--out <path>] [--threads <n>]
 *                [--shards <n> --shard-index <i>]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mmu/mmu.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

/** FNV-1a over a byte range. */
std::uint64_t
fnv1a(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// ----------------------------------------------------------------------
// Identity gate.
// ----------------------------------------------------------------------

/**
 * Canonical string of a System's component stats. The pim_mmu group's
 * va_* counters are excluded: they only exist on the VA run and are
 * pure observability (the gate separately proves every shared counter,
 * the event count, and the clock agree).
 */
std::string
statsFingerprint(sim::System &sys)
{
    std::ostringstream os;
    auto dumpGroup = [&os](const stats::Group &g) {
        os << "[" << g.name() << "]\n";
        for (const auto &kv : g.counters()) {
            if (kv.first.rfind("va_", 0) == 0)
                continue;
            os << "  " << kv.first << "=" << kv.second.value() << "\n";
        }
        for (const auto &kv : g.averages()) {
            os << "  " << kv.first << " count=" << kv.second.count()
               << " mean=" << kv.second.mean() << "\n";
        }
        for (const auto &kv : g.histograms()) {
            os << "  " << kv.first << " total=" << kv.second.total()
               << " mean=" << kv.second.mean() << "\n";
        }
    };
    dumpGroup(sys.dce().stats());
    dumpGroup(sys.pimMmu().stats());
    dumpGroup(sys.pim().stats());
    dumpGroup(sys.upmem().stats());
    for (unsigned ch = 0; ch < sys.mem().dramChannels(); ++ch)
        dumpGroup(sys.mem().dramController(ch).stats());
    for (unsigned ch = 0; ch < sys.mem().pimChannels(); ++ch)
        dumpGroup(sys.mem().pimController(ch).stats());
    return os.str();
}

struct GateRun
{
    std::uint64_t events = 0;
    Tick simPs = 0;
    std::string stats;
    std::uint64_t payloadHash = 0;
};

/**
 * One round trip (DRAM->PIM then PIM->DRAM) driven by explicit
 * descriptors. @p viaVa routes both ops through an identity-mapped
 * single tenant with zero-cost translation; otherwise the descriptors
 * carry physical addresses (the pre-MMU path).
 */
GateRun
runGate(bool viaVa)
{
    const unsigned dpus = 64;
    const std::uint64_t bytesPerDpu = 2 * kKiB;
    const std::uint64_t total = std::uint64_t{dpus} * bytesPerDpu;

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    if (viaVa)
        cfg.mmu.tlb = mmu::TlbConfig::zeroCost();
    sim::System sys(cfg);

    const Addr src = sys.allocDram(total, mmu::kPageBytes);
    const Addr dst = sys.allocDram(total, mmu::kPageBytes);
    const std::uint64_t heapBytes = roundUp(bytesPerDpu, mmu::kPageBytes);
    // A tenant has ONE virtual address space spanning both memory
    // regions, so the identity-mapped MRAM heap window must not
    // collide with the identity-mapped host buffers near DRAM
    // physical 0. Park the heap at 1 MiB into MRAM (both runs use the
    // same offset, so the gate still compares like for like).
    const Addr heapBase = 1 * kMiB;

    mmu::TenantId tenant = mmu::kNoTenant;
    if (viaVa) {
        mmu::Mmu &m = sys.mmu();
        tenant = m.createTenant();
        auto must = [](const resilience::Status &st) {
            if (!st.ok()) {
                std::fprintf(stderr, "gate mapping failed: %s\n",
                             st.str().c_str());
                std::exit(1);
            }
        };
        must(m.mapIdentity(tenant, src, total, mmu::kPageBytes,
                           mmu::PagePerms::rw(),
                           mapping::MemSpace::Dram));
        must(m.mapIdentity(tenant, dst, total, mmu::kPageBytes,
                           mmu::PagePerms::rw(),
                           mapping::MemSpace::Dram));
        must(m.mapIdentity(tenant, heapBase, heapBytes, mmu::kPageBytes,
                           mmu::PagePerms::rw(),
                           mapping::MemSpace::Pim));
    }

    // Deterministic source payload (functional writes: no events).
    std::vector<std::uint8_t> pattern(total);
    for (std::uint64_t i = 0; i < total; ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 131 + (i >> 9));
    sys.mem().store().write(src, pattern.data(), pattern.size());

    auto makeOp = [&](core::XferDirection dir, Addr base) {
        core::PimMmuOp op;
        op.type = dir;
        op.sizePerPim = bytesPerDpu;
        op.pimBaseHeapPtr = heapBase;
        op.tenant = tenant;
        for (unsigned i = 0; i < dpus; ++i) {
            op.pimIdArr.push_back(i);
            op.dramAddrArr.push_back(base +
                                     std::uint64_t{i} * bytesPerDpu);
        }
        return op;
    };
    for (const auto &st :
         {sys.runTransfer(makeOp(core::XferDirection::DramToPim, src))
              .status,
          sys.runTransfer(makeOp(core::XferDirection::PimToDram, dst))
              .status}) {
        if (!st.ok()) {
            std::fprintf(stderr, "gate transfer failed: %s\n",
                         st.str().c_str());
            std::exit(1);
        }
    }

    GateRun run;
    run.events = sys.eq().executed();
    run.simPs = sys.eq().now();
    run.stats = statsFingerprint(sys);
    std::vector<std::uint8_t> buf(total);
    sys.mem().store().read(dst, buf.data(), buf.size());
    run.payloadHash = fnv1a(0xcbf29ce484222325ull, buf.data(),
                            buf.size());
    buf.resize(bytesPerDpu);
    for (unsigned i = 0; i < dpus; ++i) {
        sys.pim().dpu(i).mramRead(heapBase, buf.data(), bytesPerDpu);
        run.payloadHash = fnv1a(run.payloadHash, buf.data(),
                                bytesPerDpu);
    }
    return run;
}

/** @return true when the identity gate holds. */
bool
identityGate(std::ostringstream &json)
{
    const GateRun phys = runGate(false);
    const GateRun va = runGate(true);

    bool pass = true;
    auto check = [&pass](const char *what, std::uint64_t a,
                         std::uint64_t b) {
        if (a != b) {
            std::fprintf(stderr,
                         "identity gate FAILED: %s differ "
                         "(physical=%llu, va=%llu)\n",
                         what, static_cast<unsigned long long>(a),
                         static_cast<unsigned long long>(b));
            pass = false;
        }
    };
    check("event counts", phys.events, va.events);
    check("sim_ps", phys.simPs, va.simPs);
    check("payload hashes", phys.payloadHash, va.payloadHash);
    if (phys.stats != va.stats) {
        std::fprintf(stderr,
                     "identity gate FAILED: stats fingerprints "
                     "differ\n--- physical ---\n%s--- va ---\n%s",
                     phys.stats.c_str(), va.stats.c_str());
        pass = false;
    }
    std::printf("identity gate: %s (events=%llu sim_ps=%llu)\n",
                pass ? "PASS" : "FAIL",
                static_cast<unsigned long long>(phys.events),
                static_cast<unsigned long long>(phys.simPs));
    json << "  \"identity_gate\": {\"pass\": "
         << (pass ? "true" : "false")
         << ", \"events\": " << phys.events
         << ", \"sim_ps\": " << phys.simPs << "},\n";
    return pass;
}

// ----------------------------------------------------------------------
// TLB sweep.
// ----------------------------------------------------------------------

struct SweepPoint
{
    unsigned entries = 0;
    std::uint64_t pageBytes = 0;
    unsigned tenants = 0;

    std::uint64_t tlbHits = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t tlbEvictions = 0;
    std::uint64_t walkLevels = 0;
    std::uint64_t xlatPs = 0;
    std::uint64_t transfers = 0;
    Tick simPs = 0;
};

SweepPoint
runSweepPoint(bool quick, unsigned entries, std::uint64_t pageBytes,
              unsigned tenants)
{
    const unsigned dpus = quick ? 64 : 256;
    const std::uint64_t bytesPerDpu = quick ? 2 * kKiB : 8 * kKiB;
    const unsigned rounds = quick ? 2 : 3;
    const std::uint64_t total = std::uint64_t{dpus} * bytesPerDpu;

    sim::SystemConfig cfg =
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
    cfg.mmu.tlb.entries = entries;
    cfg.mmu.tlb.ways = 4;
    sim::System sys(cfg);
    mmu::Mmu &m = sys.mmu();

    auto must = [](const resilience::Status &st) {
        if (!st.ok()) {
            std::fprintf(stderr, "sweep mapping failed: %s\n",
                         st.str().c_str());
            std::exit(1);
        }
    };

    // Every tenant maps the SAME virtual window (tenants are separate
    // address spaces) onto its own physical buffer, and heap VA 0 onto
    // its own slice of MRAM — so concurrent tenants compete for the
    // tagged TLB without ever sharing a translation.
    const Addr vaBase = Addr{1} << 44;
    const std::uint64_t mapBytes = roundUp(total, pageBytes);
    const std::uint64_t heapBytes =
        roundUp(bytesPerDpu, mmu::kPageBytes);
    std::vector<mmu::TenantId> ids;
    for (unsigned t = 0; t < tenants; ++t) {
        const mmu::TenantId id = m.createTenant();
        const Addr pa = sys.allocDram(mapBytes, pageBytes);
        must(m.map(id, vaBase, pa, mapBytes, pageBytes,
                   mmu::PagePerms::rw(), mapping::MemSpace::Dram));
        must(m.map(id, 0, std::uint64_t{t} * heapBytes, heapBytes,
                   mmu::kPageBytes, mmu::PagePerms::rw(),
                   mapping::MemSpace::Pim));
        ids.push_back(id);
    }

    SweepPoint pt;
    pt.entries = entries;
    pt.pageBytes = pageBytes;
    pt.tenants = tenants;
    for (unsigned round = 0; round < rounds; ++round) {
        for (unsigned t = 0; t < tenants; ++t) {
            core::PimMmuOp op;
            op.type = core::XferDirection::DramToPim;
            op.sizePerPim = bytesPerDpu;
            op.pimBaseHeapPtr = 0;
            op.tenant = ids[t];
            for (unsigned i = 0; i < dpus; ++i) {
                op.pimIdArr.push_back(i);
                op.dramAddrArr.push_back(
                    vaBase + std::uint64_t{i} * bytesPerDpu);
            }
            const auto st = sys.runTransfer(std::move(op));
            if (!st.ok()) {
                std::fprintf(stderr, "sweep transfer failed: %s\n",
                             st.status.str().c_str());
                std::exit(1);
            }
            ++pt.transfers;
        }
    }

    pt.tlbHits = m.tlb().hits();
    pt.tlbMisses = m.tlb().misses();
    pt.tlbEvictions = m.tlb().evictions();
    pt.walkLevels = m.tlb().walkLevels();
    pt.xlatPs = m.stats().counterValue("walk_ps");
    pt.simPs = sys.eq().now();
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string outPath = "BENCH_tlb.json";
    unsigned threads = 1, shards = 1, shardIndex = 0;
    auto numArg = [&](int &i, const char *flag) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s needs a number\n", argv[0],
                         flag);
            std::exit(2);
        }
        return static_cast<unsigned>(std::strtoul(argv[++i], nullptr,
                                                  10));
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            threads = numArg(i, "--threads");
        } else if (std::strcmp(argv[i], "--shards") == 0) {
            shards = numArg(i, "--shards");
        } else if (std::strcmp(argv[i], "--shard-index") == 0) {
            shardIndex = numArg(i, "--shard-index");
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out <path>] "
                         "[--threads <n>] [--shards <n> "
                         "--shard-index <i>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (shards == 0 || shardIndex >= shards) {
        std::fprintf(stderr,
                     "%s: --shard-index must be in [0, --shards)\n",
                     argv[0]);
        return 2;
    }

    std::printf("TLB sweep (%s mode)\n", quick ? "quick" : "full");

    std::ostringstream json;
    json << "{\n  \"schema\": \"pim-mmu-bench-tlb-v2\",\n";
    json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    if (shards > 1) {
        json << "  \"shard\": {\"count\": " << shards
             << ", \"index\": " << shardIndex << "},\n";
    }

    // The identity gate runs on every shard: it is the layer's
    // correctness invariant, and its JSON line is identical across
    // shards so benchmerge can verify the headers agree.
    if (!identityGate(json))
        return 1;

    const std::vector<unsigned> entrySweep =
        quick ? std::vector<unsigned>{8, 32}
              : std::vector<unsigned>{8, 32, 128};
    const std::vector<std::uint64_t> pageSweep{mmu::kPageBytes,
                                               mmu::kHugePageBytes};
    const std::vector<unsigned> tenantSweep =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4};

    // Job j walks the old nested loops' order: tenants innermost,
    // entries outermost. Points are independent Systems, so they run
    // across --threads workers and shard across processes unchanged.
    const std::size_t jobCount =
        entrySweep.size() * pageSweep.size() * tenantSweep.size();
    std::vector<SweepPoint> points(jobCount);
    std::vector<char> present(jobCount, 0);
    sim::SweepRunner runner(threads);
    runner.setShard({shards, shardIndex});
    runner.run(jobCount, [&](std::size_t j) {
        const std::size_t tIdx = j % tenantSweep.size();
        const std::size_t pIdx =
            (j / tenantSweep.size()) % pageSweep.size();
        const std::size_t eIdx =
            j / (tenantSweep.size() * pageSweep.size());
        points[j] = runSweepPoint(quick, entrySweep[eIdx],
                                  pageSweep[pIdx], tenantSweep[tIdx]);
        present[j] = 1;
    });

    json << "  \"points\": [\n";
    std::vector<std::string> rows;
    for (std::size_t j = 0; j < jobCount; ++j) {
        if (!present[j])
            continue;
        const SweepPoint &pt = points[j];
        std::printf(
            "  tlb=%3u page=%4lluK tenants=%u  hits=%llu "
            "misses=%llu evict=%llu walk_levels=%llu "
            "xlat_us=%.2f\n",
            pt.entries,
            static_cast<unsigned long long>(pt.pageBytes / kKiB),
            pt.tenants,
            static_cast<unsigned long long>(pt.tlbHits),
            static_cast<unsigned long long>(pt.tlbMisses),
            static_cast<unsigned long long>(pt.tlbEvictions),
            static_cast<unsigned long long>(pt.walkLevels),
            static_cast<double>(pt.xlatPs) / 1e6);
        std::ostringstream row;
        row << "    {\"name\": \"job" << j << "\""
            << ", \"tlb_entries\": " << pt.entries
            << ", \"page_bytes\": " << pt.pageBytes
            << ", \"tenants\": " << pt.tenants
            << ", \"transfers\": " << pt.transfers
            << ", \"tlb_hits\": " << pt.tlbHits
            << ", \"tlb_misses\": " << pt.tlbMisses
            << ", \"tlb_evictions\": " << pt.tlbEvictions
            << ", \"walk_levels\": " << pt.walkLevels
            << ", \"xlat_ps\": " << pt.xlatPs
            << ", \"sim_ps\": " << pt.simPs << "}";
        rows.push_back(row.str());
    }
    for (std::size_t i = 0; i < rows.size(); ++i)
        json << rows[i] << (i + 1 < rows.size() ? ",\n" : "\n");
    json << "  ]\n}\n";

    std::ofstream os(outPath);
    if (!os || !(os << json.str())) {
        std::fprintf(stderr, "failed to write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}

/**
 * @file
 * Paper Fig. 14: DRAM throughput during DRAM->DRAM memcpy across
 * xC-yR system configurations, baseline (software copy, homogeneous
 * locality mapping) vs PIM-MMU (DCE + HetMap).
 *
 * Expected shape (paper): PIM-MMU wins ~4.9x on average (max 6.0x),
 * scales linearly with channel count, and is flat in rank count.
 */

#include <vector>

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

double
measure(sim::DesignPoint design, unsigned channels, unsigned ranks,
        std::uint64_t bytes)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(design);
    cfg.dramGeom.channels = channels;
    cfg.dramGeom.ranksPerChannel = ranks;
    cfg.dramGeom.rows = 4096;
    cfg.pimGeom.banks.rows = 256; // PIM unused here
    // The paper's memcpy microbenchmark uses pinned contiguous
    // buffers; under the homogeneous locality mapping those sit inside
    // one bank slab, which is the effect Fig. 14 quantifies.
    cfg.scatterHostFrames = false;
    sim::System sys(cfg);
    const auto stats = sys.runMemcpy(bytes, 8);
    return stats.gbps();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Figure 14",
                  "DRAM->DRAM memcpy throughput across xC-yR configs "
                  "(Base vs PIM-MMU/HetMap)");

    const std::uint64_t bytes = 4 * kMiB;
    Table t({"config", "Base GB/s", "PIM-MMU GB/s", "speedup",
             "peak GB/s"});

    // Each (config, design) point is an independent System: run them
    // as sweep jobs and fill the table in the original loop order.
    struct Job
    {
        sim::DesignPoint design;
        unsigned channels;
        unsigned ranks;
    };
    std::vector<Job> jobs;
    for (unsigned channels : {1u, 2u, 4u}) {
        for (unsigned ranks : {1u, 2u}) {
            jobs.push_back({sim::DesignPoint::Base, channels, ranks});
            jobs.push_back({sim::DesignPoint::BaseDHP, channels, ranks});
        }
    }
    std::vector<double> gbps(jobs.size());
    sim::SweepRunner runner(opts.threads);
    runner.run(jobs.size(), [&](std::size_t j) {
        gbps[j] = measure(jobs[j].design, jobs[j].channels,
                          jobs[j].ranks, bytes);
    });

    double sum = 0, maxSpeedup = 0;
    int n = 0;
    std::size_t cell = 0;
    for (unsigned channels : {1u, 2u, 4u}) {
        for (unsigned ranks : {1u, 2u}) {
            const double base = gbps[cell++];
            const double mmu = gbps[cell++];
            const double peak = channels * 19.2;
            const double speedup = mmu / base;
            t.row()
                .cell(std::to_string(channels) + "C-" +
                      std::to_string(ranks) + "R")
                .num(base)
                .num(mmu)
                .num(speedup)
                .num(peak, 1);
            sum += speedup;
            maxSpeedup = std::max(maxSpeedup, speedup);
            ++n;
        }
    }
    bench::printTable(t);
    std::printf("\nmean speedup %.2fx, max %.2fx "
                "(paper: avg 4.9x, max 6.0x)\n",
                sum / n, maxSpeedup);
    return bench::finish(opts);
}

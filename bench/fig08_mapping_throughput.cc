/**
 * @file
 * Paper Fig. 8: normalized DRAM bandwidth utilization under the
 * locality-centric mapping (the PIM-BIOS side effect, Challenge #3)
 * vs the conventional MLP-centric mapping, across sequential and
 * strided access patterns. Also includes the XOR-hashing ablation
 * called out in DESIGN.md.
 *
 * Expectation (paper): locality-centric throughput is ~30% of the
 * MLP-centric mapping regardless of pattern.
 */

#include "bench/bench_util.hh"
#include "dram/memory_system.hh"
#include "sim/stream_driver.hh"
#include "workloads/patterns.hh"

using namespace pimmmu;

namespace {

struct Pattern
{
    const char *name;
    std::vector<Addr> addrs;
};

std::vector<Pattern>
makePatterns(std::uint64_t region)
{
    const std::size_t lines = 32768; // 2 MiB of traffic per pattern
    return {
        {"sequential", workloads::sequentialPattern(0, lines)},
        {"strided-256B",
         workloads::stridedPattern(0, lines, 256, region)},
        {"strided-1KB",
         workloads::stridedPattern(0, lines, 1024, region)},
        {"strided-4KB",
         workloads::stridedPattern(0, lines, 4096, region)},
    };
}

double
measure(const mapping::DramGeometry &geom, int mappingKind,
        const std::vector<Addr> &addrs, bool write)
{
    // mappingKind: 0 = locality, 1 = MLP, 2 = MLP without XOR.
    EventQueue eq;
    mapping::MapperPtr mapper =
        mappingKind == 0 ? mapping::makeLocalityCentricMapper(geom)
        : mappingKind == 1
            ? mapping::makeMlpCentricMapper(geom, true)
            : mapping::makeMlpCentricMapper(geom, false);
    // The PIM side is unused here; give it a tiny geometry.
    mapping::DramGeometry pimGeom = geom;
    pimGeom.rows = 64;
    mapping::SystemMap map(std::move(mapper),
                           mapping::makeLocalityCentricMapper(pimGeom));
    dram::MemorySystem mem(
        eq, map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
        dram::timingPreset(dram::SpeedGrade::DDR4_2400));
    sim::StreamDriver driver(eq, mem, 64);
    const sim::StreamResult r = driver.run(addrs, write);
    return r.gbps();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Figure 8",
                  "DRAM bandwidth: locality-centric vs MLP-centric "
                  "mapping (normalized to MLP-centric)");

    mapping::DramGeometry geom;
    geom.channels = 4;
    geom.ranksPerChannel = 2;
    geom.bankGroups = 4;
    geom.banksPerGroup = 4;
    geom.rows = 16384;
    geom.columns = 128;

    const double peak =
        geom.channels *
        dram::timingPreset(dram::SpeedGrade::DDR4_2400).peakBandwidth() /
        1e9;
    bench::note("aggregate peak: " + std::to_string(peak) + " GB/s");

    Table t({"pattern", "op", "locality GB/s", "mlp GB/s",
             "mlp-noxor GB/s", "locality/mlp", "loc util%",
             "mlp util%"});
    double locSum = 0, mlpSum = 0;
    int n = 0;
    for (const auto &pattern : makePatterns(64 * kMiB)) {
        for (bool write : {false, true}) {
            const double loc =
                measure(geom, 0, pattern.addrs, write);
            const double mlp =
                measure(geom, 1, pattern.addrs, write);
            const double noxor =
                measure(geom, 2, pattern.addrs, write);
            t.row()
                .cell(pattern.name)
                .cell(write ? "write" : "read")
                .num(loc)
                .num(mlp)
                .num(noxor)
                .num(loc / mlp)
                .num(100.0 * loc / peak, 1)
                .num(100.0 * mlp / peak, 1);
            locSum += loc / mlp;
            mlpSum += 1.0;
            ++n;
        }
    }
    bench::printTable(t);
    std::printf("\nmean locality/MLP throughput ratio: %.2f "
                "(paper: ~0.30)\n",
                locSum / n);
    return bench::finish(opts);
}

/**
 * @file
 * Paper Fig. 13: DRAM->PIM transfer latency when co-located with
 * (a) an increasing number of compute-intensive contenders and
 * (b) memory-intensive contenders of increasing access intensity on
 * half of the CPU cores.
 *
 * Expected shape (paper): the baseline degrades sharply with compute
 * contenders (its copy threads lose cores) while PIM-MMU is virtually
 * insensitive; under memory contention both degrade, PIM-MMU less.
 *
 * Ablation: --quantum-sweep reruns (a) at several OS quanta
 * (DESIGN.md scheduling-quantum ablation).
 */

#include <cstring>

#include "bench/bench_util.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

Tick
runCompute(sim::DesignPoint dp, unsigned contenders, Tick quantum)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(dp);
    cfg.cpu.quantumPs = quantum;
    sim::System sys(cfg);
    sys.addComputeContenders(contenders);
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 512, 8 * kKiB);
    sys.cpu().shutdown();
    return stats.durationPs();
}

Tick
runMemory(sim::DesignPoint dp, int intensity)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(dp);
    sim::System sys(cfg);
    if (intensity >= 0) {
        sys.addMemoryContenders(
            cfg.cpu.cores / 2,
            static_cast<cpu::MemIntensity>(intensity), 256 * kMiB);
    }
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 512, 8 * kKiB);
    sys.cpu().shutdown();
    return stats.durationPs();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv, {"--quantum-sweep"});
    bool quantumSweep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quantum-sweep") == 0)
            quantumSweep = true;
    }

    bench::banner("Figure 13",
                  "DRAM->PIM transfer latency under co-located "
                  "contender workloads (normalized to no contention)");

    const Tick quantum = Tick{3} * kPsPerMs / 2;

    bench::note("\n(a) compute-intensive contenders");
    {
        Table t({"contenders", "Base ms", "Base (norm)", "PIM-MMU ms",
                 "PIM-MMU (norm)"});
        const Tick base0 =
            runCompute(sim::DesignPoint::Base, 0, quantum);
        const Tick mmu0 =
            runCompute(sim::DesignPoint::BaseDHP, 0, quantum);
        for (unsigned n : {0u, 2u, 4u, 8u, 16u, 24u}) {
            const Tick b = runCompute(sim::DesignPoint::Base, n,
                                      quantum);
            const Tick m = runCompute(sim::DesignPoint::BaseDHP, n,
                                      quantum);
            t.row()
                .num(std::uint64_t{n})
                .num(static_cast<double>(b) / 1e9)
                .num(static_cast<double>(b) /
                     static_cast<double>(base0))
                .num(static_cast<double>(m) / 1e9)
                .num(static_cast<double>(m) /
                     static_cast<double>(mmu0));
        }
        bench::printTable(t);
    }

    bench::note("\n(b) memory-intensive contenders (4 of 8 cores)");
    {
        Table t({"intensity", "Base ms", "Base (norm)", "PIM-MMU ms",
                 "PIM-MMU (norm)"});
        const Tick base0 = runMemory(sim::DesignPoint::Base, -1);
        const Tick mmu0 = runMemory(sim::DesignPoint::BaseDHP, -1);
        const char *names[] = {"none", "low", "medium", "high",
                               "very-high"};
        for (int i = -1; i <= 3; ++i) {
            const Tick b = runMemory(sim::DesignPoint::Base, i);
            const Tick m = runMemory(sim::DesignPoint::BaseDHP, i);
            t.row()
                .cell(names[i + 1])
                .num(static_cast<double>(b) / 1e9)
                .num(static_cast<double>(b) /
                     static_cast<double>(base0))
                .num(static_cast<double>(m) / 1e9)
                .num(static_cast<double>(m) /
                     static_cast<double>(mmu0));
        }
        bench::printTable(t);
    }

    if (quantumSweep) {
        bench::note("\n(ablation) OS quantum sensitivity, baseline, "
                    "8 compute contenders");
        Table t({"quantum (us)", "Base ms"});
        for (Tick q : {Tick{100}, Tick{500}, Tick{1500}, Tick{5000}}) {
            const Tick b = runCompute(sim::DesignPoint::Base, 8,
                                      q * kPsPerUs);
            t.row().num(std::uint64_t{q}).num(
                static_cast<double>(b) / 1e9);
        }
        bench::printTable(t);
    }
    return bench::finish(opts);
}

/**
 * @file
 * Paper Fig. 13: DRAM->PIM transfer latency when co-located with
 * (a) an increasing number of compute-intensive contenders and
 * (b) memory-intensive contenders of increasing access intensity on
 * half of the CPU cores.
 *
 * Expected shape (paper): the baseline degrades sharply with compute
 * contenders (its copy threads lose cores) while PIM-MMU is virtually
 * insensitive; under memory contention both degrade, PIM-MMU less.
 *
 * Every (design, contention) measurement is an independent System, so
 * the whole figure runs as one SweepRunner job list (--threads); the
 * no-contention rows double as the normalizers, exactly as in the old
 * serial loops (Systems are deterministic, so the repeated baseline
 * run the serial code did returned the same duration).
 *
 * Ablation: --quantum-sweep reruns (a) at several OS quanta
 * (DESIGN.md scheduling-quantum ablation).
 */

#include <cstring>
#include <functional>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

Tick
runCompute(sim::DesignPoint dp, unsigned contenders, Tick quantum)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(dp);
    cfg.cpu.quantumPs = quantum;
    sim::System sys(cfg);
    sys.addComputeContenders(contenders);
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 512, 8 * kKiB);
    sys.cpu().shutdown();
    return stats.durationPs();
}

Tick
runMemory(sim::DesignPoint dp, int intensity)
{
    sim::SystemConfig cfg = sim::SystemConfig::paperTable1(dp);
    sim::System sys(cfg);
    if (intensity >= 0) {
        sys.addMemoryContenders(
            cfg.cpu.cores / 2,
            static_cast<cpu::MemIntensity>(intensity), 256 * kMiB);
    }
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 512, 8 * kKiB);
    sys.cpu().shutdown();
    return stats.durationPs();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv, {"--quantum-sweep"});
    bool quantumSweep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quantum-sweep") == 0)
            quantumSweep = true;
    }

    bench::banner("Figure 13",
                  "DRAM->PIM transfer latency under co-located "
                  "contender workloads (normalized to no contention)");

    const Tick quantum = Tick{3} * kPsPerMs / 2;
    const unsigned computeCases[] = {0u, 2u, 4u, 8u, 16u, 24u};
    const Tick quantumCases[] = {Tick{100}, Tick{500}, Tick{1500},
                                 Tick{5000}};

    // Flat job list: part (a) pairs, part (b) pairs, then the optional
    // quantum ablation. Each job measures one System's duration.
    std::vector<std::function<Tick()>> jobs;
    for (unsigned n : computeCases) {
        jobs.push_back([n, quantum] {
            return runCompute(sim::DesignPoint::Base, n, quantum);
        });
        jobs.push_back([n, quantum] {
            return runCompute(sim::DesignPoint::BaseDHP, n, quantum);
        });
    }
    const std::size_t memBase = jobs.size();
    for (int i = -1; i <= 3; ++i) {
        jobs.push_back(
            [i] { return runMemory(sim::DesignPoint::Base, i); });
        jobs.push_back(
            [i] { return runMemory(sim::DesignPoint::BaseDHP, i); });
    }
    const std::size_t quantumBase = jobs.size();
    if (quantumSweep) {
        for (Tick q : quantumCases) {
            jobs.push_back([q, quantum] {
                (void)quantum;
                return runCompute(sim::DesignPoint::Base, 8,
                                  q * kPsPerUs);
            });
        }
    }

    std::vector<Tick> durations(jobs.size());
    sim::SweepRunner runner(opts.threads);
    runner.run(jobs.size(),
               [&](std::size_t j) { durations[j] = jobs[j](); });

    bench::note("\n(a) compute-intensive contenders");
    {
        Table t({"contenders", "Base ms", "Base (norm)", "PIM-MMU ms",
                 "PIM-MMU (norm)"});
        const Tick base0 = durations[0];
        const Tick mmu0 = durations[1];
        for (std::size_t c = 0; c < 6; ++c) {
            const Tick b = durations[c * 2];
            const Tick m = durations[c * 2 + 1];
            t.row()
                .num(std::uint64_t{computeCases[c]})
                .num(static_cast<double>(b) / 1e9)
                .num(static_cast<double>(b) /
                     static_cast<double>(base0))
                .num(static_cast<double>(m) / 1e9)
                .num(static_cast<double>(m) /
                     static_cast<double>(mmu0));
        }
        bench::printTable(t);
    }

    bench::note("\n(b) memory-intensive contenders (4 of 8 cores)");
    {
        Table t({"intensity", "Base ms", "Base (norm)", "PIM-MMU ms",
                 "PIM-MMU (norm)"});
        const Tick base0 = durations[memBase];
        const Tick mmu0 = durations[memBase + 1];
        const char *names[] = {"none", "low", "medium", "high",
                               "very-high"};
        for (std::size_t c = 0; c < 5; ++c) {
            const Tick b = durations[memBase + c * 2];
            const Tick m = durations[memBase + c * 2 + 1];
            t.row()
                .cell(names[c])
                .num(static_cast<double>(b) / 1e9)
                .num(static_cast<double>(b) /
                     static_cast<double>(base0))
                .num(static_cast<double>(m) / 1e9)
                .num(static_cast<double>(m) /
                     static_cast<double>(mmu0));
        }
        bench::printTable(t);
    }

    if (quantumSweep) {
        bench::note("\n(ablation) OS quantum sensitivity, baseline, "
                    "8 compute contenders");
        Table t({"quantum (us)", "Base ms"});
        for (std::size_t c = 0; c < 4; ++c) {
            t.row()
                .num(std::uint64_t{quantumCases[c]})
                .num(static_cast<double>(durations[quantumBase + c]) /
                     1e9);
        }
        bench::printTable(t);
    }
    return bench::finish(opts);
}

/**
 * @file
 * Paper Table I: the baseline system and PIM-MMU configuration, as
 * resolved by SystemConfig::paperTable1(). Every other bench runs on
 * top of exactly this configuration unless it says otherwise.
 */

#include "bench/bench_util.hh"
#include "dram/timing.hh"
#include "sim/system.hh"

using namespace pimmmu;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Table I", "Baseline system and PIM-MMU configuration");

    const sim::SystemConfig cfg = sim::SystemConfig::paperTable1();
    const auto &dramT = dram::timingPreset(cfg.dramSpeed);
    const auto &pimT = dram::timingPreset(cfg.pimSpeed);

    Table t({"Component", "Parameter", "Value"});
    t.row().cell("Host CPU").cell("cores").num(
        std::uint64_t{cfg.cpu.cores});
    t.row().cell("").cell("clock").cell(
        std::to_string(cfg.cpu.clockMhz / 1000.0).substr(0, 3) + " GHz");
    t.row().cell("").cell("OS scheduling quantum").cell(
        std::to_string(cfg.cpu.quantumPs / kPsPerUs) + " us");
    t.row().cell("LLC").cell("capacity").cell(
        std::to_string(cfg.llc.sizeBytes / kMiB) + " MiB");
    t.row().cell("").cell("associativity").num(
        std::uint64_t{cfg.llc.ways});
    t.row().cell("").cell("line size").cell(
        std::to_string(cfg.llc.lineBytes) + " B");
    t.row().cell("Memory controller").cell("read/write queues").cell(
        std::to_string(cfg.mc.readQueueDepth) + " / " +
        std::to_string(cfg.mc.writeQueueDepth));
    t.row().cell("").cell("policy").cell(
        cfg.mc.policy == dram::SchedPolicy::FrFcfs ? "FR-FCFS"
                                                   : "FCFS");
    t.row().cell("DRAM system").cell("timing").cell(dramT.name);
    t.row().cell("").cell("channels x ranks").cell(
        std::to_string(cfg.dramGeom.channels) + " x " +
        std::to_string(cfg.dramGeom.ranksPerChannel));
    t.row().cell("").cell("peak bandwidth").num(
        cfg.dramGeom.channels * dramT.peakBandwidth() / 1e9, 1);
    t.row().cell("PIM system").cell("timing").cell(pimT.name);
    t.row().cell("").cell("channels x ranks").cell(
        std::to_string(cfg.pimGeom.banks.channels) + " x " +
        std::to_string(cfg.pimGeom.banks.ranksPerChannel));
    t.row().cell("").cell("PIM cores").num(
        std::uint64_t{cfg.pimGeom.numDpus()});
    t.row().cell("").cell("peak bandwidth").num(
        cfg.pimGeom.banks.channels * pimT.peakBandwidth() / 1e9, 1);
    t.row().cell("PIM-MMU DCE").cell("clock").cell("3.2 GHz");
    t.row().cell("").cell("data buffer").cell(
        std::to_string(cfg.dce.dataBufferBytes / kKiB) + " KB");
    t.row().cell("").cell("address buffer").cell(
        std::to_string(cfg.dce.addressBufferBytes / kKiB) + " KB");
    t.row().cell("PIM-MS").cell("scheduling").cell(
        "Algorithm 1 (bank-group interleaved)");
    t.row().cell("HetMap").cell("DRAM side").cell(
        "MLP-centric (XOR hashed)");
    t.row().cell("").cell("PIM side").cell("ChRaBgBkRoCo");
    bench::printTable(t);
    return bench::finish(opts);
}

/**
 * @file
 * Wall-clock performance harness for the simulation engine itself (not
 * a paper figure). Runs a fixed set of simulation scenarios, reports
 * events/second and simulated-time per wall-second for each, and
 * optionally writes a machine-readable BENCH_engine.json so CI can
 * archive engine-throughput history.
 *
 * Scenarios:
 *   xfer_sw  - Fig. 6(a): software DRAM->PIM transfer, Base design
 *   xfer_mmu - Fig. 6(c): PIM-MMU DRAM->PIM transfer, BaseDHP design
 *   xfer_ff  - xfer_mmu re-run on the fast-forward plane (functional
 *              data movement only, no timing events); gated on a
 *              byte-identical final memory image and, in full mode, a
 *              >=3x wall-clock win over xfer_mmu
 *   xfer_vm  - xfer_mmu submitted by virtual address through a tenant
 *              with zero-cost translation; asserted event- and
 *              cycle-identical to xfer_mmu before the JSON is written
 *   va       - Fig. 16 VA workload, both transfer directions, BaseDHP
 *   memcpy   - Fig. 14-style DRAM->DRAM memcpy, BaseDHP design
 *   sweep_1t - 8 independent Systems through SweepRunner, one worker
 *   sweep_mt - same jobs, hardware_concurrency workers; the wall-time
 *              ratio to sweep_1t is the campaign --threads speedup on
 *              this machine
 *
 * Usage: perf_engine [--quick] [--reps <n>] [--out <path>]
 *   --quick scales the scenarios down (fewer DPUs, smaller buffers) so
 *   the binary doubles as a fast ctest smoke test; the JSON records
 *   which mode produced it. Wall times are best-of-<reps> to shave
 *   scheduler noise; events/sim-time are identical across reps by
 *   determinism.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hh"
#include "mmu/mmu.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "workloads/prim.hh"

using namespace pimmmu;

namespace {

struct ScenarioResult
{
    std::string name;
    std::uint64_t events = 0;  //!< events executed (per rep)
    Tick simPs = 0;            //!< simulated time covered (per rep)
    double bestWallSec = 0.0;  //!< best-of-reps wall time
};

double
wallSecondsSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

/**
 * Run @p body (which builds a System and runs it to completion) once
 * per rep, keeping the best wall time. The event/sim-time counts are
 * taken from the last rep; determinism makes every rep identical.
 */
template <typename Body>
ScenarioResult
runScenario(const char *name, int reps, Body &&body)
{
    ScenarioResult r;
    r.name = name;
    r.bestWallSec = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        body(r);
        const double wall = wallSecondsSince(t0);
        if (wall < r.bestWallSec)
            r.bestWallSec = wall;
    }
    std::printf("  %-8s  %12llu events  %8.1f ms wall  %6.2f Mev/s  "
                "%7.3f sim-ms/wall-s\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.events),
                r.bestWallSec * 1e3,
                static_cast<double>(r.events) / r.bestWallSec / 1e6,
                static_cast<double>(r.simPs) / 1e9 / r.bestWallSec);
    std::fflush(stdout);
    return r;
}

bool
writeJson(const std::string &path, bool quick, int reps,
          const std::vector<ScenarioResult> &results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"schema\": \"pim-mmu-bench-engine-v1\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        const double evPerSec =
            static_cast<double>(r.events) / r.bestWallSec;
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"events\": %llu, "
                      "\"sim_ps\": %llu, \"wall_s\": %.6f, "
                      "\"events_per_sec\": %.0f}%s\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.events),
                      static_cast<unsigned long long>(r.simPs),
                      r.bestWallSec, evPerSec,
                      i + 1 < results.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int reps = 3;
    std::string outPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = std::atoi(argv[++i]);
            if (reps < 1)
                reps = 1;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--reps <n>] "
                         "[--out <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (quick)
        reps = 1;

    const unsigned dpus = quick ? 64 : 512;
    const std::uint64_t xferBytes = quick ? 2 * kKiB : 8 * kKiB;
    const std::uint64_t memcpyBytes = quick ? kMiB : 8 * kMiB;

    std::printf("engine throughput harness (%s mode, best of %d)\n",
                quick ? "quick" : "full", reps);

    std::vector<ScenarioResult> results;

    // Final-memory digests of the timed and fast-forwarded MMU
    // transfer; computed on the first rep only so the digest walk never
    // lands in the best-of-reps wall time. The source region is seeded
    // with a nonzero pattern so the byte-identity gate compares real
    // payloads, not untouched zero pages.
    std::uint64_t mmuFnv = 0;
    std::uint64_t ffFnv = 0;
    std::vector<std::uint8_t> seedPattern(std::uint64_t{dpus} *
                                          xferBytes);
    for (std::size_t i = 0; i < seedPattern.size(); ++i)
        seedPattern[i] = static_cast<std::uint8_t>(i * 193 + 11);

    results.push_back(runScenario(
        "xfer_sw", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::Base));
            sys.runTransfer(core::XferDirection::DramToPim, dpus,
                            xferBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    results.push_back(runScenario(
        "xfer_mmu", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            sys.mem().store().write(0, seedPattern.data(),
                                    seedPattern.size());
            sys.runTransfer(core::XferDirection::DramToPim, dpus,
                            xferBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
            if (mmuFnv == 0)
                mmuFnv = sys.memoryFingerprint();
        }));

    results.push_back(runScenario(
        "xfer_ff", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            sys.mem().store().write(0, seedPattern.data(),
                                    seedPattern.size());
            sys.setPlane(sim::Plane::FastForward);
            sys.runTransfer(core::XferDirection::DramToPim, dpus,
                            xferBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
            if (ffFnv == 0)
                ffFnv = sys.memoryFingerprint();
        }));

    results.push_back(runScenario(
        "xfer_vm", reps, [&](ScenarioResult &r) {
            sim::SystemConfig cfg = sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP);
            cfg.mmu.tlb = mmu::TlbConfig::zeroCost();
            sim::System sys(cfg);
            // Same single host allocation runTransfer(dir, ...) makes
            // internally in xfer_mmu, so the physical addresses match.
            const std::uint64_t total =
                std::uint64_t{dpus} * xferBytes;
            const Addr pa = sys.allocDram(total);
            auto roundUpPage = [](std::uint64_t v) {
                return (v + mmu::kPageBytes - 1) / mmu::kPageBytes *
                       mmu::kPageBytes;
            };
            mmu::Mmu &m = sys.mmu();
            const mmu::TenantId tenant = m.createTenant();
            const Addr vaBase = Addr{1} << 44;
            const Addr heapVa = Addr{1} << 45;
            for (const auto &st :
                 {m.map(tenant, vaBase, pa, roundUpPage(total),
                        mmu::kPageBytes, mmu::PagePerms::rw(),
                        mapping::MemSpace::Dram),
                  m.map(tenant, heapVa, 0, roundUpPage(xferBytes),
                        mmu::kPageBytes, mmu::PagePerms::rw(),
                        mapping::MemSpace::Pim)}) {
                if (!st.ok()) {
                    std::fprintf(stderr, "xfer_vm mapping failed: %s\n",
                                 st.str().c_str());
                    std::exit(1);
                }
            }
            core::PimMmuOp op;
            op.type = core::XferDirection::DramToPim;
            op.sizePerPim = xferBytes;
            op.pimBaseHeapPtr = heapVa;
            op.tenant = tenant;
            for (unsigned i = 0; i < dpus; ++i) {
                op.pimIdArr.push_back(i);
                op.dramAddrArr.push_back(
                    vaBase + std::uint64_t{i} * xferBytes);
            }
            const auto st = sys.runTransfer(std::move(op));
            if (!st.ok()) {
                std::fprintf(stderr, "xfer_vm transfer failed: %s\n",
                             st.status.str().c_str());
                std::exit(1);
            }
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    results.push_back(runScenario("va", reps, [&](ScenarioResult &r) {
        const workloads::PrimWorkload &w = workloads::primWorkload("VA");
        const std::uint64_t inB =
            quick ? w.inputBytesPerDpu / 8 : w.inputBytesPerDpu;
        const std::uint64_t outB =
            quick ? w.outputBytesPerDpu / 8 : w.outputBytesPerDpu;
        sim::System sys(sim::SystemConfig::paperTable1(
            sim::DesignPoint::BaseDHP));
        sys.runTransfer(core::XferDirection::DramToPim, dpus, inB);
        sys.runTransfer(core::XferDirection::PimToDram, dpus, outB);
        r.events = sys.eq().executed();
        r.simPs = sys.eq().now();
    }));

    results.push_back(runScenario(
        "memcpy", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            sys.runMemcpy(memcpyBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    // Campaign-shaped scenario: independent Systems fanned out through
    // SweepRunner, serial vs all hardware threads. Events and sim-time
    // are per-job sums, so both rows must agree exactly; the wall-time
    // ratio is the --threads speedup campaigns see on this machine.
    const std::size_t sweepJobCount = quick ? 4 : 8;
    const unsigned sweepDpus = std::max(1u, dpus / 4);
    auto sweepScenario = [&](unsigned threads) {
        return [&, threads](ScenarioResult &r) {
            std::vector<std::uint64_t> ev(sweepJobCount, 0);
            std::vector<Tick> ps(sweepJobCount, 0);
            sim::SweepRunner runner(threads);
            runner.run(sweepJobCount, [&](std::size_t j) {
                sim::System sys(sim::SystemConfig::paperTable1(
                    sim::DesignPoint::BaseDHP));
                sys.runTransfer(core::XferDirection::DramToPim,
                                sweepDpus, xferBytes);
                ev[j] = sys.eq().executed();
                ps[j] = sys.eq().now();
            });
            r.events = 0;
            r.simPs = 0;
            for (std::size_t j = 0; j < sweepJobCount; ++j) {
                r.events += ev[j];
                r.simPs += ps[j];
            }
        };
    };
    results.push_back(runScenario("sweep_1t", reps, sweepScenario(1)));
    results.push_back(runScenario(
        "sweep_mt", reps,
        sweepScenario(
            std::max(1u, std::thread::hardware_concurrency()))));

    // Identity assertion: virtual submission with zero-cost
    // translation must not perturb the engine — same events, same
    // final simulated time as the physical xfer_mmu scenario.
    {
        const ScenarioResult *mmuR = nullptr;
        const ScenarioResult *vmR = nullptr;
        for (const ScenarioResult &r : results) {
            if (r.name == "xfer_mmu")
                mmuR = &r;
            else if (r.name == "xfer_vm")
                vmR = &r;
        }
        if (mmuR == nullptr || vmR == nullptr ||
            mmuR->events != vmR->events || mmuR->simPs != vmR->simPs) {
            std::fprintf(
                stderr,
                "xfer_vm is not identical to xfer_mmu: "
                "events %llu vs %llu, sim_ps %llu vs %llu\n",
                static_cast<unsigned long long>(mmuR ? mmuR->events
                                                     : 0),
                static_cast<unsigned long long>(vmR ? vmR->events : 0),
                static_cast<unsigned long long>(mmuR ? mmuR->simPs
                                                     : 0),
                static_cast<unsigned long long>(vmR ? vmR->simPs : 0));
            return 1;
        }
    }

    // Fast-forward gate: skipping the timing plane must not change a
    // single payload byte (same functional plane drives both runs), and
    // in full mode it must buy at least a 3x wall-clock win over the
    // timed xfer_mmu run. Quick mode skips the speed check only — its
    // sub-millisecond walls are scheduler noise.
    {
        const ScenarioResult *mmuR = nullptr;
        const ScenarioResult *ffR = nullptr;
        for (const ScenarioResult &r : results) {
            if (r.name == "xfer_mmu")
                mmuR = &r;
            else if (r.name == "xfer_ff")
                ffR = &r;
        }
        if (mmuR == nullptr || ffR == nullptr || mmuFnv != ffFnv) {
            std::fprintf(stderr,
                         "fast-forward memory image differs from the "
                         "timed run: fnv %016llx vs %016llx\n",
                         static_cast<unsigned long long>(mmuFnv),
                         static_cast<unsigned long long>(ffFnv));
            return 1;
        }
        const double speedup = mmuR->bestWallSec / ffR->bestWallSec;
        std::printf("fast-forward: %.1fx wall-clock vs xfer_mmu, "
                    "memory image identical (fnv %016llx)\n",
                    speedup, static_cast<unsigned long long>(mmuFnv));
        if (!quick && speedup < 3.0) {
            std::fprintf(stderr,
                         "fast-forward speedup %.2fx is below the 3x "
                         "floor\n",
                         speedup);
            return 1;
        }
    }

    // Thread-pool identity: the multi-threaded sweep must execute the
    // exact same per-job simulations as the serial one.
    {
        const ScenarioResult *oneR = nullptr;
        const ScenarioResult *mtR = nullptr;
        for (const ScenarioResult &r : results) {
            if (r.name == "sweep_1t")
                oneR = &r;
            else if (r.name == "sweep_mt")
                mtR = &r;
        }
        if (oneR == nullptr || mtR == nullptr ||
            oneR->events != mtR->events || oneR->simPs != mtR->simPs) {
            std::fprintf(
                stderr,
                "sweep_mt is not identical to sweep_1t: events %llu vs "
                "%llu, sim_ps %llu vs %llu\n",
                static_cast<unsigned long long>(oneR ? oneR->events
                                                     : 0),
                static_cast<unsigned long long>(mtR ? mtR->events : 0),
                static_cast<unsigned long long>(oneR ? oneR->simPs : 0),
                static_cast<unsigned long long>(mtR ? mtR->simPs : 0));
            return 1;
        }
    }

    std::uint64_t totalEvents = 0;
    double totalWall = 0;
    for (const ScenarioResult &r : results) {
        totalEvents += r.events;
        totalWall += r.bestWallSec;
    }
    std::printf("total: %llu events in %.2f s => %.2f Mev/s\n",
                static_cast<unsigned long long>(totalEvents), totalWall,
                static_cast<double>(totalEvents) / totalWall / 1e6);

    if (!outPath.empty()) {
        if (!writeJson(outPath, quick, reps, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", outPath.c_str());
    }
    return 0;
}

/**
 * @file
 * Wall-clock performance harness for the simulation engine itself (not
 * a paper figure). Runs a fixed set of simulation scenarios, reports
 * events/second and simulated-time per wall-second for each, and
 * optionally writes a machine-readable BENCH_engine.json so CI can
 * archive engine-throughput history.
 *
 * Scenarios:
 *   xfer_sw  - Fig. 6(a): software DRAM->PIM transfer, Base design
 *   xfer_mmu - Fig. 6(c): PIM-MMU DRAM->PIM transfer, BaseDHP design
 *   xfer_vm  - xfer_mmu submitted by virtual address through a tenant
 *              with zero-cost translation; asserted event- and
 *              cycle-identical to xfer_mmu before the JSON is written
 *   va       - Fig. 16 VA workload, both transfer directions, BaseDHP
 *   memcpy   - Fig. 14-style DRAM->DRAM memcpy, BaseDHP design
 *
 * Usage: perf_engine [--quick] [--reps <n>] [--out <path>]
 *   --quick scales the scenarios down (fewer DPUs, smaller buffers) so
 *   the binary doubles as a fast ctest smoke test; the JSON records
 *   which mode produced it. Wall times are best-of-<reps> to shave
 *   scheduler noise; events/sim-time are identical across reps by
 *   determinism.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "mmu/mmu.hh"
#include "sim/system.hh"
#include "workloads/prim.hh"

using namespace pimmmu;

namespace {

struct ScenarioResult
{
    std::string name;
    std::uint64_t events = 0;  //!< events executed (per rep)
    Tick simPs = 0;            //!< simulated time covered (per rep)
    double bestWallSec = 0.0;  //!< best-of-reps wall time
};

double
wallSecondsSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

/**
 * Run @p body (which builds a System and runs it to completion) once
 * per rep, keeping the best wall time. The event/sim-time counts are
 * taken from the last rep; determinism makes every rep identical.
 */
template <typename Body>
ScenarioResult
runScenario(const char *name, int reps, Body &&body)
{
    ScenarioResult r;
    r.name = name;
    r.bestWallSec = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        body(r);
        const double wall = wallSecondsSince(t0);
        if (wall < r.bestWallSec)
            r.bestWallSec = wall;
    }
    std::printf("  %-8s  %12llu events  %8.1f ms wall  %6.2f Mev/s  "
                "%7.3f sim-ms/wall-s\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.events),
                r.bestWallSec * 1e3,
                static_cast<double>(r.events) / r.bestWallSec / 1e6,
                static_cast<double>(r.simPs) / 1e9 / r.bestWallSec);
    std::fflush(stdout);
    return r;
}

bool
writeJson(const std::string &path, bool quick, int reps,
          const std::vector<ScenarioResult> &results)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"schema\": \"pim-mmu-bench-engine-v1\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        const double evPerSec =
            static_cast<double>(r.events) / r.bestWallSec;
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"events\": %llu, "
                      "\"sim_ps\": %llu, \"wall_s\": %.6f, "
                      "\"events_per_sec\": %.0f}%s\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.events),
                      static_cast<unsigned long long>(r.simPs),
                      r.bestWallSec, evPerSec,
                      i + 1 < results.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int reps = 3;
    std::string outPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = std::atoi(argv[++i]);
            if (reps < 1)
                reps = 1;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--reps <n>] "
                         "[--out <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (quick)
        reps = 1;

    const unsigned dpus = quick ? 64 : 512;
    const std::uint64_t xferBytes = quick ? 2 * kKiB : 8 * kKiB;
    const std::uint64_t memcpyBytes = quick ? kMiB : 8 * kMiB;

    std::printf("engine throughput harness (%s mode, best of %d)\n",
                quick ? "quick" : "full", reps);

    std::vector<ScenarioResult> results;

    results.push_back(runScenario(
        "xfer_sw", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::Base));
            sys.runTransfer(core::XferDirection::DramToPim, dpus,
                            xferBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    results.push_back(runScenario(
        "xfer_mmu", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            sys.runTransfer(core::XferDirection::DramToPim, dpus,
                            xferBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    results.push_back(runScenario(
        "xfer_vm", reps, [&](ScenarioResult &r) {
            sim::SystemConfig cfg = sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP);
            cfg.mmu.tlb = mmu::TlbConfig::zeroCost();
            sim::System sys(cfg);
            // Same single host allocation runTransfer(dir, ...) makes
            // internally in xfer_mmu, so the physical addresses match.
            const std::uint64_t total =
                std::uint64_t{dpus} * xferBytes;
            const Addr pa = sys.allocDram(total);
            auto roundUpPage = [](std::uint64_t v) {
                return (v + mmu::kPageBytes - 1) / mmu::kPageBytes *
                       mmu::kPageBytes;
            };
            mmu::Mmu &m = sys.mmu();
            const mmu::TenantId tenant = m.createTenant();
            const Addr vaBase = Addr{1} << 44;
            const Addr heapVa = Addr{1} << 45;
            for (const auto &st :
                 {m.map(tenant, vaBase, pa, roundUpPage(total),
                        mmu::kPageBytes, mmu::PagePerms::rw(),
                        mapping::MemSpace::Dram),
                  m.map(tenant, heapVa, 0, roundUpPage(xferBytes),
                        mmu::kPageBytes, mmu::PagePerms::rw(),
                        mapping::MemSpace::Pim)}) {
                if (!st.ok()) {
                    std::fprintf(stderr, "xfer_vm mapping failed: %s\n",
                                 st.str().c_str());
                    std::exit(1);
                }
            }
            core::PimMmuOp op;
            op.type = core::XferDirection::DramToPim;
            op.sizePerPim = xferBytes;
            op.pimBaseHeapPtr = heapVa;
            op.tenant = tenant;
            for (unsigned i = 0; i < dpus; ++i) {
                op.pimIdArr.push_back(i);
                op.dramAddrArr.push_back(
                    vaBase + std::uint64_t{i} * xferBytes);
            }
            const auto st = sys.runTransfer(std::move(op));
            if (!st.ok()) {
                std::fprintf(stderr, "xfer_vm transfer failed: %s\n",
                             st.status.str().c_str());
                std::exit(1);
            }
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    results.push_back(runScenario("va", reps, [&](ScenarioResult &r) {
        const workloads::PrimWorkload &w = workloads::primWorkload("VA");
        const std::uint64_t inB =
            quick ? w.inputBytesPerDpu / 8 : w.inputBytesPerDpu;
        const std::uint64_t outB =
            quick ? w.outputBytesPerDpu / 8 : w.outputBytesPerDpu;
        sim::System sys(sim::SystemConfig::paperTable1(
            sim::DesignPoint::BaseDHP));
        sys.runTransfer(core::XferDirection::DramToPim, dpus, inB);
        sys.runTransfer(core::XferDirection::PimToDram, dpus, outB);
        r.events = sys.eq().executed();
        r.simPs = sys.eq().now();
    }));

    results.push_back(runScenario(
        "memcpy", reps, [&](ScenarioResult &r) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            sys.runMemcpy(memcpyBytes);
            r.events = sys.eq().executed();
            r.simPs = sys.eq().now();
        }));

    // Identity assertion: virtual submission with zero-cost
    // translation must not perturb the engine — same events, same
    // final simulated time as the physical xfer_mmu scenario.
    {
        const ScenarioResult *mmuR = nullptr;
        const ScenarioResult *vmR = nullptr;
        for (const ScenarioResult &r : results) {
            if (r.name == "xfer_mmu")
                mmuR = &r;
            else if (r.name == "xfer_vm")
                vmR = &r;
        }
        if (mmuR == nullptr || vmR == nullptr ||
            mmuR->events != vmR->events || mmuR->simPs != vmR->simPs) {
            std::fprintf(
                stderr,
                "xfer_vm is not identical to xfer_mmu: "
                "events %llu vs %llu, sim_ps %llu vs %llu\n",
                static_cast<unsigned long long>(mmuR ? mmuR->events
                                                     : 0),
                static_cast<unsigned long long>(vmR ? vmR->events : 0),
                static_cast<unsigned long long>(mmuR ? mmuR->simPs
                                                     : 0),
                static_cast<unsigned long long>(vmR ? vmR->simPs : 0));
            return 1;
        }
    }

    std::uint64_t totalEvents = 0;
    double totalWall = 0;
    for (const ScenarioResult &r : results) {
        totalEvents += r.events;
        totalWall += r.bestWallSec;
    }
    std::printf("total: %llu events in %.2f s => %.2f Mev/s\n",
                static_cast<unsigned long long>(totalEvents), totalWall,
                static_cast<double>(totalEvents) / totalWall / 1e6);

    if (!outPath.empty()) {
        if (!writeJson(outPath, quick, reps, results)) {
            std::fprintf(stderr, "failed to write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", outPath.c_str());
    }
    return 0;
}

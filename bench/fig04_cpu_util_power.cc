/**
 * @file
 * Paper Fig. 4: fraction of active CPU cores and system power during
 * (a) DRAM->PIM and (b) PIM->DRAM data transfers, sampled over time.
 * The baseline software path pins every core in the AVX copy loop at
 * ~70 W; the PIM-MMU path (shown for contrast) leaves the CPU idle.
 *
 * The three panels are independent System runs, so they execute on a
 * SweepRunner pool (--threads) and print in panel order afterwards.
 */

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

struct Panel
{
    std::string table;   //!< rendered sample table
    std::string summary; //!< mean utilization/power line ("" if none)
};

Panel
timeline(sim::DesignPoint design, core::XferDirection dir)
{
    sim::System sys(sim::SystemConfig::paperTable1(design));
    auto xfer = sys.startTransfer(dir, 512, 16 * kKiB);

    Table t({"t (us)", "active cores (of 8)", "core util %",
             "system power (W)"});
    const Tick window = 100 * kPsPerUs;
    sim::EnergySnapshot prev = sys.snapshot();
    double utilSum = 0, powerSum = 0;
    int samples = 0;
    while (!xfer->done) {
        const Tick limit = sys.eq().now() + window;
        sys.runUntil([&] { return xfer->done; }, limit);
        const sim::EnergySnapshot cur = sys.snapshot();
        const Tick dt = cur.now - prev.now;
        if (dt == 0)
            break;
        const double activeCores =
            static_cast<double>(cur.cpuBusyPs - prev.cpuBusyPs) /
            static_cast<double>(dt);
        const sim::EnergyReport e = sim::computeEnergy(
            sys.config().power, prev, cur, sys.totalChannels());
        const double watts =
            e.totalJ() / (static_cast<double>(dt) / 1e12);
        t.row()
            .num(static_cast<double>(cur.now) / 1e6, 0)
            .num(activeCores)
            .num(100.0 * activeCores / sys.cpu().numCores(), 1)
            .num(watts, 1);
        utilSum += activeCores / sys.cpu().numCores();
        powerSum += watts;
        ++samples;
        prev = cur;
    }
    Panel p;
    p.table = t.str();
    if (samples > 0) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "mean core utilization %.1f%%, mean system power "
                      "%.1f W\n",
                      100.0 * utilSum / samples, powerSum / samples);
        p.summary = buf;
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Figure 4",
                  "Active CPU cores and system power during DRAM<->PIM "
                  "transfers (baseline; paper: ~100% cores, ~70 W)");

    struct Job
    {
        const char *note;
        sim::DesignPoint design;
        core::XferDirection dir;
    };
    const Job jobs[] = {
        {"\n(a) baseline DRAM->PIM", sim::DesignPoint::Base,
         core::XferDirection::DramToPim},
        {"\n(b) baseline PIM->DRAM", sim::DesignPoint::Base,
         core::XferDirection::PimToDram},
        {"\n(reference) PIM-MMU DRAM->PIM: transfer offloaded "
         "to the DCE",
         sim::DesignPoint::BaseDHP, core::XferDirection::DramToPim},
    };
    std::vector<Panel> panels(3);
    sim::SweepRunner runner(opts.threads);
    runner.run(3, [&](std::size_t j) {
        panels[j] = timeline(jobs[j].design, jobs[j].dir);
    });
    for (std::size_t j = 0; j < 3; ++j) {
        bench::note(jobs[j].note);
        std::fputs(panels[j].table.c_str(), stdout);
        if (!panels[j].summary.empty())
            std::fputs(panels[j].summary.c_str(), stdout);
    }
    std::fflush(stdout);
    return bench::finish(opts);
}

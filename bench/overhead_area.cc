/**
 * @file
 * Paper section VI-C: PIM-MMU implementation overhead. The DCE's SRAM
 * buffers dominate area; we report the CACTI-style estimate and the
 * DESIGN.md data-buffer sizing ablation (throughput vs buffer size).
 */

#include "bench/bench_util.hh"
#include "sim/energy.hh"
#include "sim/system.hh"

using namespace pimmmu;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Section VI-C",
                  "PIM-MMU implementation overhead and DCE buffer "
                  "sizing ablation");

    const sim::SystemConfig cfg = sim::SystemConfig::paperTable1();
    const double dataMm2 = sim::sramAreaMm2(cfg.dce.dataBufferBytes);
    const double addrMm2 =
        sim::sramAreaMm2(cfg.dce.addressBufferBytes);
    const double total = dataMm2 + addrMm2;
    const double dieMm2 = 230.0; // 0.85 mm^2 == 0.37% of die (paper)

    Table t({"component", "size", "area mm^2 (32nm)"});
    t.row()
        .cell("DCE data buffer")
        .cell(std::to_string(cfg.dce.dataBufferBytes / kKiB) + " KB")
        .num(dataMm2, 3);
    t.row()
        .cell("DCE address buffer")
        .cell(std::to_string(cfg.dce.addressBufferBytes / kKiB) +
              " KB")
        .num(addrMm2, 3);
    t.row().cell("total").cell("80 KB").num(total, 3);
    bench::printTable(t);
    std::printf("\n%.2f mm^2 = %.2f%% of a %.0f mm^2 CPU die "
                "(paper: 0.85 mm^2, 0.37%%)\n",
                total, 100.0 * total / dieMm2, dieMm2);

    bench::note("\ndata-buffer sizing ablation (DRAM->PIM, 512 cores, "
                "16 KB per core)");
    Table ab({"data buffer KB", "slots", "throughput GB/s"});
    for (std::uint64_t kb : {1ull, 4ull, 16ull, 64ull}) {
        sim::SystemConfig c =
            sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP);
        c.dce.dataBufferBytes = kb * kKiB;
        sim::System sys(c);
        const auto stats = sys.runTransfer(
            core::XferDirection::DramToPim, 512, 16 * kKiB);
        ab.row().num(kb).num(kb * kKiB / 64).num(stats.gbps());
    }
    bench::printTable(ab);
    return bench::finish(opts);
}

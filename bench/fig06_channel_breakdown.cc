/**
 * @file
 * Paper Fig. 6: per-channel write-throughput breakdown during (a) the
 * software-based coarse-grained DRAM->PIM transfer (write traffic
 * concentrates on whichever PIM channels the OS-scheduled copy threads
 * happen to target) vs (b) a hardware fine-grained transfer (traffic
 * evenly spread). We additionally show the PIM-MMU (PIM-MS) transfer,
 * which restores per-channel balance on the PIM side.
 */

#include <numeric>

#include "bench/bench_util.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

void
printChannels(const char *label, const std::vector<double> &gbps,
              double peakPerChannel)
{
    Table t({"channel", "write GB/s", "of channel peak %"});
    for (std::size_t ch = 0; ch < gbps.size(); ++ch) {
        t.row()
            .num(std::uint64_t{ch})
            .num(gbps[ch])
            .num(100.0 * gbps[ch] / peakPerChannel, 1);
    }
    const double total =
        std::accumulate(gbps.begin(), gbps.end(), 0.0);
    const double mx = *std::max_element(gbps.begin(), gbps.end());
    const double mn = *std::min_element(gbps.begin(), gbps.end());
    bench::note(std::string("\n") + label);
    bench::printTable(t);
    std::printf("total %.2f GB/s; imbalance (max/min) %.2f\n", total,
                mn > 0.01 ? mx / mn : 999.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts =
        bench::parseOptions(argc, argv);
    bench::banner("Figure 6",
                  "Per-channel write throughput: software coarse-"
                  "grained vs hardware fine-grained transfers");

    const double chPeak = 19.2;

    // The three measurements are independent Systems: run them as a
    // sweep (serial with --threads 1, the default) and print in order.
    sim::TransferStats results[3];
    sim::SweepRunner runner(opts.threads);
    runner.run(3, [&](std::size_t j) {
        if (j == 0) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::Base));
            results[0] = sys.runTransfer(core::XferDirection::DramToPim,
                                         512, 8 * kKiB);
        } else if (j == 1) {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            results[1] = sys.runMemcpy(8 * kMiB);
        } else {
            sim::System sys(sim::SystemConfig::paperTable1(
                sim::DesignPoint::BaseDHP));
            results[2] = sys.runTransfer(core::XferDirection::DramToPim,
                                         512, 8 * kKiB);
        }
    });

    printChannels("(a) software-based DRAM->PIM (PIM channels)",
                  results[0].pimChannelGbps, chPeak);
    std::printf("windowed imbalance (peak/mean per 100us): %.2f "
                "(1.0 = balanced, 4.0 = one channel at a time)\n",
                results[0].pimWindowImbalance);

    std::vector<double> writeGbps = results[1].dramChannelGbps;
    for (auto &v : writeGbps)
        v /= 2.0; // reads+writes share each channel evenly
    printChannels("(b) hardware-based DRAM->DRAM memcpy "
                  "(DRAM channels, write half)",
                  writeGbps, chPeak);

    printChannels("(c) PIM-MMU DRAM->PIM with PIM-MS "
                  "(PIM channels)",
                  results[2].pimChannelGbps, chPeak);
    std::printf("windowed imbalance (peak/mean per 100us): %.2f\n",
                results[2].pimWindowImbalance);
    return bench::finish(opts);
}

/**
 * @file
 * Interactive-free walkthrough of the paper's background figures:
 *
 *  - Fig. 1: how the BIOS interleaving knobs (1-way vs N-way) place
 *    channel/rank/bank bits in the physical address and what that does
 *    to memory-level parallelism (measured with a raw read stream);
 *  - Fig. 2: how the PIM-specific BIOS update splits the physical
 *    address space into disjoint DRAM and PIM regions so no bank is
 *    shared between them.
 */

#include <cstdio>

#include "dram/memory_system.hh"
#include "mapping/bios_config.hh"
#include "mapping/hetmap.hh"
#include "sim/stream_driver.hh"
#include "workloads/patterns.hh"

using namespace pimmmu;

namespace {

mapping::DramGeometry
geometry()
{
    mapping::DramGeometry g;
    g.channels = 4;
    g.ranksPerChannel = 2;
    g.bankGroups = 4;
    g.banksPerGroup = 4;
    g.rows = 4096;
    g.columns = 128;
    return g;
}

double
measure(const mapping::BiosConfig &bios)
{
    EventQueue eq;
    const mapping::DramGeometry g = geometry();
    mapping::DramGeometry pimG = g;
    pimG.rows = 64;
    mapping::SystemMap map(mapping::makeBiosMapper(g, bios),
                           mapping::makeLocalityCentricMapper(pimG));
    dram::MemorySystem mem(
        eq, map, dram::timingPreset(dram::SpeedGrade::DDR4_2400),
        dram::timingPreset(dram::SpeedGrade::DDR4_2400));
    sim::StreamDriver driver(eq, mem);
    return driver.run(workloads::sequentialPattern(0, 16384), false)
        .gbps();
}

void
showConfig(const char *label, const mapping::BiosConfig &bios)
{
    const mapping::DramGeometry g = geometry();
    auto mapper = mapping::makeBiosMapper(g, bios);
    std::printf("%-34s  layout (MSB..LSB over line offset): %s\n",
                label, mapper->name());
    // Where do the first 8 consecutive lines land?
    std::printf("  first 8 lines -> channels:");
    for (unsigned i = 0; i < 8; ++i)
        std::printf(" %u", mapper->map(Addr{i} * 64).ch);
    std::printf("\n  sequential read throughput: %.1f GB/s (peak %.1f)\n\n",
                measure(bios), 4 * 19.2);
}

} // namespace

int
main()
{
    std::printf("--- Fig. 1: BIOS interleaving knobs ---\n\n");

    mapping::BiosConfig allOneWay = mapping::BiosConfig::pimSeparated();
    showConfig("(b) 1-way everywhere (PIM BIOS)", allOneWay);

    mapping::BiosConfig chOnly;
    chOnly.channel = mapping::Interleave::NWay;
    chOnly.rank = mapping::Interleave::OneWay;
    chOnly.bankGroup = mapping::Interleave::OneWay;
    chOnly.bank = mapping::Interleave::OneWay;
    chOnly.xorHashing = false;
    showConfig("(c) N-way channel only", chOnly);

    showConfig("(d) N-way everywhere + XOR hash",
               mapping::BiosConfig::conventional());

    std::printf("--- Fig. 2: DRAM/PIM address-space separation ---\n\n");
    const mapping::DramGeometry g = geometry();
    auto het = mapping::makeHetMap(g, g);
    std::printf("physical address space: [0, %.1f GiB) = DRAM, "
                "[%.1f GiB, %.1f GiB) = PIM\n",
                static_cast<double>(het->dramCapacity()) / kGiB,
                static_cast<double>(het->dramCapacity()) / kGiB,
                static_cast<double>(het->totalCapacity()) / kGiB);

    // Demonstrate the disjointness the paper's Fig. 2(e) requires: no
    // (subsystem, channel, bank) is reachable from both regions, since
    // the regions route to entirely separate controllers.
    const auto dramSide = het->map(0);
    const auto pimSide = het->map(het->pimBase());
    std::printf("addr 0x0         -> %s subsystem, %s\n",
                dramSide.space == mapping::MemSpace::Dram ? "DRAM"
                                                          : "PIM",
                dramSide.coord.str().c_str());
    std::printf("addr pimBase     -> %s subsystem, %s\n",
                pimSide.space == mapping::MemSpace::Dram ? "DRAM"
                                                         : "PIM",
                pimSide.coord.str().c_str());
    std::printf("\nthe PIM region is carved per bank: each PIM core's "
                "MRAM is a contiguous %.0f MiB slab\n",
                static_cast<double>(g.bankBytes()) / kMiB);
    return 0;
}

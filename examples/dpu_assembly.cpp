/**
 * @file
 * End-to-end offload with a kernel written in DPU assembly: the input
 * vectors travel to the PIM device through the PIM-MMU, the kernel
 * executes on the cycle-counting tasklet interpreter (so kernel time
 * comes from real instruction/DMA counts instead of an analytic
 * model), and the verified results come back.
 *
 * The kernel: every tasklet grabs a tile of the two input arrays via
 * MRAM DMA, adds them in WRAM, and writes the tile of the result back.
 */

#include <cstdio>
#include <vector>

#include "pim/dpu_isa.hh"
#include "sim/system.hh"

using namespace pimmmu;

namespace {

// r1 = elements per DPU (i64 each), r2 = bytes per array.
// MRAM layout: A @ 0, B @ r2, C @ 2*r2.
// Each tasklet works on tiles of 64 elements (512 B), strided by the
// tasklet count; its WRAM window sits at tid * 1 KiB (two tiles).
const char *const kVecAdd64 = R"(
        tid   r10            ; tasklet id
        ntask r11            ; tasklet count
        ldi   r12, 512       ; tile bytes
        ldi   r13, 64        ; elements per tile
        mul   r14, r10, r12
        shl   r15, r10, 10   ; wram base = tid * 1024
        add   r16, r15, r12  ; wram half for B
        mov   r17, r14       ; byte offset of this tasklet's tile in A
        mul   r18, r11, r12  ; stride in bytes across tasklets
tile:   shl   r19, r1, 3     ; total bytes = elems * 8
        bge   r17, r19, done
        ; DMA in: A tile and B tile
        mrd   r15, r17, r12
        add   r20, r17, r2   ; mram addr of B tile
        mrd   r16, r20, r12
        ; add 64 i64 elements
        ldi   r3, 0
elem:   shl   r4, r3, 3
        add   r5, r4, r15
        ld    r6, r5, 0
        add   r5, r4, r16
        ld    r7, r5, 0
        add   r6, r6, r7
        add   r5, r4, r15
        sd    r5, 0, r6
        addi  r3, r3, 1
        blt   r3, r13, elem
        ; DMA out: C tile
        add   r20, r17, r2
        add   r20, r20, r2   ; mram addr of C tile
        mwr   r15, r20, r12
        add   r17, r17, r18
        jmp   tile
done:   halt
)";

} // namespace

int
main()
{
    sim::System sys(
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP));
    const unsigned numDpus = 64;
    const std::uint64_t elems = 1024; // i64 per DPU per array
    const std::uint64_t bytes = elems * 8;

    std::printf("DPU-assembly vector add: %u DPUs x %llu i64 elements\n",
                numDpus, static_cast<unsigned long long>(elems));

    // Host inputs.
    Rng rng(77);
    std::vector<std::int64_t> a(numDpus * elems), b(a.size());
    for (auto &v : a)
        v = static_cast<std::int64_t>(rng() & 0xffffffff);
    for (auto &v : b)
        v = static_cast<std::int64_t>(rng() & 0xffffffff);
    const Addr aBase = sys.allocDram(a.size() * 8);
    const Addr bBase = sys.allocDram(b.size() * 8);
    const Addr cBase = sys.allocDram(a.size() * 8);
    sys.mem().store().write(aBase, a.data(), a.size() * 8);
    sys.mem().store().write(bBase, b.data(), b.size() * 8);

    auto makeOp = [&](core::XferDirection dir, Addr host, Addr heap) {
        core::PimMmuOp op;
        op.type = dir;
        op.sizePerPim = bytes;
        op.pimBaseHeapPtr = heap;
        for (unsigned d = 0; d < numDpus; ++d) {
            op.dramAddrArr.push_back(host + Addr{d} * bytes);
            op.pimIdArr.push_back(d);
        }
        return op;
    };
    auto transfer = [&](const core::PimMmuOp &op) {
        bool done = false;
        const Tick t0 = sys.eq().now();
        sys.pimMmu().transfer(op, [&] { done = true; });
        sys.runUntil([&] { return done; });
        return sys.eq().now() - t0;
    };

    const Tick tIn =
        transfer(makeOp(core::XferDirection::DramToPim, aBase, 0)) +
        transfer(makeOp(core::XferDirection::DramToPim, bBase, bytes));

    // Assemble and launch on the tasklet interpreter.
    const device::DpuProgram program =
        device::DpuAssembler::assemble(kVecAdd64);
    std::vector<unsigned> ids(numDpus);
    for (unsigned d = 0; d < numDpus; ++d)
        ids[d] = d;
    device::DpuCoreConfig coreCfg;
    coreCfg.tasklets = 16;
    const Tick tKernel = sys.pim().launchProgram(
        ids, program,
        {{static_cast<std::int64_t>(elems),
          static_cast<std::int64_t>(bytes)}},
        coreCfg);

    const Tick tOut = transfer(
        makeOp(core::XferDirection::PimToDram, cBase, 2 * bytes));

    // Verify.
    std::vector<std::int64_t> c(a.size());
    sys.mem().store().read(cBase, c.data(), c.size() * 8);
    std::uint64_t errors = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
        errors += (c[i] != a[i] + b[i]);

    std::printf("  transfers in : %7.0f us (%.1f GB/s)\n",
                static_cast<double>(tIn) / 1e6,
                gbPerSec(2 * numDpus * bytes, tIn));
    std::printf("  kernel       : %7.0f us (interpreted: %zu-instr "
                "program, 16 tasklets)\n",
                static_cast<double>(tKernel) / 1e6, program.size());
    std::printf("  transfer out : %7.0f us (%.1f GB/s)\n",
                static_cast<double>(tOut) / 1e6,
                gbPerSec(numDpus * bytes, tOut));
    std::printf("  mismatches   : %llu\n",
                static_cast<unsigned long long>(errors));
    std::printf(errors == 0 ? "OK\n" : "FAILED\n");
    return errors == 0 ? 0 : 1;
}

/**
 * @file
 * Quickstart: offload a vector addition to the PIM device through the
 * PIM-MMU, mirroring the paper's Fig. 10(b) programming flow:
 *
 *   1. build a Table-I system (512 PIM cores, DCE + HetMap + PIM-MS)
 *   2. allocate and initialize host input arrays in DRAM
 *   3. pim_mmu_transfer the inputs DRAM->PIM (offloaded to the DCE)
 *   4. launch the SPMD vector-add kernel on every DPU
 *   5. pim_mmu_transfer the results PIM->DRAM
 *   6. verify against the host reference and print a timing summary
 */

#include <cstdio>
#include <vector>

#include "sim/system.hh"
#include "workloads/kernels.hh"

using namespace pimmmu;

int
main()
{
    // --- 1. the system -------------------------------------------------
    sim::System sys(
        sim::SystemConfig::paperTable1(sim::DesignPoint::BaseDHP));
    const unsigned numDpus = 512;
    const std::uint64_t elemsPerDpu = 4096;
    const std::uint64_t bytesPerDpu = elemsPerDpu * sizeof(std::int32_t);

    std::printf("pim-mmu quickstart: vector add on %u PIM cores "
                "(%llu elements each)\n",
                numDpus,
                static_cast<unsigned long long>(elemsPerDpu));

    // --- 2. host data ---------------------------------------------------
    const std::uint64_t totalElems = numDpus * elemsPerDpu;
    std::vector<std::int32_t> a(totalElems), b(totalElems);
    Rng rng(2024);
    for (std::uint64_t i = 0; i < totalElems; ++i) {
        a[i] = static_cast<std::int32_t>(rng() & 0xffff);
        b[i] = static_cast<std::int32_t>(rng() & 0xffff);
    }
    const Addr aBase = sys.allocDram(totalElems * 4);
    const Addr bBase = sys.allocDram(totalElems * 4);
    const Addr outBase = sys.allocDram(totalElems * 4);
    sys.mem().store().write(aBase, a.data(), totalElems * 4);
    sys.mem().store().write(bBase, b.data(), totalElems * 4);

    // --- 3. DRAM->PIM ---------------------------------------------------
    auto makeOp = [&](core::XferDirection dir, Addr hostBase,
                      Addr heapOff) {
        core::PimMmuOp op;
        op.type = dir;
        op.sizePerPim = bytesPerDpu;
        op.pimBaseHeapPtr = heapOff;
        for (unsigned d = 0; d < numDpus; ++d) {
            op.dramAddrArr.push_back(hostBase +
                                     Addr{d} * bytesPerDpu);
            op.pimIdArr.push_back(d);
        }
        return op;
    };
    auto transfer = [&](const core::PimMmuOp &op) {
        bool done = false;
        const Tick start = sys.eq().now();
        sys.pimMmu().transfer(op, [&] { done = true; });
        sys.runUntil([&] { return done; });
        return sys.eq().now() - start;
    };

    const Tick tA =
        transfer(makeOp(core::XferDirection::DramToPim, aBase, 0));
    const Tick tB = transfer(
        makeOp(core::XferDirection::DramToPim, bBase, bytesPerDpu));

    // --- 4. the SPMD kernel ----------------------------------------------
    std::vector<unsigned> ids(numDpus);
    for (unsigned d = 0; d < numDpus; ++d)
        ids[d] = d;
    device::KernelModel model;
    model.cyclesPerByte = 1.0;
    const Tick tKernel = sys.pim().launch(
        ids,
        workloads::vecAddKernel(elemsPerDpu, 0, bytesPerDpu,
                                2 * bytesPerDpu),
        model, bytesPerDpu);

    // --- 5. PIM->DRAM ---------------------------------------------------
    const Tick tOut = transfer(makeOp(core::XferDirection::PimToDram,
                                      outBase, 2 * bytesPerDpu));

    // --- 6. verify -------------------------------------------------------
    std::vector<std::int32_t> out(totalElems);
    sys.mem().store().read(outBase, out.data(), totalElems * 4);
    const auto expect = workloads::hostVecAdd(a, b);
    std::uint64_t errors = 0;
    for (std::uint64_t i = 0; i < totalElems; ++i)
        errors += (out[i] != expect[i]);

    const double mb =
        static_cast<double>(totalElems) * 4.0 / 1e6;
    std::printf("  DRAM->PIM  A: %6.0f us  (%.1f GB/s)\n",
                static_cast<double>(tA) / 1e6,
                gbPerSec(totalElems * 4, tA));
    std::printf("  DRAM->PIM  B: %6.0f us  (%.1f GB/s)\n",
                static_cast<double>(tB) / 1e6,
                gbPerSec(totalElems * 4, tB));
    std::printf("  PIM kernel  : %6.0f us  (modeled)\n",
                static_cast<double>(tKernel) / 1e6);
    std::printf("  PIM->DRAM   : %6.0f us  (%.1f GB/s)\n",
                static_cast<double>(tOut) / 1e6,
                gbPerSec(totalElems * 4, tOut));
    std::printf("  %.1f MB per operand, %llu mismatches\n", mb,
                static_cast<unsigned long long>(errors));
    std::printf(errors == 0 ? "OK: PIM result matches host reference\n"
                            : "FAILED: result mismatch\n");
    return errors == 0 ? 0 : 1;
}

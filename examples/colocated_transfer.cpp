/**
 * @file
 * Co-location study as a runnable example (the scenario of paper
 * Fig. 13): a DRAM->PIM transfer sharing the machine with busy CPU
 * tenants. Shows why offloading the transfer to the DCE makes PIM
 * deployable in consolidated servers: the baseline's copy threads
 * fight the tenants for cores, the PIM-MMU path does not.
 */

#include <cstdio>

#include "sim/system.hh"

using namespace pimmmu;

namespace {

double
transferMs(sim::DesignPoint design, unsigned computeTenants,
           bool memoryTenants)
{
    sim::System sys(sim::SystemConfig::paperTable1(design));
    sys.addComputeContenders(computeTenants);
    if (memoryTenants) {
        sys.addMemoryContenders(4, cpu::MemIntensity::High,
                                256 * kMiB);
    }
    const auto stats =
        sys.runTransfer(core::XferDirection::DramToPim, 512, 8 * kKiB);
    sys.cpu().shutdown();
    return stats.seconds() * 1e3;
}

} // namespace

int
main()
{
    std::printf("co-located DRAM->PIM transfer, 512 PIM cores x 8 KiB"
                "\n\n");
    std::printf("%-34s %12s %12s\n", "scenario", "Base (ms)",
                "PIM-MMU (ms)");

    struct Scenario
    {
        const char *name;
        unsigned compute;
        bool memory;
    } scenarios[] = {
        {"idle machine", 0, false},
        {"8 compute tenants", 8, false},
        {"24 compute tenants", 24, false},
        {"4 memory-hungry tenants", 0, true},
        {"24 compute + 4 memory tenants", 24, true},
    };

    double worstBase = 0, worstMmu = 0, idleBase = 0, idleMmu = 0;
    for (const auto &s : scenarios) {
        const double base =
            transferMs(sim::DesignPoint::Base, s.compute, s.memory);
        const double mmu =
            transferMs(sim::DesignPoint::BaseDHP, s.compute, s.memory);
        std::printf("%-34s %12.3f %12.3f\n", s.name, base, mmu);
        if (idleBase == 0) {
            idleBase = base;
            idleMmu = mmu;
        }
        worstBase = std::max(worstBase, base);
        worstMmu = std::max(worstMmu, mmu);
    }
    std::printf("\nworst-case degradation: baseline %.2fx, "
                "PIM-MMU %.2fx\n",
                worstBase / idleBase, worstMmu / idleMmu);
    return 0;
}

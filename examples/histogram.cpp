/**
 * @file
 * Byte histogram on PIM (PrIM HST), exercised through the baseline
 * dpu_set_t-style API (paper Fig. 10(a)): allocate a DPU set, prepare
 * per-DPU host buffers, push the transfer, run the kernel, gather the
 * per-DPU bins, and merge on the host.
 *
 * Histograms show the gather-side asymmetry: a large input transfer
 * in, a small per-DPU result out.
 */

#include <cstdio>
#include <vector>

#include "sim/system.hh"
#include "workloads/kernels.hh"

using namespace pimmmu;

int
main()
{
    sim::System sys(
        sim::SystemConfig::paperTable1(sim::DesignPoint::Base));
    const unsigned numDpus = 128;
    const std::uint64_t bytesPerDpu = 64 * kKiB;
    std::printf("histogram: %u DPUs x %llu KiB input\n", numDpus,
                static_cast<unsigned long long>(bytesPerDpu / kKiB));

    // Input data: a skewed byte distribution.
    Rng rng(99);
    std::vector<std::uint8_t> input(numDpus * bytesPerDpu);
    for (auto &b : input) {
        const std::uint64_t r = rng();
        b = static_cast<std::uint8_t>((r % 7 == 0) ? (r >> 8) & 0xff
                                                   : (r >> 8) & 0x3f);
    }
    const Addr inBase = sys.allocDram(input.size());
    sys.mem().store().write(inBase, input.data(), input.size());
    const std::uint64_t binBytes = 256 * 4;
    const Addr outBase = sys.allocDram(numDpus * binBytes);

    // The dpu_set_t-style flow of paper Fig. 10(a).
    upmem::DpuSet set(sys.upmem(), numDpus);
    for (unsigned d = 0; d < numDpus; ++d)
        set.prepareXfer(d, inBase + Addr{d} * bytesPerDpu);

    bool done = false;
    const Tick t0 = sys.eq().now();
    set.pushXfer(upmem::XferKind::ToDpu, 0, bytesPerDpu,
                 [&] { done = true; });
    sys.runUntil([&] { return done; });
    const Tick inXfer = sys.eq().now() - t0;

    device::KernelModel model;
    model.cyclesPerByte = 7.5; // PrIM HST-S profile
    const Tick kernel = set.launch(
        workloads::histogramKernel(bytesPerDpu, 0, bytesPerDpu), model,
        bytesPerDpu);

    // Gather per-DPU bins.
    for (unsigned d = 0; d < numDpus; ++d)
        set.prepareXfer(d, outBase + Addr{d} * binBytes);
    done = false;
    const Tick t1 = sys.eq().now();
    set.pushXfer(upmem::XferKind::FromDpu, bytesPerDpu, binBytes,
                 [&] { done = true; });
    sys.runUntil([&] { return done; });
    const Tick outXfer = sys.eq().now() - t1;

    // Merge on the host and verify.
    std::vector<std::uint32_t> merged(256, 0);
    for (unsigned d = 0; d < numDpus; ++d) {
        std::vector<std::uint32_t> bins(256);
        sys.mem().store().read(outBase + Addr{d} * binBytes,
                               bins.data(), binBytes);
        for (unsigned b = 0; b < 256; ++b)
            merged[b] += bins[b];
    }
    const auto expect = workloads::hostHistogram(input);
    const bool correct = (merged == expect);

    std::printf("  DRAM->PIM: %7.0f us (%.1f GB/s)\n",
                static_cast<double>(inXfer) / 1e6,
                gbPerSec(input.size(), inXfer));
    std::printf("  kernel   : %7.0f us (modeled)\n",
                static_cast<double>(kernel) / 1e6);
    std::printf("  PIM->DRAM: %7.0f us (small result gather)\n",
                static_cast<double>(outXfer) / 1e6);
    std::printf("  most common byte: 0x%02x (%u hits)\n",
                static_cast<unsigned>(std::max_element(merged.begin(),
                                                       merged.end()) -
                                      merged.begin()),
                *std::max_element(merged.begin(), merged.end()));
    std::printf(correct ? "OK: merged histogram matches host\n"
                        : "FAILED: histogram mismatch\n");
    return correct ? 0 : 1;
}

/**
 * @file
 * GEMV on PIM: the paper's motivating class of memory-bound workloads.
 * Each DPU owns a block of matrix rows; the input vector is broadcast,
 * the matrix block and vector are transferred DRAM->PIM, every DPU
 * computes its partial y, and results are gathered PIM->DRAM.
 *
 * The example runs the identical computation through the baseline
 * software transfer path (dpu_push_xfer-style) and the PIM-MMU path,
 * verifying both against the host reference and reporting the transfer
 * speedup — the end-to-end story of paper Fig. 16's GEMV bar.
 */

#include <cstdio>
#include <vector>

#include "sim/system.hh"
#include "workloads/kernels.hh"

using namespace pimmmu;

namespace {

struct RunResult
{
    Tick inXferPs;
    Tick outXferPs;
    bool correct;
};

RunResult
run(sim::DesignPoint design)
{
    sim::System sys(sim::SystemConfig::paperTable1(design));
    const unsigned numDpus = 256;
    const std::uint64_t rows = 32, cols = 256;
    const std::uint64_t mBytes = rows * cols * 4;
    const std::uint64_t xBytes = cols * 4;

    // Host data: matrix blocks per DPU plus one shared vector.
    Rng rng(7);
    std::vector<std::int32_t> m(numDpus * rows * cols), x(cols);
    for (auto &v : m)
        v = static_cast<std::int32_t>(rng() % 128) - 64;
    for (auto &v : x)
        v = static_cast<std::int32_t>(rng() % 128) - 64;

    const Addr mBase = sys.allocDram(numDpus * mBytes);
    const Addr xBase = sys.allocDram(numDpus * xBytes);
    const Addr yBase = sys.allocDram(numDpus * roundUp(rows * 4, 64));
    sys.mem().store().write(mBase, m.data(), m.size() * 4);
    for (unsigned d = 0; d < numDpus; ++d)
        sys.mem().store().write(xBase + Addr{d} * xBytes, x.data(),
                                xBytes);

    std::vector<unsigned> ids(numDpus);
    std::vector<Addr> mAddrs(numDpus), xAddrs(numDpus),
        yAddrs(numDpus);
    const std::uint64_t yStride = roundUp(rows * 4, 64);
    for (unsigned d = 0; d < numDpus; ++d) {
        ids[d] = d;
        mAddrs[d] = mBase + Addr{d} * mBytes;
        xAddrs[d] = xBase + Addr{d} * xBytes;
        yAddrs[d] = yBase + Addr{d} * yStride;
    }

    // Transfer helper: software path for Base, DCE path otherwise.
    auto transfer = [&](bool toPim, const std::vector<Addr> &hosts,
                        std::uint64_t bytes, Addr heapOff) {
        bool done = false;
        const Tick start = sys.eq().now();
        if (design == sim::DesignPoint::Base) {
            sys.upmem().pushXfer(toPim ? upmem::XferKind::ToDpu
                                       : upmem::XferKind::FromDpu,
                                 ids, hosts, bytes, heapOff,
                                 [&] { done = true; });
        } else {
            core::PimMmuOp op;
            op.type = toPim ? core::XferDirection::DramToPim
                            : core::XferDirection::PimToDram;
            op.sizePerPim = bytes;
            op.dramAddrArr = hosts;
            op.pimIdArr = ids;
            op.pimBaseHeapPtr = heapOff;
            sys.pimMmu().transfer(op, [&] { done = true; });
        }
        sys.runUntil([&] { return done; });
        return sys.eq().now() - start;
    };

    RunResult result{};
    result.inXferPs = transfer(true, mAddrs, mBytes, 0);
    result.inXferPs += transfer(true, xAddrs, xBytes, mBytes);

    device::KernelModel model;
    model.cyclesPerByte = 4.0; // PrIM GEMV profile
    sys.pim().launch(ids,
                     workloads::gemvKernel(rows, cols, 0, mBytes,
                                           mBytes + xBytes),
                     model, mBytes);

    result.outXferPs =
        transfer(false, yAddrs, yStride, mBytes + xBytes);

    // Verify.
    result.correct = true;
    for (unsigned d = 0; d < numDpus && result.correct; ++d) {
        std::vector<std::int32_t> slice(
            m.begin() + d * rows * cols,
            m.begin() + (d + 1) * rows * cols);
        const auto expect = workloads::hostGemv(slice, x, rows, cols);
        std::vector<std::int32_t> y(rows);
        sys.mem().store().read(yAddrs[d], y.data(), rows * 4);
        result.correct = (y == expect);
    }
    return result;
}

} // namespace

int
main()
{
    std::printf("GEMV on 256 PIM cores: 32x256 int32 block per DPU\n");
    const RunResult base = run(sim::DesignPoint::Base);
    const RunResult mmu = run(sim::DesignPoint::BaseDHP);

    auto ms = [](Tick t) { return static_cast<double>(t) / 1e9; };
    std::printf("  baseline : in %.3f ms, out %.3f ms, %s\n",
                ms(base.inXferPs), ms(base.outXferPs),
                base.correct ? "correct" : "WRONG");
    std::printf("  PIM-MMU  : in %.3f ms, out %.3f ms, %s\n",
                ms(mmu.inXferPs), ms(mmu.outXferPs),
                mmu.correct ? "correct" : "WRONG");
    std::printf("  transfer speedup: in %.2fx, out %.2fx\n",
                ms(base.inXferPs) / ms(mmu.inXferPs),
                ms(base.outXferPs) / ms(mmu.outXferPs));
    return (base.correct && mmu.correct) ? 0 : 1;
}

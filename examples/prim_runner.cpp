/**
 * @file
 * Run any of the 16 PrIM workloads end-to-end on the simulated system,
 * functionally verified, through the baseline or PIM-MMU transfer path.
 *
 * Usage:
 *   prim_runner [workload] [--base|--pim-mmu] [--dpus N] [--elems N]
 *
 * With no workload argument, runs the whole suite on both paths and
 * prints a summary table (a miniature, fully functional Fig. 16).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "workloads/prim_impl.hh"

using namespace pimmmu;

namespace {

workloads::PrimRunResult
run(const std::string &name, sim::DesignPoint design, unsigned dpus,
    std::uint64_t elems)
{
    sim::System sys(sim::SystemConfig::paperTable1(design));
    workloads::PrimRunConfig cfg;
    cfg.numDpus = dpus;
    cfg.elemsPerDpu = elems;
    auto bench = workloads::makePrimBenchmark(name, cfg);
    return workloads::runPrimBenchmark(sys, *bench);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    sim::DesignPoint design = sim::DesignPoint::BaseDHP;
    bool both = true;
    unsigned dpus = 64;
    std::uint64_t elems = 1024;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--base") == 0) {
            design = sim::DesignPoint::Base;
            both = false;
        } else if (std::strcmp(argv[i], "--pim-mmu") == 0) {
            design = sim::DesignPoint::BaseDHP;
            both = false;
        } else if (std::strcmp(argv[i], "--dpus") == 0 && i + 1 < argc) {
            dpus = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--elems") == 0 &&
                   i + 1 < argc) {
            elems = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else {
            workload = argv[i];
        }
    }

    std::vector<std::string> names;
    if (workload.empty())
        names = workloads::primBenchmarkNames();
    else
        names.push_back(workload);

    std::printf("PrIM functional runner: %u DPUs, %llu elems/DPU\n",
                dpus, static_cast<unsigned long long>(elems));

    Table t({"workload", "path", "in (us)", "kernel (us)", "out (us)",
             "total (us)", "verified"});
    bool allCorrect = true;
    for (const auto &name : names) {
        std::vector<sim::DesignPoint> designs;
        if (both) {
            designs = {sim::DesignPoint::Base,
                       sim::DesignPoint::BaseDHP};
        } else {
            designs = {design};
        }
        for (sim::DesignPoint dp : designs) {
            const auto r = run(name, dp, dpus, elems);
            t.row()
                .cell(name)
                .cell(dp == sim::DesignPoint::Base ? "baseline"
                                                   : "pim-mmu")
                .num(static_cast<double>(r.inXferPs) / 1e6, 1)
                .num(static_cast<double>(r.kernelPs) / 1e6, 1)
                .num(static_cast<double>(r.outXferPs) / 1e6, 1)
                .num(static_cast<double>(r.totalPs()) / 1e6, 1)
                .cell(r.correct ? "yes" : "NO");
            allCorrect = allCorrect && r.correct;
        }
    }
    std::fputs(t.str().c_str(), stdout);
    std::printf(allCorrect ? "\nall verified\n"
                           : "\nVERIFICATION FAILURES\n");
    return allCorrect ? 0 : 1;
}

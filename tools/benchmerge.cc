/**
 * @file
 * benchmerge: splice sharded campaign outputs back into the unsharded
 * file, byte for byte.
 *
 * Campaign benches (fig_resilience, fig_tlb) accept
 * `--shards N --shard-index i` and then run only the sweep jobs with
 * job % N == i, writing a partial BENCH_*.json that contains
 *   - the normal header plus a `"shard": {"count": N, "index": i}`
 *     line, and
 *   - one row per owned job, each tagged `"name": "job<J>"`, with the
 *     exact bytes an unsharded run would have written for that row.
 *
 * benchmerge validates that the partials agree (same header minus the
 * shard line, same footer, every job present exactly once, contiguous
 * job ids from 0) and emits the header + rows sorted by job id +
 * footer — which equals the unsharded output byte for byte, so CI can
 * `cmp` the merged file against a reference run and downstream tools
 * (statdiff) never need to know sharding exists.
 *
 * Usage:
 *   benchmerge -o <merged.json> <shard0.json> <shard1.json> ...
 *
 * Exit codes: 0 merged clean, 1 shard inconsistency (missing or
 * duplicate jobs, header mismatch, unparseable row), 2 usage/IO error.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "json_lite.hh"

namespace {

/** One partial file, split at its row array. */
struct Partial
{
    std::string path;
    std::vector<std::string> header; //!< lines before the array open
    std::vector<std::string> footer; //!< "  ]" and everything after
    /** Rows keyed by job id, trailing comma stripped. */
    std::map<unsigned long, std::string> rows;
    /** 1-based source line of each row, for diagnostics. */
    std::map<unsigned long, std::size_t> rowLines;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool
isShardHeaderLine(const std::string &line)
{
    return line.rfind("  \"shard\": ", 0) == 0;
}

/** The `  "scenarios": [` / `  "points": [` line opening the rows. */
bool
isArrayOpenLine(const std::string &line)
{
    return line == "  \"scenarios\": [" || line == "  \"points\": [";
}

/** Extract the job id from a row's `"name": "job<N>"` tag. */
bool
rowJob(const std::string &row, unsigned long &job)
{
    static const char tag[] = "\"name\": \"job";
    const std::size_t at = row.find(tag);
    if (at == std::string::npos)
        return false;
    const char *digits = row.c_str() + at + sizeof(tag) - 1;
    char *end = nullptr;
    job = std::strtoul(digits, &end, 10);
    return end != digits && *end == '"';
}

bool
loadPartial(const std::string &path, Partial &out, std::string &why)
{
    std::string text;
    if (!jsonlite::readFile(path, text)) {
        why = "cannot read file";
        return false;
    }
    // The whole partial must be valid JSON before we splice its text.
    {
        std::string error;
        jsonlite::JsonValue root;
        if (!jsonlite::JsonParser(text, error).parse(root)) {
            why = "invalid JSON: " + error;
            return false;
        }
    }

    out.path = path;
    const std::vector<std::string> lines = splitLines(text);
    // 1-based line numbers in every diagnostic, so a bad shard can be
    // opened at the offending line instead of re-diffed by eye.
    auto atLine = [](std::size_t idx) {
        return "line " + std::to_string(idx + 1) + ": ";
    };
    std::size_t i = 0;
    for (; i < lines.size(); ++i) {
        if (isArrayOpenLine(lines[i])) {
            out.header.push_back(lines[i]);
            ++i;
            break;
        }
        if (!isShardHeaderLine(lines[i]))
            out.header.push_back(lines[i]);
    }
    if (i >= lines.size()) {
        why = "no scenarios/points array found in " +
              std::to_string(lines.size()) + " lines";
        return false;
    }
    for (; i < lines.size(); ++i) {
        if (lines[i].rfind("  ]", 0) == 0)
            break;
        std::string row = lines[i];
        if (!row.empty() && row.back() == ',')
            row.pop_back();
        unsigned long job = 0;
        if (!rowJob(row, job)) {
            why = atLine(i) +
                  "row without a \"name\": \"job<N>\" tag: " + row;
            return false;
        }
        if (out.rows.count(job)) {
            why = atLine(i) + "job " + std::to_string(job) +
                  " appears twice in one shard";
            return false;
        }
        out.rows.emplace(job, std::move(row));
        out.rowLines.emplace(job, i + 1);
    }
    if (i >= lines.size()) {
        why = "array opened but never closes (truncated shard? last "
              "line " +
              std::to_string(lines.size()) + ")";
        return false;
    }
    for (; i < lines.size(); ++i)
        out.footer.push_back(lines[i]);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: %s -o <merged.json> <shard.json>...\n",
                        argv[0]);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: %s -o <merged.json> <shard.json>...\n",
                         argv[0]);
            return 2;
        } else {
            inputs.push_back(argv[i]);
        }
    }
    if (outPath.empty() || inputs.empty()) {
        std::fprintf(stderr,
                     "usage: %s -o <merged.json> <shard.json>...\n",
                     argv[0]);
        return 2;
    }

    std::vector<Partial> partials(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::string why;
        if (!loadPartial(inputs[i], partials[i], why)) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                         inputs[i].c_str(), why.c_str());
            return why.rfind("cannot read", 0) == 0 ? 2 : 1;
        }
    }

    // Shards of one campaign must agree on everything but row
    // ownership.
    const Partial &ref = partials[0];
    for (std::size_t i = 1; i < partials.size(); ++i) {
        if (partials[i].header != ref.header) {
            // Point at the first differing header line.
            std::size_t d = 0;
            while (d < partials[i].header.size() &&
                   d < ref.header.size() &&
                   partials[i].header[d] == ref.header[d])
                ++d;
            const char *got = d < partials[i].header.size()
                                  ? partials[i].header[d].c_str()
                                  : "<missing>";
            const char *want = d < ref.header.size()
                                   ? ref.header[d].c_str()
                                   : "<missing>";
            std::fprintf(stderr,
                         "%s: %s: line %zu: header disagrees with %s "
                         "(different campaign or configuration?)\n"
                         "  got:  %s\n  want: %s\n",
                         argv[0], partials[i].path.c_str(), d + 1,
                         ref.path.c_str(), got, want);
            return 1;
        }
        if (partials[i].footer != ref.footer) {
            std::fprintf(stderr, "%s: %s footer disagrees with %s\n",
                         argv[0], partials[i].path.c_str(),
                         ref.path.c_str());
            return 1;
        }
    }

    std::map<unsigned long, std::string> merged;
    std::map<unsigned long, const Partial *> owners;
    for (const Partial &p : partials) {
        for (const auto &kv : p.rows) {
            if (merged.count(kv.first)) {
                std::fprintf(stderr,
                             "%s: %s: line %zu: job %lu already "
                             "provided by %s\n",
                             argv[0], p.path.c_str(),
                             p.rowLines.at(kv.first), kv.first,
                             owners.at(kv.first)->path.c_str());
                return 1;
            }
            merged.emplace(kv.first, kv.second);
            owners.emplace(kv.first, &p);
        }
    }
    if (merged.empty()) {
        std::fprintf(stderr, "%s: no rows in any shard\n", argv[0]);
        return 1;
    }
    // Contiguity: the sweep owns jobs 0..max with no holes.
    unsigned long expect = 0;
    for (const auto &kv : merged) {
        if (kv.first != expect) {
            std::fprintf(stderr, "%s: job %lu missing from all shards\n",
                         argv[0], expect);
            return 1;
        }
        ++expect;
    }

    std::string out;
    for (const std::string &line : ref.header)
        out += line + "\n";
    std::size_t i = 0;
    for (const auto &kv : merged) {
        out += kv.second;
        out += (++i < merged.size()) ? ",\n" : "\n";
    }
    for (const std::string &line : ref.footer)
        out += line + "\n";

    std::FILE *f = std::fopen(outPath.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
        std::fprintf(stderr, "%s: failed to write %s\n", argv[0],
                     outPath.c_str());
        if (f != nullptr)
            std::fclose(f);
        return 2;
    }
    std::fclose(f);
    std::printf("merged %zu rows from %zu shard%s into %s\n",
                merged.size(), partials.size(),
                partials.size() == 1 ? "" : "s", outPath.c_str());
    return 0;
}

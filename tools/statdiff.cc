/**
 * @file
 * statdiff: diff two simulator JSON reports (BENCH_*.json,
 * --stats-json dumps, --attrib-json reports) metric by metric and gate
 * on percent deltas. The CI perf-smoke job runs it against the
 * committed bench/baselines/BENCH_engine.baseline.json to catch engine
 * throughput regressions.
 *
 * Usage:
 *   statdiff <baseline.json> <current.json>
 *            [--warn <pct>] [--fail <pct>]
 *            [--metric <glob>=<warnpct>:<failpct>]...
 *            [--only <glob>]... [--ignore <glob>]...
 *            [--quiet]
 *
 * Both files are flattened to dot-path metrics: object keys join with
 * '.', arrays of objects that carry a string "name" field key by that
 * name, other arrays key by index. Only numeric (and boolean) leaves
 * are compared; string leaves are checked for equality and reported as
 * warnings when they differ.
 *
 * Per-metric rules (--metric, last match wins) override the default
 * --warn/--fail thresholds; a threshold of "-" disables that level for
 * the matched metrics. Exit code: 0 clean (warnings allowed), 1 if any
 * metric crossed its fail threshold or a compared metric disappeared,
 * 2 on usage/parse errors.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "json_lite.hh"

namespace {

using jsonlite::JsonParser;
using jsonlite::JsonValue;
using jsonlite::readFile;

// ---------------------------------------------------------------------
// Flattening: JSON tree -> ordered dot-path metric list.
// ---------------------------------------------------------------------

struct Metrics
{
    /** Numeric (and boolean) leaves, in file order. */
    std::vector<std::pair<std::string, double>> numbers;
    /** String leaves, for equality checks. */
    std::vector<std::pair<std::string, std::string>> strings;
};

std::string
joinPath(const std::string &prefix, const std::string &key)
{
    return prefix.empty() ? key : prefix + "." + key;
}

void
flatten(const JsonValue &v, const std::string &path, Metrics &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        break;
      case JsonValue::Kind::Bool:
        out.numbers.emplace_back(path, v.boolean ? 1.0 : 0.0);
        break;
      case JsonValue::Kind::Number:
        out.numbers.emplace_back(path, v.number);
        break;
      case JsonValue::Kind::String:
        out.strings.emplace_back(path, v.str);
        break;
      case JsonValue::Kind::Object:
        for (const auto &e : v.entries)
            flatten(e.second, joinPath(path, e.first), out);
        break;
      case JsonValue::Kind::Array: {
        // Arrays of objects with a string "name" field key by name
        // (stats groups, bench scenarios); everything else by index.
        bool allNamed = !v.items.empty();
        for (const JsonValue &item : v.items) {
            const JsonValue *name =
                item.kind == JsonValue::Kind::Object
                    ? item.field("name")
                    : nullptr;
            if (name == nullptr ||
                name->kind != JsonValue::Kind::String) {
                allNamed = false;
                break;
            }
        }
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            const std::string key =
                allNamed ? v.items[i].field("name")->str
                         : std::to_string(i);
            flatten(v.items[i], joinPath(path, key), out);
        }
        break;
      }
    }
}

// ---------------------------------------------------------------------
// Globs and threshold rules.
// ---------------------------------------------------------------------

/** fnmatch-lite: '*' matches any run of characters (including '.'),
 *  '?' matches one character. */
bool
globMatch(const char *pat, const char *str)
{
    if (*pat == '\0')
        return *str == '\0';
    if (*pat == '*') {
        for (const char *s = str;; ++s) {
            if (globMatch(pat + 1, s))
                return true;
            if (*s == '\0')
                return false;
        }
    }
    if (*str == '\0')
        return false;
    if (*pat == '?' || *pat == *str)
        return globMatch(pat + 1, str + 1);
    return false;
}

bool
globMatch(const std::string &pat, const std::string &str)
{
    return globMatch(pat.c_str(), str.c_str());
}

struct Rule
{
    std::string glob;
    double warnPct = 10.0;
    double failPct = 25.0;
    bool warnEnabled = true;
    bool failEnabled = true;
};

/** Parse "<glob>=<warn>:<fail>" where either threshold may be "-". */
bool
parseRule(const std::string &spec, Rule &out)
{
    const std::size_t eq = spec.rfind('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    const std::size_t colon = spec.find(':', eq + 1);
    if (colon == std::string::npos)
        return false;
    out.glob = spec.substr(0, eq);
    const std::string warn = spec.substr(eq + 1, colon - eq - 1);
    const std::string fail = spec.substr(colon + 1);
    auto parsePct = [](const std::string &s, double &pct,
                       bool &enabled) {
        if (s == "-") {
            enabled = false;
            return true;
        }
        char *end = nullptr;
        pct = std::strtod(s.c_str(), &end);
        enabled = true;
        return end != nullptr && *end == '\0' && pct >= 0.0;
    };
    return parsePct(warn, out.warnPct, out.warnEnabled) &&
           parsePct(fail, out.failPct, out.failEnabled);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    std::vector<Rule> rules;
    std::vector<std::string> only;
    std::vector<std::string> ignore;
    Rule defaults;
    bool quiet = false;

    auto usage = [&]() {
        std::fprintf(
            stderr,
            "usage: %s <baseline.json> <current.json>\n"
            "          [--warn <pct>] [--fail <pct>]\n"
            "          [--metric <glob>=<warnpct>:<failpct>]...\n"
            "          [--only <glob>]... [--ignore <glob>]...\n"
            "          [--quiet]\n",
            argv[0]);
        return 2;
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--warn") == 0 ||
            std::strcmp(arg, "--fail") == 0) {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            const double v = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || v < 0.0)
                return usage();
            (arg[2] == 'w' ? defaults.warnPct : defaults.failPct) = v;
            continue;
        }
        if (std::strcmp(arg, "--metric") == 0) {
            if (i + 1 >= argc)
                return usage();
            Rule r = defaults;
            if (!parseRule(argv[++i], r)) {
                std::fprintf(stderr, "%s: bad --metric spec: %s\n",
                             argv[0], argv[i]);
                return 2;
            }
            rules.push_back(r);
            continue;
        }
        if (std::strcmp(arg, "--only") == 0 ||
            std::strcmp(arg, "--ignore") == 0) {
            if (i + 1 >= argc)
                return usage();
            (arg[2] == 'o' ? only : ignore).push_back(argv[++i]);
            continue;
        }
        if (std::strcmp(arg, "--quiet") == 0) {
            quiet = true;
            continue;
        }
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        }
        if (arg[0] == '-')
            return usage();
        files.push_back(arg);
    }
    if (files.size() != 2)
        return usage();

    Metrics base, cur;
    for (int which = 0; which < 2; ++which) {
        const std::string &path = files[static_cast<std::size_t>(which)];
        std::string text, error;
        if (!readFile(path, text)) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         path.c_str());
            return 2;
        }
        JsonValue root;
        if (!JsonParser(text, error).parse(root)) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0], path.c_str(),
                         error.c_str());
            return 2;
        }
        flatten(root, "", which == 0 ? base : cur);
    }

    auto selected = [&](const std::string &path) {
        for (const std::string &g : ignore)
            if (globMatch(g, path))
                return false;
        if (only.empty())
            return true;
        for (const std::string &g : only)
            if (globMatch(g, path))
                return true;
        return false;
    };
    auto ruleFor = [&](const std::string &path) {
        Rule r = defaults;
        for (const Rule &candidate : rules)
            if (globMatch(candidate.glob, path))
                r = candidate; // last match wins
        return r;
    };

    std::map<std::string, double> curNumbers(cur.numbers.begin(),
                                             cur.numbers.end());
    std::map<std::string, std::string> curStrings(cur.strings.begin(),
                                                  cur.strings.end());

    unsigned compared = 0, warned = 0, failed = 0;
    for (const auto &[path, baseVal] : base.numbers) {
        if (!selected(path))
            continue;
        const auto it = curNumbers.find(path);
        if (it == curNumbers.end()) {
            std::printf("FAIL  %-48s  missing from %s\n", path.c_str(),
                        files[1].c_str());
            ++failed;
            continue;
        }
        ++compared;
        const double curVal = it->second;
        double deltaPct = 0.0;
        if (baseVal == curVal)
            deltaPct = 0.0;
        else if (baseVal == 0.0)
            deltaPct = 100.0;
        else
            deltaPct = (curVal - baseVal) / std::fabs(baseVal) * 100.0;
        const Rule r = ruleFor(path);
        const double mag = std::fabs(deltaPct);
        const char *status = "ok";
        if (r.failEnabled && mag > r.failPct) {
            status = "FAIL";
            ++failed;
        } else if (r.warnEnabled && mag > r.warnPct) {
            status = "WARN";
            ++warned;
        }
        if (!quiet || std::strcmp(status, "ok") != 0)
            std::printf("%-4s  %-48s  %14.6g -> %-14.6g  %+7.2f%%\n",
                        status, path.c_str(), baseVal, curVal,
                        deltaPct);
    }
    for (const auto &[path, baseStr] : base.strings) {
        if (!selected(path))
            continue;
        const auto it = curStrings.find(path);
        if (it == curStrings.end()) {
            std::printf("WARN  %-48s  string missing from %s\n",
                        path.c_str(), files[1].c_str());
            ++warned;
        } else if (it->second != baseStr) {
            std::printf("WARN  %-48s  \"%s\" -> \"%s\"\n", path.c_str(),
                        baseStr.c_str(), it->second.c_str());
            ++warned;
        }
    }
    // New metrics are informational: a regression gate cares about
    // what the baseline had, not what the current run added.
    unsigned added = 0;
    for (const auto &[path, val] : cur.numbers) {
        (void)val;
        bool inBase = false;
        for (const auto &[bpath, bval] : base.numbers) {
            (void)bval;
            if (bpath == path) {
                inBase = true;
                break;
            }
        }
        if (!inBase && selected(path))
            ++added;
    }

    std::printf("statdiff: %u compared, %u warned, %u failed", compared,
                warned, failed);
    if (added > 0)
        std::printf(", %u new metric%s", added, added == 1 ? "" : "s");
    std::printf("  [%s vs %s]\n", files[0].c_str(), files[1].c_str());
    return failed > 0 ? 1 : 0;
}

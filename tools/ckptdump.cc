/**
 * @file
 * Snapshot inspector for the PIM-MMU checkpoint format (PIMCKPT1).
 *
 *   ckptdump <file>                 header + section table, CRC-verified
 *   ckptdump <file> --section TAG   hexdump one section's payload
 *
 * Reading goes through the same checkpoint::readFile the simulator
 * uses, so a file this tool lists clean is exactly a file restore()
 * will accept: corrupt or torn snapshots exit non-zero with the
 * loader's structured file/offset diagnostic. Unlike statdiff and
 * benchmerge this tool links the checkpoint library on purpose — it
 * exists to share the loader, not to reimplement it.
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "checkpoint/format.hh"

using namespace pimmmu;

namespace {

void
hexdump(const std::vector<std::uint8_t> &data)
{
    for (std::size_t off = 0; off < data.size(); off += 16) {
        std::printf("  %08zx  ", off);
        for (std::size_t i = 0; i < 16; ++i) {
            if (off + i < data.size())
                std::printf("%02x ", data[off + i]);
            else
                std::printf("   ");
            if (i == 7)
                std::printf(" ");
        }
        std::printf(" |");
        for (std::size_t i = 0; i < 16 && off + i < data.size(); ++i) {
            const unsigned char c = data[off + i];
            std::printf("%c", std::isprint(c) ? c : '.');
        }
        std::printf("|\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string wantTag;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--section") == 0 && i + 1 < argc) {
            wantTag = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: %s <snapshot> [--section TAG]\n",
                         argv[0]);
            return 2;
        } else {
            path = argv[i];
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: %s <snapshot> [--section TAG]\n",
                     argv[0]);
        return 2;
    }

    std::vector<checkpoint::Section> sections;
    const resilience::Status st = checkpoint::readFile(path, sections);
    if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.str().c_str());
        return 1;
    }

    if (!wantTag.empty()) {
        const checkpoint::Section *s =
            findSection(sections, wantTag.c_str());
        if (!s) {
            std::fprintf(stderr, "no section '%s' in %s\n",
                         wantTag.c_str(), path.c_str());
            return 1;
        }
        std::printf("section '%s' v%u, %zu bytes\n", s->tag.c_str(),
                    s->version, s->payload.size());
        hexdump(s->payload);
        return 0;
    }

    std::uint64_t total = 0;
    std::printf("%s: PIMCKPT1 format v%u, %zu sections, all CRCs ok\n",
                path.c_str(), checkpoint::kFormatVersion,
                sections.size());
    std::printf("  %-6s %-8s %s\n", "tag", "version", "payload bytes");
    for (const checkpoint::Section &s : sections) {
        std::printf("  '%s' %-8u %zu\n", s.tag.c_str(), s.version,
                    s.payload.size());
        total += s.payload.size();
    }
    std::printf("  total payload: %llu bytes\n",
                static_cast<unsigned long long>(total));
    return 0;
}

/**
 * @file
 * Minimal dependency-free JSON value + recursive-descent parser shared
 * by the repo's offline tools (statdiff, benchmerge). Header-only on
 * purpose: the tools stay single-file executables with no link-time
 * coupling to the simulator libraries.
 *
 * Supports the JSON subset the simulator emits: objects (entry order
 * preserved), arrays, strings with the standard escapes (\uXXXX
 * encoded to UTF-8), numbers via strtod, true/false/null.
 */

#ifndef PIMMMU_TOOLS_JSON_LITE_HH
#define PIMMMU_TOOLS_JSON_LITE_HH

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace jsonlite {

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    /** Object entries in file order (order matters for reporting). */
    std::vector<std::pair<std::string, JsonValue>> entries;

    const JsonValue *
    field(const std::string &key) const
    {
        for (const auto &e : entries)
            if (e.first == key)
                return &e.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing data after JSON document");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n')
                ++line;
        std::ostringstream os;
        os << why << " (line " << line << ")";
        error_ = os.str();
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' in object");
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.entries.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Metric names are ASCII in practice; encode the rest
                // as UTF-8 so round-trips stay lossless.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a JSON value");
        pos_ += static_cast<std::size_t>(end - start);
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

/** Slurp a file into @p out; false when it cannot be opened. */
inline bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    out = os.str();
    return true;
}

} // namespace jsonlite

#endif // PIMMMU_TOOLS_JSON_LITE_HH

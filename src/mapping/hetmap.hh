/**
 * @file
 * HetMap: the Heterogeneous Memory Mapping Unit (paper section IV-E).
 *
 * The physical address space is split into a DRAM region and a PIM
 * region (established by the BIOS at boot). HetMap dispatches each
 * incoming physical address to one of two mapping functions:
 *
 *  - DRAM region: MLP-centric mapping (XOR hashing, channel bits near
 *    the LSB) over the conventional DRAM channels.
 *  - PIM region: locality-centric ChRaBgBkRoCo mapping over the PIM
 *    channels, honoring per-bank PIM address spaces.
 *
 * The baseline (pre-PIM-MMU) system instead applies the locality-centric
 * function homogeneously to both regions; makeBaselineMap() builds that.
 */

#ifndef PIMMMU_MAPPING_HETMAP_HH
#define PIMMMU_MAPPING_HETMAP_HH

#include <memory>

#include "mapping/layout_mapper.hh"

namespace pimmmu {
namespace mapping {

/** Which region of the physical address space a request targets. */
enum class MemSpace
{
    Dram,
    Pim
};

/** A fully resolved target: region + device coordinate inside it. */
struct MappedTarget
{
    MemSpace space;
    DramCoord coord;
};

/**
 * Two-region physical address map. Region layout:
 *   [0, dramCapacity)                -> DRAM subsystem
 *   [dramCapacity, + pimCapacity)    -> PIM subsystem
 */
class SystemMap
{
  public:
    /**
     * @param dramMapper mapping for the DRAM region
     * @param pimMapper  mapping for the PIM region
     */
    SystemMap(MapperPtr dramMapper, MapperPtr pimMapper);

    /** Decode a physical address into (region, coordinate). */
    MappedTarget map(Addr addr) const;

    /** Re-encode (region, coordinate) to the physical address. */
    Addr unmap(const MappedTarget &target) const;

    /** First physical address of the PIM region. */
    Addr pimBase() const { return dramCapacity_; }

    Addr dramCapacity() const { return dramCapacity_; }
    Addr pimCapacity() const { return pimCapacity_; }
    Addr totalCapacity() const { return dramCapacity_ + pimCapacity_; }

    bool
    isPim(Addr addr) const
    {
        return addr >= dramCapacity_ && addr < totalCapacity();
    }

    const AddressMapper &dramMapper() const { return *dram_; }
    const AddressMapper &pimMapper() const { return *pim_; }

  private:
    MapperPtr dram_;
    MapperPtr pim_;
    Addr dramCapacity_;
    Addr pimCapacity_;
};

using SystemMapPtr = std::unique_ptr<SystemMap>;

/**
 * HetMap proper: MLP-centric for DRAM, locality-centric for PIM
 * (paper Fig. 9, right side).
 */
SystemMapPtr makeHetMap(const DramGeometry &dramGeometry,
                        const DramGeometry &pimGeometry);

/**
 * The baseline PIM-enabled system: one locality-centric function
 * enforced homogeneously on both regions (paper Fig. 7(a), the
 * side-effect characterized as Challenge #3).
 */
SystemMapPtr makeBaselineMap(const DramGeometry &dramGeometry,
                             const DramGeometry &pimGeometry);

} // namespace mapping
} // namespace pimmmu

#endif // PIMMMU_MAPPING_HETMAP_HH

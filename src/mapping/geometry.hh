/**
 * @file
 * DRAM subsystem geometry and device coordinates.
 */

#ifndef PIMMMU_MAPPING_GEOMETRY_HH
#define PIMMMU_MAPPING_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace pimmmu {
namespace mapping {

/**
 * The shape of one memory subsystem (a set of channels of identical
 * DIMMs). All dimensions must be powers of two so addresses decompose
 * into bit fields.
 */
struct DramGeometry
{
    unsigned channels = 4;
    unsigned ranksPerChannel = 2;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rows = 32768;
    /** Row width in cache lines (columns / (lineBytes / device width)). */
    unsigned columns = 128;
    unsigned lineBytes = 64;

    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }

    std::uint64_t
    rowBytes() const
    {
        return std::uint64_t{columns} * lineBytes;
    }

    std::uint64_t
    bankBytes() const
    {
        return std::uint64_t{rows} * rowBytes();
    }

    std::uint64_t
    rankBytes() const
    {
        return std::uint64_t{banksPerRank()} * bankBytes();
    }

    std::uint64_t
    channelBytes() const
    {
        return std::uint64_t{ranksPerChannel} * rankBytes();
    }

    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t{channels} * channelBytes();
    }

    std::uint64_t
    totalLines() const
    {
        return capacityBytes() / lineBytes;
    }

    unsigned chBits() const { return log2Exact(channels); }
    unsigned raBits() const { return log2Exact(ranksPerChannel); }
    unsigned bgBits() const { return log2Exact(bankGroups); }
    unsigned bkBits() const { return log2Exact(banksPerGroup); }
    unsigned roBits() const { return log2Exact(rows); }
    unsigned coBits() const { return log2Exact(columns); }
    unsigned offsetBits() const { return log2Exact(lineBytes); }

    /** Validate that every dimension is a power of two. */
    bool
    valid() const
    {
        return isPowerOfTwo(channels) && isPowerOfTwo(ranksPerChannel) &&
               isPowerOfTwo(bankGroups) && isPowerOfTwo(banksPerGroup) &&
               isPowerOfTwo(rows) && isPowerOfTwo(columns) &&
               isPowerOfTwo(lineBytes);
    }
};

/**
 * A fully decoded device coordinate: which channel / rank / bank group /
 * bank / row / column (in cache-line units) an address maps to.
 */
struct DramCoord
{
    unsigned ch = 0;
    unsigned ra = 0;
    unsigned bg = 0;
    unsigned bk = 0;
    unsigned ro = 0;
    unsigned co = 0;

    bool
    operator==(const DramCoord &other) const = default;

    /** Flat bank index within a channel: (ra, bg, bk). */
    unsigned
    bankIndex(const DramGeometry &g) const
    {
        return (ra * g.bankGroups + bg) * g.banksPerGroup + bk;
    }

    /** Flat bank index across the whole subsystem. */
    unsigned
    globalBankIndex(const DramGeometry &g) const
    {
        return ch * g.ranksPerChannel * g.banksPerRank() + bankIndex(g);
    }

    std::string str() const;
};

} // namespace mapping
} // namespace pimmmu

#endif // PIMMMU_MAPPING_GEOMETRY_HH

#include "mapping/hetmap.hh"

#include "common/logging.hh"

namespace pimmmu {
namespace mapping {

SystemMap::SystemMap(MapperPtr dramMapper, MapperPtr pimMapper)
    : dram_(std::move(dramMapper)), pim_(std::move(pimMapper)),
      dramCapacity_(dram_->geometry().capacityBytes()),
      pimCapacity_(pim_->geometry().capacityBytes())
{
}

MappedTarget
SystemMap::map(Addr addr) const
{
    PIMMMU_ASSERT(addr < totalCapacity(), "physical address 0x", std::hex,
                  addr, " out of range");
    if (addr < dramCapacity_)
        return MappedTarget{MemSpace::Dram, dram_->map(addr)};
    return MappedTarget{MemSpace::Pim, pim_->map(addr - dramCapacity_)};
}

Addr
SystemMap::unmap(const MappedTarget &target) const
{
    if (target.space == MemSpace::Dram)
        return dram_->unmap(target.coord);
    return dramCapacity_ + pim_->unmap(target.coord);
}

SystemMapPtr
makeHetMap(const DramGeometry &dramGeometry,
           const DramGeometry &pimGeometry)
{
    return std::make_unique<SystemMap>(
        makeMlpCentricMapper(dramGeometry),
        makeLocalityCentricMapper(pimGeometry));
}

SystemMapPtr
makeBaselineMap(const DramGeometry &dramGeometry,
                const DramGeometry &pimGeometry)
{
    return std::make_unique<SystemMap>(
        makeLocalityCentricMapper(dramGeometry),
        makeLocalityCentricMapper(pimGeometry));
}

} // namespace mapping
} // namespace pimmmu

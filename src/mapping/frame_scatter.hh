/**
 * @file
 * Physical-frame scattering of host buffers.
 *
 * Software-visible buffers are virtually contiguous but physically
 * allocated in scattered frames (transparent huge pages: 2 MiB). The
 * scatter is what lets the real baseline's locality-mapped reads touch
 * more than one bank/channel; without it a multi-megabyte buffer would
 * sit inside a single bank's slab. Modeled as a deterministic bijective
 * permutation of frame indices over the DRAM region.
 */

#ifndef PIMMMU_MAPPING_FRAME_SCATTER_HH
#define PIMMMU_MAPPING_FRAME_SCATTER_HH

#include <cstdint>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace pimmmu {
namespace mapping {

/**
 * Bijective frame permutation over a power-of-two frame count.
 * Rounds of (odd-multiply, xor-shift) modulo 2^k are each bijections,
 * so the composition is too.
 */
class FrameScatter
{
  public:
    static constexpr std::uint64_t kDefaultFrameBytes = 2 * kMiB;

    /**
     * @param regionBytes size of the scatterable region (the DRAM
     *                    physical range); must be a multiple of the
     *                    frame size with a power-of-two frame count
     * @param frameBytes  physical allocation granularity
     * @param seed        permutation seed (deterministic)
     */
    FrameScatter(std::uint64_t regionBytes,
                 std::uint64_t frameBytes = kDefaultFrameBytes,
                 std::uint64_t seed = 0x5ca7735eed)
        : frameBytes_(frameBytes), seed_(seed)
    {
        if (regionBytes < frameBytes_) {
            frames_ = 1; // region smaller than one frame: identity
        } else {
            if (regionBytes % frameBytes_ != 0)
                fatal("region must be a multiple of the frame size");
            frames_ = regionBytes / frameBytes_;
            if (!isPowerOfTwo(frames_))
                fatal("frame count must be a power of two");
        }
        bits_ = log2Exact(frames_);
    }

    /** Translate a virtual address to its scattered physical address. */
    Addr
    translate(Addr vaddr) const
    {
        if (frames_ <= 1)
            return vaddr;
        const std::uint64_t frame = vaddr / frameBytes_;
        const std::uint64_t offset = vaddr % frameBytes_;
        return permute(frame) * frameBytes_ + offset;
    }

    std::uint64_t frameBytes() const { return frameBytes_; }
    std::uint64_t frames() const { return frames_; }

    /** The frame-index permutation (exposed for property tests). */
    std::uint64_t
    permute(std::uint64_t frame) const
    {
        const std::uint64_t mask = frames_ - 1;
        std::uint64_t x = frame & mask;
        std::uint64_t key = seed_;
        for (int round = 0; round < 3; ++round) {
            const std::uint64_t odd = splitMixOdd(key);
            x = (x * odd + (key & mask)) & mask;
            if (bits_ > 1)
                x ^= x >> (bits_ / 2 + 1);
            x &= mask;
        }
        return x;
    }

  private:
    static std::uint64_t
    splitMixOdd(std::uint64_t &state)
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return (z ^ (z >> 31)) | 1;
    }

    std::uint64_t frameBytes_;
    std::uint64_t seed_;
    std::uint64_t frames_ = 1;
    unsigned bits_ = 0;
};

} // namespace mapping
} // namespace pimmmu

#endif // PIMMMU_MAPPING_FRAME_SCATTER_HH

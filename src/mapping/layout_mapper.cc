#include "mapping/layout_mapper.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace pimmmu {
namespace mapping {

namespace {

struct SpecToken
{
    const char *token;
    Field field;
};

constexpr SpecToken kSpecTokens[] = {
    {"Ch", Field::Channel}, {"Ra", Field::Rank}, {"Bg", Field::BankGroup},
    {"Bk", Field::Bank},    {"Ro", Field::Row},  {"Co", Field::Column},
};

const char *
fieldToken(Field field)
{
    for (const auto &tok : kSpecTokens) {
        if (tok.field == field)
            return tok.token;
    }
    panic("unknown field in layout spec");
}

} // namespace

std::vector<Field>
parseLayoutSpec(const std::string &spec)
{
    std::vector<Field> msbFirst;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        bool matched = false;
        for (const auto &tok : kSpecTokens) {
            if (spec.compare(pos, 2, tok.token) == 0) {
                msbFirst.push_back(tok.field);
                pos += 2;
                matched = true;
                break;
            }
        }
        if (!matched)
            fatal("bad layout spec '", spec, "' at offset ", pos);
    }
    if (msbFirst.size() != kNumFields)
        fatal("layout spec '", spec, "' must name all six fields once");
    std::array<bool, kNumFields> seen{};
    for (Field f : msbFirst) {
        auto idx = static_cast<std::size_t>(f);
        if (seen[idx])
            fatal("layout spec '", spec, "' repeats a field");
        seen[idx] = true;
    }
    // Specs are written MSB-first (ChRaBgBkRoCo); we store LSB-first.
    std::reverse(msbFirst.begin(), msbFirst.end());
    return msbFirst;
}

std::string
layoutSpecString(const std::vector<Field> &lsbFirst)
{
    std::string out;
    for (auto it = lsbFirst.rbegin(); it != lsbFirst.rend(); ++it)
        out += fieldToken(*it);
    return out;
}

LayoutMapper::LayoutMapper(const DramGeometry &geometry,
                           std::vector<Field> lsbFirst, std::string name)
    : geom_(geometry), order_(std::move(lsbFirst)), name_(std::move(name))
{
    if (!geom_.valid())
        fatal("DRAM geometry dimensions must be powers of two");
    if (order_.size() != kNumFields)
        fatal("layout must contain all six fields");

    std::array<bool, kNumFields> seen{};
    unsigned shift = geom_.offsetBits();
    for (Field field : order_) {
        auto idx = static_cast<std::size_t>(field);
        if (seen[idx])
            fatal("layout repeats a field");
        seen[idx] = true;
        shift_[idx] = shift;
        width_[idx] = bitsOf(field);
        shift += width_[idx];
    }
}

unsigned
LayoutMapper::bitsOf(Field field) const
{
    switch (field) {
      case Field::Channel:
        return geom_.chBits();
      case Field::Rank:
        return geom_.raBits();
      case Field::BankGroup:
        return geom_.bgBits();
      case Field::Bank:
        return geom_.bkBits();
      case Field::Row:
        return geom_.roBits();
      case Field::Column:
        return geom_.coBits();
      default:
        panic("bad field");
    }
}

unsigned
LayoutMapper::fieldShift(Field field) const
{
    return shift_[static_cast<std::size_t>(field)];
}

unsigned
LayoutMapper::fieldBits(Field field) const
{
    return width_[static_cast<std::size_t>(field)];
}

void
LayoutMapper::addXorHash(Field field, unsigned bit, std::uint64_t mask)
{
    const auto idx = static_cast<std::size_t>(field);
    PIMMMU_ASSERT(bit < width_[idx], "hash bit outside field width");
    const std::uint64_t own =
        width_[idx] >= 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << width_[idx]) - 1) << shift_[idx];
    if ((mask & own) != 0)
        fatal("XOR hash mask overlaps its own field; not invertible");
    hashes_.push_back(HashRule{field, bit, mask});
}

unsigned
LayoutMapper::coordOf(const DramCoord &coord, Field field) const
{
    switch (field) {
      case Field::Channel:
        return coord.ch;
      case Field::Rank:
        return coord.ra;
      case Field::BankGroup:
        return coord.bg;
      case Field::Bank:
        return coord.bk;
      case Field::Row:
        return coord.ro;
      case Field::Column:
        return coord.co;
      default:
        panic("bad field");
    }
}

void
LayoutMapper::setCoord(DramCoord &coord, Field field, unsigned value)
{
    switch (field) {
      case Field::Channel:
        coord.ch = value;
        break;
      case Field::Rank:
        coord.ra = value;
        break;
      case Field::BankGroup:
        coord.bg = value;
        break;
      case Field::Bank:
        coord.bk = value;
        break;
      case Field::Row:
        coord.ro = value;
        break;
      case Field::Column:
        coord.co = value;
        break;
      default:
        panic("bad field");
    }
}

DramCoord
LayoutMapper::map(Addr addr) const
{
    PIMMMU_ASSERT(addr < geom_.capacityBytes(),
                  "address 0x", std::hex, addr, " beyond capacity");
    DramCoord coord;
    for (Field field : order_) {
        const auto idx = static_cast<std::size_t>(field);
        auto value = static_cast<unsigned>(
            bits(addr, shift_[idx], width_[idx]));
        setCoord(coord, field, value);
    }
    for (const auto &rule : hashes_) {
        unsigned value = coordOf(coord, rule.field);
        value ^= static_cast<unsigned>(xorFold(addr & rule.mask))
                 << rule.bit;
        setCoord(coord, rule.field, value);
    }
    return coord;
}

Addr
LayoutMapper::unmap(const DramCoord &coord) const
{
    // Assemble the address from the un-hashed fields first; hash masks
    // never cover their own field so the parity sources are already
    // correct, letting each hashed field be recovered by re-XOR.
    Addr addr = 0;
    for (Field field : order_) {
        const auto idx = static_cast<std::size_t>(field);
        addr = insertBits(addr, shift_[idx], width_[idx],
                          coordOf(coord, field));
    }
    for (const auto &rule : hashes_) {
        const auto idx = static_cast<std::size_t>(rule.field);
        auto value = static_cast<unsigned>(
            bits(addr, shift_[idx], width_[idx]));
        value ^= static_cast<unsigned>(xorFold(addr & rule.mask))
                 << rule.bit;
        addr = insertBits(addr, shift_[idx], width_[idx], value);
    }
    return addr;
}

MapperPtr
makeLocalityCentricMapper(const DramGeometry &geometry)
{
    auto mapper = std::make_unique<LayoutMapper>(
        geometry, parseLayoutSpec("ChRaBgBkRoCo"), "locality-centric");
    return mapper;
}

MapperPtr
makeMlpCentricMapper(const DramGeometry &geometry, bool xorHashing)
{
    // Channel and bank-group bits sit immediately above the line offset
    // so consecutive lines round-robin across channels and bank groups;
    // columns stay below rows so sequential streams hit open rows.
    auto mapper = std::make_unique<LayoutMapper>(
        geometry, parseLayoutSpec("RoRaCoBkBgCh"),
        xorHashing ? "mlp-centric" : "mlp-centric-noxor");
    if (xorHashing) {
        // Fold row bits into channel / bank-group / bank indices so that
        // power-of-two strides still spread across the subsystem.
        const unsigned roShift = mapper->fieldShift(Field::Row);
        for (unsigned b = 0; b < geometry.chBits(); ++b) {
            mapper->addXorHash(Field::Channel, b,
                               std::uint64_t{1} << (roShift + b));
        }
        for (unsigned b = 0; b < geometry.bgBits(); ++b) {
            mapper->addXorHash(
                Field::BankGroup, b,
                std::uint64_t{1} << (roShift + geometry.chBits() + b));
        }
        for (unsigned b = 0; b < geometry.bkBits(); ++b) {
            mapper->addXorHash(Field::Bank, b,
                               std::uint64_t{1}
                                   << (roShift + geometry.chBits() +
                                       geometry.bgBits() + b));
        }
    }
    return mapper;
}

} // namespace mapping
} // namespace pimmmu

/**
 * @file
 * A configurable bit-field address mapper.
 *
 * A layout is an ordered list of DRAM-hierarchy fields from LSB to MSB
 * (above the cache-line offset). Optional XOR-hash masks fold higher
 * physical-address bits into a field's value (permutation-based
 * interleaving, Zhang et al. [115]); masks must not overlap the hashed
 * field's own bit positions so the mapping stays invertible.
 */

#ifndef PIMMMU_MAPPING_LAYOUT_MAPPER_HH
#define PIMMMU_MAPPING_LAYOUT_MAPPER_HH

#include <array>
#include <string>
#include <vector>

#include "mapping/mapper.hh"

namespace pimmmu {
namespace mapping {

/** The decodable address fields, in no particular order. */
enum class Field : unsigned
{
    Channel = 0,
    Rank,
    BankGroup,
    Bank,
    Row,
    Column,
    NumFields
};

constexpr std::size_t kNumFields =
    static_cast<std::size_t>(Field::NumFields);

/** Parse a layout spec like "ChRaBgBkRoCo" (MSB-first order). */
std::vector<Field> parseLayoutSpec(const std::string &spec);

/** Render a layout (given LSB-first) as an MSB-first spec string. */
std::string layoutSpecString(const std::vector<Field> &lsbFirst);

/**
 * Bit-slicing mapper with optional per-field XOR hashing.
 */
class LayoutMapper : public AddressMapper
{
  public:
    /**
     * @param geometry subsystem shape (all dims powers of two)
     * @param lsbFirst fields ordered from least significant (just above
     *                 the line offset) to most significant; each of the
     *                 six fields must appear exactly once
     * @param name     mapping name for reports
     */
    LayoutMapper(const DramGeometry &geometry,
                 std::vector<Field> lsbFirst, std::string name);

    /**
     * Fold the parity of (physical address & mask) into bit @p bit of
     * @p field. The mask must not cover the field's own bit positions.
     */
    void addXorHash(Field field, unsigned bit, std::uint64_t mask);

    DramCoord map(Addr addr) const override;
    Addr unmap(const DramCoord &coord) const override;
    const DramGeometry &geometry() const override { return geom_; }
    const char *name() const override { return name_.c_str(); }

    /** Bit position (from address LSB) where @p field starts. */
    unsigned fieldShift(Field field) const;
    unsigned fieldBits(Field field) const;

  private:
    struct HashRule
    {
        Field field;
        unsigned bit;
        std::uint64_t mask;
    };

    unsigned bitsOf(Field field) const;
    unsigned coordOf(const DramCoord &coord, Field field) const;
    static void setCoord(DramCoord &coord, Field field, unsigned value);

    DramGeometry geom_;
    std::vector<Field> order_;
    std::array<unsigned, kNumFields> shift_{};
    std::array<unsigned, kNumFields> width_{};
    std::vector<HashRule> hashes_;
    std::string name_;
};

/**
 * Locality-centric mapping (paper Fig. 7(a)): ChRaBgBkRoCo from the MSB.
 * Consecutive addresses stay within one row of one bank; whole channels
 * own contiguous slabs of the physical space. This is the mapping the
 * PIM-specific BIOS enforces to keep DRAM and PIM DIMMs separable.
 */
MapperPtr makeLocalityCentricMapper(const DramGeometry &geometry);

/**
 * MLP-centric mapping (paper Fig. 7(b)): channel and bank-group bits
 * immediately above the line offset plus XOR hashing of row bits into
 * the channel/bank indices, maximizing memory-level parallelism.
 *
 * @param xorHashing disable to reproduce the "no XOR" ablation.
 */
MapperPtr makeMlpCentricMapper(const DramGeometry &geometry,
                               bool xorHashing = true);

} // namespace mapping
} // namespace pimmmu

#endif // PIMMMU_MAPPING_LAYOUT_MAPPER_HH

#include "mapping/bios_config.hh"

namespace pimmmu {
namespace mapping {

MapperPtr
makeBiosMapper(const DramGeometry &geometry, const BiosConfig &config)
{
    // LSB-first assembly: N-way levels first (channel, bank group, bank,
    // rank), then column, then row, then the 1-way levels stacked toward
    // the MSB in hierarchy order (bank, bank group, rank, channel) so
    // that all-1-way reproduces the ChRaBgBkRoCo locality layout.
    std::vector<Field> lsbFirst;
    auto nway = [&](Interleave i) { return i == Interleave::NWay; };

    if (nway(config.channel))
        lsbFirst.push_back(Field::Channel);
    if (nway(config.bankGroup))
        lsbFirst.push_back(Field::BankGroup);
    if (nway(config.bank))
        lsbFirst.push_back(Field::Bank);
    lsbFirst.push_back(Field::Column);
    if (nway(config.rank))
        lsbFirst.push_back(Field::Rank);
    lsbFirst.push_back(Field::Row);
    if (!nway(config.bank))
        lsbFirst.push_back(Field::Bank);
    if (!nway(config.bankGroup))
        lsbFirst.push_back(Field::BankGroup);
    if (!nway(config.rank))
        lsbFirst.push_back(Field::Rank);
    if (!nway(config.channel))
        lsbFirst.push_back(Field::Channel);

    auto mapper = std::make_unique<LayoutMapper>(
        geometry, lsbFirst,
        "bios:" + layoutSpecString(lsbFirst) +
            (config.xorHashing ? "+xor" : ""));

    if (config.xorHashing) {
        if (!nway(config.channel))
            fatal("XOR hashing requires N-way channel interleaving");
        const unsigned roShift = mapper->fieldShift(Field::Row);
        for (unsigned b = 0; b < geometry.chBits(); ++b) {
            mapper->addXorHash(Field::Channel, b,
                               std::uint64_t{1} << (roShift + b));
        }
    }
    return mapper;
}

} // namespace mapping
} // namespace pimmmu

#include "mapping/geometry.hh"

#include <sstream>

namespace pimmmu {
namespace mapping {

std::string
DramCoord::str() const
{
    std::ostringstream os;
    os << "ch" << ch << ".ra" << ra << ".bg" << bg << ".bk" << bk << ".ro"
       << ro << ".co" << co;
    return os.str();
}

} // namespace mapping
} // namespace pimmmu

/**
 * @file
 * The address-mapping interface: a bijection between a physical address
 * range and device coordinates of one memory subsystem.
 */

#ifndef PIMMMU_MAPPING_MAPPER_HH
#define PIMMMU_MAPPING_MAPPER_HH

#include <memory>

#include "common/types.hh"
#include "mapping/geometry.hh"

namespace pimmmu {
namespace mapping {

/**
 * Maps physical addresses (relative to the subsystem base) to DRAM
 * coordinates and back. Implementations must be bijective over
 * [0, geometry().capacityBytes()).
 */
class AddressMapper
{
  public:
    virtual ~AddressMapper() = default;

    /** Decode @p addr (line-aligned offsets are ignored). */
    virtual DramCoord map(Addr addr) const = 0;

    /** Re-encode a coordinate into the line-aligned physical address. */
    virtual Addr unmap(const DramCoord &coord) const = 0;

    virtual const DramGeometry &geometry() const = 0;

    /** Human-readable mapping name for bench output. */
    virtual const char *name() const = 0;
};

using MapperPtr = std::unique_ptr<AddressMapper>;

} // namespace mapping
} // namespace pimmmu

#endif // PIMMMU_MAPPING_MAPPER_HH

/**
 * @file
 * Model of the BIOS memory-interleaving knobs from paper Fig. 1.
 *
 * Server BIOSes expose per-level "N-way vs 1-way" interleaving switches
 * (IMC level, channel level, rank level, ...). 1-way pushes that level's
 * address bits toward the MSB (contiguous slabs per unit); N-way pulls
 * them toward the LSB (fine-grained striping). PIM-specific BIOS updates
 * force 1-way everywhere, which is exactly the locality-centric mapping.
 */

#ifndef PIMMMU_MAPPING_BIOS_CONFIG_HH
#define PIMMMU_MAPPING_BIOS_CONFIG_HH

#include "mapping/layout_mapper.hh"

namespace pimmmu {
namespace mapping {

/** One interleaving switch: fine-grained (N-way) or slab (1-way). */
enum class Interleave
{
    OneWay,
    NWay
};

/**
 * The subset of BIOS knobs the paper discusses. Levels configured NWay
 * get their bits placed right above the line offset (LSB side), in the
 * order channel, bank-group, bank, rank; OneWay levels stack at the MSB
 * in hierarchy order.
 */
struct BiosConfig
{
    Interleave channel = Interleave::NWay;
    Interleave rank = Interleave::NWay;
    Interleave bankGroup = Interleave::NWay;
    Interleave bank = Interleave::NWay;
    /** XOR hashing requires N-way channel interleaving. */
    bool xorHashing = true;

    /** The PIM-specific BIOS update: 1-way everywhere, no hashing. */
    static BiosConfig
    pimSeparated()
    {
        return BiosConfig{Interleave::OneWay, Interleave::OneWay,
                          Interleave::OneWay, Interleave::OneWay, false};
    }

    /** Stock server defaults: everything N-way plus XOR hashing. */
    static BiosConfig
    conventional()
    {
        return BiosConfig{};
    }
};

/**
 * Build the address mapping function a given BIOS configuration induces
 * (paper Fig. 1(b)-(d)).
 */
MapperPtr makeBiosMapper(const DramGeometry &geometry,
                         const BiosConfig &config);

} // namespace mapping
} // namespace pimmmu

#endif // PIMMMU_MAPPING_BIOS_CONFIG_HH

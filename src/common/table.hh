/**
 * @file
 * ASCII table printer used by the benchmark harness to emit the rows and
 * series reported in the paper's tables and figures.
 */

#ifndef PIMMMU_COMMON_TABLE_HH
#define PIMMMU_COMMON_TABLE_HH

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace pimmmu {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {
    }

    /** Start a new row. Cells are appended with cell()/num(). */
    Table &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    Table &
    cell(std::string text)
    {
        rows_.back().push_back(std::move(text));
        return *this;
    }

    /** Append a numeric cell formatted to @p precision decimals. */
    Table &
    num(double value, int precision = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return cell(os.str());
    }

    Table &
    num(std::uint64_t value)
    {
        return cell(std::to_string(value));
    }

    std::string str() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pimmmu

#endif // PIMMMU_COMMON_TABLE_HH

/**
 * @file
 * Category-based execution tracing (gem5 DPRINTF-style).
 *
 * Tracing is compiled in but disabled by default; enable categories
 * programmatically or from the PIMMMU_TRACE environment variable
 * (comma-separated category names, or "all"):
 *
 *   PIMMMU_TRACE=dram,dce ./build/examples/quickstart
 *
 * Each line is prefixed with the simulated tick and category.
 */

#ifndef PIMMMU_COMMON_TRACE_HH
#define PIMMMU_COMMON_TRACE_HH

#include <array>
#include <ostream>
#include <sstream>
#include <string>

#include "common/types.hh"

namespace pimmmu {

class EventQueue;

namespace trace {

/** Trace categories, one per subsystem. */
enum class Category : unsigned
{
    Dram,  //!< DRAM commands and controller decisions
    Dce,   //!< Data Copy Engine issue/completion
    Cpu,   //!< core step/stall activity
    Sched, //!< OS thread scheduling events
    Pim,   //!< PIM device / kernel launches
    Xfer,  //!< runtime-level transfer lifecycle
    Resil, //!< resilience recovery (retry, masking, re-admission)
    NumCategories
};

constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(Category::NumCategories);

/** Category name ("dram", "dce", ...). */
const char *categoryName(Category cat);

/** Parse a category name; returns false on unknown names. */
bool parseCategory(const std::string &name, Category &out);

/** Enable / disable categories. */
void enable(Category cat);
void disable(Category cat);
void enableAll();
void disableAll();
bool enabled(Category cat);

/**
 * Apply the PIMMMU_TRACE environment variable (called lazily on first
 * trace query; safe to call explicitly from main()).
 */
void applyEnvironment();

/** Redirect trace output (default: stderr). Not owned. */
void setOutput(std::ostream *os);

/**
 * Register the simulated clock (normally done by sim::System) so
 * functional-plane code without an EventQueue reference can still
 * timestamp its trace lines. Thread-local: each sweep worker's System
 * registers its own clock. Not owned; pass nullptr to clear.
 */
void setClock(const EventQueue *eq);

/** Clear the clock only if @p eq is the registered one. */
void clearClock(const EventQueue *eq);

/** Current simulated tick of the registered clock (0 when none). */
Tick now();

/** Emit one trace line. Prefer the PIMMMU_TRACE_LOG macro. */
void emit(Category cat, Tick now, const std::string &message);

} // namespace trace
} // namespace pimmmu

/**
 * Trace macro: evaluates its message arguments only when the category
 * is enabled.
 *
 *   PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
 *                    "issue read slot=" << slot);
 */
#define PIMMMU_TRACE_LOG(cat, now, stream_expr)                       \
    do {                                                              \
        if (::pimmmu::trace::enabled(cat)) {                          \
            std::ostringstream trace_os_;                             \
            trace_os_ << stream_expr;                                 \
            ::pimmmu::trace::emit(cat, now, trace_os_.str());         \
        }                                                             \
    } while (0)

#endif // PIMMMU_COMMON_TRACE_HH

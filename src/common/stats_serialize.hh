/**
 * @file
 * Bit-exact checkpointing of a stats::Group.
 *
 * Every scalar travels in its raw representation (u64 counters, IEEE
 * bit-pattern doubles), so a saved-and-restored group is
 * indistinguishable from the original on every accessor and in every
 * JSON dump — which is what lets the crash-injection identity gate
 * compare whole-registry stats fingerprints across a restore.
 */

#ifndef PIMMMU_COMMON_STATS_SERIALIZE_HH
#define PIMMMU_COMMON_STATS_SERIALIZE_HH

#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"

namespace pimmmu {
namespace stats {

inline void
saveGroup(serialize::ByteSink &out, const Group &g)
{
    out.u64(g.counters().size());
    for (const auto &kv : g.counters()) {
        out.str(kv.first);
        out.u64(kv.second.value());
    }
    out.u64(g.averages().size());
    for (const auto &kv : g.averages()) {
        out.str(kv.first);
        const Average &a = kv.second;
        out.u64(a.count());
        out.f64(a.sum());
        out.f64(a.min());
        out.f64(a.max());
    }
    out.u64(g.histograms().size());
    for (const auto &kv : g.histograms()) {
        out.str(kv.first);
        const Histogram &h = kv.second;
        out.f64(h.lo());
        out.f64(h.hi());
        out.u64(h.buckets());
        out.u64(h.underflow());
        out.u64(h.overflow());
        out.u64(h.total());
        out.f64(h.sum());
        for (std::size_t i = 0; i < h.buckets(); ++i)
            out.u64(h.bucket(i));
    }
    out.u64(g.gauges().size());
    for (const auto &kv : g.gauges()) {
        out.str(kv.first);
        out.f64(kv.second);
    }
}

/**
 * Restore @p g from @p in. Existing entries are overwritten; entries
 * the checkpoint has and the (freshly constructed) group lacks are
 * created, so the restored group's key set matches the original's
 * exactly. @return false if the stream ran dry (corrupt payload).
 */
inline bool
restoreGroup(serialize::ByteSource &in, Group &g)
{
    const std::uint64_t nCounters = in.u64();
    for (std::uint64_t i = 0; i < nCounters && in.ok(); ++i) {
        const std::string key = in.str();
        const std::uint64_t value = in.u64();
        Counter &c = g.counter(key);
        c.reset();
        c += value;
    }
    const std::uint64_t nAverages = in.u64();
    for (std::uint64_t i = 0; i < nAverages && in.ok(); ++i) {
        const std::string key = in.str();
        const std::uint64_t count = in.u64();
        const double sum = in.f64();
        const double mn = in.f64();
        const double mx = in.f64();
        g.average(key).restore(count, sum, mn, mx);
    }
    const std::uint64_t nHistograms = in.u64();
    for (std::uint64_t i = 0; i < nHistograms && in.ok(); ++i) {
        const std::string key = in.str();
        const double lo = in.f64();
        const double hi = in.f64();
        const std::uint64_t buckets = in.u64();
        const std::uint64_t underflow = in.u64();
        const std::uint64_t overflow = in.u64();
        const std::uint64_t total = in.u64();
        const double sum = in.f64();
        if (buckets > in.remaining() / 8)
            return false; // length lies about the payload
        std::vector<std::uint64_t> counts(
            static_cast<std::size_t>(buckets));
        for (auto &c : counts)
            c = in.u64();
        if (!in.ok())
            return false;
        Histogram &h = g.histogram(key, lo, hi,
                                   static_cast<std::size_t>(buckets));
        h.restore(underflow, overflow, total, sum, counts);
    }
    const std::uint64_t nGauges = in.u64();
    for (std::uint64_t i = 0; i < nGauges && in.ok(); ++i) {
        const std::string key = in.str();
        g.gauge(key) = in.f64();
    }
    return in.ok();
}

} // namespace stats
} // namespace pimmmu

#endif // PIMMMU_COMMON_STATS_SERIALIZE_HH

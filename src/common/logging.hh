/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug); throws.
 * fatal()  - the user asked for something impossible (bad config); throws.
 * warn()   - something questionable happened but simulation continues.
 * inform() - plain status output.
 *
 * Both panic() and fatal() throw SimError rather than calling abort()
 * so that unit tests can exercise failure paths; uncaught, the effect is
 * still process termination with a diagnostic.
 */

#ifndef PIMMMU_COMMON_LOGGING_HH
#define PIMMMU_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace pimmmu {

/** Thrown by panic()/fatal() so tests can assert on failure paths. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void throwError(const char *kind, const std::string &msg);
void emitLog(const char *kind, const std::string &msg);

/** Stream-compose a message from a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::throwError("panic",
                       detail::composeMessage(std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::throwError("fatal",
                       detail::composeMessage(std::forward<Args>(args)...));
}

/** Print a warning and continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog("warn",
                    detail::composeMessage(std::forward<Args>(args)...));
}

/** Print an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog("info",
                    detail::composeMessage(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define PIMMMU_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pimmmu::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, ": ",                  \
                            ::pimmmu::detail::composeMessage(__VA_ARGS__)); \
        }                                                                   \
    } while (0)

} // namespace pimmmu

#endif // PIMMMU_COMMON_LOGGING_HH

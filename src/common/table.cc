#include "common/table.hh"

#include <algorithm>

namespace pimmmu {

std::string
Table::str() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c]
                                                       : std::string();
            os << " " << text
               << std::string(width[c] - text.size(), ' ') << " |";
        }
        os << "\n";
    };
    auto emitRule = [&] {
        os << "|";
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << "|";
        os << "\n";
    };

    emitRow(header_);
    emitRule();
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

} // namespace pimmmu

/**
 * @file
 * Bit-manipulation helpers used by the address mapping functions.
 */

#ifndef PIMMMU_COMMON_BITUTILS_HH
#define PIMMMU_COMMON_BITUTILS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace pimmmu {

/** Extract bits [first, first+count) of @p value (count may be 0). */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned count)
{
    if (count == 0)
        return 0;
    if (count >= 64)
        return value >> first;
    return (value >> first) & ((std::uint64_t{1} << count) - 1);
}

/** Insert the low @p count bits of @p field at position @p first. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned count,
           std::uint64_t field)
{
    if (count == 0)
        return value;
    std::uint64_t mask = (count >= 64) ? ~std::uint64_t{0}
                                       : ((std::uint64_t{1} << count) - 1);
    value &= ~(mask << first);
    value |= (field & mask) << first;
    return value;
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(std::uint64_t value)
{
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Ceil of log2 (log2Ceil(1) == 0). */
constexpr unsigned
log2Ceil(std::uint64_t value)
{
    unsigned lg = 64 - static_cast<unsigned>(std::countl_zero(value));
    return isPowerOfTwo(value) ? lg - 1 : lg;
}

/** XOR-reduce (parity of) all bits of @p value. */
constexpr std::uint64_t
xorFold(std::uint64_t value)
{
    return static_cast<std::uint64_t>(std::popcount(value) & 1);
}

/** Round @p value up to the next multiple of @p align (power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace pimmmu

#endif // PIMMMU_COMMON_BITUTILS_HH

/**
 * @file
 * A small-buffer-optimized, move-only callable wrapper for the event
 * kernel's hot path.
 *
 * `std::function` heap-allocates for captures beyond ~16 bytes, which
 * makes every EventQueue::schedule() of a non-trivial lambda an
 * allocation. InlineFunction stores captures up to `Capacity` bytes
 * inline in the event entry itself (larger callables fall back to one
 * heap allocation), so the common controller/Ticker reschedule never
 * touches the allocator.
 *
 * Move-only on purpose: event callbacks are consumed exactly once, and
 * copyability is what forces std::function to type-erase with an
 * allocating clone operation.
 */

#ifndef PIMMMU_COMMON_INLINE_FUNCTION_HH
#define PIMMMU_COMMON_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace pimmmu {

template <std::size_t Capacity>
class InlineFunction
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFunction(F &&f) // NOLINT: implicit like std::function
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(storage_))
                D(std::forward<F>(f));
            vt_ = &kInlineVTable<D>;
        } else {
            *reinterpret_cast<D **>(storage_) =
                new D(std::forward<F>(f));
            vt_ = &kHeapVTable<D>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
        : vt_(other.vt_)
    {
        if (vt_) {
            vt_->relocate(storage_, other.storage_);
            other.vt_ = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this == &other)
            return *this;
        if (vt_)
            vt_->destroy(storage_);
        vt_ = other.vt_;
        if (vt_) {
            vt_->relocate(storage_, other.storage_);
            other.vt_ = nullptr;
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction()
    {
        if (vt_)
            vt_->destroy(storage_);
    }

    void
    operator()()
    {
        PIMMMU_ASSERT(vt_, "calling an empty InlineFunction");
        vt_->invoke(storage_);
    }

    explicit operator bool() const { return vt_ != nullptr; }

    /** True when a callable of type F avoids the heap fallback. */
    template <typename F>
    static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= Capacity &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

  private:
    struct VTable
    {
        void (*invoke)(void *slot);
        /** Move-construct into @p dst from @p src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *slot) noexcept;
    };

    template <typename F>
    static F *
    inlineObj(void *slot)
    {
        return std::launder(reinterpret_cast<F *>(slot));
    }

    template <typename F>
    static constexpr VTable kInlineVTable = {
        [](void *slot) { (*inlineObj<F>(slot))(); },
        [](void *dst, void *src) noexcept {
            F *from = inlineObj<F>(src);
            ::new (dst) F(std::move(*from));
            from->~F();
        },
        [](void *slot) noexcept { inlineObj<F>(slot)->~F(); },
    };

    template <typename F>
    static F *&
    heapObj(void *slot)
    {
        return *std::launder(reinterpret_cast<F **>(slot));
    }

    template <typename F>
    static constexpr VTable kHeapVTable = {
        [](void *slot) { (*heapObj<F>(slot))(); },
        [](void *dst, void *src) noexcept {
            // Steal the pointer; no object is moved.
            *reinterpret_cast<F **>(dst) = heapObj<F>(src);
        },
        [](void *slot) noexcept { delete heapObj<F>(slot); },
    };

    const VTable *vt_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[Capacity];
};

} // namespace pimmmu

#endif // PIMMMU_COMMON_INLINE_FUNCTION_HH

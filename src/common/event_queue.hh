/**
 * @file
 * A minimal event-driven simulation kernel.
 *
 * Components in different clock domains (3.2 GHz CPU / DCE, 1.2 GHz or
 * 1.6 GHz DRAM bus) share one global picosecond timeline. Each component
 * schedules callbacks at absolute ticks; ties are broken by insertion
 * order (FIFO) so simulation is deterministic.
 *
 * Hot-path engineering (the simulator's throughput ceiling):
 *
 *  - Callbacks are InlineFunction<48>: captures up to 48 bytes live
 *    inside the event entry, so the common reschedule never allocates.
 *  - Near-future events (within kWheelSpanPs of now) go into a calendar
 *    wheel of per-bucket vectors whose capacity is recycled across
 *    simulation — the free-list/arena of event entries. Scheduling into
 *    the wheel is O(1).
 *  - Far-future events (refresh intervals, scheduler quanta) fall back
 *    to a binary heap; they are rare, so its O(log n) is off the hot
 *    path.
 *
 * Execution order is the lexicographic minimum of (when, seq) across
 * both structures — bit-identical to the classic single-heap kernel,
 * which the property-harness replay corpus pins down.
 */

#ifndef PIMMMU_COMMON_EVENT_QUEUE_HH
#define PIMMMU_COMMON_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/inline_function.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace pimmmu {

/**
 * The global event queue. One instance drives a whole simulated system.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<48>;

    EventQueue() = default;

    /** Current simulated time in picoseconds. */
    Tick now() const { return now_; }

    /** Number of events pending. */
    std::size_t pending() const { return pending_; }

    /** True when no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Events executed since construction (or the last reset). */
    std::uint64_t executed() const { return executed_; }

    /** Events scheduled since construction (or the last reset). */
    std::uint64_t scheduled() const { return scheduled_; }

    /** Of the scheduled events, how many took the O(1) wheel path. */
    std::uint64_t scheduledNear() const
    {
        return scheduled_ - scheduledFar_;
    }

    /** Of the scheduled events, how many took the far-heap path. */
    std::uint64_t scheduledFar() const { return scheduledFar_; }

    /** Sequence number the next scheduled event will take. */
    std::uint64_t nextSeq() const { return nextSeq_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * @pre when >= now() (events cannot be scheduled in the past).
     */
    void
    schedule(Tick when, Callback cb)
    {
        PIMMMU_ASSERT(when >= now_, "event scheduled in the past: ", when,
                      " < ", now_);
        ++scheduled_;
        ++pending_;
        const std::uint64_t seq = nextSeq_++;
        const Tick bucketId = when >> kBucketShift;
        if (bucketId < curBucket() + kWheelBuckets) {
            const std::size_t idx = bucketId & (kWheelBuckets - 1);
            if (wheel_[idx].empty())
                markOccupied(idx);
            wheel_[idx].push_back(Entry{when, seq, std::move(cb)});
        } else {
            ++scheduledFar_;
            far_.push_back(Entry{when, seq, std::move(cb)});
            std::push_heap(far_.begin(), far_.end(), Entry::later);
        }
    }

    /** Schedule @p cb to run @p delay picoseconds from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or @p limit ticks elapse.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = kTickMax)
    {
        while (pending_ > 0) {
            if (!runOne(limit))
                return false;
        }
        return true;
    }

    /** Execute exactly one event. @return false if the queue is empty. */
    bool
    step()
    {
        if (pending_ == 0)
            return false;
        runOne(kTickMax);
        return true;
    }

    /** Discard all pending events and reset time to zero. */
    void
    reset()
    {
        for (auto &bucket : wheel_)
            bucket.clear(); // keeps capacity: the entry arena survives
        occupied_.fill(0);
        far_.clear();
        pending_ = 0;
        now_ = 0;
        nextSeq_ = 0;
        executed_ = 0;
        scheduled_ = 0;
        scheduledFar_ = 0;
    }

    /**
     * Restore the clock and lifetime counters from a checkpoint.
     * Events themselves are never serialized — snapshots are taken
     * only at quiesced points — so the queue must be empty; the
     * wheel's bucket mapping is position-independent (indexed mod
     * kWheelBuckets off now_), so later schedules land exactly where
     * they would have in the original run.
     * @pre empty()
     */
    void
    restoreClock(Tick now, std::uint64_t nextSeq,
                 std::uint64_t executed, std::uint64_t scheduled,
                 std::uint64_t scheduledFar)
    {
        PIMMMU_ASSERT(pending_ == 0,
                      "clock restore requires a drained event queue");
        now_ = now;
        nextSeq_ = nextSeq;
        executed_ = executed;
        scheduled_ = scheduled;
        scheduledFar_ = scheduledFar;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        /** Comes after @p other in execution order? */
        bool
        after(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }

        /** Heap comparator: a sorts after b (min-heap). */
        static bool
        later(const Entry &a, const Entry &b)
        {
            return a.after(b);
        }
    };

    // Bucket granularity 1024 ps (~1.2 DDR4-2400 bus cycles); 256
    // buckets cover a 262 ns horizon — every per-cycle ticker re-arm,
    // DRAM data-burst completion, and cache hit latency lands in the
    // wheel. Only long timers (tREFI, scheduler quanta) hit the heap.
    static constexpr unsigned kBucketShift = 10;
    static constexpr std::size_t kWheelBuckets = 256;
    static constexpr std::size_t kOccupiedWords = kWheelBuckets / 64;
    static_assert((kWheelBuckets & (kWheelBuckets - 1)) == 0,
                  "wheel size must be a power of two");

    Tick curBucket() const { return now_ >> kBucketShift; }

    void
    markOccupied(std::size_t idx)
    {
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }

    void
    clearOccupied(std::size_t idx)
    {
        occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /**
     * Index of the first non-empty wheel bucket at or after the current
     * one, in absolute-bucket order (wrapping), or kWheelBuckets when
     * the wheel is empty. All non-empty buckets hold events in
     * [curBucket, curBucket + kWheelBuckets), so scanning the bitmap
     * from the current position and wrapping visits them in
     * nondecreasing event-time order.
     */
    std::size_t
    firstOccupied() const
    {
        const std::size_t start = curBucket() & (kWheelBuckets - 1);
        for (std::size_t probe = 0; probe < kOccupiedWords + 1; ++probe) {
            const std::size_t word =
                ((start >> 6) + probe) % kOccupiedWords;
            std::uint64_t bits = occupied_[word];
            if (probe == 0)
                bits &= ~std::uint64_t{0} << (start & 63);
            else if (probe == kOccupiedWords)
                bits &= (std::uint64_t{1} << (start & 63)) - 1;
            if (bits)
                return word * 64 +
                       static_cast<std::size_t>(
                           __builtin_ctzll(bits));
        }
        return kWheelBuckets;
    }

    /**
     * Execute the globally next event unless it lies beyond @p limit
     * (then advance the clock to the limit and return false).
     */
    bool
    runOne(Tick limit)
    {
        // Wheel candidate: linear min-scan of the first non-empty
        // bucket. Buckets are a few events deep in practice, and every
        // event in an earlier bucket precedes every event in a later
        // one, so the scan finds the global wheel minimum.
        std::vector<Entry> *bucket = nullptr;
        std::size_t minIdx = 0;
        const std::size_t bucketIdx = firstOccupied();
        if (bucketIdx < kWheelBuckets) {
            bucket = &wheel_[bucketIdx];
            for (std::size_t i = 1; i < bucket->size(); ++i) {
                if ((*bucket)[minIdx].after((*bucket)[i]))
                    minIdx = i;
            }
        }

        const bool fromHeap =
            !far_.empty() &&
            (!bucket || (*bucket)[minIdx].after(far_.front()));

        const Tick when =
            fromHeap ? far_.front().when : (*bucket)[minIdx].when;
        if (when > limit) {
            now_ = limit;
            return false;
        }

        // Move the entry out before touching the containers again:
        // running the callback may schedule new events into them.
        Entry entry = [&] {
            if (fromHeap) {
                std::pop_heap(far_.begin(), far_.end(), Entry::later);
                Entry e = std::move(far_.back());
                far_.pop_back();
                return e;
            }
            Entry e = std::move((*bucket)[minIdx]);
            (*bucket)[minIdx] = std::move(bucket->back());
            bucket->pop_back();
            if (bucket->empty())
                clearOccupied(bucketIdx);
            return e;
        }();

        now_ = entry.when;
        --pending_;
        ++executed_;
        entry.cb();
        return true;
    }

    std::array<std::vector<Entry>, kWheelBuckets> wheel_;
    std::array<std::uint64_t, kOccupiedWords> occupied_{};
    std::vector<Entry> far_; //!< min-heap via std::push_heap/pop_heap
    std::size_t pending_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t scheduledFar_ = 0;
};

/**
 * Helper that lets a component run a periodic tick handler efficiently:
 * the component is only on the event queue while it has work, and can be
 * re-armed when new work arrives.
 */
class Ticker
{
  public:
    using Handler = std::function<bool()>;

    /**
     * @param eq      global event queue
     * @param period  clock period of this component in picoseconds
     * @param handler called once per cycle; returns true to stay awake
     */
    Ticker(EventQueue &eq, Tick period, Handler handler)
        : eq_(eq), period_(period), handler_(std::move(handler))
    {
        PIMMMU_ASSERT(period_ > 0, "ticker period must be non-zero");
    }

    /** Ensure the ticker fires on (or after) the next cycle edge. */
    void
    arm()
    {
        if (armed_)
            return;
        armed_ = true;
        // Steady-state re-arm (from fire()) hits the cached next edge;
        // only waking from sleep realigns with a division.
        if (nextEdge_ <= eq_.now()) {
            nextEdge_ = roundUpTick(eq_.now() + 1);
            cycleAtNextEdge_ = nextEdge_ / period_;
        }
        eq_.schedule(nextEdge_, [this] { fire(); });
    }

    bool armed() const { return armed_; }
    Tick period() const { return period_; }

    /** Current cycle index of this clock domain. */
    Cycle cycle() const { return eq_.now() / period_; }

    /**
     * Cycle index of the tick being fired — division-free, but only
     * meaningful while the handler is running.
     */
    Cycle firingCycle() const { return firingCycle_; }

  private:
    Tick
    roundUpTick(Tick t) const
    {
        return ((t + period_ - 1) / period_) * period_;
    }

    void
    fire()
    {
        armed_ = false;
        firingCycle_ = cycleAtNextEdge_;
        ++cycleAtNextEdge_;
        nextEdge_ += period_;
        bool again = handler_();
        if (again)
            arm();
    }

    EventQueue &eq_;
    Tick period_;
    Handler handler_;
    bool armed_ = false;
    Tick nextEdge_ = 0;
    Cycle cycleAtNextEdge_ = 0;
    Cycle firingCycle_ = 0;
};

} // namespace pimmmu

#endif // PIMMMU_COMMON_EVENT_QUEUE_HH

/**
 * @file
 * A minimal event-driven simulation kernel.
 *
 * Components in different clock domains (3.2 GHz CPU / DCE, 1.2 GHz or
 * 1.6 GHz DRAM bus) share one global picosecond timeline. Each component
 * schedules callbacks at absolute ticks; ties are broken by insertion
 * order (FIFO) so simulation is deterministic.
 */

#ifndef PIMMMU_COMMON_EVENT_QUEUE_HH
#define PIMMMU_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pimmmu {

/**
 * The global event queue. One instance drives a whole simulated system.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time in picoseconds. */
    Tick now() const { return now_; }

    /** Number of events pending. */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * @pre when >= now() (events cannot be scheduled in the past).
     */
    void
    schedule(Tick when, Callback cb)
    {
        PIMMMU_ASSERT(when >= now_, "event scheduled in the past: ", when,
                      " < ", now_);
        heap_.push(Entry{when, nextSeq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay picoseconds from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or @p limit ticks elapse.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = kTickMax)
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            if (top.when > limit) {
                now_ = limit;
                return false;
            }
            now_ = top.when;
            // Move the callback out before popping: running it may
            // schedule new events and reallocate the heap.
            Callback cb = std::move(const_cast<Entry &>(top).cb);
            heap_.pop();
            cb();
        }
        return true;
    }

    /** Execute exactly one event. @return false if the queue is empty. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        const Entry &top = heap_.top();
        now_ = top.when;
        Callback cb = std::move(const_cast<Entry &>(top).cb);
        heap_.pop();
        cb();
        return true;
    }

    /** Discard all pending events and reset time to zero. */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * Helper that lets a component run a periodic tick handler efficiently:
 * the component is only on the event queue while it has work, and can be
 * re-armed when new work arrives.
 */
class Ticker
{
  public:
    using Handler = std::function<bool()>;

    /**
     * @param eq      global event queue
     * @param period  clock period of this component in picoseconds
     * @param handler called once per cycle; returns true to stay awake
     */
    Ticker(EventQueue &eq, Tick period, Handler handler)
        : eq_(eq), period_(period), handler_(std::move(handler))
    {
        PIMMMU_ASSERT(period_ > 0, "ticker period must be non-zero");
    }

    /** Ensure the ticker fires on (or after) the next cycle edge. */
    void
    arm()
    {
        if (armed_)
            return;
        armed_ = true;
        // Align to the next edge of this component's clock.
        Tick next = roundUpTick(eq_.now() + 1);
        eq_.schedule(next, [this] { fire(); });
    }

    bool armed() const { return armed_; }
    Tick period() const { return period_; }

    /** Current cycle index of this clock domain. */
    Cycle cycle() const { return eq_.now() / period_; }

  private:
    Tick
    roundUpTick(Tick t) const
    {
        return ((t + period_ - 1) / period_) * period_;
    }

    void
    fire()
    {
        armed_ = false;
        bool again = handler_();
        if (again)
            arm();
    }

    EventQueue &eq_;
    Tick period_;
    Handler handler_;
    bool armed_ = false;
};

} // namespace pimmmu

#endif // PIMMMU_COMMON_EVENT_QUEUE_HH

#include "common/stats.hh"

#include <cstdio>
#include <iomanip>

namespace pimmmu {
namespace stats {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace {

/** Shortest round-trippable representation of a double. */
void
jsonNumber(std::ostream &os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

} // namespace

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(total_);
    // Underflow samples sit at lo; p=0 reports the range floor by
    // convention (see Stats.HistogramSingleSample).
    double cum = static_cast<double>(underflow_);
    if (target <= cum)
        return lo_;
    const double width =
        (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (target <= next && counts_[i] > 0) {
            const double frac = (target - cum) /
                                static_cast<double>(counts_[i]);
            return lo_ + width * (static_cast<double>(i) + frac);
        }
        cum = next;
    }
    return hi_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.total_ == 0)
        return;
    if (lo_ == other.lo_ && hi_ == other.hi_ &&
        counts_.size() == other.counts_.size()) {
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        underflow_ += other.underflow_;
        overflow_ += other.overflow_;
        total_ += other.total_;
        sum_ += other.sum_;
        return;
    }
    // Shape mismatch: replay the other's buckets at their midpoints,
    // then restore the exact sum so the merged mean is unaffected.
    const double sumBefore = sum_;
    const double width =
        (other.hi_ - other.lo_) /
        static_cast<double>(other.counts_.size());
    if (other.underflow_ > 0)
        sample(other.lo_ - width, other.underflow_);
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
        if (other.counts_[i] > 0) {
            sample(other.lo_ +
                       width * (static_cast<double>(i) + 0.5),
                   other.counts_[i]);
        }
    }
    if (other.overflow_ > 0)
        sample(other.hi_, other.overflow_);
    sum_ = sumBefore + other.sum_;
}

void
Group::dump(std::ostream &os) const
{
    os << "[" << name_ << "]\n";
    for (const auto &kv : counters_) {
        os << "  " << std::left << std::setw(32) << kv.first << " "
           << kv.second.value() << "\n";
    }
    for (const auto &kv : gauges_) {
        os << "  " << std::left << std::setw(32) << kv.first << " "
           << kv.second << "\n";
    }
    for (const auto &kv : averages_) {
        os << "  " << std::left << std::setw(32) << kv.first << " mean="
           << kv.second.mean() << " min=" << kv.second.min()
           << " max=" << kv.second.max() << " n=" << kv.second.count()
           << "\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << "  " << std::left << std::setw(32) << kv.first
           << " n=" << h.total() << " mean=" << h.mean()
           << " p50=" << h.percentile(50) << " p95=" << h.percentile(95)
           << " p99=" << h.percentile(99) << "\n";
    }
}

void
Group::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << jsonEscape(name_) << "\"";

    os << ",\"counters\":{";
    bool first = true;
    for (const auto &kv : counters_) {
        os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
           << "\":" << kv.second.value();
        first = false;
    }
    os << "}";

    os << ",\"gauges\":{";
    first = true;
    for (const auto &kv : gauges_) {
        os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
           << "\":";
        jsonNumber(os, kv.second);
        first = false;
    }
    os << "}";

    os << ",\"averages\":{";
    first = true;
    for (const auto &kv : averages_) {
        const Average &a = kv.second;
        os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
           << "\":{\"mean\":";
        jsonNumber(os, a.mean());
        os << ",\"min\":";
        jsonNumber(os, a.min());
        os << ",\"max\":";
        jsonNumber(os, a.max());
        os << ",\"count\":" << a.count() << "}";
        first = false;
    }
    os << "}";

    os << ",\"histograms\":{";
    first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
           << "\":{\"lo\":";
        jsonNumber(os, h.lo());
        os << ",\"hi\":";
        jsonNumber(os, h.hi());
        os << ",\"total\":" << h.total()
           << ",\"underflow\":" << h.underflow()
           << ",\"overflow\":" << h.overflow() << ",\"mean\":";
        jsonNumber(os, h.mean());
        os << ",\"p50\":";
        jsonNumber(os, h.percentile(50));
        os << ",\"p95\":";
        jsonNumber(os, h.percentile(95));
        os << ",\"p99\":";
        jsonNumber(os, h.percentile(99));
        os << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.buckets(); ++i)
            os << (i ? "," : "") << h.bucket(i);
        os << "]}";
        first = false;
    }
    os << "}}";
}

} // namespace stats
} // namespace pimmmu

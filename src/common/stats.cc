#include "common/stats.hh"

#include <iomanip>

namespace pimmmu {
namespace stats {

void
Group::dump(std::ostream &os) const
{
    os << "[" << name_ << "]\n";
    for (const auto &kv : counters_) {
        os << "  " << std::left << std::setw(32) << kv.first << " "
           << kv.second.value() << "\n";
    }
    for (const auto &kv : averages_) {
        os << "  " << std::left << std::setw(32) << kv.first << " mean="
           << kv.second.mean() << " min=" << kv.second.min()
           << " max=" << kv.second.max() << " n=" << kv.second.count()
           << "\n";
    }
}

} // namespace stats
} // namespace pimmmu

/**
 * @file
 * Flat little-endian byte codec used by the checkpoint subsystem.
 *
 * ByteSink appends fixed-width primitives to a growable buffer;
 * ByteSource reads them back. The source NEVER asserts on malformed
 * input: a read past the end returns zero and latches a failure flag,
 * so a loader can decode a whole (CRC-valid but semantically bogus)
 * section and reject it with one structured error at the end instead
 * of crashing mid-parse.
 *
 * Doubles travel as their IEEE-754 bit pattern, so a restored value is
 * bit-exact — a checkpoint/restore cycle can never perturb a stats
 * mean or a token-bucket level.
 */

#ifndef PIMMMU_COMMON_SERIALIZE_HH
#define PIMMMU_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pimmmu {
namespace serialize {

class ByteSink
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    bytes(const void *src, std::size_t n)
    {
        if (n == 0)
            return;
        const auto *p = static_cast<const std::uint8_t *>(src);
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

class ByteSource
{
  public:
    /** Empty source: every read fails (until reassigned). */
    ByteSource() : data_(nullptr), size_(0) {}

    ByteSource(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit ByteSource(const std::vector<std::uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        take(&v, 1);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint8_t raw[4] = {};
        take(raw, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{raw[i]} << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint8_t raw[8] = {};
        take(raw, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t{raw[i]} << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool boolean() { return u8() != 0; }

    bool
    bytes(void *dst, std::size_t n)
    {
        return take(static_cast<std::uint8_t *>(dst), n);
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (n > remaining()) {
            failed_ = true;
            pos_ = size_;
            return std::string();
        }
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Everything left in the buffer, as one blob. */
    std::vector<std::uint8_t>
    blob()
    {
        std::vector<std::uint8_t> v(data_ + pos_, data_ + size_);
        pos_ = size_;
        return v;
    }

    /** False once any read overran the buffer. */
    bool ok() const { return !failed_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    bool
    take(std::uint8_t *dst, std::size_t n)
    {
        if (n > remaining()) {
            failed_ = true;
            std::memset(dst, 0, n);
            pos_ = size_;
            return false;
        }
        std::memcpy(dst, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace serialize
} // namespace pimmmu

#endif // PIMMMU_COMMON_SERIALIZE_HH

/**
 * @file
 * Fundamental scalar types shared across the pim-mmu simulator.
 */

#ifndef PIMMMU_COMMON_TYPES_HH
#define PIMMMU_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace pimmmu {

/** A physical (or device) byte address. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A clock-domain cycle count (CPU, DRAM, or DCE cycles). */
using Cycle = std::uint64_t;

/** Sentinel for "no tick scheduled" / "infinitely far in the future". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Picoseconds per common SI time units. */
constexpr Tick kPsPerNs = 1000;
constexpr Tick kPsPerUs = 1000 * kPsPerNs;
constexpr Tick kPsPerMs = 1000 * kPsPerUs;
constexpr Tick kPsPerSec = 1000 * kPsPerMs;

/** Bytes per common SI capacity units (binary powers). */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

/**
 * Convert a frequency in MHz to the corresponding clock period in
 * picoseconds, rounded to the nearest picosecond.
 */
constexpr Tick
periodPsFromMhz(std::uint64_t mhz)
{
    return (1000000 + mhz / 2) / mhz;
}

/** Convert (bytes, picoseconds) to GB/s (decimal gigabytes). */
constexpr double
gbPerSec(std::uint64_t bytes, Tick ps)
{
    if (ps == 0)
        return 0.0;
    return (static_cast<double>(bytes) / 1e9) /
           (static_cast<double>(ps) / 1e12);
}

} // namespace pimmmu

#endif // PIMMMU_COMMON_TYPES_HH

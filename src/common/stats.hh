/**
 * @file
 * A tiny statistics framework: named scalar counters, gauges, averages,
 * and histograms that components register into a group and that benches
 * dump in a uniform format (plain text or JSON via the telemetry
 * layer's StatsRegistry).
 */

#ifndef PIMMMU_COMMON_STATS_HH
#define PIMMMU_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pimmmu {
namespace stats {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    Counter &operator+=(std::uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    Counter &operator++()
    {
        ++value_;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }

    /** Raw running sum (checkpointing; bit-exact restore). */
    double sum() const { return sum_; }

    /**
     * Overwrite from checkpointed raw fields. A zero @p count restores
     * the freshly constructed state (infinity sentinels), so restored
     * and original instances are indistinguishable on every accessor.
     */
    void
    restore(std::uint64_t count, double sum, double mn, double mx)
    {
        if (count == 0) {
            reset();
            return;
        }
        count_ = count;
        sum_ = sum;
        min_ = mn;
        max_ = mx;
    }

    /**
     * Return to the freshly constructed state. The extrema use infinity
     * sentinels (not the last observed values), so a reset Average
     * reports exactly like a fresh one on every accessor.
     */
    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::uint64_t count_ = 0;
};

/** Fixed-width-bucket histogram with percentile queries. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
    }

    void sample(double v) { sample(v, 1); }

    /** Record @p v with multiplicity @p weight (e.g. picoseconds a
     *  sampled occupancy value was held). */
    void
    sample(double v, std::uint64_t weight)
    {
        if (weight == 0)
            return;
        total_ += weight;
        sum_ += v * static_cast<double>(weight);
        if (v < lo_) {
            underflow_ += weight;
            return;
        }
        if (v >= hi_ || counts_.empty()) {
            // A degenerate zero-bucket histogram still tracks totals,
            // mean, and the under/overflow split; without this guard
            // the bucket-index clamp below would index counts_[-1].
            overflow_ += weight;
            return;
        }
        const double width = (hi_ - lo_) / static_cast<double>(
                                               counts_.size());
        auto idx = static_cast<std::size_t>((v - lo_) / width);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        counts_[idx] += weight;
    }

    /**
     * Fold @p other into this histogram. Same-shape histograms merge
     * bucket-wise; a shape mismatch degrades gracefully by replaying
     * the other's buckets as weighted midpoint samples (extrema fold
     * into under/overflow), so totals and means stay exact and
     * percentiles stay within one bucket width.
     */
    void merge(const Histogram &other);

    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

    /** Raw weighted sum (checkpointing; bit-exact restore). */
    double sum() const { return sum_; }

    /**
     * Value below which @p p percent of the samples fall (p in
     * [0, 100]), linearly interpolated within the containing bucket.
     * Underflow samples count at @c lo, overflow samples at @c hi.
     */
    double percentile(double p) const;

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        underflow_ = overflow_ = total_ = 0;
        sum_ = 0.0;
    }

    /**
     * Overwrite from checkpointed raw fields. @p counts must match
     * this histogram's bucket count (the caller recreates the shape
     * from the same checkpoint); a mismatched vector is ignored and
     * the buckets reset, keeping totals consistent with total().
     */
    void
    restore(std::uint64_t underflow, std::uint64_t overflow,
            std::uint64_t total, double sum,
            const std::vector<std::uint64_t> &counts)
    {
        underflow_ = underflow;
        overflow_ = overflow;
        total_ = total;
        sum_ = sum;
        if (counts.size() == counts_.size())
            counts_ = counts;
        else
            std::fill(counts_.begin(), counts_.end(), 0);
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of counters, gauges, averages, and histograms.
 * Components expose a Group so test code and benches can inspect
 * results without poking private state; the telemetry StatsRegistry
 * collects every live Group for uniform text/JSON export.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &key) { return counters_[key]; }
    Average &average(const std::string &key) { return averages_[key]; }

    /** Last-value gauge (set by pre-dump refresh hooks). */
    double &gauge(const std::string &key) { return gauges_[key]; }

    /**
     * Named histogram; created with the given shape on first use,
     * returned as-is (shape arguments ignored) afterwards.
     */
    Histogram &
    histogram(const std::string &key, double lo, double hi,
              std::size_t buckets)
    {
        return histograms_.try_emplace(key, lo, hi, buckets)
            .first->second;
    }

    std::uint64_t
    counterValue(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second.value();
    }

    double
    gaugeValue(const std::string &key) const
    {
        auto it = gauges_.find(key);
        return it == gauges_.end() ? 0.0 : it->second;
    }

    const Histogram *
    findHistogram(const std::string &key) const
    {
        auto it = histograms_.find(key);
        return it == histograms_.end() ? nullptr : &it->second;
    }

    const Average *
    findAverage(const std::string &key) const
    {
        auto it = averages_.find(key);
        return it == averages_.end() ? nullptr : &it->second;
    }

    const std::string &name() const { return name_; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, double> &gauges() const
    {
        return gauges_;
    }

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : averages_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
        for (auto &kv : gauges_)
            kv.second = 0.0;
    }

    void dump(std::ostream &os) const;

    /** One JSON object: {"name":..,"counters":{..},..}. */
    void dumpJson(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, double> gauges_;
};

} // namespace stats
} // namespace pimmmu

#endif // PIMMMU_COMMON_STATS_HH

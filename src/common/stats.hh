/**
 * @file
 * A tiny statistics framework: named scalar counters, averages, and
 * histograms that components register into a group and that benches dump
 * in a uniform format.
 */

#ifndef PIMMMU_COMMON_STATS_HH
#define PIMMMU_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pimmmu {
namespace stats {

/** A monotonically increasing scalar counter. */
class Counter
{
  public:
    Counter &operator+=(std::uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    Counter &operator++()
    {
        ++value_;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-width-bucket histogram. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
    }

    void
    sample(double v)
    {
        total_ += 1;
        if (v < lo_) {
            ++underflow_;
            return;
        }
        if (v >= hi_) {
            ++overflow_;
            return;
        }
        const double width = (hi_ - lo_) / static_cast<double>(
                                               counts_.size());
        auto idx = static_cast<std::size_t>((v - lo_) / width);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of counters. Components expose a Group so test code
 * and benches can inspect results without poking private state.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &key) { return counters_[key]; }
    Average &average(const std::string &key) { return averages_[key]; }

    std::uint64_t
    counterValue(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second.value();
    }

    const std::string &name() const { return name_; }

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : averages_)
            kv.second.reset();
    }

    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
};

} // namespace stats
} // namespace pimmmu

#endif // PIMMMU_COMMON_STATS_HH

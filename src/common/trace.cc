#include "common/trace.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/event_queue.hh"

namespace pimmmu {
namespace trace {

namespace {

struct TraceState
{
    // Written at startup / from tests, read from every simulation
    // thread; relaxed atomics keep concurrent sweeps race-free.
    std::array<std::atomic<bool>, kNumCategories> enabled{};
    std::ostream *out = &std::cerr;
    std::once_flag envOnce;
};

TraceState &
state()
{
    static TraceState instance;
    return instance;
}

/**
 * The registered simulated clock. Thread-local: each sweep worker's
 * System stamps trace lines with its own clock, without racing.
 */
thread_local const EventQueue *tlsClock = nullptr;

const char *const kNames[kNumCategories] = {
    "dram", "dce", "cpu", "sched", "pim", "xfer", "resil"};

} // namespace

const char *
categoryName(Category cat)
{
    return kNames[static_cast<std::size_t>(cat)];
}

bool
parseCategory(const std::string &name, Category &out)
{
    for (std::size_t i = 0; i < kNumCategories; ++i) {
        if (name == kNames[i]) {
            out = static_cast<Category>(i);
            return true;
        }
    }
    return false;
}

void
enable(Category cat)
{
    state().enabled[static_cast<std::size_t>(cat)].store(
        true, std::memory_order_relaxed);
}

void
disable(Category cat)
{
    state().enabled[static_cast<std::size_t>(cat)].store(
        false, std::memory_order_relaxed);
}

void
enableAll()
{
    for (auto &flag : state().enabled)
        flag.store(true, std::memory_order_relaxed);
}

void
disableAll()
{
    for (auto &flag : state().enabled)
        flag.store(false, std::memory_order_relaxed);
}

void
applyEnvironment()
{
    std::call_once(state().envOnce, [] {
        const char *env = std::getenv("PIMMMU_TRACE");
        if (!env)
            return;
        std::string token;
        for (const char *p = env;; ++p) {
            if (*p == ',' || *p == '\0') {
                if (token == "all") {
                    enableAll();
                } else if (!token.empty()) {
                    Category cat;
                    if (parseCategory(token, cat))
                        enable(cat);
                }
                token.clear();
                if (*p == '\0')
                    break;
            } else {
                token += *p;
            }
        }
    });
}

bool
enabled(Category cat)
{
    applyEnvironment();
    return state().enabled[static_cast<std::size_t>(cat)].load(
        std::memory_order_relaxed);
}

void
setOutput(std::ostream *os)
{
    state().out = os;
}

void
setClock(const EventQueue *eq)
{
    tlsClock = eq;
}

void
clearClock(const EventQueue *eq)
{
    if (tlsClock == eq)
        tlsClock = nullptr;
}

Tick
now()
{
    const EventQueue *eq = tlsClock;
    return eq ? eq->now() : Tick{0};
}

void
emit(Category cat, Tick now, const std::string &message)
{
    std::ostream *out = state().out;
    if (!out)
        return;
    (*out) << now << "ps [" << categoryName(cat) << "] " << message
           << "\n";
}

} // namespace trace
} // namespace pimmmu

#include "common/trace.hh"

#include <cstdlib>
#include <iostream>

#include "common/event_queue.hh"

namespace pimmmu {
namespace trace {

namespace {

struct TraceState
{
    std::array<bool, kNumCategories> enabled{};
    std::ostream *out = &std::cerr;
    const EventQueue *clock = nullptr;
    bool envApplied = false;
};

TraceState &
state()
{
    static TraceState instance;
    return instance;
}

const char *const kNames[kNumCategories] = {"dram", "dce", "cpu",
                                            "sched", "pim", "xfer"};

} // namespace

const char *
categoryName(Category cat)
{
    return kNames[static_cast<std::size_t>(cat)];
}

bool
parseCategory(const std::string &name, Category &out)
{
    for (std::size_t i = 0; i < kNumCategories; ++i) {
        if (name == kNames[i]) {
            out = static_cast<Category>(i);
            return true;
        }
    }
    return false;
}

void
enable(Category cat)
{
    state().enabled[static_cast<std::size_t>(cat)] = true;
}

void
disable(Category cat)
{
    state().enabled[static_cast<std::size_t>(cat)] = false;
}

void
enableAll()
{
    state().enabled.fill(true);
}

void
disableAll()
{
    state().enabled.fill(false);
}

void
applyEnvironment()
{
    TraceState &st = state();
    if (st.envApplied)
        return;
    st.envApplied = true;
    const char *env = std::getenv("PIMMMU_TRACE");
    if (!env)
        return;
    std::string token;
    for (const char *p = env;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (token == "all") {
                enableAll();
            } else if (!token.empty()) {
                Category cat;
                if (parseCategory(token, cat))
                    enable(cat);
            }
            token.clear();
            if (*p == '\0')
                break;
        } else {
            token += *p;
        }
    }
}

bool
enabled(Category cat)
{
    applyEnvironment();
    return state().enabled[static_cast<std::size_t>(cat)];
}

void
setOutput(std::ostream *os)
{
    state().out = os;
}

void
setClock(const EventQueue *eq)
{
    state().clock = eq;
}

void
clearClock(const EventQueue *eq)
{
    if (state().clock == eq)
        state().clock = nullptr;
}

Tick
now()
{
    const EventQueue *eq = state().clock;
    return eq ? eq->now() : Tick{0};
}

void
emit(Category cat, Tick now, const std::string &message)
{
    std::ostream *out = state().out;
    if (!out)
        return;
    (*out) << now << "ps [" << categoryName(cat) << "] " << message
           << "\n";
}

} // namespace trace
} // namespace pimmmu

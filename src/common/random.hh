/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 /
 * xoshiro256**). The simulator never uses std::rand or hardware entropy
 * so every run is bit-for-bit reproducible.
 */

#ifndef PIMMMU_COMMON_RANDOM_HH
#define PIMMMU_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace pimmmu {

/** SplitMix64: used to seed the main generator and for cheap hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** 1.0 — a small, fast, high-quality PRNG.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be used
 * with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>((*this)()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace pimmmu

#endif // PIMMMU_COMMON_RANDOM_HH

#include "common/logging.hh"

#include <cstdio>

namespace pimmmu {
namespace detail {

[[noreturn]] void
throwError(const char *kind, const std::string &msg)
{
    throw SimError(std::string(kind) + ": " + msg);
}

void
emitLog(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail
} // namespace pimmmu

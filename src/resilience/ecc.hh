/**
 * @file
 * SEC-DED ECC over 64-bit wire words: extended Hamming (72,64).
 *
 * Every 8 B word crossing the memory bus is protected by 8 check bits
 * (7 Hamming parity bits + 1 overall parity bit), exactly like x72
 * server DIMMs. A single flipped bit is corrected in place; any two
 * flipped bits are detected as uncorrectable and handed to the
 * retransmission machinery. This is a real code, not a flag: the
 * decoder genuinely reconstructs the flipped bit from the syndrome, so
 * the fault-injection campaigns exercise the same arithmetic real
 * hardware would.
 */

#ifndef PIMMMU_RESILIENCE_ECC_HH
#define PIMMMU_RESILIENCE_ECC_HH

#include <cstdint>

namespace pimmmu {
namespace resilience {

/** Data bits per protected word and check bits per codeword. */
constexpr unsigned kEccDataBits = 64;
constexpr unsigned kEccCheckBits = 8;

/** Decoder verdict for one codeword. */
enum class EccOutcome
{
    Clean,             //!< syndrome zero, data delivered as-is
    CorrectedData,     //!< single data-bit flip, corrected in place
    CorrectedCheck,    //!< single check-bit flip, data was never wrong
    Uncorrectable,     //!< double-bit (or worse even-weight) error
};

/** Compute the 8 check bits protecting @p data (8 bytes). */
std::uint8_t eccEncode(const std::uint8_t data[8]);

/**
 * Check @p data (8 bytes) against @p check, correcting a single-bit
 * error in either in place.
 */
EccOutcome eccDecode(std::uint8_t data[8], std::uint8_t &check);

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_ECC_HH

/**
 * @file
 * The resilience manager: recovery policy, per-bank health state
 * machine, correlated failure domains, and the `resilience.*` stats
 * group.
 *
 * One manager per simulated System. The transfer path (DCE, PIM-MMU
 * runtime, baseline UPMEM runtime) consults the policy to decide which
 * checks run and how failures are recovered, and reports every
 * detection/recovery event here so campaigns can reconcile counters
 * against fired fault sites.
 *
 * Health is bank-granular (a DPU failure poisons its whole bank, since
 * transfers must cover all 8 chips), and domain-aware: the manager
 * knows how flat bank indices fold into ranks and channels, so a
 * correlated rank or channel failure masks every bank in the domain
 * atomically. With repair enabled, masking is no longer permanent —
 * each bank walks a health state machine
 *
 *   healthy -> suspected -> masked -> probation -> healthy
 *
 * driven by scrub probes: a failure demotes the bank, and N
 * consecutive CRC-clean probe transfers re-admit it.
 */

#ifndef PIMMMU_RESILIENCE_MANAGER_HH
#define PIMMMU_RESILIENCE_MANAGER_HH

#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "resilience/status.hh"
#include "resilience/xfer_guard.hh"

namespace pimmmu {

namespace telemetry {
namespace attribution {
class Recorder;
}
}

namespace resilience {

/** Recovery policy for the transfer path. All checks default off, so a
 *  default-constructed System behaves (and performs) exactly like one
 *  built before the resilience subsystem existed. */
struct Policy
{
    bool checkEcc = false; //!< SEC-DED ECC on every delivered word
    bool checkCrc = false; //!< per-descriptor payload CRC in the DCE

    /** Bounded retry for detected-uncorrectable data errors: word
     *  retransmission at the link level, descriptor retransfer (with
     *  exponential backoff) when the end-to-end CRC still mismatches. */
    bool retry = false;
    unsigned maxRetries = 4;
    Tick retryBackoffPs = 2 * kPsPerUs;

    /** Exclude failed DPUs (whole banks) from scatter plans and kernel
     *  launches instead of failing the transfer. Without repair the
     *  exclusion is permanent. */
    bool maskFailedDpus = false;

    /** Repair & re-admission: masked banks are probed by the scrub
     *  pass and re-admitted after `probesToReadmit` consecutive
     *  CRC-clean probe transfers. */
    bool repairEnabled = false;
    unsigned probesToReadmit = 2;

    /** Descriptor watchdog period (0 = off): if the engine makes no
     *  progress for this long, lost completions are recovered by
     *  re-driving the stuck streams. */
    Tick watchdogPs = 0;
    unsigned maxWatchdogRestarts = 8;

    bool detectionEnabled() const { return checkEcc || checkCrc; }

    /** Whether any feature is on (a Manager is worth constructing). */
    bool
    anyEnabled() const
    {
        return detectionEnabled() || retry || maskFailedDpus ||
               repairEnabled || watchdogPs > 0;
    }

    /** The campaign policies of bench/fig_resilience and fig_chaos. */
    static Policy off() { return Policy{}; }
    static Policy withRetry();
    static Policy withRetryAndMask();
    static Policy withRepair();
};

/** Per-bank health. Only Healthy banks are admitted into scatter plans
 *  and kernel launches; the other three states differ in how much
 *  probe evidence separates them from re-admission. */
enum class BankState
{
    Healthy,   //!< in service
    Suspected, //!< first failure seen (repair on); awaiting a probe
    Masked,    //!< confirmed bad, or repair disabled
    Probation, //!< some consecutive clean probes, not yet enough
};

const char *bankStateName(BankState s);

/**
 * How flat bank indices fold into correlated failure domains
 * (bank -> rank -> channel). Matches PimGeometry::bankCoord's flat
 * ordering: channel outer, then rank, then bank-within-rank — but is
 * kept self-contained here so the resilience layer stays independent
 * of the pim headers.
 */
struct DomainMap
{
    unsigned numBanks = 0;
    unsigned banksPerRank = 0;    //!< 0 = no domain structure (flat)
    unsigned ranksPerChannel = 1;
    unsigned chipsPerRank = 8;    //!< DPUs per bank

    unsigned
    numRanks() const
    {
        return banksPerRank ? numBanks / banksPerRank : 1;
    }

    unsigned
    numChannels() const
    {
        const unsigned perChannel = banksPerChannel();
        return perChannel ? numBanks / perChannel : 1;
    }

    unsigned
    banksPerChannel() const
    {
        return banksPerRank * ranksPerChannel;
    }

    unsigned
    rankOfBank(unsigned bank) const
    {
        return banksPerRank ? bank / banksPerRank : 0;
    }

    unsigned
    channelOfBank(unsigned bank) const
    {
        const unsigned perChannel = banksPerChannel();
        return perChannel ? bank / perChannel : 0;
    }

    /** A flat map with no rank/channel structure (legacy ctor). */
    static DomainMap
    flat(unsigned numDpus, unsigned chipsPerRank)
    {
        DomainMap m;
        m.chipsPerRank = chipsPerRank ? chipsPerRank : 1;
        m.numBanks = numDpus / m.chipsPerRank;
        m.banksPerRank = m.numBanks;
        m.ranksPerChannel = 1;
        return m;
    }
};

/** Per-System resilience state: policy, health state, accounting. */
class Manager
{
  public:
    Manager(const Policy &policy, const DomainMap &domains);
    /** Legacy shape: numDpus/chipsPerRank with no domain structure. */
    Manager(const Policy &policy, unsigned numDpus,
            unsigned chipsPerRank);
    ~Manager();

    Manager(const Manager &) = delete;
    Manager &operator=(const Manager &) = delete;

    const Policy &policy() const { return policy_; }
    const DomainMap &domains() const { return domains_; }
    stats::Group &stats() { return stats_; }

    /** A guard preconfigured from the policy. */
    XferGuard makeGuard() const;

    /** Fold one attempt's detection accounting into the stats. */
    void absorbGuard(const XferGuard &guard);

    // ------------------------------------------------------------------
    // Health state (bank-granular, domain-aware).
    // ------------------------------------------------------------------

    BankState
    bankState(unsigned bank) const
    {
        return bank < banks_.size() ? banks_[bank].state
                                    : BankState::Healthy;
    }

    /** Whether the bank is excluded from plans/launches: any state
     *  other than Healthy. */
    bool
    bankMasked(unsigned bank) const
    {
        return bankState(bank) != BankState::Healthy;
    }

    bool
    dpuHealthy(unsigned dpu) const
    {
        return !bankMasked(dpu / domains_.chipsPerRank);
    }

    /** Mark @p dpu failed; demotes its whole bank (to Suspected with
     *  repair enabled, else straight to Masked). */
    void markDpuFailed(unsigned dpu, Tick now);

    /** Correlated failures: demote every bank of the domain at once. */
    void markRankFailed(unsigned rank, Tick now);
    void markChannelFailed(unsigned channel, Tick now);

    /**
     * Fire the kill fault sites for each listed DPU: `dpu.kill` (one
     * core), `domain.kill_rank` and `domain.kill_channel` (its whole
     * rank / channel). The single source of truth for fault-driven
     * masking — every admission path (scatter planning, checked
     * transfers, kernel launches, scrub probes) calls this instead of
     * probing the sites itself. @return whether anything fired.
     */
    bool probeKillSites(const std::vector<unsigned> &dpuIds, Tick now);

    /** Banks currently out of service (candidates for a scrub probe). */
    std::vector<unsigned> banksNeedingProbe() const;

    /**
     * Outcome of one scrub probe of @p bank. A clean probe advances
     * the bank toward re-admission (Probation, then Healthy after
     * `probesToReadmit` consecutive clean probes); a failed probe
     * sends it back to Masked and resets the streak.
     */
    void noteProbeResult(unsigned bank, bool clean, Tick now);

    unsigned maskedBanks() const { return unhealthyBanks_; }
    unsigned
    healthyDpus() const
    {
        return (domains_.numBanks - unhealthyBanks_) *
               domains_.chipsPerRank;
    }

    // ------------------------------------------------------------------
    // Recovery accounting.
    // ------------------------------------------------------------------

    void noteCrcRetry() { ++stats_.counter("crc_retries"); }
    void noteEccRetry() { ++stats_.counter("ecc_retries"); }
    void noteWatchdogFire(Tick now, std::uint64_t transferId,
                          std::uint64_t lostWrites);
    void noteTransferFailed() { ++stats_.counter("transfers_failed"); }
    void noteTransferDegraded()
    {
        ++stats_.counter("transfers_degraded");
    }
    void noteLaunchDegraded() { ++stats_.counter("launches_degraded"); }
    void noteLaunchRelaunch() { ++stats_.counter("launch_relaunches"); }
    void noteLaunchCrcFailure()
    {
        ++stats_.counter("launch_crc_failures");
    }

    /**
     * Checkpoint the per-bank health state machines (state, clean
     * probe streak, masked-at stamp), the unhealthy-bank count and
     * stats. A restored manager resumes scrub-driven repair exactly
     * where the original left off.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    struct BankHealth
    {
        BankState state = BankState::Healthy;
        unsigned cleanProbes = 0; //!< consecutive clean scrub probes
        Tick maskedAt = 0;        //!< when the bank left service
    };

    /** Demote one bank after a failure (direct or domain-correlated). */
    void failBank(unsigned bank, Tick now, const char *why);

    /** The healthy-DPU population changed: feed the occupancy series. */
    void sampleHealthy(Tick now);

    Policy policy_;
    DomainMap domains_;
    std::vector<BankHealth> banks_;
    unsigned unhealthyBanks_ = 0;
    unsigned timelineTrack_ = 0;
    unsigned healthySeries_ = 0;
    telemetry::attribution::Recorder *rec_ = nullptr;
    stats::Group stats_;
};

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_MANAGER_HH

/**
 * @file
 * The resilience manager: recovery policy, per-DPU health mask, and the
 * `resilience.*` stats group.
 *
 * One manager per simulated System. The transfer path (DCE, PIM-MMU
 * runtime, baseline UPMEM runtime) consults the policy to decide which
 * checks run and how failures are recovered, and reports every
 * detection/recovery event here so campaigns can reconcile counters
 * against fired fault sites. The health mask is bank-granular: a DPU
 * failure poisons its whole bank (transfers must cover all 8 chips of a
 * bank), so masking excises the bank from scatter plans and kernel
 * launches.
 */

#ifndef PIMMMU_RESILIENCE_MANAGER_HH
#define PIMMMU_RESILIENCE_MANAGER_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "resilience/status.hh"
#include "resilience/xfer_guard.hh"

namespace pimmmu {
namespace resilience {

/** Recovery policy for the transfer path. All checks default off, so a
 *  default-constructed System behaves (and performs) exactly like one
 *  built before the resilience subsystem existed. */
struct Policy
{
    bool checkEcc = false; //!< SEC-DED ECC on every delivered word
    bool checkCrc = false; //!< per-descriptor payload CRC in the DCE

    /** Bounded retry for detected-uncorrectable data errors: word
     *  retransmission at the link level, descriptor retransfer (with
     *  exponential backoff) when the end-to-end CRC still mismatches. */
    bool retry = false;
    unsigned maxRetries = 4;
    Tick retryBackoffPs = 2 * kPsPerUs;

    /** Permanently exclude failed DPUs (whole banks) from scatter
     *  plans and kernel launches instead of failing the transfer. */
    bool maskFailedDpus = false;

    /** Descriptor watchdog period (0 = off): if the engine makes no
     *  progress for this long, lost completions are recovered by
     *  re-driving the stuck streams. */
    Tick watchdogPs = 0;
    unsigned maxWatchdogRestarts = 8;

    bool detectionEnabled() const { return checkEcc || checkCrc; }

    /** Whether any feature is on (a Manager is worth constructing). */
    bool
    anyEnabled() const
    {
        return detectionEnabled() || retry || maskFailedDpus ||
               watchdogPs > 0;
    }

    /** The three campaign policies of bench/fig_resilience. */
    static Policy off() { return Policy{}; }
    static Policy withRetry();
    static Policy withRetryAndMask();
};

/** Per-System resilience state: policy, health mask, accounting. */
class Manager
{
  public:
    Manager(const Policy &policy, unsigned numDpus,
            unsigned chipsPerRank);
    ~Manager();

    Manager(const Manager &) = delete;
    Manager &operator=(const Manager &) = delete;

    const Policy &policy() const { return policy_; }
    stats::Group &stats() { return stats_; }

    /** A guard preconfigured from the policy. */
    XferGuard makeGuard() const;

    /** Fold one attempt's detection accounting into the stats. */
    void absorbGuard(const XferGuard &guard);

    // ------------------------------------------------------------------
    // Health mask (bank-granular).
    // ------------------------------------------------------------------

    bool
    bankMasked(unsigned bank) const
    {
        return bank < bankMasked_.size() && bankMasked_[bank];
    }

    bool
    dpuHealthy(unsigned dpu) const
    {
        return !bankMasked(dpu / chipsPerRank_);
    }

    /** Mark @p dpu permanently failed; masks its whole bank. */
    void markDpuFailed(unsigned dpu, Tick now);

    unsigned maskedBanks() const { return maskedBanks_; }
    unsigned
    healthyDpus() const
    {
        return numDpus_ - maskedBanks_ * chipsPerRank_;
    }

    // ------------------------------------------------------------------
    // Recovery accounting.
    // ------------------------------------------------------------------

    void noteCrcRetry() { ++stats_.counter("crc_retries"); }
    void noteEccRetry() { ++stats_.counter("ecc_retries"); }
    void noteWatchdogFire(Tick now, std::uint64_t transferId,
                          std::uint64_t lostWrites);
    void noteTransferFailed() { ++stats_.counter("transfers_failed"); }
    void noteTransferDegraded()
    {
        ++stats_.counter("transfers_degraded");
    }
    void noteLaunchDegraded() { ++stats_.counter("launches_degraded"); }

  private:
    Policy policy_;
    unsigned numDpus_;
    unsigned chipsPerRank_;
    std::vector<bool> bankMasked_;
    unsigned maskedBanks_ = 0;
    unsigned timelineTrack_ = 0;
    stats::Group stats_;
};

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_MANAGER_HH

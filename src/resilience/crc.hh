/**
 * @file
 * CRC-32C (Castagnoli) for end-to-end payload verification.
 *
 * The DCE computes a CRC over every descriptor's payload as it passes
 * through the data buffer and verifies it against the source-side CRC at
 * completion; a mismatch means corruption slipped past the link-level
 * ECC (e.g. an SRAM buffer upset) and triggers a descriptor-level
 * retransfer. Dependency-free so the functional plane can link it
 * without cycles.
 */

#ifndef PIMMMU_RESILIENCE_CRC_HH
#define PIMMMU_RESILIENCE_CRC_HH

#include <cstddef>
#include <cstdint>

namespace pimmmu {
namespace resilience {

/** Initial running-CRC state (pre-inversion form). */
constexpr std::uint32_t kCrc32cInit = 0xffffffffu;

/** Fold @p bytes into a running CRC started from kCrc32cInit. */
std::uint32_t crc32cUpdate(std::uint32_t state, const void *data,
                           std::size_t bytes);

/** Finalize a running CRC into the canonical CRC-32C value. */
constexpr std::uint32_t
crc32cFinish(std::uint32_t state)
{
    return state ^ 0xffffffffu;
}

/** One-shot CRC-32C of a buffer. */
inline std::uint32_t
crc32c(const void *data, std::size_t bytes)
{
    return crc32cFinish(crc32cUpdate(kCrc32cInit, data, bytes));
}

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_CRC_HH

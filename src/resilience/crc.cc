#include "resilience/crc.hh"

#include <array>

namespace pimmmu {
namespace resilience {

namespace {

/** Reflected CRC-32C polynomial (iSCSI/ext4). */
constexpr std::uint32_t kPoly = 0x82f63b78u;

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
        table[i] = crc;
    }
    return table;
}

} // namespace

std::uint32_t
crc32cUpdate(std::uint32_t state, const void *data, std::size_t bytes)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < bytes; ++i)
        state = (state >> 8) ^ table[(state ^ p[i]) & 0xffu];
    return state;
}

} // namespace resilience
} // namespace pimmmu

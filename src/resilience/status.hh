/**
 * @file
 * Structured error reporting for the transfer path.
 *
 * The DCE fully offloads DRAM<->PIM copies behind MMIO, so a production
 * deployment has no CPU in the loop to notice a bad descriptor or a hung
 * engine. Instead of asserting (which models a machine check), the
 * resilient transfer path reports failures as a Status the caller can
 * inspect, log, and recover from.
 */

#ifndef PIMMMU_RESILIENCE_STATUS_HH
#define PIMMMU_RESILIENCE_STATUS_HH

#include <string>
#include <utility>

namespace pimmmu {
namespace resilience {

/** Why a transfer (or descriptor submission) failed. */
enum class ErrorCode
{
    Ok,
    /** Descriptor lists no bank streams. */
    EmptyDescriptor,
    /** Malformed descriptor: bad alignment, duplicate or out-of-range
     *  PIM core ids, mismatched list lengths, partial bank coverage. */
    MalformedDescriptor,
    /** A bank stream moves zero lines (would hang the engine). */
    EmptyStream,
    /** Descriptor exceeds the DCE address-buffer capacity. */
    DescriptorTooLarge,
    /** Payload still corrupt after the bounded retry budget. */
    DataCorrupt,
    /** Engine made no progress and the watchdog budget is spent. */
    TransferStalled,
    /** Every listed PIM core is health-masked; no capacity left. */
    CapacityExhausted,
    /** Every target of this operation is health-masked (possibly by a
     *  correlated rank/channel failure); nothing healthy to address. */
    NoHealthyTargets,
    /** A virtually addressed descriptor touched an unmapped page. */
    UnmappedPage,
    /** Mapping exists but forbids the requested access direction. */
    PermissionDenied,
    /** Unknown tenant handle, or a mapping request collided with
     *  physical pages owned by another tenant. */
    TenantIsolation,
    /** The VMA's declared HetMap region (DRAM vs PIM) disagrees with
     *  how the descriptor dispatches the range. */
    RegionMismatch,
    /** The tenant's serving-layer token bucket is out of budget. */
    QuotaExceeded,
    /** The serving layer is over its global inflight/queue capacity
     *  (including capacity-aware load shedding under faults). */
    Overloaded,
    /** The request's deadline passed before it could be served. */
    DeadlineExceeded,
    /** A snapshot file failed validation: bad magic, torn/truncated
     *  section, CRC mismatch, or garbage payload. Never loaded. */
    SnapshotCorrupt,
    /** A snapshot's format version (or system geometry) does not
     *  match what this build can restore. */
    SnapshotVersionMismatch,
};

/** Total number of ErrorCode values (for exhaustive iteration). */
constexpr unsigned kNumErrorCodes =
    static_cast<unsigned>(ErrorCode::SnapshotVersionMismatch) + 1;

const char *errorCodeName(ErrorCode code);

/**
 * Inverse of errorCodeName. @return true and set @p out when @p name
 * matches a code exactly; false (out untouched) otherwise. Exists so a
 * round-trip test can prove no two codes alias to one string.
 */
bool errorCodeFromName(const char *name, ErrorCode &out);

/** Outcome of a transfer-path operation: code + human detail. */
struct Status
{
    ErrorCode code = ErrorCode::Ok;
    std::string message;

    bool ok() const { return code == ErrorCode::Ok; }

    static Status
    failure(ErrorCode code, std::string message)
    {
        return Status{code, std::move(message)};
    }

    /** "ok" or "<code>: <message>". */
    std::string str() const;
};

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_STATUS_HH

/**
 * @file
 * Per-transfer error-detection context threaded through the functional
 * copy path.
 *
 * A guard carries the enabled checks (link-level SEC-DED ECC per wire
 * word, end-to-end CRC-32C per descriptor payload) and accumulates the
 * detection/recovery accounting the resilience manager folds into the
 * `resilience.*` stats group. Dependency-light on purpose: the
 * functional plane (host_transfer) includes only this header plus the
 * ecc/crc codecs, never the manager.
 */

#ifndef PIMMMU_RESILIENCE_XFER_GUARD_HH
#define PIMMMU_RESILIENCE_XFER_GUARD_HH

#include <cstdint>

#include "resilience/crc.hh"

namespace pimmmu {
namespace resilience {

/** Detection settings + accounting for one transfer attempt. */
struct XferGuard
{
    // --- configuration (from the resilience Policy) ---
    bool eccEnabled = false;  //!< SEC-DED on every delivered word
    bool crcEnabled = false;  //!< descriptor-level payload CRC
    bool retryWords = false;  //!< retransmit ECC-uncorrectable words
    unsigned maxWordRetries = 4;

    // --- accounting (read back by the resilience manager) ---
    std::uint64_t eccCorrected = 0;      //!< single-bit flips repaired
    std::uint64_t eccUncorrectable = 0;  //!< double-bit flips detected
    std::uint64_t wordRetries = 0;       //!< link retransmissions
    std::uint64_t uncorrectedWords = 0;  //!< delivered corrupt (budget spent)
    std::uint64_t corruptWords = 0;      //!< injected past-ECC corruption
    std::uint64_t wordIndex = 0;         //!< running word count

    /** Running CRCs over source payload and delivered payload. */
    std::uint32_t crcSource = kCrc32cInit;
    std::uint32_t crcDelivered = kCrc32cInit;

    bool crcOk() const { return crcSource == crcDelivered; }

    /** Did this attempt deliver a byte-exact payload? */
    bool
    dataOk() const
    {
        return uncorrectedWords == 0 && (!crcEnabled || crcOk());
    }
};

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_XFER_GUARD_HH

#include "resilience/manager.hh"

#include <cstring>
#include <sstream>

#include "common/stats_serialize.hh"
#include "common/trace.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace resilience {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::EmptyDescriptor:
        return "empty_descriptor";
      case ErrorCode::MalformedDescriptor:
        return "malformed_descriptor";
      case ErrorCode::EmptyStream:
        return "empty_stream";
      case ErrorCode::DescriptorTooLarge:
        return "descriptor_too_large";
      case ErrorCode::DataCorrupt:
        return "data_corrupt";
      case ErrorCode::TransferStalled:
        return "transfer_stalled";
      case ErrorCode::CapacityExhausted:
        return "capacity_exhausted";
      case ErrorCode::NoHealthyTargets:
        return "no_healthy_targets";
      case ErrorCode::UnmappedPage:
        return "unmapped_page";
      case ErrorCode::PermissionDenied:
        return "permission_denied";
      case ErrorCode::TenantIsolation:
        return "tenant_isolation";
      case ErrorCode::RegionMismatch:
        return "region_mismatch";
      case ErrorCode::QuotaExceeded:
        return "quota_exceeded";
      case ErrorCode::Overloaded:
        return "overloaded";
      case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
      case ErrorCode::SnapshotCorrupt:
        return "snapshot_corrupt";
      case ErrorCode::SnapshotVersionMismatch:
        return "snapshot_version_mismatch";
    }
    return "unknown";
}

bool
errorCodeFromName(const char *name, ErrorCode &out)
{
    for (unsigned i = 0; i < kNumErrorCodes; ++i) {
        const auto code = static_cast<ErrorCode>(i);
        if (std::strcmp(errorCodeName(code), name) == 0) {
            out = code;
            return true;
        }
    }
    return false;
}

const char *
bankStateName(BankState s)
{
    switch (s) {
      case BankState::Healthy:
        return "healthy";
      case BankState::Suspected:
        return "suspected";
      case BankState::Masked:
        return "masked";
      case BankState::Probation:
        return "probation";
    }
    return "unknown";
}

std::string
Status::str() const
{
    if (ok())
        return "ok";
    std::string s = errorCodeName(code);
    if (!message.empty()) {
        s += ": ";
        s += message;
    }
    return s;
}

Policy
Policy::withRetry()
{
    Policy p;
    p.checkEcc = true;
    p.checkCrc = true;
    p.retry = true;
    p.watchdogPs = 50 * kPsPerUs;
    return p;
}

Policy
Policy::withRetryAndMask()
{
    Policy p = withRetry();
    p.maskFailedDpus = true;
    return p;
}

Policy
Policy::withRepair()
{
    Policy p = withRetryAndMask();
    p.repairEnabled = true;
    return p;
}

Manager::Manager(const Policy &policy, const DomainMap &domains)
    : policy_(policy), domains_(domains),
      banks_(domains.numBanks), stats_("resilience")
{
    telemetry::StatsRegistry::global().add(stats_, [this] {
        stats_.gauge("healthy_dpus") =
            static_cast<double>(healthyDpus());
    });
    timelineTrack_ = telemetry::Timeline::global().track("resilience");
    rec_ = &telemetry::attribution::Recorder::global();
    healthySeries_ = rec_->series(
        "resilience.healthy_dpus", 0.0,
        static_cast<double>(domains_.numBanks * domains_.chipsPerRank),
        64);
}

Manager::Manager(const Policy &policy, unsigned numDpus,
                 unsigned chipsPerRank)
    : Manager(policy, DomainMap::flat(numDpus, chipsPerRank))
{
}

Manager::~Manager()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

XferGuard
Manager::makeGuard() const
{
    XferGuard guard;
    guard.eccEnabled = policy_.checkEcc;
    guard.crcEnabled = policy_.checkCrc;
    guard.retryWords = policy_.retry;
    guard.maxWordRetries = policy_.maxRetries;
    return guard;
}

void
Manager::absorbGuard(const XferGuard &guard)
{
    stats_.counter("ecc_corrected") += guard.eccCorrected;
    stats_.counter("ecc_uncorrectable") += guard.eccUncorrectable;
    stats_.counter("burst_retries") += guard.wordRetries;
    stats_.counter("crc_corrupt_words") += guard.corruptWords;
}

void
Manager::failBank(unsigned bank, Tick now, const char *why)
{
    if (bank >= banks_.size())
        return;
    BankHealth &h = banks_[bank];
    switch (h.state) {
      case BankState::Healthy:
        h.state = policy_.repairEnabled ? BankState::Suspected
                                        : BankState::Masked;
        h.cleanProbes = 0;
        h.maskedAt = now;
        ++unhealthyBanks_;
        stats_.counter("dpus_masked") += domains_.chipsPerRank;
        ++stats_.counter("banks_masked");
        PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                         "mask bank " << bank << " (" << why << "): "
                         << bankStateName(h.state) << ", healthy dpus "
                         << healthyDpus());
        sampleHealthy(now);
        {
            auto &tl = telemetry::Timeline::global();
            if (tl.enabled()) {
                std::ostringstream os;
                os << "mask bank " << bank << " (" << why << ")";
                tl.instant(timelineTrack_, os.str(), now);
            }
        }
        break;
      case BankState::Suspected:
      case BankState::Probation:
        // Fresh failure evidence while out of service: confirmed bad,
        // the re-admission streak restarts from zero.
        h.state = BankState::Masked;
        h.cleanProbes = 0;
        PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                         "bank " << bank << " failed while out of "
                         "service (" << why << "): back to masked");
        break;
      case BankState::Masked:
        break;
    }
}

void
Manager::sampleHealthy(Tick now)
{
    rec_->sampleOccupancy(healthySeries_, now,
                          static_cast<double>(healthyDpus()));
}

void
Manager::markDpuFailed(unsigned dpu, Tick now)
{
    failBank(dpu / domains_.chipsPerRank, now, "dpu failure");
}

void
Manager::markRankFailed(unsigned rank, Tick now)
{
    if (domains_.banksPerRank == 0 || rank >= domains_.numRanks())
        return;
    ++stats_.counter("ranks_masked");
    PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                     "correlated failure: kill rank " << rank << " ("
                     << domains_.banksPerRank << " banks)");
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::ostringstream os;
        os << "kill rank " << rank;
        tl.instant(timelineTrack_, os.str(), now);
    }
    const unsigned first = rank * domains_.banksPerRank;
    for (unsigned b = first; b < first + domains_.banksPerRank; ++b)
        failBank(b, now, "rank failure");
}

void
Manager::markChannelFailed(unsigned channel, Tick now)
{
    const unsigned perChannel = domains_.banksPerChannel();
    if (perChannel == 0 || channel >= domains_.numChannels())
        return;
    ++stats_.counter("channels_masked");
    PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                     "correlated failure: kill channel " << channel
                     << " (" << perChannel << " banks)");
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::ostringstream os;
        os << "kill channel " << channel;
        tl.instant(timelineTrack_, os.str(), now);
    }
    const unsigned first = channel * perChannel;
    for (unsigned b = first; b < first + perChannel; ++b)
        failBank(b, now, "channel failure");
}

bool
Manager::probeKillSites(const std::vector<unsigned> &dpuIds, Tick now)
{
    namespace fault = testing::fault;
    bool any = false;
    for (const unsigned dpu : dpuIds) {
        const unsigned bank = dpu / domains_.chipsPerRank;
        if (fault::fire("dpu.kill")) {
            markDpuFailed(dpu, now);
            any = true;
        }
        if (fault::fire("domain.kill_rank")) {
            markRankFailed(domains_.rankOfBank(bank), now);
            any = true;
        }
        if (fault::fire("domain.kill_channel")) {
            markChannelFailed(domains_.channelOfBank(bank), now);
            any = true;
        }
    }
    return any;
}

std::vector<unsigned>
Manager::banksNeedingProbe() const
{
    std::vector<unsigned> out;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        if (banks_[b].state != BankState::Healthy)
            out.push_back(b);
    }
    return out;
}

void
Manager::noteProbeResult(unsigned bank, bool clean, Tick now)
{
    if (bank >= banks_.size() ||
        banks_[bank].state == BankState::Healthy)
        return;
    BankHealth &h = banks_[bank];
    ++stats_.counter("probe_transfers");
    if (!clean) {
        ++stats_.counter("probe_failures");
        h.state = BankState::Masked;
        h.cleanProbes = 0;
        PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                         "probe of bank " << bank
                         << " failed: back to masked");
        return;
    }
    ++h.cleanProbes;
    if (h.cleanProbes < policy_.probesToReadmit) {
        h.state = BankState::Probation;
        PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                         "probe of bank " << bank << " clean ("
                         << h.cleanProbes << "/"
                         << policy_.probesToReadmit
                         << "): probation");
        return;
    }
    // Re-admission: the bank rejoins service.
    h.state = BankState::Healthy;
    h.cleanProbes = 0;
    --unhealthyBanks_;
    ++stats_.counter("readmissions");
    PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                     "bank " << bank << " re-admitted after "
                     << policy_.probesToReadmit
                     << " clean probes, healthy dpus "
                     << healthyDpus());
    sampleHealthy(now);
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::ostringstream os;
        os << "bank " << bank << " out of service";
        tl.span(timelineTrack_, os.str(), h.maskedAt, now);
    }
}

void
Manager::noteWatchdogFire(Tick now, std::uint64_t transferId,
                          std::uint64_t lostWrites)
{
    ++stats_.counter("watchdog_fires");
    stats_.counter("watchdog_recovered_writes") += lostWrites;
    PIMMMU_TRACE_LOG(trace::Category::Resil, now,
                     "watchdog fired on xfer " << transferId
                     << ": re-driving " << lostWrites
                     << " lost writes");
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::ostringstream os;
        os << "watchdog xfer " << transferId << " (+" << lostWrites
           << " writes)";
        tl.instant(timelineTrack_, os.str(), now);
    }
}

void
Manager::saveState(serialize::ByteSink &out) const
{
    out.u64(banks_.size());
    for (const BankHealth &b : banks_) {
        out.u8(static_cast<std::uint8_t>(b.state));
        out.u64(b.cleanProbes);
        out.u64(b.maskedAt);
    }
    out.u64(unhealthyBanks_);
    stats::saveGroup(out, stats_);
}

bool
Manager::restoreState(serialize::ByteSource &in)
{
    if (in.u64() != banks_.size()) // geometry mismatch
        return false;
    for (BankHealth &b : banks_) {
        b.state = static_cast<BankState>(in.u8());
        b.cleanProbes = static_cast<unsigned>(in.u64());
        b.maskedAt = in.u64();
    }
    unhealthyBanks_ = static_cast<unsigned>(in.u64());
    return stats::restoreGroup(in, stats_);
}

} // namespace resilience
} // namespace pimmmu

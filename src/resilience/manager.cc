#include "resilience/manager.hh"

#include <sstream>

#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace resilience {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::EmptyDescriptor:
        return "empty_descriptor";
      case ErrorCode::MalformedDescriptor:
        return "malformed_descriptor";
      case ErrorCode::EmptyStream:
        return "empty_stream";
      case ErrorCode::DescriptorTooLarge:
        return "descriptor_too_large";
      case ErrorCode::DataCorrupt:
        return "data_corrupt";
      case ErrorCode::TransferStalled:
        return "transfer_stalled";
      case ErrorCode::CapacityExhausted:
        return "capacity_exhausted";
    }
    return "unknown";
}

std::string
Status::str() const
{
    if (ok())
        return "ok";
    std::string s = errorCodeName(code);
    if (!message.empty()) {
        s += ": ";
        s += message;
    }
    return s;
}

Policy
Policy::withRetry()
{
    Policy p;
    p.checkEcc = true;
    p.checkCrc = true;
    p.retry = true;
    p.watchdogPs = 50 * kPsPerUs;
    return p;
}

Policy
Policy::withRetryAndMask()
{
    Policy p = withRetry();
    p.maskFailedDpus = true;
    return p;
}

Manager::Manager(const Policy &policy, unsigned numDpus,
                 unsigned chipsPerRank)
    : policy_(policy), numDpus_(numDpus),
      chipsPerRank_(chipsPerRank ? chipsPerRank : 1),
      bankMasked_(numDpus / (chipsPerRank ? chipsPerRank : 1), false),
      stats_("resilience")
{
    telemetry::StatsRegistry::global().add(stats_, [this] {
        stats_.gauge("healthy_dpus") =
            static_cast<double>(healthyDpus());
    });
    timelineTrack_ = telemetry::Timeline::global().track("resilience");
}

Manager::~Manager()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

XferGuard
Manager::makeGuard() const
{
    XferGuard guard;
    guard.eccEnabled = policy_.checkEcc;
    guard.crcEnabled = policy_.checkCrc;
    guard.retryWords = policy_.retry;
    guard.maxWordRetries = policy_.maxRetries;
    return guard;
}

void
Manager::absorbGuard(const XferGuard &guard)
{
    stats_.counter("ecc_corrected") += guard.eccCorrected;
    stats_.counter("ecc_uncorrectable") += guard.eccUncorrectable;
    stats_.counter("burst_retries") += guard.wordRetries;
    stats_.counter("crc_corrupt_words") += guard.corruptWords;
}

void
Manager::markDpuFailed(unsigned dpu, Tick now)
{
    const unsigned bank = dpu / chipsPerRank_;
    if (bank >= bankMasked_.size() || bankMasked_[bank])
        return;
    bankMasked_[bank] = true;
    ++maskedBanks_;
    stats_.counter("dpus_masked") += chipsPerRank_;
    ++stats_.counter("banks_masked");
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::ostringstream os;
        os << "mask dpu " << dpu << " (bank " << bank << ")";
        tl.instant(timelineTrack_, os.str(), now);
    }
}

void
Manager::noteWatchdogFire(Tick now, std::uint64_t transferId,
                          std::uint64_t lostWrites)
{
    ++stats_.counter("watchdog_fires");
    stats_.counter("watchdog_recovered_writes") += lostWrites;
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::ostringstream os;
        os << "watchdog xfer " << transferId << " (+" << lostWrites
           << " writes)";
        tl.instant(timelineTrack_, os.str(), now);
    }
}

} // namespace resilience
} // namespace pimmmu

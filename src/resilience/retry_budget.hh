/**
 * @file
 * A retry budget: a token bucket over simulated time that bounds how
 * much *extra* work recovery is allowed to inject.
 *
 * Retrying a faulted descriptor is load amplification: during a
 * brownout (a masked rank, a flaky channel) every failed transfer that
 * is re-driven competes with fresh foreground traffic for the capacity
 * that remains. The per-call retry loop already bounds attempts per
 * descriptor; this bounds attempts per unit time across all calls, so
 * a burst of correlated failures degrades into shed load instead of a
 * retry storm.
 *
 * Tokens refill continuously at @c perSecond (simulated seconds) up to
 * @c burst. Each retry spends one token; when the bucket is empty the
 * caller must give up (and terminate the request through its normal
 * rejection path) instead of re-driving.
 */

#ifndef PIMMMU_RESILIENCE_RETRY_BUDGET_HH
#define PIMMMU_RESILIENCE_RETRY_BUDGET_HH

#include <cmath>

#include "common/types.hh"

namespace pimmmu {
namespace resilience {

class RetryBudget
{
  public:
    /** @p burst tokens available at once, refilled at @p perSecond
     *  tokens per simulated second. burst == 0 disables the limiter
     *  (every tryAcquire succeeds). */
    RetryBudget(double burst = 0.0, double perSecond = 0.0)
        : burst_(burst), perSecond_(perSecond), tokens_(burst)
    {
    }

    bool unlimited() const { return burst_ <= 0.0; }

    /** Tokens available at @p now (refill applied lazily). */
    double
    available(Tick now)
    {
        refill(now);
        return unlimited() ? 1.0 : tokens_;
    }

    /**
     * Spend one retry token. @return false when the budget is dry —
     * the caller must not re-drive the descriptor.
     */
    bool tryAcquire(Tick now) { return tryAcquire(now, 1.0); }

    /**
     * Spend @p amount tokens at once. The same bucket mechanics also
     * serve as a byte-denominated admission quota (serving::Server
     * charges a request's total bytes against its tenant's bucket).
     */
    bool
    tryAcquire(Tick now, double amount)
    {
        if (unlimited())
            return true;
        // A non-finite charge would poison the bucket: NaN compares
        // false against everything, so `tokens_ < NaN` admits and
        // `tokens_ -= NaN` leaves NaN behind, after which every later
        // comparison also admits — one bad request unlocks unlimited
        // admission forever. Reject it at the door instead.
        if (!std::isfinite(amount) || amount < 0.0)
            return false;
        refill(now);
        if (tokens_ < amount)
            return false;
        tokens_ -= amount;
        return true;
    }

    /** Checkpointing: raw bucket state, restored bit-exactly. */
    double tokens() const { return tokens_; }
    Tick lastRefillPs() const { return lastRefillPs_; }

    /**
     * Overwrite the bucket from checkpointed state. Out-of-range
     * values (a corrupt snapshot that passed CRC) saturate into
     * [0, burst] rather than poisoning later arithmetic; the refill
     * clock may sit ahead of the restored simulator clock without
     * harm (refill() treats time-gone-backwards as a no-op).
     */
    void
    restore(double tokens, Tick lastRefillPs)
    {
        tokens_ = std::isfinite(tokens)
                      ? (tokens < 0.0
                             ? 0.0
                             : (tokens > burst_ ? burst_ : tokens))
                      : burst_;
        lastRefillPs_ = lastRefillPs;
    }

  private:
    void
    refill(Tick now)
    {
        if (now <= lastRefillPs_) {
            // Time never goes backwards in one run, but a restored
            // bucket may carry a refill stamp from a later quiesce
            // point than the clock it is re-attached to. Granting the
            // (huge, wrapped) u64 delta would refill the burst for
            // free, so do nothing until the clock catches up.
            return;
        }
        // Soak-scale guard: minutes of simulated time are ~1e14 ps,
        // and delta * perSecond can overflow a double into +inf for
        // pathological rates. The bucket level itself must stay
        // finite, so any non-finite (or burst-exceeding) result
        // saturates at a full bucket.
        const double dt =
            static_cast<double>(now - lastRefillPs_) / 1e12;
        const double refilled = tokens_ + dt * perSecond_;
        tokens_ = (!std::isfinite(refilled) || refilled > burst_)
                      ? burst_
                      : refilled;
        lastRefillPs_ = now;
    }

    double burst_;
    double perSecond_;
    double tokens_;
    Tick lastRefillPs_ = 0;
};

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_RETRY_BUDGET_HH

/**
 * @file
 * A retry budget: a token bucket over simulated time that bounds how
 * much *extra* work recovery is allowed to inject.
 *
 * Retrying a faulted descriptor is load amplification: during a
 * brownout (a masked rank, a flaky channel) every failed transfer that
 * is re-driven competes with fresh foreground traffic for the capacity
 * that remains. The per-call retry loop already bounds attempts per
 * descriptor; this bounds attempts per unit time across all calls, so
 * a burst of correlated failures degrades into shed load instead of a
 * retry storm.
 *
 * Tokens refill continuously at @c perSecond (simulated seconds) up to
 * @c burst. Each retry spends one token; when the bucket is empty the
 * caller must give up (and terminate the request through its normal
 * rejection path) instead of re-driving.
 */

#ifndef PIMMMU_RESILIENCE_RETRY_BUDGET_HH
#define PIMMMU_RESILIENCE_RETRY_BUDGET_HH

#include "common/types.hh"

namespace pimmmu {
namespace resilience {

class RetryBudget
{
  public:
    /** @p burst tokens available at once, refilled at @p perSecond
     *  tokens per simulated second. burst == 0 disables the limiter
     *  (every tryAcquire succeeds). */
    RetryBudget(double burst = 0.0, double perSecond = 0.0)
        : burst_(burst), perSecond_(perSecond), tokens_(burst)
    {
    }

    bool unlimited() const { return burst_ <= 0.0; }

    /** Tokens available at @p now (refill applied lazily). */
    double
    available(Tick now)
    {
        refill(now);
        return unlimited() ? 1.0 : tokens_;
    }

    /**
     * Spend one retry token. @return false when the budget is dry —
     * the caller must not re-drive the descriptor.
     */
    bool tryAcquire(Tick now) { return tryAcquire(now, 1.0); }

    /**
     * Spend @p amount tokens at once. The same bucket mechanics also
     * serve as a byte-denominated admission quota (serving::Server
     * charges a request's total bytes against its tenant's bucket).
     */
    bool
    tryAcquire(Tick now, double amount)
    {
        if (unlimited())
            return true;
        refill(now);
        if (tokens_ < amount)
            return false;
        tokens_ -= amount;
        return true;
    }

  private:
    void
    refill(Tick now)
    {
        if (now <= lastRefillPs_) {
            lastRefillPs_ = now > lastRefillPs_ ? now : lastRefillPs_;
            return;
        }
        const double dt =
            static_cast<double>(now - lastRefillPs_) / 1e12;
        tokens_ += dt * perSecond_;
        if (tokens_ > burst_)
            tokens_ = burst_;
        lastRefillPs_ = now;
    }

    double burst_;
    double perSecond_;
    double tokens_;
    Tick lastRefillPs_ = 0;
};

} // namespace resilience
} // namespace pimmmu

#endif // PIMMMU_RESILIENCE_RETRY_BUDGET_HH

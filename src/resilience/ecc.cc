#include "resilience/ecc.hh"

#include <array>

namespace pimmmu {
namespace resilience {

namespace {

constexpr unsigned kCodeBits = 72; //!< 64 data + 7 Hamming + 1 overall

constexpr bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Codeword position of each data bit (positions 1..71 that are not
 *  Hamming parity positions; position 0 is the overall parity bit). */
struct PositionMaps
{
    std::array<unsigned, kEccDataBits> dataPos{};
    std::array<int, kCodeBits> dataIndexAt{}; //!< -1 at parity positions
};

constexpr PositionMaps
makeMaps()
{
    PositionMaps m{};
    for (auto &v : m.dataIndexAt)
        v = -1;
    unsigned j = 0;
    for (unsigned pos = 1; pos < kCodeBits; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        m.dataPos[j] = pos;
        m.dataIndexAt[pos] = static_cast<int>(j);
        ++j;
    }
    return m;
}

constexpr PositionMaps kMaps = makeMaps();

bool
dataBit(const std::uint8_t data[8], unsigned j)
{
    return (data[j / 8] >> (j % 8)) & 1u;
}

void
flipDataBit(std::uint8_t data[8], unsigned j)
{
    data[j / 8] ^= static_cast<std::uint8_t>(1u << (j % 8));
}

/** Expand data + check into the 72-bit codeword. */
void
buildCodeword(const std::uint8_t data[8], std::uint8_t check,
              bool cw[kCodeBits])
{
    for (unsigned pos = 0; pos < kCodeBits; ++pos)
        cw[pos] = false;
    for (unsigned j = 0; j < kEccDataBits; ++j)
        cw[kMaps.dataPos[j]] = dataBit(data, j);
    for (unsigned k = 0; k < 7; ++k)
        cw[1u << k] = (check >> k) & 1u;
    cw[0] = (check >> 7) & 1u;
}

} // namespace

std::uint8_t
eccEncode(const std::uint8_t data[8])
{
    bool cw[kCodeBits];
    buildCodeword(data, 0, cw);
    std::uint8_t check = 0;
    for (unsigned k = 0; k < 7; ++k) {
        bool parity = false;
        for (unsigned pos = 1; pos < kCodeBits; ++pos) {
            if ((pos & (1u << k)) && !isPowerOfTwo(pos))
                parity ^= cw[pos];
        }
        check |= static_cast<std::uint8_t>(parity) << k;
        cw[1u << k] = parity;
    }
    bool overall = false;
    for (unsigned pos = 1; pos < kCodeBits; ++pos)
        overall ^= cw[pos];
    check |= static_cast<std::uint8_t>(overall) << 7;
    return check;
}

EccOutcome
eccDecode(std::uint8_t data[8], std::uint8_t &check)
{
    bool cw[kCodeBits];
    buildCodeword(data, check, cw);

    unsigned syndrome = 0;
    for (unsigned k = 0; k < 7; ++k) {
        bool parity = false;
        for (unsigned pos = 1; pos < kCodeBits; ++pos) {
            if (pos & (1u << k))
                parity ^= cw[pos];
        }
        if (parity)
            syndrome |= 1u << k;
    }
    bool overall = false;
    for (unsigned pos = 0; pos < kCodeBits; ++pos)
        overall ^= cw[pos];

    if (syndrome == 0 && !overall)
        return EccOutcome::Clean;
    if (!overall) {
        // Nonzero syndrome with even total weight: >= 2 flipped bits.
        return EccOutcome::Uncorrectable;
    }
    // Odd weight: a single flipped bit at codeword position `syndrome`
    // (0 means the overall parity bit itself).
    if (syndrome == 0) {
        check ^= 0x80;
        return EccOutcome::CorrectedCheck;
    }
    if (syndrome >= kCodeBits)
        return EccOutcome::Uncorrectable;
    if (isPowerOfTwo(syndrome)) {
        for (unsigned k = 0; k < 7; ++k) {
            if (syndrome == (1u << k))
                check ^= static_cast<std::uint8_t>(1u << k);
        }
        return EccOutcome::CorrectedCheck;
    }
    flipDataBit(data, static_cast<unsigned>(
                          kMaps.dataIndexAt[syndrome]));
    return EccOutcome::CorrectedData;
}

} // namespace resilience
} // namespace pimmmu

#include "resilience/ecc.hh"

#include <array>

namespace pimmmu {
namespace resilience {

namespace {

constexpr unsigned kCodeBits = 72; //!< 64 data + 7 Hamming + 1 overall

constexpr bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Codeword position of each data bit (positions 1..71 that are not
 *  Hamming parity positions; position 0 is the overall parity bit). */
struct PositionMaps
{
    std::array<unsigned, kEccDataBits> dataPos{};
    std::array<int, kCodeBits> dataIndexAt{}; //!< -1 at parity positions
};

constexpr PositionMaps
makeMaps()
{
    PositionMaps m{};
    for (auto &v : m.dataIndexAt)
        v = -1;
    unsigned j = 0;
    for (unsigned pos = 1; pos < kCodeBits; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        m.dataPos[j] = pos;
        m.dataIndexAt[pos] = static_cast<int>(j);
        ++j;
    }
    return m;
}

constexpr PositionMaps kMaps = makeMaps();

/**
 * Parity-check masks over the 64 data bits: bit j of kParityMask[k] is
 * set iff data bit j sits at a codeword position with bit k set, i.e.
 * iff it feeds Hamming parity bit k. Folding each 71-position loop of
 * the reference decoder into one AND + popcount-parity is what lets
 * the guarded transfer path run at soak scale (the per-word encode +
 * decode dominated whole-campaign profiles before).
 */
constexpr std::array<std::uint64_t, 7>
makeParityMasks()
{
    std::array<std::uint64_t, 7> masks{};
    for (unsigned k = 0; k < 7; ++k) {
        std::uint64_t m = 0;
        for (unsigned j = 0; j < kEccDataBits; ++j) {
            if (kMaps.dataPos[j] & (1u << k))
                m |= std::uint64_t{1} << j;
        }
        masks[k] = m;
    }
    return masks;
}

constexpr std::array<std::uint64_t, 7> kParityMask = makeParityMasks();

/** Little-endian load so bit j of the word is data[j/8] >> (j%8). */
std::uint64_t
loadWord(const std::uint8_t data[8])
{
    std::uint64_t w = 0;
    for (unsigned i = 0; i < 8; ++i)
        w |= std::uint64_t{data[i]} << (8 * i);
    return w;
}

bool
parity64(std::uint64_t v)
{
    return __builtin_parityll(v);
}

void
flipDataBit(std::uint8_t data[8], unsigned j)
{
    data[j / 8] ^= static_cast<std::uint8_t>(1u << (j % 8));
}

} // namespace

std::uint8_t
eccEncode(const std::uint8_t data[8])
{
    const std::uint64_t w = loadWord(data);
    std::uint8_t check = 0;
    for (unsigned k = 0; k < 7; ++k)
        check |= static_cast<std::uint8_t>(parity64(w & kParityMask[k]))
                 << k;
    // Overall parity covers positions 1..71: every data bit plus the
    // seven Hamming bits just computed.
    const bool overall = parity64(w) ^ parity64(check & 0x7f);
    check |= static_cast<std::uint8_t>(overall) << 7;
    return check;
}

EccOutcome
eccDecode(std::uint8_t data[8], std::uint8_t &check)
{
    const std::uint64_t w = loadWord(data);

    // Syndrome bit k covers every position with bit k set — the data
    // bits selected by the mask plus parity position 2^k itself.
    unsigned syndrome = 0;
    for (unsigned k = 0; k < 7; ++k) {
        const bool parity =
            parity64(w & kParityMask[k]) ^ ((check >> k) & 1u);
        if (parity)
            syndrome |= 1u << k;
    }
    // Overall parity covers all 72 positions, check bit 7 included.
    const bool overall = parity64(w) ^ parity64(check);

    if (syndrome == 0 && !overall)
        return EccOutcome::Clean;
    if (!overall) {
        // Nonzero syndrome with even total weight: >= 2 flipped bits.
        return EccOutcome::Uncorrectable;
    }
    // Odd weight: a single flipped bit at codeword position `syndrome`
    // (0 means the overall parity bit itself).
    if (syndrome == 0) {
        check ^= 0x80;
        return EccOutcome::CorrectedCheck;
    }
    if (syndrome >= kCodeBits)
        return EccOutcome::Uncorrectable;
    if (isPowerOfTwo(syndrome)) {
        for (unsigned k = 0; k < 7; ++k) {
            if (syndrome == (1u << k))
                check ^= static_cast<std::uint8_t>(1u << k);
        }
        return EccOutcome::CorrectedCheck;
    }
    flipDataBit(data, static_cast<unsigned>(
                          kMaps.dataIndexAt[syndrome]));
    return EccOutcome::CorrectedData;
}

} // namespace resilience
} // namespace pimmmu

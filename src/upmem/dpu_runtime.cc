#include "upmem/dpu_runtime.hh"

#include <numeric>

#include "common/trace.hh"
#include "pim/host_transfer.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace upmem {

UpmemRuntime::UpmemRuntime(EventQueue &eq, cpu::Cpu &cpu,
                           dram::MemorySystem &mem,
                           device::PimDevice &pim)
    : eq_(eq), cpu_(cpu), mem_(mem), pim_(pim), stats_("upmem")
{
    timelineTrack_ = telemetry::Timeline::global().track("upmem.xfer");
    telemetry::StatsRegistry::global().add(stats_);
}

UpmemRuntime::~UpmemRuntime()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

void
UpmemRuntime::pushXfer(XferKind kind,
                       const std::vector<unsigned> &dpuIds,
                       const std::vector<Addr> &hostAddrs,
                       std::uint64_t bytesPerDpu, Addr heapOffset,
                       std::function<void()> onComplete)
{
    const bool toPim = kind == XferKind::ToDpu;
    const device::PimGeometry &geom = pim_.geometry();
    const device::BankGrouping grouping = device::groupByBank(
        geom, dpuIds, hostAddrs, bytesPerDpu, heapOffset);

    device::functionalTransfer(mem_.store(), pim_, toPim, grouping,
                               bytesPerDpu, heapOffset);

    // Timing plane: one software copy thread per bank, exactly like the
    // runtime library's worker pool.
    const Addr pimBase = mem_.systemMap().pimBase();
    const std::uint64_t wordStart = heapOffset / device::kWordBytes;

    std::vector<std::shared_ptr<cpu::SoftThread>> threads;
    threads.reserve(grouping.banks.size());
    for (const auto &bank : grouping.banks) {
        cpu::CopyWork work;
        work.kind = toPim ? cpu::CopyWork::Kind::DramToPim
                          : cpu::CopyWork::Kind::PimToDram;
        work.dpuHostBase = bank.hostBase;
        work.wireBase = pimBase + geom.bankRegionOffset(bank.bankIdx) +
                        wordStart * device::kBlockBytes;
        work.linesPerDpu = bytesPerDpu / 64;
        threads.push_back(std::make_shared<cpu::CopyThread>(work));
    }
    PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                     "dpu_push_xfer: " << grouping.banks.size()
                                       << " banks x " << bytesPerDpu
                                       << " B/DPU ("
                                       << threads.size()
                                       << " copy threads)");
    stats_.counter("push_xfers") += 1;
    stats_.counter("bytes") += dpuIds.size() * bytesPerDpu;
    stats_.average("copy_threads").sample(
        static_cast<double>(threads.size()));
    const Tick startedAt = eq_.now();
    const std::uint64_t xferId = nextXferId_++;
    cpu_.runJob(std::move(threads),
                [this, startedAt, xferId,
                 onComplete = std::move(onComplete)] {
                    const Tick now = eq_.now();
                    stats_.average("xfer_us").sample(
                        static_cast<double>(now - startedAt) / 1e6);
                    auto &tl = telemetry::Timeline::global();
                    if (tl.enabled())
                        tl.span(timelineTrack_,
                                "push_xfer#" + std::to_string(xferId),
                                startedAt, now);
                    if (onComplete)
                        onComplete();
                });
}

DpuSet::DpuSet(UpmemRuntime &runtime, unsigned count)
    : runtime_(runtime), dpuIds_(count), hostAddrs_(count, kAddrInvalid)
{
    if (count == 0 || count > runtime.pim().numDpus())
        fatal("DpuSet: bad DPU count ", count);
    std::iota(dpuIds_.begin(), dpuIds_.end(), 0u);
}

void
DpuSet::prepareXfer(unsigned index, Addr hostAddr)
{
    PIMMMU_ASSERT(index < dpuIds_.size(), "prepareXfer out of range");
    hostAddrs_[index] = hostAddr;
}

Tick
DpuSet::launch(
    const std::function<void(device::Dpu &, unsigned)> &kernel,
    const device::KernelModel &model, std::uint64_t bytesPerDpu)
{
    return runtime_.pim().launch(dpuIds_, kernel, model, bytesPerDpu);
}

void
DpuSet::pushXfer(XferKind kind, Addr heapOffset,
                 std::uint64_t bytesPerDpu,
                 std::function<void()> onComplete)
{
    for (Addr a : hostAddrs_) {
        if (a == kAddrInvalid)
            fatal("pushXfer before every DPU has a prepared buffer");
    }
    runtime_.pushXfer(kind, dpuIds_, hostAddrs_, bytesPerDpu,
                      heapOffset, std::move(onComplete));
}

} // namespace upmem
} // namespace pimmmu

#include "upmem/dpu_runtime.hh"

#include "common/stats_serialize.hh"

#include <numeric>

#include "common/trace.hh"
#include "pim/host_transfer.hh"
#include "resilience/manager.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace upmem {

UpmemRuntime::UpmemRuntime(EventQueue &eq, cpu::Cpu &cpu,
                           dram::MemorySystem &mem,
                           device::PimDevice &pim,
                           resilience::Manager *res)
    : eq_(eq), cpu_(cpu), mem_(mem), pim_(pim), res_(res),
      stats_("upmem")
{
    timelineTrack_ = telemetry::Timeline::global().track("upmem.xfer");
    telemetry::StatsRegistry::global().add(stats_);
}

UpmemRuntime::~UpmemRuntime()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

void
UpmemRuntime::pushXfer(XferKind kind,
                       const std::vector<unsigned> &dpuIds,
                       const std::vector<Addr> &hostAddrs,
                       std::uint64_t bytesPerDpu, Addr heapOffset,
                       std::function<void()> onComplete)
{
    const bool toPim = kind == XferKind::ToDpu;
    const device::PimGeometry &geom = pim_.geometry();

    // Health masking: probe for freshly failed DPUs (and correlated
    // rank/channel failures), then excise every core on an
    // out-of-service bank (transfers cover whole banks).
    std::vector<unsigned> ids = dpuIds;
    std::vector<Addr> addrs = hostAddrs;
    if (res_ && res_->policy().maskFailedDpus) {
        res_->probeKillSites(ids, eq_.now());
        if (res_->maskedBanks() > 0) {
            std::vector<unsigned> keptIds;
            std::vector<Addr> keptAddrs;
            keptIds.reserve(ids.size());
            keptAddrs.reserve(addrs.size());
            for (std::size_t i = 0;
                 i < ids.size() && i < addrs.size(); ++i) {
                if (res_->dpuHealthy(ids[i])) {
                    keptIds.push_back(ids[i]);
                    keptAddrs.push_back(addrs[i]);
                }
            }
            if (keptIds.empty()) {
                // Nothing healthy left to address: degrade to a no-op
                // rather than wedge the caller.
                res_->noteTransferFailed();
                PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                                 "dpu_push_xfer: every listed DPU is "
                                 "health-masked, skipping");
                if (onComplete) {
                    if (fastForward_)
                        onComplete();
                    else
                        eq_.scheduleAfter(0, std::move(onComplete));
                }
                return;
            }
            if (keptIds.size() != ids.size()) {
                res_->noteTransferDegraded();
                ids = std::move(keptIds);
                addrs = std::move(keptAddrs);
            }
        }
    }

    const device::BankGrouping grouping = device::groupByBank(
        geom, ids, addrs, bytesPerDpu, heapOffset);

    const bool useGuard = res_ && res_->policy().detectionEnabled();
    resilience::XferGuard guard;
    if (useGuard)
        guard = res_->makeGuard();
    device::functionalTransfer(mem_.store(), pim_, toPim, grouping,
                               bytesPerDpu, heapOffset,
                               useGuard ? &guard : nullptr);
    if (useGuard)
        res_->absorbGuard(guard);

    if (fastForward_) {
        // Functional plane only: same counters the timing path bumps
        // (copy_threads samples what the pool would have spawned), no
        // CPU job, completion fires before control returns.
        stats_.counter("push_xfers") += 1;
        stats_.counter("bytes") += ids.size() * bytesPerDpu;
        stats_.average("copy_threads").sample(
            static_cast<double>(grouping.banks.size()));
        nextXferId_++;
        if (onComplete)
            onComplete();
        return;
    }

    // Timing plane: one software copy thread per bank, exactly like the
    // runtime library's worker pool.
    const Addr pimBase = mem_.systemMap().pimBase();
    const std::uint64_t wordStart = heapOffset / device::kWordBytes;

    std::vector<std::shared_ptr<cpu::SoftThread>> threads;
    threads.reserve(grouping.banks.size());
    for (const auto &bank : grouping.banks) {
        cpu::CopyWork work;
        work.kind = toPim ? cpu::CopyWork::Kind::DramToPim
                          : cpu::CopyWork::Kind::PimToDram;
        work.dpuHostBase = bank.hostBase;
        work.wireBase = pimBase + geom.bankRegionOffset(bank.bankIdx) +
                        wordStart * device::kBlockBytes;
        work.linesPerDpu = bytesPerDpu / 64;
        threads.push_back(std::make_shared<cpu::CopyThread>(work));
    }
    PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                     "dpu_push_xfer: " << grouping.banks.size()
                                       << " banks x " << bytesPerDpu
                                       << " B/DPU ("
                                       << threads.size()
                                       << " copy threads)");
    stats_.counter("push_xfers") += 1;
    stats_.counter("bytes") += ids.size() * bytesPerDpu;
    stats_.average("copy_threads").sample(
        static_cast<double>(threads.size()));
    const Tick startedAt = eq_.now();
    const std::uint64_t xferId = nextXferId_++;
    // Software-path transfers get lifecycle records too, so --attrib-json
    // compares the baseline copy-thread path against the DCE per label.
    auto &rec = telemetry::attribution::Recorder::global();
    const std::uint64_t aid =
        rec.enabled()
            ? rec.open(telemetry::attribution::Kind::Transfer,
                       startedAt,
                       telemetry::attribution::Stage::DramService,
                       grouping.banks.empty()
                           ? 0
                           : grouping.banks.front().bankIdx,
                       ids.size() * bytesPerDpu)
            : 0;
    cpu_.runJob(std::move(threads),
                [this, startedAt, xferId, aid,
                 onComplete = std::move(onComplete)] {
                    const Tick now = eq_.now();
                    stats_.average("xfer_us").sample(
                        static_cast<double>(now - startedAt) / 1e6);
                    auto &tl = telemetry::Timeline::global();
                    if (tl.enabled())
                        tl.span(timelineTrack_,
                                "push_xfer#" + std::to_string(xferId),
                                startedAt, now);
                    telemetry::attribution::Recorder::global().close(
                        aid, now, false);
                    if (onComplete)
                        onComplete();
                });
}

DpuSet::DpuSet(UpmemRuntime &runtime, unsigned count)
    : runtime_(runtime), dpuIds_(count), hostAddrs_(count, kAddrInvalid)
{
    if (count == 0 || count > runtime.pim().numDpus())
        fatal("DpuSet: bad DPU count ", count);
    std::iota(dpuIds_.begin(), dpuIds_.end(), 0u);
}

void
DpuSet::prepareXfer(unsigned index, Addr hostAddr)
{
    PIMMMU_ASSERT(index < dpuIds_.size(), "prepareXfer out of range");
    hostAddrs_[index] = hostAddr;
}

Tick
UpmemRuntime::launch(
    const std::vector<unsigned> &dpuIds,
    const std::function<void(device::Dpu &, unsigned)> &kernel,
    const device::KernelModel &model, std::uint64_t bytesPerDpu)
{
    if (res_ && res_->policy().maskFailedDpus &&
        res_->maskedBanks() > 0) {
        std::vector<unsigned> healthy;
        healthy.reserve(dpuIds.size());
        for (const unsigned dpu : dpuIds) {
            if (res_->dpuHealthy(dpu))
                healthy.push_back(dpu);
        }
        if (healthy.size() != dpuIds.size()) {
            res_->noteLaunchDegraded();
            PIMMMU_TRACE_LOG(trace::Category::Pim, eq_.now(),
                             "dpu_launch degraded: "
                                 << dpuIds.size() - healthy.size()
                                 << " of " << dpuIds.size()
                                 << " DPUs health-masked");
            if (healthy.empty())
                return 0;
            return pim_.launch(healthy, kernel, model, bytesPerDpu);
        }
    }
    return pim_.launch(dpuIds, kernel, model, bytesPerDpu);
}

LaunchOutcome
UpmemRuntime::launchChecked(
    const std::vector<unsigned> &dpuIds,
    const std::function<void(device::Dpu &, unsigned)> &kernel,
    const device::KernelModel &model, std::uint64_t bytesPerDpu,
    const LaunchCheck &check)
{
    LaunchOutcome out;
    auto &rec = telemetry::attribution::Recorder::global();
    const std::uint64_t aid =
        rec.enabled() && !dpuIds.empty()
            ? rec.open(telemetry::attribution::Kind::Kernel, eq_.now(),
                       telemetry::attribution::Stage::Execute,
                       dpuIds.front() / 8,
                       dpuIds.size() * bytesPerDpu)
            : 0;
    if (!res_) {
        out.execPs = pim_.launch(dpuIds, kernel, model, bytesPerDpu);
        out.ranOn = dpuIds;
        rec.addModeled(aid, telemetry::attribution::Stage::Execute,
                       out.execPs);
        rec.close(aid, eq_.now(), false);
        return out;
    }

    const resilience::Policy &pol = res_->policy();
    auto healthyOf = [&](const std::vector<unsigned> &ids) {
        if (!pol.maskFailedDpus)
            return ids;
        std::vector<unsigned> healthy;
        healthy.reserve(ids.size());
        for (const unsigned dpu : ids) {
            if (res_->dpuHealthy(dpu))
                healthy.push_back(dpu);
        }
        return healthy;
    };

    std::vector<unsigned> ids = healthyOf(dpuIds);
    if (ids.size() != dpuIds.size())
        res_->noteLaunchDegraded();
    if (ids.empty()) {
        out.status = resilience::Status::failure(
            resilience::ErrorCode::NoHealthyTargets,
            "every listed DPU is health-masked");
        rec.close(aid, eq_.now(), true);
        return out;
    }

    const unsigned attempts = pol.retry ? pol.maxRetries + 1 : 1;
    const bool verify =
        check.resultBytes > 0 && pol.detectionEnabled();
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        const Tick attemptPs =
            pim_.launch(ids, kernel, model, bytesPerDpu);
        out.execPs += attemptPs;
        rec.addModeled(aid, telemetry::attribution::Stage::Execute,
                       attemptPs);

        // Cores can die mid-kernel: probe the kill sites after the
        // run, then drop every core whose bank just left service.
        if (pol.maskFailedDpus)
            res_->probeKillSites(ids, eq_.now());

        // Verify each survivor's result window across the link; a
        // corrupt readback that survives the word-retry budget masks
        // the core like a death.
        bool anyCorrupt = false;
        if (verify) {
            for (const unsigned dpu : ids) {
                if (pol.maskFailedDpus && !res_->dpuHealthy(dpu))
                    continue;
                resilience::XferGuard guard = res_->makeGuard();
                device::verifyMramReadback(pim_, dpu,
                                           check.resultOffset,
                                           check.resultBytes, guard);
                res_->absorbGuard(guard);
                if (!guard.dataOk()) {
                    anyCorrupt = true;
                    res_->noteLaunchCrcFailure();
                    if (pol.maskFailedDpus)
                        res_->markDpuFailed(dpu, eq_.now());
                }
            }
        }

        std::vector<unsigned> survivors = healthyOf(ids);
        if (survivors.size() == ids.size() && !anyCorrupt) {
            out.ranOn = std::move(ids);
            rec.close(aid, eq_.now(), false);
            return out;
        }
        if (survivors.empty()) {
            res_->noteTransferFailed();
            out.status = resilience::Status::failure(
                resilience::ErrorCode::NoHealthyTargets,
                "every DPU died or corrupted during launch");
            rec.close(aid, eq_.now(), true);
            return out;
        }
        if (attempt + 1 >= attempts)
            break;
        // Relaunch the kernel on the healthy survivors.
        res_->noteLaunchDegraded();
        res_->noteLaunchRelaunch();
        rec.noteRetry(aid);
        PIMMMU_TRACE_LOG(trace::Category::Resil, eq_.now(),
                         "kernel relaunch: "
                             << ids.size() - survivors.size()
                             << " DPUs lost, retrying on "
                             << survivors.size());
        PIMMMU_TRACE_LOG(trace::Category::Pim, eq_.now(),
                         "dpu_launch relaunch: "
                             << ids.size() - survivors.size() << " of "
                             << ids.size()
                             << " DPUs lost, relaunching on "
                             << survivors.size());
        ids = std::move(survivors);
    }
    res_->noteTransferFailed();
    out.status = resilience::Status::failure(
        resilience::ErrorCode::DataCorrupt,
        "kernel results still corrupt after the relaunch budget");
    rec.close(aid, eq_.now(), true);
    return out;
}

Tick
DpuSet::launch(
    const std::function<void(device::Dpu &, unsigned)> &kernel,
    const device::KernelModel &model, std::uint64_t bytesPerDpu)
{
    return runtime_.launch(dpuIds_, kernel, model, bytesPerDpu);
}

LaunchOutcome
DpuSet::launchChecked(
    const std::function<void(device::Dpu &, unsigned)> &kernel,
    const device::KernelModel &model, std::uint64_t bytesPerDpu,
    const LaunchCheck &check)
{
    return runtime_.launchChecked(dpuIds_, kernel, model, bytesPerDpu,
                                  check);
}

void
DpuSet::pushXfer(XferKind kind, Addr heapOffset,
                 std::uint64_t bytesPerDpu,
                 std::function<void()> onComplete)
{
    for (Addr a : hostAddrs_) {
        if (a == kAddrInvalid)
            fatal("pushXfer before every DPU has a prepared buffer");
    }
    runtime_.pushXfer(kind, dpuIds_, hostAddrs_, bytesPerDpu,
                      heapOffset, std::move(onComplete));
}

void
UpmemRuntime::saveState(serialize::ByteSink &out) const
{
    out.u64(nextXferId_);
    stats::saveGroup(out, stats_);
}

bool
UpmemRuntime::restoreState(serialize::ByteSource &in)
{
    nextXferId_ = in.u64();
    return stats::restoreGroup(in, stats_);
}

} // namespace upmem
} // namespace pimmmu

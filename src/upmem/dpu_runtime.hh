/**
 * @file
 * Baseline UPMEM-like runtime: the software data-transfer path the
 * paper characterizes (sections II-C and III). dpu_push_xfer spawns
 * one AVX-512 copy thread per target bank; the OS scheduler time-slices
 * them across the CPU cores, which is exactly the coarse-grained
 * software scheduling whose throughput the paper root-causes.
 */

#ifndef PIMMMU_UPMEM_DPU_RUNTIME_HH
#define PIMMMU_UPMEM_DPU_RUNTIME_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/serialize.hh"
#include "cpu/copy_thread.hh"
#include "cpu/cpu.hh"
#include "dram/memory_system.hh"
#include "pim/pim_device.hh"
#include "resilience/status.hh"

namespace pimmmu {

namespace resilience {
class Manager;
}

namespace upmem {

/** Transfer direction, mirroring DPU_XFER_TO_DPU / DPU_XFER_FROM_DPU. */
enum class XferKind
{
    ToDpu,
    FromDpu
};

/** What a checked launch verifies after the kernel runs: a per-DPU
 *  MRAM result window read back across the modeled link under
 *  ECC/CRC. Zero bytes = no readback verification. */
struct LaunchCheck
{
    Addr resultOffset = 0;
    std::uint64_t resultBytes = 0;
};

/** Outcome of a checked kernel launch. */
struct LaunchOutcome
{
    Tick execPs = 0; //!< summed over the initial launch + relaunches
    resilience::Status status;
    unsigned relaunches = 0;
    /** DPUs the final (successful) launch actually ran on. */
    std::vector<unsigned> ranOn;

    bool ok() const { return status.ok(); }
};

/**
 * The runtime. One instance per simulated system.
 */
class UpmemRuntime
{
  public:
    UpmemRuntime(EventQueue &eq, cpu::Cpu &cpu,
                 dram::MemorySystem &mem, device::PimDevice &pim,
                 resilience::Manager *res = nullptr);

    /**
     * dpu_push_xfer: move @p bytesPerDpu bytes between each listed
     * DPU's host array and its MRAM heap at @p heapOffset.
     *
     * Functional semantics apply immediately; the timing plane spawns
     * one CopyThread per bank on the CPU and fires @p onComplete when
     * the last write retires.
     */
    void pushXfer(XferKind kind, const std::vector<unsigned> &dpuIds,
                  const std::vector<Addr> &hostAddrs,
                  std::uint64_t bytesPerDpu, Addr heapOffset,
                  std::function<void()> onComplete);

    ~UpmemRuntime();

    /**
     * dpu_launch with health masking: failed DPUs are excluded from
     * the kernel launch (whole set skipped if nothing healthy remains)
     * so a dead core degrades throughput instead of wedging the app.
     */
    Tick launch(const std::vector<unsigned> &dpuIds,
                const std::function<void(device::Dpu &, unsigned)>
                    &kernel,
                const device::KernelModel &model,
                std::uint64_t bytesPerDpu);

    /**
     * Verified dpu_launch: filters the health mask (rejecting with
     * NoHealthyTargets when nothing is left), probes the kill fault
     * sites after the kernel runs to catch cores dying mid-kernel, and
     * — when @p check names a result window — reads each survivor's
     * MRAM results back across the modeled link under ECC/CRC. A
     * failed verification masks the offending core; dead or corrupt
     * cores trigger a bounded relaunch on the healthy survivors. With
     * no resilience manager this degenerates to a plain launch.
     */
    LaunchOutcome launchChecked(
        const std::vector<unsigned> &dpuIds,
        const std::function<void(device::Dpu &, unsigned)> &kernel,
        const device::KernelModel &model, std::uint64_t bytesPerDpu,
        const LaunchCheck &check = LaunchCheck{});

    device::PimDevice &pim() { return pim_; }
    cpu::Cpu &cpu() { return cpu_; }
    stats::Group &stats() { return stats_; }

    /**
     * Fast-forward plane switch (see sim::Plane). When on, pushXfer
     * still applies masking, the guarded functional copy and the
     * functional counters, but completes synchronously instead of
     * spawning per-bank CopyThreads on the CPU.
     */
    void setFastForward(bool on) { fastForward_ = on; }
    bool fastForward() const { return fastForward_; }

    /** Checkpoint the transfer-id counter and stats. */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    EventQueue &eq_;
    cpu::Cpu &cpu_;
    dram::MemorySystem &mem_;
    device::PimDevice &pim_;
    resilience::Manager *res_;
    std::uint64_t nextXferId_ = 0;
    unsigned timelineTrack_ = 0;
    bool fastForward_ = false;
    stats::Group stats_;
};

/**
 * Convenience wrapper mirroring the dpu_set_t programming style of
 * paper Fig. 10(a): allocate a set, prepare per-DPU host pointers,
 * push the transfer.
 */
class DpuSet
{
  public:
    /** Select DPUs [0, count). */
    DpuSet(UpmemRuntime &runtime, unsigned count);

    unsigned size() const
    {
        return static_cast<unsigned>(dpuIds_.size());
    }

    /** dpu_prepare_xfer: bind a host array to the i-th DPU. */
    void prepareXfer(unsigned index, Addr hostAddr);

    /** dpu_push_xfer over the whole set. */
    void pushXfer(XferKind kind, Addr heapOffset,
                  std::uint64_t bytesPerDpu,
                  std::function<void()> onComplete);

    /**
     * dpu_launch: run a functional SPMD kernel on every DPU of the
     * set; returns the modeled execution time.
     */
    Tick launch(const std::function<void(device::Dpu &, unsigned)>
                    &kernel,
                const device::KernelModel &model,
                std::uint64_t bytesPerDpu);

    /** Checked dpu_launch over the whole set (see UpmemRuntime). */
    LaunchOutcome launchChecked(
        const std::function<void(device::Dpu &, unsigned)> &kernel,
        const device::KernelModel &model, std::uint64_t bytesPerDpu,
        const LaunchCheck &check = LaunchCheck{});

    const std::vector<unsigned> &dpuIds() const { return dpuIds_; }

  private:
    UpmemRuntime &runtime_;
    std::vector<unsigned> dpuIds_;
    std::vector<Addr> hostAddrs_;
};

} // namespace upmem
} // namespace pimmmu

#endif // PIMMMU_UPMEM_DPU_RUNTIME_HH

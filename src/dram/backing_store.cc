#include "dram/backing_store.hh"

#include <algorithm>
#include <vector>

namespace pimmmu {
namespace dram {

std::uint64_t
BackingStore::fingerprint(std::uint64_t seed) const
{
    std::vector<Addr> ids;
    ids.reserve(pages_.size());
    for (const auto &entry : pages_)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());

    std::uint64_t h = seed;
    auto mix = [&h](const void *data, std::size_t bytes) {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < bytes; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    for (const Addr id : ids) {
        const std::uint8_t *page = pages_.find(id)->second.get();
        bool allZero = true;
        for (std::size_t i = 0; i < kPageBytes && allZero; ++i)
            allZero = page[i] == 0;
        if (allZero)
            continue;
        mix(&id, sizeof(id));
        mix(page, kPageBytes);
    }
    return h;
}

void
BackingStore::forEachNonZeroPage(
    const std::function<void(Addr, const std::uint8_t *)> &fn) const
{
    std::vector<Addr> ids;
    ids.reserve(pages_.size());
    for (const auto &entry : pages_)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());
    for (const Addr id : ids) {
        const std::uint8_t *page = pages_.find(id)->second.get();
        bool allZero = true;
        for (std::size_t i = 0; i < kPageBytes && allZero; ++i)
            allZero = page[i] == 0;
        if (!allZero)
            fn(id, page);
    }
}

void
BackingStore::restorePage(Addr pageId, const std::uint8_t *data)
{
    std::memcpy(pageFor(pageId * kPageBytes, true), data, kPageBytes);
}

std::uint8_t *
BackingStore::pageFor(Addr addr, bool allocate) const
{
    const Addr pageId = addr / kPageBytes;
    auto it = pages_.find(pageId);
    if (it != pages_.end())
        return it->second.get();
    if (!allocate)
        return nullptr;
    auto page = std::make_unique<std::uint8_t[]>(kPageBytes);
    std::memset(page.get(), 0, kPageBytes);
    auto *raw = page.get();
    pages_.emplace(pageId, std::move(page));
    return raw;
}

void
BackingStore::write(Addr addr, const void *src, std::size_t bytes)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (bytes > 0) {
        const std::size_t offset = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - offset);
        std::memcpy(pageFor(addr, true) + offset, in, chunk);
        addr += chunk;
        in += chunk;
        bytes -= chunk;
    }
}

void
BackingStore::read(Addr addr, void *dst, std::size_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (bytes > 0) {
        const std::size_t offset = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - offset);
        const std::uint8_t *page = pageFor(addr, false);
        if (page) {
            std::memcpy(out, page + offset, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        addr += chunk;
        out += chunk;
        bytes -= chunk;
    }
}

} // namespace dram
} // namespace pimmmu

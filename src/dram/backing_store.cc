#include "dram/backing_store.hh"

#include <algorithm>

namespace pimmmu {
namespace dram {

std::uint8_t *
BackingStore::pageFor(Addr addr, bool allocate) const
{
    const Addr pageId = addr / kPageBytes;
    auto it = pages_.find(pageId);
    if (it != pages_.end())
        return it->second.get();
    if (!allocate)
        return nullptr;
    auto page = std::make_unique<std::uint8_t[]>(kPageBytes);
    std::memset(page.get(), 0, kPageBytes);
    auto *raw = page.get();
    pages_.emplace(pageId, std::move(page));
    return raw;
}

void
BackingStore::write(Addr addr, const void *src, std::size_t bytes)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (bytes > 0) {
        const std::size_t offset = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - offset);
        std::memcpy(pageFor(addr, true) + offset, in, chunk);
        addr += chunk;
        in += chunk;
        bytes -= chunk;
    }
}

void
BackingStore::read(Addr addr, void *dst, std::size_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (bytes > 0) {
        const std::size_t offset = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - offset);
        const std::uint8_t *page = pageFor(addr, false);
        if (page) {
            std::memcpy(out, page + offset, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        addr += chunk;
        out += chunk;
        bytes -= chunk;
    }
}

} // namespace dram
} // namespace pimmmu

#include "dram/protocol_checker.hh"

#include <algorithm>
#include <sstream>

namespace pimmmu {
namespace dram {

ProtocolChecker::ProtocolChecker(const TimingParams &timing,
                                 const mapping::DramGeometry &geometry)
    : timing_(timing), geom_(geometry),
      banks_(geometry.ranksPerChannel * geometry.banksPerRank()),
      ranks_(geometry.ranksPerChannel),
      bgLastAct_(geometry.ranksPerChannel * geometry.bankGroups,
                 kNever),
      bgLastCol_(geometry.ranksPerChannel * geometry.bankGroups,
                 kNever),
      bgLastWrEnd_(geometry.ranksPerChannel * geometry.bankGroups,
                   kNever)
{
}

ProtocolChecker::BankState &
ProtocolChecker::bank(const mapping::DramCoord &c)
{
    return banks_[c.bankIndex(geom_)];
}

ProtocolChecker::RankState &
ProtocolChecker::rank(const mapping::DramCoord &c)
{
    return ranks_[c.ra];
}

void
ProtocolChecker::fail(const CommandRecord &record, const std::string &why)
{
    std::ostringstream os;
    os << "cycle " << record.cycle << " " << commandName(record.cmd)
       << " " << record.coord.str() << ": " << why;
    if (violations_.size() < 100)
        violations_.push_back(os.str());
}

void
ProtocolChecker::requireGap(const CommandRecord &record, Cycle since,
                            unsigned gap, const char *rule)
{
    if (since == kNever)
        return;
    if (record.cycle < since + gap) {
        std::ostringstream os;
        os << rule << " violated: " << (record.cycle - since)
           << " < " << gap;
        fail(record, os.str());
    }
}

void
ProtocolChecker::observe(const CommandRecord &record)
{
    ++commands_;
    const mapping::DramCoord &c = record.coord;
    const Cycle now = record.cycle;

    if (lastCommandCycle_ != kNever && now < lastCommandCycle_)
        fail(record, "commands out of time order");
    if (lastCommandCycle_ != kNever && now == lastCommandCycle_)
        fail(record, "two commands in one cycle on the command bus");
    lastCommandCycle_ = now;

    RankState &rs = rank(c);

    // Nothing may target a rank mid-refresh.
    if (rs.lastRefresh != kNever && now < rs.lastRefresh + timing_.tRFC)
        fail(record, "command during tRFC");

    switch (record.cmd) {
      case DramCommand::Act: {
        BankState &bs = bank(c);
        if (bs.open)
            fail(record, "ACT to an open bank");
        requireGap(record, bs.lastAct, timing_.tRC, "tRC");
        requireGap(record, bs.lastPre, timing_.tRP, "tRP");
        const std::size_t bg = c.ra * geom_.bankGroups + c.bg;
        requireGap(record, bgLastAct_[bg], timing_.tRRD_L, "tRRD_L");
        // tRRD_S against the most recent ACT anywhere in the rank.
        if (!rs.actHistory.empty()) {
            requireGap(record, rs.actHistory.back(), timing_.tRRD_S,
                       "tRRD_S");
        }
        // tFAW: no more than 4 ACTs per rank in any tFAW window.
        rs.actHistory.push_back(now);
        if (rs.actHistory.size() > 4) {
            const Cycle fourAgo =
                rs.actHistory[rs.actHistory.size() - 5];
            if (now < fourAgo + timing_.tFAW)
                fail(record, "tFAW violated");
            if (rs.actHistory.size() > 64) {
                rs.actHistory.erase(rs.actHistory.begin(),
                                    rs.actHistory.end() - 8);
            }
        }
        bgLastAct_[bg] = now;
        bs.open = true;
        bs.row = c.ro;
        bs.lastAct = now;
        break;
      }
      case DramCommand::Pre: {
        BankState &bs = bank(c);
        if (!bs.open)
            fail(record, "PRE to a closed bank");
        requireGap(record, bs.lastAct, timing_.tRAS, "tRAS");
        requireGap(record, bs.lastRd, timing_.tRTP, "tRTP");
        if (bs.lastWr != kNever) {
            requireGap(record, bs.lastWr,
                       timing_.CWL + timing_.tBL + timing_.tWR,
                       "write recovery (tWR)");
        }
        bs.open = false;
        bs.lastPre = now;
        break;
      }
      case DramCommand::Rd:
      case DramCommand::Wr: {
        BankState &bs = bank(c);
        const bool isWrite = record.cmd == DramCommand::Wr;
        if (!bs.open)
            fail(record, "column command to a closed bank");
        else if (bs.row != c.ro)
            fail(record, "column command to the wrong open row");
        requireGap(record, bs.lastAct, timing_.tRCD, "tRCD");

        const std::size_t bg = c.ra * geom_.bankGroups + c.bg;
        requireGap(record, bgLastCol_[bg], timing_.tCCD_L, "tCCD_L");
        const Cycle lastColAny =
            std::max(rs.lastColRd == kNever ? 0 : rs.lastColRd,
                     rs.lastColWr == kNever ? 0 : rs.lastColWr);
        if (rs.lastColRd != kNever || rs.lastColWr != kNever) {
            requireGap(record, lastColAny, timing_.tCCD_S, "tCCD_S");
        }
        if (!isWrite && bgLastWrEnd_[bg] != kNever) {
            // Write-to-read turnaround (same bank group).
            requireGap(record, bgLastWrEnd_[bg], timing_.tWTR_L,
                       "tWTR_L");
        }

        // Data bus occupancy.
        const Cycle lat = isWrite ? timing_.CWL : timing_.CL;
        const Cycle dataStart = now + lat;
        if (dataStart < dataBusFreeAt_)
            fail(record, "data bus collision");
        dataBusFreeAt_ = dataStart + timing_.tBL;

        if (isWrite) {
            bs.lastWr = now;
            rs.lastColWr = now;
            bgLastWrEnd_[bg] = now + timing_.CWL + timing_.tBL;
        } else {
            bs.lastRd = now;
            rs.lastColRd = now;
        }
        bgLastCol_[bg] = now;
        break;
      }
      case DramCommand::Ref: {
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            const BankState &bs =
                banks_[c.ra * geom_.banksPerRank() + b];
            if (bs.open)
                fail(record, "REF with a bank open");
            if (bs.lastPre != kNever &&
                now < bs.lastPre + timing_.tRP) {
                fail(record, "REF before tRP after PRE");
            }
        }
        rs.lastRefresh = now;
        break;
      }
      default:
        fail(record, "unknown command");
    }
}

} // namespace dram
} // namespace pimmmu

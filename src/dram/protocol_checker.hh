/**
 * @file
 * An independent DDR4 protocol checker. Attach it to a controller's
 * command stream (MemoryController::onCommand) and it validates every
 * command against bank state and JEDEC timing constraints, without
 * sharing any logic with the scheduler it checks. Used by the property
 * tests; also handy when modifying the controller.
 */

#ifndef PIMMMU_DRAM_PROTOCOL_CHECKER_HH
#define PIMMMU_DRAM_PROTOCOL_CHECKER_HH

#include <string>
#include <vector>

#include "dram/command_trace.hh"
#include "dram/timing.hh"
#include "mapping/geometry.hh"

namespace pimmmu {
namespace dram {

/** Validates one channel's command stream. */
class ProtocolChecker
{
  public:
    ProtocolChecker(const TimingParams &timing,
                    const mapping::DramGeometry &geometry);

    /** Feed the next issued command (must be non-decreasing in time). */
    void observe(const CommandRecord &record);

    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    std::uint64_t commandsChecked() const { return commands_; }

    bool clean() const { return violations_.empty(); }

  private:
    struct BankState
    {
        bool open = false;
        unsigned row = 0;
        Cycle lastAct = kNever;
        Cycle lastPre = kNever;
        Cycle lastRd = kNever;
        Cycle lastWr = kNever;
    };

    struct RankState
    {
        std::vector<Cycle> actHistory; //!< all ACT times (pruned)
        Cycle lastRefresh = kNever;
        Cycle lastColRd = kNever;
        Cycle lastColWr = kNever;
    };

    static constexpr Cycle kNever = ~Cycle{0};

    void fail(const CommandRecord &record, const std::string &why);
    void requireGap(const CommandRecord &record, Cycle since,
                    unsigned gap, const char *rule);

    BankState &bank(const mapping::DramCoord &c);
    RankState &rank(const mapping::DramCoord &c);

    TimingParams timing_;
    mapping::DramGeometry geom_;
    std::vector<BankState> banks_;          //!< per (rank, bank)
    std::vector<RankState> ranks_;
    std::vector<Cycle> bgLastAct_;          //!< per (rank, bank group)
    std::vector<Cycle> bgLastCol_;
    std::vector<Cycle> bgLastWrEnd_;        //!< for tWTR_L
    Cycle lastCommandCycle_ = kNever;
    Cycle dataBusFreeAt_ = 0;
    std::uint64_t commands_ = 0;
    std::vector<std::string> violations_;
};

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_PROTOCOL_CHECKER_HH

/**
 * @file
 * A per-channel DDR4 memory controller with command-level timing and
 * FR-FCFS scheduling (the baseline configuration in paper Table I).
 *
 * The controller models the DDR4 command protocol: ACT/PRE/RD/WR/REF
 * with tRCD/tRP/tRAS/tRC, bank-group aware tCCD/tRRD, tFAW, read/write
 * turnaround (tWTR/tRTW), shared data-bus occupancy with rank-to-rank
 * switch penalties, and periodic all-bank refresh. It accepts line-sized
 * (64 B) requests and invokes each request's completion callback when
 * its data burst finishes on the bus.
 */

#ifndef PIMMMU_DRAM_CONTROLLER_HH
#define PIMMMU_DRAM_CONTROLLER_HH

#include <array>
#include <deque>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dram/command_trace.hh"
#include "dram/request.hh"
#include "dram/timing.hh"
#include "mapping/geometry.hh"

namespace pimmmu {
namespace dram {

/** Request scheduling policy within the read/write queues. */
enum class SchedPolicy
{
    FrFcfs, //!< first-ready, first-come-first-served (row hits first)
    Fcfs    //!< strict in-order (ablation)
};

/** Tunables for one controller instance. */
struct ControllerConfig
{
    unsigned readQueueDepth = 64;
    unsigned writeQueueDepth = 64;
    unsigned writeHighWatermark = 48;
    unsigned writeLowWatermark = 16;
    SchedPolicy policy = SchedPolicy::FrFcfs;
    bool refreshEnabled = true;
};

/**
 * One memory channel: command scheduling across its ranks/banks plus the
 * shared data bus.
 */
class MemoryController
{
  public:
    /**
     * @param name stats/timeline track name; empty derives the legacy
     *             "mc.ch<N>" (MemorySystem passes "dram.ch<N>" /
     *             "pim.ch<N>" so the two subsystems stay apart in
     *             telemetry output)
     */
    MemoryController(EventQueue &eq, const TimingParams &timing,
                     const mapping::DramGeometry &geometry,
                     unsigned channelId,
                     ControllerConfig config = ControllerConfig{},
                     std::string name = {});

    ~MemoryController();

    /** True if the matching queue has a free slot. */
    bool canAccept(bool write) const;

    /**
     * Hand a request to the controller. The coordinate must already be
     * resolved and must target this channel.
     * @return false (request untouched) when the queue is full.
     */
    bool enqueue(MemRequest req);

    /** Requests currently queued or in flight on this channel. */
    std::size_t pending() const;

    /**
     * Register a callback fired whenever queue space frees up, so
     * backpressured sources can retry.
     */
    void
    onDrain(std::function<void()> listener)
    {
        drainListeners_.push_back(std::move(listener));
    }

    unsigned channelId() const { return channelId_; }
    const TimingParams &timing() const { return timing_; }
    const mapping::DramGeometry &geometry() const { return geom_; }

    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    /** Dump queues and bank state (debugging aid). */
    void dumpState(std::ostream &os) const;

    /** Observe every issued DRAM command (protocol checker hook). */
    void
    onCommand(CommandListener listener)
    {
        commandListener_ = std::move(listener);
    }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t bytesMoved() const { return bytesRead_ + bytesWritten_; }

    /** Data-bus busy time, for bandwidth-utilization reports. */
    Tick busBusyPs() const { return busBusyPs_; }

  private:
    struct BankState
    {
        bool open = false;
        unsigned row = 0;
        Cycle actReady = 0; //!< earliest ACT issue cycle
        Cycle preReady = 0; //!< earliest PRE issue cycle
        Cycle colReady = 0; //!< earliest RD/WR issue cycle (tRCD)
    };

    struct BankGroupState
    {
        Cycle actReady = 0; //!< tRRD_L
        Cycle colReady = 0; //!< tCCD_L
        Cycle rdReady = 0;  //!< tWTR_L
    };

    struct RankState
    {
        Cycle actReady = 0; //!< tRRD_S
        Cycle colReady = 0; //!< tCCD_S
        Cycle rdReady = 0;  //!< tWTR_S
        Cycle wrReady = 0;  //!< read-to-write turnaround
        std::array<Cycle, 4> fawRing{};
        unsigned fawIdx = 0;
        Cycle refreshDue = 0;
        Cycle refreshDone = 0;
        bool refreshPending = false;
    };

    bool tick();
    bool tryIssueColumn(const MemRequest &req, Cycle now);
    bool tryIssueActOrPre(const MemRequest &req, Cycle now);
    bool serviceRefresh(Cycle now);
    /** Refresh openRowHasHit_ from the current queue contents. */
    void updateRowHitMap();
    void issueRead(std::deque<MemRequest>::iterator it, Cycle now);
    void issueWrite(std::deque<MemRequest>::iterator it, Cycle now);
    void finishColumn(MemRequest req, Cycle issue, bool write);
    void notifyDrain();

    Cycle nowCycle() const { return eq_.now() / timing_.tCKps; }

    BankState &bank(const mapping::DramCoord &c);
    BankGroupState &bankGroup(const mapping::DramCoord &c);
    RankState &rank(const mapping::DramCoord &c);
    unsigned bankIndexOf(const mapping::DramCoord &c) const;

    EventQueue &eq_;
    TimingParams timing_;
    mapping::DramGeometry geom_;
    unsigned channelId_;
    ControllerConfig config_;
    Ticker ticker_;

    std::deque<MemRequest> readQueue_;
    std::deque<MemRequest> writeQueue_;
    bool writeMode_ = false;
    bool wasIdle_ = true;

    std::vector<BankState> banks_;
    std::vector<BankGroupState> bankGroups_;
    std::vector<RankState> ranks_;
    /** Per-bank: a queued request targets the currently open row. */
    std::vector<bool> openRowHasHit_;

    Cycle dataBusFree_ = 0;
    int lastDataRank_ = -1;

    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    Tick busBusyPs_ = 0;
    std::size_t inflight_ = 0;

    std::vector<std::function<void()>> drainListeners_;
    CommandListener commandListener_;
    stats::Group stats_;
    unsigned timelineTrack_ = 0;
};

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_CONTROLLER_HH

/**
 * @file
 * A per-channel DDR4 memory controller with command-level timing and
 * FR-FCFS scheduling (the baseline configuration in paper Table I).
 *
 * The controller models the DDR4 command protocol: ACT/PRE/RD/WR/REF
 * with tRCD/tRP/tRAS/tRC, bank-group aware tCCD/tRRD, tFAW, read/write
 * turnaround (tWTR/tRTW), shared data-bus occupancy with rank-to-rank
 * switch penalties, and periodic all-bank refresh. It accepts line-sized
 * (64 B) requests and invokes each request's completion callback when
 * its data burst finishes on the bus.
 */

#ifndef PIMMMU_DRAM_CONTROLLER_HH
#define PIMMMU_DRAM_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "dram/command_trace.hh"
#include "dram/request.hh"
#include "dram/timing.hh"
#include "mapping/geometry.hh"

namespace pimmmu {
namespace dram {

/** Request scheduling policy within the read/write queues. */
enum class SchedPolicy
{
    FrFcfs, //!< first-ready, first-come-first-served (row hits first)
    Fcfs    //!< strict in-order (ablation)
};

/** Tunables for one controller instance. */
struct ControllerConfig
{
    unsigned readQueueDepth = 64;
    unsigned writeQueueDepth = 64;
    unsigned writeHighWatermark = 48;
    unsigned writeLowWatermark = 16;
    /** Force write-drain mode once the oldest queued write has waited
     *  this many DRAM cycles. Without aging, a continuous read stream
     *  (the watermark never reached, the read queue never empty)
     *  starves a small write burst forever. */
    unsigned writeStarvationCycles = 8192;
    SchedPolicy policy = SchedPolicy::FrFcfs;
    bool refreshEnabled = true;
};

/**
 * One memory channel: command scheduling across its ranks/banks plus the
 * shared data bus.
 */
class MemoryController
{
  public:
    /**
     * @param name stats/timeline track name; empty derives the legacy
     *             "mc.ch<N>" (MemorySystem passes "dram.ch<N>" /
     *             "pim.ch<N>" so the two subsystems stay apart in
     *             telemetry output)
     */
    MemoryController(EventQueue &eq, const TimingParams &timing,
                     const mapping::DramGeometry &geometry,
                     unsigned channelId,
                     ControllerConfig config = ControllerConfig{},
                     std::string name = {});

    ~MemoryController();

    /** True if the matching queue has a free slot. */
    bool canAccept(bool write) const;

    /**
     * Hand a request to the controller. The coordinate must already be
     * resolved and must target this channel.
     * @return false (request untouched) when the queue is full.
     */
    bool enqueue(MemRequest req);

    /** Requests currently queued or in flight on this channel. */
    std::size_t pending() const;

    /**
     * Register a callback fired whenever queue space frees up, so
     * backpressured sources can retry.
     */
    void
    onDrain(std::function<void()> listener)
    {
        drainListeners_.push_back(std::move(listener));
    }

    unsigned channelId() const { return channelId_; }
    const TimingParams &timing() const { return timing_; }
    const mapping::DramGeometry &geometry() const { return geom_; }

    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    /** Dump queues and bank state (debugging aid). */
    void dumpState(std::ostream &os) const;

    /** Observe every issued DRAM command (protocol checker hook). */
    void
    onCommand(CommandListener listener)
    {
        commandListener_ = std::move(listener);
    }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t bytesMoved() const { return bytesRead_ + bytesWritten_; }

    /** Data-bus busy time, for bandwidth-utilization reports. */
    Tick busBusyPs() const { return busBusyPs_; }

    /**
     * Cumulative time this channel's ranks have spent in refresh
     * (tRFC per issued REF, summed over ranks). The attribution layer
     * diffs this across a descriptor's service window to carve
     * refresh blackout out of its DRAM-service bucket.
     */
    Tick refreshBusyPs() const { return refreshBusyPs_; }

    /**
     * Checkpoint the full scheduling state (open rows, per-bank/
     * bank-group/rank ready cycles, refresh machinery, data-bus
     * turnaround, byte counters, stats). Only valid at a quiesced
     * point: the request queues must be empty and nothing in flight,
     * so queue contents are never serialized. A restored controller
     * issues the exact same command stream the original would have.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    /**
     * Rank-level refresh/tFAW bookkeeping. Unlike the scan-hot
     * next-ready cycles below (structure-of-arrays so the per-cycle
     * prefilter loops stay branch-light and cache-dense), these fields
     * are only touched when a REF or ACT actually issues, so they keep
     * the struct form.
     */
    struct RankRefresh
    {
        std::array<Cycle, 4> fawRing{};
        unsigned fawIdx = 0;
        Cycle refreshDue = 0;
        Cycle refreshDone = 0;
        bool refreshPending = false;
    };

    bool tick();
    bool tryIssueColumn(const MemRequest &req, Cycle now);
    bool tryIssueActOrPre(const MemRequest &req, Cycle now);
    bool serviceRefresh(Cycle now);
    /** Attribute an idle cycle to its dominant blocker (stats). */
    void classifyStall(Cycle now);
    /** Refresh rowHitMask_/nonHitMask_ from the current queue. */
    void updateRowHitMap();
    /**
     * Can any rank pass the rank-level column gates (refresh drain,
     * tCCD_S, turnaround, shared data bus) this cycle? When not, no
     * column command can issue at all and the FR scan is skipped.
     */
    bool anyRankColumnReady(Cycle now, bool write) const;
    /**
     * Full column-feasibility gate: does any bank with a pending row
     * hit clear every check tryIssueColumn applies? Column legality
     * depends only on bank/bank-group/rank state (the serviced queue
     * is all-read or all-write), so this O(banks) scan is an exact
     * stand-in for the O(queue) FR scan on cycles where it must fail.
     */
    bool anyBankColumnReady(Cycle now, bool write) const;
    /**
     * Same idea for the ACT/PRE pass: can any bank with a queued
     * non-hit request issue a precharge or activate this cycle?
     */
    bool anyBankActPreReady(Cycle now) const;
    void issueRead(std::deque<MemRequest>::iterator it, Cycle now);
    void issueWrite(std::deque<MemRequest>::iterator it, Cycle now);
    void finishColumn(MemRequest req, Cycle issue, bool write);
    void notifyDrain();

    Cycle nowCycle() const { return eq_.now() / timing_.tCKps; }

    unsigned bankIndexOf(const mapping::DramCoord &c) const;

    EventQueue &eq_;
    TimingParams timing_;
    mapping::DramGeometry geom_;
    unsigned channelId_;
    ControllerConfig config_;
    Ticker ticker_;

    std::deque<MemRequest> readQueue_;
    std::deque<MemRequest> writeQueue_;
    bool writeMode_ = false;
    bool wasIdle_ = true;

    /**
     * Per-bank timing state, structure-of-arrays. The scheduler's
     * prefilter scans (anyBankColumnReady / anyBankActPreReady) touch
     * these every DRAM cycle; parallel Cycle arrays plus bitmasks keep
     * each scan a dense sequential walk instead of striding through
     * an array of structs. Indexed by bankIndexOf().
     */
    std::vector<unsigned> bankRow_;     //!< open row (valid when open)
    std::vector<Cycle> bankActReady_;   //!< earliest ACT issue cycle
    std::vector<Cycle> bankPreReady_;   //!< earliest PRE issue cycle
    std::vector<Cycle> bankColReady_;   //!< earliest RD/WR cycle (tRCD)
    /** Bitmask (64 banks/word): bank has an open row. */
    std::vector<std::uint64_t> bankOpenMask_;
    /** Precomputed bank -> rank index (avoids divisions in scans). */
    std::vector<std::uint16_t> bankRank_;
    /** Precomputed bank -> flattened bank-group index. */
    std::vector<std::uint16_t> bankBg_;

    /** Per-bank-group timing, SoA, indexed ra * bankGroups + bg. */
    std::vector<Cycle> bgActReady_; //!< tRRD_L
    std::vector<Cycle> bgColReady_; //!< tCCD_L
    std::vector<Cycle> bgRdReady_;  //!< tWTR_L

    /** Per-rank timing, SoA. */
    std::vector<Cycle> rankActReady_; //!< tRRD_S
    std::vector<Cycle> rankColReady_; //!< tCCD_S
    std::vector<Cycle> rankRdReady_;  //!< tWTR_S
    std::vector<Cycle> rankWrReady_;  //!< read-to-write turnaround
    std::vector<RankRefresh> rankRefresh_;

    /** Bitmask: a queued request targets the bank's open row. */
    std::vector<std::uint64_t> rowHitMask_;
    /**
     * rowHitMask_ / rowHitCount_ are valid for the current serviced
     * queue. tick() runs every DRAM cycle but the map's inputs (queue
     * contents, bank open rows, write mode) only change when a command
     * issues or a request arrives, so consecutive idle cycles reuse it.
     */
    bool rowHitMapValid_ = false;
    /** Banks with a pending row hit (0 => the FR pass cannot issue). */
    unsigned rowHitCount_ = 0;
    /**
     * Queued requests that are NOT row hits (0 => the ACT/PRE pass
     * cannot issue: every request just waits on column timing).
     */
    unsigned nonHitRequests_ = 0;
    /** Bitmask: a queued non-hit request targets this bank. */
    std::vector<std::uint64_t> nonHitMask_;

    Cycle dataBusFree_ = 0;
    int lastDataRank_ = -1;

    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    Tick busBusyPs_ = 0;
    Tick refreshBusyPs_ = 0;
    std::size_t inflight_ = 0;
    /**
     * Requests whose data burst is on the bus, parked here so the
     * completion event only captures a slot index (keeps the event
     * callback inside EventQueue's inline storage; slots are recycled).
     */
    std::vector<MemRequest> inflightReqs_;
    std::vector<std::uint32_t> freeInflightSlots_;

    std::vector<std::function<void()>> drainListeners_;
    CommandListener commandListener_;
    stats::Group stats_;
    unsigned timelineTrack_ = 0;

    /**
     * Stall counters, cached on the first idle cycle: tick() runs per
     * DRAM cycle and a by-name counter lookup there is measurable.
     * Group counters live in a std::map, so the addresses are stable.
     */
    stats::Counter *idleCycles_ = nullptr;
    stats::Counter *stallRefresh_ = nullptr;
    stats::Counter *stallBankGroup_ = nullptr;
    stats::Counter *stallBus_ = nullptr;
    stats::Counter *stallOther_ = nullptr;
};

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_CONTROLLER_HH

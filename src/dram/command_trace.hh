/**
 * @file
 * DRAM command-stream tracing: the controller can emit every ACT / PRE
 * / RD / WR / REF it issues to a listener. Used by the protocol checker
 * (tests/) to validate JEDEC timing compliance independently of the
 * scheduler, and available for debugging.
 */

#ifndef PIMMMU_DRAM_COMMAND_TRACE_HH
#define PIMMMU_DRAM_COMMAND_TRACE_HH

#include <functional>

#include "common/types.hh"
#include "mapping/geometry.hh"

namespace pimmmu {
namespace dram {

/** DDR4 commands the controller issues. */
enum class DramCommand
{
    Act,
    Pre,
    Rd,
    Wr,
    Ref
};

const char *commandName(DramCommand cmd);

/** One issued command (REF carries only the rank in coord.ra). */
struct CommandRecord
{
    Cycle cycle = 0;
    DramCommand cmd = DramCommand::Act;
    mapping::DramCoord coord;
};

using CommandListener = std::function<void(const CommandRecord &)>;

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_COMMAND_TRACE_HH

#include "dram/timing.hh"

#include "common/logging.hh"

namespace pimmmu {
namespace dram {

namespace {

const TimingParams kDdr4_2400{
    /*tCKps=*/833,
    /*CL=*/16,
    /*CWL=*/12,
    /*tRCD=*/16,
    /*tRP=*/16,
    /*tRAS=*/39,
    /*tRC=*/55,
    /*tCCD_S=*/4,
    /*tCCD_L=*/6,
    /*tRRD_S=*/4,
    /*tRRD_L=*/6,
    /*tFAW=*/26,
    /*tWR=*/18,
    /*tWTR_S=*/3,
    /*tWTR_L=*/9,
    /*tRTP=*/9,
    /*tBL=*/4,
    /*tRTRS=*/2,
    /*tRFC=*/420,
    /*tREFI=*/9363,
    "DDR4-2400",
};

const TimingParams kDdr4_3200{
    /*tCKps=*/625,
    /*CL=*/22,
    /*CWL=*/16,
    /*tRCD=*/22,
    /*tRP=*/22,
    /*tRAS=*/52,
    /*tRC=*/74,
    /*tCCD_S=*/4,
    /*tCCD_L=*/8,
    /*tRRD_S=*/4,
    /*tRRD_L=*/8,
    /*tFAW=*/34,
    /*tWR=*/24,
    /*tWTR_S=*/4,
    /*tWTR_L=*/12,
    /*tRTP=*/12,
    /*tBL=*/4,
    /*tRTRS=*/2,
    /*tRFC=*/560,
    /*tREFI=*/12480,
    "DDR4-3200",
};

} // namespace

const TimingParams &
timingPreset(SpeedGrade grade)
{
    switch (grade) {
      case SpeedGrade::DDR4_2400:
        return kDdr4_2400;
      case SpeedGrade::DDR4_3200:
        return kDdr4_3200;
      default:
        panic("unknown speed grade");
    }
}

} // namespace dram
} // namespace pimmmu

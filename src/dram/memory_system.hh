/**
 * @file
 * The full memory subsystem: DRAM channels plus PIM channels behind one
 * physical address space, routed by a SystemMap (HetMap or the baseline
 * homogeneous locality map).
 */

#ifndef PIMMMU_DRAM_MEMORY_SYSTEM_HH
#define PIMMMU_DRAM_MEMORY_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "dram/backing_store.hh"
#include "dram/controller.hh"
#include "dram/request.hh"
#include "mapping/frame_scatter.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {
namespace dram {

/**
 * Owns the per-channel controllers for both the DRAM and the PIM
 * subsystems and routes physical-address requests through the system
 * map. Also hosts the functional backing store for the DRAM region
 * (PIM-region contents live in the PIM device model).
 */
class MemorySystem
{
  public:
    MemorySystem(EventQueue &eq, const mapping::SystemMap &map,
                 const TimingParams &dramTiming,
                 const TimingParams &pimTiming,
                 ControllerConfig config = ControllerConfig{});

    /**
     * Map and enqueue a line request. The request's space/coord fields
     * are filled in here.
     * @return false if the destination controller queue is full.
     */
    bool enqueue(MemRequest req);

    /** Would a request to @p addr be accepted right now? */
    bool canAccept(Addr addr, bool write) const;

    /**
     * Enable huge-page frame scattering of the DRAM region: software
     * addresses stay virtually contiguous but land in permuted 2 MiB
     * physical frames, as a real OS would allocate them. PIM-region
     * addresses are device memory and stay identity-mapped.
     */
    void
    enableScatter(std::uint64_t frameBytes =
                      mapping::FrameScatter::kDefaultFrameBytes)
    {
        scatter_.emplace(map_.dramCapacity(), frameBytes);
    }

    /** Software address -> physical address (identity if no scatter). */
    Addr
    toPhysical(Addr addr) const
    {
        if (scatter_ && addr < map_.dramCapacity())
            return scatter_->translate(addr);
        return addr;
    }

    /** Register a drain listener on every controller. */
    void onDrain(std::function<void()> listener);

    std::size_t pending() const;

    unsigned
    dramChannels() const
    {
        return static_cast<unsigned>(dramControllers_.size());
    }

    unsigned
    pimChannels() const
    {
        return static_cast<unsigned>(pimControllers_.size());
    }

    MemoryController &dramController(unsigned ch)
    {
        return *dramControllers_[ch];
    }

    MemoryController &pimController(unsigned ch)
    {
        return *pimControllers_[ch];
    }

    const MemoryController &dramController(unsigned ch) const
    {
        return *dramControllers_[ch];
    }

    const MemoryController &pimController(unsigned ch) const
    {
        return *pimControllers_[ch];
    }

    const mapping::SystemMap &systemMap() const { return map_; }

    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }

    /** Total bytes moved on DRAM-side / PIM-side buses. */
    std::uint64_t dramBytesMoved() const;
    std::uint64_t pimBytesMoved() const;

    /** Summed MemoryController::refreshBusyPs over every channel of
     *  both subsystems (attribution's refresh carve-out input). */
    Tick refreshBusyPsTotal() const;

    /** Aggregate peak bandwidth of one subsystem in bytes/sec. */
    double dramPeakBandwidth() const;
    double pimPeakBandwidth() const;

  private:
    EventQueue &eq_;
    const mapping::SystemMap &map_;
    std::vector<std::unique_ptr<MemoryController>> dramControllers_;
    std::vector<std::unique_ptr<MemoryController>> pimControllers_;
    BackingStore store_;
    std::optional<mapping::FrameScatter> scatter_;
};

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_MEMORY_SYSTEM_HH

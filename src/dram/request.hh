/**
 * @file
 * Memory request type exchanged between request sources (CPU cores,
 * the DCE, contenders) and the per-channel memory controllers.
 */

#ifndef PIMMMU_DRAM_REQUEST_HH
#define PIMMMU_DRAM_REQUEST_HH

#include <functional>

#include "common/types.hh"
#include "mapping/hetmap.hh"

namespace pimmmu {
namespace dram {

/**
 * One cache-line (64 B) read or write. Requests are always line-sized:
 * AVX-512 transfers and DCE bursts are sequences of line requests.
 */
struct MemRequest
{
    using Callback = std::function<void(const MemRequest &)>;

    Addr paddr = 0;
    bool write = false;

    /** Resolved by the system map before the controller sees it. */
    mapping::MemSpace space = mapping::MemSpace::Dram;
    mapping::DramCoord coord;

    /** Requestor id, used for per-source statistics. */
    unsigned sourceId = 0;

    /** Opaque tag the requestor can use to match completions. */
    std::uint64_t tag = 0;

    /** Invoked when the data burst finishes on the bus. */
    Callback onComplete;

    Tick enqueuedAt = 0;
};

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_REQUEST_HH

/**
 * @file
 * DDR4 timing parameters. All values are in device clock cycles (tCK)
 * except tCKps. Presets follow JEDEC DDR4-2400R and DDR4-3200AA grades
 * as used by Ramulator.
 */

#ifndef PIMMMU_DRAM_TIMING_HH
#define PIMMMU_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pimmmu {
namespace dram {

/** DDR4 speed grades used in the paper (UPMEM DIMMs are DDR4-2400). */
enum class SpeedGrade
{
    DDR4_2400,
    DDR4_3200
};

/** The timing constraint set for one channel's devices. */
struct TimingParams
{
    Tick tCKps;       //!< clock period, picoseconds
    unsigned CL;      //!< read (CAS) latency
    unsigned CWL;     //!< write (CAS) latency
    unsigned tRCD;    //!< ACT to column command
    unsigned tRP;     //!< PRE to ACT
    unsigned tRAS;    //!< ACT to PRE
    unsigned tRC;     //!< ACT to ACT, same bank
    unsigned tCCD_S;  //!< column to column, different bank group
    unsigned tCCD_L;  //!< column to column, same bank group
    unsigned tRRD_S;  //!< ACT to ACT, different bank group
    unsigned tRRD_L;  //!< ACT to ACT, same bank group
    unsigned tFAW;    //!< four-activate window, per rank
    unsigned tWR;     //!< write recovery (end of write data to PRE)
    unsigned tWTR_S;  //!< write-to-read turnaround, different bank group
    unsigned tWTR_L;  //!< write-to-read turnaround, same bank group
    unsigned tRTP;    //!< read to PRE
    unsigned tBL;     //!< burst length in clocks (BL8 => 4)
    unsigned tRTRS;   //!< rank-to-rank data bus switch
    unsigned tRFC;    //!< refresh cycle time
    unsigned tREFI;   //!< refresh interval

    std::string name;

    /** Peak data-bus bandwidth of one channel in bytes/second. */
    double
    peakBandwidth(unsigned lineBytes = 64) const
    {
        const double burstSec =
            static_cast<double>(tBL) * static_cast<double>(tCKps) / 1e12;
        return static_cast<double>(lineBytes) / burstSec;
    }

    Tick cyclesToPs(std::uint64_t cycles) const { return cycles * tCKps; }
};

/** Look up a preset by speed grade. */
const TimingParams &timingPreset(SpeedGrade grade);

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_TIMING_HH

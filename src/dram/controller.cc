#include "dram/controller.hh"

#include <algorithm>
#include <ostream>

#include "common/stats_serialize.hh"
#include "common/trace.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace dram {

namespace {

// Bitmask helpers for the per-bank open/row-hit/non-hit maps (64 banks
// per word). Scans walk the words ascending and pop bits lowest-first,
// so iteration order matches the old per-bank vector walk exactly.

inline bool
testBit(const std::vector<std::uint64_t> &m, std::size_t b)
{
    return (m[b >> 6] >> (b & 63)) & 1u;
}

inline void
setBit(std::vector<std::uint64_t> &m, std::size_t b)
{
    m[b >> 6] |= std::uint64_t{1} << (b & 63);
}

inline void
clearBit(std::vector<std::uint64_t> &m, std::size_t b)
{
    m[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
}

inline unsigned
ctz64(std::uint64_t x)
{
    return static_cast<unsigned>(__builtin_ctzll(x));
}

} // namespace

MemoryController::MemoryController(EventQueue &eq,
                                   const TimingParams &timing,
                                   const mapping::DramGeometry &geometry,
                                   unsigned channelId,
                                   ControllerConfig config,
                                   std::string name)
    : eq_(eq), timing_(timing), geom_(geometry), channelId_(channelId),
      config_(config),
      ticker_(eq, timing.tCKps, [this] { return tick(); }),
      stats_(name.empty() ? "mc.ch" + std::to_string(channelId)
                          : std::move(name))
{
    if (config_.writeLowWatermark >= config_.writeHighWatermark)
        fatal("write watermarks misordered");

    const std::size_t numBanks =
        std::size_t{geom_.ranksPerChannel} * geom_.banksPerRank();
    const std::size_t numBgs =
        std::size_t{geom_.ranksPerChannel} * geom_.bankGroups;
    const std::size_t maskWords = (numBanks + 63) / 64;
    bankRow_.assign(numBanks, 0);
    bankActReady_.assign(numBanks, 0);
    bankPreReady_.assign(numBanks, 0);
    bankColReady_.assign(numBanks, 0);
    bankOpenMask_.assign(maskWords, 0);
    rowHitMask_.assign(maskWords, 0);
    nonHitMask_.assign(maskWords, 0);
    bankRank_.resize(numBanks);
    bankBg_.resize(numBanks);
    for (std::size_t b = 0; b < numBanks; ++b) {
        const unsigned ra =
            static_cast<unsigned>(b / geom_.banksPerRank());
        const unsigned bg = static_cast<unsigned>(
            (b % geom_.banksPerRank()) / geom_.banksPerGroup);
        bankRank_[b] = static_cast<std::uint16_t>(ra);
        bankBg_[b] =
            static_cast<std::uint16_t>(ra * geom_.bankGroups + bg);
    }
    bgActReady_.assign(numBgs, 0);
    bgColReady_.assign(numBgs, 0);
    bgRdReady_.assign(numBgs, 0);
    rankActReady_.assign(geom_.ranksPerChannel, 0);
    rankColReady_.assign(geom_.ranksPerChannel, 0);
    rankRdReady_.assign(geom_.ranksPerChannel, 0);
    rankWrReady_.assign(geom_.ranksPerChannel, 0);
    rankRefresh_.assign(geom_.ranksPerChannel, RankRefresh{});

    timelineTrack_ = telemetry::Timeline::global().track(stats_.name());
    telemetry::StatsRegistry::global().add(stats_, [this] {
        // Channel utilization: data-bus busy share of elapsed time.
        const Tick now = eq_.now();
        stats_.gauge("bus_busy_us") =
            static_cast<double>(busBusyPs_) / 1e6;
        stats_.gauge("bus_util_pct") =
            now > 0 ? 100.0 * static_cast<double>(busBusyPs_) /
                          static_cast<double>(now)
                    : 0.0;
        stats_.gauge("bytes_read") = static_cast<double>(bytesRead_);
        stats_.gauge("bytes_written") =
            static_cast<double>(bytesWritten_);
    });
}

MemoryController::~MemoryController()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

const char *
commandName(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::Act:
        return "ACT";
      case DramCommand::Pre:
        return "PRE";
      case DramCommand::Rd:
        return "RD";
      case DramCommand::Wr:
        return "WR";
      case DramCommand::Ref:
        return "REF";
      default:
        panic("bad command");
    }
}

unsigned
MemoryController::bankIndexOf(const mapping::DramCoord &c) const
{
    return c.bankIndex(geom_);
}

bool
MemoryController::canAccept(bool write) const
{
    const auto &queue = write ? writeQueue_ : readQueue_;
    const unsigned depth =
        write ? config_.writeQueueDepth : config_.readQueueDepth;
    return queue.size() < depth;
}

bool
MemoryController::enqueue(MemRequest req)
{
    PIMMMU_ASSERT(req.coord.ch == channelId_,
                  "request routed to wrong channel");
    if (!canAccept(req.write))
        return false;

    req.enqueuedAt = eq_.now();
    if (wasIdle_) {
        // Reset refresh phase after an idle period so a returning
        // traffic burst does not hit a pile of deferred refreshes
        // (idle-time refresh is not modeled; see DESIGN.md).
        wasIdle_ = false;
        const Cycle now = nowCycle();
        for (std::size_t r = 0; r < rankRefresh_.size(); ++r) {
            rankRefresh_[r].refreshDue = std::max<Cycle>(
                rankRefresh_[r].refreshDue,
                now + timing_.tREFI * (r + 1) / rankRefresh_.size());
        }
    }
    (req.write ? writeQueue_ : readQueue_).push_back(std::move(req));
    rowHitMapValid_ = false;
    ticker_.arm();
    return true;
}

std::size_t
MemoryController::pending() const
{
    return readQueue_.size() + writeQueue_.size() + inflight_;
}

void
MemoryController::notifyDrain()
{
    for (auto &listener : drainListeners_)
        listener();
}

void
MemoryController::updateRowHitMap()
{
    if (rowHitMapValid_)
        return;
    // Only requests in the currently serviced queue can actually use
    // an open row; honoring hits from the other queue would let an
    // unservable request veto the precharge forever (deadlock).
    std::fill(rowHitMask_.begin(), rowHitMask_.end(), 0);
    std::fill(nonHitMask_.begin(), nonHitMask_.end(), 0);
    rowHitCount_ = 0;
    nonHitRequests_ = 0;
    const auto &queue = writeMode_ ? writeQueue_ : readQueue_;
    for (const auto &req : queue) {
        const unsigned idx = bankIndexOf(req.coord);
        if (testBit(bankOpenMask_, idx) &&
            bankRow_[idx] == req.coord.ro) {
            if (!testBit(rowHitMask_, idx)) {
                setBit(rowHitMask_, idx);
                ++rowHitCount_;
            }
        } else {
            ++nonHitRequests_;
            setBit(nonHitMask_, idx);
        }
    }
    rowHitMapValid_ = true;
}

bool
MemoryController::anyRankColumnReady(Cycle now, bool write) const
{
    const Cycle lat = write ? timing_.CWL : timing_.CL;
    for (std::size_t r = 0; r < rankRefresh_.size(); ++r) {
        if (rankRefresh_[r].refreshPending || now < rankColReady_[r])
            continue;
        if (write ? now < rankWrReady_[r] : now < rankRdReady_[r])
            continue;
        Cycle busNeeded = dataBusFree_;
        if (lastDataRank_ >= 0 &&
            static_cast<std::size_t>(lastDataRank_) != r) {
            busNeeded += timing_.tRTRS;
        }
        if (now + lat < busNeeded)
            continue;
        return true;
    }
    return false;
}

bool
MemoryController::anyBankColumnReady(Cycle now, bool write) const
{
    const Cycle lat = write ? timing_.CWL : timing_.CL;
    for (std::size_t w = 0; w < rowHitMask_.size(); ++w) {
        std::uint64_t bits = rowHitMask_[w];
        while (bits) {
            const std::size_t b = w * 64 + ctz64(bits);
            bits &= bits - 1;
            if (now < bankColReady_[b])
                continue;
            const unsigned ra = bankRank_[b];
            if (rankRefresh_[ra].refreshPending ||
                now < rankColReady_[ra]) {
                continue;
            }
            if (write ? now < rankWrReady_[ra] : now < rankRdReady_[ra])
                continue;
            const unsigned bg = bankBg_[b];
            if (now < bgColReady_[bg] ||
                (!write && now < bgRdReady_[bg])) {
                continue;
            }
            Cycle busNeeded = dataBusFree_;
            if (lastDataRank_ >= 0 &&
                static_cast<unsigned>(lastDataRank_) != ra) {
                busNeeded += timing_.tRTRS;
            }
            if (now + lat < busNeeded)
                continue;
            return true;
        }
    }
    return false;
}

bool
MemoryController::anyBankActPreReady(Cycle now) const
{
    for (std::size_t w = 0; w < nonHitMask_.size(); ++w) {
        std::uint64_t bits = nonHitMask_[w];
        while (bits) {
            const std::size_t b = w * 64 + ctz64(bits);
            bits &= bits - 1;
            if (testBit(bankOpenMask_, b)) {
                // A non-hit request on an open bank is a row conflict:
                // PRE is legal unless the open row still has pending
                // hits.
                if (!testBit(rowHitMask_, b) && now >= bankPreReady_[b])
                    return true;
                continue;
            }
            const unsigned ra = bankRank_[b];
            const RankRefresh &rr = rankRefresh_[ra];
            if (rr.refreshPending)
                continue;
            if (now < bankActReady_[b])
                continue;
            if (now < bgActReady_[bankBg_[b]] || now < rankActReady_[ra])
                continue;
            const Cycle oldestAct = rr.fawRing[rr.fawIdx];
            if (oldestAct != 0 && now < oldestAct + timing_.tFAW)
                continue;
            return true;
        }
    }
    return false;
}

bool
MemoryController::serviceRefresh(Cycle now)
{
    for (std::size_t r = 0; r < rankRefresh_.size(); ++r) {
        RankRefresh &rr = rankRefresh_[r];
        if (!config_.refreshEnabled)
            continue;
        if (!rr.refreshPending && now >= rr.refreshDue)
            rr.refreshPending = true;
        if (!rr.refreshPending)
            continue;

        // All banks of the rank must be precharged before REF.
        bool allClosed = true;
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            const std::size_t idx = r * geom_.banksPerRank() + b;
            if (testBit(bankOpenMask_, idx)) {
                allClosed = false;
                if (now >= bankPreReady_[idx]) {
                    clearBit(bankOpenMask_, idx);
                    bankActReady_[idx] = std::max<Cycle>(
                        bankActReady_[idx], now + timing_.tRP);
                    rowHitMapValid_ = false;
                    ++stats_.counter("refresh_forced_pre");
                    if (commandListener_) {
                        mapping::DramCoord c;
                        c.ch = channelId_;
                        c.ra = static_cast<unsigned>(r);
                        c.bg = b / geom_.banksPerGroup;
                        c.bk = b % geom_.banksPerGroup;
                        c.ro = bankRow_[idx];
                        commandListener_(CommandRecord{
                            now, DramCommand::Pre, c});
                    }
                    return true; // one command this cycle
                }
            }
        }
        if (!allClosed)
            continue;

        // Issue REF.
        bool ready = true;
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            if (now < bankActReady_[r * geom_.banksPerRank() + b])
                ready = false;
        }
        if (!ready)
            continue;
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            bankActReady_[r * geom_.banksPerRank() + b] =
                now + timing_.tRFC;
        }
        rr.refreshDone = now + timing_.tRFC;
        rr.refreshDue += timing_.tREFI;
        rr.refreshPending = false;
        refreshBusyPs_ += timing_.cyclesToPs(timing_.tRFC);
        ++stats_.counter("refreshes");
        telemetry::Timeline &tl = telemetry::Timeline::global();
        if (tl.enabled()) {
            tl.span(timelineTrack_, "REF", timing_.cyclesToPs(now),
                    timing_.cyclesToPs(now + timing_.tRFC));
        }
        if (commandListener_) {
            mapping::DramCoord c;
            c.ch = channelId_;
            c.ra = static_cast<unsigned>(r);
            commandListener_(CommandRecord{now, DramCommand::Ref, c});
        }
        return true;
    }
    return false;
}

bool
MemoryController::tryIssueColumn(const MemRequest &req, Cycle now)
{
    const mapping::DramCoord &c = req.coord;
    const unsigned b = bankIndexOf(c);
    if (!testBit(bankOpenMask_, b) || bankRow_[b] != c.ro)
        return false;

    const unsigned ra = c.ra;
    const unsigned bg = bankBg_[b];
    // A rank draining for refresh accepts no new column commands, or
    // row hits would keep pushing the precharge (and the REF) out.
    if (rankRefresh_[ra].refreshPending)
        return false;
    if (now < bankColReady_[b] || now < bgColReady_[bg] ||
        now < rankColReady_[ra]) {
        return false;
    }
    if (req.write) {
        if (now < rankWrReady_[ra])
            return false;
    } else {
        if (now < rankRdReady_[ra] || now < bgRdReady_[bg])
            return false;
    }

    // Shared data bus: the burst must not overlap the previous one, and
    // switching driving rank costs tRTRS.
    const Cycle lat = req.write ? timing_.CWL : timing_.CL;
    Cycle busNeeded = dataBusFree_;
    if (lastDataRank_ >= 0 &&
        static_cast<unsigned>(lastDataRank_) != c.ra) {
        busNeeded += timing_.tRTRS;
    }
    if (now + lat < busNeeded)
        return false;
    return true;
}

bool
MemoryController::tryIssueActOrPre(const MemRequest &req, Cycle now)
{
    const mapping::DramCoord &c = req.coord;
    const unsigned b = bankIndexOf(c);
    const unsigned ra = c.ra;
    const unsigned bg = bankBg_[b];

    if (testBit(bankOpenMask_, b)) {
        // Row conflict: precharge, unless the open row still has
        // useful pending requests (preserve row hits).
        PIMMMU_ASSERT(bankRow_[b] != c.ro,
                      "column path should have handled");
        if (testBit(rowHitMask_, b))
            return false;
        if (now < bankPreReady_[b])
            return false;
        const unsigned closedRow = bankRow_[b];
        clearBit(bankOpenMask_, b);
        bankActReady_[b] =
            std::max<Cycle>(bankActReady_[b], now + timing_.tRP);
        rowHitMapValid_ = false;
        ++stats_.counter("row_conflicts");
        ++stats_.counter("precharges");
        if (commandListener_) {
            mapping::DramCoord pc = c;
            pc.ro = closedRow;
            commandListener_(CommandRecord{now, DramCommand::Pre, pc});
        }
        return true;
    }

    // Activate. A rank draining for refresh accepts no new ACTs, or
    // the forced precharges would chase reopened rows forever.
    RankRefresh &rr = rankRefresh_[ra];
    if (rr.refreshPending)
        return false;
    if (now < bankActReady_[b] || now < bgActReady_[bg] ||
        now < rankActReady_[ra]) {
        return false;
    }
    // tFAW: at most four ACTs per rank in any tFAW window. A zero ring
    // entry means fewer than four ACTs have ever been issued.
    const Cycle oldestAct = rr.fawRing[rr.fawIdx];
    if (oldestAct != 0 && now < oldestAct + timing_.tFAW)
        return false;

    setBit(bankOpenMask_, b);
    bankRow_[b] = c.ro;
    rowHitMapValid_ = false;
    bankColReady_[b] = now + timing_.tRCD;
    bankPreReady_[b] =
        std::max<Cycle>(bankPreReady_[b], now + timing_.tRAS);
    bankActReady_[b] = now + timing_.tRC;
    bgActReady_[bg] = now + timing_.tRRD_L;
    rankActReady_[ra] = now + timing_.tRRD_S;
    rr.fawRing[rr.fawIdx] = now;
    rr.fawIdx = (rr.fawIdx + 1) % rr.fawRing.size();
    ++stats_.counter("activates");
    PIMMMU_TRACE_LOG(trace::Category::Dram, eq_.now(),
                     "ch" << channelId_ << " ACT " << c.str());
    if (commandListener_ && !testing::fault::fire("dram.drop_act_report"))
        commandListener_(CommandRecord{now, DramCommand::Act, c});
    return true;
}

void
MemoryController::finishColumn(MemRequest req, Cycle issue, bool write)
{
    const Cycle lat = write ? timing_.CWL : timing_.CL;
    const Cycle dataStart = issue + lat;
    const Cycle dataEnd = dataStart + timing_.tBL;

    dataBusFree_ = dataEnd;
    lastDataRank_ = static_cast<int>(req.coord.ra);
    busBusyPs_ += timing_.cyclesToPs(timing_.tBL);

    if (write) {
        bytesWritten_ += geom_.lineBytes;
        ++stats_.counter("writes");
    } else {
        bytesRead_ += geom_.lineBytes;
        ++stats_.counter("reads");
    }
    const double queueNs =
        static_cast<double>(eq_.now() - req.enqueuedAt) / 1e3;
    stats_.average("queue_latency_ns").sample(queueNs);
    stats_.histogram("queue_latency_ns", 0.0, 4000.0, 200)
        .sample(queueNs);

    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.span(timelineTrack_, write ? "WR" : "RD",
                timing_.cyclesToPs(dataStart),
                timing_.cyclesToPs(dataEnd));
    }

    ++inflight_;
    std::uint32_t slot;
    if (freeInflightSlots_.empty()) {
        slot = static_cast<std::uint32_t>(inflightReqs_.size());
        inflightReqs_.emplace_back();
    } else {
        slot = freeInflightSlots_.back();
        freeInflightSlots_.pop_back();
    }
    inflightReqs_[slot] = std::move(req);
    eq_.schedule(timing_.cyclesToPs(dataEnd), [this, slot] {
        MemRequest done = std::move(inflightReqs_[slot]);
        freeInflightSlots_.push_back(slot);
        --inflight_;
        if (done.onComplete)
            done.onComplete(done);
        notifyDrain();
    });
}

void
MemoryController::issueRead(std::deque<MemRequest>::iterator it, Cycle now)
{
    const mapping::DramCoord &c = it->coord;
    const unsigned b = bankIndexOf(c);
    const unsigned ra = c.ra;
    const unsigned bg = bankBg_[b];

    bankPreReady_[b] =
        std::max<Cycle>(bankPreReady_[b], now + timing_.tRTP);
    bgColReady_[bg] = now + timing_.tCCD_L;
    rankColReady_[ra] = now + timing_.tCCD_S;
    // Read-to-write turnaround: the write burst must not collide with
    // this read burst on the bus plus one bubble cycle.
    rankWrReady_[ra] = std::max<Cycle>(
        rankWrReady_[ra],
        now + timing_.CL + timing_.tBL + 2 - timing_.CWL);

    ++stats_.counter("row_hits");
    if (commandListener_)
        commandListener_(CommandRecord{now, DramCommand::Rd, c});
    finishColumn(std::move(*it), now, false);
    readQueue_.erase(it);
    rowHitMapValid_ = false;
}

void
MemoryController::issueWrite(std::deque<MemRequest>::iterator it,
                             Cycle now)
{
    const mapping::DramCoord &c = it->coord;
    const unsigned b = bankIndexOf(c);
    const unsigned ra = c.ra;
    const unsigned bg = bankBg_[b];

    const Cycle dataEnd = now + timing_.CWL + timing_.tBL;
    bankPreReady_[b] =
        std::max<Cycle>(bankPreReady_[b], dataEnd + timing_.tWR);
    bgColReady_[bg] = now + timing_.tCCD_L;
    rankColReady_[ra] = now + timing_.tCCD_S;
    bgRdReady_[bg] =
        std::max<Cycle>(bgRdReady_[bg], dataEnd + timing_.tWTR_L);
    rankRdReady_[ra] =
        std::max<Cycle>(rankRdReady_[ra], dataEnd + timing_.tWTR_S);

    ++stats_.counter("row_hits");
    if (commandListener_)
        commandListener_(CommandRecord{now, DramCommand::Wr, c});
    finishColumn(std::move(*it), now, true);
    writeQueue_.erase(it);
    rowHitMapValid_ = false;
}

void
MemoryController::dumpState(std::ostream &os) const
{
    const Cycle now = nowCycle();
    os << "MC ch" << channelId_ << " @cycle " << now
       << " mode=" << (writeMode_ ? "W" : "R")
       << " rq=" << readQueue_.size() << " wq=" << writeQueue_.size()
       << " busFree=" << dataBusFree_ << "\n";
    for (std::size_t b = 0; b < bankRow_.size(); ++b) {
        const bool open = testBit(bankOpenMask_, b);
        os << "  bank" << b << (open ? " open row=" : " closed row=")
           << bankRow_[b] << " act>=" << bankActReady_[b] << " pre>="
           << bankPreReady_[b] << " col>=" << bankColReady_[b]
           << " hitPending=" << (testBit(rowHitMask_, b) ? 1 : 0)
           << "\n";
    }
    auto dumpQueue = [&](const char *name,
                         const std::deque<MemRequest> &queue) {
        os << "  " << name << ":";
        for (const auto &req : queue) {
            os << " b" << bankIndexOf(req.coord) << ".r" << req.coord.ro
               << ".c" << req.coord.co;
        }
        os << "\n";
    };
    dumpQueue("reads", readQueue_);
    dumpQueue("writes", writeQueue_);
    for (std::size_t r = 0; r < rankRefresh_.size(); ++r) {
        os << "  rank" << r << " refreshPending="
           << rankRefresh_[r].refreshPending
           << " due=" << rankRefresh_[r].refreshDue
           << " colS>=" << rankColReady_[r] << " rd>="
           << rankRdReady_[r] << " wr>=" << rankWrReady_[r] << "\n";
    }
}

bool
MemoryController::tick()
{
    // tick() only runs as the ticker handler, so the ticker's cached
    // cycle index is valid — saves a 64-bit division per DRAM cycle.
    const Cycle now = ticker_.firingCycle();

    if (readQueue_.empty() && writeQueue_.empty()) {
        // Nothing to do: sleep. Refresh bookkeeping restarts on the
        // next enqueue.
        wasIdle_ = true;
        return false;
    }

    if (serviceRefresh(now))
        return true;

    // Write drain mode control.
    const bool prevMode = writeMode_;
    if (writeMode_) {
        if (writeQueue_.size() <= config_.writeLowWatermark &&
            !readQueue_.empty()) {
            writeMode_ = false;
        } else if (writeQueue_.empty()) {
            writeMode_ = false;
        }
    } else {
        // The write queue is filled by push_back and drained by
        // positional erase, so it stays sorted by enqueue time and
        // front() is always the oldest write for the aging check.
        const bool writeStarving =
            !writeQueue_.empty() &&
            eq_.now() >= writeQueue_.front().enqueuedAt +
                             timing_.cyclesToPs(
                                 config_.writeStarvationCycles);
        if (writeQueue_.size() >= config_.writeHighWatermark ||
            readQueue_.empty() || writeStarving) {
            writeMode_ = !writeQueue_.empty();
            if (writeStarving)
                ++stats_.counter("write_starvation_drains");
        }
    }
    if (writeMode_ != prevMode)
        rowHitMapValid_ = false;

    auto &queue = writeMode_ ? writeQueue_ : readQueue_;
    const bool isWrite = writeMode_;

    const std::size_t horizon =
        config_.policy == SchedPolicy::Fcfs ? 1 : queue.size();

    // Pass 1 (FR): oldest row-hit whose column command is legal now.
    // The scan can only succeed when some queued request targets an
    // open row AND some rank clears the rank-level column gates; both
    // prefilters are exact, so skipping changes no issue decision —
    // it just avoids an O(queue) walk on the (common) stalled cycles.
    updateRowHitMap();
    if (rowHitCount_ > 0 && anyRankColumnReady(now, isWrite) &&
        anyBankColumnReady(now, isWrite)) {
        for (std::size_t i = 0; i < horizon; ++i) {
            auto it = queue.begin() + static_cast<std::ptrdiff_t>(i);
            if (tryIssueColumn(*it, now)) {
                if (isWrite)
                    issueWrite(it, now);
                else
                    issueRead(it, now);
                return true;
            }
        }
    }

    // Pass 2 (FCFS): oldest request that needs ACT or PRE. When every
    // queued request is a row hit there is nothing to activate or
    // precharge — and when no targeted bank clears the ACT/PRE gates
    // the scan must come up empty — so it is skipped (exact).
    if (nonHitRequests_ > 0 && anyBankActPreReady(now)) {
        for (std::size_t i = 0; i < horizon; ++i) {
            auto it = queue.begin() + static_cast<std::ptrdiff_t>(i);
            const unsigned b = bankIndexOf(it->coord);
            if (testBit(bankOpenMask_, b) &&
                bankRow_[b] == it->coord.ro) {
                continue; // waiting on column timing only
            }
            if (tryIssueActOrPre(*it, now))
                return true;
        }
    }

    if (!idleCycles_) {
        idleCycles_ = &stats_.counter("idle_cycles");
        stallRefresh_ = &stats_.counter("stall_refresh_cycles");
        stallBankGroup_ = &stats_.counter("stall_bank_group_cycles");
        stallBus_ = &stats_.counter("stall_bus_cycles");
        stallOther_ = &stats_.counter("stall_other_cycles");
    }
    ++*idleCycles_;
    classifyStall(now);
    return true;
}

void
MemoryController::classifyStall(Cycle now)
{
    // Why did a non-empty queue issue nothing this cycle? Attribute
    // the idle cycle to the oldest blocked request: mirror the
    // issue-path checks in queue (age) order and charge the first
    // definite blocker found — refresh drain, bank-group conflict
    // (tCCD_L / tWTR_L / tRRD_L), or shared data bus. Requests waiting
    // on intra-bank timing (tRCD, tRP, tFAW, rank-level turnaround, or
    // a row held open for someone else) classify as "other" and the
    // scan moves on. This runs every idle DRAM cycle, so it stops at
    // the first verdict instead of sweeping the whole queue.
    // Quantifies the bus-utilization gap flagged in ROADMAP.
    const auto &queue = writeMode_ ? writeQueue_ : readQueue_;
    for (const auto &req : queue) {
        const mapping::DramCoord &c = req.coord;
        const RankRefresh &rr = rankRefresh_[c.ra];
        if (rr.refreshPending || now < rr.refreshDone) {
            ++*stallRefresh_;
            return;
        }
        const unsigned b = bankIndexOf(c);
        const unsigned bg = bankBg_[b];
        const bool open = testBit(bankOpenMask_, b);
        if (open && bankRow_[b] == c.ro) {
            if (now < bankColReady_[b])
                continue; // tRCD: other
            if (now < bgColReady_[bg] ||
                (!req.write && now < bgRdReady_[bg])) {
                ++*stallBankGroup_;
                return;
            }
            if (now < rankColReady_[c.ra] ||
                (req.write ? now < rankWrReady_[c.ra]
                           : now < rankRdReady_[c.ra])) {
                continue; // rank-level timing: other
            }
            const Cycle lat = req.write ? timing_.CWL : timing_.CL;
            Cycle busNeeded = dataBusFree_;
            if (lastDataRank_ >= 0 &&
                static_cast<unsigned>(lastDataRank_) != c.ra) {
                busNeeded += timing_.tRTRS;
            }
            if (now + lat < busNeeded) {
                ++*stallBus_;
                return;
            }
        } else if (!open) {
            if (now >= bankActReady_[b] && now < bgActReady_[bg]) {
                ++*stallBankGroup_; // tRRD_L is the binding constraint
                return;
            }
        }
        // Row conflicts held open for other requests, tRP, tRRD_S and
        // tFAW all land in "other".
    }
    ++*stallOther_;
}

void
MemoryController::saveState(serialize::ByteSink &out) const
{
    PIMMMU_ASSERT(readQueue_.empty() && writeQueue_.empty() &&
                      inflight_ == 0,
                  "controller checkpoint requires a quiesced channel");
    out.boolean(writeMode_);
    out.boolean(wasIdle_);
    auto vecU = [&out](const std::vector<Cycle> &v) {
        out.u64(v.size());
        for (const Cycle c : v)
            out.u64(c);
    };
    out.u64(bankRow_.size());
    for (const unsigned r : bankRow_)
        out.u64(r);
    vecU(bankActReady_);
    vecU(bankPreReady_);
    vecU(bankColReady_);
    out.u64(bankOpenMask_.size());
    for (const std::uint64_t w : bankOpenMask_)
        out.u64(w);
    vecU(bgActReady_);
    vecU(bgColReady_);
    vecU(bgRdReady_);
    vecU(rankActReady_);
    vecU(rankColReady_);
    vecU(rankRdReady_);
    vecU(rankWrReady_);
    out.u64(rankRefresh_.size());
    for (const RankRefresh &rr : rankRefresh_) {
        for (const Cycle c : rr.fawRing)
            out.u64(c);
        out.u64(rr.fawIdx);
        out.u64(rr.refreshDue);
        out.u64(rr.refreshDone);
        out.boolean(rr.refreshPending);
    }
    out.u64(dataBusFree_);
    out.u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(lastDataRank_)));
    out.u64(bytesRead_);
    out.u64(bytesWritten_);
    out.u64(busBusyPs_);
    out.u64(refreshBusyPs_);
    stats::saveGroup(out, stats_);
}

bool
MemoryController::restoreState(serialize::ByteSource &in)
{
    writeMode_ = in.boolean();
    wasIdle_ = in.boolean();
    auto vecU = [&in](std::vector<Cycle> &v) {
        if (in.u64() != v.size()) // geometry mismatch
            return false;
        for (Cycle &c : v)
            c = in.u64();
        return in.ok();
    };
    if (in.u64() != bankRow_.size())
        return false;
    for (unsigned &r : bankRow_)
        r = static_cast<unsigned>(in.u64());
    if (!vecU(bankActReady_) || !vecU(bankPreReady_) ||
        !vecU(bankColReady_))
        return false;
    if (in.u64() != bankOpenMask_.size())
        return false;
    for (std::uint64_t &w : bankOpenMask_)
        w = in.u64();
    if (!vecU(bgActReady_) || !vecU(bgColReady_) ||
        !vecU(bgRdReady_) || !vecU(rankActReady_) ||
        !vecU(rankColReady_) || !vecU(rankRdReady_) ||
        !vecU(rankWrReady_))
        return false;
    if (in.u64() != rankRefresh_.size())
        return false;
    for (RankRefresh &rr : rankRefresh_) {
        for (Cycle &c : rr.fawRing)
            c = in.u64();
        rr.fawIdx = static_cast<unsigned>(in.u64());
        rr.refreshDue = in.u64();
        rr.refreshDone = in.u64();
        rr.refreshPending = in.boolean();
    }
    dataBusFree_ = in.u64();
    lastDataRank_ = static_cast<int>(
        static_cast<std::int64_t>(in.u64()));
    bytesRead_ = in.u64();
    bytesWritten_ = in.u64();
    busBusyPs_ = in.u64();
    refreshBusyPs_ = in.u64();
    // The row-hit map is a pure cache over the (empty) queues; leave
    // it invalid and it rebuilds deterministically on first use.
    rowHitMapValid_ = false;
    return stats::restoreGroup(in, stats_);
}

} // namespace dram
} // namespace pimmmu

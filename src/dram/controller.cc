#include "dram/controller.hh"

#include <algorithm>
#include <ostream>

#include "common/trace.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace dram {

MemoryController::MemoryController(EventQueue &eq,
                                   const TimingParams &timing,
                                   const mapping::DramGeometry &geometry,
                                   unsigned channelId,
                                   ControllerConfig config,
                                   std::string name)
    : eq_(eq), timing_(timing), geom_(geometry), channelId_(channelId),
      config_(config),
      ticker_(eq, timing.tCKps, [this] { return tick(); }),
      banks_(geometry.ranksPerChannel * geometry.banksPerRank()),
      bankGroups_(geometry.ranksPerChannel * geometry.bankGroups),
      ranks_(geometry.ranksPerChannel),
      openRowHasHit_(banks_.size(), false),
      stats_(name.empty() ? "mc.ch" + std::to_string(channelId)
                          : std::move(name))
{
    if (config_.writeLowWatermark >= config_.writeHighWatermark)
        fatal("write watermarks misordered");
    timelineTrack_ = telemetry::Timeline::global().track(stats_.name());
    telemetry::StatsRegistry::global().add(stats_, [this] {
        // Channel utilization: data-bus busy share of elapsed time.
        const Tick now = eq_.now();
        stats_.gauge("bus_busy_us") =
            static_cast<double>(busBusyPs_) / 1e6;
        stats_.gauge("bus_util_pct") =
            now > 0 ? 100.0 * static_cast<double>(busBusyPs_) /
                          static_cast<double>(now)
                    : 0.0;
        stats_.gauge("bytes_read") = static_cast<double>(bytesRead_);
        stats_.gauge("bytes_written") =
            static_cast<double>(bytesWritten_);
    });
}

MemoryController::~MemoryController()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

const char *
commandName(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::Act:
        return "ACT";
      case DramCommand::Pre:
        return "PRE";
      case DramCommand::Rd:
        return "RD";
      case DramCommand::Wr:
        return "WR";
      case DramCommand::Ref:
        return "REF";
      default:
        panic("bad command");
    }
}

unsigned
MemoryController::bankIndexOf(const mapping::DramCoord &c) const
{
    return c.bankIndex(geom_);
}

MemoryController::BankState &
MemoryController::bank(const mapping::DramCoord &c)
{
    return banks_[bankIndexOf(c)];
}

MemoryController::BankGroupState &
MemoryController::bankGroup(const mapping::DramCoord &c)
{
    return bankGroups_[c.ra * geom_.bankGroups + c.bg];
}

MemoryController::RankState &
MemoryController::rank(const mapping::DramCoord &c)
{
    return ranks_[c.ra];
}

bool
MemoryController::canAccept(bool write) const
{
    const auto &queue = write ? writeQueue_ : readQueue_;
    const unsigned depth =
        write ? config_.writeQueueDepth : config_.readQueueDepth;
    return queue.size() < depth;
}

bool
MemoryController::enqueue(MemRequest req)
{
    PIMMMU_ASSERT(req.coord.ch == channelId_,
                  "request routed to wrong channel");
    if (!canAccept(req.write))
        return false;

    req.enqueuedAt = eq_.now();
    if (wasIdle_) {
        // Reset refresh phase after an idle period so a returning
        // traffic burst does not hit a pile of deferred refreshes
        // (idle-time refresh is not modeled; see DESIGN.md).
        wasIdle_ = false;
        const Cycle now = nowCycle();
        for (std::size_t r = 0; r < ranks_.size(); ++r) {
            ranks_[r].refreshDue = std::max<Cycle>(
                ranks_[r].refreshDue,
                now + timing_.tREFI * (r + 1) / ranks_.size());
        }
    }
    (req.write ? writeQueue_ : readQueue_).push_back(std::move(req));
    rowHitMapValid_ = false;
    ticker_.arm();
    return true;
}

std::size_t
MemoryController::pending() const
{
    return readQueue_.size() + writeQueue_.size() + inflight_;
}

void
MemoryController::notifyDrain()
{
    for (auto &listener : drainListeners_)
        listener();
}

void
MemoryController::updateRowHitMap()
{
    if (rowHitMapValid_)
        return;
    // Only requests in the currently serviced queue can actually use
    // an open row; honoring hits from the other queue would let an
    // unservable request veto the precharge forever (deadlock).
    std::fill(openRowHasHit_.begin(), openRowHasHit_.end(), false);
    if (bankHasNonHit_.size() != banks_.size())
        bankHasNonHit_.assign(banks_.size(), false);
    else
        std::fill(bankHasNonHit_.begin(), bankHasNonHit_.end(), false);
    rowHitCount_ = 0;
    nonHitRequests_ = 0;
    const auto &queue = writeMode_ ? writeQueue_ : readQueue_;
    for (const auto &req : queue) {
        const unsigned idx = bankIndexOf(req.coord);
        const BankState &bs = banks_[idx];
        if (bs.open && bs.row == req.coord.ro) {
            if (!openRowHasHit_[idx]) {
                openRowHasHit_[idx] = true;
                ++rowHitCount_;
            }
        } else {
            ++nonHitRequests_;
            bankHasNonHit_[idx] = true;
        }
    }
    rowHitMapValid_ = true;
}

bool
MemoryController::anyRankColumnReady(Cycle now, bool write) const
{
    const Cycle lat = write ? timing_.CWL : timing_.CL;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        const RankState &rs = ranks_[r];
        if (rs.refreshPending || now < rs.colReady)
            continue;
        if (write ? now < rs.wrReady : now < rs.rdReady)
            continue;
        Cycle busNeeded = dataBusFree_;
        if (lastDataRank_ >= 0 &&
            static_cast<unsigned>(lastDataRank_) != r) {
            busNeeded += timing_.tRTRS;
        }
        if (now + lat < busNeeded)
            continue;
        return true;
    }
    return false;
}

bool
MemoryController::anyBankColumnReady(Cycle now, bool write) const
{
    const Cycle lat = write ? timing_.CWL : timing_.CL;
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        if (!openRowHasHit_[b])
            continue;
        const BankState &bs = banks_[b];
        if (now < bs.colReady)
            continue;
        const unsigned ra =
            static_cast<unsigned>(b) / geom_.banksPerRank();
        const RankState &rs = ranks_[ra];
        if (rs.refreshPending || now < rs.colReady)
            continue;
        if (write ? now < rs.wrReady : now < rs.rdReady)
            continue;
        const unsigned bg = (static_cast<unsigned>(b) %
                             geom_.banksPerRank()) /
                            geom_.banksPerGroup;
        const BankGroupState &bgs =
            bankGroups_[ra * geom_.bankGroups + bg];
        if (now < bgs.colReady || (!write && now < bgs.rdReady))
            continue;
        Cycle busNeeded = dataBusFree_;
        if (lastDataRank_ >= 0 &&
            static_cast<unsigned>(lastDataRank_) != ra) {
            busNeeded += timing_.tRTRS;
        }
        if (now + lat < busNeeded)
            continue;
        return true;
    }
    return false;
}

bool
MemoryController::anyBankActPreReady(Cycle now) const
{
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        if (!bankHasNonHit_[b])
            continue;
        const BankState &bs = banks_[b];
        if (bs.open) {
            // A non-hit request on an open bank is a row conflict: PRE
            // is legal unless the open row still has pending hits.
            if (!openRowHasHit_[b] && now >= bs.preReady)
                return true;
            continue;
        }
        const unsigned ra =
            static_cast<unsigned>(b) / geom_.banksPerRank();
        const RankState &rs = ranks_[ra];
        if (rs.refreshPending)
            continue;
        if (now < bs.actReady)
            continue;
        const unsigned bg = (static_cast<unsigned>(b) %
                             geom_.banksPerRank()) /
                            geom_.banksPerGroup;
        const BankGroupState &bgs =
            bankGroups_[ra * geom_.bankGroups + bg];
        if (now < bgs.actReady || now < rs.actReady)
            continue;
        const Cycle oldestAct = rs.fawRing[rs.fawIdx];
        if (oldestAct != 0 && now < oldestAct + timing_.tFAW)
            continue;
        return true;
    }
    return false;
}

bool
MemoryController::serviceRefresh(Cycle now)
{
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        RankState &rs = ranks_[r];
        if (!config_.refreshEnabled)
            continue;
        if (!rs.refreshPending && now >= rs.refreshDue)
            rs.refreshPending = true;
        if (!rs.refreshPending)
            continue;

        // All banks of the rank must be precharged before REF.
        bool allClosed = true;
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            BankState &bs = banks_[r * geom_.banksPerRank() + b];
            if (bs.open) {
                allClosed = false;
                if (now >= bs.preReady) {
                    bs.open = false;
                    bs.actReady =
                        std::max<Cycle>(bs.actReady, now + timing_.tRP);
                    rowHitMapValid_ = false;
                    ++stats_.counter("refresh_forced_pre");
                    if (commandListener_) {
                        mapping::DramCoord c;
                        c.ch = channelId_;
                        c.ra = static_cast<unsigned>(r);
                        c.bg = b / geom_.banksPerGroup;
                        c.bk = b % geom_.banksPerGroup;
                        c.ro = bs.row;
                        commandListener_(CommandRecord{
                            now, DramCommand::Pre, c});
                    }
                    return true; // one command this cycle
                }
            }
        }
        if (!allClosed)
            continue;

        // Issue REF.
        bool ready = true;
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            if (now < banks_[r * geom_.banksPerRank() + b].actReady)
                ready = false;
        }
        if (!ready)
            continue;
        for (unsigned b = 0; b < geom_.banksPerRank(); ++b) {
            banks_[r * geom_.banksPerRank() + b].actReady =
                now + timing_.tRFC;
        }
        rs.refreshDone = now + timing_.tRFC;
        rs.refreshDue += timing_.tREFI;
        rs.refreshPending = false;
        refreshBusyPs_ += timing_.cyclesToPs(timing_.tRFC);
        ++stats_.counter("refreshes");
        telemetry::Timeline &tl = telemetry::Timeline::global();
        if (tl.enabled()) {
            tl.span(timelineTrack_, "REF", timing_.cyclesToPs(now),
                    timing_.cyclesToPs(now + timing_.tRFC));
        }
        if (commandListener_) {
            mapping::DramCoord c;
            c.ch = channelId_;
            c.ra = static_cast<unsigned>(r);
            commandListener_(CommandRecord{now, DramCommand::Ref, c});
        }
        return true;
    }
    return false;
}

bool
MemoryController::tryIssueColumn(const MemRequest &req, Cycle now)
{
    const mapping::DramCoord &c = req.coord;
    BankState &bs = bank(c);
    if (!bs.open || bs.row != c.ro)
        return false;

    BankGroupState &bgs = bankGroup(c);
    RankState &rs = rank(c);
    // A rank draining for refresh accepts no new column commands, or
    // row hits would keep pushing the precharge (and the REF) out.
    if (rs.refreshPending)
        return false;
    if (now < bs.colReady || now < bgs.colReady || now < rs.colReady)
        return false;
    if (req.write) {
        if (now < rs.wrReady)
            return false;
    } else {
        if (now < rs.rdReady || now < bgs.rdReady)
            return false;
    }

    // Shared data bus: the burst must not overlap the previous one, and
    // switching driving rank costs tRTRS.
    const Cycle lat = req.write ? timing_.CWL : timing_.CL;
    Cycle busNeeded = dataBusFree_;
    if (lastDataRank_ >= 0 &&
        static_cast<unsigned>(lastDataRank_) != c.ra) {
        busNeeded += timing_.tRTRS;
    }
    if (now + lat < busNeeded)
        return false;
    return true;
}

bool
MemoryController::tryIssueActOrPre(const MemRequest &req, Cycle now)
{
    const mapping::DramCoord &c = req.coord;
    BankState &bs = bank(c);
    BankGroupState &bgs = bankGroup(c);
    RankState &rs = rank(c);

    if (bs.open) {
        // Row conflict: precharge, unless the open row still has
        // useful pending requests (preserve row hits).
        PIMMMU_ASSERT(bs.row != c.ro, "column path should have handled");
        if (openRowHasHit_[bankIndexOf(c)])
            return false;
        if (now < bs.preReady)
            return false;
        const unsigned closedRow = bs.row;
        bs.open = false;
        bs.actReady = std::max<Cycle>(bs.actReady, now + timing_.tRP);
        rowHitMapValid_ = false;
        ++stats_.counter("row_conflicts");
        ++stats_.counter("precharges");
        if (commandListener_) {
            mapping::DramCoord pc = c;
            pc.ro = closedRow;
            commandListener_(CommandRecord{now, DramCommand::Pre, pc});
        }
        return true;
    }

    // Activate. A rank draining for refresh accepts no new ACTs, or
    // the forced precharges would chase reopened rows forever.
    if (rs.refreshPending)
        return false;
    if (now < bs.actReady || now < bgs.actReady || now < rs.actReady)
        return false;
    // tFAW: at most four ACTs per rank in any tFAW window. A zero ring
    // entry means fewer than four ACTs have ever been issued.
    const Cycle oldestAct = rs.fawRing[rs.fawIdx];
    if (oldestAct != 0 && now < oldestAct + timing_.tFAW)
        return false;

    bs.open = true;
    bs.row = c.ro;
    rowHitMapValid_ = false;
    bs.colReady = now + timing_.tRCD;
    bs.preReady = std::max<Cycle>(bs.preReady, now + timing_.tRAS);
    bs.actReady = now + timing_.tRC;
    bgs.actReady = now + timing_.tRRD_L;
    rs.actReady = now + timing_.tRRD_S;
    rs.fawRing[rs.fawIdx] = now;
    rs.fawIdx = (rs.fawIdx + 1) % rs.fawRing.size();
    ++stats_.counter("activates");
    PIMMMU_TRACE_LOG(trace::Category::Dram, eq_.now(),
                     "ch" << channelId_ << " ACT " << c.str());
    if (commandListener_ && !testing::fault::fire("dram.drop_act_report"))
        commandListener_(CommandRecord{now, DramCommand::Act, c});
    return true;
}

void
MemoryController::finishColumn(MemRequest req, Cycle issue, bool write)
{
    const Cycle lat = write ? timing_.CWL : timing_.CL;
    const Cycle dataStart = issue + lat;
    const Cycle dataEnd = dataStart + timing_.tBL;

    dataBusFree_ = dataEnd;
    lastDataRank_ = static_cast<int>(req.coord.ra);
    busBusyPs_ += timing_.cyclesToPs(timing_.tBL);

    if (write) {
        bytesWritten_ += geom_.lineBytes;
        ++stats_.counter("writes");
    } else {
        bytesRead_ += geom_.lineBytes;
        ++stats_.counter("reads");
    }
    const double queueNs =
        static_cast<double>(eq_.now() - req.enqueuedAt) / 1e3;
    stats_.average("queue_latency_ns").sample(queueNs);
    stats_.histogram("queue_latency_ns", 0.0, 4000.0, 200)
        .sample(queueNs);

    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.span(timelineTrack_, write ? "WR" : "RD",
                timing_.cyclesToPs(dataStart),
                timing_.cyclesToPs(dataEnd));
    }

    ++inflight_;
    std::uint32_t slot;
    if (freeInflightSlots_.empty()) {
        slot = static_cast<std::uint32_t>(inflightReqs_.size());
        inflightReqs_.emplace_back();
    } else {
        slot = freeInflightSlots_.back();
        freeInflightSlots_.pop_back();
    }
    inflightReqs_[slot] = std::move(req);
    eq_.schedule(timing_.cyclesToPs(dataEnd), [this, slot] {
        MemRequest done = std::move(inflightReqs_[slot]);
        freeInflightSlots_.push_back(slot);
        --inflight_;
        if (done.onComplete)
            done.onComplete(done);
        notifyDrain();
    });
}

void
MemoryController::issueRead(std::deque<MemRequest>::iterator it, Cycle now)
{
    const mapping::DramCoord &c = it->coord;
    BankGroupState &bgs = bankGroup(c);
    RankState &rs = rank(c);
    BankState &bs = bank(c);

    bs.preReady = std::max<Cycle>(bs.preReady, now + timing_.tRTP);
    bgs.colReady = now + timing_.tCCD_L;
    rs.colReady = now + timing_.tCCD_S;
    // Read-to-write turnaround: the write burst must not collide with
    // this read burst on the bus plus one bubble cycle.
    rs.wrReady = std::max<Cycle>(
        rs.wrReady, now + timing_.CL + timing_.tBL + 2 - timing_.CWL);

    ++stats_.counter("row_hits");
    if (commandListener_)
        commandListener_(CommandRecord{now, DramCommand::Rd, c});
    finishColumn(std::move(*it), now, false);
    readQueue_.erase(it);
    rowHitMapValid_ = false;
}

void
MemoryController::issueWrite(std::deque<MemRequest>::iterator it,
                             Cycle now)
{
    const mapping::DramCoord &c = it->coord;
    BankGroupState &bgs = bankGroup(c);
    RankState &rs = rank(c);
    BankState &bs = bank(c);

    const Cycle dataEnd = now + timing_.CWL + timing_.tBL;
    bs.preReady = std::max<Cycle>(bs.preReady, dataEnd + timing_.tWR);
    bgs.colReady = now + timing_.tCCD_L;
    rs.colReady = now + timing_.tCCD_S;
    bgs.rdReady = std::max<Cycle>(bgs.rdReady, dataEnd + timing_.tWTR_L);
    rs.rdReady = std::max<Cycle>(rs.rdReady, dataEnd + timing_.tWTR_S);

    ++stats_.counter("row_hits");
    if (commandListener_)
        commandListener_(CommandRecord{now, DramCommand::Wr, c});
    finishColumn(std::move(*it), now, true);
    writeQueue_.erase(it);
    rowHitMapValid_ = false;
}

void
MemoryController::dumpState(std::ostream &os) const
{
    const Cycle now = nowCycle();
    os << "MC ch" << channelId_ << " @cycle " << now
       << " mode=" << (writeMode_ ? "W" : "R")
       << " rq=" << readQueue_.size() << " wq=" << writeQueue_.size()
       << " busFree=" << dataBusFree_ << "\n";
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        const BankState &bs = banks_[b];
        os << "  bank" << b << (bs.open ? " open row=" : " closed row=")
           << bs.row << " act>=" << bs.actReady << " pre>="
           << bs.preReady << " col>=" << bs.colReady
           << " hitPending=" << (openRowHasHit_[b] ? 1 : 0) << "\n";
    }
    auto dumpQueue = [&](const char *name,
                         const std::deque<MemRequest> &queue) {
        os << "  " << name << ":";
        for (const auto &req : queue) {
            os << " b" << bankIndexOf(req.coord) << ".r" << req.coord.ro
               << ".c" << req.coord.co;
        }
        os << "\n";
    };
    dumpQueue("reads", readQueue_);
    dumpQueue("writes", writeQueue_);
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        os << "  rank" << r << " refreshPending="
           << ranks_[r].refreshPending << " due=" << ranks_[r].refreshDue
           << " colS>=" << ranks_[r].colReady << " rd>="
           << ranks_[r].rdReady << " wr>=" << ranks_[r].wrReady << "\n";
    }
}

bool
MemoryController::tick()
{
    // tick() only runs as the ticker handler, so the ticker's cached
    // cycle index is valid — saves a 64-bit division per DRAM cycle.
    const Cycle now = ticker_.firingCycle();

    if (readQueue_.empty() && writeQueue_.empty()) {
        // Nothing to do: sleep. Refresh bookkeeping restarts on the
        // next enqueue.
        wasIdle_ = true;
        return false;
    }

    if (serviceRefresh(now))
        return true;

    // Write drain mode control.
    const bool prevMode = writeMode_;
    if (writeMode_) {
        if (writeQueue_.size() <= config_.writeLowWatermark &&
            !readQueue_.empty()) {
            writeMode_ = false;
        } else if (writeQueue_.empty()) {
            writeMode_ = false;
        }
    } else {
        // The write queue is filled by push_back and drained by
        // positional erase, so it stays sorted by enqueue time and
        // front() is always the oldest write for the aging check.
        const bool writeStarving =
            !writeQueue_.empty() &&
            eq_.now() >= writeQueue_.front().enqueuedAt +
                             timing_.cyclesToPs(
                                 config_.writeStarvationCycles);
        if (writeQueue_.size() >= config_.writeHighWatermark ||
            readQueue_.empty() || writeStarving) {
            writeMode_ = !writeQueue_.empty();
            if (writeStarving)
                ++stats_.counter("write_starvation_drains");
        }
    }
    if (writeMode_ != prevMode)
        rowHitMapValid_ = false;

    auto &queue = writeMode_ ? writeQueue_ : readQueue_;
    const bool isWrite = writeMode_;

    const std::size_t horizon =
        config_.policy == SchedPolicy::Fcfs ? 1 : queue.size();

    // Pass 1 (FR): oldest row-hit whose column command is legal now.
    // The scan can only succeed when some queued request targets an
    // open row AND some rank clears the rank-level column gates; both
    // prefilters are exact, so skipping changes no issue decision —
    // it just avoids an O(queue) walk on the (common) stalled cycles.
    updateRowHitMap();
    if (rowHitCount_ > 0 && anyRankColumnReady(now, isWrite) &&
        anyBankColumnReady(now, isWrite)) {
        for (std::size_t i = 0; i < horizon; ++i) {
            auto it = queue.begin() + static_cast<std::ptrdiff_t>(i);
            if (tryIssueColumn(*it, now)) {
                if (isWrite)
                    issueWrite(it, now);
                else
                    issueRead(it, now);
                return true;
            }
        }
    }

    // Pass 2 (FCFS): oldest request that needs ACT or PRE. When every
    // queued request is a row hit there is nothing to activate or
    // precharge — and when no targeted bank clears the ACT/PRE gates
    // the scan must come up empty — so it is skipped (exact).
    if (nonHitRequests_ > 0 && anyBankActPreReady(now)) {
        for (std::size_t i = 0; i < horizon; ++i) {
            auto it = queue.begin() + static_cast<std::ptrdiff_t>(i);
            BankState &bs = bank(it->coord);
            if (bs.open && bs.row == it->coord.ro)
                continue; // waiting on column timing only
            if (tryIssueActOrPre(*it, now))
                return true;
        }
    }

    if (!idleCycles_) {
        idleCycles_ = &stats_.counter("idle_cycles");
        stallRefresh_ = &stats_.counter("stall_refresh_cycles");
        stallBankGroup_ = &stats_.counter("stall_bank_group_cycles");
        stallBus_ = &stats_.counter("stall_bus_cycles");
        stallOther_ = &stats_.counter("stall_other_cycles");
    }
    ++*idleCycles_;
    classifyStall(now);
    return true;
}

void
MemoryController::classifyStall(Cycle now)
{
    // Why did a non-empty queue issue nothing this cycle? Attribute
    // the idle cycle to the oldest blocked request: mirror the
    // issue-path checks in queue (age) order and charge the first
    // definite blocker found — refresh drain, bank-group conflict
    // (tCCD_L / tWTR_L / tRRD_L), or shared data bus. Requests waiting
    // on intra-bank timing (tRCD, tRP, tFAW, rank-level turnaround, or
    // a row held open for someone else) classify as "other" and the
    // scan moves on. This runs every idle DRAM cycle, so it stops at
    // the first verdict instead of sweeping the whole queue.
    // Quantifies the bus-utilization gap flagged in ROADMAP.
    const auto &queue = writeMode_ ? writeQueue_ : readQueue_;
    for (const auto &req : queue) {
        const mapping::DramCoord &c = req.coord;
        const RankState &rs = ranks_[c.ra];
        if (rs.refreshPending || now < rs.refreshDone) {
            ++*stallRefresh_;
            return;
        }
        const BankState &bs = banks_[bankIndexOf(c)];
        const BankGroupState &bgs =
            bankGroups_[c.ra * geom_.bankGroups + c.bg];
        if (bs.open && bs.row == c.ro) {
            if (now < bs.colReady)
                continue; // tRCD: other
            if (now < bgs.colReady ||
                (!req.write && now < bgs.rdReady)) {
                ++*stallBankGroup_;
                return;
            }
            if (now < rs.colReady ||
                (req.write ? now < rs.wrReady : now < rs.rdReady))
                continue; // rank-level timing: other
            const Cycle lat = req.write ? timing_.CWL : timing_.CL;
            Cycle busNeeded = dataBusFree_;
            if (lastDataRank_ >= 0 &&
                static_cast<unsigned>(lastDataRank_) != c.ra) {
                busNeeded += timing_.tRTRS;
            }
            if (now + lat < busNeeded) {
                ++*stallBus_;
                return;
            }
        } else if (!bs.open) {
            if (now >= bs.actReady && now < bgs.actReady) {
                ++*stallBankGroup_; // tRRD_L is the binding constraint
                return;
            }
        }
        // Row conflicts held open for other requests, tRP, tRRD_S and
        // tFAW all land in "other".
    }
    ++*stallOther_;
}

} // namespace dram
} // namespace pimmmu

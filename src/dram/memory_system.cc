#include "dram/memory_system.hh"

namespace pimmmu {
namespace dram {

MemorySystem::MemorySystem(EventQueue &eq, const mapping::SystemMap &map,
                           const TimingParams &dramTiming,
                           const TimingParams &pimTiming,
                           ControllerConfig config)
    : eq_(eq), map_(map)
{
    const auto &dramGeom = map.dramMapper().geometry();
    const auto &pimGeom = map.pimMapper().geometry();
    dramControllers_.reserve(dramGeom.channels);
    for (unsigned ch = 0; ch < dramGeom.channels; ++ch) {
        dramControllers_.push_back(std::make_unique<MemoryController>(
            eq, dramTiming, dramGeom, ch, config,
            "dram.ch" + std::to_string(ch)));
    }
    pimControllers_.reserve(pimGeom.channels);
    for (unsigned ch = 0; ch < pimGeom.channels; ++ch) {
        pimControllers_.push_back(std::make_unique<MemoryController>(
            eq, pimTiming, pimGeom, ch, config,
            "pim.ch" + std::to_string(ch)));
    }
}

bool
MemorySystem::enqueue(MemRequest req)
{
    req.paddr = toPhysical(req.paddr);
    const mapping::MappedTarget target = map_.map(req.paddr);
    req.space = target.space;
    req.coord = target.coord;
    auto &controllers = target.space == mapping::MemSpace::Dram
                            ? dramControllers_
                            : pimControllers_;
    return controllers[target.coord.ch]->enqueue(std::move(req));
}

bool
MemorySystem::canAccept(Addr addr, bool write) const
{
    const mapping::MappedTarget target = map_.map(toPhysical(addr));
    const auto &controllers = target.space == mapping::MemSpace::Dram
                                  ? dramControllers_
                                  : pimControllers_;
    return controllers[target.coord.ch]->canAccept(write);
}

void
MemorySystem::onDrain(std::function<void()> listener)
{
    for (auto &mc : dramControllers_)
        mc->onDrain(listener);
    for (auto &mc : pimControllers_)
        mc->onDrain(listener);
}

std::size_t
MemorySystem::pending() const
{
    std::size_t total = 0;
    for (const auto &mc : dramControllers_)
        total += mc->pending();
    for (const auto &mc : pimControllers_)
        total += mc->pending();
    return total;
}

std::uint64_t
MemorySystem::dramBytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &mc : dramControllers_)
        total += mc->bytesMoved();
    return total;
}

std::uint64_t
MemorySystem::pimBytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &mc : pimControllers_)
        total += mc->bytesMoved();
    return total;
}

Tick
MemorySystem::refreshBusyPsTotal() const
{
    Tick total = 0;
    for (const auto &mc : dramControllers_)
        total += mc->refreshBusyPs();
    for (const auto &mc : pimControllers_)
        total += mc->refreshBusyPs();
    return total;
}

double
MemorySystem::dramPeakBandwidth() const
{
    if (dramControllers_.empty())
        return 0.0;
    return dramControllers_.size() *
           dramControllers_[0]->timing().peakBandwidth(
               dramControllers_[0]->geometry().lineBytes);
}

double
MemorySystem::pimPeakBandwidth() const
{
    if (pimControllers_.empty())
        return 0.0;
    return pimControllers_.size() *
           pimControllers_[0]->timing().peakBandwidth(
               pimControllers_[0]->geometry().lineBytes);
}

} // namespace dram
} // namespace pimmmu

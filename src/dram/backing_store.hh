/**
 * @file
 * Sparse functional byte store for the DRAM physical address space.
 * Pages are allocated on first touch; untouched bytes read as zero.
 */

#ifndef PIMMMU_DRAM_BACKING_STORE_HH
#define PIMMMU_DRAM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace pimmmu {
namespace dram {

/** Page-granular sparse memory image. */
class BackingStore
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    void write(Addr addr, const void *src, std::size_t bytes);
    void read(Addr addr, void *dst, std::size_t bytes) const;

    std::uint8_t
    readByte(Addr addr) const
    {
        std::uint8_t v = 0;
        read(addr, &v, 1);
        return v;
    }

    void
    writeByte(Addr addr, std::uint8_t v)
    {
        write(addr, &v, 1);
    }

    std::size_t allocatedPages() const { return pages_.size(); }

    /**
     * Visit every non-zero page in ascending page-id order (the same
     * canonical order fingerprint() hashes), for checkpointing. The
     * callback receives the page id (byte address / kPageBytes) and a
     * pointer to its kPageBytes of data. All-zero pages are skipped —
     * a restored store reads identically (untouched bytes are zero)
     * and fingerprints identically.
     */
    void forEachNonZeroPage(
        const std::function<void(Addr pageId,
                                 const std::uint8_t *data)> &fn) const;

    /** Install @p data (kPageBytes) at @p pageId (checkpoint load). */
    void restorePage(Addr pageId, const std::uint8_t *data);

    /** Drop every page (restore starts from an empty image). */
    void clear() { pages_.clear(); }

    /**
     * Deterministic FNV-1a digest of the memory image: pages are
     * hashed in ascending address order and all-zero pages are skipped,
     * so the digest depends only on visible byte contents — never on
     * which plane (or allocation pattern) produced them.
     */
    std::uint64_t fingerprint(std::uint64_t seed =
                                  0xcbf29ce484222325ull) const;

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    std::uint8_t *pageFor(Addr addr, bool allocate) const;

    mutable std::unordered_map<Addr, Page> pages_;
};

} // namespace dram
} // namespace pimmmu

#endif // PIMMMU_DRAM_BACKING_STORE_HH

/**
 * @file
 * Open-loop load generation for the serving layer.
 *
 * An open-loop generator draws arrival times from a Poisson process
 * and submits on schedule regardless of how the server is coping —
 * exactly the regime where closed-loop benchmarks hide overload
 * collapse (the coordinated-omission trap). The plan is materialised
 * up front from a seeded pimmmu::Rng so a run is reproducible and a
 * sweep job can be replayed request-for-request on the direct
 * physical path for the identity gate.
 */

#ifndef PIMMMU_SERVING_LOAD_GEN_HH
#define PIMMMU_SERVING_LOAD_GEN_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace pimmmu {
namespace serving {

/** One planned submission. */
struct Arrival
{
    Tick atPs = 0;        //!< absolute submission time
    std::size_t tenant = 0;
    std::uint64_t seq = 0; //!< index in the plan (request tag)
};

/**
 * Draw a Poisson arrival plan: exponential inter-arrival gaps at
 * @p ratePerSec, tenants picked by @p tenantWeights (relative,
 * need not sum to 1), until @p horizonPs is reached or @p maxCount
 * arrivals are planned.
 */
inline std::vector<Arrival>
poissonPlan(Rng &rng, double ratePerSec, Tick horizonPs,
            const std::vector<double> &tenantWeights,
            std::size_t maxCount = ~std::size_t{0})
{
    std::vector<Arrival> plan;
    if (ratePerSec <= 0.0 || tenantWeights.empty())
        return plan;
    double weightSum = 0.0;
    for (double w : tenantWeights)
        weightSum += w;
    if (weightSum <= 0.0)
        return plan;

    double tPs = 0.0;
    std::uint64_t seq = 0;
    while (plan.size() < maxCount) {
        // Exponential gap; clamp u away from 0 so -ln(u) is finite.
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        tPs += -std::log(u) / ratePerSec * 1e12;
        if (tPs >= static_cast<double>(horizonPs))
            break;

        double pick = rng.uniform() * weightSum;
        std::size_t tenant = 0;
        for (; tenant + 1 < tenantWeights.size(); ++tenant) {
            if (pick < tenantWeights[tenant])
                break;
            pick -= tenantWeights[tenant];
        }
        plan.push_back(Arrival{static_cast<Tick>(tPs), tenant, seq++});
    }
    return plan;
}

} // namespace serving
} // namespace pimmmu

#endif // PIMMMU_SERVING_LOAD_GEN_HH

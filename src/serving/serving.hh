/**
 * @file
 * The multi-tenant serving layer: a long-running request loop in front
 * of the PIM-MMU transfer path.
 *
 * Tenants submit transfer jobs by virtual address through their
 * mmu::TenantContext. The server applies admission control before any
 * work is queued — a per-tenant byte-denominated token bucket
 * (QuotaExceeded), then a global queue/inflight capacity check
 * (Overloaded) — so overload is rejected at the front door instead of
 * growing an unbounded backlog. Admitted requests wait in per-tenant
 * FIFO queues and a byte-based weighted deficit-round-robin scheduler
 * batches them into the DCE descriptor ring, keeping the ring topped
 * up to a target depth off the engine's ring-observer hook (no
 * polling).
 *
 * Every request carries an absolute deadline. A watchdog event fires
 * at that instant: a still-queued request is removed and accounted
 * Expired; an in-flight request is accounted Expired immediately and
 * its eventual engine completion is discarded — the descriptor itself
 * is never yanked out of the DCE, so expiry can never trip the
 * engine's stagnation-resync machinery or leak dce.* accounting.
 *
 * Degradation under faults is deliberate, not emergent: when the
 * resilience manager masks ranks/channels/DPUs the server scales its
 * admission capacity with the healthy-DPU fraction and sheds queued
 * work from the lowest-priority tenants first; faulted descriptors
 * are re-driven only while both the per-request retry count and a
 * global resilience::RetryBudget allow, so brownouts degrade into
 * shed load instead of a retry storm. The server never corrupts and
 * never silently drops: every submitted request terminates in exactly
 * one of Delivered / Rejected / Expired, and checkConservation()
 * proves the ledger balances.
 */

#ifndef PIMMMU_SERVING_SERVING_HH
#define PIMMMU_SERVING_SERVING_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "core/pim_mmu_op.hh"
#include "mmu/tenant_context.hh"
#include "resilience/retry_budget.hh"
#include "resilience/status.hh"

namespace pimmmu {

namespace sim {
class System;
}

namespace serving {

/** Server-side tenant handle (dense index, not an mmu::TenantId). */
using TenantHandle = std::size_t;

/** How a request's life ended. */
enum class Outcome
{
    Pending,   //!< not terminal yet (internal)
    Delivered, //!< engine completed it, payload verified upstream
    Rejected,  //!< admission reject, shed, or failed after retries
    Expired    //!< deadline passed before delivery
};

const char *outcomeName(Outcome o);

/** Admission/scheduling knobs for one tenant. */
struct TenantConfig
{
    std::string name;

    /** Token-bucket quota: sustained bytes/sec and burst bytes.
     *  burst == 0 disables the quota (unlimited). */
    double quotaBytesPerSec = 0.0;
    double quotaBurstBytes = 0.0;

    /** Weighted-fair share in the deficit-round-robin scheduler. */
    unsigned weight = 1;

    /** Shed order under capacity loss: lower priority sheds first. */
    unsigned priority = 0;
};

/** One transfer job, addressed in the tenant's virtual space. */
struct Request
{
    core::XferDirection dir = core::XferDirection::DramToPim;
    std::uint64_t sizePerPim = 0;
    std::vector<Addr> dramVa;    //!< per-DPU VA in a DRAM-space VMA
    std::vector<unsigned> dpus;
    Addr pimHeapVa = 0;          //!< VA offset in a PIM-space VMA

    /** Absolute simulated-time deadline; kTickMax = none. */
    Tick deadlinePs = kTickMax;

    /** Caller cookie, echoed in the Result. */
    std::uint64_t tag = 0;
};

/** Terminal record handed to the submitter's completion callback. */
struct Result
{
    Outcome outcome = Outcome::Pending;
    resilience::Status status;
    TenantHandle tenant = 0;
    std::uint64_t tag = 0;
    std::uint64_t bytes = 0;
    Tick submitPs = 0;
    Tick endPs = 0;
    unsigned retries = 0;
};

struct ServerConfig
{
    /** Global admission cap on queued (not yet issued) requests. */
    std::size_t maxQueued = 64;

    /** Server-issued descriptors allowed in the DCE ring at once. */
    std::size_t maxInflight = 4;

    /** Retry attempts allowed per faulted request. */
    unsigned retriesPerRequest = 2;

    /** Global retry budget (tokens, tokens/sec); burst 0 = unlimited.
     *  Bounds recovery-injected load across all tenants. */
    double retryBurst = 0.0;
    double retryPerSecond = 0.0;

    /** Wait before re-driving a faulted request, so a brownout (a
     *  masked rank mid-repair) is ridden out instead of burning the
     *  whole retry budget in one instant. */
    Tick retryBackoffPs = 2 * kPsPerUs;

    /** DRR quantum: bytes of credit per weight unit per round. */
    std::uint64_t quantumBytes = 64 * 1024;

    /** Scale admission capacity with the healthy-DPU fraction and
     *  shed queued low-priority work when capacity drops. */
    bool shedOnCapacityLoss = true;
};

class Server
{
  public:
    using DoneFn = std::function<void(const Result &)>;

    Server(sim::System &sys, ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Register a tenant; stands up its MMU address space. */
    TenantHandle addTenant(const TenantConfig &cfg);

    /** The tenant's address-space handle, for mapping VA windows. */
    mmu::TenantContext &tenantContext(TenantHandle t);

    const TenantConfig &tenantConfig(TenantHandle t) const;

    /**
     * Submit a job. The returned status is the admission verdict:
     * ok means admitted (@p done will fire exactly once with the
     * terminal Result); a failure means the request was rejected or
     * expired at the door (@p done has already fired before submit
     * returned). Either way the request is on the ledger.
     */
    resilience::Status submit(TenantHandle t, Request req, DoneFn done);

    /** No queued, in-flight, or retry-parked work. */
    bool idle() const
    {
        return queuedTotal_ == 0 && inflight_ == 0 &&
               retryParked_ == 0;
    }

    /** Run the simulator until the server is idle (bounded). */
    bool drain(Tick maxPs = kTickMax);

    /** Requests on the ledger but not yet terminal. */
    std::size_t outstanding() const { return pendingCount_; }

    /** Admission capacity currently in force (shrinks when the
     *  resilience manager masks capacity away). */
    std::size_t effectiveQueueCap() const;

    struct Totals
    {
        std::uint64_t submitted = 0;
        std::uint64_t delivered = 0;
        std::uint64_t rejected = 0; //!< all rejects incl. shed
        std::uint64_t expired = 0;
        std::uint64_t bytesSubmitted = 0;
        std::uint64_t bytesAdmitted = 0;
        std::uint64_t bytesDelivered = 0;
    };

    const Totals &totals() const { return totals_; }

    /**
     * The ledger invariant: submitted == delivered + rejected +
     * expired + outstanding(). @return true when it balances; on
     * failure @p why (optional) gets a diagnostic.
     */
    bool checkConservation(std::string *why = nullptr) const;

    stats::Group &stats() { return stats_; }

    /**
     * Checkpoint the server: tenant configs + address-space cursors +
     * quota buckets + DRR state, the global retry budget, the ledger
     * totals and stats. Only valid when idle() with an empty ledger —
     * queued/in-flight requests hold completion closures, which cannot
     * be serialized; snapshots are taken at quiesced points.
     */
    void saveState(serialize::ByteSink &out) const;

    /**
     * Inverse of saveState, for a freshly constructed Server (no
     * addTenant calls) over a System whose MMU has already been
     * restored: tenants re-attach to their restored address spaces
     * instead of standing up new ones.
     * @return false on a malformed payload.
     */
    bool restoreState(serialize::ByteSource &in);

  private:
    struct Req
    {
        Request request;
        TenantHandle tenant = 0;
        DoneFn done;
        std::uint64_t bytes = 0;
        Tick submitPs = 0;
        unsigned attempts = 0;
        std::uint64_t attribId = 0;
        Outcome outcome = Outcome::Pending;
        bool inflight = false;
        /** Deadline fired while the descriptor was in the engine:
         *  already accounted Expired, completion is discarded. */
        bool expiredInflight = false;
    };

    struct Tenant
    {
        TenantConfig cfg;
        mmu::TenantContext ctx;
        resilience::RetryBudget quota;
        std::deque<std::uint64_t> queue; //!< request ids, FIFO
        double deficit = 0.0;
    };

    Req *find(std::uint64_t id);
    void finalize(std::uint64_t id, Outcome outcome,
                  resilience::Status status);
    void onDeadline(std::uint64_t id);
    void onEngineDone(std::uint64_t id,
                      const resilience::Status &status);
    void maybeRetry(std::uint64_t id,
                    const resilience::Status &status);
    void requeueRetry(std::uint64_t id);
    void pump();
    bool issue(std::uint64_t id);
    void shedToCapacity();
    double healthyFraction() const;
    Tick now() const;

    sim::System &sys_;
    ServerConfig cfg_;
    std::vector<Tenant> tenants_;
    std::map<std::uint64_t, Req> requests_; //!< non-terminal only
    resilience::RetryBudget retryBudget_;
    std::uint64_t nextId_ = 1;
    std::size_t queuedTotal_ = 0;
    std::size_t inflight_ = 0;
    /** Requests on the ledger and still Pending. */
    std::size_t pendingCount_ = 0;
    /** Expired-in-flight tombstones awaiting their engine answer. */
    std::size_t tombstones_ = 0;
    /** Requests sitting out a retry backoff. */
    std::size_t retryParked_ = 0;
    std::size_t drrCursor_ = 0;
    bool inPump_ = false;
    Totals totals_;
    stats::Group stats_;
};

} // namespace serving
} // namespace pimmmu

#endif // PIMMMU_SERVING_SERVING_HH

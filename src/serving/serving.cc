#include "serving/serving.hh"

#include <cassert>
#include <string>

#include "common/event_queue.hh"
#include "common/stats_serialize.hh"
#include "core/dce.hh"
#include "core/pim_mmu_runtime.hh"
#include "resilience/manager.hh"
#include "sim/system.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"

namespace pimmmu {
namespace serving {

namespace attribution = telemetry::attribution;

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Pending:
        return "pending";
      case Outcome::Delivered:
        return "delivered";
      case Outcome::Rejected:
        return "rejected";
      case Outcome::Expired:
        return "expired";
    }
    return "unknown";
}

Server::Server(sim::System &sys, ServerConfig cfg)
    : sys_(sys), cfg_(cfg),
      retryBudget_(cfg.retryBurst, cfg.retryPerSecond),
      stats_("serving")
{
    if (cfg_.maxInflight == 0)
        cfg_.maxInflight = 1;
    if (cfg_.maxQueued == 0)
        cfg_.maxQueued = 1;
    if (cfg_.quantumBytes == 0)
        cfg_.quantumBytes = 1;
    // Top the ring back up on every downward depth edge instead of
    // polling: the engine's ring observer is the only wakeup the
    // scheduler needs beyond submit() itself.
    sys_.dce().setRingObserver([this](std::size_t) {
        if (!inPump_)
            pump();
    });
    telemetry::StatsRegistry::global().add(stats_);
}

Server::~Server()
{
    sys_.dce().setRingObserver(nullptr);
    telemetry::StatsRegistry::global().remove(stats_);
}

TenantHandle
Server::addTenant(const TenantConfig &cfg)
{
    Tenant t;
    t.cfg = cfg;
    t.ctx = mmu::TenantContext(sys_.mmu());
    t.quota = resilience::RetryBudget(cfg.quotaBurstBytes,
                                      cfg.quotaBytesPerSec);
    if (t.cfg.weight == 0)
        t.cfg.weight = 1;
    tenants_.push_back(std::move(t));
    return tenants_.size() - 1;
}

mmu::TenantContext &
Server::tenantContext(TenantHandle t)
{
    assert(t < tenants_.size());
    return tenants_[t].ctx;
}

const TenantConfig &
Server::tenantConfig(TenantHandle t) const
{
    assert(t < tenants_.size());
    return tenants_[t].cfg;
}

Tick
Server::now() const
{
    return sys_.eq().now();
}

double
Server::healthyFraction() const
{
    const resilience::Manager *res = sys_.resilienceManager();
    if (!res)
        return 1.0;
    const auto &dom = res->domains();
    const unsigned total = dom.numBanks * dom.chipsPerRank;
    if (total == 0)
        return 1.0;
    return static_cast<double>(res->healthyDpus()) / total;
}

std::size_t
Server::effectiveQueueCap() const
{
    if (!cfg_.shedOnCapacityLoss)
        return cfg_.maxQueued;
    const double frac = healthyFraction();
    auto cap = static_cast<std::size_t>(
        static_cast<double>(cfg_.maxQueued) * frac);
    return cap > 0 ? cap : 1;
}

Server::Req *
Server::find(std::uint64_t id)
{
    auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

resilience::Status
Server::submit(TenantHandle t, Request req, DoneFn done)
{
    assert(t < tenants_.size());
    Tenant &tenant = tenants_[t];
    const Tick at = now();
    const std::uint64_t bytes =
        req.sizePerPim * static_cast<std::uint64_t>(req.dpus.size());

    ++stats_.counter("submitted");
    stats_.counter("bytes_submitted") += bytes;
    ++totals_.submitted;
    totals_.bytesSubmitted += bytes;

    const std::uint64_t id = nextId_++;
    Req r;
    r.request = std::move(req);
    r.tenant = t;
    r.done = std::move(done);
    r.bytes = bytes;
    r.submitPs = at;

    auto rejectAtDoor = [&](Outcome outcome, resilience::Status st) {
        requests_.emplace(id, std::move(r));
        ++pendingCount_;
        finalize(id, outcome, st);
        return st;
    };

    // Admission, in deadline -> quota -> capacity order so each
    // rejection carries the most specific reason.
    if (r.request.deadlinePs <= at) {
        ++stats_.counter("rejected_deadline_at_door");
        return rejectAtDoor(
            Outcome::Expired,
            resilience::Status::failure(
                resilience::ErrorCode::DeadlineExceeded,
                "deadline already passed at submission"));
    }
    if (!tenant.quota.tryAcquire(at, static_cast<double>(bytes))) {
        ++stats_.counter("rejected_quota");
        return rejectAtDoor(
            Outcome::Rejected,
            resilience::Status::failure(
                resilience::ErrorCode::QuotaExceeded,
                "tenant '" + tenant.cfg.name +
                    "' byte quota exhausted"));
    }
    if (queuedTotal_ >= effectiveQueueCap()) {
        ++stats_.counter("rejected_overload");
        return rejectAtDoor(
            Outcome::Rejected,
            resilience::Status::failure(
                resilience::ErrorCode::Overloaded,
                "admission queue at capacity (" +
                    std::to_string(queuedTotal_) + " queued, cap " +
                    std::to_string(effectiveQueueCap()) + ")"));
    }

    // Admitted.
    ++stats_.counter("admitted");
    stats_.counter("bytes_admitted") += bytes;
    totals_.bytesAdmitted += bytes;
    auto &rec = attribution::Recorder::global();
    r.attribId = rec.open(attribution::Kind::Transfer, at,
                          attribution::Stage::ServeQueue,
                          r.request.dpus.empty() ? 0
                                                 : r.request.dpus[0],
                          bytes);

    const Tick deadline = r.request.deadlinePs;
    requests_.emplace(id, std::move(r));
    ++pendingCount_;
    tenant.queue.push_back(id);
    ++queuedTotal_;

    if (deadline != kTickMax)
        sys_.eq().schedule(deadline,
                           [this, id] { onDeadline(id); });

    pump();
    return resilience::Status{};
}

void
Server::finalize(std::uint64_t id, Outcome outcome,
                 resilience::Status status)
{
    auto it = requests_.find(id);
    assert(it != requests_.end());
    Req &r = it->second;
    assert(r.outcome == Outcome::Pending &&
           "request must terminate exactly once");
    r.outcome = outcome;

    const Tick at = now();
    Result result;
    result.outcome = outcome;
    result.status = std::move(status);
    result.tenant = r.tenant;
    result.tag = r.request.tag;
    result.bytes = r.bytes;
    result.submitPs = r.submitPs;
    result.endPs = at;
    result.retries = r.attempts > 0 ? r.attempts - 1 : 0;

    const double latencyUs =
        static_cast<double>(at - r.submitPs) / kPsPerUs;
    switch (outcome) {
      case Outcome::Delivered:
        ++stats_.counter("delivered");
        stats_.counter("bytes_delivered") += r.bytes;
        stats_.histogram("latency_us", 0.0, 2000.0, 4000)
            .sample(latencyUs);
        ++totals_.delivered;
        totals_.bytesDelivered += r.bytes;
        break;
      case Outcome::Rejected:
        ++stats_.counter("rejected");
        ++totals_.rejected;
        break;
      case Outcome::Expired:
        ++stats_.counter("expired");
        stats_.histogram("expired_wait_us", 0.0, 2000.0, 4000)
            .sample(latencyUs);
        ++totals_.expired;
        break;
      case Outcome::Pending:
        assert(false && "finalize with Pending");
        break;
    }

    if (r.attribId)
        attribution::Recorder::global().close(
            r.attribId, at, outcome != Outcome::Delivered);

    DoneFn done = std::move(r.done);
    --pendingCount_;
    // An expired-in-flight request keeps a tombstone so the engine
    // completion can be told apart from an unknown id; everything
    // else leaves the ledger via the totals.
    if (r.inflight) {
        r.expiredInflight = true;
        ++tombstones_;
    } else {
        requests_.erase(it);
    }

    if (done)
        done(result);
}

void
Server::onDeadline(std::uint64_t id)
{
    Req *r = find(id);
    if (!r || r->outcome != Outcome::Pending)
        return; // already terminal

    const char *where = "awaiting retry";
    if (r->inflight) {
        // In the engine: account the expiry now, let the descriptor
        // run to completion untouched (cancelling mid-descriptor
        // would fight the DCE watchdog), and discard the completion
        // when it arrives.
        where = "in flight";
        ++stats_.counter("expired_inflight");
    } else {
        // Queued: pull it out of its tenant's FIFO. Not finding it
        // there means the request is parked in a retry backoff; the
        // backoff event checks the outcome and drops it.
        Tenant &tenant = tenants_[r->tenant];
        bool queued = false;
        for (auto it = tenant.queue.begin();
             it != tenant.queue.end(); ++it) {
            if (*it == id) {
                tenant.queue.erase(it);
                queued = true;
                break;
            }
        }
        if (queued) {
            --queuedTotal_;
            where = "queued";
            ++stats_.counter("expired_queued");
        } else {
            ++stats_.counter("expired_retry_wait");
        }
    }
    finalize(id, Outcome::Expired,
             resilience::Status::failure(
                 resilience::ErrorCode::DeadlineExceeded,
                 std::string("deadline passed while ") + where));
}

void
Server::onEngineDone(std::uint64_t id,
                     const resilience::Status &status)
{
    --inflight_;
    auto it = requests_.find(id);
    if (it == requests_.end()) {
        pump();
        return; // stale completion of an erased request (shouldn't
                // happen, but never crash the loop)
    }
    Req &r = it->second;
    r.inflight = false;
    if (r.expiredInflight) {
        // Already accounted Expired at the deadline; the engine's
        // late answer only releases the ring slot.
        ++stats_.counter("late_completions");
        --tombstones_;
        requests_.erase(it);
        pump();
        return;
    }
    if (status.ok()) {
        finalize(id, Outcome::Delivered, status);
    } else {
        ++stats_.counter("engine_failures");
        maybeRetry(id, status);
    }
    pump();
}

void
Server::maybeRetry(std::uint64_t id, const resilience::Status &status)
{
    Req *r = find(id);
    assert(r);
    if (r->attempts <= cfg_.retriesPerRequest &&
        retryBudget_.tryAcquire(now())) {
        ++stats_.counter("retries");
        if (r->attribId) {
            auto &rec = attribution::Recorder::global();
            rec.noteRetry(r->attribId);
            rec.enterStage(r->attribId, attribution::Stage::Retry,
                           now());
        }
        ++retryParked_;
        if (cfg_.retryBackoffPs == 0) {
            requeueRetry(id);
        } else {
            sys_.eq().scheduleAfter(cfg_.retryBackoffPs,
                                    [this, id] {
                                        requeueRetry(id);
                                    });
        }
        return;
    }
    ++stats_.counter(r->attempts > cfg_.retriesPerRequest
                         ? "rejected_retries_exhausted"
                         : "rejected_retry_budget");
    finalize(id, Outcome::Rejected, status);
}

void
Server::requeueRetry(std::uint64_t id)
{
    --retryParked_;
    Req *r = find(id);
    if (!r || r->outcome != Outcome::Pending)
        return; // expired (or otherwise finalized) during backoff
    // Back to the head of its tenant's queue: a retried request
    // keeps its place ahead of younger work.
    tenants_[r->tenant].queue.push_front(id);
    ++queuedTotal_;
    if (r->attribId)
        attribution::Recorder::global().enterStage(
            r->attribId, attribution::Stage::ServeQueue, now());
    pump();
}

bool
Server::issue(std::uint64_t id)
{
    Req *r = find(id);
    assert(r && !r->inflight);
    Tenant &tenant = tenants_[r->tenant];

    core::PimMmuOp op;
    op.type = r->request.dir;
    op.sizePerPim = r->request.sizePerPim;
    op.dramAddrArr = r->request.dramVa;
    op.pimIdArr = r->request.dpus;
    op.pimBaseHeapPtr = r->request.pimHeapVa;
    op.tenant = tenant.ctx.id();

    ++r->attempts;
    if (r->attribId)
        attribution::Recorder::global().enterStage(
            r->attribId, attribution::Stage::Preprocess, now());

    // Mark in-flight before handing the op over: in the fast-forward
    // plane transferChecked completes synchronously, so onEngineDone
    // (which decrements inflight_ and may erase the request) runs
    // before it returns — marking afterwards would underflow the
    // counter and write through a dangling pointer.
    r->inflight = true;
    ++inflight_;
    const resilience::Status st = sys_.pimMmu().transferChecked(
        op, [this, id](const resilience::Status &s) {
            onEngineDone(id, s);
        });
    if (!st.ok()) {
        // Synchronous rejection: translation fault, malformed
        // descriptor, or no healthy targets. The completion callback
        // never fires for these, so unwind the in-flight mark and
        // take the same recovery path as an engine failure, minus the
        // ring round-trip.
        r = find(id);
        assert(r && "synchronously rejected request left the ledger");
        r->inflight = false;
        --inflight_;
        ++stats_.counter("issue_rejects");
        maybeRetry(id, st);
        return false;
    }
    ++stats_.counter("issued");
    return true;
}

void
Server::shedToCapacity()
{
    const std::size_t cap = effectiveQueueCap();
    while (queuedTotal_ > cap) {
        // Victim: the youngest queued request of the lowest-priority
        // tenant with queued work.
        Tenant *victim = nullptr;
        for (Tenant &t : tenants_) {
            if (t.queue.empty())
                continue;
            if (!victim || t.cfg.priority < victim->cfg.priority)
                victim = &t;
        }
        if (!victim)
            break;
        const std::uint64_t id = victim->queue.back();
        victim->queue.pop_back();
        --queuedTotal_;
        ++stats_.counter("rejected_shed");
        finalize(id, Outcome::Rejected,
                 resilience::Status::failure(
                     resilience::ErrorCode::Overloaded,
                     "shed: capacity degraded to " +
                         std::to_string(cap) + " queued"));
    }
}

void
Server::pump()
{
    if (inPump_)
        return;
    inPump_ = true;

    if (cfg_.shedOnCapacityLoss)
        shedToCapacity();

    // Byte-based deficit round robin across tenants with queued work.
    core::Dce &dce = sys_.dce();
    while (queuedTotal_ > 0 && inflight_ < cfg_.maxInflight &&
           dce.ringDepth() < cfg_.maxInflight) {
        // Find the next tenant (starting at the cursor) with work.
        std::size_t scanned = 0;
        bool issuedAny = false;
        while (scanned < tenants_.size()) {
            Tenant &t = tenants_[drrCursor_ % tenants_.size()];
            if (t.queue.empty()) {
                t.deficit = 0.0; // inactive tenants carry no credit
                ++drrCursor_;
                ++scanned;
                continue;
            }
            t.deficit += static_cast<double>(cfg_.quantumBytes) *
                         t.cfg.weight;
            // Serve the tenant's FIFO while its credit lasts.
            while (!t.queue.empty() &&
                   inflight_ < cfg_.maxInflight &&
                   dce.ringDepth() < cfg_.maxInflight) {
                const std::uint64_t id = t.queue.front();
                const Req *r = find(id);
                assert(r);
                if (t.deficit < static_cast<double>(r->bytes))
                    break;
                t.queue.pop_front();
                --queuedTotal_;
                t.deficit -= static_cast<double>(r->bytes);
                issue(id);
                issuedAny = true;
            }
            ++drrCursor_;
            ++scanned;
            if (inflight_ >= cfg_.maxInflight ||
                dce.ringDepth() >= cfg_.maxInflight)
                break;
        }
        // No tenant could afford its head-of-line request this round.
        // With work in flight the next completion wakes us and credit
        // accrues then; with nothing in flight there is no future
        // wakeup, so keep accruing now (the deficit grows by a full
        // quantum per scan, so this terminates).
        if (!issuedAny && inflight_ > 0)
            break;
    }

    inPump_ = false;
}

bool
Server::drain(Tick maxPs)
{
    const bool ok =
        sys_.runUntil([this] { return idle(); }, maxPs);
    return ok && idle();
}

bool
Server::checkConservation(std::string *why) const
{
    const std::uint64_t accounted = totals_.delivered +
                                    totals_.rejected +
                                    totals_.expired + pendingCount_;
    if (accounted == totals_.submitted &&
        requests_.size() == pendingCount_ + tombstones_)
        return true;
    if (why) {
        *why = "serving ledger imbalance: submitted=" +
               std::to_string(totals_.submitted) +
               " delivered=" + std::to_string(totals_.delivered) +
               " rejected=" + std::to_string(totals_.rejected) +
               " expired=" + std::to_string(totals_.expired) +
               " pending=" + std::to_string(pendingCount_) +
               " tombstones=" + std::to_string(tombstones_) +
               " live_records=" + std::to_string(requests_.size());
    }
    return false;
}

void
Server::saveState(serialize::ByteSink &out) const
{
    assert(idle() && requests_.empty() && tombstones_ == 0 &&
           "server checkpoint requires a quiesced ledger");
    out.u64(tenants_.size());
    for (const Tenant &t : tenants_) {
        out.str(t.cfg.name);
        out.f64(t.cfg.quotaBytesPerSec);
        out.f64(t.cfg.quotaBurstBytes);
        out.u64(t.cfg.weight);
        out.u64(t.cfg.priority);
        out.u64(t.ctx.id());
        out.u64(t.ctx.nextVa());
        out.u64(t.ctx.mappedDramBytes());
        out.u64(t.ctx.mappedPimBytes());
        out.f64(t.quota.tokens());
        out.u64(t.quota.lastRefillPs());
        out.f64(t.deficit);
    }
    out.f64(retryBudget_.tokens());
    out.u64(retryBudget_.lastRefillPs());
    out.u64(nextId_);
    out.u64(drrCursor_);
    out.u64(totals_.submitted);
    out.u64(totals_.delivered);
    out.u64(totals_.rejected);
    out.u64(totals_.expired);
    out.u64(totals_.bytesSubmitted);
    out.u64(totals_.bytesAdmitted);
    out.u64(totals_.bytesDelivered);
    stats::saveGroup(out, stats_);
}

bool
Server::restoreState(serialize::ByteSource &in)
{
    if (!tenants_.empty() || !requests_.empty())
        return false; // restore targets a freshly built server
    const std::uint64_t numTenants = in.u64();
    for (std::uint64_t i = 0; i < numTenants && in.ok(); ++i) {
        Tenant t;
        t.cfg.name = in.str();
        t.cfg.quotaBytesPerSec = in.f64();
        t.cfg.quotaBurstBytes = in.f64();
        t.cfg.weight = static_cast<unsigned>(in.u64());
        t.cfg.priority = static_cast<unsigned>(in.u64());
        const mmu::TenantId id = in.u64();
        const Addr nextVa = in.u64();
        const std::uint64_t mappedDram = in.u64();
        const std::uint64_t mappedPim = in.u64();
        t.ctx.restore(sys_.mmu(), id, nextVa, mappedDram, mappedPim);
        t.quota = resilience::RetryBudget(t.cfg.quotaBurstBytes,
                                          t.cfg.quotaBytesPerSec);
        t.quota.restore(in.f64(), in.u64());
        t.deficit = in.f64();
        tenants_.push_back(std::move(t));
    }
    retryBudget_.restore(in.f64(), in.u64());
    nextId_ = in.u64();
    drrCursor_ = in.u64();
    totals_.submitted = in.u64();
    totals_.delivered = in.u64();
    totals_.rejected = in.u64();
    totals_.expired = in.u64();
    totals_.bytesSubmitted = in.u64();
    totals_.bytesAdmitted = in.u64();
    totals_.bytesDelivered = in.u64();
    return stats::restoreGroup(in, stats_);
}

} // namespace serving
} // namespace pimmmu

/**
 * @file
 * A per-tenant radix page table over the simulated physical space.
 *
 * The table is the real data structure, not a flat map: mappings build
 * a 4-level radix tree (9 bits per level over a 48-bit VA), huge
 * (2 MiB) mappings terminate one level early, and a walk reports how
 * many tables it touched — which is what the DCE-side TLB charges as
 * page-table-walk time on a miss.
 *
 * Each leaf also records which HetMap region (DRAM or PIM) its
 * physical range lives in, so downstream dispatch is keyed by the
 * VMA's declared region rather than by testing the raw physical range
 * (the UMDAM-style layout argument; see mapping/hetmap.hh).
 */

#ifndef PIMMMU_MMU_PAGE_TABLE_HH
#define PIMMMU_MMU_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mapping/hetmap.hh"
#include "mmu/mmu_types.hh"

namespace pimmmu {
namespace mmu {

/** Permissions of one mapping. */
struct PagePerms
{
    bool read = true;
    bool write = true;

    static PagePerms rw() { return {true, true}; }
    static PagePerms ro() { return {true, false}; }
};

/** A translated leaf, as a walk reports it. */
struct WalkResult
{
    /** Leaf found and permissions unchecked; false == unmapped. */
    bool mapped = false;
    Addr pageBase = 0;         //!< physical base of the page
    std::uint64_t pageBytes = kPageBytes;
    PagePerms perms;
    mapping::MemSpace space = mapping::MemSpace::Dram;
    unsigned levels = 0;       //!< tables touched by the walk
};

/**
 * One tenant's page table. map()/unmap() mutate the radix tree;
 * walk() is the lookup the TLB refills from.
 */
class PageTable
{
  public:
    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Map [va, va + bytes) onto [pa, pa + bytes) with @p pageBytes
     * pages (4 KiB or 2 MiB). All of va, pa, and bytes must be
     * page-aligned; the range must not overlap an existing mapping.
     * @return empty string on success, else the reason.
     */
    std::string map(Addr va, Addr pa, std::uint64_t bytes,
                    std::uint64_t pageBytes, PagePerms perms,
                    mapping::MemSpace space);

    /**
     * Remove the mapping at [va, va + bytes). Partial unmap of a huge
     * page is rejected. @return empty string on success.
     */
    std::string unmap(Addr va, std::uint64_t bytes);

    /** Walk the radix tree for @p va. Never faults; the caller turns
     *  an unmapped result into a structured status. */
    WalkResult walk(Addr va) const;

    /** Mapped leaves (4 KiB pages count 1, 2 MiB pages count 1). */
    std::uint64_t mappedPages() const { return mappedPages_; }

    /** Radix tables currently allocated (the walk surface). */
    std::uint64_t tableCount() const { return tableCount_; }

  private:
    struct Node;

    Node *ensureChild(Node &parent, std::uint64_t idx);

    std::unique_ptr<Node> root_;
    std::uint64_t mappedPages_ = 0;
    std::uint64_t tableCount_ = 0;
};

} // namespace mmu
} // namespace pimmmu

#endif // PIMMMU_MMU_PAGE_TABLE_HH

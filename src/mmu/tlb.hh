/**
 * @file
 * The DCE-side TLB: a set-associative translation cache in front of
 * the per-tenant page tables, with modeled hit / miss / walk timing
 * charged on the descriptor path.
 *
 * Entries are tagged (tenant, VPN, page size), so tenants never hit on
 * each other's translations and a flush is only needed on unmap. A
 * lookup probes the 4 KiB set and the 2 MiB set (hardware probes both
 * size classes in parallel; one hit latency either way); a miss walks
 * the page table and charges one memory access per table the walk
 * touched, then refills over the set's LRU way.
 */

#ifndef PIMMMU_MMU_TLB_HH
#define PIMMMU_MMU_TLB_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "mmu/page_table.hh"
#include "mmu/mmu_types.hh"

namespace pimmmu {
namespace mmu {

/** TLB geometry and timing knobs. */
struct TlbConfig
{
    unsigned entries = 64;
    unsigned ways = 4;

    /** Latency of a lookup that hits (charged once per page probed). */
    Tick hitPs = 1 * kPsPerNs;

    /** Latency of one page-table-level memory read during a walk. */
    Tick walkLevelPs = 60 * kPsPerNs;

    unsigned sets() const { return entries / ways; }

    /**
     * Zero-cost timing with the default geometry: translation happens
     * but charges nothing, which is what the identity-mapping
     * bit+cycle-identity gate runs under.
     */
    static TlbConfig
    zeroCost()
    {
        TlbConfig cfg;
        cfg.hitPs = 0;
        cfg.walkLevelPs = 0;
        return cfg;
    }
};

/** Outcome of one TLB lookup (one page). */
struct TlbResult
{
    bool hit = false;
    WalkResult leaf;   //!< valid iff leaf.mapped
    Tick modeledPs = 0; //!< hit latency, or hit latency + walk time
};

class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Look @p va up for @p tenant, walking @p table on a miss and
     * refilling on a successful walk. An unmapped walk is not cached
     * (no negative caching), so a later map() needs no shootdown.
     */
    TlbResult lookup(TenantId tenant, Addr va, const PageTable &table);

    /** Drop every entry of @p tenant (unmap/teardown shootdown). */
    void flushTenant(TenantId tenant);

    void flushAll();

    const TlbConfig &config() const { return config_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t walkLevels() const { return walkLevels_; }

    /**
     * Checkpoint the full entry array and counters. TLB contents feed
     * the modeled translation timing, so a restored TLB must hit and
     * miss exactly where the original would have.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    struct Entry
    {
        bool valid = false;
        TenantId tenant = kNoTenant;
        Addr vpn = 0; //!< va >> (page shift), tagged with the size
        bool huge = false;
        WalkResult leaf;
        std::uint64_t lastUse = 0;
    };

    Entry *probe(TenantId tenant, Addr vpn, bool huge);
    void insert(TenantId tenant, Addr va, const WalkResult &leaf);

    TlbConfig config_;
    std::vector<Entry> entries_; //!< sets() consecutive ways per set
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t walkLevels_ = 0;
};

} // namespace mmu
} // namespace pimmmu

#endif // PIMMMU_MMU_TLB_HH

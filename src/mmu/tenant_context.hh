/**
 * @file
 * A per-tenant address-space handle: the piece of the MMU front-end a
 * client layer (serving::Server) holds on to.
 *
 * The Mmu itself exposes raw map()/translateRange() keyed by TenantId;
 * every caller so far (fig_tlb, the VA unit tests) reimplements the
 * same bookkeeping on top — create the tenant, pick non-overlapping VA
 * windows, remember how much is mapped per space. TenantContext
 * centralises that: it owns one TenantId and a per-space VA bump
 * allocator, so a serving tenant is configured as "map me a window
 * over this physical buffer" and gets back the VA to submit
 * descriptors with.
 *
 * Like everything in the MMU, failures are structured
 * resilience::Status values, never asserts.
 */

#ifndef PIMMMU_MMU_TENANT_CONTEXT_HH
#define PIMMMU_MMU_TENANT_CONTEXT_HH

#include <array>
#include <cstdint>

#include "mmu/mmu.hh"

namespace pimmmu {
namespace mmu {

class TenantContext
{
  public:
    /** Detached context: valid() is false, every call fails. */
    TenantContext() = default;

    /** Stand up a fresh tenant address space in @p mmu. */
    explicit TenantContext(Mmu &mmu)
        : mmu_(&mmu), id_(mmu.createTenant())
    {
    }

    bool valid() const { return mmu_ != nullptr; }
    TenantId id() const { return id_; }

    /**
     * Re-attach to a tenant that already exists in @p mmu — the
     * checkpoint-restore path, where Mmu::restoreState has rebuilt the
     * address space and this context must resume its VA cursor instead
     * of standing up a fresh tenant.
     */
    void restore(Mmu &mmu, TenantId id, Addr nextVa,
                 std::uint64_t mappedDram, std::uint64_t mappedPim)
    {
        mmu_ = &mmu;
        id_ = id;
        nextVa_ = nextVa;
        mapped_ = {mappedDram, mappedPim};
    }

    /** Checkpoint accessors for the restore() arguments. */
    Addr nextVa() const { return nextVa_; }
    std::uint64_t mappedDramBytes() const { return mapped_[0]; }
    std::uint64_t mappedPimBytes() const { return mapped_[1]; }

    /**
     * Map @p bytes of physical space at [pa, pa+bytes) in @p space
     * into the next free VA window (bump-allocated, @p pageBytes
     * aligned, windows never reused). On success @p vaOut holds the
     * window's base VA.
     */
    resilience::Status mapWindow(mapping::MemSpace space, Addr pa,
                                 std::uint64_t bytes, Addr &vaOut,
                                 std::uint64_t pageBytes = kPageBytes,
                                 PagePerms perms = PagePerms::rw());

    /** translateRange() for this tenant. */
    resilience::Status translate(Addr va, std::uint64_t bytes,
                                 Access access,
                                 mapping::MemSpace expected,
                                 Translation &out);

    /** Bytes this context has mapped in @p space. */
    std::uint64_t mappedBytes(mapping::MemSpace space) const;

  private:
    static std::size_t spaceIdx(mapping::MemSpace space)
    {
        return space == mapping::MemSpace::Pim ? 1 : 0;
    }

    Mmu *mmu_ = nullptr;
    TenantId id_ = kNoTenant;
    /** Next free VA. The tenant's page table is one address space
     *  shared by both HetMap regions, so Dram and Pim windows carve
     *  from one cursor; it starts one page up so VA 0 stays an
     *  obviously-bad pointer in tests. */
    Addr nextVa_ = kPageBytes;
    std::array<std::uint64_t, 2> mapped_{0, 0};
};

} // namespace mmu
} // namespace pimmmu

#endif // PIMMMU_MMU_TENANT_CONTEXT_HH

/**
 * @file
 * The virtual-memory front-end of the PIM-MMU: per-tenant page tables
 * over the shared physical space, a DCE-side TLB with modeled
 * hit/miss/page-table-walk timing, and a physical-ownership registry
 * that keeps tenants' mappings disjoint.
 *
 * Tenants map VA windows onto either HetMap region:
 *  - MemSpace::Dram VMAs cover host (DRAM physical) buffers;
 *  - MemSpace::Pim VMAs cover per-DPU MRAM heap offsets.
 * A transfer descriptor submitted by VA resolves through
 * translateRange() before bank grouping; downstream dispatch trusts
 * the VMA's region instead of re-testing the raw physical range.
 *
 * Translation failures are structured resilience::Status codes
 * (UnmappedPage / PermissionDenied / TenantIsolation / RegionMismatch),
 * never asserts: a tenant handing the driver a bad pointer must not be
 * able to take the simulator down.
 */

#ifndef PIMMMU_MMU_MMU_HH
#define PIMMMU_MMU_MMU_HH

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "mmu/tlb.hh"
#include "resilience/status.hh"

namespace pimmmu {
namespace mmu {

/** Everything needed to stand the translation layer up. */
struct MmuConfig
{
    TlbConfig tlb;
};

/** One mapped VA window of a tenant (its VMA record). */
struct Vma
{
    Addr vaBase = 0;
    Addr paBase = 0;
    std::uint64_t bytes = 0;
    std::uint64_t pageBytes = kPageBytes;
    PagePerms perms;
    mapping::MemSpace space = mapping::MemSpace::Dram;
};

/** Resolved form of one contiguous VA range. */
struct Translation
{
    Addr paddr = 0;
    mapping::MemSpace space = mapping::MemSpace::Dram;
    Tick modeledPs = 0;           //!< TLB + walk time to charge
    std::uint64_t pagesTouched = 0;
};

class Mmu
{
  public:
    explicit Mmu(const MmuConfig &config);
    ~Mmu();

    Mmu(const Mmu &) = delete;
    Mmu &operator=(const Mmu &) = delete;

    /** Stand up a fresh, empty address space. */
    TenantId createTenant();

    bool hasTenant(TenantId tenant) const;

    /**
     * Map [va, va+bytes) -> [pa, pa+bytes) for @p tenant with
     * @p pageBytes pages. Fails with TenantIsolation when any touched
     * physical page is already owned by another tenant, and with
     * MalformedDescriptor on alignment/overlap problems.
     */
    resilience::Status map(TenantId tenant, Addr va, Addr pa,
                           std::uint64_t bytes,
                           std::uint64_t pageBytes, PagePerms perms,
                           mapping::MemSpace space);

    /** map() with VA == PA — the identity-gate configuration. */
    resilience::Status mapIdentity(TenantId tenant, Addr base,
                                   std::uint64_t bytes,
                                   std::uint64_t pageBytes,
                                   PagePerms perms,
                                   mapping::MemSpace space);

    /** Tear a VMA down (whole map() ranges only) and shoot the
     *  tenant's TLB entries down. */
    resilience::Status unmap(TenantId tenant, Addr va,
                             std::uint64_t bytes);

    /**
     * Resolve [va, va+bytes) for @p access. The range may span many
     * pages (and mixed 4 KiB / 2 MiB mappings) but must translate to
     * physically contiguous bytes in @p expected space; every page
     * charges TLB hit or walk time into @p out.modeledPs.
     */
    resilience::Status translateRange(TenantId tenant, Addr va,
                                      std::uint64_t bytes,
                                      Access access,
                                      mapping::MemSpace expected,
                                      Translation &out);

    /** The tenant's VMAs, ascending by VA (introspection/tests). */
    std::vector<Vma> vmas(TenantId tenant) const;

    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }
    stats::Group &stats() { return stats_; }
    std::size_t tenantCount() const { return tenants_.size(); }

    /**
     * Checkpoint the whole translation layer: tenant id allocator,
     * every tenant's VMA list, TLB contents and stats. Restore replays
     * map() per VMA (rebuilding the radix tables and the ownership
     * registry), then overlays the TLB and stats bit-exactly — TLB
     * contents feed modeled timing, so warmth must survive a restore.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState; wipes current tenants first.
     *  @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    struct Tenant
    {
        PageTable table;
        std::map<Addr, Vma> vmasByVa;
    };

    struct Owner
    {
        Addr end = 0;
        TenantId tenant = kNoTenant;
    };

    Tenant *find(TenantId tenant);
    const Tenant *find(TenantId tenant) const;
    resilience::Status fault(resilience::ErrorCode code,
                             const std::string &detail);

    /** Physical-ownership check/claim per region; key = range start. */
    bool claimConflicts(mapping::MemSpace space, Addr pa,
                        std::uint64_t bytes, TenantId tenant,
                        TenantId &ownerOut) const;

    MmuConfig config_;
    Tlb tlb_;
    std::map<TenantId, std::unique_ptr<Tenant>> tenants_;
    /** [0] = Dram-region claims, [1] = Pim-region claims. */
    std::array<std::map<Addr, Owner>, 2> owned_;
    TenantId nextTenant_ = 1;
    stats::Group stats_;
};

} // namespace mmu
} // namespace pimmmu

#endif // PIMMMU_MMU_MMU_HH

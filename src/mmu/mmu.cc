#include "mmu/mmu.hh"

#include <sstream>

#include "common/stats_serialize.hh"
#include "telemetry/stats_registry.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace mmu {

namespace {

const char *
spaceName(mapping::MemSpace space)
{
    return space == mapping::MemSpace::Pim ? "pim" : "dram";
}

std::size_t
spaceIdx(mapping::MemSpace space)
{
    return space == mapping::MemSpace::Pim ? 1 : 0;
}

const char *
faultCounter(resilience::ErrorCode code)
{
    switch (code) {
      case resilience::ErrorCode::UnmappedPage:
        return "fault_unmapped";
      case resilience::ErrorCode::PermissionDenied:
        return "fault_permission";
      case resilience::ErrorCode::TenantIsolation:
        return "fault_tenant";
      case resilience::ErrorCode::RegionMismatch:
        return "fault_region";
      default:
        return "fault_other";
    }
}

} // namespace

Mmu::Mmu(const MmuConfig &config)
    : config_(config), tlb_(config.tlb), stats_("mmu")
{
    telemetry::StatsRegistry::global().add(stats_);
}

Mmu::~Mmu()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

Mmu::Tenant *
Mmu::find(TenantId tenant)
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? nullptr : it->second.get();
}

const Mmu::Tenant *
Mmu::find(TenantId tenant) const
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? nullptr : it->second.get();
}

resilience::Status
Mmu::fault(resilience::ErrorCode code, const std::string &detail)
{
    stats_.counter("faults") += 1;
    stats_.counter(faultCounter(code)) += 1;
    return resilience::Status::failure(code, detail);
}

TenantId
Mmu::createTenant()
{
    const TenantId id = nextTenant_++;
    tenants_.emplace(id, std::make_unique<Tenant>());
    stats_.counter("tenants") += 1;
    return id;
}

bool
Mmu::hasTenant(TenantId tenant) const
{
    return find(tenant) != nullptr;
}

bool
Mmu::claimConflicts(mapping::MemSpace space, Addr pa,
                    std::uint64_t bytes, TenantId tenant,
                    TenantId &ownerOut) const
{
    const auto &claims = owned_[spaceIdx(space)];
    auto it = claims.upper_bound(pa);
    if (it != claims.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > pa) {
            ownerOut = prev->second.tenant;
            return true;
        }
    }
    if (it != claims.end() && it->first < pa + bytes) {
        ownerOut = it->second.tenant;
        return true;
    }
    (void)tenant;
    return false;
}

resilience::Status
Mmu::map(TenantId tenant, Addr va, Addr pa, std::uint64_t bytes,
         std::uint64_t pageBytes, PagePerms perms,
         mapping::MemSpace space)
{
    Tenant *t = find(tenant);
    if (t == nullptr) {
        std::ostringstream os;
        os << "map: unknown tenant " << tenant;
        return fault(resilience::ErrorCode::TenantIsolation, os.str());
    }
    TenantId owner = kNoTenant;
    if (claimConflicts(space, pa, bytes, tenant, owner)) {
        std::ostringstream os;
        os << "map: " << spaceName(space) << " physical range [0x"
           << std::hex << pa << ", 0x" << pa + bytes << std::dec
           << ") already owned by tenant " << owner;
        return fault(owner == tenant
                         ? resilience::ErrorCode::MalformedDescriptor
                         : resilience::ErrorCode::TenantIsolation,
                     os.str());
    }
    const std::string why =
        t->table.map(va, pa, bytes, pageBytes, perms, space);
    if (!why.empty()) {
        return fault(resilience::ErrorCode::MalformedDescriptor,
                     "map: " + why);
    }
    owned_[spaceIdx(space)][pa] = Owner{pa + bytes, tenant};
    Vma vma;
    vma.vaBase = va;
    vma.paBase = pa;
    vma.bytes = bytes;
    vma.pageBytes = pageBytes;
    vma.perms = perms;
    vma.space = space;
    t->vmasByVa[va] = vma;
    stats_.counter("vmas_mapped") += 1;
    stats_.counter("pages_mapped") += bytes / pageBytes;
    return resilience::Status{};
}

resilience::Status
Mmu::mapIdentity(TenantId tenant, Addr base, std::uint64_t bytes,
                 std::uint64_t pageBytes, PagePerms perms,
                 mapping::MemSpace space)
{
    return map(tenant, base, base, bytes, pageBytes, perms, space);
}

resilience::Status
Mmu::unmap(TenantId tenant, Addr va, std::uint64_t bytes)
{
    Tenant *t = find(tenant);
    if (t == nullptr) {
        std::ostringstream os;
        os << "unmap: unknown tenant " << tenant;
        return fault(resilience::ErrorCode::TenantIsolation, os.str());
    }
    auto it = t->vmasByVa.find(va);
    if (it == t->vmasByVa.end() || it->second.bytes != bytes) {
        return fault(resilience::ErrorCode::MalformedDescriptor,
                     "unmap: range is not a whole mapped VMA");
    }
    const std::string why = t->table.unmap(va, bytes);
    if (!why.empty()) {
        return fault(resilience::ErrorCode::MalformedDescriptor,
                     "unmap: " + why);
    }
    owned_[spaceIdx(it->second.space)].erase(it->second.paBase);
    t->vmasByVa.erase(it);
    tlb_.flushTenant(tenant);
    stats_.counter("vmas_unmapped") += 1;
    return resilience::Status{};
}

resilience::Status
Mmu::translateRange(TenantId tenant, Addr va, std::uint64_t bytes,
                    Access access, mapping::MemSpace expected,
                    Translation &out)
{
    out = Translation{};
    out.space = expected;
    const Tenant *t = find(tenant);
    if (t == nullptr) {
        std::ostringstream os;
        os << "translate: unknown tenant " << tenant
           << " (cross-tenant or stale handle)";
        return fault(resilience::ErrorCode::TenantIsolation, os.str());
    }
    if (bytes == 0) {
        return fault(resilience::ErrorCode::MalformedDescriptor,
                     "translate: empty range");
    }

    const std::uint64_t hitsBefore = tlb_.hits();
    const std::uint64_t evictionsBefore = tlb_.evictions();
    const std::uint64_t levelsBefore = tlb_.walkLevels();

    auto bookTlb = [&] {
        stats_.counter("tlb_hits") += tlb_.hits() - hitsBefore;
        stats_.counter("tlb_misses") +=
            out.pagesTouched - (tlb_.hits() - hitsBefore);
        stats_.counter("tlb_evictions") +=
            tlb_.evictions() - evictionsBefore;
        stats_.counter("walk_levels") +=
            tlb_.walkLevels() - levelsBefore;
        stats_.counter("walk_ps") += out.modeledPs;
    };

    const Addr end = va + bytes;
    Addr pos = va;
    Addr expectPa = kAddrInvalid;
    while (pos < end) {
        const TlbResult r = tlb_.lookup(tenant, pos, t->table);
        out.modeledPs += r.modeledPs;
        ++out.pagesTouched;
        if (!r.leaf.mapped) {
            bookTlb();
            std::ostringstream os;
            os << "translate: tenant " << tenant << " va 0x"
               << std::hex << pos << std::dec << " unmapped";
            return fault(resilience::ErrorCode::UnmappedPage,
                         os.str());
        }
        if ((access == Access::Read && !r.leaf.perms.read) ||
            (access == Access::Write && !r.leaf.perms.write)) {
            bookTlb();
            std::ostringstream os;
            os << "translate: tenant " << tenant << " va 0x"
               << std::hex << pos << std::dec << " lacks "
               << (access == Access::Read ? "read" : "write")
               << " permission";
            return fault(resilience::ErrorCode::PermissionDenied,
                         os.str());
        }
        if (r.leaf.space != expected) {
            bookTlb();
            std::ostringstream os;
            os << "translate: tenant " << tenant << " va 0x"
               << std::hex << pos << std::dec << " maps into the "
               << spaceName(r.leaf.space) << " region, but the "
               << "descriptor dispatches it as "
               << spaceName(expected);
            return fault(resilience::ErrorCode::RegionMismatch,
                         os.str());
        }
        const Addr pageOff = pos & (r.leaf.pageBytes - 1);
        const Addr pa = r.leaf.pageBase + pageOff;
        if (expectPa == kAddrInvalid) {
            out.paddr = pa;
        } else if (pa != expectPa) {
            bookTlb();
            std::ostringstream os;
            os << "translate: tenant " << tenant << " range at va 0x"
               << std::hex << va << std::dec
               << " is not physically contiguous";
            return fault(resilience::ErrorCode::MalformedDescriptor,
                         os.str());
        }
        const Addr step =
            std::min<Addr>(r.leaf.pageBytes - pageOff, end - pos);
        expectPa = pa + step;
        pos += step;
    }
    // Fault site: silently corrupt the resolved physical base. The
    // translation property (golden software walk vs. the TLB path)
    // must catch this, proving it is non-vacuous.
    if (testing::fault::fire("mmu.corrupt_translation"))
        out.paddr ^= kPageBytes;
    bookTlb();
    stats_.counter("translations") += 1;
    stats_.counter("pages_translated") += out.pagesTouched;
    return resilience::Status{};
}

std::vector<Vma>
Mmu::vmas(TenantId tenant) const
{
    std::vector<Vma> result;
    if (const Tenant *t = find(tenant)) {
        result.reserve(t->vmasByVa.size());
        for (const auto &kv : t->vmasByVa)
            result.push_back(kv.second);
    }
    return result;
}

void
Mmu::saveState(serialize::ByteSink &out) const
{
    out.u64(nextTenant_);
    out.u64(tenants_.size());
    for (const auto &[id, t] : tenants_) {
        out.u64(id);
        out.u64(t->vmasByVa.size());
        for (const auto &[va, vma] : t->vmasByVa) {
            out.u64(vma.vaBase);
            out.u64(vma.paBase);
            out.u64(vma.bytes);
            out.u64(vma.pageBytes);
            out.boolean(vma.perms.read);
            out.boolean(vma.perms.write);
            out.u8(vma.space == mapping::MemSpace::Pim ? 1 : 0);
        }
    }
    tlb_.saveState(out);
    stats::saveGroup(out, stats_);
}

bool
Mmu::restoreState(serialize::ByteSource &in)
{
    tenants_.clear();
    owned_[0].clear();
    owned_[1].clear();
    tlb_.flushAll();

    nextTenant_ = in.u64();
    const std::uint64_t numTenants = in.u64();
    for (std::uint64_t i = 0; i < numTenants && in.ok(); ++i) {
        const TenantId id = in.u64();
        tenants_[id] = std::make_unique<Tenant>();
        const std::uint64_t numVmas = in.u64();
        for (std::uint64_t v = 0; v < numVmas && in.ok(); ++v) {
            Vma vma;
            vma.vaBase = in.u64();
            vma.paBase = in.u64();
            vma.bytes = in.u64();
            vma.pageBytes = in.u64();
            vma.perms.read = in.boolean();
            vma.perms.write = in.boolean();
            vma.space = in.u8() == 1 ? mapping::MemSpace::Pim
                                     : mapping::MemSpace::Dram;
            // Replay through map(): rebuilds the radix table and the
            // ownership registry. A failure means the snapshot's VMA
            // set is internally inconsistent.
            if (!map(id, vma.vaBase, vma.paBase, vma.bytes,
                     vma.pageBytes, vma.perms, vma.space).ok())
                return false;
        }
    }
    if (!in.ok() || !tlb_.restoreState(in))
        return false;
    // Replay bumped the map counters; the snapshot values win.
    return stats::restoreGroup(in, stats_);
}

} // namespace mmu
} // namespace pimmmu

#include "mmu/tlb.hh"

#include "common/logging.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace mmu {

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    PIMMMU_ASSERT(config_.ways >= 1 &&
                      config_.entries >= config_.ways &&
                      config_.entries % config_.ways == 0,
                  "TLB entries must be a multiple of the ways");
    entries_.resize(config_.entries);
}

Tlb::Entry *
Tlb::probe(TenantId tenant, Addr vpn, bool huge)
{
    const unsigned set =
        static_cast<unsigned>(vpn % config_.sets());
    Entry *base = &entries_[std::size_t{set} * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tenant == tenant && e.vpn == vpn &&
            e.huge == huge) {
            return &e;
        }
    }
    return nullptr;
}

TlbResult
Tlb::lookup(TenantId tenant, Addr va, const PageTable &table)
{
    TlbResult r;
    r.modeledPs = config_.hitPs;

    // Both size classes probe in parallel; the 2 MiB class wins ties
    // (a VA is never mapped at both sizes at once).
    if (Entry *e = probe(tenant, va >> kHugeShift, true)) {
        e->lastUse = ++useClock_;
        ++hits_;
        r.hit = true;
        r.leaf = e->leaf;
        return r;
    }
    if (Entry *e = probe(tenant, va >> kPageShift, false)) {
        e->lastUse = ++useClock_;
        ++hits_;
        r.hit = true;
        r.leaf = e->leaf;
        return r;
    }

    ++misses_;
    WalkResult walk = table.walk(va);
    // Fault site: the walker loses a present leaf, so a mapped page
    // surfaces as a structured UnmappedPage fault. Proves the
    // fault-path tests are non-vacuous.
    if (testing::fault::fire("mmu.drop_pte"))
        walk.mapped = false;
    walkLevels_ += walk.levels;
    r.modeledPs += Tick{walk.levels} * config_.walkLevelPs;
    r.leaf = walk;
    if (walk.mapped)
        insert(tenant, va, walk);
    return r;
}

void
Tlb::insert(TenantId tenant, Addr va, const WalkResult &leaf)
{
    const bool huge = leaf.pageBytes == kHugePageBytes;
    const Addr vpn = va >> (huge ? kHugeShift : kPageShift);
    const unsigned set =
        static_cast<unsigned>(vpn % config_.sets());
    Entry *base = &entries_[std::size_t{set} * config_.ways];
    Entry *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->tenant = tenant;
    victim->vpn = vpn;
    victim->huge = huge;
    victim->leaf = leaf;
    victim->lastUse = ++useClock_;
}

void
Tlb::flushTenant(TenantId tenant)
{
    for (Entry &e : entries_) {
        if (e.valid && e.tenant == tenant)
            e = Entry{};
    }
}

void
Tlb::flushAll()
{
    for (Entry &e : entries_)
        e = Entry{};
}

void
Tlb::saveState(serialize::ByteSink &out) const
{
    out.u64(entries_.size());
    for (const Entry &e : entries_) {
        out.boolean(e.valid);
        out.u64(e.tenant);
        out.u64(e.vpn);
        out.boolean(e.huge);
        out.boolean(e.leaf.mapped);
        out.u64(e.leaf.pageBase);
        out.u64(e.leaf.pageBytes);
        out.boolean(e.leaf.perms.read);
        out.boolean(e.leaf.perms.write);
        out.u8(e.leaf.space == mapping::MemSpace::Pim ? 1 : 0);
        out.u64(e.leaf.levels);
        out.u64(e.lastUse);
    }
    out.u64(useClock_);
    out.u64(hits_);
    out.u64(misses_);
    out.u64(evictions_);
    out.u64(walkLevels_);
}

bool
Tlb::restoreState(serialize::ByteSource &in)
{
    if (in.u64() != entries_.size()) // geometry mismatch
        return false;
    for (Entry &e : entries_) {
        e.valid = in.boolean();
        e.tenant = in.u64();
        e.vpn = in.u64();
        e.huge = in.boolean();
        e.leaf.mapped = in.boolean();
        e.leaf.pageBase = in.u64();
        e.leaf.pageBytes = in.u64();
        e.leaf.perms.read = in.boolean();
        e.leaf.perms.write = in.boolean();
        e.leaf.space = in.u8() == 1 ? mapping::MemSpace::Pim
                                    : mapping::MemSpace::Dram;
        e.leaf.levels = static_cast<unsigned>(in.u64());
        e.lastUse = in.u64();
    }
    useClock_ = in.u64();
    hits_ = in.u64();
    misses_ = in.u64();
    evictions_ = in.u64();
    walkLevels_ = in.u64();
    return in.ok();
}

} // namespace mmu
} // namespace pimmmu

#include "mmu/page_table.hh"

#include <array>
#include <sstream>

#include "common/logging.hh"

namespace pimmmu {
namespace mmu {

namespace {

std::string
alignError(const char *what, Addr value, std::uint64_t align)
{
    std::ostringstream os;
    os << what << " 0x" << std::hex << value << std::dec
       << " not a multiple of " << align;
    return os.str();
}

} // namespace

/**
 * One radix table. An entry is either empty, a pointer to the next
 * level, or a leaf (at the last level for 4 KiB pages, one level up
 * for 2 MiB pages — a child pointer and a leaf never coexist in the
 * same entry).
 */
struct PageTable::Node
{
    struct Entry
    {
        std::unique_ptr<Node> child;
        bool leaf = false;
        Addr pageBase = 0;
        bool huge = false;
        PagePerms perms;
        mapping::MemSpace space = mapping::MemSpace::Dram;
    };

    std::array<Entry, kEntriesPerTable> entries;

    bool
    empty() const
    {
        for (const Entry &e : entries) {
            if (e.leaf || e.child)
                return false;
        }
        return true;
    }
};

PageTable::PageTable() : root_(std::make_unique<Node>()), tableCount_(1)
{
}

PageTable::~PageTable() = default;

PageTable::Node *
PageTable::ensureChild(Node &parent, std::uint64_t idx)
{
    Node::Entry &e = parent.entries[idx];
    if (e.leaf)
        return nullptr; // a huge-page leaf occupies this slot
    if (!e.child) {
        e.child = std::make_unique<Node>();
        ++tableCount_;
    }
    return e.child.get();
}

std::string
PageTable::map(Addr va, Addr pa, std::uint64_t bytes,
               std::uint64_t pageBytes, PagePerms perms,
               mapping::MemSpace space)
{
    if (pageBytes != kPageBytes && pageBytes != kHugePageBytes)
        return "pageBytes must be 4 KiB or 2 MiB";
    if (va % pageBytes != 0)
        return alignError("va", va, pageBytes);
    if (pa % pageBytes != 0)
        return alignError("pa", pa, pageBytes);
    if (bytes == 0 || bytes % pageBytes != 0)
        return alignError("bytes", bytes, pageBytes);
    if (va + bytes > (Addr{1} << kVaBits))
        return "mapping exceeds the 48-bit VA space";

    const bool huge = pageBytes == kHugePageBytes;
    const unsigned leafLevel = huge ? kHugeWalkLevels - 1
                                    : kWalkLevels - 1;
    // Reject overlap before touching the tree so a failed map() never
    // leaves a partial mapping behind.
    for (Addr off = 0; off < bytes; off += pageBytes) {
        if (walk(va + off).mapped)
            return "range overlaps an existing mapping";
        // A 4 KiB map must also not land under an allocated last-level
        // slot that a huge page would need, and vice versa: walk()
        // above covers both since huge leaves sit on the walk path.
    }
    for (Addr off = 0; off < bytes; off += pageBytes) {
        Node *node = root_.get();
        for (unsigned level = 0; level < leafLevel; ++level) {
            node = ensureChild(*node, tableIndex(va + off, level));
            if (node == nullptr)
                return "range overlaps an existing mapping";
        }
        Node::Entry &e =
            node->entries[tableIndex(va + off, leafLevel)];
        if (e.leaf || e.child)
            return "range overlaps an existing mapping";
        e.leaf = true;
        e.pageBase = pa + off;
        e.huge = huge;
        e.perms = perms;
        e.space = space;
        ++mappedPages_;
    }
    return std::string{};
}

std::string
PageTable::unmap(Addr va, std::uint64_t bytes)
{
    if (va % kPageBytes != 0 || bytes == 0 || bytes % kPageBytes != 0)
        return "unmap range must be 4 KiB aligned";
    // First pass: every page in the range must resolve to a leaf whose
    // extent lies fully inside the range (no partial huge-page unmap).
    for (Addr off = 0; off < bytes;) {
        const WalkResult w = walk(va + off);
        if (!w.mapped)
            return "range contains unmapped pages";
        const Addr leafVa = (va + off) & ~(w.pageBytes - 1);
        if (leafVa < va || leafVa + w.pageBytes > va + bytes)
            return "partial unmap of a huge page";
        off = leafVa + w.pageBytes - va;
    }
    for (Addr off = 0; off < bytes;) {
        const Addr cur = va + off;
        Node *node = root_.get();
        std::array<std::pair<Node *, std::uint64_t>, kWalkLevels> path;
        unsigned depth = 0;
        for (unsigned level = 0; level < kWalkLevels; ++level) {
            const std::uint64_t idx = tableIndex(cur, level);
            Node::Entry &e = node->entries[idx];
            path[depth++] = {node, idx};
            if (e.leaf) {
                const std::uint64_t pageBytes =
                    e.huge ? kHugePageBytes : kPageBytes;
                e = Node::Entry{};
                --mappedPages_;
                off += pageBytes;
                break;
            }
            PIMMMU_ASSERT(e.child != nullptr,
                          "validated unmap walk hit a hole");
            node = e.child.get();
        }
        // Prune now-empty tables bottom-up (the root always stays).
        for (unsigned d = depth; d-- > 1;) {
            Node::Entry &e =
                path[d - 1].first->entries[path[d - 1].second];
            if (e.child && e.child->empty()) {
                e.child.reset();
                --tableCount_;
            }
        }
    }
    return std::string{};
}

WalkResult
PageTable::walk(Addr va) const
{
    WalkResult r;
    const Node *node = root_.get();
    for (unsigned level = 0; level < kWalkLevels; ++level) {
        ++r.levels;
        const Node::Entry &e = node->entries[tableIndex(va, level)];
        if (e.leaf) {
            r.mapped = true;
            r.pageBytes = e.huge ? kHugePageBytes : kPageBytes;
            r.pageBase = e.pageBase;
            r.perms = e.perms;
            r.space = e.space;
            return r;
        }
        if (!e.child)
            return r; // unmapped: levels == tables actually read
        node = e.child.get();
    }
    return r;
}

} // namespace mmu
} // namespace pimmmu

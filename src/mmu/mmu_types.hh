/**
 * @file
 * Shared scalar types of the virtual-memory layer: tenant identifiers,
 * access kinds, page-size constants, and the VA radix split. Kept
 * dependency-light so `core/` can name a tenant in its descriptors
 * without pulling in the page-table machinery.
 */

#ifndef PIMMMU_MMU_MMU_TYPES_HH
#define PIMMMU_MMU_MMU_TYPES_HH

#include <cstdint>

#include "common/types.hh"

namespace pimmmu {
namespace mmu {

/** One tenant == one address space over the shared physical space. */
using TenantId = std::uint32_t;

/** "Not virtually addressed": ops carrying this tenant id stay on the
 *  physical-only path, bit- and cycle-identical to pre-MMU builds. */
constexpr TenantId kNoTenant = 0xffffffffu;

/** What the transfer will do with the mapped range. */
enum class Access
{
    Read,
    Write
};

/** Base (4 KiB) and huge (2 MiB) page sizes. */
constexpr std::uint64_t kPageBytes = 4 * kKiB;
constexpr std::uint64_t kHugePageBytes = 2 * kMiB;

/**
 * x86-64-style 4-level radix over a 48-bit VA: 9 index bits per level
 * above a 12-bit page offset. A 2 MiB mapping terminates one level
 * early (its leaf lives where the last-level table pointer would), so
 * its walk touches 3 tables instead of 4.
 */
constexpr unsigned kVaBits = 48;
constexpr unsigned kLevelBits = 9;
constexpr unsigned kPageShift = 12;
constexpr unsigned kHugeShift = 21;
constexpr unsigned kWalkLevels = 4;      //!< 4 KiB walk depth
constexpr unsigned kHugeWalkLevels = 3;  //!< 2 MiB walk depth
constexpr std::uint64_t kEntriesPerTable = 1ull << kLevelBits;

/** Radix index of @p va at @p level (level 0 = root). */
constexpr std::uint64_t
tableIndex(Addr va, unsigned level)
{
    const unsigned shift =
        kPageShift + kLevelBits * (kWalkLevels - 1 - level);
    return (va >> shift) & (kEntriesPerTable - 1);
}

} // namespace mmu
} // namespace pimmmu

#endif // PIMMMU_MMU_MMU_TYPES_HH

#include "mmu/tenant_context.hh"

namespace pimmmu {
namespace mmu {

namespace {

resilience::Status
detached()
{
    return resilience::Status::failure(
        resilience::ErrorCode::TenantIsolation,
        "tenant context is detached");
}

} // namespace

resilience::Status
TenantContext::mapWindow(mapping::MemSpace space, Addr pa,
                         std::uint64_t bytes, Addr &vaOut,
                         std::uint64_t pageBytes, PagePerms perms)
{
    if (!valid())
        return detached();
    Addr va = nextVa_;
    if (pageBytes && va % pageBytes)
        va += pageBytes - va % pageBytes;
    const resilience::Status st =
        mmu_->map(id_, va, pa, bytes, pageBytes, perms, space);
    if (!st.ok())
        return st;
    vaOut = va;
    // Leave a guard page between windows so an off-the-end VA faults
    // instead of sliding into the neighbour.
    nextVa_ = va + bytes + pageBytes;
    mapped_[spaceIdx(space)] += bytes;
    return resilience::Status{};
}

resilience::Status
TenantContext::translate(Addr va, std::uint64_t bytes, Access access,
                         mapping::MemSpace expected, Translation &out)
{
    if (!valid())
        return detached();
    return mmu_->translateRange(id_, va, bytes, access, expected, out);
}

std::uint64_t
TenantContext::mappedBytes(mapping::MemSpace space) const
{
    return mapped_[spaceIdx(space)];
}

} // namespace mmu
} // namespace pimmmu

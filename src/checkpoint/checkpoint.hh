/**
 * @file
 * Crash-consistent snapshot/restore of the whole simulated system.
 *
 * save() walks the machine at a quiesced point (event queue drained,
 * serving ledger empty) and emits one CRC-guarded section per
 * subsystem — clock, functional memory image, per-DPU MRAM, controller
 * and cache timing state, DCE/CPU bookkeeping, resilience health
 * machines, the MMU (page tables, TLB contents, ownership registry),
 * the serving layer and every stats group — through the atomic
 * container in format.hh. Saving is read-only: a run that checkpoints
 * is bit+cycle identical to one that does not.
 *
 * restore() rebuilds onto a freshly constructed System (same
 * SystemConfig) and optional freshly constructed serving::Server (same
 * ServerConfig, no tenants). A driver then replays its workload from
 * the cursor it stashed in the USER section; because every piece of
 * modeled state survives bit-exactly, the continued run is
 * indistinguishable — events, simulated time, stats, payload bytes —
 * from one that never stopped.
 *
 * All failures are structured resilience::Status values
 * (snapshot_corrupt / snapshot_version_mismatch), never asserts: a
 * torn, truncated or mismatched snapshot must not take the process
 * down.
 */

#ifndef PIMMMU_CHECKPOINT_CHECKPOINT_HH
#define PIMMMU_CHECKPOINT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/status.hh"

namespace pimmmu {

namespace sim {
class System;
}
namespace serving {
class Server;
}

namespace checkpoint {

/**
 * Snapshot @p sys (and @p server, if any) to @p path atomically.
 * @p userBlob is the driver's own replay cursor, stored verbatim in
 * the USER section. @pre the event queue is drained and the server
 * (when present) is idle with an empty ledger.
 */
resilience::Status save(sim::System &sys, serving::Server *server,
                        const std::vector<std::uint8_t> &userBlob,
                        const std::string &path);

/**
 * Restore @p path onto freshly built @p sys / @p server. On success
 * @p userBlob (optional) receives the USER section. Geometry or
 * section-schema disagreements fail with snapshot_version_mismatch;
 * damaged payloads with snapshot_corrupt.
 */
resilience::Status restore(sim::System &sys, serving::Server *server,
                           std::vector<std::uint8_t> *userBlob,
                           const std::string &path);

/**
 * Deterministic FNV-1a digest of every registered stats group's JSON
 * dump — the "all counters identical" half of the crash-restore
 * identity gate.
 */
std::uint64_t statsFingerprint();

} // namespace checkpoint
} // namespace pimmmu

#endif // PIMMMU_CHECKPOINT_CHECKPOINT_HH

#include "checkpoint/format.hh"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "resilience/crc.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace checkpoint {

namespace {

constexpr char kMagic[8] = {'P', 'I', 'M', 'C', 'K', 'P', 'T', '1'};

resilience::Status
corrupt(const std::string &path, std::uint64_t offset,
        const std::string &what)
{
    std::ostringstream os;
    os << path << " @" << offset << ": " << what;
    return resilience::Status::failure(
        resilience::ErrorCode::SnapshotCorrupt, os.str());
}

void
append32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
append64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
read32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t
read64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

} // namespace

Section
makeSection(const char *tag, const serialize::ByteSink &sink,
            std::uint32_t version)
{
    Section s;
    s.tag = tag;
    s.version = version;
    s.payload = sink.data();
    return s;
}

const Section *
findSection(const std::vector<Section> &sections, const char *tag)
{
    for (const Section &s : sections) {
        if (s.tag == tag)
            return &s;
    }
    return nullptr;
}

resilience::Status
writeFile(const std::string &path, const std::vector<Section> &sections)
{
    namespace fault = testing::fault;

    std::vector<std::uint8_t> file;
    file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
    append32(file, kFormatVersion);
    append32(file, static_cast<std::uint32_t>(sections.size()));
    for (const Section &s : sections) {
        if (s.tag.size() != 4) {
            return resilience::Status::failure(
                resilience::ErrorCode::MalformedDescriptor,
                "section tag '" + s.tag + "' is not 4 characters");
        }
        file.insert(file.end(), s.tag.begin(), s.tag.end());
        append32(file, s.version);
        append64(file, s.payload.size());
        append32(file, resilience::crc32c(s.payload.data(),
                                          s.payload.size()));
        const std::size_t payloadAt = file.size();
        file.insert(file.end(), s.payload.begin(), s.payload.end());
        // Fault site: flip one payload byte *after* its CRC was
        // recorded, proving the reader's CRC check is non-vacuous.
        if (!s.payload.empty() && fault::fire("ckpt.corrupt_section"))
            file[payloadAt + s.payload.size() / 2] ^= 0x40;
    }
    // Fault site: emit only the front half of the encoded file — a
    // torn write the atomic-rename protocol would normally prevent.
    if (fault::fire("ckpt.truncate_file"))
        file.resize(file.size() / 2);

    const std::string tmp = path + ".tmp";
    std::FILE *fp = std::fopen(tmp.c_str(), "wb");
    if (!fp)
        return corrupt(tmp, 0, "cannot open for writing");
    const std::size_t wrote =
        file.empty() ? 0 : std::fwrite(file.data(), 1, file.size(), fp);
    const bool flushed = std::fclose(fp) == 0;
    if (wrote != file.size() || !flushed) {
        std::remove(tmp.c_str());
        return corrupt(tmp, wrote, "short write");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return corrupt(path, 0, "atomic rename failed");
    }
    return resilience::Status{};
}

resilience::Status
readFile(const std::string &path, std::vector<Section> &out)
{
    out.clear();
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        return corrupt(path, 0, "cannot open for reading");
    std::vector<std::uint8_t> file;
    std::uint8_t chunk[65536];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), fp)) > 0)
        file.insert(file.end(), chunk, chunk + got);
    std::fclose(fp);

    std::uint64_t off = 0;
    auto need = [&](std::uint64_t bytes, const char *what)
        -> resilience::Status {
        if (off + bytes > file.size()) {
            std::ostringstream os;
            os << "truncated: need " << bytes << " bytes for " << what
               << ", file has " << file.size() - off << " left";
            return corrupt(path, off, os.str());
        }
        return resilience::Status{};
    };

    if (auto st = need(sizeof(kMagic), "magic"); !st.ok())
        return st;
    if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
        return resilience::Status::failure(
            resilience::ErrorCode::SnapshotVersionMismatch,
            path + " @0: bad magic (not a PIM-MMU snapshot)");
    }
    off += sizeof(kMagic);
    if (auto st = need(8, "header"); !st.ok())
        return st;
    const std::uint32_t version = read32(&file[off]);
    if (version != kFormatVersion) {
        std::ostringstream os;
        os << path << " @" << off << ": format version " << version
           << ", this build reads " << kFormatVersion;
        return resilience::Status::failure(
            resilience::ErrorCode::SnapshotVersionMismatch, os.str());
    }
    off += 4;
    const std::uint32_t count = read32(&file[off]);
    off += 4;

    for (std::uint32_t i = 0; i < count; ++i) {
        if (auto st = need(4 + 4 + 8 + 4, "section header"); !st.ok())
            return st;
        Section s;
        s.tag.assign(reinterpret_cast<const char *>(&file[off]), 4);
        off += 4;
        s.version = read32(&file[off]);
        off += 4;
        const std::uint64_t bytes = read64(&file[off]);
        off += 8;
        const std::uint32_t crc = read32(&file[off]);
        off += 4;
        if (auto st = need(bytes, ("section '" + s.tag + "' payload")
                                      .c_str());
            !st.ok())
            return st;
        const std::uint32_t actual =
            resilience::crc32c(file.data() + off, bytes);
        if (actual != crc) {
            std::ostringstream os;
            os << "section '" << s.tag << "' CRC mismatch (stored 0x"
               << std::hex << crc << ", computed 0x" << actual << ")";
            return corrupt(path, off, os.str());
        }
        s.payload.assign(file.begin() + static_cast<long>(off),
                         file.begin() + static_cast<long>(off + bytes));
        off += bytes;
        out.push_back(std::move(s));
    }
    if (off != file.size()) {
        std::ostringstream os;
        os << file.size() - off << " trailing bytes after last section";
        return corrupt(path, off, os.str());
    }
    return resilience::Status{};
}

} // namespace checkpoint
} // namespace pimmmu

/**
 * @file
 * The on-disk snapshot container: a versioned, sectioned binary file
 * with one CRC-32C-guarded section per subsystem.
 *
 * Layout (all integers little-endian):
 *
 *   magic            8 bytes   "PIMCKPT1"
 *   formatVersion    u32
 *   sectionCount     u32
 *   per section:
 *     tag            4 bytes   e.g. "MEMB"
 *     version        u32       section schema version
 *     payloadBytes   u64
 *     crc32c         u32       over the payload bytes
 *     payload        payloadBytes bytes
 *
 * Files commit atomically: the writer streams to `path + ".tmp"` and
 * renames over the target, so a crash mid-write leaves either the old
 * snapshot or none — never a half-written one. The reader trusts
 * nothing: every structural field is bounds-checked against the actual
 * file size and every payload is CRC-verified, with failures reported
 * as structured resilience::Status values (snapshot_corrupt /
 * snapshot_version_mismatch) carrying file/offset diagnostics. A torn
 * or truncated snapshot is rejected, never asserted on.
 *
 * Writer fault sites (testing::fault) prove the reader's rejection
 * paths are non-vacuous:
 *   ckpt.corrupt_section  flip one payload byte after its CRC is taken
 *   ckpt.truncate_file    drop the tail half of the encoded file
 */

#ifndef PIMMMU_CHECKPOINT_FORMAT_HH
#define PIMMMU_CHECKPOINT_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "resilience/status.hh"

namespace pimmmu {
namespace checkpoint {

/** Container schema version this build writes and accepts. */
constexpr std::uint32_t kFormatVersion = 1;

/** One subsystem's payload inside a snapshot file. */
struct Section
{
    std::string tag;     //!< exactly 4 characters
    std::uint32_t version = 1;
    std::vector<std::uint8_t> payload;
};

/** Convenience: wrap a finished ByteSink as a section. */
Section makeSection(const char *tag, const serialize::ByteSink &sink,
                    std::uint32_t version = 1);

/**
 * Atomically write @p sections to @p path (tmp file + rename).
 * @return Ok, or snapshot_corrupt with the failing syscall's context.
 */
resilience::Status writeFile(const std::string &path,
                             const std::vector<Section> &sections);

/**
 * Parse @p path into @p out. Never asserts: corruption, truncation,
 * bad magic and unsupported versions all come back as structured
 * failures naming the file and byte offset.
 */
resilience::Status readFile(const std::string &path,
                            std::vector<Section> &out);

/** The section with @p tag, or nullptr. */
const Section *findSection(const std::vector<Section> &sections,
                           const char *tag);

} // namespace checkpoint
} // namespace pimmmu

#endif // PIMMMU_CHECKPOINT_FORMAT_HH

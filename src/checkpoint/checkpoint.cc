#include "checkpoint/checkpoint.hh"

#include <algorithm>
#include <sstream>

#include "checkpoint/format.hh"
#include "serving/serving.hh"
#include "sim/system.hh"
#include "telemetry/stats_registry.hh"

namespace pimmmu {
namespace checkpoint {

namespace {

resilience::Status
badSection(const char *tag, const char *why)
{
    std::ostringstream os;
    os << "section '" << tag << "': " << why;
    return resilience::Status::failure(
        resilience::ErrorCode::SnapshotCorrupt, os.str());
}

/** Geometry fingerprint: a snapshot only restores onto a System built
 *  with the same shape. */
void
writeMeta(serialize::ByteSink &out, sim::System &sys)
{
    out.u8(static_cast<std::uint8_t>(sys.config().design));
    out.u64(sys.pim().numDpus());
    out.u64(sys.mem().dramChannels());
    out.u64(sys.mem().pimChannels());
    out.u64(sys.map().dramCapacity());
    out.boolean(sys.llc() != nullptr);
    out.boolean(sys.resilienceManager() != nullptr);
}

resilience::Status
checkMeta(serialize::ByteSource &in, sim::System &sys)
{
    const auto design = static_cast<sim::DesignPoint>(in.u8());
    const std::uint64_t dpus = in.u64();
    const std::uint64_t dramCh = in.u64();
    const std::uint64_t pimCh = in.u64();
    const std::uint64_t dramCap = in.u64();
    const bool hasLlc = in.boolean();
    const bool hasRes = in.boolean();
    if (!in.ok()) {
        return resilience::Status::failure(
            resilience::ErrorCode::SnapshotCorrupt,
            "section 'META': short payload");
    }
    std::ostringstream os;
    if (design != sys.config().design)
        os << "design point differs";
    else if (dpus != sys.pim().numDpus())
        os << "snapshot has " << dpus << " DPUs, system has "
           << sys.pim().numDpus();
    else if (dramCh != sys.mem().dramChannels() ||
             pimCh != sys.mem().pimChannels())
        os << "channel counts differ";
    else if (dramCap != sys.map().dramCapacity())
        os << "DRAM capacity differs";
    else if (hasLlc != (sys.llc() != nullptr))
        os << "LLC presence differs";
    else if (hasRes != (sys.resilienceManager() != nullptr))
        os << "resilience manager presence differs";
    else
        return resilience::Status{};
    return resilience::Status::failure(
        resilience::ErrorCode::SnapshotVersionMismatch,
        "snapshot does not fit this system: " + os.str());
}

} // namespace

resilience::Status
save(sim::System &sys, serving::Server *server,
     const std::vector<std::uint8_t> &userBlob, const std::string &path)
{
    PIMMMU_ASSERT(sys.eq().empty(),
                  "checkpoint requires a drained event queue");
    std::vector<Section> sections;
    auto add = [&sections](const char *tag,
                           const serialize::ByteSink &sink) {
        sections.push_back(makeSection(tag, sink));
    };

    {
        serialize::ByteSink s;
        writeMeta(s, sys);
        add("META", s);
    }
    {
        serialize::ByteSink s;
        s.u64(sys.eq().now());
        s.u64(sys.eq().nextSeq());
        s.u64(sys.eq().executed());
        s.u64(sys.eq().scheduled());
        s.u64(sys.eq().scheduledFar());
        add("CLK ", s);
    }
    {
        serialize::ByteSink s;
        sys.saveOwnState(s);
        add("SYSS", s);
    }
    {
        // Functional DRAM image: non-zero pages in ascending order —
        // the same canonical form memoryFingerprint() hashes.
        serialize::ByteSink s;
        const dram::BackingStore &store = sys.mem().store();
        std::uint64_t pages = 0;
        store.forEachNonZeroPage(
            [&pages](Addr, const std::uint8_t *) { ++pages; });
        s.u64(pages);
        store.forEachNonZeroPage(
            [&s](Addr pageId, const std::uint8_t *data) {
                s.u64(pageId);
                s.bytes(data, dram::BackingStore::kPageBytes);
            });
        add("MEMB", s);
    }
    {
        serialize::ByteSink s;
        s.u64(sys.mem().dramChannels());
        for (unsigned ch = 0; ch < sys.mem().dramChannels(); ++ch)
            sys.mem().dramController(ch).saveState(s);
        s.u64(sys.mem().pimChannels());
        for (unsigned ch = 0; ch < sys.mem().pimChannels(); ++ch)
            sys.mem().pimController(ch).saveState(s);
        add("CTRL", s);
    }
    {
        serialize::ByteSink s;
        s.boolean(sys.llc() != nullptr);
        if (sys.llc())
            sys.llc()->saveState(s);
        add("CACH", s);
    }
    {
        serialize::ByteSink s;
        sys.dce().saveState(s);
        add("DCEE", s);
    }
    {
        serialize::ByteSink s;
        sys.cpu().saveState(s);
        add("CPUU", s);
    }
    {
        // Includes every DPU's touched MRAM image.
        serialize::ByteSink s;
        sys.pim().saveState(s);
        add("PIMD", s);
    }
    {
        serialize::ByteSink s;
        s.boolean(sys.resilienceManager() != nullptr);
        if (sys.resilienceManager())
            sys.resilienceManager()->saveState(s);
        add("RESM", s);
    }
    {
        // Includes the MMU: page tables, TLB contents, ownership.
        serialize::ByteSink s;
        sys.pimMmu().saveState(s);
        add("PMRT", s);
    }
    {
        serialize::ByteSink s;
        sys.upmem().saveState(s);
        add("UPRT", s);
    }
    {
        serialize::ByteSink s;
        s.boolean(server != nullptr);
        if (server)
            server->saveState(s);
        add("SERV", s);
    }
    {
        serialize::ByteSink s;
        s.bytes(userBlob.data(), userBlob.size());
        add("USER", s);
    }
    return writeFile(path, sections);
}

resilience::Status
restore(sim::System &sys, serving::Server *server,
        std::vector<std::uint8_t> *userBlob, const std::string &path)
{
    std::vector<Section> sections;
    if (auto st = readFile(path, sections); !st.ok())
        return st;

    auto source = [&sections](const char *tag, serialize::ByteSource &src,
                              bool &found) {
        const Section *s = findSection(sections, tag);
        found = s != nullptr;
        if (s)
            src = serialize::ByteSource(s->payload.data(),
                                        s->payload.size());
    };
    auto required = [&](const char *tag, serialize::ByteSource &src)
        -> resilience::Status {
        bool found = false;
        source(tag, src, found);
        if (!found)
            return badSection(tag, "missing");
        return resilience::Status{};
    };

    // META gates everything: wrong-shaped snapshots never touch state.
    {
        serialize::ByteSource src;
        if (auto st = required("META", src); !st.ok())
            return st;
        if (auto st = checkMeta(src, sys); !st.ok())
            return st;
    }
    {
        serialize::ByteSource src;
        if (auto st = required("CLK ", src); !st.ok())
            return st;
        const Tick now = src.u64();
        const std::uint64_t nextSeq = src.u64();
        const std::uint64_t executed = src.u64();
        const std::uint64_t scheduled = src.u64();
        const std::uint64_t scheduledFar = src.u64();
        if (!src.ok() || !src.atEnd())
            return badSection("CLK ", "malformed payload");
        sys.eq().restoreClock(now, nextSeq, executed, scheduled,
                              scheduledFar);
    }
    {
        serialize::ByteSource src;
        if (auto st = required("SYSS", src); !st.ok())
            return st;
        if (!sys.restoreOwnState(src))
            return badSection("SYSS", "malformed payload");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("MEMB", src); !st.ok())
            return st;
        dram::BackingStore &store = sys.mem().store();
        store.clear();
        const std::uint64_t pages = src.u64();
        constexpr std::size_t kPage = dram::BackingStore::kPageBytes;
        std::uint8_t page[kPage];
        for (std::uint64_t i = 0; i < pages; ++i) {
            const Addr pageId = src.u64();
            src.bytes(page, kPage);
            if (!src.ok())
                return badSection("MEMB", "truncated page data");
            store.restorePage(pageId, page);
        }
        if (!src.atEnd())
            return badSection("MEMB", "trailing bytes");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("CTRL", src); !st.ok())
            return st;
        if (src.u64() != sys.mem().dramChannels())
            return badSection("CTRL", "DRAM channel count differs");
        for (unsigned ch = 0; ch < sys.mem().dramChannels(); ++ch) {
            if (!sys.mem().dramController(ch).restoreState(src))
                return badSection("CTRL", "malformed DRAM controller");
        }
        if (src.u64() != sys.mem().pimChannels())
            return badSection("CTRL", "PIM channel count differs");
        for (unsigned ch = 0; ch < sys.mem().pimChannels(); ++ch) {
            if (!sys.mem().pimController(ch).restoreState(src))
                return badSection("CTRL", "malformed PIM controller");
        }
    }
    {
        serialize::ByteSource src;
        if (auto st = required("CACH", src); !st.ok())
            return st;
        if (src.boolean()) {
            if (!sys.llc() || !sys.llc()->restoreState(src))
                return badSection("CACH", "malformed payload");
        }
    }
    {
        serialize::ByteSource src;
        if (auto st = required("DCEE", src); !st.ok())
            return st;
        if (!sys.dce().restoreState(src))
            return badSection("DCEE", "malformed payload");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("CPUU", src); !st.ok())
            return st;
        if (!sys.cpu().restoreState(src))
            return badSection("CPUU", "malformed payload");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("PIMD", src); !st.ok())
            return st;
        if (!sys.pim().restoreState(src))
            return badSection("PIMD", "malformed payload");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("RESM", src); !st.ok())
            return st;
        if (src.boolean()) {
            if (!sys.resilienceManager() ||
                !sys.resilienceManager()->restoreState(src))
                return badSection("RESM", "malformed payload");
        }
    }
    // MMU before SERV: restored tenant contexts re-attach to address
    // spaces this section rebuilds.
    {
        serialize::ByteSource src;
        if (auto st = required("PMRT", src); !st.ok())
            return st;
        if (!sys.pimMmu().restoreState(src))
            return badSection("PMRT", "malformed payload");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("UPRT", src); !st.ok())
            return st;
        if (!sys.upmem().restoreState(src))
            return badSection("UPRT", "malformed payload");
    }
    {
        serialize::ByteSource src;
        if (auto st = required("SERV", src); !st.ok())
            return st;
        const bool snapshotHasServer = src.boolean();
        if (snapshotHasServer != (server != nullptr)) {
            return resilience::Status::failure(
                resilience::ErrorCode::SnapshotVersionMismatch,
                snapshotHasServer
                    ? "snapshot has a serving layer, restore target "
                      "does not"
                    : "restore target has a serving layer, snapshot "
                      "does not");
        }
        if (server && !server->restoreState(src))
            return badSection("SERV", "malformed payload");
    }
    if (userBlob) {
        serialize::ByteSource src;
        if (auto st = required("USER", src); !st.ok())
            return st;
        *userBlob = src.blob();
        if (!src.ok())
            return badSection("USER", "malformed payload");
    }
    return resilience::Status{};
}

std::uint64_t
statsFingerprint()
{
    // Groups are hashed in sorted order, not registration order: a
    // restored System registers them in snapshot-section order (ff
    // before mmu), while the original registered them as subsystems
    // were constructed. The values are identical either way; the
    // canonical digest must be too.
    std::vector<std::string> groups =
        telemetry::StatsRegistry::global().groupJsons();
    std::sort(groups.begin(), groups.end());
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::string &g : groups) {
        for (const char c : g) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0x1f;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace checkpoint
} // namespace pimmmu
